// Benchmarks regenerating every figure of the paper's evaluation (one
// bench per table/figure; see DESIGN.md section 3 for the index) plus
// micro-benchmarks of the core mechanisms. Figure benches run the quick
// experiment scale per iteration; use cmd/blowfish-bench for full-scale
// series output.
package blowfish_test

import (
	"fmt"
	"testing"

	"blowfish"
	"blowfish/internal/constraints"
	"blowfish/internal/datagen"
	"blowfish/internal/domain"
	"blowfish/internal/experiments"
	"blowfish/internal/hierarchy"
	"blowfish/internal/infer"
	"blowfish/internal/noise"
	"blowfish/internal/ordered"
	"blowfish/internal/secgraph"
	"blowfish/internal/wavelet"
)

// benchFigure runs one experiment harness per iteration at quick scale.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry[id]
	if runner == nil {
		b.Fatalf("unknown figure %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := runner(experiments.QuickScale, 1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if fig == nil {
			b.Fatalf("%s returned nil figure", id)
		}
	}
}

func BenchmarkFig1aTwitterKMeans(b *testing.B)   { benchFigure(b, "fig1a") }
func BenchmarkFig1bSkinKMeans(b *testing.B)      { benchFigure(b, "fig1b") }
func BenchmarkFig1cSyntheticKMeans(b *testing.B) { benchFigure(b, "fig1c") }
func BenchmarkFig1dSkinRatio(b *testing.B)       { benchFigure(b, "fig1d") }
func BenchmarkFig1eAttribute(b *testing.B)       { benchFigure(b, "fig1e") }
func BenchmarkFig1fPartition(b *testing.B)       { benchFigure(b, "fig1f") }
func BenchmarkFig2aTreeBuild(b *testing.B)       { benchFigure(b, "fig2a") }
func BenchmarkFig2bAdultRange(b *testing.B)      { benchFigure(b, "fig2b") }
func BenchmarkFig2cTwitterRange(b *testing.B)    { benchFigure(b, "fig2c") }
func BenchmarkSec5Sensitivity(b *testing.B)      { benchFigure(b, "sec5") }
func BenchmarkSec7ErrorModel(b *testing.B)       { benchFigure(b, "sec7") }
func BenchmarkSec8PolicyGraph(b *testing.B)      { benchFigure(b, "sec8") }

// --- mechanism micro-benchmarks ---

func BenchmarkLaplaceSample(b *testing.B) {
	src := noise.NewSource(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Laplace(2)
	}
	_ = sink
}

func BenchmarkHistogramRelease4357(b *testing.B) {
	d := domain.MustLine("v", 4357)
	ds := domain.NewDataset(d)
	src := noise.NewSource(2)
	for i := 0; i < 10000; i++ {
		ds.MustAdd(domain.Point(src.Int63n(d.Size())))
	}
	pol := blowfish.DifferentialPrivacy(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blowfish.ReleaseHistogram(pol, ds, 1.0, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsotonicRegression4096(b *testing.B) {
	src := noise.NewSource(3)
	y := make([]float64, 4096)
	for i := range y {
		y[i] = float64(i) + src.Laplace(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infer.IsotonicRegression(y)
	}
}

func BenchmarkTreeConsistency4096(b *testing.B) {
	tr, err := hierarchy.New(4096, 16)
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]float64, 4096)
	src := noise.NewSource(4)
	for i := range counts {
		counts[i] = float64(src.Intn(50))
	}
	rel, err := tr.Release(counts, 1.0, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Consistent(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOHReleaseAndQuery(b *testing.B) {
	for _, theta := range []int{1, 100, 4357} {
		b.Run(fmt.Sprintf("theta=%d", theta), func(b *testing.B) {
			counts := make([]float64, 4357)
			src := noise.NewSource(5)
			for i := range counts {
				counts[i] = float64(src.Intn(20))
			}
			oh, err := ordered.NewOH(4357, theta, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := oh.Release(counts, 1.0, src)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rel.Range(100, 4000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPrivateKMeansIteration(b *testing.B) {
	src := noise.NewSource(6)
	ds, err := datagen.Twitter(10000, src)
	if err != nil {
		b.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(ds.Domain(), 90)
	if err != nil {
		b.Fatal(err)
	}
	pol := blowfish.NewPolicy(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blowfish.PrivateKMeans(pol, ds, 4, 1, 1.0, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyGraphAlphaXi(b *testing.B) {
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 3},
		domain.Attribute{Name: "A2", Size: 3},
		domain.Attribute{Name: "A3", Size: 2},
	)
	m, err := constraints.NewMarginal(d, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(0)
	set, err := m.Set(ref)
	if err != nil {
		b.Fatal(err)
	}
	g := secgraph.NewComplete(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg, err := constraints.BuildPolicyGraph(set, g)
		if err != nil {
			b.Fatal(err)
		}
		if pg.SensitivityBound() <= 0 {
			b.Fatal("non-positive bound")
		}
	}
}

func BenchmarkTwitterGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := datagen.Twitter(50000, noise.NewSource(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// Ablation: the Eq. (15) optimal budget split vs naive alternatives. The
// reported metric (range MSE at the end of one release sweep) is printed
// via b.ReportMetric so splits can be compared from the bench output.
func BenchmarkAblationOHBudgetSplit(b *testing.B) {
	const (
		size = 4357
		eps  = 0.5
	)
	counts := make([]float64, size)
	gen := noise.NewSource(11)
	for i := range counts {
		if gen.Uniform() < 0.05 {
			counts[i] = float64(gen.Intn(100))
		}
	}
	cum := make([]float64, size)
	run := 0.0
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	oh, err := ordered.NewOH(size, 100, 16)
	if err != nil {
		b.Fatal(err)
	}
	optS, optH := oh.OptimalSplit(eps)
	splits := []struct {
		name       string
		epsS, epsH float64
	}{
		{"optimal-eq15", optS, optH},
		{"half-half", eps / 2, eps / 2},
		{"s-heavy", 0.9 * eps, 0.1 * eps},
		{"h-heavy", 0.1 * eps, 0.9 * eps},
	}
	for _, sp := range splits {
		b.Run(sp.name, func(b *testing.B) {
			src := noise.NewSource(13)
			qrng := noise.NewSource(17)
			var sq float64
			var queries int
			for i := 0; i < b.N; i++ {
				rel, err := oh.ReleaseWithSplit(counts, sp.epsS, sp.epsH, src)
				if err != nil {
					b.Fatal(err)
				}
				for q := 0; q < 50; q++ {
					lo := qrng.Intn(size)
					hi := lo + qrng.Intn(size-lo)
					got, err := rel.Range(lo, hi)
					if err != nil {
						b.Fatal(err)
					}
					truth := cum[hi]
					if lo > 0 {
						truth -= cum[lo-1]
					}
					sq += (got - truth) * (got - truth)
					queries++
				}
			}
			b.ReportMetric(sq/float64(queries), "range-mse")
		})
	}
}

// Ablation: constrained inference on vs off for the ordered mechanism on
// sparse data — the Section 7.1 accuracy boost.
func BenchmarkAblationOrderedInference(b *testing.B) {
	const (
		size = 4357
		eps  = 0.5
	)
	gen := noise.NewSource(19)
	counts := make([]float64, size)
	var n float64
	for i := range counts {
		if gen.Uniform() < 0.03 {
			counts[i] = float64(gen.Intn(200))
		}
		n += counts[i]
	}
	cum := make([]float64, size)
	run := 0.0
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	for _, mode := range []string{"raw", "inferred"} {
		b.Run(mode, func(b *testing.B) {
			src := noise.NewSource(23)
			var sq float64
			var cells int
			for i := 0; i < b.N; i++ {
				noisy, err := ordered.ReleaseCumulative(cum, 1, eps, src)
				if err != nil {
					b.Fatal(err)
				}
				est := noisy
				if mode == "inferred" {
					est = ordered.InferCumulative(noisy, n)
				}
				for j := range est {
					d := est[j] - cum[j]
					sq += d * d
					cells++
				}
			}
			b.ReportMetric(sq/float64(cells), "cumulative-mse")
		})
	}
}

// Ablation: the three differential-privacy baselines for range queries —
// flat Laplace histogram, hierarchical (Hay), Privelet wavelet — against
// the Blowfish ordered mechanism.
func BenchmarkAblationRangeBaselines(b *testing.B) {
	const (
		size = 1024
		eps  = 0.5
	)
	gen := noise.NewSource(29)
	counts := make([]float64, size)
	for i := range counts {
		counts[i] = float64(gen.Intn(30))
	}
	cum := make([]float64, size)
	run := 0.0
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	truthRange := func(lo, hi int) float64 {
		t := cum[hi]
		if lo > 0 {
			t -= cum[lo-1]
		}
		return t
	}
	type answerer func(src *noise.Source) (func(lo, hi int) (float64, error), error)
	hierTree, err := hierarchy.New(size, 16)
	if err != nil {
		b.Fatal(err)
	}
	wave, err := wavelet.New(size)
	if err != nil {
		b.Fatal(err)
	}
	ordMech, err := ordered.NewOH(size, 1, 16)
	if err != nil {
		b.Fatal(err)
	}
	systems := []struct {
		name string
		mk   answerer
	}{
		{"flat-laplace", func(src *noise.Source) (func(int, int) (float64, error), error) {
			noisy := make([]float64, size)
			for i := range counts {
				noisy[i] = counts[i] + src.Laplace(2/eps)
			}
			return func(lo, hi int) (float64, error) {
				var s float64
				for i := lo; i <= hi; i++ {
					s += noisy[i]
				}
				return s, nil
			}, nil
		}},
		{"hierarchical", func(src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := hierTree.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return func(lo, hi int) (float64, error) {
				v, _, err := rel.RangeQuery(lo, hi)
				return v, err
			}, nil
		}},
		{"wavelet-privelet", func(src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := wave.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return rel.RangeQuery, nil
		}},
		{"blowfish-ordered", func(src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := ordMech.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return rel.Range, nil
		}},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			src := noise.NewSource(31)
			qrng := noise.NewSource(37)
			var sq float64
			var queries int
			for i := 0; i < b.N; i++ {
				answer, err := sys.mk(src)
				if err != nil {
					b.Fatal(err)
				}
				for q := 0; q < 50; q++ {
					lo := qrng.Intn(size)
					hi := lo + qrng.Intn(size-lo)
					got, err := answer(lo, hi)
					if err != nil {
						b.Fatal(err)
					}
					diff := got - truthRange(lo, hi)
					sq += diff * diff
					queries++
				}
			}
			b.ReportMetric(sq/float64(queries), "range-mse")
		})
	}
}
