// Package blowfish is a from-scratch Go implementation of Blowfish privacy
// (He, Machanavajjhala, Ding — SIGMOD 2014): a class of privacy definitions
// that generalizes ε-differential privacy with a policy P = (T, G, I_Q)
// specifying which information is secret (a discriminative secret graph G
// over the data domain T) and which deterministic constraints Q an
// adversary may already know.
//
// The package is a facade over the implementation packages in internal/:
// domains and datasets, the standard secret-graph specifications, policies
// and their query sensitivities, calibrated mechanisms (Laplace histograms,
// SuLQ k-means, the ordered and ordered hierarchical mechanisms for
// cumulative histograms and range queries), constraint handling with
// policy graphs, and privacy-budget accounting.
//
// A minimal release looks like:
//
//	dom, _ := blowfish.LineDomain("capital-loss", 4357)
//	g, _ := blowfish.DistanceThreshold(dom, 100)   // protect values within 100
//	pol := blowfish.NewPolicy(g)
//	rel, _ := blowfish.NewRangeReleaser(pol, data, 16, 0.5, blowfish.NewSource(1))
//	count, _ := rel.Range(1500, 2500)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping between this library and the paper.
package blowfish

import (
	"errors"

	"blowfish/internal/composition"
	"blowfish/internal/constraints"
	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/infer"
	"blowfish/internal/kmeans"
	"blowfish/internal/mechanism"
	"blowfish/internal/noise"
	"blowfish/internal/ordered"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// Core data model re-exports.
type (
	// Domain is a discrete multi-attribute data domain T.
	Domain = domain.Domain
	// Attribute is one categorical dimension of a domain.
	Attribute = domain.Attribute
	// Point is the dense index of a domain value.
	Point = domain.Point
	// Dataset is an ordered collection of identified tuples.
	Dataset = domain.Dataset
	// Partition divides a domain into disjoint blocks.
	Partition = domain.Partition
	// SecretGraph is a discriminative secret graph G.
	SecretGraph = secgraph.Graph
	// Policy is a Blowfish policy P = (T, G, I_Q).
	Policy = policy.Policy
	// Source is a deterministic noise stream.
	Source = noise.Source
	// Accountant tracks cumulative privacy budget.
	Accountant = composition.Accountant
	// AccountantState is a serializable ledger snapshot (durable restarts).
	AccountantState = composition.AccountantState
	// BudgetRelease is one entry of an accountant's release log.
	BudgetRelease = composition.Release
	// CountQuery is a count query usable as a public constraint.
	CountQuery = constraints.CountQuery
	// ConstraintSet is publicly known auxiliary knowledge Q with answers.
	ConstraintSet = constraints.Set
	// Marginal is a known marginal (cuboid) constraint.
	Marginal = constraints.Marginal
	// KMeansResult is a clustering outcome: centroids and objective.
	KMeansResult = kmeans.Result
)

// NewDomain constructs a domain from attributes.
func NewDomain(attrs ...Attribute) (*Domain, error) { return domain.New(attrs...) }

// LineDomain constructs a one-dimensional totally ordered domain.
func LineDomain(name string, size int) (*Domain, error) { return domain.Line(name, size) }

// GridDomain constructs a two-dimensional location grid.
func GridDomain(width, height int) (*Domain, error) { return domain.Grid(width, height) }

// NewDataset creates an empty dataset over d.
func NewDataset(d *Domain) *Dataset { return domain.NewDataset(d) }

// UniformGridPartition divides each attribute into cells of the given
// widths.
func UniformGridPartition(d *Domain, widths []int) (Partition, error) {
	return domain.NewUniformGrid(d, widths)
}

// UniformPartitionByCount divides the domain into approximately the given
// number of equal blocks, preserving aspect ratio.
func UniformPartitionByCount(d *Domain, blocks int) (Partition, error) {
	return domain.NewUniformGridByCount(d, blocks)
}

// NewSource creates a deterministic noise source.
func NewSource(seed int64) *Source { return noise.NewSource(seed) }

// NewAccountant creates a privacy budget accountant (sequential composition
// per Theorem 4.1; SpendParallel implements Theorem 4.2).
func NewAccountant(budget float64) (*Accountant, error) { return composition.NewAccountant(budget) }

// FullDomain returns the full-domain secret specification S^full: the
// complete graph, recovering differential privacy.
func FullDomain(d *Domain) SecretGraph { return secgraph.NewComplete(d) }

// AttributeSecrets returns the per-attribute specification S^attr.
func AttributeSecrets(d *Domain) SecretGraph { return secgraph.NewAttribute(d) }

// PartitionedSecrets returns the partitioned specification S^P.
func PartitionedSecrets(p Partition) SecretGraph { return secgraph.NewPartition(p) }

// DistanceThreshold returns the metric specification S^{d,θ} under L1.
func DistanceThreshold(d *Domain, theta float64) (SecretGraph, error) {
	return secgraph.NewDistanceThreshold(d, theta)
}

// LineGraph returns the line-graph specification G^{d,1} over a
// one-dimensional ordered domain (the ordered mechanism's policy).
func LineGraph(d *Domain) (SecretGraph, error) { return secgraph.NewLine(d) }

// ExplicitGraph is an arbitrary secret graph given by adjacency lists —
// the fully custom end of the policy spectrum. Build one edge by edge with
// NewExplicitGraph, or declaratively through a GraphSpec.
type ExplicitGraph = secgraph.Explicit

// GraphSpec is a serializable secret-graph specification: the paper's
// standard kinds by name, arbitrary edge lists (kind "explicit"), and
// composition operators (kind "compose" with op "union", "intersect" or
// "product"). Specs are plain JSON, so policies defined by clients can be
// stored, journaled and rebuilt deterministically.
type GraphSpec = secgraph.Spec

// BuildGraph constructs the secret graph spec declares over d. For kind
// "partition" the underlying partition is returned alongside (nil
// otherwise).
func BuildGraph(d *Domain, spec GraphSpec) (SecretGraph, Partition, error) {
	return spec.Build(d)
}

// NewExplicitGraph creates an empty explicit secret graph over d; add
// secret pairs with AddEdge. It fails for domains too large to hold
// per-vertex state.
func NewExplicitGraph(d *Domain, name string) (*ExplicitGraph, error) {
	return secgraph.NewExplicit(d, name)
}

// UnionGraphs materializes the edge union of the operand graphs into an
// explicit graph over d: a pair is a secret when any operand declares it.
func UnionGraphs(d *Domain, name string, ops ...SecretGraph) (*ExplicitGraph, error) {
	return secgraph.Union(d, name, ops...)
}

// IntersectGraphs materializes the edge intersection of the operand graphs
// into an explicit graph over d: a pair is a secret only when every operand
// declares it.
func IntersectGraphs(d *Domain, name string, ops ...SecretGraph) (*ExplicitGraph, error) {
	return secgraph.Intersect(d, name, ops...)
}

// ProductGraph composes one 1-D secret graph per attribute of d into the
// implicit Cartesian-product graph: values are adjacent when exactly one
// attribute differs and that attribute's factor declares the projected pair
// a secret. It generalizes AttributeSecrets (the product of complete
// factors) and scales to domains far too large to materialize.
func ProductGraph(d *Domain, name string, factors []SecretGraph) (SecretGraph, error) {
	return secgraph.NewProduct(d, name, factors)
}

// GraphStats reports the edge and connected-component counts of an
// explicit (adjacency-list) secret graph; ok is false for implicit kinds,
// whose structure is analytic rather than enumerated.
func GraphStats(g SecretGraph) (edges, components int, ok bool) {
	e, isExplicit := g.(*secgraph.Explicit)
	if !isExplicit {
		return 0, 0, false
	}
	return e.NumEdges(), e.Components(), true
}

// NewPolicy creates an unconstrained policy (T, G, I_n).
func NewPolicy(g SecretGraph) *Policy { return policy.New(g) }

// DifferentialPrivacy returns the policy equivalent to ε-differential
// privacy over d.
func DifferentialPrivacy(d *Domain) *Policy { return policy.Differential(d) }

// NewConstrainedPolicy creates a policy with publicly known constraints.
func NewConstrainedPolicy(g SecretGraph, q *ConstraintSet) *Policy {
	return policy.NewConstrained(g, q)
}

// NewMarginal declares a marginal over the given attribute indexes.
func NewMarginal(d *Domain, attrs []int) (*Marginal, error) {
	return constraints.NewMarginal(d, attrs)
}

// ConstraintsFromDataset materializes count query constraints with answers
// evaluated on ds (the "publicly released statistics" scenario).
func ConstraintsFromDataset(queries []CountQuery, ds *Dataset) (*ConstraintSet, error) {
	return constraints.FromDataset(queries, ds)
}

// ReleaseHistogram releases the complete histogram under an unconstrained
// policy with noise calibrated to the policy-specific sensitivity
// (Theorem 5.1); for constrained policies it calibrates to the Theorem 8.2
// policy-graph bound.
//
//lint:allow budgetcharge mechanism-level API: the caller supplies eps and the source; Session.ReleaseHistogram is the accounted entry point and charges before delegating here
func ReleaseHistogram(p *Policy, ds *Dataset, eps float64, src *Source) ([]float64, error) {
	if p.Unconstrained() {
		return mechanism.ReleaseHistogram(p, ds, eps, src)
	}
	set, ok := p.Constraints().(*constraints.Set)
	if !ok {
		return nil, errors.New("blowfish: constrained release requires a *ConstraintSet policy")
	}
	rel, _, err := constraints.ReleaseHistogram(set, p.Graph(), ds, eps, src)
	return rel, err
}

// ConsistentWithConstraints projects a released histogram onto the policy's
// public constraints (exact agreement, never increases error, costs no
// budget).
func ConsistentWithConstraints(p *Policy, released []float64) ([]float64, error) {
	set, ok := p.Constraints().(*constraints.Set)
	if !ok {
		return nil, errors.New("blowfish: policy has no count constraints")
	}
	return constraints.ConsistentWithConstraints(set, released)
}

// ReleasePartitionHistogram releases the histogram over the blocks of part;
// it is exact when every secret pair stays within a block.
//
//lint:allow budgetcharge mechanism-level API: accounting happens in Session.ReleasePartitionHistogram, which charges only when the partition straddles blocks
func ReleasePartitionHistogram(p *Policy, ds *Dataset, part Partition, eps float64, src *Source) ([]float64, error) {
	return mechanism.ReleasePartitionHistogram(p, ds, part, eps, src)
}

// HistogramSensitivity returns S(h, P) for the policy: the Section 5 value
// for unconstrained policies, the Theorem 8.2 / Corollary 8.3 bound for
// count-constrained ones.
func HistogramSensitivity(p *Policy) (float64, error) {
	if p.Unconstrained() {
		return p.HistogramSensitivity()
	}
	set, ok := p.Constraints().(*constraints.Set)
	if !ok {
		return 0, errors.New("blowfish: unsupported constraint set type")
	}
	sens, _, err := constraints.HistogramSensitivity(set, p.Graph())
	return sens, err
}

// KMeans runs non-private Lloyd clustering (the Figure 1 baseline).
//
//lint:allow budgetcharge non-private baseline: the source only seeds centroid initialization deterministically; nothing released claims a privacy guarantee, so there is no ε to charge
func KMeans(ds *Dataset, k, iterations int, src *Source) (KMeansResult, error) {
	cfg, err := kmeansConfig(ds, k, iterations)
	if err != nil {
		return KMeansResult{}, err
	}
	return kmeans.Lloyd(ds.Vectors(), cfg, src)
}

// PrivateKMeans runs SuLQ k-means satisfying (ε, P)-Blowfish privacy: the
// qsize and qsum sensitivities come from the policy (Lemma 6.1), the
// clamping box from the domain.
//
//lint:allow budgetcharge mechanism-level API: Session.PrivateKMeans is the accounted entry point; it spends eps against the ledger before invoking this function
func PrivateKMeans(p *Policy, ds *Dataset, k, iterations int, eps float64, src *Source) (KMeansResult, error) {
	if !p.Domain().Equal(ds.Domain()) {
		return KMeansResult{}, ErrDomainMismatch
	}
	cfg, err := kmeansConfig(ds, k, iterations)
	if err != nil {
		return KMeansResult{}, err
	}
	sumSens, err := p.SumSensitivity()
	if err != nil {
		return KMeansResult{}, err
	}
	sizeSens, err := p.HistogramSensitivity()
	if err != nil {
		return KMeansResult{}, err
	}
	return kmeans.PrivateLloyd(ds.Vectors(), kmeans.PrivateConfig{
		Config:          cfg,
		Epsilon:         eps,
		SizeSensitivity: sizeSens,
		SumSensitivity:  sumSens,
	}, src)
}

func kmeansConfig(ds *Dataset, k, iterations int) (kmeans.Config, error) {
	lo, hi := engine.KMeansBox(ds.Domain())
	return kmeans.Config{K: k, Iterations: iterations, Lo: lo, Hi: hi}, nil
}

// CumulativeRelease is a released cumulative histogram: Raw holds the noisy
// counts, Inferred the constrained-inference estimate (monotone, in [0,n]).
type CumulativeRelease struct {
	Raw      []float64
	Inferred []float64
}

// Range answers q[lo, hi] from the inferred cumulative histogram.
func (c *CumulativeRelease) Range(lo, hi int) (float64, error) {
	return ordered.RangeFromCumulative(c.Inferred, lo, hi)
}

// ReleaseCumulativeHistogram runs the Ordered Mechanism (Section 7.1): it
// noises every cumulative count with the policy-specific sensitivity (1
// under the line graph, θ under G^{d,θ}, |T|−1 under differential privacy)
// and applies constrained inference.
//
//lint:allow budgetcharge mechanism-level API: Session.ReleaseCumulativeHistogram charges the ledger before delegating to this function
func ReleaseCumulativeHistogram(p *Policy, ds *Dataset, eps float64, src *Source) (*CumulativeRelease, error) {
	if !p.Domain().Equal(ds.Domain()) {
		return nil, ErrDomainMismatch
	}
	sens, err := p.CumulativeHistogramSensitivity()
	if err != nil {
		return nil, err
	}
	cum, err := ds.CumulativeHistogram()
	if err != nil {
		return nil, err
	}
	raw, err := ordered.ReleaseCumulative(cum, sens, eps, src)
	if err != nil {
		return nil, err
	}
	return &CumulativeRelease{
		Raw:      raw,
		Inferred: ordered.InferCumulative(raw, float64(ds.Len())),
	}, nil
}

// RangeReleaser answers arbitrary range queries over an ordered domain via
// the Ordered Hierarchical Mechanism (Section 7.2), with θ taken from the
// policy's distance-threshold graph (|T| for differential privacy, 1 for
// the line graph) and the privacy budget split per Eq. (15).
type RangeReleaser struct {
	release *ordered.OHRelease
}

// NewRangeReleaser builds and releases the Ordered Hierarchical structure
// for the dataset under the policy.
//
//lint:allow budgetcharge mechanism-level API: Session.NewRangeReleaser is the accounted entry point and spends eps before building the structure
func NewRangeReleaser(p *Policy, ds *Dataset, fanout int, eps float64, src *Source) (*RangeReleaser, error) {
	if !p.Domain().Equal(ds.Domain()) {
		return nil, ErrDomainMismatch
	}
	if p.Domain().NumAttrs() != 1 {
		return nil, errors.New("blowfish: range release requires a one-dimensional ordered domain")
	}
	if !p.Unconstrained() {
		return nil, errors.New("blowfish: range release supports unconstrained policies only")
	}
	theta, err := engine.RangeTheta(p)
	if err != nil {
		return nil, err
	}
	oh, err := ordered.NewOH(int(p.Domain().Size()), theta, fanout)
	if err != nil {
		return nil, err
	}
	counts, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	rel, err := oh.Release(counts, eps, src)
	if err != nil {
		return nil, err
	}
	return &RangeReleaser{release: rel}, nil
}

// Range answers the range count query q[lo, hi] (inclusive bounds).
func (r *RangeReleaser) Range(lo, hi int) (float64, error) { return r.release.Range(lo, hi) }

// Cumulative answers the cumulative count C(j) = #values ≤ j.
func (r *RangeReleaser) Cumulative(j int) (float64, error) { return r.release.Cumulative(j) }

// IsotonicRegression exposes the constrained-inference primitive: the L2
// projection onto non-decreasing sequences.
func IsotonicRegression(y []float64) []float64 { return infer.IsotonicRegression(y) }

// LInfDistanceThreshold returns the metric specification S^{d,θ} under the
// L∞ (Chebyshev) metric: square neighborhoods on grids where
// DistanceThreshold protects L1 diamonds.
func LInfDistanceThreshold(d *Domain, theta float64) (SecretGraph, error) {
	return secgraph.NewLInfThreshold(d, theta)
}

// WithUnknownPresence wraps a secret graph over a one-dimensional ordered
// domain with the ⊥ ("individual absent") extension sketched in Section
// 3.1: presence itself becomes a secret. The returned graph lives over the
// extended domain (size |T|+1, ⊥ last); datasets must be built over
// ExtendedDomain(g).
func WithUnknownPresence(g SecretGraph) (SecretGraph, error) {
	return secgraph.NewWithBottom(g)
}

// ExtendedDomain returns the ⊥-extended domain of a graph constructed by
// WithUnknownPresence, and the ⊥ point.
func ExtendedDomain(g SecretGraph) (*Domain, Point, error) {
	b, ok := g.(*secgraph.BottomGraph)
	if !ok {
		return nil, 0, errors.New("blowfish: graph was not built by WithUnknownPresence")
	}
	return b.Domain(), b.Bottom(), nil
}

// ErrBudgetExceeded is returned when a release would exceed the privacy
// budget of an Accountant or Session.
var ErrBudgetExceeded = composition.ErrBudgetExceeded

// ErrDomainMismatch is returned when a dataset (or partition) is defined
// over a different domain than the policy it is used with. Callers that
// serve untrusted requests can detect it with errors.Is and report a
// structured "domain mismatch" failure instead of a generic error.
var ErrDomainMismatch = domain.ErrDomainMismatch

// CompiledPolicy is a policy compiled once into the release engine's plan:
// every query sensitivity, the partition block index and the range-release
// tree layout are precomputed, and dataset indexes are shared across every
// session created from it. Compile once per policy and mint sessions from
// the result when many sessions serve the same policy (the HTTP server
// does); a CompiledPolicy is safe for concurrent use.
type CompiledPolicy struct {
	pol  *Policy
	plan *engine.Plan
}

// Compile precomputes the release plan for a policy. Constrained policies
// compile to a legacy-path CompiledPolicy: sessions still work, through the
// per-release constraints machinery.
func Compile(pol *Policy) (*CompiledPolicy, error) {
	if pol == nil {
		return nil, errors.New("blowfish: nil policy")
	}
	cp := &CompiledPolicy{pol: pol}
	if pol.Unconstrained() {
		plan, err := engine.Compile(pol)
		if err != nil {
			return nil, err
		}
		cp.plan = plan
	}
	return cp, nil
}

// Policy returns the compiled policy.
func (cp *CompiledPolicy) Policy() *Policy { return cp.pol }

// HistogramSensitivity returns S(h, P) from the compiled plan's cache
// (falling back to the per-call computation for constrained policies), so
// callers that need the value at registration time do not pay the graph
// scan twice.
func (cp *CompiledPolicy) HistogramSensitivity() (float64, error) {
	if cp.plan != nil {
		return cp.plan.HistogramSensitivity()
	}
	return HistogramSensitivity(cp.pol)
}

// ExplicitStats reports the compiled edge and connected-component counts
// when the policy's secret graph is explicit; ok is false for implicit
// kinds and constrained (legacy-path) policies.
func (cp *CompiledPolicy) ExplicitStats() (edges, components int, ok bool) {
	if cp.plan == nil {
		return 0, 0, false
	}
	return cp.plan.ExplicitStats()
}

// HopDistance returns d_G(x, y) for the compiled policy's graph. Explicit
// graphs answer from the plan's precomputed all-pairs table (no BFS);
// implicit kinds use their analytic formulas.
func (cp *CompiledPolicy) HopDistance(x, y Point) float64 {
	if cp.plan != nil {
		return cp.plan.HopDistance(x, y)
	}
	return cp.pol.Graph().HopDistance(x, y)
}

// NewSession creates a session over the compiled plan with a total ε budget
// drawing all noise from src.
func (cp *CompiledPolicy) NewSession(budget float64, src *Source) (*Session, error) {
	return cp.NewSessionShards(budget, src, 1)
}

// NewSessionShards creates a session over the compiled plan whose noise
// pool holds `shards` independent streams, so concurrent releases draw
// noise in parallel (see NewSessionShards).
func (cp *CompiledPolicy) NewSessionShards(budget float64, src *Source, shards int) (*Session, error) {
	return newSession(cp.pol, cp.plan, budget, src, shards)
}

// Forget drops the compiled plan's cached index for ds, releasing its
// memory. Call it when a dataset is deleted while the policy lives on.
func (cp *CompiledPolicy) Forget(ds *Dataset) {
	if cp.plan != nil {
		cp.plan.Forget(ds)
	}
}
