package blowfish

import (
	"math"
	"testing"
)

func testDataset(t *testing.T) (*Domain, *Dataset) {
	t.Helper()
	d, err := LineDomain("v", 64)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	ds := NewDataset(d)
	src := NewSource(1)
	for i := 0; i < 500; i++ {
		if err := ds.Add(Point(src.Intn(64))); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return d, ds
}

func TestFacadeHistogramRelease(t *testing.T) {
	d, ds := testDataset(t)
	pol := DifferentialPrivacy(d)
	rel, err := ReleaseHistogram(pol, ds, 1.0, NewSource(2))
	if err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	if len(rel) != 64 {
		t.Fatalf("len = %d, want 64", len(rel))
	}
	s, err := HistogramSensitivity(pol)
	if err != nil || s != 2 {
		t.Fatalf("HistogramSensitivity = %v (err %v), want 2", s, err)
	}
}

func TestFacadePrivateKMeans(t *testing.T) {
	d, err := GridDomain(50, 50)
	if err != nil {
		t.Fatalf("GridDomain: %v", err)
	}
	ds := NewDataset(d)
	src := NewSource(3)
	for i := 0; i < 400; i++ {
		x, y := src.Intn(10), src.Intn(10)
		if src.Uniform() < 0.5 {
			x, y = 40+x, 40+y
		}
		p, err := d.Encode(x, y)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := ds.Add(p); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	base, err := KMeans(ds, 2, 5, NewSource(4))
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	g, err := DistanceThreshold(d, 5)
	if err != nil {
		t.Fatalf("DistanceThreshold: %v", err)
	}
	priv, err := PrivateKMeans(NewPolicy(g), ds, 2, 5, 1.0, NewSource(4))
	if err != nil {
		t.Fatalf("PrivateKMeans: %v", err)
	}
	if priv.Objective < base.Objective*0.5 {
		t.Fatalf("private objective %v implausibly below baseline %v", priv.Objective, base.Objective)
	}
	// Mismatched domains rejected.
	other, err := GridDomain(10, 10)
	if err != nil {
		t.Fatalf("GridDomain: %v", err)
	}
	if _, err := PrivateKMeans(DifferentialPrivacy(other), ds, 2, 5, 1.0, NewSource(5)); err == nil {
		t.Error("mismatched policy domain accepted")
	}
}

func TestFacadeCumulativeRelease(t *testing.T) {
	d, ds := testDataset(t)
	g, err := LineGraph(d)
	if err != nil {
		t.Fatalf("LineGraph: %v", err)
	}
	rel, err := ReleaseCumulativeHistogram(NewPolicy(g), ds, 1.0, NewSource(6))
	if err != nil {
		t.Fatalf("ReleaseCumulativeHistogram: %v", err)
	}
	for i := 1; i < len(rel.Inferred); i++ {
		if rel.Inferred[i] < rel.Inferred[i-1] {
			t.Fatal("inferred cumulative not monotone")
		}
	}
	if rel.Inferred[len(rel.Inferred)-1] > float64(ds.Len()) {
		t.Fatal("inferred cumulative exceeds n")
	}
	got, err := rel.Range(10, 20)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	truth, err := ds.RangeCount(10, 20)
	if err != nil {
		t.Fatalf("RangeCount: %v", err)
	}
	if math.Abs(got-truth) > 30 {
		t.Fatalf("range answer %v far from truth %v", got, truth)
	}
}

func TestFacadeRangeReleaser(t *testing.T) {
	d, ds := testDataset(t)
	g, err := DistanceThreshold(d, 8)
	if err != nil {
		t.Fatalf("DistanceThreshold: %v", err)
	}
	rel, err := NewRangeReleaser(NewPolicy(g), ds, 4, 1.0, NewSource(7))
	if err != nil {
		t.Fatalf("NewRangeReleaser: %v", err)
	}
	got, err := rel.Range(5, 50)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	truth, err := ds.RangeCount(5, 50)
	if err != nil {
		t.Fatalf("RangeCount: %v", err)
	}
	if math.Abs(got-truth) > 60 {
		t.Fatalf("range answer %v far from truth %v", got, truth)
	}
	// Full-domain policy behaves as the hierarchical baseline.
	if _, err := NewRangeReleaser(DifferentialPrivacy(d), ds, 4, 1.0, NewSource(8)); err != nil {
		t.Fatalf("NewRangeReleaser(DP): %v", err)
	}
	// Attribute policy rejected (no θ semantics on a line).
	if _, err := NewRangeReleaser(NewPolicy(AttributeSecrets(d)), ds, 4, 1.0, NewSource(9)); err == nil {
		t.Error("attribute policy accepted by range releaser")
	}
	// Multi-dimensional domain rejected.
	grid, err := GridDomain(4, 4)
	if err != nil {
		t.Fatalf("GridDomain: %v", err)
	}
	gds := NewDataset(grid)
	if err := gds.Add(0); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := NewRangeReleaser(DifferentialPrivacy(grid), gds, 4, 1.0, NewSource(10)); err == nil {
		t.Error("2-D domain accepted by range releaser")
	}
}

func TestFacadeConstrainedRelease(t *testing.T) {
	d, err := NewDomain(Attribute{Name: "A1", Size: 2}, Attribute{Name: "A2", Size: 3})
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	ds := NewDataset(d)
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			p, err := d.Encode(a, b)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			for r := 0; r < 2+a+b; r++ {
				if err := ds.Add(p); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
		}
	}
	m, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	set, err := m.Set(ds)
	if err != nil {
		t.Fatalf("Marginal.Set: %v", err)
	}
	pol := NewConstrainedPolicy(FullDomain(d), set)
	sens, err := HistogramSensitivity(pol)
	if err != nil {
		t.Fatalf("HistogramSensitivity: %v", err)
	}
	if want := m.FullDomainSensitivity(); sens != want {
		t.Fatalf("sensitivity = %v, want %v", sens, want)
	}
	rel, err := ReleaseHistogram(pol, ds, 1.0, NewSource(11))
	if err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	cons, err := ConsistentWithConstraints(pol, rel)
	if err != nil {
		t.Fatalf("ConsistentWithConstraints: %v", err)
	}
	// Marginal cells hold exactly after projection.
	truthA0, err := ds.AttrHistogram(0)
	if err != nil {
		t.Fatalf("AttrHistogram: %v", err)
	}
	var gotA0 float64
	for b := 0; b < 3; b++ {
		p, err := d.Encode(0, b)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		gotA0 += cons[p]
	}
	if math.Abs(gotA0-truthA0[0]) > 1e-6 {
		t.Fatalf("projected A1=0 count %v, want %v", gotA0, truthA0[0])
	}
	// Unconstrained policy has no constraints to project onto.
	if _, err := ConsistentWithConstraints(DifferentialPrivacy(d), rel); err == nil {
		t.Error("projection accepted for unconstrained policy")
	}
}

func TestFacadeAccountant(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	if err := a.Spend("q1", 0.6); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if err := a.Spend("q2", 0.6); err == nil {
		t.Error("over-budget spend accepted")
	}
}

func TestFacadeIsotonic(t *testing.T) {
	out := IsotonicRegression([]float64{3, 1, 2})
	if out[0] != 2 || out[1] != 2 || out[2] != 2 {
		t.Fatalf("IsotonicRegression = %v, want [2 2 2]", out)
	}
}

func TestFacadeLInfThreshold(t *testing.T) {
	d, err := GridDomain(10, 10)
	if err != nil {
		t.Fatalf("GridDomain: %v", err)
	}
	g, err := LInfDistanceThreshold(d, 2)
	if err != nil {
		t.Fatalf("LInfDistanceThreshold: %v", err)
	}
	a, err := d.Encode(0, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := d.Encode(2, 2)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !g.Adjacent(a, b) {
		t.Fatal("diagonal within θ not adjacent under L∞")
	}
	if _, err := LInfDistanceThreshold(d, -1); err == nil {
		t.Error("negative θ accepted")
	}
}

func TestFacadeUnknownPresence(t *testing.T) {
	d, err := LineDomain("age", 50)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	base, err := DistanceThreshold(d, 3)
	if err != nil {
		t.Fatalf("DistanceThreshold: %v", err)
	}
	ext, err := WithUnknownPresence(base)
	if err != nil {
		t.Fatalf("WithUnknownPresence: %v", err)
	}
	extDom, bottom, err := ExtendedDomain(ext)
	if err != nil {
		t.Fatalf("ExtendedDomain: %v", err)
	}
	if extDom.Size() != 51 || bottom != Point(50) {
		t.Fatalf("extended domain %v, ⊥ %d", extDom, bottom)
	}
	if !ext.Adjacent(Point(7), bottom) {
		t.Fatal("⊥ not adjacent to a real value")
	}
	// ExtendedDomain on a non-bottom graph errors.
	if _, _, err := ExtendedDomain(base); err == nil {
		t.Error("ExtendedDomain accepted a plain graph")
	}
	// End-to-end: cumulative release over the extended domain.
	ds := NewDataset(extDom)
	src := NewSource(9)
	for i := 0; i < 300; i++ {
		v := Point(src.Intn(50))
		if src.Uniform() < 0.3 {
			v = bottom
		}
		if err := ds.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	rel, err := ReleaseCumulativeHistogram(NewPolicy(ext), ds, 1.0, src)
	if err != nil {
		t.Fatalf("ReleaseCumulativeHistogram: %v", err)
	}
	if len(rel.Inferred) != 51 {
		t.Fatalf("inferred length = %d", len(rel.Inferred))
	}
}

func TestFacadeWithParticipants(t *testing.T) {
	d, err := LineDomain("v", 8)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	pol := DifferentialPrivacy(d).WithParticipants([]int{0, 2})
	if pol.Participates(1) || !pol.Participates(2) {
		t.Fatal("participant restriction not visible through the facade")
	}
}

func TestFacadePartitionsAndConstraintsFromDataset(t *testing.T) {
	d, err := GridDomain(8, 6)
	if err != nil {
		t.Fatalf("GridDomain: %v", err)
	}
	part, err := UniformGridPartition(d, []int{4, 3})
	if err != nil {
		t.Fatalf("UniformGridPartition: %v", err)
	}
	if part.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", part.NumBlocks())
	}
	byCount, err := UniformPartitionByCount(d, 12)
	if err != nil {
		t.Fatalf("UniformPartitionByCount: %v", err)
	}
	if byCount.NumBlocks() < 3 || byCount.NumBlocks() > 48 {
		t.Fatalf("NumBlocks = %d", byCount.NumBlocks())
	}
	// Partition-policy release through the facade: exact when the policy
	// partition refines the released one.
	pol := NewPolicy(PartitionedSecrets(part))
	ds := NewDataset(d)
	src := NewSource(1)
	for i := 0; i < 200; i++ {
		p, err := d.Encode(src.Intn(8), src.Intn(6))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if err := ds.Add(p); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	rel, err := ReleasePartitionHistogram(pol, ds, part, 1.0, NewSource(2))
	if err != nil {
		t.Fatalf("ReleasePartitionHistogram: %v", err)
	}
	truth, err := ds.PartitionHistogram(part)
	if err != nil {
		t.Fatalf("PartitionHistogram: %v", err)
	}
	for i := range truth {
		if rel[i] != truth[i] {
			t.Fatal("same-partition release not exact")
		}
	}
	// ConstraintsFromDataset round trip.
	q := CountQuery{Name: "x<4", Pred: func(p Point) bool { return d.Value(p, 0) < 4 }}
	set, err := ConstraintsFromDataset([]CountQuery{q}, ds)
	if err != nil {
		t.Fatalf("ConstraintsFromDataset: %v", err)
	}
	if !set.Satisfied(ds) {
		t.Fatal("defining dataset does not satisfy its own constraints")
	}
}

func TestFacadeRangeReleaserCumulative(t *testing.T) {
	d, ds := testDataset(t)
	g, err := DistanceThreshold(d, 4)
	if err != nil {
		t.Fatalf("DistanceThreshold: %v", err)
	}
	rel, err := NewRangeReleaser(NewPolicy(g), ds, 4, 1.0, NewSource(3))
	if err != nil {
		t.Fatalf("NewRangeReleaser: %v", err)
	}
	c, err := rel.Cumulative(63)
	if err != nil {
		t.Fatalf("Cumulative: %v", err)
	}
	if math.Abs(c-float64(ds.Len())) > 40 {
		t.Fatalf("C(max) = %v, far from n = %d", c, ds.Len())
	}
	// ReleaseCumulativeHistogram rejects mismatched domains and 2-D ones.
	other, err := LineDomain("w", 10)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	og, err := LineGraph(other)
	if err != nil {
		t.Fatalf("LineGraph: %v", err)
	}
	if _, err := ReleaseCumulativeHistogram(NewPolicy(og), ds, 1.0, NewSource(4)); err == nil {
		t.Error("mismatched domain accepted")
	}
}
