// Command benchgate is the CI perf-regression gate: it parses two `go test
// -bench` output files (a cached baseline from main and the current run),
// compares the median ns/op of selected benchmarks, and exits non-zero
// when any of them slowed down past the threshold.
//
// Usage:
//
//	benchgate -old baseline.txt -new current.txt \
//	    -bench 'BenchmarkEngineRepeatedHistogram,BenchmarkStreamIngest,BenchmarkEpochRelease' \
//	    -threshold 1.25
//
// Benchmarks are matched by name prefix up to the -procs suffix, so
// `BenchmarkStreamIngest` matches `BenchmarkStreamIngest-8` but not
// `BenchmarkStreamIngestParallel-8`. A gated benchmark missing from either
// file fails the gate (a silently vanished benchmark is itself a
// regression); run with -count >= 3 so the median damps scheduler noise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline benchmark output")
		newPath   = flag.String("new", "", "current benchmark output")
		benches   = flag.String("bench", "", "comma-separated benchmark names to gate")
		threshold = flag.Float64("threshold", 1.25, "fail when new/old median ns/op exceeds this ratio")
		allowNew  = flag.Bool("allow-new", false, "pass gated benchmarks absent from the baseline (freshly added; the next main build baselines them). Absence from the current run still fails")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" || *benches == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old, -new and -bench are required")
		os.Exit(2)
	}
	oldRuns, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newRuns, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	failed := false
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		oldNs, oldN := median(oldRuns[name]), len(oldRuns[name])
		newNs, newN := median(newRuns[name]), len(newRuns[name])
		if oldN == 0 && newN > 0 && *allowNew {
			fmt.Printf("new   %-40s %31s %12.0f ns/op  (no baseline yet)\n", name, "", newNs)
			continue
		}
		if oldN == 0 || newN == 0 {
			fmt.Printf("FAIL  %-40s missing (%d baseline runs, %d current runs)\n", name, oldN, newN)
			failed = true
			continue
		}
		ratio := newNs / oldNs
		verdict := "ok  "
		if ratio > *threshold {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-40s %12.0f ns/op -> %12.0f ns/op  (%.2fx, threshold %.2fx)\n",
			verdict, name, oldNs, newNs, ratio, *threshold)
	}
	if failed {
		fmt.Println("benchgate: performance regression gate FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated benchmarks within threshold")
}

// parseBench extracts ns/op samples per benchmark name (the -procs suffix
// stripped) from `go test -bench` output.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  1234  5678 ns/op ...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				idx = i - 1
				break
			}
		}
		if idx < 0 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs[name] = append(runs[name], ns)
	}
	return runs, sc.Err()
}

// median of a non-empty sample set; 0 for empty.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
