// Command blowfish-batch converts an NDJSON event stream (the same
// one-object-per-line events POST /v1/datasets/{id}/events accepts) into
// the binary columnar batch frames of internal/codec — the zero-copy ingest
// encoding — and either writes them to stdout or POSTs them straight to a
// server, honoring its queue_full backpressure.
//
// Usage:
//
//	# encode to a file, replay it later with curl
//	blowfish-batch -attrs 1 < events.ndjson > events.batch
//	curl -s localhost:8080/v1/datasets/ds-1/events?wait=1 \
//	  -H 'Content-Type: application/x-blowfish-batch' --data-binary @events.batch
//
//	# or stream directly to the server, one frame per -max events
//	blowfish-batch -attrs 1 -max 4096 -wait \
//	  -url http://localhost:8080/v1/datasets/ds-1/events < events.ndjson
//
// Each frame is self-contained (length-prefixed, CRC-checked), so frames
// concatenate: a file of them replays as one request body or many.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"blowfish"
	"blowfish/internal/codec"
)

// eventWire mirrors the server's NDJSON event shape.
type eventWire struct {
	Op  string `json:"op"`
	ID  int    `json:"id"`
	Row []int  `json:"row"`
}

func main() {
	attrs := flag.Int("attrs", 0, "number of row attributes (the dataset domain's width); required")
	max := flag.Int("max", 4096, "events per frame")
	url := flag.String("url", "", "events endpoint to POST frames to (default: write frames to stdout)")
	wait := flag.Bool("wait", false, "ask the server to apply each frame before acking (adds ?wait=1)")
	flag.Parse()
	if *attrs < 0 || *attrs > codec.MaxAttrs {
		fail(fmt.Errorf("-attrs %d out of range [0,%d]", *attrs, codec.MaxAttrs))
	}
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments %v (events are read from stdin)", flag.Args()))
	}
	if *max < 1 {
		fail(fmt.Errorf("-max %d < 1", *max))
	}

	sink := sinkFor(*url, *wait)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var (
		batch  []blowfish.StreamEvent
		frame  []byte
		line   int
		events int
		frames int
		sent   int64
	)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		var err error
		frame, err = codec.AppendFrame(frame[:0], batch, *attrs)
		if err != nil {
			fail(fmt.Errorf("line %d: encoding frame: %w", line, err))
		}
		if err := sink(frame); err != nil {
			fail(err)
		}
		frames++
		sent += int64(len(frame))
		batch = batch[:0]
	}
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev eventWire
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			fail(fmt.Errorf("line %d: %w", line, err))
		}
		batch = append(batch, blowfish.StreamEvent{Op: ev.Op, ID: ev.ID, Row: ev.Row})
		events++
		if len(batch) >= *max {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		fail(fmt.Errorf("reading stdin: %w", err))
	}
	flush()
	fmt.Fprintf(os.Stderr, "blowfish-batch: %d events in %d frames (%d bytes)\n", events, frames, sent)
}

// sinkFor returns the frame consumer: stdout, or a POSTing client that
// backs off and retries on the server's queue_full responses.
func sinkFor(url string, wait bool) func([]byte) error {
	if url == "" {
		return func(frame []byte) error {
			_, err := os.Stdout.Write(frame)
			return err
		}
	}
	if wait {
		sep := "?"
		if bytes.ContainsRune([]byte(url), '?') {
			sep = "&"
		}
		url += sep + "wait=1"
	}
	client := &http.Client{Timeout: 60 * time.Second}
	return func(frame []byte) error {
		for {
			resp, err := client.Post(url, codec.ContentType, bytes.NewReader(frame))
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				return nil
			case http.StatusTooManyRequests:
				// The bounded ingest queue is full; honor Retry-After.
				delay := time.Second
				if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
					delay = time.Duration(secs) * time.Second
				}
				time.Sleep(delay)
			default:
				return fmt.Errorf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blowfish-batch:", err)
	os.Exit(1)
}
