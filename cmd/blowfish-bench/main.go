// Command blowfish-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	blowfish-bench -figure fig1a            # one figure, default scale
//	blowfish-bench -figure all -scale quick # everything, fast
//	blowfish-bench -figure fig2b -scale paper -seed 7
//
// Each figure prints the same rows/series the paper plots (see DESIGN.md
// section 3 for the experiment index and EXPERIMENTS.md for the recorded
// paper-vs-measured comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"blowfish/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		scale  = flag.String("scale", "default", "experiment scale: quick, default, or paper")
		seed   = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale
	case "default":
		sc = experiments.DefaultScale
	case "paper":
		sc = experiments.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick, default, or paper)\n", *scale)
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *figure != "all" {
		if _, ok := experiments.Registry[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %s\n", *figure, strings.Join(ids, ", "))
			os.Exit(2)
		}
		ids = []string{*figure}
	}

	fmt.Printf("# blowfish-bench scale=%s seed=%d\n", sc.Name, *seed)
	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.Registry[id](sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fig.Print(os.Stdout)
		fmt.Printf("# %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
