// Command blowfish-policy inspects a Blowfish policy: it builds a domain
// and a secret-graph specification from flags and reports the
// policy-specific sensitivities that drive every mechanism's noise scale.
//
// Usage:
//
//	blowfish-policy -domain lat:400,lon:300 -graph full
//	blowfish-policy -domain salary:4357 -graph l1 -theta 100
//	blowfish-policy -domain a:4,b:8 -graph attr
//	blowfish-policy -domain x:400,y:300 -graph partition -blocks 100
//	blowfish-policy -domain x:400,y:300 -graph linf -theta 5
//	blowfish-policy -domain age:100 -graph l1 -theta 5 -bottom
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blowfish"
)

func main() {
	var (
		domSpec = flag.String("domain", "v:128", "domain as name:size[,name:size...]")
		graph   = flag.String("graph", "full", "secret graph: full, attr, l1, linf, line, partition")
		theta   = flag.Float64("theta", 10, "distance threshold for -graph l1/linf")
		blocks  = flag.Int("blocks", 100, "block count for -graph partition")
		eps     = flag.Float64("epsilon", 1.0, "privacy budget for noise-scale report")
		bottom  = flag.Bool("bottom", false, "add the ⊥ (unknown presence) extension (1-D domains)")
	)
	flag.Parse()

	dom, err := parseDomain(*domSpec)
	if err != nil {
		fail(err)
	}
	var g blowfish.SecretGraph
	switch *graph {
	case "full":
		g = blowfish.FullDomain(dom)
	case "attr":
		g = blowfish.AttributeSecrets(dom)
	case "l1":
		g, err = blowfish.DistanceThreshold(dom, *theta)
	case "linf":
		g, err = blowfish.LInfDistanceThreshold(dom, *theta)
	case "line":
		g, err = blowfish.LineGraph(dom)
	case "partition":
		var part blowfish.Partition
		part, err = blowfish.UniformPartitionByCount(dom, *blocks)
		if err == nil {
			g = blowfish.PartitionedSecrets(part)
		}
	default:
		err = fmt.Errorf("unknown graph %q", *graph)
	}
	if err != nil {
		fail(err)
	}
	if *bottom {
		g, err = blowfish.WithUnknownPresence(g)
		if err != nil {
			fail(err)
		}
		dom = g.Domain()
	}

	pol := blowfish.NewPolicy(g)
	fmt.Printf("policy %s over %v\n\n", pol.Name(), dom)

	hist, err := blowfish.HistogramSensitivity(pol)
	if err != nil {
		fail(err)
	}
	report("complete histogram h", hist, *eps)

	sum, err := pol.SumSensitivity()
	if err != nil {
		fail(err)
	}
	report("k-means qsum (Lemma 6.1)", sum, *eps)

	if dom.NumAttrs() == 1 {
		cum, err := pol.CumulativeHistogramSensitivity()
		if err != nil {
			fail(err)
		}
		report("cumulative histogram S_T", cum, *eps)
	}
	fmt.Printf("\ndomain diameter d(T) = %g; graph max edge length = %g\n",
		dom.Diameter(), g.MaxEdgeDistance())
}

func report(name string, sens, eps float64) {
	fmt.Printf("%-28s S(f,P) = %8g  Laplace scale at ε=%g: %g\n", name, sens, eps, sens/eps)
}

func parseDomain(spec string) (*blowfish.Domain, error) {
	var attrs []blowfish.Attribute
	for _, part := range strings.Split(spec, ",") {
		nv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nv) != 2 {
			return nil, fmt.Errorf("bad attribute %q (want name:size)", part)
		}
		size, err := strconv.Atoi(nv[1])
		if err != nil {
			return nil, fmt.Errorf("bad size in %q: %v", part, err)
		}
		attrs = append(attrs, blowfish.Attribute{Name: nv[0], Size: size})
	}
	return blowfish.NewDomain(attrs...)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blowfish-policy:", err)
	os.Exit(1)
}
