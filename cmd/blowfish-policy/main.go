// Command blowfish-policy inspects a Blowfish policy: it builds a domain
// and a secret-graph specification from flags and reports the
// policy-specific sensitivities that drive every mechanism's noise scale.
//
// Usage:
//
//	blowfish-policy -domain lat:400,lon:300 -graph full
//	blowfish-policy -domain salary:4357 -graph l1 -theta 100
//	blowfish-policy -domain a:4,b:8 -graph attr
//	blowfish-policy -domain x:400,y:300 -graph partition -blocks 100
//	blowfish-policy -domain x:400,y:300 -graph linf -theta 5
//	blowfish-policy -domain age:100 -graph l1 -theta 5 -bottom
//
// Subcommands work on policy spec files — the same JSON body POST
// /v1/policies accepts ({"domain": [...], "graph": {...}}), including the
// custom kinds "explicit" and "compose":
//
//	blowfish-policy lint spec.json      # validate; exit non-zero on errors
//	blowfish-policy compile spec.json   # validate, compile the release plan,
//	                                    # and report sensitivities and structure
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"blowfish"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "lint":
			runSpec(os.Args[2:], false)
			return
		case "compile":
			runSpec(os.Args[2:], true)
			return
		}
	}
	runFlags()
}

// policyFile mirrors the server's CreatePolicyRequest wire shape, so a
// file that lints here uploads unchanged with curl.
type policyFile struct {
	Domain []attrSpec         `json:"domain"`
	Graph  blowfish.GraphSpec `json:"graph"`
}

type attrSpec struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

// runSpec implements the lint and compile subcommands.
func runSpec(args []string, compile bool) {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	eps := fs.Float64("epsilon", 1.0, "privacy budget for the noise-scale report")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("want exactly one spec file, got %d arguments", fs.NArg()))
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var file policyFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	// A lint that passes must mean the whole file is the spec: trailing
	// content (a second object, merge droppings) is an error, not ignored.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		fail(fmt.Errorf("%s: trailing content after the policy spec", path))
	}
	if len(file.Domain) == 0 {
		fail(fmt.Errorf("%s: spec declares no domain attributes", path))
	}
	attrs := make([]blowfish.Attribute, len(file.Domain))
	for i, a := range file.Domain {
		attrs[i] = blowfish.Attribute{Name: a.Name, Size: a.Size}
	}
	dom, err := blowfish.NewDomain(attrs...)
	if err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	g, _, err := blowfish.BuildGraph(dom, file.Graph)
	if err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	if !compile {
		fmt.Printf("%s: ok — graph %s over %v\n", path, g.Name(), dom)
		if edges, comps, ok := blowfish.GraphStats(g); ok {
			fmt.Printf("  %d edges, %d connected components\n", edges, comps)
		}
		return
	}

	pol := blowfish.NewPolicy(g)
	cp, err := blowfish.Compile(pol)
	if err != nil {
		fail(fmt.Errorf("%s: compiling plan: %v", path, err))
	}
	fmt.Printf("policy %s over %v\n", pol.Name(), dom)
	if edges, comps, ok := cp.ExplicitStats(); ok {
		fmt.Printf("compiled explicit graph: %d edges, %d connected components\n", edges, comps)
	}
	fmt.Println()
	hist, err := cp.HistogramSensitivity()
	if err != nil {
		fail(err)
	}
	report("complete histogram h", hist, *eps)
	sum, err := pol.SumSensitivity()
	if err != nil {
		fail(err)
	}
	report("k-means qsum (Lemma 6.1)", sum, *eps)
	if dom.NumAttrs() == 1 {
		cum, err := pol.CumulativeHistogramSensitivity()
		if err != nil {
			fail(err)
		}
		report("cumulative histogram S_T", cum, *eps)
	}
	fmt.Printf("\ndomain diameter d(T) = %g; graph max edge length = %g\n",
		dom.Diameter(), g.MaxEdgeDistance())
}

func runFlags() {
	var (
		domSpec = flag.String("domain", "v:128", "domain as name:size[,name:size...]")
		graph   = flag.String("graph", "full", "secret graph: full, attr, l1, linf, line, partition")
		theta   = flag.Float64("theta", 10, "distance threshold for -graph l1/linf")
		blocks  = flag.Int("blocks", 100, "block count for -graph partition")
		eps     = flag.Float64("epsilon", 1.0, "privacy budget for noise-scale report")
		bottom  = flag.Bool("bottom", false, "add the ⊥ (unknown presence) extension (1-D domains)")
	)
	flag.Parse()

	dom, err := parseDomain(*domSpec)
	if err != nil {
		fail(err)
	}
	var g blowfish.SecretGraph
	switch *graph {
	case "full":
		g = blowfish.FullDomain(dom)
	case "attr":
		g = blowfish.AttributeSecrets(dom)
	case "l1":
		g, err = blowfish.DistanceThreshold(dom, *theta)
	case "linf":
		g, err = blowfish.LInfDistanceThreshold(dom, *theta)
	case "line":
		g, err = blowfish.LineGraph(dom)
	case "partition":
		var part blowfish.Partition
		part, err = blowfish.UniformPartitionByCount(dom, *blocks)
		if err == nil {
			g = blowfish.PartitionedSecrets(part)
		}
	default:
		err = fmt.Errorf("unknown graph %q", *graph)
	}
	if err != nil {
		fail(err)
	}
	if *bottom {
		g, err = blowfish.WithUnknownPresence(g)
		if err != nil {
			fail(err)
		}
		dom = g.Domain()
	}

	pol := blowfish.NewPolicy(g)
	fmt.Printf("policy %s over %v\n\n", pol.Name(), dom)

	hist, err := blowfish.HistogramSensitivity(pol)
	if err != nil {
		fail(err)
	}
	report("complete histogram h", hist, *eps)

	sum, err := pol.SumSensitivity()
	if err != nil {
		fail(err)
	}
	report("k-means qsum (Lemma 6.1)", sum, *eps)

	if dom.NumAttrs() == 1 {
		cum, err := pol.CumulativeHistogramSensitivity()
		if err != nil {
			fail(err)
		}
		report("cumulative histogram S_T", cum, *eps)
	}
	fmt.Printf("\ndomain diameter d(T) = %g; graph max edge length = %g\n",
		dom.Diameter(), g.MaxEdgeDistance())
}

func report(name string, sens, eps float64) {
	fmt.Printf("%-28s S(f,P) = %8g  Laplace scale at ε=%g: %g\n", name, sens, eps, sens/eps)
}

func parseDomain(spec string) (*blowfish.Domain, error) {
	var attrs []blowfish.Attribute
	for _, part := range strings.Split(spec, ",") {
		nv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nv) != 2 {
			return nil, fmt.Errorf("bad attribute %q (want name:size)", part)
		}
		size, err := strconv.Atoi(nv[1])
		if err != nil {
			return nil, fmt.Errorf("bad size in %q: %v", part, err)
		}
		attrs = append(attrs, blowfish.Attribute{Name: nv[0], Size: size})
	}
	return blowfish.NewDomain(attrs...)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blowfish-policy:", err)
	os.Exit(1)
}
