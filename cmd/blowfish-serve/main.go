// Command blowfish-serve runs the Blowfish policy-release HTTP service: a
// JSON API for declaring domains and secret-graph policies, uploading
// datasets, streaming events into them, opening budgeted sessions and
// continual-release streams, and drawing histogram, cumulative and
// range-query releases (see internal/server and the README's curl
// walkthroughs).
//
// Usage:
//
//	blowfish-serve -addr :8080 -seed 1 -session-ttl 30m
//
// With -data-dir the server is durable: every acknowledged operation —
// registry changes, budget charges, ingest batches, epoch closes — is
// written to a CRC-checked write-ahead log before the response is sent
// (-fsync controls when records hit stable storage), and snapshots bound
// recovery time (-snapshot-every, plus one at graceful shutdown and on
// POST /v1/admin/checkpoint). On restart the server loads the latest
// snapshot, replays the log tail, and refuses exactly the releases the
// pre-crash server would have refused: privacy budgets are monotone
// across crashes, stream cursors resume where clients left off.
//
// On SIGINT/SIGTERM the server shuts down in order: stop accepting
// connections and drain in-flight requests (http.Server.Shutdown with a
// deadline), stop the session-TTL reaper, then stop every stream epoch
// scheduler and per-dataset ingest writer (flushing queued events) and —
// when durable — take the final checkpoint, so no goroutine outlives main
// and no acknowledged event is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blowfish/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "base seed for per-session noise sources")
		ttl       = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime (0 = never expire)")
		sweep     = flag.Duration("sweep", time.Minute, "session expiry sweep interval")
		drain     = flag.Duration("drain", 5*time.Second, "shutdown deadline for in-flight requests")
		dataDir   = flag.String("data-dir", "", "durable state directory (empty = in-memory)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "sync period for -fsync=interval")
		snapEvery = flag.Int("snapshot-every", 50000, "WAL records between automatic snapshots (0 = only shutdown/manual)")
	)
	flag.Parse()

	srv, err := server.Open(server.Config{
		Seed:       *seed,
		SessionTTL: *ttl,
		Durability: server.DurabilityConfig{
			Dir:           *dataDir,
			Fsync:         *fsync,
			FsyncInterval: *fsyncIvl,
			SnapshotEvery: *snapEvery,
		},
	})
	if err != nil {
		log.Fatalf("blowfish-serve: recovering %s: %v", *dataDir, err)
	}
	if *dataDir != "" {
		log.Printf("durable state in %s (fsync=%s, snapshot-every=%d)", *dataDir, *fsync, *snapEvery)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reaperDone := make(chan struct{})
	if *ttl > 0 {
		go func() {
			defer close(reaperDone)
			t := time.NewTicker(*sweep)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.ExpireSessions(); n > 0 {
						log.Printf("expired %d idle session(s)", n)
					}
				}
			}
		}()
	} else {
		close(reaperDone)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("blowfish-serve shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("blowfish-serve listening on %s (seed=%d, session-ttl=%s)", *addr, *seed, *ttl)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Order matters: drain HTTP first (no new work can arrive), then the
	// reaper, then the streaming goroutines — srv.Close stops every stream
	// epoch ticker and flushes every dataset's event queue.
	<-shutdownDone
	stop()
	<-reaperDone
	srv.Close()
	log.Print("blowfish-serve stopped")
}

// logRequests is a minimal structured-ish access log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
