// Command blowfish-serve runs the Blowfish policy-release HTTP service: a
// JSON API for declaring domains and secret-graph policies, uploading
// datasets, streaming events into them, opening budgeted sessions and
// continual-release streams, and drawing histogram, cumulative and
// range-query releases (see internal/server and the README's curl
// walkthroughs).
//
// Usage:
//
//	blowfish-serve -addr :8080 -seed 1 -session-ttl 30m
//
// With -data-dir the server is durable: every acknowledged operation —
// registry changes, budget charges, ingest batches, epoch closes — is
// written to a CRC-checked write-ahead log before the response is sent
// (-fsync controls when records hit stable storage), and snapshots bound
// recovery time (-snapshot-every, plus one at graceful shutdown and on
// POST /v1/admin/checkpoint). On restart the server loads the latest
// snapshot, replays the log tail, and refuses exactly the releases the
// pre-crash server would have refused: privacy budgets are monotone
// across crashes, stream cursors resume where clients left off.
//
// With -shards N (N > 1) the server runs N shard workers, each a full
// service core with its own registries, WAL directory
// (<data-dir>/shard-<i>) and snapshot cycle; datasets are routed across
// them by rendezvous hashing and sessions/streams are colocated with
// their dataset (see internal/shard). The shard count is fixed per data
// directory. The default -shards 1 serves exactly the single-core layout
// earlier releases wrote.
//
// Observability: the API mux serves a Prometheus text exposition at
// GET /metrics (request latencies, per-policy release latencies, budget
// gauges, ingest queue depths, WAL fsync latency, epoch lag). With
// -metrics-addr an admin mux additionally serves /metrics — and, when
// -pprof is also set, the net/http/pprof handlers — on a separate
// listener that can stay off the public network. -log-level selects the
// slog threshold (debug logs every request and epoch close).
//
// On SIGINT/SIGTERM the server shuts down in order: stop accepting
// connections and drain in-flight requests (http.Server.Shutdown with a
// deadline), stop the session-TTL reaper, then stop every stream epoch
// scheduler and per-dataset ingest writer (flushing queued events) and —
// when durable — take the final checkpoint, so no goroutine outlives main
// and no acknowledged event is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blowfish/internal/server"
	"blowfish/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", 1, "base seed for per-session noise sources")
		ttl         = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime (0 = never expire)")
		sweep       = flag.Duration("sweep", time.Minute, "session expiry sweep interval")
		drain       = flag.Duration("drain", 5*time.Second, "shutdown deadline for in-flight requests")
		dataDir     = flag.String("data-dir", "", "durable state directory (empty = in-memory)")
		fsync       = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		fsyncIvl    = flag.Duration("fsync-interval", 100*time.Millisecond, "sync period for -fsync=interval")
		snapEvery   = flag.Int("snapshot-every", 50000, "WAL records between automatic snapshots (0 = only shutdown/manual)")
		metricsAddr = flag.String("metrics-addr", "", "admin listen address for /metrics (and /debug/pprof with -pprof); empty = API mux only")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof on the -metrics-addr admin mux")
		logLevel    = flag.String("log-level", "info", "slog threshold: debug, info, warn or error")
		shards      = flag.Int("shards", 1, "shard workers; >1 routes datasets across per-shard cores (fixed per data directory)")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-serve: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	openStart := time.Now()
	cfg := server.Config{
		Seed:       *seed,
		SessionTTL: *ttl,
		Logger:     logger,
		Durability: server.DurabilityConfig{
			Dir:           *dataDir,
			Fsync:         *fsync,
			FsyncInterval: *fsyncIvl,
			SnapshotEvery: *snapEvery,
		},
	}
	// -shards 1 takes the single-core path unchanged: same on-disk layout,
	// same metrics exposition, byte-for-byte what earlier releases served.
	// -shards N>1 routes datasets across N cores, each with its own WAL
	// under <data-dir>/shard-<i>; the count is fixed per data directory.
	var srv *server.Server
	if *shards > 1 {
		router, rerr := shard.Open(cfg, *shards)
		if rerr != nil {
			logger.Error("recovery failed", "dir", *dataDir, "shards", *shards, "err", rerr)
			os.Exit(1)
		}
		srv = server.NewWith(router)
	} else {
		srv, err = server.Open(cfg)
		if err != nil {
			logger.Error("recovery failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
	}
	if *dataDir != "" {
		logger.Info("durable state ready", "dir", *dataDir, "fsync", *fsync,
			"snapshot_every", *snapEvery, "shards", *shards, "elapsed", time.Since(openStart))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(logger, srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The admin mux carries the scrape target (and optionally pprof) on its
	// own listener so neither needs to be exposed where the API is.
	var adminSrv *http.Server
	if *metricsAddr != "" {
		admin := http.NewServeMux()
		admin.Handle("GET /metrics", srv.MetricsHandler())
		if *pprofOn {
			admin.HandleFunc("/debug/pprof/", pprof.Index)
			admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
			admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		adminSrv = &http.Server{Addr: *metricsAddr, Handler: admin, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("admin listening", "addr", *metricsAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reaperDone := make(chan struct{})
	if *ttl > 0 {
		go func() {
			defer close(reaperDone)
			t := time.NewTicker(*sweep)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.ExpireSessions(); n > 0 {
						logger.Info("expired idle sessions", "count", n)
					}
				}
			}
		}()
	} else {
		close(reaperDone)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("http drain incomplete", "err", err)
		}
		if adminSrv != nil {
			_ = adminSrv.Shutdown(shutdownCtx)
		}
	}()

	logger.Info("listening", "addr", *addr, "seed", *seed, "session_ttl", *ttl)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	// Order matters: drain HTTP first (no new work can arrive), then the
	// reaper, then the streaming goroutines — srv.Close stops every stream
	// epoch ticker and flushes every dataset's event queue.
	<-shutdownDone
	stop()
	<-reaperDone
	closeStart := time.Now()
	srv.Close()
	if n := srv.CloseLeaked(); n > 0 {
		logger.Error("close abandoned goroutines at drain deadline", "leaked", n)
	}
	logger.Info("stopped", "close_elapsed", time.Since(closeStart))
}

// parseLevel maps the -log-level flag onto a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
}

// logRequests is the access log: one debug record per request. The
// serious per-route accounting lives in the server's metrics; this exists
// for tailing a dev server.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"elapsed", time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
