// Command blowfish-stress drives a Blowfish policy-release server with
// thousands of concurrent sessions — mixed ad-hoc releases, event ingest,
// epoch closes and long-poll release readers — and writes a latency and
// throughput report (p50/p95/p99 per operation) to a JSON file.
//
// Usage:
//
//	blowfish-stress -sessions 10000 -duration 30s -out BENCH_load.json
//	blowfish-stress -addr http://10.0.0.7:8080 -sessions 1000
//
// With no -addr the harness starts an in-memory server in-process and
// points the load at it over an in-memory listener (net.Pipe pairs, no
// sockets), so a single command produces a load profile and the file-
// descriptor limit never caps -sessions (the CI load-smoke job runs
// exactly that). Against a live -addr it speaks real TCP and only ever
// creates resources under the run's own policy and dataset, so it is
// safe to point at a shared dev server.
//
// The op mix is deterministic (counter-scheduled, splitmix64 row values
// seeded by -seed): two runs against equal servers issue identical request
// sequences per worker, which makes regressions in the report comparable
// run over run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blowfish/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target server base URL (empty = start an in-process server)")
		sessions = flag.Int("sessions", 10000, "concurrent release sessions")
		streams  = flag.Int("streams", 8, "continual-release streams, each with a long-poll reader and an epoch closer")
		ingest   = flag.Int("ingesters", 4, "event-ingest feeder goroutines")
		duration = flag.Duration("duration", 30*time.Second, "steady-state load duration")
		out      = flag.String("out", "BENCH_load.json", "report path")
		seed     = flag.Int64("seed", 1, "row-value generator seed")
		setupPar = flag.Int("setup-parallelism", 128, "concurrent session-create requests during setup")
		failErrs = flag.Bool("fail-on-errors", false, "exit 1 if the run recorded any request errors (CI gating)")
	)
	flag.Parse()

	h := &harness{
		sessions: *sessions,
		streams:  *streams,
		ingest:   *ingest,
		duration: *duration,
		seed:     *seed,
		setupPar: *setupPar,
		rec:      newRecorder(),
	}

	tr := &http.Transport{
		MaxIdleConns:        0, // unlimited: every worker keeps its connection warm
		MaxIdleConnsPerHost: *sessions + 4**streams + *ingest + 16,
	}
	var inproc *inprocServer
	h.base = *addr
	if h.base == "" {
		var err error
		inproc, err = startInproc(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blowfish-stress: %v\n", err)
			os.Exit(1)
		}
		h.base = inproc.base
		tr.DialContext = inproc.ln.dial
	}
	h.client = &http.Client{Transport: tr}

	report, err := h.run()
	if inproc != nil {
		inproc.stop()
		report.InProcess = true
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-stress: %v\n", err)
		os.Exit(1)
	}
	payload, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-stress: encoding report: %v\n", err)
		os.Exit(1)
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-stress: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("blowfish-stress: %d sessions, %.0f req/s, %d errors -> %s\n",
		h.sessions, report.Totals.ThroughputRPS, report.Totals.Errors, *out)
	if *failErrs && report.Totals.Errors > 0 {
		for name, op := range report.Ops {
			if op.Errors > 0 {
				fmt.Fprintf(os.Stderr, "blowfish-stress: op %s: %d errors, first: %s\n",
					name, op.Errors, op.FirstError)
			}
		}
		os.Exit(1)
	}
}

// inprocServer is the self-hosted target used when no -addr is given.
// It serves over a memListener rather than a loopback socket: at 10k+
// concurrent sessions a TCP target would burn two file descriptors per
// kept-alive connection (both ends live in this process) and hit the
// fd rlimit long before the server's actual limits.
type inprocServer struct {
	base string
	srv  *server.Server
	http *http.Server
	ln   *memListener
}

func startInproc(seed int64) (*inprocServer, error) {
	ln := newMemListener()
	srv := server.New(server.Config{Seed: seed})
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	return &inprocServer{
		base: "http://blowfish.inproc",
		srv:  srv,
		http: hs,
		ln:   ln,
	}, nil
}

func (s *inprocServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.http.Shutdown(ctx)
	s.srv.Close()
}

// memListener is an in-memory net.Listener: every dial hands the server
// half of a net.Pipe to Accept, so connections cost goroutines and
// channels but zero file descriptors.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

// dial is the http.Transport DialContext for the in-process target.
func (l *memListener) dial(ctx context.Context, _, _ string) (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.conns <- srv:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "in-process" }

// --- load harness ----------------------------------------------------------

const (
	domainSize  = 64
	initialRows = 512
	releaseEps  = 0.001
	sessBudget  = 1e6
	batchEvents = 100
)

type harness struct {
	base     string
	client   *http.Client
	sessions int
	streams  int
	ingest   int
	duration time.Duration
	seed     int64
	setupPar int
	rec      *recorder
}

func (h *harness) run() (*Report, error) {
	setupStart := time.Now()
	policyID, datasetID, err := h.setupFixtures()
	if err != nil {
		return nil, err
	}
	sessionIDs, err := h.createSessions(policyID, datasetID)
	if err != nil {
		return nil, err
	}
	streamIDs, err := h.createStreams(policyID, datasetID)
	if err != nil {
		return nil, err
	}
	setupElapsed := time.Since(setupStart)

	ctx, cancel := context.WithTimeout(context.Background(), h.duration)
	defer cancel()
	var wg sync.WaitGroup
	loadStart := time.Now()
	for i, id := range sessionIDs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.sessionWorker(ctx, id, datasetID, h.seed+int64(i))
		}()
	}
	for i := 0; i < h.ingest; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ingestWorker(ctx, datasetID, h.seed^int64(1000+i))
		}()
	}
	for _, id := range streamIDs {
		wg.Add(2)
		go func() {
			defer wg.Done()
			h.epochWorker(ctx, id)
		}()
		go func() {
			defer wg.Done()
			h.longPollWorker(ctx, id)
		}()
	}
	wg.Wait()
	elapsed := time.Since(loadStart)

	return h.rec.report(reportConfig{
		Target:       h.base,
		Sessions:     h.sessions,
		Streams:      h.streams,
		Ingesters:    h.ingest,
		DurationS:    elapsed.Seconds(),
		SetupS:       setupElapsed.Seconds(),
		StartedUnix:  setupStart.Unix(),
		ReleaseEps:   releaseEps,
		DomainSize:   domainSize,
		BatchEvents:  batchEvents,
		SessionSetup: h.setupPar,
	}), nil
}

// setupFixtures registers the run's policy and dataset.
func (h *harness) setupFixtures() (policyID, datasetID string, err error) {
	dom := []server.AttrSpec{{Name: "v", Size: domainSize}}
	var pol server.PolicyResponse
	if err := h.post(context.Background(), "/v1/policies",
		server.CreatePolicyRequest{Domain: dom, Graph: server.GraphSpec{Kind: "line"}}, &pol); err != nil {
		return "", "", fmt.Errorf("creating policy: %w", err)
	}
	rows := make([][]int, initialRows)
	g := splitmix{state: uint64(h.seed)}
	for i := range rows {
		rows[i] = []int{int(g.next() % domainSize)}
	}
	var ds server.DatasetResponse
	if err := h.post(context.Background(), "/v1/datasets",
		server.CreateDatasetRequest{PolicyID: pol.ID, Rows: rows}, &ds); err != nil {
		return "", "", fmt.Errorf("creating dataset: %w", err)
	}
	return pol.ID, ds.ID, nil
}

// createSessions opens the worker sessions with bounded parallelism,
// recording per-create latency under op "session_create". The dataset id
// rides along as the placement hint: against a sharded server every
// session is colocated with the dataset its releases read, so the run
// measures steady-state release latency rather than routing misses; a
// single-core server ignores the hint.
func (h *harness) createSessions(policyID, datasetID string) ([]string, error) {
	ids := make([]string, h.sessions)
	sem := make(chan struct{}, h.setupPar)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for i := range ids {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var resp server.SessionResponse
			start := time.Now()
			err := h.post(context.Background(), "/v1/sessions",
				server.CreateSessionRequest{PolicyID: policyID, Budget: sessBudget, DatasetID: datasetID}, &resp)
			h.rec.observe("session_create", time.Since(start), err)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			ids[i] = resp.ID
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, fmt.Errorf("creating sessions: %w", err)
	}
	return ids, nil
}

// createStreams opens the continual-release streams (manual epoch closes;
// the epoch workers drive the cadence so close latency is measured).
func (h *harness) createStreams(policyID, datasetID string) ([]string, error) {
	ids := make([]string, 0, h.streams)
	for i := 0; i < h.streams; i++ {
		var resp server.StreamResponse
		err := h.post(context.Background(), "/v1/streams", server.CreateStreamRequest{
			PolicyID:  policyID,
			DatasetID: datasetID,
			Budget:    sessBudget,
			Epoch:     server.EpochSpec{Epsilon: releaseEps},
			Kinds:     []string{"histogram"},
		}, &resp)
		if err != nil {
			return nil, fmt.Errorf("creating stream %d: %w", i, err)
		}
		ids = append(ids, resp.ID)
	}
	return ids, nil
}

// sessionWorker loops a deterministic op mix on one session: 50% range
// releases, 30% histograms, 10% cumulative, 10% budget reads.
func (h *harness) sessionWorker(ctx context.Context, sessionID, datasetID string, seed int64) {
	g := splitmix{state: uint64(seed)}
	for i := 0; ctx.Err() == nil; i++ {
		var (
			op    string
			start = time.Now()
			err   error
		)
		switch i % 10 {
		case 0, 1, 2, 3, 4:
			op = "release_range"
			lo := int(g.next() % (domainSize / 2))
			hi := lo + int(g.next()%(domainSize/2))
			err = h.post(ctx, "/v1/sessions/"+sessionID+"/releases/range", server.RangeRequest{
				DatasetID: datasetID,
				Epsilon:   releaseEps,
				Queries:   []server.RangeQuery{{Lo: lo, Hi: hi}},
			}, nil)
		case 5, 6, 7:
			op = "release_histogram"
			err = h.post(ctx, "/v1/sessions/"+sessionID+"/releases/histogram",
				server.HistogramRequest{DatasetID: datasetID, Epsilon: releaseEps}, nil)
		case 8:
			op = "release_cumulative"
			err = h.post(ctx, "/v1/sessions/"+sessionID+"/releases/cumulative",
				server.CumulativeRequest{DatasetID: datasetID, Epsilon: releaseEps}, nil)
		default:
			op = "session_get"
			err = h.get(ctx, "/v1/sessions/"+sessionID, nil)
		}
		if ctx.Err() != nil {
			return // shutdown cancellation, not a server error
		}
		h.rec.observe(op, time.Since(start), err)
	}
}

// ingestWorker streams event batches into the shared dataset. A 429 is
// the server's designed backpressure signal (nothing was enqueued), not
// a failure: the worker backs off and resends, recording the rejection
// under its own op so queue saturation stays visible in the report.
func (h *harness) ingestWorker(ctx context.Context, datasetID string, seed int64) {
	g := splitmix{state: uint64(seed)}
	for ctx.Err() == nil {
		events := make([]server.EventWire, batchEvents)
		for i := range events {
			events[i] = server.EventWire{Op: "append", Row: []int{int(g.next() % domainSize)}}
		}
		start := time.Now()
		err := h.post(ctx, "/v1/datasets/"+datasetID+"/events",
			server.EventsRequest{Events: events}, nil)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errBackpressure) {
			h.rec.observe("ingest_backpressure", time.Since(start), nil)
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		h.rec.observe("ingest_events", time.Since(start), err)
	}
}

// epochWorker closes its stream's epoch every 100ms.
func (h *harness) epochWorker(ctx context.Context, streamID string) {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		start := time.Now()
		err := h.post(ctx, "/v1/streams/"+streamID+"/epochs", struct{}{}, nil)
		if ctx.Err() != nil {
			return
		}
		h.rec.observe("epoch_close", time.Since(start), err)
	}
}

// longPollWorker follows its stream's release cursor with wait_ms
// long-polls, the pattern a live dashboard consumer uses.
func (h *harness) longPollWorker(ctx context.Context, streamID string) {
	since := uint64(0)
	for ctx.Err() == nil {
		var resp server.StreamReleasesResponse
		start := time.Now()
		err := h.get(ctx, fmt.Sprintf("/v1/streams/%s/releases?since=%d&wait_ms=500", streamID, since), &resp)
		if ctx.Err() != nil {
			return
		}
		h.rec.observe("longpoll_releases", time.Since(start), err)
		if err == nil {
			since = resp.NextSince
		}
	}
}

// --- HTTP plumbing ---------------------------------------------------------

// errBackpressure marks a 429 queue_full response: explicit server
// backpressure a well-behaved producer retries after backing off.
var errBackpressure = errors.New("server backpressure (429 queue_full)")

func (h *harness) post(ctx context.Context, path string, body, into any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return h.do(req, into)
}

func (h *harness) get(ctx context.Context, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+path, nil)
	if err != nil {
		return err
	}
	return h.do(req, into)
}

func (h *harness) do(req *http.Request, into any) error {
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, errBackpressure)
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(msg))
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// --- latency recording -----------------------------------------------------

// recorder accumulates per-op latency samples. Sharded by op under one
// mutex each; at thousands of ops/s the append is nanoseconds, so the
// contention is negligible next to an HTTP round trip.
type recorder struct {
	mu  sync.Mutex
	ops map[string]*opSamples
}

type opSamples struct {
	mu       sync.Mutex
	seconds  []float64
	errors   int64
	firstErr string
}

func newRecorder() *recorder {
	return &recorder{ops: make(map[string]*opSamples)}
}

func (r *recorder) op(name string) *opSamples {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.ops[name]
	if !ok {
		s = &opSamples{}
		r.ops[name] = s
	}
	return s
}

func (r *recorder) observe(name string, d time.Duration, err error) {
	s := r.op(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errors++
		if s.firstErr == "" {
			s.firstErr = err.Error()
		}
		return
	}
	s.seconds = append(s.seconds, d.Seconds())
}

// Report is the BENCH_load.json schema.
type Report struct {
	Config    reportConfig        `json:"config"`
	Totals    reportTotals        `json:"totals"`
	Ops       map[string]opReport `json:"ops"`
	InProcess bool                `json:"in_process"`
}

type reportConfig struct {
	Target       string  `json:"target"`
	Sessions     int     `json:"sessions"`
	Streams      int     `json:"streams"`
	Ingesters    int     `json:"ingesters"`
	DurationS    float64 `json:"duration_s"`
	SetupS       float64 `json:"setup_s"`
	StartedUnix  int64   `json:"started_unix"`
	ReleaseEps   float64 `json:"release_epsilon"`
	DomainSize   int     `json:"domain_size"`
	BatchEvents  int     `json:"batch_events"`
	SessionSetup int     `json:"setup_parallelism"`
}

type reportTotals struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type opReport struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	FirstError string  `json:"first_error,omitempty"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
}

func (r *recorder) report(cfg reportConfig) *Report {
	rep := &Report{Config: cfg, Ops: make(map[string]opReport)}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, s := range r.ops {
		s.mu.Lock()
		samples := append([]float64(nil), s.seconds...)
		errs, firstErr := s.errors, s.firstErr
		s.mu.Unlock()
		sort.Float64s(samples)
		op := opReport{Count: int64(len(samples)), Errors: errs, FirstError: firstErr}
		if len(samples) > 0 {
			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			op.MeanMS = sum / float64(len(samples)) * 1000
			op.P50MS = percentile(samples, 0.50) * 1000
			op.P95MS = percentile(samples, 0.95) * 1000
			op.P99MS = percentile(samples, 0.99) * 1000
			op.MaxMS = samples[len(samples)-1] * 1000
		}
		rep.Ops[name] = op
		// session_create happens during setup, before the timed window, so
		// it contributes latency stats but not steady-state throughput.
		if name != "session_create" {
			rep.Totals.Requests += op.Count
		}
		rep.Totals.Errors += errs
	}
	if cfg.DurationS > 0 {
		rep.Totals.ThroughputRPS = float64(rep.Totals.Requests) / cfg.DurationS
	}
	return rep
}

// percentile interpolates q in sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// splitmix is a tiny deterministic value generator for row synthesis (NOT
// privacy noise — releases draw their noise inside the server from
// internal/noise; this only spreads load across domain buckets).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
