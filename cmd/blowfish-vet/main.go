// Command blowfish-vet runs the repository's custom invariant analyzers
// (internal/analysis) over a package pattern and exits nonzero if any
// unsuppressed finding remains. It is the mechanical form of the review
// checklist that grew around PRs 1–5: every rule it enforces exists
// because the property it guards — ε-accounting, write-ahead ordering,
// replay determinism, lock ordering — fails silently and is expensive to
// rediscover under a fuzzer or a crash hammer.
//
// Usage:
//
//	go run ./cmd/blowfish-vet ./...
//	go run ./cmd/blowfish-vet -show-suppressed ./...
//
// Findings print as file:line:col: analyzer: message. A finding covered
// by a //lint:allow <analyzer> <justification> directive is suppressed
// and does not affect the exit code; -show-suppressed prints those too,
// with their justifications, so the exception inventory stays auditable.
package main

import (
	"flag"
	"fmt"
	"os"

	"blowfish/internal/analysis"
	"blowfish/internal/analysis/budgetcharge"
	"blowfish/internal/analysis/detorder"
	"blowfish/internal/analysis/lockdiscipline"
	"blowfish/internal/analysis/noisesource"
	"blowfish/internal/analysis/waljournal"
)

var analyzers = []*analysis.Analyzer{
	budgetcharge.Default,
	waljournal.Default,
	noisesource.Default,
	detorder.Default,
	lockdiscipline.Default,
}

func main() {
	showSuppressed := flag.Bool("show-suppressed", false, "also print findings silenced by //lint:allow directives, with their justifications")
	listOnly := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: blowfish-vet [flags] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}

	open, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Printf("%s: %s: %s [suppressed: %s]\n", d.Position, d.Analyzer, d.Message, d.Justification)
			}
			continue
		}
		open++
		fmt.Printf("%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "blowfish-vet: %d package(s), %d finding(s), %d suppressed\n", len(prog.Pkgs), open, suppressed)
	if open > 0 {
		os.Exit(1)
	}
}
