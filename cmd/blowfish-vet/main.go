// Command blowfish-vet runs the repository's custom invariant analyzers
// (internal/analysis) over a package pattern and exits nonzero if any
// unsuppressed finding remains. It is the mechanical form of the review
// checklist that grew around PRs 1–5: every rule it enforces exists
// because the property it guards — ε-accounting, write-ahead ordering,
// replay determinism, lock ordering, truth-flow containment — fails
// silently and is expensive to rediscover under a fuzzer or a crash
// hammer.
//
// Usage:
//
//	go run ./cmd/blowfish-vet ./...
//	go run ./cmd/blowfish-vet -show-suppressed ./...
//	go run ./cmd/blowfish-vet -json ./...
//	go run ./cmd/blowfish-vet -inventory ./... > vet-allowlist.txt
//	go run ./cmd/blowfish-vet -analyzers truthflow,errcode ./...
//
// Findings print as file:line:col: analyzer: message (paths relative to
// the working directory, which is what the CI problem-matcher parses). A
// finding covered by a //lint:allow <analyzer> <justification> directive
// is suppressed and does not affect the exit code; -show-suppressed
// prints those too, with their justifications. -json emits the full
// finding list as machine-readable JSON; -inventory emits the stable
// suppression inventory that must match the committed vet-allowlist.txt
// (the CI drift gate), so every new exception gets reviewed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blowfish/internal/analysis"
	"blowfish/internal/analysis/budgetcharge"
	"blowfish/internal/analysis/detorder"
	"blowfish/internal/analysis/errcode"
	"blowfish/internal/analysis/lockdiscipline"
	"blowfish/internal/analysis/noisesource"
	"blowfish/internal/analysis/shardsafe"
	"blowfish/internal/analysis/truthflow"
	"blowfish/internal/analysis/waljournal"
)

var analyzers = []*analysis.Analyzer{
	budgetcharge.Default,
	waljournal.Default,
	noisesource.Default,
	detorder.Default,
	lockdiscipline.Default,
	truthflow.Default,
	errcode.Default,
	shardsafe.Default,
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

func main() {
	showSuppressed := flag.Bool("show-suppressed", false, "also print findings silenced by //lint:allow directives, with their justifications")
	listOnly := flag.Bool("list", false, "list each registered analyzer with its one-line doc and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message/suppressed)")
	inventory := flag.Bool("inventory", false, "emit the suppression inventory (one stable line per //lint:allow exception) and exit 0; diffed against vet-allowlist.txt in CI")
	selected := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all); unknown names exit 2 with the valid set")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: blowfish-vet [flags] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	run := analyzers
	if *selected != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		valid := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		run = nil
		for _, name := range strings.Split(*selected, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "blowfish-vet: unknown analyzer %q (valid: %s)\n", name, strings.Join(valid, ", "))
				os.Exit(2)
			}
			run = append(run, a)
		}
		if len(run) == 0 {
			fmt.Fprintf(os.Stderr, "blowfish-vet: -analyzers selected nothing (valid: %s)\n", strings.Join(valid, ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
		os.Exit(2)
	}

	rel := func(name string) string {
		if r, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	if *inventory {
		lines := make(map[string]bool)
		for _, d := range diags {
			if !d.Suppressed {
				continue
			}
			lines[fmt.Sprintf("%s:%d: %s: %s", rel(d.Position.Filename), d.Position.Line, d.Analyzer, d.Justification)] = true
		}
		sorted := make([]string, 0, len(lines))
		for l := range lines {
			sorted = append(sorted, l)
		}
		sort.Strings(sorted)
		for _, l := range sorted {
			fmt.Println(l)
		}
		return
	}

	if *jsonOut {
		findings := []jsonFinding{}
		open := 0
		for _, d := range diags {
			if !d.Suppressed {
				open++
			}
			findings = append(findings, jsonFinding{
				File:          rel(d.Position.Filename),
				Line:          d.Position.Line,
				Col:           d.Position.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "blowfish-vet: %v\n", err)
			os.Exit(2)
		}
		if open > 0 {
			os.Exit(1)
		}
		return
	}

	open, suppressed := 0, 0
	for _, d := range diags {
		pos := fmt.Sprintf("%s:%d:%d", rel(d.Position.Filename), d.Position.Line, d.Position.Column)
		if d.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Printf("%s: %s: %s [suppressed: %s]\n", pos, d.Analyzer, d.Message, d.Justification)
			}
			continue
		}
		open++
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "blowfish-vet: %d package(s), %d finding(s), %d suppressed\n", len(prog.Pkgs), open, suppressed)
	if open > 0 {
		os.Exit(1)
	}
}
