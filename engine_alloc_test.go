// Allocation budget regressions for the engine's hot release paths: the
// per-plan buffer arena, the slab-backed Ordered Hierarchical release and
// the pooled range decomposition together hold a repeated range release to
// a fixed handful of allocations (it was ~190 before the arena), and the
// other release kinds to the few vectors that genuinely escape to the
// caller. These pins are what BENCH_engine.json's allocs_per_op columns
// record; a regression here silently re-inflates GC pressure on every
// epoch close of a continual-release stream.
// Exact AllocsPerRun pins are excluded from race builds: the race
// detector makes sync.Pool drop items at random, so pooled paths
// legitimately allocate there.
//go:build !race

package blowfish_test

import (
	"testing"

	"blowfish"
	"blowfish/internal/metrics"
)

func TestEngineReleaseAllocBudgets(t *testing.T) {
	dom, err := blowfish.LineDomain("v", 1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 16)
	if err != nil {
		t.Fatal(err)
	}
	pol := blowfish.NewPolicy(g)
	ds := blowfish.NewDataset(dom)
	src := blowfish.NewSource(3)
	for i := 0; i < 5000; i++ {
		ds.MustAdd(blowfish.Point(src.Int63n(1024)))
	}
	sess, err := blowfish.NewSession(pol, 1e9, blowfish.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9

	// Prime every cache the releases read: the dataset index, the OH tree
	// layout, the arena's scratch vectors.
	if _, err := sess.NewRangeReleaser(ds, 16, eps); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ReleaseCumulativeHistogram(ds, eps); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ReleaseHistogram(ds, eps); err != nil {
		t.Fatal(err)
	}

	rangeAllocs := testing.AllocsPerRun(100, func() {
		rel, err := sess.NewRangeReleaser(ds, 16, eps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rel.Range(10, 900); err != nil {
			t.Fatal(err)
		}
	})
	// The ISSUE 7 acceptance bound: slab (1) + release headers (3) +
	// facade (1), plus amortized ledger growth.
	if rangeAllocs > 8 {
		t.Fatalf("range release allocates %v per call, want <= 8", rangeAllocs)
	}

	cumAllocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.ReleaseCumulativeHistogram(ds, eps); err != nil {
			t.Fatal(err)
		}
	})
	// raw + inferred escape to the caller plus the isotonic scratch and the
	// facade struct; the staging prefix array itself comes from the arena.
	if cumAllocs > 8 {
		t.Fatalf("cumulative release allocates %v per call, want <= 8", cumAllocs)
	}

	histAllocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.ReleaseHistogram(ds, eps); err != nil {
			t.Fatal(err)
		}
	})
	// The released histogram escapes; nothing else should.
	if histAllocs > 4 {
		t.Fatalf("histogram release allocates %v per call, want <= 4", histAllocs)
	}

	// Re-pin the hottest paths with the engine instruments installed: a
	// release now also does one histogram observation and two counter
	// bumps, all lock-free atomics — the budgets must not move.
	reg := metrics.NewRegistry()
	rel := func(kind string) blowfish.EngineReleaseMetrics {
		return blowfish.EngineReleaseMetrics{
			Latency: reg.Histogram("release_seconds_"+kind, "pin", nil),
			Count:   reg.Counter("releases_total_"+kind, "pin"),
		}
	}
	sess.SetEngineMetrics(&blowfish.EngineMetrics{
		Histogram:  rel("histogram"),
		Cumulative: rel("cumulative"),
		Range:      rel("range"),
		NoiseDraws: reg.Counter("noise_draws_total", "pin"),
	})

	rangeMetered := testing.AllocsPerRun(100, func() {
		rel, err := sess.NewRangeReleaser(ds, 16, eps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rel.Range(10, 900); err != nil {
			t.Fatal(err)
		}
	})
	if rangeMetered > 8 {
		t.Fatalf("instrumented range release allocates %v per call, want <= 8", rangeMetered)
	}

	histMetered := testing.AllocsPerRun(100, func() {
		if _, err := sess.ReleaseHistogram(ds, eps); err != nil {
			t.Fatal(err)
		}
	})
	if histMetered > 4 {
		t.Fatalf("instrumented histogram release allocates %v per call, want <= 4", histMetered)
	}
}
