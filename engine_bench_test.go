// Benchmarks for the compiled release engine versus the legacy per-release
// path. The legacy path recomputes the policy sensitivity and rescans all n
// tuples (and, for range releases, rebuilds the hierarchical tree) on every
// call; the engine compiles the policy once and serves releases from
// incrementally maintained count vectors, and its sharded noise pool lets
// RunParallel throughput scale with goroutines instead of flatlining on a
// single source mutex. Results are recorded in BENCH_engine.json.
package blowfish_test

import (
	"runtime"
	"sync"
	"testing"

	"blowfish"
	"blowfish/internal/metrics"
)

const (
	benchDomainSize = 4357 // the adult capital-loss domain used throughout
	benchTuples     = 200000
	benchEps        = 1e-6 // tiny per-release charge so b.N releases fit
	benchBudget     = 1e9
)

// benchWorld builds the shared policy and dataset: a distance-threshold
// policy over a non-trivial line domain with a dataset large enough that
// the legacy O(n) rescan dominates.
func benchWorld(b *testing.B) (*blowfish.Policy, *blowfish.Dataset) {
	b.Helper()
	dom, err := blowfish.LineDomain("v", benchDomainSize)
	if err != nil {
		b.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 100)
	if err != nil {
		b.Fatal(err)
	}
	ds := blowfish.NewDataset(dom)
	src := blowfish.NewSource(1)
	for i := 0; i < benchTuples; i++ {
		ds.MustAdd(blowfish.Point(src.Int63n(int64(benchDomainSize))))
	}
	return blowfish.NewPolicy(g), ds
}

func benchSession(b *testing.B, pol *blowfish.Policy, shards int) *blowfish.Session {
	b.Helper()
	sess, err := blowfish.NewSessionShards(pol, benchBudget, blowfish.NewSource(2), shards)
	if err != nil {
		b.Fatal(err)
	}
	return sess
}

// BenchmarkEngineRepeatedHistogram measures repeated histogram releases on
// the engine path: the dataset index is built once, every further release
// is an O(|T|) snapshot + noise.
func BenchmarkEngineRepeatedHistogram(b *testing.B) {
	pol, ds := benchWorld(b)
	sess := benchSession(b, pol, 1)
	if _, err := sess.ReleaseHistogram(ds, benchEps); err != nil { // prime the index
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReleaseHistogram(ds, benchEps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedHistogramLegacy is the pre-engine path: policy
// sensitivity recomputed and all n tuples rescanned per release.
func BenchmarkEngineRepeatedHistogramLegacy(b *testing.B) {
	pol, ds := benchWorld(b)
	src := blowfish.NewSource(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blowfish.ReleaseHistogram(pol, ds, benchEps, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedRange measures repeated Ordered Hierarchical
// releases on the engine path: the tree layout comes from the plan cache.
func BenchmarkEngineRepeatedRange(b *testing.B) {
	pol, ds := benchWorld(b)
	sess := benchSession(b, pol, 1)
	if _, err := sess.NewRangeReleaser(ds, 16, benchEps); err != nil { // prime caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := sess.NewRangeReleaser(ds, 16, benchEps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.Range(100, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedRangeMetrics is BenchmarkEngineRepeatedRange with
// the engine's release instruments installed — the benchgate holds the
// per-release instrumentation cost (one histogram observation + two
// counter bumps) inside the hot-path regression threshold.
func BenchmarkEngineRepeatedRangeMetrics(b *testing.B) {
	pol, ds := benchWorld(b)
	sess := benchSession(b, pol, 1)
	reg := metrics.NewRegistry()
	sess.SetEngineMetrics(&blowfish.EngineMetrics{
		Range: blowfish.EngineReleaseMetrics{
			Latency: reg.Histogram("release_seconds", "bench", nil),
			Count:   reg.Counter("releases_total", "bench"),
		},
		NoiseDraws: reg.Counter("noise_draws_total", "bench"),
	})
	if _, err := sess.NewRangeReleaser(ds, 16, benchEps); err != nil { // prime caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := sess.NewRangeReleaser(ds, 16, benchEps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.Range(100, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedRangeLegacy rebuilds the OH tree and rescans the
// tuples per release, as the pre-engine path did.
func BenchmarkEngineRepeatedRangeLegacy(b *testing.B) {
	pol, ds := benchWorld(b)
	src := blowfish.NewSource(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := blowfish.NewRangeReleaser(pol, ds, 16, benchEps, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.Range(100, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedCumulative measures the Ordered Mechanism on the
// maintained cumulative counts.
func BenchmarkEngineRepeatedCumulative(b *testing.B) {
	pol, ds := benchWorld(b)
	sess := benchSession(b, pol, 1)
	if _, err := sess.ReleaseCumulativeHistogram(ds, benchEps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReleaseCumulativeHistogram(ds, benchEps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedCumulativeLegacy rescans the tuples per release.
func BenchmarkEngineRepeatedCumulativeLegacy(b *testing.B) {
	pol, ds := benchWorld(b)
	src := blowfish.NewSource(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blowfish.ReleaseCumulativeHistogram(pol, ds, benchEps, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallelHistogram measures multi-goroutine release
// throughput on a sharded session: goroutines draw noise from independent
// streams and only the (atomic) budget charge is shared.
func BenchmarkEngineParallelHistogram(b *testing.B) {
	pol, ds := benchWorld(b)
	sharded := benchSession(b, pol, runtime.GOMAXPROCS(0))
	if _, err := sharded.ReleaseHistogram(ds, benchEps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sharded.ReleaseHistogram(ds, benchEps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineParallelHistogramLegacy emulates the pre-engine Session:
// one source behind one mutex, a full rescan inside the critical section —
// the path every concurrent release serialized on.
func BenchmarkEngineParallelHistogramLegacy(b *testing.B) {
	pol, ds := benchWorld(b)
	src := blowfish.NewSource(2)
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			_, err := blowfish.ReleaseHistogram(pol, ds, benchEps, src)
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
