package blowfish_test

import (
	"testing"

	"blowfish"
)

// The engine equivalence suite pins the refactor's core contract: a Session
// (which now serves unconstrained policies from the compiled release
// engine) produces bit-for-bit the same releases as the legacy per-release
// functions, given the same seed — across every policy kind the HTTP
// server supports (full, attr, partition, l1, linf, line).

// equivCase is one policy kind over its natural domain, with the releases
// that are well-defined for it.
type equivCase struct {
	name string
	pol  *blowfish.Policy
	ds   *blowfish.Dataset
	// part is the partition for ReleasePartitionHistogram comparisons.
	part blowfish.Partition
	// oneDim marks domains where cumulative and range releases apply.
	oneDim bool
}

func equivCases(t *testing.T) []equivCase {
	t.Helper()
	line, err := blowfish.LineDomain("v", 64)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := blowfish.GridDomain(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	lineData := blowfish.NewDataset(line)
	for i := 0; i < 200; i++ {
		lineData.MustAdd(blowfish.Point((i * 13) % 64))
	}
	gridData := blowfish.NewDataset(grid)
	for i := 0; i < 200; i++ {
		gridData.MustAdd(blowfish.Point((i * 29) % (12 * 9)))
	}
	part, err := blowfish.UniformGridPartition(grid, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := blowfish.DistanceThreshold(line, 5)
	if err != nil {
		t.Fatal(err)
	}
	linf, err := blowfish.LInfDistanceThreshold(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	lineGraph, err := blowfish.LineGraph(line)
	if err != nil {
		t.Fatal(err)
	}
	// Custom graphs: an explicit edge list (ring plus chords) over the line
	// domain, and a composed per-attribute product over the grid — the two
	// kinds the server accepts beyond the six built-ins.
	ringEdges := make([][2][]int, 0, 68)
	for i := 0; i < 64; i++ {
		ringEdges = append(ringEdges, [2][]int{{i}, {(i + 1) % 64}})
	}
	for _, chord := range [][2]int{{0, 32}, {8, 40}, {16, 56}, {5, 23}} {
		ringEdges = append(ringEdges, [2][]int{{chord[0]}, {chord[1]}})
	}
	explicit, _, err := blowfish.BuildGraph(line, blowfish.GraphSpec{
		Kind: "explicit", Name: "ring+chords", Edges: ringEdges,
	})
	if err != nil {
		t.Fatal(err)
	}
	product, _, err := blowfish.BuildGraph(grid, blowfish.GraphSpec{
		Kind: "compose", Op: "product",
		Graphs: []blowfish.GraphSpec{{Kind: "full"}, {Kind: "line"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []equivCase{
		{name: "full", pol: blowfish.DifferentialPrivacy(line), ds: lineData, oneDim: true},
		{name: "attr", pol: blowfish.NewPolicy(blowfish.AttributeSecrets(grid)), ds: gridData},
		{name: "partition", pol: blowfish.NewPolicy(blowfish.PartitionedSecrets(part)), ds: gridData, part: part},
		{name: "l1", pol: blowfish.NewPolicy(l1), ds: lineData, oneDim: true},
		{name: "linf", pol: blowfish.NewPolicy(linf), ds: gridData},
		{name: "line", pol: blowfish.NewPolicy(lineGraph), ds: lineData, oneDim: true},
		{name: "explicit", pol: blowfish.NewPolicy(explicit), ds: lineData, oneDim: true},
		{name: "product", pol: blowfish.NewPolicy(product), ds: gridData},
	}
}

// sessionFor mints a fresh engine-backed session with the given seed.
func sessionFor(t *testing.T, pol *blowfish.Policy, seed int64) *blowfish.Session {
	t.Helper()
	s, err := blowfish.NewSession(pol, 100, blowfish.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameVec(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v (engine release diverged from legacy)", what, i, got[i], want[i])
		}
	}
}

func TestEngineReleasesMatchLegacyBitForBit(t *testing.T) {
	const (
		eps  = 0.7
		seed = 12345
	)
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			// Histogram: every kind.
			want, err := blowfish.ReleaseHistogram(tc.pol, tc.ds, eps, blowfish.NewSource(seed))
			if err != nil {
				t.Fatalf("legacy histogram: %v", err)
			}
			got, err := sessionFor(t, tc.pol, seed).ReleaseHistogram(tc.ds, eps)
			if err != nil {
				t.Fatalf("engine histogram: %v", err)
			}
			sameVec(t, "histogram", got, want)

			// k-means: every kind.
			wantKM, err := blowfish.PrivateKMeans(tc.pol, tc.ds, 3, 4, eps, blowfish.NewSource(seed))
			if err != nil {
				t.Fatalf("legacy kmeans: %v", err)
			}
			gotKM, err := sessionFor(t, tc.pol, seed).PrivateKMeans(tc.ds, 3, 4, eps)
			if err != nil {
				t.Fatalf("engine kmeans: %v", err)
			}
			if gotKM.Objective != wantKM.Objective {
				t.Fatalf("kmeans objective %v, want %v", gotKM.Objective, wantKM.Objective)
			}
			for c := range wantKM.Centroids {
				sameVec(t, "kmeans centroid", gotKM.Centroids[c], wantKM.Centroids[c])
			}

			// Partition histogram: the partitioned kind.
			if tc.part != nil {
				want, err := blowfish.ReleasePartitionHistogram(tc.pol, tc.ds, tc.part, eps, blowfish.NewSource(seed))
				if err != nil {
					t.Fatalf("legacy partition histogram: %v", err)
				}
				got, err := sessionFor(t, tc.pol, seed).ReleasePartitionHistogram(tc.ds, tc.part, eps)
				if err != nil {
					t.Fatalf("engine partition histogram: %v", err)
				}
				sameVec(t, "partition histogram", got, want)
			}

			if !tc.oneDim {
				return
			}

			// Cumulative histogram: one-dimensional kinds.
			wantCum, err := blowfish.ReleaseCumulativeHistogram(tc.pol, tc.ds, eps, blowfish.NewSource(seed))
			if err != nil {
				t.Fatalf("legacy cumulative: %v", err)
			}
			gotCum, err := sessionFor(t, tc.pol, seed).ReleaseCumulativeHistogram(tc.ds, eps)
			if err != nil {
				t.Fatalf("engine cumulative: %v", err)
			}
			sameVec(t, "cumulative raw", gotCum.Raw, wantCum.Raw)
			sameVec(t, "cumulative inferred", gotCum.Inferred, wantCum.Inferred)

			// Range releaser: one-dimensional kinds.
			wantRR, err := blowfish.NewRangeReleaser(tc.pol, tc.ds, 8, eps, blowfish.NewSource(seed))
			if err != nil {
				t.Fatalf("legacy range releaser: %v", err)
			}
			gotRR, err := sessionFor(t, tc.pol, seed).NewRangeReleaser(tc.ds, 8, eps)
			if err != nil {
				t.Fatalf("engine range releaser: %v", err)
			}
			for _, q := range [][2]int{{0, 63}, {5, 40}, {17, 17}, {33, 62}} {
				want, err := wantRR.Range(q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				got, err := gotRR.Range(q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("range[%d,%d] = %v, want %v", q[0], q[1], got, want)
				}
			}
		})
	}
}

// TestEngineSessionStreamContinuity runs a sequence of mixed releases on
// one session against the same sequence of legacy calls on one source: the
// single noise stream must stay aligned across release kinds.
func TestEngineSessionStreamContinuity(t *testing.T) {
	const (
		eps  = 0.3
		seed = 999
	)
	cases := equivCases(t)
	var l1 equivCase
	for _, tc := range cases {
		if tc.name == "l1" {
			l1 = tc
		}
	}
	src := blowfish.NewSource(seed)
	wantHist, err := blowfish.ReleaseHistogram(l1.pol, l1.ds, eps, src)
	if err != nil {
		t.Fatal(err)
	}
	wantCum, err := blowfish.ReleaseCumulativeHistogram(l1.pol, l1.ds, eps, src)
	if err != nil {
		t.Fatal(err)
	}
	wantHist2, err := blowfish.ReleaseHistogram(l1.pol, l1.ds, eps, src)
	if err != nil {
		t.Fatal(err)
	}

	sess := sessionFor(t, l1.pol, seed)
	gotHist, err := sess.ReleaseHistogram(l1.ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotCum, err := sess.ReleaseCumulativeHistogram(l1.ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotHist2, err := sess.ReleaseHistogram(l1.ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "histogram #1", gotHist, wantHist)
	sameVec(t, "cumulative", gotCum.Inferred, wantCum.Inferred)
	sameVec(t, "histogram #2", gotHist2, wantHist2)
}

// TestShardedSessionAccounting asserts a multi-shard session still enforces
// the budget exactly (the sharded noise pool must not affect accounting).
func TestShardedSessionAccounting(t *testing.T) {
	dom, err := blowfish.LineDomain("v", 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds := blowfish.NewDataset(dom)
	for i := 0; i < 64; i++ {
		ds.MustAdd(blowfish.Point(i % 32))
	}
	sess, err := blowfish.NewSessionShards(blowfish.NewPolicy(g), 1.0, blowfish.NewSource(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sess.ReleaseHistogram(ds, 0.25); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if _, err := sess.ReleaseHistogram(ds, 0.25); err == nil {
		t.Fatal("over-budget release accepted")
	}
	if rem := sess.Remaining(); rem > 1e-9 {
		t.Fatalf("remaining %v, want 0", rem)
	}
}
