package blowfish_test

import (
	"fmt"

	"blowfish"
)

// ExampleHistogramSensitivity shows how policies trade privacy for utility:
// the k-means qsum sensitivity shrinks from the full domain diameter to the
// distance threshold (Lemma 6.1).
func ExampleHistogramSensitivity() {
	dom, _ := blowfish.GridDomain(400, 300)

	dp := blowfish.DifferentialPrivacy(dom)
	sDP, _ := dp.SumSensitivity()

	g, _ := blowfish.DistanceThreshold(dom, 100)
	bf := blowfish.NewPolicy(g)
	sBF, _ := bf.SumSensitivity()

	fmt.Printf("S(qsum) under differential privacy: %g\n", sDP)
	fmt.Printf("S(qsum) under Blowfish θ=100:       %g\n", sBF)
	// Output:
	// S(qsum) under differential privacy: 1396
	// S(qsum) under Blowfish θ=100:       200
}

// ExampleNewPolicy builds the standard policy families of Section 3.1.
func ExampleNewPolicy() {
	dom, _ := blowfish.LineDomain("salary", 128)

	full := blowfish.NewPolicy(blowfish.FullDomain(dom))
	line, _ := blowfish.LineGraph(dom)
	ordered := blowfish.NewPolicy(line)

	fmt.Println(full.Name())
	fmt.Println(ordered.Name())
	// Output:
	// (T, full, In)
	// (T, L1|θ=1, In)
}

// ExampleNewAccountant tracks sequential and parallel privacy spending
// (Theorems 4.1 and 4.2).
func ExampleNewAccountant() {
	acct, _ := blowfish.NewAccountant(1.0)
	_ = acct.Spend("histogram", 0.3)
	_ = acct.SpendParallel("per-region clustering", []float64{0.4, 0.2, 0.4})
	fmt.Printf("spent %.1f of %.1f\n", acct.Spent(), acct.Budget())
	// Output:
	// spent 0.7 of 1.0
}

// ExampleMarginal computes the Theorem 8.4 sensitivity for a known
// marginal.
func ExampleMarginal() {
	dom, _ := blowfish.NewDomain(
		blowfish.Attribute{Name: "gender", Size: 2},
		blowfish.Attribute{Name: "age", Size: 4},
		blowfish.Attribute{Name: "income", Size: 5},
	)
	m, _ := blowfish.NewMarginal(dom, []int{0, 1})
	fmt.Printf("size(C) = %d, S(h,P) = %g\n", m.Size(), m.FullDomainSensitivity())
	// Output:
	// size(C) = 8, S(h,P) = 16
}
