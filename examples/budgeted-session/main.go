// Command budgeted-session shows the production workflow: a data publisher
// answers several analyses about one dataset under a single total privacy
// budget, with the Session enforcing sequential composition (Theorem 4.1)
// so nothing can be released past the budget.
package main

import (
	"errors"
	"fmt"
	"log"

	"blowfish"
	"blowfish/internal/datagen"
)

func main() {
	// Synthetic capital-loss data under a θ=100 policy.
	data, err := datagen.AdultCapitalLoss(48842, blowfish.NewSource(2))
	if err != nil {
		log.Fatal(err)
	}
	dom := data.Domain()
	g, err := blowfish.DistanceThreshold(dom, 100)
	if err != nil {
		log.Fatal(err)
	}

	const budget = 1.0
	session, err := blowfish.NewSession(blowfish.NewPolicy(g), budget, blowfish.NewSource(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session over %v with total budget ε = %g\n\n", dom, budget)

	// Analysis 1: a coarse histogram of loss bands (ε = 0.3).
	bands, err := blowfish.UniformGridPartition(dom, []int{500})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := session.ReleasePartitionHistogram(data, bands, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. released %d-band histogram        (remaining ε = %.2f)\n", len(hist), session.Remaining())

	// Analysis 2: a range-query structure for analysts (ε = 0.5).
	ranges, err := session.NewRangeReleaser(data, 16, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	mid, err := ranges.Range(1500, 2500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. released range structure; q[1500,2500] ≈ %.0f (remaining ε = %.2f)\n", mid, session.Remaining())

	// Analysis 3: one more histogram — too expensive, refused unpublished.
	if _, err := session.ReleaseHistogram(data, 0.5); errors.Is(err, blowfish.ErrBudgetExceeded) {
		fmt.Printf("3. full histogram at ε=0.5 refused: %v\n", err)
	} else if err != nil {
		log.Fatal(err)
	}

	// Analysis 3 retried within the remainder.
	if _, err := session.ReleaseHistogram(data, 0.2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. full histogram at ε=0.2 released  (remaining ε = %.2f)\n\n", session.Remaining())

	fmt.Println("ledger:")
	for _, r := range session.Accountant().Releases() {
		fmt.Printf("   %-28s ε=%g\n", r.Label, r.Epsilon)
	}
}
