// Command constrained-histogram demonstrates Section 8: releasing a
// histogram when the adversary already knows a marginal of the data.
//
// Publicly known constraints correlate tuples — the Kifer–Machanavajjhala
// "no free lunch" attack reconstructs plain differentially private releases
// by averaging them against the constraints. Blowfish counters by widening
// the neighbor relation: noise is calibrated to the policy-graph
// sensitivity 2·size(C) (Theorem 8.4), and the released histogram is then
// projected to agree with the public marginal exactly (free, by
// post-processing).
package main

import (
	"fmt"
	"log"

	"blowfish"
)

func main() {
	// Census-like micro-domain: gender × age-band × income-band.
	dom, err := blowfish.NewDomain(
		blowfish.Attribute{Name: "gender", Size: 2},
		blowfish.Attribute{Name: "age", Size: 4},
		blowfish.Attribute{Name: "income", Size: 5},
	)
	if err != nil {
		log.Fatal(err)
	}
	data := blowfish.NewDataset(dom)
	src := blowfish.NewSource(5)
	for i := 0; i < 20000; i++ {
		gender := src.Intn(2)
		age := src.Intn(4)
		income := (age + src.Intn(3)) % 5 // income correlates with age
		p, err := dom.Encode(gender, age, income)
		if err != nil {
			log.Fatal(err)
		}
		if err := data.Add(p); err != nil {
			log.Fatal(err)
		}
	}

	// The gender × age marginal was published last year: the adversary
	// knows it exactly.
	marginal, err := blowfish.NewMarginal(dom, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	public, err := marginal.Set(data)
	if err != nil {
		log.Fatal(err)
	}

	pol := blowfish.NewConstrainedPolicy(blowfish.FullDomain(dom), public)
	sens, err := blowfish.HistogramSensitivity(pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domain %v\n", dom)
	fmt.Printf("known marginal [gender, age]: size(C) = %d cells\n", marginal.Size())
	fmt.Printf("policy-graph histogram sensitivity = %g (Theorem 8.4: 2·size(C) = %g)\n\n",
		sens, marginal.FullDomainSensitivity())

	const eps = 1.0
	rel, err := blowfish.ReleaseHistogram(pol, data, eps, blowfish.NewSource(9))
	if err != nil {
		log.Fatal(err)
	}
	cons, err := blowfish.ConsistentWithConstraints(pol, rel)
	if err != nil {
		log.Fatal(err)
	}

	truth, err := data.Histogram()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12s %12s\n", "", "raw release", "projected")
	fmt.Printf("%-28s %12.1f %12.1f\n", "mean squared error", mse(truth, rel), mse(truth, cons))

	// The projected release satisfies the public marginal exactly.
	var rawViol, consViol float64
	for qi, q := range public.Queries() {
		var raw, con float64
		if err := dom.Points(func(p blowfish.Point) bool {
			if q.Pred(p) {
				raw += rel[p]
				con += cons[p]
			}
			return true
		}); err != nil {
			log.Fatal(err)
		}
		rawViol += abs(raw - public.Answers()[qi])
		consViol += abs(con - public.Answers()[qi])
	}
	fmt.Printf("%-28s %12.1f %12.1f\n", "total marginal violation", rawViol, consViol)
	fmt.Println("\nprojection onto the known constraints is free post-processing: it removes")
	fmt.Println("the inconsistency an analyst would notice and never increases the error.")
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
