// Command custom-graph demonstrates user-defined secret graphs — the
// Blowfish policy knob beyond the paper's named specifications. A hospital
// publishes a histogram over 64 severity scores. Disclosure of the exact
// score is sensitive *within* a clinical band (mild 0-15, moderate 16-39,
// severe 40-63): the bands themselves are considered public context, but
// which score inside a band a patient has must stay protected, and the
// band boundaries should blur slightly (one bridge edge between adjacent
// bands).
//
// No named specification says exactly this. A partition policy drops the
// bridge protection; a distance-threshold policy protects pairs the
// hospital is happy to reveal. The custom graph declares precisely the
// intended secrets — and the noise scale follows the declaration, not a
// worst case.
//
// The same spec JSON-serializes and uploads to the HTTP server unchanged:
// see examples/custom-graph/README.md for the curl walkthrough.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"

	"blowfish"
)

func main() {
	dom, err := blowfish.LineDomain("severity", 64)
	if err != nil {
		log.Fatal(err)
	}

	// Declare the graph as a serializable spec: complete subgraphs within
	// each band, plus explicit bridge edges across the boundaries.
	spec := blowfish.GraphSpec{
		Kind: "compose", Op: "union", Name: "severity-bands",
		Graphs: []blowfish.GraphSpec{
			bandSpec(0, 15),
			bandSpec(16, 39),
			bandSpec(40, 63),
			{Kind: "explicit", Edges: [][2][]int{{{15}, {16}}, {{39}, {40}}}},
		},
	}
	g, _, err := blowfish.BuildGraph(dom, spec)
	if err != nil {
		log.Fatal(err)
	}
	edges, comps, _ := blowfish.GraphStats(g)
	fmt.Printf("custom graph %q: %d edges, %d connected component(s)\n", g.Name(), edges, comps)

	// The spec round-trips through JSON — this is exactly what the server
	// journals in its WAL and what recovery rebuilds the plan from.
	wire, err := json.Marshal(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire form: %d bytes of JSON\n\n", len(wire))

	// Synthetic severity scores, heavier at the mild end.
	data := blowfish.NewDataset(dom)
	for i := 0; i < 5000; i++ {
		data.MustAdd(blowfish.Point((i * i * 31) % 64 * (i % 3) / 2 % 64))
	}

	custom := blowfish.NewPolicy(g)
	full := blowfish.DifferentialPrivacy(dom)

	const eps = 0.5
	compare := func(name string, pol *blowfish.Policy) {
		sess, err := blowfish.NewSession(pol, 10, blowfish.NewSource(42))
		if err != nil {
			log.Fatal(err)
		}
		rel, err := sess.ReleaseCumulativeHistogram(data, eps)
		if err != nil {
			log.Fatal(err)
		}
		cum, err := data.CumulativeHistogram()
		if err != nil {
			log.Fatal(err)
		}
		var mae float64
		for i := range cum {
			mae += math.Abs(rel.Inferred[i] - cum[i])
		}
		mae /= float64(len(cum))
		sens, err := pol.CumulativeHistogramSensitivity()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s cumulative sensitivity %3g, mean abs error %.2f at ε=%g\n", name, sens, mae, eps)
	}
	// Under the custom graph the longest secret edge spans one band (23
	// scores), not the whole domain (63), so every cumulative count takes
	// ~2.7x less noise than differential privacy — the privacy-utility
	// dial the policy turns (Section 4 of the paper).
	compare("custom severity-bands", custom)
	compare("full domain (DP)", full)
}

// bandSpec declares the complete graph on [lo, hi] as an explicit edge
// list: every score pair within the band is a secret.
func bandSpec(lo, hi int) blowfish.GraphSpec {
	var edges [][2][]int
	for x := lo; x <= hi; x++ {
		for y := x + 1; y <= hi; y++ {
			edges = append(edges, [2][]int{{x}, {y}})
		}
	}
	return blowfish.GraphSpec{Kind: "explicit", Edges: edges}
}
