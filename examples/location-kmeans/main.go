// Command location-kmeans reproduces the Figure 1 scenario on synthetic
// location data: clustering geo-points privately under differential privacy
// versus Blowfish distance-threshold policies.
//
// The policy G^{L1,θ} promises that an adversary cannot tell two locations
// apart when they are within θ grid cells (≈ θ·5.5 km on the paper's
// western-USA grid) — rough whereabouts may leak, precise position never —
// and the k-means qsum sensitivity drops from 2·d(T) to 2θ (Lemma 6.1).
package main

import (
	"fmt"
	"log"

	"blowfish"
	"blowfish/internal/datagen"
)

func main() {
	src := blowfish.NewSource(11)
	data, err := datagen.Twitter(30000, src)
	if err != nil {
		log.Fatal(err)
	}
	dom := data.Domain()
	fmt.Printf("clustering %d geo-points over %v\n\n", data.Len(), dom)

	const (
		k     = 4
		iters = 10
		eps   = 0.5
		reps  = 5
	)

	// Non-private baseline.
	var baseline float64
	for r := int64(0); r < reps; r++ {
		res, err := blowfish.KMeans(data, k, iters, blowfish.NewSource(100+r))
		if err != nil {
			log.Fatal(err)
		}
		baseline += res.Objective
	}
	baseline /= reps
	fmt.Printf("%-24s objective = %.3e (ratio 1.00)\n", "non-private", baseline)

	policies := []struct {
		name string
		pol  *blowfish.Policy
	}{
		{"laplace (DP)", blowfish.DifferentialPrivacy(dom)},
	}
	for _, thetaKM := range []float64{2000, 1000, 500, 100} {
		cells := thetaKM / 5.555 // ~5.5 km per grid cell
		g, err := blowfish.DistanceThreshold(dom, cells)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, struct {
			name string
			pol  *blowfish.Policy
		}{fmt.Sprintf("blowfish θ=%gkm", thetaKM), blowfish.NewPolicy(g)})
	}

	for _, item := range policies {
		var total float64
		for r := int64(0); r < reps; r++ {
			res, err := blowfish.PrivateKMeans(item.pol, data, k, iters, eps, blowfish.NewSource(100+r))
			if err != nil {
				log.Fatal(err)
			}
			total += res.Objective
		}
		total /= reps
		fmt.Printf("%-24s objective = %.3e (ratio %.2f)\n", item.name, total, total/baseline)
	}
	fmt.Println("\nsmaller θ ⇒ weaker protection radius ⇒ less noise ⇒ better clustering;")
	fmt.Println("the Laplace/DP row pays for protecting the full 2222 km domain diameter.")
}
