// Command membership-privacy demonstrates the paper's deferred
// unknown-cardinality extension (end of Section 3.1): by adding a ⊥ value
// ("this individual is not in the dataset") to the domain and connecting it
// to every real value in the secret graph, *presence itself* becomes a
// protected secret — the adversary cannot tell whether someone is in the
// data at all, not just which value they have.
//
// The price is quantified: cumulative releases pay sensitivity |T| instead
// of θ, because an appearance shifts every prefix count above it.
package main

import (
	"fmt"
	"log"

	"blowfish"
)

func main() {
	// Ages 0..99.
	base, err := blowfish.LineDomain("age", 100)
	if err != nil {
		log.Fatal(err)
	}
	// Value secrets: ages within 5 years are indistinguishable.
	g, err := blowfish.DistanceThreshold(base, 5)
	if err != nil {
		log.Fatal(err)
	}
	// Membership secrets: wrap with ⊥.
	ext, err := blowfish.WithUnknownPresence(g)
	if err != nil {
		log.Fatal(err)
	}
	extDom, bottom, err := blowfish.ExtendedDomain(ext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base domain %v extended to %v; ⊥ at index %d\n\n", base, extDom, bottom)

	// A cohort where some registrants never showed up: absent individuals
	// hold ⊥. The cohort size is public; who attended is not.
	data := blowfish.NewDataset(extDom)
	src := blowfish.NewSource(21)
	attended := 0
	for i := 0; i < 2000; i++ {
		if src.Uniform() < 0.8 {
			age := 20 + src.Intn(60)
			if err := data.Add(blowfish.Point(age)); err != nil {
				log.Fatal(err)
			}
			attended++
		} else {
			if err := data.Add(bottom); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("cohort of %d registrants, %d attended (protected!)\n\n", data.Len(), attended)

	polValue := blowfish.NewPolicy(g)    // protects values only
	polMember := blowfish.NewPolicy(ext) // protects values AND membership
	sv, err := polValue.CumulativeHistogramSensitivity()
	if err != nil {
		log.Fatal(err)
	}
	sm, err := polMember.CumulativeHistogramSensitivity()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cumulative-histogram sensitivity, value secrets only: %g\n", sv)
	fmt.Printf("cumulative-histogram sensitivity, with membership:    %g\n\n", sm)

	// Release the attendance curve under the membership policy.
	const eps = 1.0
	rel, err := blowfish.ReleaseCumulativeHistogram(polMember, data, eps, blowfish.NewSource(5))
	if err != nil {
		log.Fatal(err)
	}
	for _, age := range []int{30, 50, 70} {
		got, err := rel.Range(0, age)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := data.RangeCount(0, blowfish.Point(age))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attendees aged ≤ %d: released %7.1f (truth %g)\n", age, got, truth)
	}
	// The released total attendance is noisy too: membership is hidden.
	tot, err := rel.Range(0, int(bottom)-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreleased total attendance: %.1f (truth %d) — noisy, as membership demands\n", tot, attended)
	fmt.Println("the cohort size is public; who actually attended is protected at ε =", eps)
}
