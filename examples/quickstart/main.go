// Command quickstart is the smallest end-to-end Blowfish program: it builds
// a salary dataset, releases its histogram under differential privacy and
// under a distance-threshold Blowfish policy, and compares the error.
//
// The Blowfish policy protects whether a salary is x or y only for
// |x − y| ≤ θ — an adversary may learn someone's rough pay band but never
// the value within it — and in exchange the same ε buys the same noise here
// (histogram sensitivity stays 2) while the cumulative release below gets
// dramatically more accurate.
package main

import (
	"fmt"
	"log"
	"math"

	"blowfish"
)

func main() {
	// A salary domain: 128 pay levels.
	dom, err := blowfish.LineDomain("salary-level", 128)
	if err != nil {
		log.Fatal(err)
	}

	// A skewed dataset: most salaries low, a long tail.
	data := blowfish.NewDataset(dom)
	src := blowfish.NewSource(7)
	for i := 0; i < 5000; i++ {
		v := int(src.Gaussian(18))
		if v < 0 {
			v = -v
		}
		if v > 127 {
			v = 127
		}
		if err := data.Add(blowfish.Point(v)); err != nil {
			log.Fatal(err)
		}
	}

	const eps = 0.5

	// Differential privacy = Blowfish with full-domain secrets.
	dp := blowfish.DifferentialPrivacy(dom)
	// Blowfish: protect salaries within θ = 10 levels of each other.
	g, err := blowfish.DistanceThreshold(dom, 10)
	if err != nil {
		log.Fatal(err)
	}
	bf := blowfish.NewPolicy(g)

	fmt.Printf("domain: %v, n=%d, ε=%g\n\n", dom, data.Len(), eps)

	// 1. Plain histograms: the sensitivity (and so the noise) is identical —
	// Blowfish never does worse than differential privacy.
	for _, item := range []struct {
		name string
		pol  *blowfish.Policy
	}{{"differential privacy", dp}, {"blowfish θ=10", bf}} {
		s, err := blowfish.HistogramSensitivity(item.pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("histogram sensitivity under %-20s = %g\n", item.name, s)
	}

	// 2. Cumulative histograms / range queries: the Blowfish sensitivity
	// drops from |T|−1 = 127 to θ = 10, and the ordered hierarchical
	// mechanism turns that into much less error per range query.
	truth, err := data.RangeCount(20, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue count of salaries in [20, 60]: %g\n", truth)
	const reps = 200
	for _, item := range []struct {
		name string
		pol  *blowfish.Policy
	}{{"differential privacy", dp}, {"blowfish θ=10", bf}} {
		src := blowfish.NewSource(42)
		var sq, sample float64
		for r := 0; r < reps; r++ {
			rel, err := blowfish.NewRangeReleaser(item.pol, data, 16, eps, src)
			if err != nil {
				log.Fatal(err)
			}
			got, err := rel.Range(20, 60)
			if err != nil {
				log.Fatal(err)
			}
			sample = got
			sq += (got - truth) * (got - truth)
		}
		fmt.Printf("%-22s sample answer = %8.1f, RMSE over %d releases = %.1f\n",
			item.name, sample, reps, math.Sqrt(sq/reps))
	}
}
