// Command range-queries reproduces the Figure 2 scenario: answering range
// count queries over the (synthetic) adult capital-loss attribute with the
// Ordered Hierarchical Mechanism at different distance thresholds θ.
//
// θ = |T| is differential privacy (the hierarchical baseline); θ = 1 is the
// pure Ordered Mechanism whose per-query error 4/ε² is independent of the
// domain size — below what any differentially private strategy can achieve.
package main

import (
	"fmt"
	"log"

	"blowfish"
	"blowfish/internal/datagen"
)

func main() {
	data, err := datagen.AdultCapitalLoss(48842, blowfish.NewSource(3))
	if err != nil {
		log.Fatal(err)
	}
	dom := data.Domain()
	size := int(dom.Size())
	fmt.Printf("domain %v, n=%d, distinct values=%d (sparse!)\n\n", dom, data.Len(), data.DistinctCount())

	const (
		eps     = 0.5
		fanout  = 16
		queries = 2000
	)

	// A fixed workload of random range queries.
	qsrc := blowfish.NewSource(17)
	type rq struct {
		lo, hi int
		truth  float64
	}
	workload := make([]rq, queries)
	for i := range workload {
		a, b := qsrc.Intn(size), qsrc.Intn(size)
		if a > b {
			a, b = b, a
		}
		truth, err := data.RangeCount(blowfish.Point(a), blowfish.Point(b))
		if err != nil {
			log.Fatal(err)
		}
		workload[i] = rq{a, b, truth}
	}

	for _, theta := range []int{size, 1000, 100, 10, 1} {
		var pol *blowfish.Policy
		label := fmt.Sprintf("θ=%d", theta)
		if theta == size {
			pol = blowfish.DifferentialPrivacy(dom)
			label = "θ=|T| (diff. privacy)"
		} else {
			g, err := blowfish.DistanceThreshold(dom, float64(theta))
			if err != nil {
				log.Fatal(err)
			}
			pol = blowfish.NewPolicy(g)
		}
		rel, err := blowfish.NewRangeReleaser(pol, data, fanout, eps, blowfish.NewSource(23))
		if err != nil {
			log.Fatal(err)
		}
		var sq float64
		for _, q := range workload {
			got, err := rel.Range(q.lo, q.hi)
			if err != nil {
				log.Fatal(err)
			}
			diff := got - q.truth
			sq += diff * diff
		}
		fmt.Printf("%-22s range query MSE = %12.1f\n", label, sq/float64(queries))
	}

	fmt.Println("\nθ controls the privacy-utility knob: protecting only nearby capital-loss")
	fmt.Println("values (θ small) buys orders of magnitude in accuracy over protecting")
	fmt.Println("every pair of values (differential privacy).")
}
