module blowfish

go 1.24
