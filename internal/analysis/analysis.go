// Package analysis is a self-contained static-analysis framework shaped
// after golang.org/x/tools/go/analysis, built only on the standard
// library so the repository's invariant checkers (cmd/blowfish-vet) need
// no module downloads. It provides the Analyzer/Pass/Diagnostic vocabulary,
// a package loader that resolves imports from the build cache's export
// data (internal/analysis/load semantics live in load.go), a driver that
// runs analyzers over packages in dependency order with a cross-package
// fact store, and `//lint:allow` suppression with mandatory justification.
//
// The analyzers under this directory mechanically enforce the invariants
// the type system cannot see — every noised release is charged to a
// composition.Accountant, every acked mutation is journaled write-ahead,
// all randomness flows through the restorable internal/noise source, no
// release/encoding path depends on map iteration order, and lock usage
// follows the documented discipline. See DESIGN.md §5.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one invariant checker. Unlike x/tools analyzers it
// carries no flag set: configuration happens at construction (each
// analyzer package exposes New(Config) plus a Default built from the
// repository's real layout).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed non-test Go files of the package.
	Files []*ast.File
	// Pkg is the source-checked package; TypesInfo its resolved uses.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is shared across every package of one driver run. Packages are
	// analyzed in dependency order, so facts exported while analyzing an
	// import are visible here.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// Suppressed is set by the driver when an in-scope //lint:allow
	// directive covers the finding; Justification carries its reason.
	Suppressed    bool
	Justification string
	// Position is the resolved file position (driver-filled).
	Position token.Position
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Facts is a cross-package store of string-keyed function properties
// ("charges the accountant", "draws noise", ...). Keys are canonical
// object strings (see FuncKey) rather than types.Object identities,
// because the same function is a different object when seen from source
// and when imported from export data.
type Facts struct {
	mu sync.Mutex
	m  map[string]map[string]bool // fact kind -> object key -> true
}

// NewFacts creates an empty store.
func NewFacts() *Facts {
	return &Facts{m: make(map[string]map[string]bool)}
}

// Set records that the object identified by key has the named fact.
func (f *Facts) Set(kind, key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	byKey, ok := f.m[kind]
	if !ok {
		byKey = make(map[string]bool)
		f.m[kind] = byKey
	}
	byKey[key] = true
}

// Has reports whether the object identified by key has the named fact.
func (f *Facts) Has(kind, key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m[kind][key]
}

// Keys returns the sorted keys carrying the named fact (diagnostics).
func (f *Facts) Keys(kind string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.m[kind]))
	for k := range f.m[kind] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FuncKey returns the canonical cross-package identity of a function or
// method: "path.Name" for package functions, "path.(Recv).Name" for
// methods (pointerness stripped, so a fact set on (*T).M is found through
// T.M and vice versa). It returns "" for nil or builtin objects.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return fmt.Sprintf("%s.(%s).%s", path, named.Obj().Name(), fn.Name())
		}
	}
	return path + "." + fn.Name()
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// NamedOf is the exported form of namedOf for analyzer packages.
func NamedOf(t types.Type) *types.Named { return namedOf(t) }

// CalleeFunc resolves the *types.Func a call expression invokes (through
// selections and plain identifiers), or nil for indirect calls, builtins
// and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// PathHasSuffix reports whether the package import path matches one of the
// configured suffixes: an exact match, or path ending in "/"+suffix. A
// suffix like "internal/engine" therefore matches both
// "blowfish/internal/engine" and an analysistest stand-in package whose
// path ends the same way.
func PathHasSuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
