package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path string
		sufs []string
		want bool
	}{
		{"blowfish", []string{"blowfish"}, true},
		{"blowfish/internal/engine", []string{"internal/engine"}, true},
		{"blowfish/internal/analysis/budgetcharge/testdata/src/blowfish", []string{"blowfish"}, true},
		{"blowfish/internal/engineered", []string{"internal/engine"}, false},
		{"internal/engine", []string{"internal/engine"}, true},
		{"blowfish/internal/stream", []string{"internal/engine"}, false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.sufs); got != c.want {
			t.Errorf("PathHasSuffix(%q, %v) = %v, want %v", c.path, c.sufs, got, c.want)
		}
	}
}

func TestParseAllow(t *testing.T) {
	mk := func(text string) *ast.Comment { return &ast.Comment{Slash: 1, Text: text} }

	if _, ok, bad := parseAllow(mk("// ordinary comment")); ok || bad != nil {
		t.Errorf("ordinary comment misparsed: ok=%v bad=%v", ok, bad)
	}
	d, ok, bad := parseAllow(mk("//lint:allow detorder order does not matter here"))
	if !ok || bad != nil {
		t.Fatalf("valid directive rejected: ok=%v bad=%v", ok, bad)
	}
	if d.analyzer != "detorder" || d.justification != "order does not matter here" {
		t.Errorf("parsed %q / %q", d.analyzer, d.justification)
	}
	// A justification is mandatory: analyzer name alone is malformed.
	if _, ok, bad := parseAllow(mk("//lint:allow detorder")); ok || bad == nil {
		t.Errorf("justification-free directive accepted: ok=%v bad=%v", ok, bad)
	}
	if _, ok, bad := parseAllow(mk("//lint:allow")); ok || bad == nil {
		t.Errorf("bare directive accepted: ok=%v bad=%v", ok, bad)
	}
}

func TestFacts(t *testing.T) {
	f := NewFacts()
	if f.Has("noisy", "p.F") {
		t.Error("empty store claims a fact")
	}
	f.Set("noisy", "p.F")
	f.Set("noisy", "p.(T).M")
	if !f.Has("noisy", "p.F") || !f.Has("noisy", "p.(T).M") {
		t.Error("set facts not found")
	}
	keys := f.Keys("noisy")
	if len(keys) != 2 || keys[0] != "p.(T).M" || keys[1] != "p.F" {
		t.Errorf("Keys = %v", keys)
	}
}

// TestLoadAndSuppression exercises the loader, the driver, FuncKey on
// source-checked objects, and line- plus function-scoped suppression over
// a real on-disk package.
func TestLoadAndSuppression(t *testing.T) {
	dir := t.TempDir()
	// The package must live inside a module for `go list` to resolve it
	// without network access.
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module suppresstest\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package p

// F is flagged: no directive covers it.
func F() {}

//lint:allow always line-scope suppression demo
func G() {}

// H carries the function-scoped form.
//
//lint:allow always func-scope suppression demo
func H() {}

//lint:allow always
func Malformed() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Pkgs))
	}

	// "always" flags every function declaration at its name.
	always := &Analyzer{Name: "always", Doc: "test", Run: func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	}}
	diags, err := Run(prog, []*Analyzer{always})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	got := make(map[string]Diagnostic)
	for _, d := range diags {
		got[d.Analyzer+":"+lastWord(d.Message)] = d
	}
	if d := got["always:F"]; d.Suppressed {
		t.Error("F suppressed without a directive")
	}
	if d := got["always:G"]; !d.Suppressed || d.Justification != "line-scope suppression demo" {
		t.Errorf("G: suppressed=%v justification=%q", d.Suppressed, d.Justification)
	}
	if d := got["always:H"]; !d.Suppressed || d.Justification != "func-scope suppression demo" {
		t.Errorf("H: suppressed=%v justification=%q", d.Suppressed, d.Justification)
	}
	// The justification-free directive above Malformed is itself a
	// finding and suppresses nothing.
	if d := got["always:Malformed"]; d.Suppressed {
		t.Error("malformed directive suppressed a finding")
	}
	foundBad := false
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.Contains(d.Message, "malformed") {
			foundBad = true
		}
	}
	if !foundBad {
		t.Error("malformed directive not reported")
	}

	// FuncKey on a source-checked package function.
	var fPos token.Pos
	for _, file := range prog.Pkgs[0].Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
				fPos = fd.Name.Pos()
			}
			return true
		})
	}
	if fPos == token.NoPos {
		t.Fatal("F not found")
	}
	for id, obj := range prog.Pkgs[0].TypesInfo.Defs {
		if id.Pos() != fPos {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			t.Fatalf("F resolved to %T, want *types.Func", obj)
		}
		if key := FuncKey(fn); key != "suppresstest.F" {
			t.Errorf("FuncKey(F) = %q, want %q", key, "suppresstest.F")
		}
	}
}

func lastWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[len(fields)-1]
}
