// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest but built on the
// repository's own stdlib-only framework.
//
// Testdata layout mirrors x/tools: <testdata>/src/<pkg>/... holds real,
// compiling Go packages (the loader type-checks them with full import
// resolution — they live inside the module, so `go list` handles them
// even though ./... wildcards skip testdata directories). A line expecting
// a finding carries a trailing comment:
//
//	for k := range m { // want `map iteration`
//
// Multiple expectations on one line list multiple quoted regexps.
// Suppressed findings (covered by //lint:allow) must NOT be wanted: the
// harness treats them as absent, which is exactly how the escape hatch is
// demonstrated in testdata.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"blowfish/internal/analysis"
)

// wantRe matches one quoted expectation: `re` or "re".
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads each named package under testdata/src, runs the analyzer, and
// reports mismatches through t. It returns the (unsuppressed) diagnostics
// so tests can make extra assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	var out []analysis.Diagnostic
	for _, pkg := range pkgs {
		dir, err := filepath.Abs(filepath.Join(testdata, "src", pkg))
		if err != nil {
			t.Fatalf("resolving %s: %v", pkg, err)
		}
		prog, err := analysis.Load(dir, ".")
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		// Expectations come from every file under this testdata package,
		// helper sub-packages included, matching the diagnostic filter
		// below.
		var files []*ast.File
		for _, p := range prog.Pkgs {
			files = append(files, p.Files...)
		}
		expects := collectExpectations(t, prog.Fset, files)
		var unsuppressed []analysis.Diagnostic
		for _, d := range diags {
			if d.Position.Filename != "" && !strings.HasPrefix(d.Position.Filename, dir+string(filepath.Separator)) {
				continue
			}
			if d.Suppressed {
				continue
			}
			unsuppressed = append(unsuppressed, d)
		}
		matchDiagnostics(t, pkg, expects, unsuppressed)
		out = append(out, unsuppressed...)
	}
	return out
}

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want")
				matches := wantRe.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}

func matchDiagnostics(t *testing.T, pkg string, expects []*expectation, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.met || e.file != d.Position.Filename || e.line != d.Position.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, e.file, e.line, e.raw)
		}
	}
}

// MustFind is a convenience for asserting a diagnostic list contains a
// message matching pattern.
func MustFind(t *testing.T, diags []analysis.Diagnostic, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, d := range diags {
		if re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no diagnostic matching %q in %s", pattern, fmt.Sprint(diags))
}
