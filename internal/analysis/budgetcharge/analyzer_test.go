package budgetcharge_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/budgetcharge"
)

func TestBudgetCharge(t *testing.T) {
	diags := analysistest.Run(t, "testdata", budgetcharge.Default, "blowfish")
	// Exactly the two uncharged exported paths: the direct draw and the
	// helper-hidden draw. MechanismRelease is annotated away and the
	// charged/exact paths are accepted.
	if len(diags) != 2 {
		t.Errorf("want 2 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `ReleaseBad draws noise`)
	analysistest.MustFind(t, diags, `ReleaseViaHelper draws noise`)
}
