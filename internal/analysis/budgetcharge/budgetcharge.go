// Package budgetcharge flags exported release paths that can return
// noised output without charging the privacy accountant. The Blowfish
// ε-guarantee (He et al., SIGMOD 2014, Theorems 3.6/4.1) is an accounting
// statement: a mechanism is (ε,P)-private only if every published draw is
// added to the cumulative ledger. A release path that samples Laplace or
// geometric noise and returns without a dominating Accountant.Spend keeps
// the guarantee's math while silently dropping its bookkeeping — the
// worst failure mode, because outputs still look correctly noisy.
//
// The check is a conservative reachability approximation, not a full
// dominance analysis: a function "draws noise" if its body (nested
// closures included) calls a noise.Source sampler or any function already
// known to draw noise, and it "charges" if it calls
// Accountant.Spend/SpendParallel/Charge or a function known to charge.
// Facts propagate across packages in dependency order, so
// stream.CloseEpoch inherits "charges" from engine.ReleaseHistogram.
// Exported functions in the audited packages that draw noise without
// charging are reported. Mechanism-level APIs that are uncharged by
// design (package mechanism, ordered, kmeans — always charged by their
// callers) live outside the audited set; deliberately uncharged exported
// paths inside it carry //lint:allow budgetcharge annotations.
package budgetcharge

import (
	"go/ast"
	"go/types"

	"blowfish/internal/analysis"
)

// Fact kinds exported through the driver's store.
const (
	factNoisy   = "budgetcharge.noisy"
	factCharges = "budgetcharge.charges"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// ReportPackages are import-path suffixes whose exported functions
	// must charge when they draw noise: the root facade and the two
	// serving layers.
	ReportPackages []string
	// SamplerType/SamplerMethods identify the noise primitives: methods of
	// the named type (any package) whose call marks a function as drawing
	// noise.
	SamplerType    string
	SamplerMethods []string
	// AccountantType/ChargeMethods identify the budget ledger: calling one
	// of these methods on the named type marks a function as charging.
	AccountantType string
	ChargeMethods  []string
}

func (c *Config) fill() {
	if len(c.ReportPackages) == 0 {
		c.ReportPackages = []string{"blowfish", "internal/engine", "internal/stream"}
	}
	if c.SamplerType == "" {
		c.SamplerType = "Source"
	}
	if len(c.SamplerMethods) == 0 {
		c.SamplerMethods = []string{"Laplace", "LaplaceVec", "TwoSidedGeometric", "Gaussian"}
	}
	if c.AccountantType == "" {
		c.AccountantType = "Accountant"
	}
	if len(c.ChargeMethods) == 0 {
		c.ChargeMethods = []string{"Spend", "SpendParallel", "Charge"}
	}
}

// New constructs the analyzer. Default audits the repository layout.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "budgetcharge",
		Doc:  "flag exported release paths that draw noise without charging the accountant (ε-guarantee bookkeeping)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits blowfish, internal/engine and internal/stream.
var Default = New(Config{})

// fnInfo is the per-function summary the fixpoint iterates over.
type fnInfo struct {
	decl    *ast.FuncDecl
	key     string
	noisy   bool
	charges bool
	callees []string
}

func run(pass *analysis.Pass, cfg Config) error {
	var fns []*fnInfo
	byKey := make(map[string]*fnInfo)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			info := &fnInfo{decl: fd}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				info.key = analysis.FuncKey(fn)
			}
			scanBody(pass, cfg, fd, info)
			fns = append(fns, info)
			if info.key != "" {
				byKey[info.key] = info
			}
		}
	}

	// Fixpoint: propagate noisy/charges through the package-local call
	// graph; cross-package callees resolve against the shared fact store
	// (dependencies were analyzed first).
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, callee := range fi.callees {
				noisy := pass.Facts.Has(factNoisy, callee)
				charges := pass.Facts.Has(factCharges, callee)
				if local, ok := byKey[callee]; ok {
					noisy = noisy || local.noisy
					charges = charges || local.charges
				}
				if noisy && !fi.noisy {
					fi.noisy = true
					changed = true
				}
				if charges && !fi.charges {
					fi.charges = true
					changed = true
				}
			}
		}
	}

	for _, fi := range fns {
		if fi.key == "" {
			continue
		}
		if fi.noisy {
			pass.Facts.Set(factNoisy, fi.key)
		}
		if fi.charges {
			pass.Facts.Set(factCharges, fi.key)
		}
	}

	if !analysis.PathHasSuffix(pass.Pkg.Path(), cfg.ReportPackages) {
		return nil
	}
	for _, fi := range fns {
		if !fi.noisy || fi.charges {
			continue
		}
		fd := fi.decl
		if !fd.Name.IsExported() || !exportedRecv(fd) {
			// Unexported helpers are charged (or not) by their callers;
			// their facts flowed upward above.
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported release path %s draws noise but no Accountant.%v charge dominates it: noised output could be published without spending ε (Theorem 4.1 bookkeeping)",
			fd.Name.Name, cfg.ChargeMethods)
	}
	return nil
}

// exportedRecv reports whether the receiver type (if any) is exported,
// i.e. the method is reachable from outside the package.
func exportedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}

// scanBody records direct sampler/charge calls and the callee keys of
// every resolvable call, nested function literals included.
func scanBody(pass *analysis.Pass, cfg Config, fd *ast.FuncDecl, info *fnInfo) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if recv := recvTypeName(fn); recv != "" {
			if recv == cfg.SamplerType && contains(cfg.SamplerMethods, fn.Name()) {
				info.noisy = true
			}
			if recv == cfg.AccountantType && contains(cfg.ChargeMethods, fn.Name()) {
				info.charges = true
			}
		}
		if key := analysis.FuncKey(fn); key != "" {
			info.callees = append(info.callees, key)
		}
		return true
	})
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := analysis.NamedOf(sig.Recv().Type())
	if named == nil {
		return ""
	}
	return named.Obj().Name()
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
