// Package blowfish is a stand-in for the repository's facade: the
// directory suffix matches budgetcharge's audited package list, and the
// Source/Accountant types match its name-based primitives.
package blowfish

// Source mimics noise.Source.
type Source struct{ state uint64 }

// Laplace mimics the sampler the analyzer treats as drawing noise.
func (s *Source) Laplace(scale float64) float64 {
	s.state++
	return scale
}

// Accountant mimics composition.Accountant.
type Accountant struct{ spent float64 }

// Spend mimics the ledger charge.
func (a *Accountant) Spend(eps float64) error {
	a.spent += eps
	return nil
}

// Session bundles the two for release paths.
type Session struct {
	acct Accountant
	src  Source
}

// ReleaseGood charges before sampling: accepted.
func (s *Session) ReleaseGood(eps float64) (float64, error) {
	if err := s.acct.Spend(eps); err != nil {
		return 0, err
	}
	return s.src.Laplace(1 / eps), nil
}

// ReleaseBad samples without ever touching the ledger.
func (s *Session) ReleaseBad(eps float64) float64 { // want `ReleaseBad draws noise but no Accountant`
	return s.src.Laplace(1 / eps)
}

// ReleaseViaHelper hides the draw one call deep; the package-local
// fixpoint still sees it.
func (s *Session) ReleaseViaHelper(eps float64) float64 { // want `ReleaseViaHelper draws noise but no Accountant`
	return s.noised(eps)
}

// ReleaseChargedHelper both draws and charges through helpers: accepted.
func (s *Session) ReleaseChargedHelper(eps float64) float64 {
	s.charge(eps)
	return s.noised(eps)
}

// noised is unexported: never reported itself, but marks callers noisy.
func (s *Session) noised(eps float64) float64 {
	return s.src.Laplace(1 / eps)
}

func (s *Session) charge(eps float64) {
	_ = s.acct.Spend(eps)
}

// MechanismRelease is deliberately uncharged — the escape hatch.
//
//lint:allow budgetcharge mechanism-level stand-in: the accounted entry point charges before delegating here
func MechanismRelease(src *Source, eps float64) float64 {
	return src.Laplace(1 / eps)
}

// Histogram draws nothing: exact answers need no charge.
func (s *Session) Histogram(counts []float64) []float64 {
	out := make([]float64, len(counts))
	copy(out, counts)
	return out
}
