package detorder_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	diags := analysistest.Run(t, "testdata", detorder.Default, "blowfish")
	if len(diags) != 4 {
		t.Errorf("want 4 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `floating-point accumulation`)
	analysistest.MustFind(t, diags, `append into "keys"`)
	analysistest.MustFind(t, diags, `Append called inside a map range`)
	analysistest.MustFind(t, diags, `channel send inside a map range`)
}
