// Package detorder flags map iteration whose order can leak into
// replay-sensitive output. Go randomizes map range order per process, so
// any value that depends on it differs between the pre-crash server and
// its recovered twin: WAL payloads stop being byte-comparable, float
// accumulation re-associates (IEEE 754 addition is not associative), and
// noise draws land in a different sequence even from an identical
// generator state. The crash suites compare releases bit-for-bit; a
// single order-dependent range costs hours of chasing nondeterminism that
// never reproduces twice.
//
// Inside a `for ... range m` over a map, the analyzer flags:
//
//   - appends into a slice declared outside the loop — UNLESS the slice
//     is later passed to a sort.* / slices.* call in the same function
//     (the repository's collect-then-sort idiom is order-safe);
//   - floating-point compound accumulation (x += ...) into variables
//     declared outside the loop;
//   - calls to replay-sensitive sinks: WAL appends, accountant charges,
//     noise samplers, encoders;
//   - channel sends (the receiver observes arrival order).
//
// Reads, counts, max-tracking, and deletes keyed by the iteration
// variable are order-independent and pass untouched.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"blowfish/internal/analysis"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// Packages are import-path suffixes to audit. These are the layers
	// whose outputs recovery compares bit-for-bit.
	Packages []string
	// SortPackages are packages whose calls sanction a collected slice
	// (sort.Slice, slices.Sort, ...).
	SortPackages []string
	// SinkMethods are method names whose call inside a map-range body is
	// order-sensitive regardless of data flow.
	SinkMethods []string
}

func (c *Config) fill() {
	if len(c.Packages) == 0 {
		c.Packages = []string{
			"blowfish", "internal/engine", "internal/stream", "internal/server",
			"internal/service", "internal/shard",
			"internal/wal", "internal/secgraph", "internal/constraints", "internal/policy",
		}
	}
	if len(c.SortPackages) == 0 {
		c.SortPackages = []string{"sort", "slices"}
	}
	if len(c.SinkMethods) == 0 {
		c.SinkMethods = []string{
			"Append",                           // wal.Log.Append: payload bytes become the replay script
			"Spend", "SpendParallel", "Charge", // ledger order is part of exported state
			"Laplace", "LaplaceVec", "TwoSidedGeometric", "Gaussian", // stream position
			"Encode", "Write", // serialization inside the loop fixes iteration order into bytes
		}
	}
}

// New constructs the analyzer. Default audits the replay-compared layers.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "detorder",
		Doc:  "flag map iteration feeding releases, WAL payloads, or accumulation (replay determinism)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits the repository's replay-compared packages.
var Default = New(Config{})

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, cfg, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, cfg Config, fd *ast.FuncDecl) {
	// sortedObjs collects objects passed to sort/slices calls anywhere in
	// the function; an append target among them is the sanctioned
	// collect-then-sort idiom.
	sortedObjs := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !inList(cfg.SortPackages, fn.Pkg().Path()) {
			return true
		}
		for _, arg := range call.Args {
			if obj := identObj(pass.TypesInfo, arg); obj != nil {
				sortedObjs[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, cfg, rng, sortedObjs)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, cfg Config, rng *ast.RangeStmt, sortedObjs map[types.Object]bool) {
	inLoop := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					obj := identObj(pass.TypesInfo, lhs)
					if inLoop(obj) {
						continue
					}
					if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) {
						pass.Reportf(n.Pos(),
							"floating-point accumulation across a map range: addition order follows randomized iteration order, so the total differs bit-for-bit between runs (replay comparison breaks); collect and sort first, or accumulate integers")
					}
				}
			case token.ASSIGN:
				// x = append(x, ...) into an outer slice.
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					call, ok := n.Rhs[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
						continue
					}
					obj := identObj(pass.TypesInfo, lhs)
					if obj == nil || inLoop(obj) || sortedObjs[obj] {
						continue
					}
					pass.Reportf(n.Pos(),
						"append into %q inside a map range fixes randomized iteration order into the slice; sort it afterwards (collect-then-sort) or iterate sorted keys",
						obj.Name())
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a map range: the receiver observes randomized iteration order")
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			if recvNamed(fn) && inList(cfg.SinkMethods, fn.Name()) {
				pass.Reportf(n.Pos(),
					"%s called inside a map range: WAL payloads, ledger charges, and noise draws are replayed in log order, which a randomized iteration order cannot reproduce",
					fn.Name())
			}
		}
		return true
	})
}

// identObj resolves an identifier (possibly parenthesized) to its object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// recvNamed reports whether fn is a method (sink matching is
// method-name-based; free functions named Write etc. are too common).
func recvNamed(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func inList(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
