// Package blowfish is a stand-in matching detorder's audited package
// list; it exercises each order-sensitivity rule and each accepted idiom.
package blowfish

import "sort"

// SumBad re-associates float addition in randomized order.
func SumBad(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation across a map range`
	}
	return total
}

// SumGood collects, sorts, then accumulates in a fixed order: accepted.
func SumGood(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// CollectBad freezes the iteration order into the returned slice.
func CollectBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append into "keys" inside a map range`
	}
	return keys
}

// CountGood is order-independent: integer counting passes untouched.
func CountGood(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

type log struct{}

func (l *log) Append(payload []byte) error { return nil }

// JournalBad writes WAL records in randomized order; replay reads them in
// log order, so the two servers diverge.
func JournalBad(l *log, pending map[string][]byte) {
	for _, payload := range pending {
		_ = l.Append(payload) // want `Append called inside a map range`
	}
}

// SendBad publishes iteration order to the receiver.
func SendBad(ch chan<- string, m map[string]int) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

// Broadcast fans keys out to subscribers that treat them as an unordered
// set — order-independence is the point, and the annotation records why.
func Broadcast(ch chan<- string, m map[string]int) {
	for k := range m {
		//lint:allow detorder subscribers treat notifications as an unordered set; no payload depends on arrival order
		ch <- k
	}
}
