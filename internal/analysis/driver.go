package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowPrefix introduces a suppression directive. The full syntax is
//
//	//lint:allow <analyzer> <justification...>
//
// and the justification is mandatory: an allow without a reason is itself
// reported. A directive suppresses findings of the named analyzer
//
//   - on the directive's own line,
//   - on the line immediately below it (comment-above style), or
//   - anywhere inside a function whose doc comment carries it.
const AllowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer      string
	justification string
	pos           token.Pos
}

// parseAllow parses a comment, returning ok=false for non-directives and
// an error diagnostic for malformed ones.
func parseAllow(c *ast.Comment) (d allowDirective, ok bool, bad *Diagnostic) {
	text := c.Text // raw comment, leading "//" included
	if !strings.HasPrefix(text, AllowPrefix) {
		return d, false, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return d, false, &Diagnostic{
			Analyzer: "allow",
			Pos:      c.Pos(),
			Message:  "malformed directive: want //lint:allow <analyzer> <justification>",
		}
	}
	return allowDirective{
		analyzer:      fields[0],
		justification: strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
		pos:           c.Pos(),
	}, true, nil
}

// suppressions indexes a package's allow directives for fast lookup.
type suppressions struct {
	fset *token.FileSet
	// byLine maps file:line to directives taking effect on that line.
	byLine map[string][]allowDirective
	// funcs maps function body spans to directives from the func's doc.
	funcs []funcAllow
	// malformed collects bad directives, reported as findings.
	malformed []Diagnostic
}

type funcAllow struct {
	start, end token.Pos
	directives []allowDirective
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byLine: make(map[string][]allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok, bad := parseAllow(c)
				if bad != nil {
					s.malformed = append(s.malformed, *bad)
				}
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				// Effective on its own line and the line below.
				s.byLine[lineKey(p.Filename, p.Line)] = append(s.byLine[lineKey(p.Filename, p.Line)], d)
				s.byLine[lineKey(p.Filename, p.Line+1)] = append(s.byLine[lineKey(p.Filename, p.Line+1)], d)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var ds []allowDirective
			for _, c := range fd.Doc.List {
				if d, ok, _ := parseAllow(c); ok {
					ds = append(ds, d)
				}
			}
			if len(ds) > 0 {
				s.funcs = append(s.funcs, funcAllow{start: fd.Pos(), end: fd.End(), directives: ds})
			}
		}
	}
	return s
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// lookup returns the justification of a directive covering the diagnostic,
// or ok=false.
func (s *suppressions) lookup(d Diagnostic) (string, bool) {
	p := s.fset.Position(d.Pos)
	for _, a := range s.byLine[lineKey(p.Filename, p.Line)] {
		if a.analyzer == d.Analyzer {
			return a.justification, true
		}
	}
	for _, fa := range s.funcs {
		if d.Pos >= fa.start && d.Pos < fa.end {
			for _, a := range fa.directives {
				if a.analyzer == d.Analyzer {
					return a.justification, true
				}
			}
		}
	}
	return "", false
}

// Run executes every analyzer over every package of prog (dependency
// order, shared fact store) and returns all diagnostics — suppressed ones
// included, marked — sorted by position. Malformed allow directives are
// reported as findings of the pseudo-analyzer "allow", so a suppression
// without a justification can never silently disable a checker.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	var all []Diagnostic
	for _, pkg := range prog.Pkgs {
		sup := collectSuppressions(prog.Fset, pkg.Files)
		all = append(all, sup.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
				report: func(d Diagnostic) {
					if just, ok := sup.lookup(d); ok {
						d.Suppressed = true
						d.Justification = just
					}
					all = append(all, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	for i := range all {
		all[i].Position = prog.Fset.Position(all[i].Pos)
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Position, all[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
