package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"blowfish/internal/analysis"
	"blowfish/internal/analysis/truthflow"
)

// TestCrossPackageFactPropagation drives the loader and the fixpoint
// driver over a three-package module shaped like the real tree
// (engine → service → server) and checks that truth-taint facts derived
// in the engine package cross TWO package boundaries through an
// intermediate helper: engine.Truth is marked truth-returning because it
// forwards a configured source, service.Fetch inherits the mark because
// it forwards engine.Truth, and the diagnostic finally fires in the
// server package where the value lands in a wire-struct field — three
// packages away from the source.
func TestCrossPackageFactPropagation(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("go.mod", "module factchain\n\ngo 1.24\n")
	write("internal/engine/engine.go", `package engine

// DatasetIndex is a stand-in truth holder.
type DatasetIndex struct{ counts []float64 }

// Histogram is the configured truthflow source.
func (ix *DatasetIndex) Histogram() ([]float64, error) { return ix.counts, nil }

// Truth forwards raw truth: the fixpoint marks it truth-returning.
func Truth(ix *DatasetIndex) []float64 {
	v, _ := ix.Histogram()
	return v
}
`)
	write("internal/service/service.go", `package service

import "factchain/internal/engine"

// Fetch is the intermediate helper: it only sees engine.Truth, never the
// configured source itself, so flagging downstream callers requires the
// truth-returning fact to propagate through this package.
func Fetch(ix *engine.DatasetIndex) []float64 { return engine.Truth(ix) }
`)
	write("internal/server/server.go", `package server

import (
	"factchain/internal/engine"
	"factchain/internal/service"
)

// Payload is a wire struct (internal/server is a wire package).
type Payload struct{ Counts []float64 }

// Handle stores raw truth in a wire field: the finding lands here.
func Handle(ix *engine.DatasetIndex) Payload {
	return Payload{Counts: service.Fetch(ix)}
}
`)

	prog, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(prog.Pkgs))
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{truthflow.Default})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Suppressed {
		t.Errorf("finding unexpectedly suppressed: %v", d)
	}
	if want := filepath.Join("internal", "server", "server.go"); !strings.HasSuffix(d.Position.Filename, want) {
		t.Errorf("finding in %s, want it in the server package (%s)", d.Position.Filename, want)
	}
	// The origin names the intermediate helper, proving the taint arrived
	// via the service-package fact rather than direct source visibility.
	if !regexp.MustCompile(`truth-returning .*Fetch`).MatchString(d.Message) {
		t.Errorf("origin does not name the intermediate helper: %q", d.Message)
	}
	if !regexp.MustCompile(`wire field Payload\.Counts`).MatchString(d.Message) {
		t.Errorf("sink is not the wire field: %q", d.Message)
	}
}
