package errcode_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/errcode"
)

func TestErrCode(t *testing.T) {
	diags := analysistest.Run(t, "testdata", errcode.Default,
		"internal/service", "fronts/internal/server")
	if len(diags) != 5 {
		t.Errorf("want 5 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `CodeOrphan`)
	analysistest.MustFind(t, diags, `stale_entry`)
	analysistest.MustFind(t, diags, `unregistered code "bad_requset"`)
	analysistest.MustFind(t, diags, `must be a compile-time constant`)
	analysistest.MustFind(t, diags, `no explicit case in httpStatus`)
}
