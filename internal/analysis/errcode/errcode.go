// Package errcode enforces the service error-code registry contract.
// Clients branch on the machine code of a *service.Error, and fronts
// translate codes to transport statuses, so the vocabulary must be
// closed: every Code* constant is listed in the canonical service.Codes
// table, every constructed *Error (composite literal or errf call)
// carries a registered code, and the HTTP front's httpStatus switch maps
// every registered code explicitly rather than leaking new codes through
// its default arm. Registration travels across packages as
// errcode.registered facts keyed by the code's string value, so the
// server package (which re-declares the constants) checks against the
// same table.
package errcode

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"blowfish/internal/analysis"
)

// factRegistered marks a code string value as listed in the canonical
// table.
const factRegistered = "errcode.registered"

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// TablePackages hold the error vocabulary: the Code* constants, the
	// canonical table, and the Error type.
	TablePackages []string
	// TableVar names the canonical []string registry.
	TableVar string
	// ConstPrefix selects the code constants audited against the table.
	ConstPrefix string
	// ErrorType names the structured error type whose Code field must be
	// registered.
	ErrorType string
	// Constructors are table-package functions whose first argument is a
	// code (errf-style).
	Constructors []string
	// StatusPackages/StatusFunc identify the front's code→status mapping,
	// which must cover every registered code with an explicit case.
	StatusPackages []string
	StatusFunc     string
}

func (c *Config) fill() {
	if len(c.TablePackages) == 0 {
		c.TablePackages = []string{"internal/service"}
	}
	if c.TableVar == "" {
		c.TableVar = "Codes"
	}
	if c.ConstPrefix == "" {
		c.ConstPrefix = "Code"
	}
	if c.ErrorType == "" {
		c.ErrorType = "Error"
	}
	if len(c.Constructors) == 0 {
		c.Constructors = []string{"errf"}
	}
	if len(c.StatusPackages) == 0 {
		c.StatusPackages = []string{"internal/server"}
	}
	if c.StatusFunc == "" {
		c.StatusFunc = "httpStatus"
	}
}

// New constructs the analyzer. Default audits the repository layout.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "errcode",
		Doc:  "require every service error code to be registered in the canonical Codes table and explicitly mapped to an HTTP status",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits internal/service and internal/server.
var Default = New(Config{})

func run(pass *analysis.Pass, cfg Config) error {
	inTablePkg := analysis.PathHasSuffix(pass.Pkg.Path(), cfg.TablePackages)
	if inTablePkg {
		checkTable(pass, cfg)
	}
	checkConstructions(pass, cfg)
	if analysis.PathHasSuffix(pass.Pkg.Path(), cfg.StatusPackages) {
		checkStatusFunc(pass, cfg)
	}
	return nil
}

// checkTable registers the canonical table's entries as facts and flags
// Code* constants missing from it (and entries naming no constant).
func checkTable(pass *analysis.Pass, cfg Config) {
	consts := map[string]*ast.Ident{} // value -> declaring ident
	var firstConst *ast.Ident
	var tableElems []ast.Expr
	haveTable := false

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					switch {
					case gd.Tok == token.CONST && hasPrefix(name.Name, cfg.ConstPrefix):
						if v := constVal(pass.TypesInfo, name); v != "" {
							consts[v] = name
							if firstConst == nil {
								firstConst = name
							}
						}
					case gd.Tok == token.VAR && name.Name == cfg.TableVar:
						haveTable = true
						if len(vs.Values) == 1 {
							if cl, ok := vs.Values[0].(*ast.CompositeLit); ok {
								tableElems = cl.Elts
							}
						}
					}
				}
			}
		}
	}

	if len(consts) > 0 && !haveTable {
		pass.Reportf(firstConst.Pos(),
			"package declares %s* error codes but no canonical %s table: the errcode registry contract needs one",
			cfg.ConstPrefix, cfg.TableVar)
		return
	}
	registered := map[string]bool{}
	for _, elt := range tableElems {
		tv, ok := pass.TypesInfo.Types[elt]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(elt.Pos(), "%s entry must be a compile-time string constant", cfg.TableVar)
			continue
		}
		v := constant.StringVal(tv.Value)
		if registered[v] {
			pass.Reportf(elt.Pos(), "%s lists code %q twice", cfg.TableVar, v)
		}
		registered[v] = true
		pass.Facts.Set(factRegistered, v)
		if _, ok := consts[v]; !ok && haveTable {
			pass.Reportf(elt.Pos(), "%s entry %q does not correspond to any %s* constant", cfg.TableVar, v, cfg.ConstPrefix)
		}
	}
	for v, ident := range consts {
		if !registered[v] {
			pass.Reportf(ident.Pos(),
				"error code %s (%q) is not registered in the canonical %s table: clients and fronts cannot handle it",
				ident.Name, v, cfg.TableVar)
		}
	}
}

// checkConstructions flags Error composite literals and errf-style calls
// whose code is not a registered compile-time constant.
func checkConstructions(pass *analysis.Pass, cfg Config) {
	if len(pass.Facts.Keys(factRegistered)) == 0 {
		return // no table seen anywhere: nothing to check against
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				// Constructor bodies are the blessed indirection: their
				// parameter flows into the literal; call sites are checked.
				if analysis.PathHasSuffix(pass.Pkg.Path(), cfg.TablePackages) && contains(cfg.Constructors, x.Name.Name) {
					return false
				}
			case *ast.CompositeLit:
				named := analysis.NamedOf(pass.TypesInfo.TypeOf(x))
				if named == nil || named.Obj().Name() != cfg.ErrorType {
					return true
				}
				pkg := named.Obj().Pkg()
				if pkg == nil || !analysis.PathHasSuffix(pkg.Path(), cfg.TablePackages) {
					return true
				}
				if code := errorCodeExpr(x); code != nil {
					checkCodeExpr(pass, cfg, code)
				}
			case *ast.CallExpr:
				fn := analysis.CalleeFunc(pass.TypesInfo, x)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if !analysis.PathHasSuffix(fn.Pkg().Path(), cfg.TablePackages) || !contains(cfg.Constructors, fn.Name()) {
					return true
				}
				if len(x.Args) > 0 {
					checkCodeExpr(pass, cfg, x.Args[0])
				}
			}
			return true
		})
	}
}

// errorCodeExpr extracts the Code field value from an Error literal.
func errorCodeExpr(cl *ast.CompositeLit) ast.Expr {
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Code" {
				return kv.Value
			}
			continue
		}
		if i == 0 {
			return elt // positional literal: Code is the first field
		}
	}
	return nil
}

func checkCodeExpr(pass *analysis.Pass, cfg Config, e ast.Expr) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(e.Pos(),
			"error code must be a compile-time constant from the %s table, not a computed value",
			cfg.TableVar)
		return
	}
	v := constant.StringVal(tv.Value)
	if !pass.Facts.Has(factRegistered, v) {
		pass.Reportf(e.Pos(),
			"error constructed with unregistered code %q: add it to the canonical %s table and map it to a status",
			v, cfg.TableVar)
	}
}

// checkStatusFunc requires the front's switch to carry an explicit case
// for every registered code.
func checkStatusFunc(pass *analysis.Pass, cfg Config) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != cfg.StatusFunc || fd.Body == nil {
				continue
			}
			covered := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						covered[constant.StringVal(tv.Value)] = true
					}
				}
				return true
			})
			for _, v := range pass.Facts.Keys(factRegistered) {
				if !covered[v] {
					pass.Reportf(fd.Name.Pos(),
						"registered error code %q has no explicit case in %s: new codes must not fall through the default status",
						v, cfg.StatusFunc)
				}
			}
		}
	}
}

// constVal resolves a declared constant's string value, or "".
func constVal(info *types.Info, name *ast.Ident) string {
	c, ok := info.Defs[name].(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return ""
	}
	return constant.StringVal(c.Val())
}

func hasPrefix(s, prefix string) bool {
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
