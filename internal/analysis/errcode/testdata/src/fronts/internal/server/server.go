// Package server is a stand-in HTTP front: its httpStatus switch must
// carry an explicit case for every code registered in the imported
// service table (this stand-in misses one).
package server

import "blowfish/internal/analysis/errcode/testdata/src/fronts/internal/service"

const (
	CodeBadRequest    = service.CodeBadRequest
	CodeUnknownPolicy = service.CodeUnknownPolicy
)

// httpStatus misses the registered "unknown_policy" case.
func httpStatus(code string) int { // want `registered error code "unknown_policy" has no explicit case`
	switch code {
	case CodeBadRequest:
		return 400
	default:
		return 400
	}
}
