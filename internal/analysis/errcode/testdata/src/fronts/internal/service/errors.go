// Package service is the clean table stand-in the server corpus imports
// (kept separate from the flagged corpus so its findings stay local).
package service

const (
	CodeBadRequest    = "bad_request"
	CodeUnknownPolicy = "unknown_policy"
)

// Codes is the canonical registry.
var Codes = []string{
	CodeBadRequest,
	CodeUnknownPolicy,
}

// Error is the structured failure.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }
