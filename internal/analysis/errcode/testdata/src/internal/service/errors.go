// Package service is a stand-in error vocabulary: two registered codes,
// one constant missing from the table, a stale table entry, constructor
// checks, and one //lint:allow escape.
package service

import "fmt"

const (
	CodeBadRequest    = "bad_request"
	CodeUnknownPolicy = "unknown_policy"
	CodeOrphan        = "orphan_code" // want `not registered in the canonical Codes table`
)

// Codes is the canonical registry.
var Codes = []string{
	CodeBadRequest,
	CodeUnknownPolicy,
	"stale_entry", // want `does not correspond to any Code\* constant`
}

// Error is the structured failure.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// errf builds a coded error.
func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Registered constructions: accepted.
func badRequest(err error) *Error {
	return &Error{Code: CodeBadRequest, Message: err.Error()}
}

func unknownPolicy(id string) *Error {
	return errf(CodeUnknownPolicy, "no policy %q", id)
}

// Unregistered constructions: flagged.
func typoErr() *Error {
	return errf("bad_requset", "typo") // want `unregistered code "bad_requset"`
}

func dynamicErr(code string) *Error {
	return &Error{Code: code, Message: "dynamic"} // want `must be a compile-time constant`
}

// legacyErr predates the registry and is tolerated explicitly.
func legacyErr() *Error {
	//lint:allow errcode legacy wire code kept for pre-registry clients; remove with v2
	return errf("legacy_code", "grandfathered")
}
