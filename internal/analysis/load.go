package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	FileNames []string
	Types     *types.Package
	TypesInfo *types.Info
	Imports   []string
}

// Program is the result of Load: the shared FileSet and the module's
// packages in dependency order (imports before importers), which is the
// order the driver runs analyzers in so cross-package facts flow forward.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
}

// Load lists patterns with the go tool (run in dir), parses and
// type-checks every non-standard package in the listing, and returns them
// in dependency order. Imports — standard library and module-internal
// alike — are resolved from the build cache's export data, which `go list
// -export` produces without any network access, so the loader works in
// hermetic environments. Test files are not loaded: the enforced
// invariants are production-code properties, and the analyzers' own
// allowlists treat _test.go as exempt anyway.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Export,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var metas []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listedPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.Standard {
			metas = append(metas, &m)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{exports: exports, gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p)
	})}

	byPath := make(map[string]*Package)
	var pkgs []*Package
	for _, m := range metas {
		pkg, err := checkPackage(fset, imp, m)
		if err != nil {
			return nil, err
		}
		byPath[pkg.Path] = pkg
		pkgs = append(pkgs, pkg)
	}
	return &Program{Fset: fset, Pkgs: topoSort(pkgs, byPath)}, nil
}

// exportImporter satisfies types.Importer from build-cache export data.
type exportImporter struct {
	exports map[string]string
	gc      types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// checkPackage parses and type-checks one listed package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, m *listedPkg) (*Package, error) {
	pkg := &Package{Path: m.ImportPath, Dir: m.Dir, Imports: m.Imports}
	for _, name := range m.GoFiles {
		full := filepath.Join(m.Dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", full, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, full)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(m.ImportPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", m.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// topoSort orders packages so every package follows the packages it
// imports (among the loaded, non-standard set). Ties break by path so the
// order — and therefore diagnostic order — is deterministic.
func topoSort(pkgs []*Package, byPath map[string]*Package) []*Package {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if dp, ok := byPath[dep]; ok && state[dep] == 0 {
				visit(dp)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
