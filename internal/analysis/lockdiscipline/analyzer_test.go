package lockdiscipline_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	diags := analysistest.Run(t, "testdata", lockdiscipline.Default, "blowfish")
	if len(diags) != 4 {
		t.Errorf("want 4 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `lock order inversion`)
	analysistest.MustFind(t, diags, `no later matching unlock`)
	analysistest.MustFind(t, diags, `locked while already held`)
	analysistest.MustFind(t, diags, `passes a mutex by value`)
}
