// Package lockdiscipline enforces the repository's lock hygiene and lock
// ordering. The serving path nests two locks — stream.Table's RW lock
// (ingestion vs. release ordering) outside engine.DatasetIndex's lock
// (count-vector maintenance) — and a single inverted acquisition is a
// deadlock that only manifests under concurrent ingest + release load,
// exactly the schedule the race detector rarely explores. Three rules,
// all per-function statement-order approximations on non-test code:
//
//  1. No mutex value copies: a parameter or assignment that copies a
//     sync.Mutex/RWMutex (directly or inside a struct) duplicates lock
//     state; the copy guards nothing.
//  2. Every Lock/RLock must be followed, later in the same function, by a
//     matching Unlock/RUnlock on the same receiver — as a call, a defer,
//     or a method-value reference (the server hands e.relMu.Unlock to its
//     caller as an unlock closure). Single-statement wrapper methods
//     named Lock/RLock/etc. are exempt: forwarding is their whole job.
//  3. Rank ordering: with Table ranked before DatasetIndex, acquiring a
//     lower-ranked lock while a higher-ranked one is still held is an
//     inversion. Re-acquiring a receiver already held is flagged as a
//     self-deadlock (Go mutexes are not reentrant).
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blowfish/internal/analysis"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// Packages are import-path suffixes to audit.
	Packages []string
	// RankOrder names lock-owning types outermost-first: a type earlier in
	// the list must be locked before any later one. The repository's order
	// is Table (ingestion fence) outside DatasetIndex (count vectors).
	RankOrder []string
}

func (c *Config) fill() {
	if len(c.Packages) == 0 {
		c.Packages = []string{
			"blowfish", "internal/engine", "internal/stream", "internal/server",
			"internal/service", "internal/shard",
		}
	}
	if len(c.RankOrder) == 0 {
		c.RankOrder = []string{"Table", "DatasetIndex"}
	}
}

// Default audits the repository's locking layers with the documented
// Table-before-DatasetIndex order.
var Default = New(Config{})

// New constructs the analyzer with the given configuration.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "lockdiscipline",
		Doc:  "flag mutex copies, unpaired locks, and Table/DatasetIndex rank inversions (deadlock freedom)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	r := &ranks{order: cfg.RankOrder, ranked: make(map[string]int)}
	for i, name := range cfg.RankOrder {
		r.ranked[name] = i
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopies(pass, fd)
			if fd.Body != nil && !isLockWrapper(fd) {
				checkPairing(pass, r, fd)
				checkOrdering(pass, r, fd)
			}
		}
	}
	return nil
}

// isLockWrapper exempts forwarding methods like Table.RLock.
func isLockWrapper(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// --- rule 1: mutex copies ---

func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if holdsMutex(tv.Type) {
				pass.Reportf(field.Type.Pos(),
					"parameter passes a mutex by value: the callee locks a copy that guards nothing; pass a pointer")
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
				// Copying an existing value; literals and calls produce
				// fresh, never-locked state and are fine.
			default:
				continue
			}
			tv, ok := pass.TypesInfo.Types[rhs]
			if !ok || !holdsMutex(tv.Type) {
				continue
			}
			pass.Reportf(rhs.Pos(),
				"assignment copies a value containing a mutex: lock state is duplicated, and locking the copy guards nothing")
		}
		return true
	})
}

// holdsMutex reports whether t is sync.Mutex/RWMutex or a struct carrying
// one by value (fields checked recursively).
func holdsMutex(t types.Type) bool {
	if named := analysis.NamedOf(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if holdsMutex(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// --- rules 2 and 3: pairing and ordering ---

// lockEvent is one acquire/release in statement order.
type lockEvent struct {
	pos      token.Pos
	recv     string // rendered receiver, e.g. "de.tbl" or "x.mu"
	rank     int    // index into RankOrder, -1 if unranked
	acquire  bool
	deferred bool
	read     bool // RLock/RUnlock
}

func checkPairing(pass *analysis.Pass, r *ranks, fd *ast.FuncDecl) {
	events := collectEvents(pass, r, fd)
	// Method-value references (e.relMu.Unlock handed out as a closure)
	// count as releases anywhere later in the function.
	releases := releaseMentions(pass, fd)
	for _, e := range events {
		if !e.acquire {
			continue
		}
		paired := false
		for _, r := range releases {
			if r.recv == e.recv && r.pos > e.pos && r.read == e.read {
				paired = true
				break
			}
		}
		if !paired {
			op := "Lock"
			if e.read {
				op = "RLock"
			}
			pass.Reportf(e.pos,
				"%s.%s with no later matching unlock in this function: an early return or panic leaves the lock held forever",
				e.recv, op)
		}
	}
}

func checkOrdering(pass *analysis.Pass, r *ranks, fd *ast.FuncDecl) {
	events := collectEvents(pass, r, fd)
	held := make(map[string]lockEvent) // recv -> acquiring event
	for _, e := range events {
		if !e.acquire {
			// A deferred unlock runs at function exit, not here; only a
			// direct unlock ends the hold at this point in the order.
			if !e.deferred {
				delete(held, e.recv)
			}
			continue
		}
		if prev, ok := held[e.recv]; ok && prev.read == e.read && !e.read {
			pass.Reportf(e.pos,
				"%s locked while already held in this function: Go mutexes are not reentrant, this self-deadlocks", e.recv)
		}
		if e.rank >= 0 {
			for _, h := range held {
				if h.rank > e.rank {
					pass.Reportf(e.pos,
						"lock order inversion: %s (rank %d, %s) acquired while %s (rank %d, %s) is held; the documented order is %s",
						e.recv, e.rank, r.order[e.rank], h.recv, h.rank, r.order[h.rank],
						strings.Join(r.order, " before "))
				}
			}
		}
		held[e.recv] = e
	}
}

// collectEvents walks the body in source order gathering lock/unlock
// calls. Receivers are compared by rendered source text — an
// approximation that is exact for the field-selector receivers the
// repository uses (s.mu, de.tbl, x.mu).
func collectEvents(pass *analysis.Pass, r *ranks, fd *ast.FuncDecl) []lockEvent {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !deferred
		}
		var acquire, read bool
		switch sel.Sel.Name {
		case "Lock":
			acquire = true
		case "RLock":
			acquire, read = true, true
		case "Unlock":
		case "RUnlock":
			read = true
		default:
			return !deferred
		}
		if !isLockTarget(pass.TypesInfo, call, r.ranked) {
			return !deferred
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			recv:     types.ExprString(sel.X),
			rank:     r.rankOf(pass.TypesInfo, sel.X),
			acquire:  acquire,
			deferred: deferred,
			read:     read,
		})
		return !deferred
	})
	return events
}

// releaseMentions finds every unlock mention — call, defer, or bare
// method-value reference — with its receiver text.
func releaseMentions(pass *analysis.Pass, fd *ast.FuncDecl) []lockEvent {
	var out []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var read bool
		switch sel.Sel.Name {
		case "Unlock":
		case "RUnlock":
			read = true
		default:
			return true
		}
		out = append(out, lockEvent{pos: sel.Pos(), recv: types.ExprString(sel.X), read: read})
		return true
	})
	return out
}

// ranks resolves receiver expressions to the configured lock order.
type ranks struct {
	order  []string
	ranked map[string]int
}

// rankOf returns the rank of the lock owner: the receiver's named type
// if ranked, else — for x.mu style fields — the named type of the base.
func (r *ranks) rankOf(info *types.Info, recv ast.Expr) int {
	if n := rankName(info, recv); n != "" {
		if i, ok := r.ranked[n]; ok {
			return i
		}
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if n := rankName(info, sel.X); n != "" {
			if i, ok := r.ranked[n]; ok {
				return i
			}
		}
	}
	return -1
}

func rankName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	named := analysis.NamedOf(tv.Type)
	if named == nil {
		return ""
	}
	return named.Obj().Name()
}

// isLockTarget confirms the call is a real lock operation: a sync
// mutex method, or a method on a ranked lock-owning type (the Table
// wrapper methods).
func isLockTarget(info *types.Info, call *ast.CallExpr, ranked map[string]int) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := analysis.NamedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	_, ok = ranked[named.Obj().Name()]
	return ok
}
