// Package blowfish is a stand-in matching lockdiscipline's audited
// package list, with Table and DatasetIndex named to hit the default
// rank order (Table before DatasetIndex).
package blowfish

import "sync"

// Table mimics stream.Table: RW lock with exported wrapper methods.
type Table struct {
	mu   sync.RWMutex
	rows []int
}

// RLock forwards; wrappers named like lock methods are exempt from the
// pairing rule — forwarding is their whole job.
func (t *Table) RLock() { t.mu.RLock() }

// RUnlock forwards.
func (t *Table) RUnlock() { t.mu.RUnlock() }

// DatasetIndex mimics engine.DatasetIndex: plain mutex around counts.
type DatasetIndex struct {
	mu     sync.Mutex
	counts []float64
}

// ReadGood takes the locks in documented order: accepted.
func ReadGood(t *Table, x *DatasetIndex) int {
	t.RLock()
	defer t.RUnlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(t.rows) + len(x.counts)
}

// ReadInverted acquires the Table fence while the index lock is held.
func ReadInverted(t *Table, x *DatasetIndex) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	t.RLock() // want `lock order inversion`
	defer t.RUnlock()
	return len(t.rows) + len(x.counts)
}

// Leak locks and forgets: every early return keeps the lock forever.
func Leak(x *DatasetIndex) {
	x.mu.Lock() // want `no later matching unlock`
	x.counts = nil
}

// DoubleLock re-acquires a held, non-reentrant mutex.
func DoubleLock(x *DatasetIndex) {
	x.mu.Lock()
	x.mu.Lock() // want `locked while already held`
	x.counts = nil
	x.mu.Unlock()
	x.mu.Unlock()
}

// CopyParam receives lock state by value; the copy guards nothing.
func CopyParam(t Table) int { // want `passes a mutex by value`
	return len(t.rows)
}

// Handoff returns the unlock as a method value — the repository's
// lockForRelease pattern. The reference counts as the pairing release.
func Handoff(x *DatasetIndex) func() {
	x.mu.Lock()
	return x.mu.Unlock
}

// HeldAcross hands the locked index to a worker goroutine that unlocks
// it; the per-function pairing rule cannot see that, so the doc comment
// carries the exception.
//
//lint:allow lockdiscipline lock is intentionally held across the goroutine handoff; the spawned worker releases it
func HeldAcross(x *DatasetIndex) {
	x.mu.Lock()
	go release(x)
}

func release(x *DatasetIndex) {
	x.counts = nil
	x.mu.Unlock()
}
