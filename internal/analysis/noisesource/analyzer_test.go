package noisesource_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/noisesource"
)

func TestNoiseSource(t *testing.T) {
	diags := analysistest.Run(t, "testdata", noisesource.Default, "app", "internal/noise")
	if len(diags) != 3 {
		t.Errorf("want 3 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `import of "math/rand" outside`)
	analysistest.MustFind(t, diags, `import of "crypto/rand" outside`)
	analysistest.MustFind(t, diags, `seeded from the wall clock`)
}
