// Package noisesource forbids randomness that bypasses the restorable
// internal/noise PCG source. Recovery replays a crashed server to
// bit-for-bit identical noise streams only because every variate is drawn
// from a Source whose full generator state marshals into snapshots; a
// stray math/rand import, a crypto/rand draw, or a wall-clock seed breaks
// that equivalence silently — releases after a crash would stop matching
// the pre-crash stream and the crash suites would chase ghosts.
package noisesource

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"blowfish/internal/analysis"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// BannedImports are import paths that must not appear outside the
	// allowlist. Defaults to math/rand, math/rand/v2 and crypto/rand.
	BannedImports []string
	// AllowPackages are import-path suffixes exempt from the import ban:
	// internal/noise (the one sanctioned consumer of math/rand/v2) and
	// internal/datagen (synthetic figure data, never served).
	AllowPackages []string
	// SeedFuncs are function names that, when called with a wall-clock
	// argument (any time.Now() in the argument tree), are flagged even in
	// allowed packages — a time-seeded stream can never replay.
	SeedFuncs []string
}

func (c *Config) fill() {
	if len(c.BannedImports) == 0 {
		c.BannedImports = []string{"math/rand", "math/rand/v2", "crypto/rand"}
	}
	if len(c.AllowPackages) == 0 {
		c.AllowPackages = []string{"internal/noise", "internal/datagen"}
	}
	if len(c.SeedFuncs) == 0 {
		c.SeedFuncs = []string{"NewSource", "NewPCG", "New", "NewChaCha8", "Seed"}
	}
}

// New constructs the analyzer. Default uses the repository layout.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "noisesource",
		Doc:  "forbid randomness outside the restorable internal/noise source (crash-replay determinism)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default enforces the repository's real allowlist.
var Default = New(Config{})

func run(pass *analysis.Pass, cfg Config) error {
	allowedPkg := analysis.PathHasSuffix(pass.Pkg.Path(), cfg.AllowPackages)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			// Tests seed however they like; they never serve releases.
			continue
		}
		if !allowedPkg {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, banned := range cfg.BannedImports {
					if path == banned {
						pass.Reportf(imp.Pos(), "import of %q outside internal/noise: all randomness must flow through the restorable noise.Source (crash replay would diverge)", path)
					}
				}
			}
		}
		// Nested constructors (rand.New(rand.NewPCG(time.Now()...))) put the
		// same wall-clock call in two argument trees; report it once, at
		// the outermost seeding call.
		reported := make(map[token.Pos]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			seedName := false
			for _, s := range cfg.SeedFuncs {
				if fn.Name() == s {
					seedName = true
					break
				}
			}
			if !seedName {
				return true
			}
			for _, arg := range call.Args {
				if pos, found := wallClockIn(pass.TypesInfo, arg); found && !reported[pos] {
					reported[pos] = true
					pass.Reportf(pos, "%s seeded from the wall clock: a time-seeded stream can never be replayed bit-for-bit after a crash; derive the seed from configuration or Split", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// wallClockIn reports a time.Now (or time.Since) call in the expression.
func wallClockIn(info *types.Info, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
