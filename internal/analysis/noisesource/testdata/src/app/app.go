// Package app is outside the noisesource allowlist: any banned randomness
// import is flagged, and the //lint:allow directive is the only way out.
package app

import (
	crand "crypto/rand" // want `import of "crypto/rand" outside internal/noise`
	mrand "math/rand"   // want `import of "math/rand" outside internal/noise`

	sanctioned "math/rand/v2" //lint:allow noisesource CLI-only shuffling of display rows; never feeds a release
)

// Mix exists to use the imports; the findings attach to the import lines.
func Mix(buf []byte) int {
	_, _ = crand.Read(buf)
	return mrand.Intn(2) + sanctioned.IntN(2)
}
