// Package noise is the sanctioned consumer: the banned imports are free
// here, but wall-clock seeding is flagged even inside the allowlist — a
// time-seeded stream can never replay.
package noise

import (
	"math/rand/v2"
	"time"
)

// NewSeeded builds a generator from configuration: accepted.
func NewSeeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// NewWallClock seeds from the clock, which recovery cannot reproduce.
func NewWallClock() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // want `seeded from the wall clock`
}
