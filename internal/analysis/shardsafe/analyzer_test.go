package shardsafe_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/shardsafe"
)

func TestShardSafe(t *testing.T) {
	diags := analysistest.Run(t, "testdata", shardsafe.Default, "shardtree/internal/shard")
	if len(diags) != 3 {
		t.Errorf("want 3 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `Core\.DatasetTable`)
	analysistest.MustFind(t, diags, `computed expression`)
	analysistest.MustFind(t, diags, `ApplyPolicy without a rollback branch`)
}
