// Package shardsafe enforces the router/shard isolation contract from
// the PR that split serving into service cores behind a shard router.
// Each shard core owns its registries, WAL directory and seed lineage;
// the router may coordinate shards only through the same Service
// surface the HTTP front uses. Three rules, reported inside the shard
// packages only:
//
//  1. Surface discipline: any use of a *service.Core method outside the
//     allowlisted Service/broadcast surface (the white-box accessors —
//     DatasetTable, SessionHandle, StartedIngestor, ... — exist for
//     tests) is flagged.
//  2. Index provenance: an index into the []*service.Core slice must be
//     the literal 0 (the route-miss fallback that produces the core's
//     own structured error), a range variable over the cores slice, a
//     routing-table (map[string]int) lookup, or a ShardFor rendezvous
//     hash. Arithmetic or parameter-derived indexes reach across shard
//     boundaries and are flagged.
//  3. Broadcast rollback: a loop over the cores slice that calls a
//     mutating Apply*/Delete* method must contain a nested rollback
//     loop, so a mid-broadcast refusal cannot leave shards disagreeing
//     about the policy set. (rebuild's torn-broadcast repair is the
//     designed exception: re-applying the policy union is idempotent —
//     the repair is the rollback.)
package shardsafe

import (
	"go/ast"
	"go/types"

	"blowfish/internal/analysis"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// ShardPackages are the import-path suffixes audited (the router).
	ShardPackages []string
	// CorePackages/CoreType identify the shard core type.
	CorePackages []string
	CoreType     string
	// AllowedMethods is the Service + broadcast surface the router may
	// call on a core.
	AllowedMethods []string
	// MutatorMethods are broadcast mutations that require rollback.
	MutatorMethods []string
	// ShardForFunc names the rendezvous-hash placement function.
	ShardForFunc string
}

func (c *Config) fill() {
	if len(c.ShardPackages) == 0 {
		c.ShardPackages = []string{"internal/shard"}
	}
	if len(c.CorePackages) == 0 {
		c.CorePackages = []string{"internal/service"}
	}
	if c.CoreType == "" {
		c.CoreType = "Core"
	}
	if len(c.AllowedMethods) == 0 {
		c.AllowedMethods = []string{
			// policies
			"ApplyPolicy", "DeletePolicy", "GetPolicy", "ListPolicies",
			"PolicySpec", "PolicyIDs", "HasPolicy",
			// datasets
			"ApplyDataset", "GetDataset", "ListDatasets", "DeleteDataset",
			"DatasetIDs", "HasDataset",
			// ingest
			"IngestEvents",
			// sessions
			"ApplySession", "GetSession", "ListSessions", "DeleteSession",
			"SessionIDs", "HasSession",
			// releases
			"Histogram", "Cumulative", "Range",
			// streams
			"ApplyStream", "GetStream", "ListStreams", "DeleteStream",
			"StreamIDs", "HasStream",
			"CloseEpoch", "StreamReleases",
			// lifecycle / aggregates
			"Checkpoint", "ExpireSessions", "SessionCount", "StreamCount",
			"CloseLeaked", "Close", "Abandon", "Config", "Metrics",
		}
	}
	if len(c.MutatorMethods) == 0 {
		c.MutatorMethods = []string{"ApplyPolicy", "DeletePolicy", "ApplyDataset", "ApplySession", "ApplyStream"}
	}
	if c.ShardForFunc == "" {
		c.ShardForFunc = "ShardFor"
	}
}

// New constructs the analyzer. Default audits internal/shard.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "shardsafe",
		Doc:  "restrict the shard router to the Service surface, require shard indexes to come from routing state, and require rollback branches on core broadcasts",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits internal/shard against internal/service cores.
var Default = New(Config{})

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), cfg.ShardPackages) {
		return nil
	}
	c := &checker{pass: pass, cfg: &cfg}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	cfg  *Config
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			c.checkSurface(x)
		case *ast.IndexExpr:
			if c.isCoresSlice(c.pass.TypesInfo.TypeOf(x.X)) {
				c.checkIndex(fd, x.Index)
			}
		case *ast.RangeStmt:
			c.checkBroadcast(x)
		}
		return true
	})
}

// checkSurface flags core methods outside the allowlist (method values
// included — the white-box accessors are reserved for tests).
func (c *checker) checkSurface(sel *ast.SelectorExpr) {
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !c.isCoreMethod(fn) {
		return
	}
	if !contains(c.cfg.AllowedMethods, fn.Name()) {
		c.pass.Reportf(sel.Sel.Pos(),
			"shard core accessed outside the Service surface: %s.%s is a white-box accessor reserved for tests — per-shard registries, WAL and seeds must stay behind the routed interface",
			c.cfg.CoreType, fn.Name())
	}
}

// checkIndex enforces index provenance on the cores slice.
func (c *checker) checkIndex(fd *ast.FuncDecl, idx ast.Expr) {
	idx = ast.Unparen(idx)
	if isZeroLit(idx) {
		return
	}
	id, ok := idx.(*ast.Ident)
	if !ok {
		c.pass.Reportf(idx.Pos(),
			"shard index is a computed expression: cores may only be addressed by the literal-0 fallback, a cores range variable, a routing-table lookup, or %s",
			c.cfg.ShardForFunc)
		return
	}
	obj := c.objOf(id)
	if obj == nil || !c.identProvenanceOK(fd, obj) {
		c.pass.Reportf(idx.Pos(),
			"shard index %s is not derived from a routing table, a cores range, the literal-0 fallback, or %s: cross-shard access breaks per-shard isolation (registries, WAL, seeds)",
			id.Name, c.cfg.ShardForFunc)
	}
}

// identProvenanceOK scans the function for every definition of obj and
// accepts only routing-derived ones.
func (c *checker) identProvenanceOK(fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ok := true
	ast.Inspect(fd, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent || c.objOf(id) != obj {
					continue
				}
				found = true
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 && i == 0 {
					rhs = st.Rhs[0] // comma-ok map lookup
				}
				if !c.allowedIndexSource(rhs) {
					ok = false
				}
			}
		case *ast.RangeStmt:
			keyObj, valObj := c.rangeObjs(st)
			xt := c.pass.TypesInfo.TypeOf(st.X)
			if keyObj == obj {
				found = true
				if !c.isCoresSlice(xt) {
					ok = false
				}
			}
			if valObj == obj {
				found = true
				if !isRouteMap(xt) {
					ok = false
				}
			}
		}
		return true
	})
	return found && ok
}

// allowedIndexSource accepts the literal 0, a routing-table lookup, and
// a ShardFor call.
func (c *checker) allowedIndexSource(rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	rhs = ast.Unparen(rhs)
	if isZeroLit(rhs) {
		return true
	}
	if ix, ok := rhs.(*ast.IndexExpr); ok {
		return isRouteMap(c.pass.TypesInfo.TypeOf(ix.X))
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
			return fn.Name() == c.cfg.ShardForFunc
		}
	}
	return false
}

// checkBroadcast requires a rollback loop inside any cores-range that
// calls a mutating core method.
func (c *checker) checkBroadcast(rs *ast.RangeStmt) {
	if !c.isCoresSlice(c.pass.TypesInfo.TypeOf(rs.X)) {
		return
	}
	// A range over a sliced prefix (cores[:k]) is the rollback itself,
	// not a broadcast: it undoes the shards already touched.
	if _, ok := ast.Unparen(rs.X).(*ast.SliceExpr); ok {
		return
	}
	mutator := ""
	hasNestedLoop := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasNestedLoop = true
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(c.pass.TypesInfo, x); fn != nil &&
				c.isCoreMethod(fn) && contains(c.cfg.MutatorMethods, fn.Name()) {
				mutator = fn.Name()
			}
		}
		return true
	})
	if mutator != "" && !hasNestedLoop {
		c.pass.Reportf(rs.For,
			"broadcast over shard cores calls %s without a rollback branch: a mid-broadcast refusal would leave shards disagreeing about the registry state",
			mutator)
	}
}

func (c *checker) isCoreMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return c.isCoreNamed(analysis.NamedOf(sig.Recv().Type()))
}

func (c *checker) isCoreNamed(named *types.Named) bool {
	if named == nil || named.Obj().Name() != c.cfg.CoreType {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && analysis.PathHasSuffix(pkg.Path(), c.cfg.CorePackages)
}

func (c *checker) isCoresSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return c.isCoreNamed(analysis.NamedOf(sl.Elem()))
}

func (c *checker) rangeObjs(rs *ast.RangeStmt) (key, val types.Object) {
	if id, ok := rs.Key.(*ast.Ident); ok {
		key = c.objOf(id)
	}
	if id, ok := rs.Value.(*ast.Ident); ok {
		val = c.objOf(id)
	}
	return key, val
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// isRouteMap reports a routing table: map[string]int.
func isRouteMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, kok := m.Key().Underlying().(*types.Basic)
	e, eok := m.Elem().Underlying().(*types.Basic)
	return kok && eok && k.Kind() == types.String && e.Kind() == types.Int
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Value == "0"
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
