// Package service is a stand-in shard core: a few Service-surface
// methods plus one white-box accessor the router must not touch.
package service

// Config is the stand-in configuration.
type Config struct{ Shards int }

// Core is the stand-in shard core.
type Core struct{ secrets []float64 }

// Open builds a core.
func Open(cfg Config) *Core { return &Core{} }

// ApplyPolicy registers a policy (Service surface).
func (c *Core) ApplyPolicy(id, spec string) error { return nil }

// DeletePolicy removes a policy (Service surface).
func (c *Core) DeletePolicy(id string) error { return nil }

// Histogram releases a histogram (Service surface).
func (c *Core) Histogram(sessionID string) []float64 { return nil }

// HasPolicy reports registration (Service surface).
func (c *Core) HasPolicy(id string) bool { return false }

// Close shuts the core down (Service surface).
func (c *Core) Close() {}

// DatasetTable is the white-box accessor reserved for tests.
func (c *Core) DatasetTable(id string) []float64 { return c.secrets }
