// Package shard is a stand-in router demonstrating the three shardsafe
// rules: surface discipline, index provenance, and broadcast rollback.
package shard

import "blowfish/internal/analysis/shardsafe/testdata/src/shardtree/internal/service"

// Router fronts the stand-in cores.
type Router struct {
	cores   []*service.Core
	dsShard map[string]int
}

// ShardFor is the stand-in rendezvous hash.
func ShardFor(id string, n int) int {
	h := 0
	for i := 0; i < len(id); i++ {
		h = h*31 + int(id[i])
	}
	if h < 0 {
		h = -h
	}
	return h % n
}

// route resolves through the routing table with the shard-0 fallback:
// accepted.
func (r *Router) route(id string) *service.Core {
	k, ok := r.dsShard[id]
	if !ok {
		return r.cores[0]
	}
	return r.cores[k]
}

// Peek reaches into a sibling shard by arithmetic: flagged.
func (r *Router) Peek(id string) *service.Core {
	k := r.dsShard[id]
	return r.cores[k+1] // want `computed expression`
}

// Steal uses the white-box accessor: flagged.
func (r *Router) Steal(id string) []float64 {
	return r.route(id).DatasetTable(id) // want `outside the Service surface`
}

// ApplyAll broadcasts a mutation with no rollback branch: flagged.
func (r *Router) ApplyAll(id, spec string) {
	for _, c := range r.cores { // want `without a rollback branch`
		_ = c.ApplyPolicy(id, spec)
	}
}

// CreatePolicy broadcasts with rollback: accepted.
func (r *Router) CreatePolicy(id, spec string) error {
	for k, c := range r.cores {
		if err := c.ApplyPolicy(id, spec); err != nil {
			for _, prev := range r.cores[:k] {
				_ = prev.DeletePolicy(id)
			}
			return err
		}
	}
	return nil
}

// Create places by rendezvous hash: accepted.
func (r *Router) Create(id string) error {
	k := ShardFor(id, len(r.cores))
	return r.cores[k].ApplyPolicy(id, "")
}

// Core returns shard k for the recovery harness — the documented
// white-box escape.
func (r *Router) Core(k int) *service.Core {
	//lint:allow shardsafe test-only accessor; the recovery harness addresses shards directly by index
	return r.cores[k]
}
