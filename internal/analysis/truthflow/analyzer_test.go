package truthflow_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/truthflow"
)

func TestTruthFlow(t *testing.T) {
	diags := analysistest.Run(t, "testdata", truthflow.Default,
		"internal/engine", "internal/service", "internal/server")
	if len(diags) != 5 {
		t.Errorf("want 5 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `wire field HistogramResponse\.Counts`)
	analysistest.MustFind(t, diags, `log argument \(slog\.Info\)`)
	analysistest.MustFind(t, diags, `release sink inside Core\.journal`)
	analysistest.MustFind(t, diags, `wire field ReleasePayload\.Counts`)
}
