// Package engine is a stand-in release engine: DatasetIndex.Histogram
// is a configured truth source, and the release helpers demonstrate the
// sanitized, leaking, and primitive-noising shapes.
package engine

import (
	"blowfish/internal/analysis/truthflow/testdata/src/internal/mechanism"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/noise"
)

// DatasetIndex is a stand-in incremental index.
type DatasetIndex struct{ counts []float64 }

// Histogram returns the raw per-block truth counts.
func (ix *DatasetIndex) Histogram() []float64 {
	return append([]float64(nil), ix.counts...)
}

// GoodRelease noises the truth in place before returning: accepted.
func GoodRelease(ix *DatasetIndex, m *mechanism.Laplace) []float64 {
	truth := ix.Histogram()
	m.ReleaseInPlace(truth)
	return truth
}

// LeakRelease returns the raw histogram without any noise call — the
// fixpoint marks it truth-returning, and the escape is reported where
// its result reaches a wire struct or log downstream.
func LeakRelease(ix *DatasetIndex) []float64 {
	return ix.Histogram()
}

// LeakReleaseErr is the two-result form of LeakRelease: the error result
// stays untainted (errors are opaque), the counts carry truth.
func LeakReleaseErr(ix *DatasetIndex) ([]float64, error) {
	return ix.Histogram(), nil
}

// GoodReleaseErr is the two-result sanitized form: accepted.
func GoodReleaseErr(ix *DatasetIndex, m *mechanism.Laplace) ([]float64, error) {
	truth := ix.Histogram()
	m.ReleaseInPlace(truth)
	return truth, nil
}

// ManualNoise applies the primitive noising idiom: an assignment whose
// right-hand side adds a Source sample is clean. Accepted.
func ManualNoise(ix *DatasetIndex, src *noise.Source, scale float64) []float64 {
	truth := ix.Histogram()
	out := make([]float64, len(truth))
	for i, v := range truth {
		out[i] = v + src.Laplace(scale)
	}
	return out
}
