// Package mechanism is a stand-in for the calibrated noise mechanisms.
package mechanism

import "blowfish/internal/analysis/truthflow/testdata/src/internal/noise"

// Laplace adds calibrated Laplace noise.
type Laplace struct {
	src   *noise.Source
	scale float64
}

// NewLaplace builds a mechanism.
func NewLaplace(src *noise.Source, scale float64) *Laplace {
	return &Laplace{src: src, scale: scale}
}

// ReleaseInPlace noises each count in place.
func (m *Laplace) ReleaseInPlace(v []float64) {
	for i := range v {
		v[i] += m.src.Laplace(m.scale)
	}
}

// Release returns a noised copy.
func (m *Laplace) Release(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = c + m.src.Laplace(m.scale)
	}
	return out
}
