// Package noise is a stand-in for the repository's restorable noise
// source; truthflow only needs the Source type name and sampler method.
package noise

// Source is a deterministic sampler stand-in.
type Source struct{ state uint64 }

// Laplace draws one sample.
func (s *Source) Laplace(scale float64) float64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return scale * (float64(s.state>>11)/9007199254740992.0 - 0.5)
}
