// Package relay is the intermediate helper in the three-package chain
// engine → relay → server: taint crosses it purely through facts.
package relay

import (
	"blowfish/internal/analysis/truthflow/testdata/src/internal/engine"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/mechanism"
)

// Fetch forwards the raw histogram — truth-returning by fixpoint.
func Fetch(ix *engine.DatasetIndex) []float64 {
	return ix.Histogram()
}

// Noised forwards the sanitized release — clean.
func Noised(ix *engine.DatasetIndex, m *mechanism.Laplace) []float64 {
	return engine.GoodRelease(ix, m)
}
