// Package server is the third hop of the fact-propagation chain: taint
// born in engine crosses relay and an in-package helper before landing
// in this package's wire struct.
package server

import (
	"blowfish/internal/analysis/truthflow/testdata/src/internal/engine"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/mechanism"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/relay"
)

// ReleasePayload is the HTTP wire struct.
type ReleasePayload struct {
	Counts []float64
}

// HandleLeak forwards relay's raw counts to the wire through forward:
// the taint arrives purely via truthflow.returns/passthru facts.
func HandleLeak(ix *engine.DatasetIndex) ReleasePayload {
	counts := forward(relay.Fetch(ix))
	return ReleasePayload{Counts: counts} // want `unnoised truth`
}

// HandleGood forwards the sanitized release: accepted.
func HandleGood(ix *engine.DatasetIndex, m *mechanism.Laplace) ReleasePayload {
	counts := forward(relay.Noised(ix, m))
	return ReleasePayload{Counts: counts}
}

// forward is the intermediate helper the taint crosses.
func forward(v []float64) []float64 { return v }
