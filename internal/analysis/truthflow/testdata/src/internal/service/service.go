// Package service is a stand-in transport-agnostic core: its exported
// structs are wire surfaces, and the handlers demonstrate sanitized
// releases, a truth leak into the wire, a raw-count log argument, a
// WAL-payload escape through a helper, and the designed snapshot
// exception under //lint:allow.
package service

import (
	"log/slog"
	"math"

	"blowfish/internal/analysis/truthflow/testdata/src/internal/engine"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/mechanism"
	"blowfish/internal/analysis/truthflow/testdata/src/internal/wal"
)

// HistogramResponse is the wire struct clients receive.
type HistogramResponse struct {
	Counts    []float64
	Remaining float64
}

// Core is the stand-in service core.
type Core struct {
	idx *engine.DatasetIndex
	m   *mechanism.Laplace
	log *wal.Log
}

// Histogram releases noised counts: accepted.
func (c *Core) Histogram() HistogramResponse {
	counts := engine.GoodRelease(c.idx, c.m)
	return HistogramResponse{Counts: counts, Remaining: 1}
}

// LeakHistogram forwards the unnoised engine release path into the wire
// struct: the planted truth return is caught here.
func (c *Core) LeakHistogram() HistogramResponse {
	counts := engine.LeakRelease(c.idx)
	return HistogramResponse{Counts: counts} // want `unnoised truth`
}

// LogCounts logs the raw histogram: the planted slog escape.
func (c *Core) LogCounts() {
	truth := c.idx.Histogram()
	slog.Info("released", "counts", truth) // want `unnoised truth`
}

// LogNoised logs released output: accepted.
func (c *Core) LogNoised() {
	counts := engine.GoodRelease(c.idx, c.m)
	slog.Info("released", "counts", counts)
}

// BranchHistogram reassigns counts on both branches of a policy switch
// via multi-value assigns. Taint from the leaking branch must survive
// the sibling branch's clean reassignment (sticky taint): flagged.
func (c *Core) BranchHistogram(partitioned bool) (HistogramResponse, error) {
	var counts []float64
	var err error
	if partitioned {
		counts, err = engine.LeakReleaseErr(c.idx)
	} else {
		counts, err = engine.GoodReleaseErr(c.idx, c.m)
	}
	if err != nil {
		return HistogramResponse{}, err
	}
	return HistogramResponse{Counts: counts}, nil // want `unnoised truth`
}

// JournalCounts writes raw truth into a WAL payload through the journal
// helper — the sink fact on journal's parameter fires at this call.
func (c *Core) JournalCounts() error {
	truth := c.idx.Histogram()
	return c.journal(encode(truth)) // want `unnoised truth`
}

// Snapshot journals the dataset state itself. The WAL directory is the
// server-private durable copy of the data, not a release surface.
func (c *Core) Snapshot() error {
	pts := c.idx.Histogram()
	//lint:allow truthflow snapshots journal the dataset itself; the WAL dir is server-private, not a release surface
	return c.log.Append("snap", encode(pts))
}

// journal frames and appends one payload.
func (c *Core) journal(b []byte) error {
	return c.log.Append("rel", b)
}

// encode packs values little-endian-ish; taint passes through.
func encode(v []float64) []byte {
	out := make([]byte, 0, len(v)*8)
	for _, c := range v {
		bits := math.Float64bits(c)
		out = append(out, byte(bits), byte(bits>>8))
	}
	return out
}
