// Package wal is a stand-in write-ahead log; Log.Append payloads are a
// configured truthflow sink.
package wal

// Log is a stand-in journal.
type Log struct{ buf []byte }

// Append journals one entry.
func (l *Log) Append(kind string, payload []byte) error {
	l.buf = append(l.buf, payload...)
	return nil
}
