// Package truthflow proves, mechanically, that unnoised truth never
// escapes the process. The Blowfish guarantee (He et al., SIGMOD 2014)
// is a statement about *released* values: raw histogram counts, block
// counts, cumulative prefixes and dataset tuples may only cross a
// release surface after a noise mechanism calibrated by the policy's
// compiled sensitivity has been applied. The type system cannot see
// the difference between a noised vector and the truth it was derived
// from — both are []float64 — so this analyzer tracks it as taint.
//
// Sources are the truth accessors (DatasetIndex.Histogram/BlockCounts/
// PartitionHistogram/Cumulative*, Dataset.Points/PointsUnsafe,
// constraints.CountQuery.Count, hierarchy.Tree.EvalInto's output
// argument) plus any function the cross-package fixpoint marks as
// truth-returning. Sanitizers are the noise mechanisms
// (mechanism.Release*/ReleaseInPlace, ordered.ReleaseCumulative and
// OH.Release*, hierarchy.Tree.ReleaseInteriorInto, kmeans.PrivateLloyd)
// plus the primitive noising idiom itself: an assignment whose
// right-hand side adds a noise.Source sample (out[i] = v + src.Laplace(b))
// cleans the assigned variable, which is how the release packages'
// own bodies derive clean without per-function configuration. Sinks
// are the escape surfaces: fields of wire structs in internal/service
// and internal/server, wal Log.Append payloads, codec.AppendFrame,
// metrics label values and registered Collector closures, and log/slog
// arguments.
//
// Taint propagates through assignments, slice aliasing (append,
// sub-slicing, and the pooled staging buffers: a pooled slice passed to
// a *Append source stays tainted until an in-place noise call cleans
// it), struct fields, composite literals, closures (a func literal
// carries the taint of its free variables, so a Collector closure over
// raw counts is caught at RegisterCollector), returns, and
// cross-package calls via four fact kinds on the driver's string-keyed
// store: truthflow.returns.<j> (result j carries truth),
// truthflow.passthru.<i> (param i flows to a result),
// truthflow.sink.<i> (param i reaches an escape sink inside the
// callee), and truthflow.cleans.<i> (the callee noises param i in
// place). The analysis is statement-ordered and path-insensitive with
// sticky taint: branches are walked in source order and a plain
// reassignment merges rather than overwrites, so taint acquired on one
// branch survives the other; only a sanitizer application (or a
// direct noise-sample assignment) clears it. Error values are opaque:
// a truth accessor's error result reports why the read failed, it does
// not carry counts, so taint never binds to anything implementing the
// error interface (formatting raw counts into an error message is out
// of this analyzer's scope). Designed exceptions —
// snapshot/WAL journaling of dataset tuples (the durable state *is*
// the data; the WAL directory is server-private, not a release
// surface) and zero-sensitivity exact releases (no secret pair
// crosses a partition block, so the counts are policy-public) — carry
// //lint:allow truthflow annotations with justifications inventoried
// in vet-allowlist.txt.
package truthflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"blowfish/internal/analysis"
)

// Fact kinds exported through the driver's store. The integer suffix is
// a zero-based parameter or result index, capped at maxTracked.
const (
	factAnalyzed = "truthflow.analyzed"  // function was seen by this analyzer
	factReturns  = "truthflow.returns."  // + result index: result carries truth
	factPassthru = "truthflow.passthru." // + param index: param flows to a result
	factSink     = "truthflow.sink."     // + param index: param reaches a sink
	factCleans   = "truthflow.cleans."   // + param index: param is noised in place
)

// maxTracked bounds the parameter/result indexes carried in facts.
const maxTracked = 16

// FuncRef names a function or method in the analyzer's configuration.
// Pkg is an import-path suffix ("" matches any package), Recv the
// receiver type name ("" matches plain functions and any receiver),
// Name the function name ("*" matches any). Results selects which
// results a source taints (nil = all); Args selects which arguments a
// source taints in place, a sanitizer cleans in place, or a sink
// watches (nil = all arguments for sinks).
type FuncRef struct {
	Pkg     string
	Recv    string
	Name    string
	Results []int
	Args    []int
	// Desc names the escape surface in sink diagnostics.
	Desc string
}

func (r FuncRef) matches(fn *types.Func) bool {
	if r.Name != "*" && fn.Name() != r.Name {
		return false
	}
	if r.Pkg != "" {
		if fn.Pkg() == nil || !analysis.PathHasSuffix(fn.Pkg().Path(), []string{r.Pkg}) {
			return false
		}
	}
	if r.Recv != "" && recvTypeName(fn) != r.Recv {
		return false
	}
	return true
}

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// Sources produce truth: listed Results (and in-place Args) become
	// tainted at every call site.
	Sources []FuncRef
	// Sanitizers apply calibrated noise: listed Args are cleaned in
	// place and every result is clean.
	Sanitizers []FuncRef
	// Sinks are escape surfaces: a source-tainted argument in a listed
	// position is a finding.
	Sinks []FuncRef
	// WirePackages are import-path suffixes whose named struct types are
	// treated as wire/response surfaces: storing truth in any of their
	// fields is a finding.
	WirePackages []string
	// SamplerType/SamplerMethods identify the noise primitive: an
	// assignment whose right-hand side applies one of these methods
	// cleans the assigned variable.
	SamplerType    string
	SamplerMethods []string
}

func (c *Config) fill() {
	if len(c.Sources) == 0 {
		c.Sources = []FuncRef{
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "Histogram"},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "HistogramAppend", Args: []int{0}},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "CumulativeHistogram"},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "CumulativeSnapshot", Results: []int{0}},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "CumulativeAppend", Results: []int{0}, Args: []int{0}},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "BlockCounts"},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "PartitionHistogram"},
			{Pkg: "internal/engine", Recv: "DatasetIndex", Name: "Vectors"},
			{Recv: "Dataset", Name: "Histogram"},
			{Recv: "Dataset", Name: "PartitionHistogram"},
			{Recv: "Dataset", Name: "CumulativeHistogram"},
			{Recv: "Dataset", Name: "Points"},
			{Recv: "Dataset", Name: "PointsUnsafe"},
			{Recv: "Dataset", Name: "Vectors"},
			{Recv: "CountQuery", Name: "Count"},
			{Recv: "Tree", Name: "EvalInto", Args: []int{1}},
		}
	}
	if len(c.Sanitizers) == 0 {
		c.Sanitizers = []FuncRef{
			{Recv: "Laplace", Name: "Release"},
			{Recv: "Laplace", Name: "ReleaseInPlace", Args: []int{0}},
			{Recv: "Laplace", Name: "ReleaseScalar"},
			{Recv: "Geometric", Name: "Release"},
			{Pkg: "internal/mechanism", Name: "ReleaseHistogram"},
			{Pkg: "internal/ordered", Name: "ReleaseCumulative"},
			{Recv: "OH", Name: "Release"},
			{Recv: "OH", Name: "ReleaseWithSplit"},
			{Recv: "Tree", Name: "ReleaseInteriorInto", Args: []int{0}},
			{Pkg: "internal/kmeans", Name: "PrivateLloyd"},
		}
	}
	if len(c.Sinks) == 0 {
		c.Sinks = []FuncRef{
			{Pkg: "internal/wal", Recv: "Log", Name: "Append", Args: []int{1}, Desc: "WAL payload"},
			{Pkg: "internal/codec", Name: "AppendFrame", Args: []int{1}, Desc: "codec frame payload"},
			{Pkg: "internal/metrics", Recv: "CounterVec", Name: "With", Desc: "metrics label value"},
			{Pkg: "internal/metrics", Recv: "HistogramVec", Name: "With", Desc: "metrics label value"},
			{Pkg: "internal/metrics", Recv: "Registry", Name: "RegisterCollector", Desc: "metrics collector"},
			{Pkg: "log/slog", Name: "*", Desc: "log argument"},
		}
	}
	if len(c.WirePackages) == 0 {
		c.WirePackages = []string{"internal/service", "internal/server"}
	}
	if c.SamplerType == "" {
		c.SamplerType = "Source"
	}
	if len(c.SamplerMethods) == 0 {
		c.SamplerMethods = []string{"Laplace", "LaplaceVec", "TwoSidedGeometric", "Gaussian"}
	}
}

// New constructs the analyzer. Default audits the repository layout.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "truthflow",
		Doc:  "taint-track raw truth vectors and flag any path where they reach a wire struct, WAL payload, metrics label or log without a noise release",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits the repository layout.
var Default = New(Config{})

// taint is the abstract value tracked per variable: src marks data
// derived from a truth source (origin describes the first source for
// diagnostics); params is a bitmask of the current function's
// parameters the value is derived from, used to summarize pass-through,
// sink-reaching and cleaning behaviour as facts.
type taint struct {
	src    bool
	origin string
	params uint32
}

func (t taint) tainted() bool { return t.src || t.params != 0 }

func union(a, b taint) taint {
	out := taint{src: a.src || b.src, origin: a.origin, params: a.params | b.params}
	if out.origin == "" {
		out.origin = b.origin
	}
	return out
}

// pkgAnalysis is the per-package fixpoint state.
type pkgAnalysis struct {
	pass    *analysis.Pass
	cfg     *Config
	fns     []*fnDecl
	changed bool
	diags   map[string]diag
}

type fnDecl struct {
	decl *ast.FuncDecl
	key  string
}

type diag struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass, cfg Config) error {
	pa := &pkgAnalysis{pass: pass, cfg: &cfg}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &fnDecl{decl: fd}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fn.key = analysis.FuncKey(obj)
			}
			if fn.key != "" {
				// Mark every function in the loaded universe as analyzed so
				// call sites can distinguish "no facts because clean" from
				// "no facts because outside the analysis" (stdlib, indirect).
				pass.Facts.Set(factAnalyzed, fn.key)
			}
			pa.fns = append(pa.fns, fn)
		}
	}

	// Package-local fixpoint: re-interpret every function until the fact
	// store stabilizes, so mutually recursive helpers and later-declared
	// callees converge. Diagnostics are collected per sweep and only the
	// final (complete) sweep's set is emitted.
	for {
		pa.changed = false
		pa.diags = make(map[string]diag)
		for _, fn := range pa.fns {
			newFuncState(pa, fn).exec()
		}
		if !pa.changed {
			break
		}
	}

	keys := make([]string, 0, len(pa.diags))
	for k := range pa.diags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := pa.diags[k]
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

func (pa *pkgAnalysis) setFact(kind, key string) {
	if key == "" {
		return
	}
	if !pa.pass.Facts.Has(kind, key) {
		pa.pass.Facts.Set(kind, key)
		pa.changed = true
	}
}

func (pa *pkgAnalysis) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	pa.diags[fmt.Sprintf("%d|%s", pos, msg)] = diag{pos: pos, msg: msg}
}

// funcState interprets one function body over the taint lattice.
type funcState struct {
	pa     *pkgAnalysis
	fd     *ast.FuncDecl
	key    string
	info   *types.Info
	params map[types.Object]int
	vars   map[types.Object]taint
	named  []types.Object // named results, for bare returns
}

func newFuncState(pa *pkgAnalysis, fn *fnDecl) *funcState {
	fs := &funcState{
		pa:     pa,
		fd:     fn.decl,
		key:    fn.key,
		info:   pa.pass.TypesInfo,
		params: make(map[types.Object]int),
		vars:   make(map[types.Object]taint),
	}
	idx := 0
	if fn.decl.Type.Params != nil {
		for _, field := range fn.decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fs.info.Defs[name]; obj != nil && idx < maxTracked {
					fs.params[obj] = idx
					fs.vars[obj] = taint{params: 1 << uint(idx)}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if fn.decl.Type.Results != nil {
		for _, field := range fn.decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := fs.info.Defs[name]; obj != nil {
					fs.named = append(fs.named, obj)
				}
			}
		}
	}
	return fs
}

func (fs *funcState) exec() {
	fs.execStmt(fs.fd.Body)
}

func (fs *funcState) execStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			fs.execStmt(sub)
		}
	case *ast.ExprStmt:
		fs.eval(st.X)
	case *ast.AssignStmt:
		fs.assign(st)
	case *ast.ReturnStmt:
		fs.ret(st)
	case *ast.IfStmt:
		fs.execStmt(st.Init)
		fs.eval(st.Cond)
		fs.execStmt(st.Body)
		fs.execStmt(st.Else)
	case *ast.ForStmt:
		fs.execStmt(st.Init)
		if st.Cond != nil {
			fs.eval(st.Cond)
		}
		fs.execStmt(st.Body)
		fs.execStmt(st.Post)
	case *ast.RangeStmt:
		t := fs.eval(st.X)
		fs.assignTo(st.Key, taint{}, true)
		fs.assignTo(st.Value, t, true)
		fs.execStmt(st.Body)
	case *ast.SwitchStmt:
		fs.execStmt(st.Init)
		if st.Tag != nil {
			fs.eval(st.Tag)
		}
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				fs.eval(e)
			}
			for _, sub := range cc.Body {
				fs.execStmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		fs.execStmt(st.Init)
		var operand taint
		switch a := st.Assign.(type) {
		case *ast.ExprStmt:
			operand = fs.eval(a.X)
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				operand = fs.eval(a.Rhs[0])
			}
		}
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			if obj := fs.info.Implicits[cc]; obj != nil {
				fs.vars[obj] = operand
			}
			for _, sub := range cc.Body {
				fs.execStmt(sub)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			fs.execStmt(cc.Comm)
			for _, sub := range cc.Body {
				fs.execStmt(sub)
			}
		}
	case *ast.DeferStmt:
		fs.eval(st.Call)
	case *ast.GoStmt:
		fs.eval(st.Call)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					fs.assignTo(name, fs.eval(vs.Values[i]), true)
				}
			} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
				ts := fs.evalMulti(vs.Values[0], len(vs.Names))
				for i, name := range vs.Names {
					fs.assignTo(name, ts[i], true)
				}
			}
		}
	case *ast.LabeledStmt:
		fs.execStmt(st.Stmt)
	case *ast.SendStmt:
		fs.eval(st.Chan)
		fs.eval(st.Value)
	case *ast.IncDecStmt:
		fs.eval(st.X)
	}
}

func (fs *funcState) assign(st *ast.AssignStmt) {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// Op-assign: v[i] += src.Laplace(b) is the primitive noising idiom
		// and cleans the assigned variable; any other op merges.
		t := fs.eval(st.Rhs[0])
		if fs.containsSampler(st.Rhs[0]) {
			fs.clean(st.Lhs[0])
			return
		}
		fs.assignTo(st.Lhs[0], t, false)
		return
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		ts := fs.evalMulti(st.Rhs[0], len(st.Lhs))
		// Same sticky rule as the single-value case: a plain multi-value
		// reassignment merges, so `counts, err = releaseA(...)` on one
		// branch does not erase taint the sibling branch put in counts.
		overwrite := st.Tok == token.DEFINE || fs.isReleaseExpr(st.Rhs[0])
		for i, lhs := range st.Lhs {
			fs.assignTo(lhs, ts[i], overwrite)
		}
		return
	}
	for i, lhs := range st.Lhs {
		rhs := st.Rhs[i]
		t := fs.eval(rhs)
		// A direct sanitizer call or a noise-sample sum is definitely
		// clean and may overwrite; everything else overwrites only fresh
		// declarations. Plain reassignment merges (sticky taint), so a
		// branch that assigns truth is not erased by a sibling branch.
		overwrite := st.Tok == token.DEFINE || fs.isReleaseExpr(rhs)
		fs.assignTo(lhs, t, overwrite)
	}
}

// isReleaseExpr reports whether e is definitely-clean released output: a
// direct call to a configured sanitizer, or an expression containing a
// direct noise-sample call.
func (fs *funcState) isReleaseExpr(e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if fn := analysis.CalleeFunc(fs.info, call); fn != nil {
			if _, ok := matchRef(fs.pa.cfg.Sanitizers, fn); ok {
				return true
			}
		}
	}
	return fs.containsSampler(e)
}

func (fs *funcState) containsSampler(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(fs.info, call)
		if fn != nil && recvTypeName(fn) == fs.pa.cfg.SamplerType && contains(fs.pa.cfg.SamplerMethods, fn.Name()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// assignTo writes t into the lvalue. Plain identifiers overwrite when
// requested and merge otherwise; element/field/pointer writes always
// merge into the base variable. Writes into wire-struct fields are an
// escape surface.
func (fs *funcState) assignTo(lhs ast.Expr, t taint, overwrite bool) {
	switch x := ast.Unparen(lhs).(type) {
	case nil:
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := fs.objOf(x)
		if obj == nil || isErrType(obj.Type()) {
			return
		}
		if overwrite {
			fs.vars[obj] = t
		} else {
			fs.vars[obj] = union(fs.vars[obj], t)
		}
	case *ast.SelectorExpr:
		if named := analysis.NamedOf(fs.info.TypeOf(x.X)); named != nil && fs.isWireStruct(named) {
			fs.sinkHit(x.Sel.Pos(), t, fmt.Sprintf("wire field %s.%s", named.Obj().Name(), x.Sel.Name))
		}
		fs.mergeBase(x.X, t)
	default:
		fs.mergeBase(lhs, t)
	}
}

// mergeBase merges t into the root variable of an lvalue chain
// (x[i] = v, *p = v, x.f = v all taint x/p).
func (fs *funcState) mergeBase(e ast.Expr, t taint) {
	if !t.tainted() {
		return
	}
	if obj := baseObj(fs.info, e); obj != nil && !isErrType(obj.Type()) {
		fs.vars[obj] = union(fs.vars[obj], t)
	}
}

// clean resets the base variable of e to untainted; if it is a
// parameter, the function is recorded as noising that parameter in
// place so callers' copies of the backing array become clean too.
func (fs *funcState) clean(e ast.Expr) {
	obj := baseObj(fs.info, e)
	if obj == nil {
		return
	}
	fs.vars[obj] = taint{}
	if i, ok := fs.params[obj]; ok {
		fs.pa.setFact(factCleans+strconv.Itoa(i), fs.key)
	}
}

func (fs *funcState) ret(st *ast.ReturnStmt) {
	var ts []taint
	if len(st.Results) == 0 {
		for _, obj := range fs.named {
			ts = append(ts, fs.vars[obj])
		}
	} else if len(st.Results) == 1 {
		nres := 1
		if fs.fd.Type.Results != nil {
			nres = countResults(fs.fd.Type.Results)
		}
		if nres > 1 {
			ts = fs.evalMulti(st.Results[0], nres)
		} else {
			ts = []taint{fs.eval(st.Results[0])}
		}
	} else {
		for _, e := range st.Results {
			ts = append(ts, fs.eval(e))
		}
	}
	var results *types.Tuple
	if fn, ok := fs.info.Defs[fs.fd.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}
	for j, t := range ts {
		if j >= maxTracked {
			break
		}
		if results != nil && j < results.Len() && isErrType(results.At(j).Type()) {
			continue
		}
		if t.src {
			fs.pa.setFact(factReturns+strconv.Itoa(j), fs.key)
		}
		for i := 0; i < maxTracked; i++ {
			if t.params&(1<<uint(i)) != 0 {
				fs.pa.setFact(factPassthru+strconv.Itoa(i), fs.key)
			}
		}
	}
}

func countResults(fl *ast.FieldList) int {
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// sinkHit handles tainted data arriving at an escape surface: source
// taint is a finding, parameter taint becomes a sink fact so the report
// fires at the call site that supplies the truth.
func (fs *funcState) sinkHit(pos token.Pos, t taint, surface string) {
	if t.src {
		origin := ""
		if t.origin != "" {
			origin = " (from " + t.origin + ")"
		}
		fs.pa.report(pos, "unnoised truth%s reaches %s: raw values must pass a noise mechanism calibrated by the policy's sensitivity before they escape", origin, surface)
	}
	for i := 0; i < maxTracked; i++ {
		if t.params&(1<<uint(i)) != 0 {
			fs.pa.setFact(factSink+strconv.Itoa(i), fs.key)
		}
	}
}

// eval computes the taint of an expression, interpreting calls (and
// their effects) along the way.
func (fs *funcState) eval(e ast.Expr) taint {
	switch x := e.(type) {
	case nil:
		return taint{}
	case *ast.Ident:
		if obj := fs.objOf(x); obj != nil {
			return fs.vars[obj]
		}
		return taint{}
	case *ast.ParenExpr:
		return fs.eval(x.X)
	case *ast.BinaryExpr:
		if fs.containsSampler(x) {
			// v + src.Laplace(b): adding calibrated noise is the release
			// primitive — the sum is clean regardless of the operands.
			fs.evalQuiet(x.X)
			fs.evalQuiet(x.Y)
			return taint{}
		}
		return union(fs.eval(x.X), fs.eval(x.Y))
	case *ast.UnaryExpr:
		return fs.eval(x.X)
	case *ast.StarExpr:
		return fs.eval(x.X)
	case *ast.IndexExpr:
		t := fs.eval(x.X)
		fs.eval(x.Index)
		return t
	case *ast.IndexListExpr:
		return fs.eval(x.X)
	case *ast.SliceExpr:
		t := fs.eval(x.X)
		fs.eval(x.Low)
		fs.eval(x.High)
		fs.eval(x.Max)
		return t
	case *ast.SelectorExpr:
		// Field reads carry the struct's taint; method values their
		// receiver's; package-qualified names resolve to zero.
		return fs.eval(x.X)
	case *ast.CallExpr:
		ts := fs.call(x)
		out := taint{}
		for _, t := range ts {
			out = union(out, t)
		}
		return out
	case *ast.CompositeLit:
		return fs.composite(x)
	case *ast.FuncLit:
		return fs.funcLit(x)
	case *ast.TypeAssertExpr:
		return fs.eval(x.X)
	case *ast.KeyValueExpr:
		return fs.eval(x.Value)
	default:
		return taint{}
	}
}

// evalQuiet evaluates only for call side effects (used under a noise
// binop, where the operand taints do not escape into the sum).
func (fs *funcState) evalQuiet(e ast.Expr) { fs.eval(e) }

// evalMulti evaluates a single expression in a context expecting n
// values (multi-result call, v-ok map/assert/receive forms).
func (fs *funcState) evalMulti(e ast.Expr, n int) []taint {
	var ts []taint
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		ts = fs.call(call)
	} else {
		ts = []taint{fs.eval(e)}
	}
	for len(ts) < n {
		ts = append(ts, taint{})
	}
	return ts[:n]
}

// composite evaluates a composite literal; storing tainted values into
// wire-struct fields is an escape.
func (fs *funcState) composite(x *ast.CompositeLit) taint {
	named := analysis.NamedOf(fs.info.TypeOf(x))
	wire := named != nil && fs.isWireStruct(named)
	out := taint{}
	for _, elt := range x.Elts {
		field := ""
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		t := fs.eval(val)
		if wire && t.tainted() {
			surface := fmt.Sprintf("wire field %s.%s", named.Obj().Name(), field)
			if field == "" {
				surface = fmt.Sprintf("wire struct %s", named.Obj().Name())
			}
			fs.sinkHit(val.Pos(), t, surface)
		}
		out = union(out, t)
	}
	return out
}

// funcLit interprets the closure body in the enclosing frame (its
// effects on captured variables apply) and values the literal as the
// union of its free variables' taints, so registering a collector
// closure over raw counts carries the taint to the sink.
func (fs *funcState) funcLit(x *ast.FuncLit) taint {
	fs.execStmt(x.Body)
	out := taint{}
	ast.Inspect(x.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := fs.info.Uses[id]; obj != nil {
			out = union(out, fs.vars[obj])
		}
		return true
	})
	return out
}

func (fs *funcState) isWireStruct(named *types.Named) bool {
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && analysis.PathHasSuffix(pkg.Path(), fs.pa.cfg.WirePackages)
}

// call interprets one call expression and returns per-result taints.
// Error-typed results are stripped: errors are opaque to the analyzer.
func (fs *funcState) call(x *ast.CallExpr) []taint {
	out := fs.callRaw(x)
	if tv, ok := fs.info.Types[x]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for j := 0; j < tup.Len() && j < len(out); j++ {
				if isErrType(tup.At(j).Type()) {
					out[j] = taint{}
				}
			}
		} else if len(out) > 0 && isErrType(tv.Type) {
			out[0] = taint{}
		}
	}
	return out
}

func (fs *funcState) callRaw(x *ast.CallExpr) []taint {
	// Conversion: []float64(v), float64(n) — taint passes through.
	if tv, ok := fs.info.Types[x.Fun]; ok && tv.IsType() {
		if len(x.Args) == 1 {
			return []taint{fs.eval(x.Args[0])}
		}
		return []taint{{}}
	}
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
		if _, ok := fs.info.Uses[id].(*types.Builtin); ok {
			return fs.builtin(id.Name, x)
		}
	}
	fn := analysis.CalleeFunc(fs.info, x)
	if fn == nil {
		// Indirect call through a func value: conservatively assume every
		// argument can flow to every result.
		out := fs.eval(x.Fun)
		for _, a := range x.Args {
			out = union(out, fs.eval(a))
		}
		return fill(out, resultCount(fs.info, x))
	}

	cfg := fs.pa.cfg
	if recvTypeName(fn) == cfg.SamplerType && contains(cfg.SamplerMethods, fn.Name()) {
		for _, a := range x.Args {
			fs.eval(a)
		}
		return fill(taint{}, resultCount(fs.info, x))
	}

	if ref, ok := matchRef(cfg.Sources, fn); ok {
		for _, a := range x.Args {
			fs.eval(a)
		}
		src := taint{src: true, origin: describe(fn)}
		// In-place producers (HistogramAppend-style) taint the
		// destination argument's backing array.
		for _, ai := range ref.Args {
			if ai < len(x.Args) {
				fs.mergeBase(x.Args[ai], src)
			}
		}
		n := resultCount(fs.info, x)
		out := make([]taint, n)
		if len(ref.Results) == 0 {
			for j := range out {
				out[j] = src
			}
		} else {
			for _, j := range ref.Results {
				if j < n {
					out[j] = src
				}
			}
		}
		return out
	}

	if ref, ok := matchRef(cfg.Sanitizers, fn); ok {
		for i, a := range x.Args {
			fs.eval(a)
			for _, ai := range ref.Args {
				if i == ai {
					fs.clean(a)
				}
			}
		}
		return fill(taint{}, resultCount(fs.info, x))
	}

	// General call: evaluate arguments, consult the callee's facts.
	key := analysis.FuncKey(fn)
	argTaints := make([]taint, len(x.Args))
	for i, a := range x.Args {
		argTaints[i] = fs.eval(a)
	}
	var recvTaint taint
	if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
		recvTaint = fs.eval(sel.X)
	}

	sig, _ := fn.Type().(*types.Signature)
	paramIdx := func(argPos int) int {
		if sig == nil || sig.Params().Len() == 0 {
			return argPos
		}
		if sig.Variadic() && argPos >= sig.Params().Len() {
			return sig.Params().Len() - 1
		}
		return argPos
	}

	if ref, ok := matchRef(cfg.Sinks, fn); ok {
		watch := ref.Args
		for i, t := range argTaints {
			watched := len(watch) == 0
			for _, w := range watch {
				if i == w {
					watched = true
				}
			}
			if watched && t.tainted() {
				surface := ref.Desc
				if surface == "" {
					surface = describe(fn)
				} else {
					surface = fmt.Sprintf("%s (%s)", surface, describe(fn))
				}
				fs.sinkHit(x.Args[i].Pos(), t, surface)
			}
		}
		return fill(taint{}, resultCount(fs.info, x))
	}

	facts := fs.pa.pass.Facts
	for i, t := range argTaints {
		if !t.tainted() {
			continue
		}
		pi := paramIdx(i)
		if facts.Has(factSink+strconv.Itoa(pi), key) {
			fs.sinkHit(x.Args[i].Pos(), t, fmt.Sprintf("a release sink inside %s", describe(fn)))
		}
		if facts.Has(factCleans+strconv.Itoa(pi), key) {
			fs.clean(x.Args[i])
			argTaints[i] = taint{}
		}
	}

	n := resultCount(fs.info, x)
	out := make([]taint, n)
	for j := 0; j < n && j < maxTracked; j++ {
		if facts.Has(factReturns+strconv.Itoa(j), key) {
			out[j] = taint{src: true, origin: "truth-returning " + describe(fn)}
		}
	}
	if facts.Has(factAnalyzed, key) {
		for i, t := range argTaints {
			if !t.tainted() {
				continue
			}
			if facts.Has(factPassthru+strconv.Itoa(paramIdx(i)), key) {
				for j := range out {
					out[j] = union(out[j], t)
				}
			}
		}
	} else {
		// Outside the loaded universe (stdlib, interface methods without
		// a concrete summary): assume arguments and receiver flow to
		// every result.
		all := recvTaint
		for _, t := range argTaints {
			all = union(all, t)
		}
		for j := range out {
			out[j] = union(out[j], all)
		}
	}
	return out
}

func (fs *funcState) builtin(name string, x *ast.CallExpr) []taint {
	switch name {
	case "append":
		out := taint{}
		for _, a := range x.Args {
			out = union(out, fs.eval(a))
		}
		// append may write through dst's backing array.
		if len(x.Args) > 0 {
			fs.mergeBase(x.Args[0], out)
		}
		return []taint{out}
	case "copy":
		if len(x.Args) == 2 {
			t := fs.eval(x.Args[1])
			fs.eval(x.Args[0])
			fs.mergeBase(x.Args[0], t)
		}
		return []taint{{}}
	case "len", "cap", "make", "new", "clear", "delete", "print", "println", "panic", "recover":
		for _, a := range x.Args {
			fs.eval(a)
		}
		return fill(taint{}, resultCount(fs.info, x))
	default:
		out := taint{}
		for _, a := range x.Args {
			out = union(out, fs.eval(a))
		}
		return fill(out, resultCount(fs.info, x))
	}
}

func (fs *funcState) objOf(id *ast.Ident) types.Object {
	if obj := fs.info.Uses[id]; obj != nil {
		return obj
	}
	return fs.info.Defs[id]
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrType reports whether t carries an error value. Errors are opaque
// to the taint model: they say why a truth read failed, not what it read.
func isErrType(t types.Type) bool {
	return t != nil && types.Implements(t, errIface)
}

// baseObj resolves the root variable of an expression chain:
// (*buf)[:0], x[i], x.f, &x all resolve to the object of x.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return 1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	if tv.Type == nil || tv.IsVoid() {
		return 0
	}
	return 1
}

func fill(t taint, n int) []taint {
	if n <= 0 {
		n = 1
	}
	out := make([]taint, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func matchRef(refs []FuncRef, fn *types.Func) (FuncRef, bool) {
	for _, r := range refs {
		if r.matches(fn) {
			return r, true
		}
	}
	return FuncRef{}, false
}

func describe(fn *types.Func) string {
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
		return path + "." + fn.Name()
	}
	return fn.Name()
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := analysis.NamedOf(sig.Recv().Type())
	if named == nil {
		return ""
	}
	return named.Obj().Name()
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
