package waljournal_test

import (
	"testing"

	"blowfish/internal/analysis/analysistest"
	"blowfish/internal/analysis/waljournal"
)

func TestWALJournal(t *testing.T) {
	diags := analysistest.Run(t, "testdata", waljournal.Default, "internal/server")
	if len(diags) != 3 {
		t.Errorf("want 3 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	analysistest.MustFind(t, diags, `registry write of "sessions"`)
	analysistest.MustFind(t, diags, `registry delete of "datasets"`)
	analysistest.MustFind(t, diags, `ReleaseHistogram result is not journaled`)
}
