// Package server is a stand-in for the repository's serving layer: the
// directory suffix matches waljournal's audited package list, and the
// field/method names match its registry and journaling defaults.
package server

type entry struct{ id string }

// Server mimics the real registry holder.
type Server struct {
	sessions map[string]*entry
	datasets map[string]*entry
}

func (s *Server) journal(v any) error              { return nil }
func (s *Server) journalDelete(id string) error    { return nil }
func (s *Server) journalRelease(kind string) error { return nil }

// createGood journals before the registry write: accepted.
func (s *Server) createGood(id string, e *entry) error {
	if err := s.journal(e); err != nil {
		return err
	}
	s.sessions[id] = e
	return nil
}

// createBad makes the session visible before anything is durable.
func (s *Server) createBad(id string, e *entry) {
	s.sessions[id] = e // want `registry write of "sessions" without a preceding journal append`
}

// deleteGood journals the tombstone first: accepted.
func (s *Server) deleteGood(id string) error {
	if err := s.journalDelete(id); err != nil {
		return err
	}
	delete(s.sessions, id)
	return nil
}

// deleteBad drops durable state with no record of the drop.
func (s *Server) deleteBad(id string) {
	delete(s.datasets, id) // want `registry delete of "datasets" without a preceding journal append`
}

type sess struct{}

func (x *sess) ReleaseHistogram(eps float64) []float64 { return nil }

// ackGood journals the release record before acknowledging: accepted.
func (s *Server) ackGood(x *sess) ([]float64, error) {
	counts := x.ReleaseHistogram(0.1)
	if err := s.journalRelease("histogram"); err != nil {
		return nil, err
	}
	return counts, nil
}

// ackBad returns the noised counts with no durable record of the spend.
func (s *Server) ackBad(x *sess) []float64 {
	return x.ReleaseHistogram(0.1) // want `ReleaseHistogram result is not journaled`
}

// replayPut rebuilds the registry from the journal itself — the
// function-scoped escape hatch.
//
//lint:allow waljournal replay applies records read from the journal; journaling again would duplicate them
func (s *Server) replayPut(id string, e *entry) {
	s.sessions[id] = e
}
