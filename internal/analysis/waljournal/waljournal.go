// Package waljournal enforces write-ahead ordering in the serving layer:
// durable state changes must hit the journal before they hit memory, and
// budget-bearing releases must hit the journal before their result is
// acknowledged. Recovery replays the WAL to reconstruct the registries and
// re-execute releases; a registry write that precedes its journal record
// can be observed by a client, then lost in a crash, and the replayed
// server will happily re-spend budget a client already saw spent — the
// exact durability hole PR 4's crash hammer exists to catch, moved from a
// stress test to a compile-time check.
//
// Two statement-order rules, both per-function approximations:
//
//  1. A mutation of a registry map field (s.policies[id] = e,
//     delete(s.datasets, id), ...) must be preceded, earlier in the same
//     function, by a call to a journaling helper.
//  2. A call to a budget-bearing release method (ReleaseHistogram, ...)
//     must be followed, later in the same function, by a journaling call
//     — the release record must be durable before the response writer
//     acks it.
//
// Recovery-path replay functions legitimately violate both (they *read*
// the journal) and carry //lint:allow waljournal on their doc comments.
package waljournal

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blowfish/internal/analysis"
)

// Config tunes the analyzer; zero fields take the repository defaults.
type Config struct {
	// Packages are import-path suffixes to audit (the HTTP serving layer).
	Packages []string
	// RegistryFields are map-typed struct fields holding durable state;
	// writes to them must follow a journal call.
	RegistryFields []string
	// JournalFuncs are function or method names whose call counts as
	// journaling.
	JournalFuncs []string
	// ReleaseFuncs are method names that consume privacy budget and emit
	// noised output; their call must precede a journal call in the same
	// function.
	ReleaseFuncs []string
}

func (c *Config) fill() {
	if len(c.Packages) == 0 {
		c.Packages = []string{"internal/server", "internal/service", "internal/shard"}
	}
	if len(c.RegistryFields) == 0 {
		c.RegistryFields = []string{"policies", "datasets", "sessions", "streams"}
	}
	if len(c.JournalFuncs) == 0 {
		c.JournalFuncs = []string{"journal", "journalDelete", "journalRelease", "eventJournal", "epochJournal", "Append"}
	}
	if len(c.ReleaseFuncs) == 0 {
		c.ReleaseFuncs = []string{"ReleaseHistogram", "ReleasePartitionHistogram", "ReleaseCumulativeHistogram", "NewRangeReleaser"}
	}
}

// New constructs the analyzer. Default audits internal/server.
func New(cfg Config) *analysis.Analyzer {
	cfg.fill()
	return &analysis.Analyzer{
		Name: "waljournal",
		Doc:  "require journal-before-mutation and journal-before-ack ordering in the serving layer (crash durability)",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Default audits internal/server with the repository's helper names.
var Default = New(Config{})

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, cfg, fd)
		}
	}
	return nil
}

type mutation struct {
	pos   token.Pos
	field string
	kind  string // "write" or "delete"
}

func checkFunc(pass *analysis.Pass, cfg Config, fd *ast.FuncDecl) {
	var journals []token.Pos
	var mutations []mutation
	var releases []struct {
		pos  token.Pos
		name string
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field, ok := registryIndex(pass.TypesInfo, cfg, lhs); ok {
					mutations = append(mutations, mutation{pos: lhs.Pos(), field: field, kind: "write"})
				}
			}
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				if contains(cfg.JournalFuncs, fn.Name()) {
					journals = append(journals, n.Pos())
				}
				if contains(cfg.ReleaseFuncs, fn.Name()) {
					releases = append(releases, struct {
						pos  token.Pos
						name string
					}{n.Pos(), fn.Name()})
				}
			}
			// delete is a builtin; CalleeFunc resolves only *types.Func.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if field, ok := registryField(pass.TypesInfo, cfg, n.Args[0]); ok {
					mutations = append(mutations, mutation{pos: n.Pos(), field: field, kind: "delete"})
				}
			}
		}
		return true
	})

	for _, m := range mutations {
		if !anyBefore(journals, m.pos) {
			pass.Reportf(m.pos,
				"registry %s of %q without a preceding journal append: a crash after this statement loses state a client may have observed (write-ahead order)",
				m.kind, m.field)
		}
	}
	for _, r := range releases {
		if !anyAfter(journals, r.pos) {
			pass.Reportf(r.pos,
				"%s result is not journaled before the function returns: a crash after the ack replays to a different ledger than the client saw (release record must be durable before the response)",
				r.name)
		}
	}
}

// registryIndex matches `recv.field[key]` on the left of an assignment.
func registryIndex(info *types.Info, cfg Config, e ast.Expr) (string, bool) {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return "", false
	}
	return registryField(info, cfg, idx.X)
}

// registryField matches a selector of a map-typed registry field.
func registryField(info *types.Info, cfg Config, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !contains(cfg.RegistryFields, sel.Sel.Name) {
		return "", false
	}
	tv, ok := info.Types[e]
	if !ok {
		return "", false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return "", false
	}
	return sel.Sel.Name, true
}

func anyBefore(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q > p {
			return true
		}
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
