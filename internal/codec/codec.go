// Package codec implements the binary columnar batch frame for
// high-throughput event ingest: a length-prefixed, CRC-checked,
// little-endian frame carrying column vectors — op kinds, tuple ids,
// attribute values — for a batch of stream events.
//
// The frame exists because the NDJSON ingest front tops out well below
// what the write-ahead log can absorb: every event pays a JSON decode and
// several small heap allocations. A columnar frame decodes with no
// per-event work beyond reading fixed-width integers, and a Decoder reuses
// its scratch buffers across requests (sync.Pool on the serving side), so
// the steady-state decode path allocates nothing per event.
//
// Frame layout (everything little-endian):
//
//	[u32 length][u32 crc32c][payload]
//	payload := [u8 version=1][u8 numAttrs][u16 reserved=0][u32 count]
//	           [ops     : count   × u8]
//	           [ids     : nKeyed  × u32]   nKeyed = #upsert + #delete
//	           [values  : numAttrs columns, each nRowed × u32]
//	                                       nRowed = #append + #upsert
//
// length counts the payload bytes; the CRC (Castagnoli polynomial, the
// same convention as the write-ahead log's record framing) covers exactly
// the payload. Column order is fixed: the op column first, then the tuple
// ids of keyed events (upserts and deletes) in event order, then the
// attribute values of rowed events (appends and upserts) attribute-major —
// column a holds the a-th attribute of every rowed event, in event order.
// A body may carry any number of frames back to back; events concatenate
// in frame order.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"blowfish/internal/stream"
)

// ContentType is the HTTP content type that selects the binary batch
// frame on the events endpoint.
const ContentType = "application/x-blowfish-batch"

// Version is the frame format version this package encodes and decodes.
const Version = 1

// Op byte values of the op column.
const (
	OpAppend byte = 0
	OpUpsert byte = 1
	OpDelete byte = 2
)

// MaxAttrs bounds the per-frame attribute count (the column count is a
// single byte on the wire).
const MaxAttrs = 255

const (
	headerBytes        = 4 + 4 // length + crc
	payloadHeaderBytes = 1 + 1 + 2 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Event is the unit the codec carries: the stream subsystem's wire-level
// mutation (Op "append"/"upsert"/"delete", tuple ID, attribute Row).
type Event = stream.Event

// opByte lowers an event's op string to its column byte.
func opByte(op string) (byte, bool) {
	switch op {
	case "append":
		return OpAppend, true
	case "upsert":
		return OpUpsert, true
	case "delete":
		return OpDelete, true
	}
	return 0, false
}

var opString = [3]string{OpAppend: "append", OpUpsert: "upsert", OpDelete: "delete"}

// MaxFrameBytes returns the encoded size of a frame carrying `count`
// events over `numAttrs` attributes when every event is an upsert (the
// widest op: one id plus one full row) — the bound the decoder enforces on
// the length prefix before buffering a frame.
func MaxFrameBytes(count, numAttrs int) int {
	return headerBytes + payloadHeaderBytes + count + 4*count + 4*numAttrs*count
}

// AppendFrame appends one encoded frame carrying events to dst and returns
// the extended slice. Every append and upsert row must have exactly
// numAttrs values, each in [0, 2^32); tuple ids must fit in [0, 2^32).
func AppendFrame(dst []byte, events []Event, numAttrs int) ([]byte, error) {
	if numAttrs < 0 || numAttrs > MaxAttrs {
		return nil, fmt.Errorf("codec: %d attributes exceed the frame's %d-column cap", numAttrs, MaxAttrs)
	}
	if len(events) > math.MaxUint32 {
		return nil, fmt.Errorf("codec: %d events overflow the frame count", len(events))
	}
	nKeyed, nRowed := 0, 0
	for i, ev := range events {
		op, ok := opByte(ev.Op)
		if !ok {
			return nil, fmt.Errorf("codec: event %d: unknown op %q (want append, upsert or delete)", i, ev.Op)
		}
		if op != OpAppend {
			if ev.ID < 0 || int64(ev.ID) > math.MaxUint32 {
				return nil, fmt.Errorf("codec: event %d: tuple id %d outside [0, 2^32)", i, ev.ID)
			}
			nKeyed++
		}
		if op != OpDelete {
			if len(ev.Row) != numAttrs {
				return nil, fmt.Errorf("codec: event %d: row has %d values, frame has %d columns", i, len(ev.Row), numAttrs)
			}
			for a, v := range ev.Row {
				if v < 0 || int64(v) > math.MaxUint32 {
					return nil, fmt.Errorf("codec: event %d: attribute %d value %d outside [0, 2^32)", i, a, v)
				}
			}
			nRowed++
		}
	}
	payloadLen := payloadHeaderBytes + len(events) + 4*nKeyed + 4*numAttrs*nRowed
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder, patched below
	payloadAt := len(dst)
	dst = append(dst, Version, byte(numAttrs), 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(events)))
	for _, ev := range events {
		op, _ := opByte(ev.Op)
		dst = append(dst, op)
	}
	for _, ev := range events {
		if ev.Op != "append" {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(ev.ID))
		}
	}
	for a := 0; a < numAttrs; a++ {
		for _, ev := range events {
			if ev.Op != "delete" {
				dst = binary.LittleEndian.AppendUint32(dst, uint32(ev.Row[a]))
			}
		}
	}
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[payloadAt:], castagnoli))
	return dst, nil
}

// EncodeFrame is AppendFrame into a fresh buffer.
func EncodeFrame(events []Event, numAttrs int) ([]byte, error) {
	return AppendFrame(nil, events, numAttrs)
}

// Decoder decodes batch frames, reusing its scratch buffers — the frame
// buffer, the event slice, and the flat backing array every decoded Row is
// carved from — across calls, so a pooled Decoder's steady-state decode
// allocates nothing per event. The events returned by DecodeAll alias the
// Decoder's scratch: they are valid until the next DecodeAll (or until the
// Decoder goes back to its pool) and must not be retained.
type Decoder struct {
	hdr    [headerBytes]byte
	frame  []byte
	events []Event
	rows   []int
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder fetches a Decoder from the package pool.
func GetDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// PutDecoder returns a Decoder (and its scratch) to the package pool. The
// events of its last DecodeAll become invalid.
func PutDecoder(d *Decoder) { decoderPool.Put(d) }

// DecodeAll reads frames from r until EOF and returns the concatenated
// events. Every frame must declare exactly numAttrs value columns, and the
// total event count across frames is capped at maxEvents (a frame whose
// length prefix could not possibly fit the remaining allowance is rejected
// before it is buffered, bounding memory against corrupt or adversarial
// prefixes). Any framing, CRC or column inconsistency fails the whole
// decode: a torn or bit-flipped body is rejected, never partially applied.
func (d *Decoder) DecodeAll(r io.Reader, numAttrs, maxEvents int) ([]Event, error) {
	if numAttrs < 0 || numAttrs > MaxAttrs {
		return nil, fmt.Errorf("codec: %d attributes exceed the frame's %d-column cap", numAttrs, MaxAttrs)
	}
	if maxEvents < 0 {
		maxEvents = 0
	}
	d.events = d.events[:0]
	d.rows = d.rows[:0]
	rowOff := 0
	for {
		if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
			if err == io.EOF {
				return d.events, nil
			}
			return nil, fmt.Errorf("codec: torn frame header: %w", err)
		}
		payloadLen := int(binary.LittleEndian.Uint32(d.hdr[0:4]))
		crc := binary.LittleEndian.Uint32(d.hdr[4:8])
		remaining := maxEvents - len(d.events)
		if max := MaxFrameBytes(remaining, numAttrs) - headerBytes; payloadLen > max {
			return nil, fmt.Errorf("codec: frame of %d payload bytes exceeds the %d-byte bound for %d remaining events", payloadLen, max, remaining)
		}
		if payloadLen < payloadHeaderBytes {
			return nil, fmt.Errorf("codec: frame payload of %d bytes is shorter than the %d-byte header", payloadLen, payloadHeaderBytes)
		}
		if cap(d.frame) < payloadLen {
			d.frame = make([]byte, payloadLen)
		}
		p := d.frame[:payloadLen]
		if _, err := io.ReadFull(r, p); err != nil {
			return nil, fmt.Errorf("codec: torn frame payload: %w", err)
		}
		if got := crc32.Checksum(p, castagnoli); got != crc {
			return nil, fmt.Errorf("codec: frame CRC mismatch (got %08x, want %08x)", got, crc)
		}
		if p[0] != Version {
			return nil, fmt.Errorf("codec: unsupported frame version %d (want %d)", p[0], Version)
		}
		if int(p[1]) != numAttrs {
			return nil, fmt.Errorf("codec: frame declares %d value columns, want %d", p[1], numAttrs)
		}
		if p[2] != 0 || p[3] != 0 {
			return nil, errors.New("codec: non-zero reserved frame bytes")
		}
		count := int(binary.LittleEndian.Uint32(p[4:8]))
		if count > remaining {
			return nil, fmt.Errorf("codec: %d events exceed the remaining allowance %d", count, remaining)
		}
		ops := p[payloadHeaderBytes:]
		if len(ops) < count {
			return nil, fmt.Errorf("codec: frame truncates the op column (%d bytes for %d events)", len(ops), count)
		}
		ops = ops[:count]
		nKeyed, nRowed := 0, 0
		for i, op := range ops {
			switch op {
			case OpAppend:
				nRowed++
			case OpUpsert:
				nKeyed++
				nRowed++
			case OpDelete:
				nKeyed++
			default:
				return nil, fmt.Errorf("codec: event %d: unknown op byte %d", i, op)
			}
		}
		if want := payloadHeaderBytes + count + 4*nKeyed + 4*numAttrs*nRowed; payloadLen != want {
			return nil, fmt.Errorf("codec: frame payload is %d bytes, columns require %d", payloadLen, want)
		}
		ids := p[payloadHeaderBytes+count:]
		vals := ids[4*nKeyed:]
		// Grow the flat row backing once per frame; every Row below is a
		// sub-slice of it, so decoding allocates no per-event storage.
		need := rowOff + nRowed*numAttrs
		if cap(d.rows) < need {
			grown := make([]int, need)
			copy(grown, d.rows[:rowOff])
			d.rows = grown
			// Re-carve rows handed out for earlier frames onto the new
			// backing so one body's events share one array.
			reOff := 0
			for i := range d.events {
				if n := len(d.events[i].Row); n > 0 {
					d.events[i].Row = d.rows[reOff : reOff+n : reOff+n]
					reOff += n
				}
			}
		}
		d.rows = d.rows[:need]
		keyed, rowed := 0, 0
		for _, op := range ops {
			ev := Event{Op: opString[op]}
			if op != OpAppend {
				ev.ID = int(binary.LittleEndian.Uint32(ids[4*keyed:]))
				keyed++
			}
			if op != OpDelete {
				row := d.rows[rowOff : rowOff+numAttrs : rowOff+numAttrs]
				for a := 0; a < numAttrs; a++ {
					row[a] = int(binary.LittleEndian.Uint32(vals[4*(a*nRowed+rowed):]))
				}
				ev.Row = row
				rowOff += numAttrs
				rowed++
			}
			d.events = append(d.events, ev)
		}
	}
}
