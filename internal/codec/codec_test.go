package codec

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Op: "append", Row: []int{3, 9}},
		{Op: "upsert", ID: 7, Row: []int{1, 2}},
		{Op: "delete", ID: 4},
		{Op: "append", Row: []int{0, 4294967295}},
	}
}

func mustFrame(t *testing.T, events []Event, numAttrs int) []byte {
	t.Helper()
	b, err := EncodeFrame(events, numAttrs)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return b
}

func decode(t *testing.T, body []byte, numAttrs, maxEvents int) ([]Event, error) {
	t.Helper()
	d := GetDecoder()
	defer PutDecoder(d)
	got, err := d.DecodeAll(bytes.NewReader(body), numAttrs, maxEvents)
	if err != nil {
		return nil, err
	}
	// Deep-copy out of the decoder scratch before the deferred PutDecoder.
	out := make([]Event, len(got))
	for i, ev := range got {
		out[i] = Event{Op: ev.Op, ID: ev.ID, Row: append([]int(nil), ev.Row...)}
	}
	return out, nil
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].ID != b[i].ID || len(a[i].Row) != len(b[i].Row) {
			return false
		}
		for j := range a[i].Row {
			if a[i].Row[j] != b[i].Row[j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	events := sampleEvents()
	frame := mustFrame(t, events, 2)
	got, err := decode(t, frame, 2, 100)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if !eventsEqual(events, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", events, got)
	}
}

func TestRoundTripMultiFrame(t *testing.T) {
	a := []Event{{Op: "append", Row: []int{1}}, {Op: "delete", ID: 2}}
	b := []Event{{Op: "upsert", ID: 5, Row: []int{9}}}
	body := mustFrame(t, a, 1)
	body = append(body, mustFrame(t, b, 1)...)
	got, err := decode(t, body, 1, 100)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	want := append(append([]Event(nil), a...), b...)
	if !eventsEqual(want, got) {
		t.Fatalf("multi-frame mismatch:\nwant %+v\n got %+v", want, got)
	}
}

func TestRoundTripZeroColumns(t *testing.T) {
	// A deletes-only frame over a zero-attribute domain is legal.
	events := []Event{{Op: "delete", ID: 1}, {Op: "delete", ID: 2}}
	frame := mustFrame(t, events, 0)
	got, err := decode(t, frame, 0, 10)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if !eventsEqual(events, got) {
		t.Fatalf("zero-column mismatch: %+v", got)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	frame := mustFrame(t, nil, 3)
	got, err := decode(t, frame, 3, 10)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want no events, got %+v", got)
	}
	got, err = decode(t, nil, 3, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty body: got %+v, %v", got, err)
	}
}

func TestEncodeRejects(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		attrs  int
		want   string
	}{
		{"unknown op", []Event{{Op: "replace"}}, 1, "unknown op"},
		{"short row", []Event{{Op: "append", Row: []int{1}}}, 2, "row has 1 values"},
		{"long row", []Event{{Op: "append", Row: []int{1, 2, 3}}}, 2, "row has 3 values"},
		{"negative value", []Event{{Op: "append", Row: []int{-1}}}, 1, "outside [0, 2^32)"},
		{"huge value", []Event{{Op: "append", Row: []int{math.MaxUint32 + 1}}}, 1, "outside [0, 2^32)"},
		{"negative id", []Event{{Op: "delete", ID: -1}}, 1, "outside [0, 2^32)"},
		{"too many attrs", nil, MaxAttrs + 1, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := EncodeFrame(tc.events, tc.attrs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	events := sampleEvents()
	frame := mustFrame(t, events, 2)

	t.Run("bit flip payload", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0x01
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want CRC error, got %v", err)
		}
	})
	t.Run("bit flip crc", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[5] ^= 0x80
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want CRC error, got %v", err)
		}
	})
	t.Run("torn header", func(t *testing.T) {
		if _, err := decode(t, frame[:5], 2, 100); err == nil || !strings.Contains(err.Error(), "torn frame header") {
			t.Fatalf("want torn header error, got %v", err)
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		if _, err := decode(t, frame[:len(frame)-3], 2, 100); err == nil || !strings.Contains(err.Error(), "torn frame payload") {
			t.Fatalf("want torn payload error, got %v", err)
		}
	})
	t.Run("huge length prefix", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(bad[0:4], math.MaxUint32)
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("want length-bound error, got %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), frame...), 0xde, 0xad)
		if _, err := decode(t, bad, 2, 100); err == nil {
			t.Fatal("want error for trailing garbage, got nil")
		}
	})
	t.Run("wrong attr count", func(t *testing.T) {
		if _, err := decode(t, frame, 3, 100); err == nil || !strings.Contains(err.Error(), "columns") {
			t.Fatalf("want column-count error, got %v", err)
		}
	})
	t.Run("over event budget", func(t *testing.T) {
		if _, err := decode(t, frame, 2, 3); err == nil {
			t.Fatal("want event-budget error, got nil")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[8] = 9 // version byte is first payload byte
		binary.LittleEndian.PutUint32(bad[4:8], crc32.Checksum(bad[8:], castagnoli))
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("reserved bytes", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[10] = 1 // first reserved byte
		binary.LittleEndian.PutUint32(bad[4:8], crc32.Checksum(bad[8:], castagnoli))
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Fatalf("want reserved-bytes error, got %v", err)
		}
	})
	t.Run("bad op byte", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[16] = 7 // first op byte (8 hdr + 8 payload hdr)
		binary.LittleEndian.PutUint32(bad[4:8], crc32.Checksum(bad[8:], castagnoli))
		if _, err := decode(t, bad, 2, 100); err == nil || !strings.Contains(err.Error(), "op byte") {
			t.Fatalf("want op-byte error, got %v", err)
		}
	})
	t.Run("count column mismatch", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(bad[12:16], 3) // claim 3 events, columns sized for 4
		binary.LittleEndian.PutUint32(bad[4:8], crc32.Checksum(bad[8:], castagnoli))
		if _, err := decode(t, bad, 2, 100); err == nil {
			t.Fatal("want payload-size error, got nil")
		}
	})
}

// TestDecoderReuse checks that a pooled decoder's scratch survives reuse
// across bodies of different shapes without cross-contamination.
func TestDecoderReuse(t *testing.T) {
	d := GetDecoder()
	defer PutDecoder(d)
	big := make([]Event, 500)
	for i := range big {
		big[i] = Event{Op: "append", Row: []int{i, i * 2, i * 3}}
	}
	bigFrame := mustFrame(t, big, 3)
	small := []Event{{Op: "upsert", ID: 1, Row: []int{42}}}
	smallFrame := mustFrame(t, small, 1)
	for round := 0; round < 3; round++ {
		got, err := d.DecodeAll(bytes.NewReader(bigFrame), 3, 1000)
		if err != nil || !eventsEqual(big, got) {
			t.Fatalf("round %d big: err=%v match=%v", round, err, eventsEqual(big, got))
		}
		got, err = d.DecodeAll(bytes.NewReader(smallFrame), 1, 1000)
		if err != nil || !eventsEqual(small, got) {
			t.Fatalf("round %d small: err=%v got=%+v", round, err, got)
		}
	}
}

// TestDecodeSteadyStateAllocs checks the tentpole property: a warmed
// decoder decodes a batch with no per-event allocation.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	events := make([]Event, 256)
	for i := range events {
		events[i] = Event{Op: "append", Row: []int{i % 100, i % 7}}
	}
	frame := mustFrame(t, events, 2)
	d := GetDecoder()
	defer PutDecoder(d)
	rd := bytes.NewReader(frame)
	if _, err := d.DecodeAll(rd, 2, 1000); err != nil { // warm the scratch
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(100, func() {
		rd.Reset(frame)
		if _, err := d.DecodeAll(rd, 2, 1000); err != nil {
			t.Fatalf("DecodeAll: %v", err)
		}
	})
	if avg > 0 {
		t.Fatalf("warmed decode allocates %.1f times per batch, want 0", avg)
	}
}

func BenchmarkBatchDecode(b *testing.B) {
	events := make([]Event, 256)
	for i := range events {
		events[i] = Event{Op: "append", Row: []int{i % 100, i % 7}}
	}
	frame, err := EncodeFrame(events, 2)
	if err != nil {
		b.Fatal(err)
	}
	d := GetDecoder()
	defer PutDecoder(d)
	rd := bytes.NewReader(frame)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, err := d.DecodeAll(rd, 2, len(events)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	events := make([]Event, 256)
	for i := range events {
		events[i] = Event{Op: "append", Row: []int{i % 100, i % 7}}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], events, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
}
