package codec

import (
	"bytes"
	"testing"
)

// FuzzBatchDecode throws arbitrary bytes at the frame decoder under a few
// (numAttrs, maxEvents) shapes. The decoder must never panic, never
// over-allocate past the length bound, and — when it does accept a body —
// return events that re-encode to a decodable equivalent (round-trip
// closure). Seed corpus lives in testdata/fuzz/FuzzBatchDecode, mirroring
// the WAL decoder's corpus layout.
func FuzzBatchDecode(f *testing.F) {
	valid, err := EncodeFrame(sampleFuzzEvents(), 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		shapes := []struct{ numAttrs, maxEvents int }{
			{2, 1 << 10},
			{0, 1 << 10},
			{1, 4},
		}
		for _, sh := range shapes {
			d := GetDecoder()
			events, err := d.DecodeAll(bytes.NewReader(data), sh.numAttrs, sh.maxEvents)
			if err == nil {
				if len(events) > sh.maxEvents {
					t.Fatalf("decoded %d events past the %d cap", len(events), sh.maxEvents)
				}
				reenc, err := EncodeFrame(events, sh.numAttrs)
				if err != nil {
					t.Fatalf("accepted events fail to re-encode: %v", err)
				}
				again, err := d.DecodeAll(bytes.NewReader(reenc), sh.numAttrs, sh.maxEvents)
				if err != nil {
					t.Fatalf("re-encoded frame fails to decode: %v", err)
				}
				if len(again) != len(events) {
					t.Fatalf("round trip changed event count: %d != %d", len(again), len(events))
				}
			}
			PutDecoder(d)
		}
	})
}

func sampleFuzzEvents() []Event {
	return []Event{
		{Op: "append", Row: []int{3, 9}},
		{Op: "upsert", ID: 7, Row: []int{1, 2}},
		{Op: "delete", ID: 4},
	}
}
