// Package composition provides privacy-budget accounting for Blowfish
// mechanisms: sequential composition (Theorem 4.1), parallel composition
// with the cardinality constraint (Theorem 4.2), and the sufficient
// condition for parallel composition under general count constraints
// (Theorem 4.3) via critical secret pairs.
package composition

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"blowfish/internal/constraints"
	"blowfish/internal/secgraph"
)

// ErrBudgetExceeded is returned when a spend would push the accountant past
// its total budget.
var ErrBudgetExceeded = errors.New("composition: privacy budget exceeded")

// Release records one budgeted release.
type Release struct {
	Label   string
	Epsilon float64
}

// Accountant tracks cumulative privacy loss against a fixed total budget.
// Sequential releases add up (Theorem 4.1); parallel groups over disjoint
// id-subsets cost their maximum (Theorem 4.2). The zero value is unusable;
// construct with NewAccountant. Accountants are safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	budget   float64
	spent    float64
	releases []Release
}

// NewAccountant creates an accountant with the given total ε budget.
func NewAccountant(budget float64) (*Accountant, error) {
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("composition: invalid budget %v", budget)
	}
	return &Accountant{budget: budget}, nil
}

// Budget returns the total budget.
func (a *Accountant) Budget() float64 { return a.budget }

// Spent returns the cumulative privacy loss so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns budget − spent.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget - a.spent
}

// Releases returns a copy of the release log.
func (a *Accountant) Releases() []Release {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Release(nil), a.releases...)
}

// AccountantState is a serializable snapshot of an accountant's ledger,
// used by the durable server to persist budget accounting across restarts.
// Persisting the ledger is a privacy requirement, not bookkeeping: the
// Blowfish guarantee is cumulative (Theorem 4.1), so a restarted server
// must refuse exactly the releases the pre-crash server would have.
type AccountantState struct {
	Budget   float64   `json:"budget"`
	Spent    float64   `json:"spent"`
	Releases []Release `json:"releases,omitempty"`
}

// State captures the accountant's ledger.
func (a *Accountant) State() AccountantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AccountantState{
		Budget:   a.budget,
		Spent:    a.spent,
		Releases: append([]Release(nil), a.releases...),
	}
}

// Restore overwrites the ledger with a persisted state. Restoration is
// monotone: the restored spend may never be lower than what this accountant
// has already charged, and the budget must match — a mismatch means the
// state belongs to a different accountant and is refused.
func (a *Accountant) Restore(st AccountantState) error {
	if st.Budget != a.budget {
		return fmt.Errorf("composition: restoring budget %v onto accountant with budget %v", st.Budget, a.budget)
	}
	if st.Spent < 0 || math.IsNaN(st.Spent) || st.Spent > st.Budget+1e-12 {
		return fmt.Errorf("composition: invalid restored spend %v (budget %v)", st.Spent, st.Budget)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st.Spent < a.spent {
		return fmt.Errorf("composition: restored spend %v is below the already-charged %v (budget accounting must be monotone)", st.Spent, a.spent)
	}
	a.spent = st.Spent
	a.releases = append([]Release(nil), st.Releases...)
	return nil
}

// Spend charges a sequential release of the given ε. It fails without
// charging when the budget would be exceeded.
func (a *Accountant) Spend(label string, eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("composition: invalid epsilon %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkLocked(eps); err != nil {
		return err
	}
	a.spent += eps
	a.releases = append(a.releases, Release{Label: label, Epsilon: eps})
	return nil
}

// CanSpend reports whether a sequential charge of eps would currently fit
// the budget, with the same tolerance and error as Spend. It is advisory —
// a concurrent Spend may consume the headroom before the caller charges —
// but lets expensive release computations be skipped when the budget is
// already exhausted.
func (a *Accountant) CanSpend(eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("composition: invalid epsilon %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checkLocked(eps)
}

// checkLocked is the single budget rule shared by Spend and CanSpend.
func (a *Accountant) checkLocked(eps float64) error {
	if a.spent+eps > a.budget+1e-12 {
		return fmt.Errorf("%w: spent %v + %v > budget %v", ErrBudgetExceeded, a.spent, eps, a.budget)
	}
	return nil
}

// SpendParallel charges a group of mechanisms run on disjoint id-subsets:
// by Theorem 4.2 the group costs max(eps). The caller is responsible for
// the disjointness of the subsets; for constrained policies, validate the
// grouping first with VerifyParallelGroups (Theorem 4.3).
func (a *Accountant) SpendParallel(label string, eps []float64) error {
	if len(eps) == 0 {
		return errors.New("composition: empty parallel group")
	}
	maxEps := 0.0
	for _, e := range eps {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("composition: invalid epsilon %v", e)
		}
		if e > maxEps {
			maxEps = e
		}
	}
	return a.Spend(label, maxEps)
}

// Group assigns a set of count constraints to one id-subset of a parallel
// composition.
type Group struct {
	// Label names the subset (diagnostics only).
	Label string
	// Queries are the constraints assigned to this subset.
	Queries []constraints.CountQuery
}

// VerifyParallelGroups checks the Theorem 4.3 sufficient condition for the
// paper's uniform, id-symmetric secret specifications: parallel composition
// over disjoint id-subsets is safe when every constraint involved has no
// critical secret pairs at all (crit(q) ∩ E(G) = ∅). A constraint whose
// critical pairs are non-empty pertains to every individual's secrets and
// therefore cannot be confined to a single subset.
//
// This is exactly the situation of the example closing Section 4.1: count
// constraints over the connected components of G are critical-pair-free,
// so mechanisms over disjoint id-subsets compose in parallel without loss.
func VerifyParallelGroups(g secgraph.Graph, groups []Group) error {
	if len(groups) == 0 {
		return errors.New("composition: no groups")
	}
	for _, grp := range groups {
		for _, q := range grp.Queries {
			crit, err := constraints.CriticalPairs(q, g)
			if err != nil {
				return fmt.Errorf("composition: group %q query %q: %w", grp.Label, q.Name, err)
			}
			if len(crit) > 0 {
				return fmt.Errorf("composition: group %q: constraint %q has %d critical secret pairs (e.g. %v); parallel composition is not justified",
					grp.Label, q.Name, len(crit), crit[0])
			}
		}
	}
	return nil
}
