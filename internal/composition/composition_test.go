package composition

import (
	"errors"
	"sync"
	"testing"

	"blowfish/internal/constraints"
	"blowfish/internal/domain"
	"blowfish/internal/secgraph"
)

func TestNewAccountantValidation(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		if _, err := NewAccountant(bad); err == nil {
			t.Errorf("budget %v accepted", bad)
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	if err := a.Spend("histogram", 0.4); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if err := a.Spend("kmeans", 0.5); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if got := a.Spent(); got != 0.9 {
		t.Fatalf("Spent = %v, want 0.9", got)
	}
	// Exceeding the budget fails and does not charge.
	if err := a.Spend("extra", 0.2); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget spend: err = %v, want ErrBudgetExceeded", err)
	}
	if got := a.Spent(); got != 0.9 {
		t.Fatalf("failed spend charged the accountant: %v", got)
	}
	// Exactly consuming the remainder succeeds.
	if err := a.Spend("last", 0.1); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if rem := a.Remaining(); rem > 1e-9 || rem < -1e-9 {
		t.Fatalf("Remaining = %v, want 0", rem)
	}
	if got := len(a.Releases()); got != 3 {
		t.Fatalf("release log has %d entries, want 3", got)
	}
	if a.Releases()[0].Label != "histogram" {
		t.Fatalf("first release = %+v", a.Releases()[0])
	}
}

func TestCanSpend(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	if err := a.CanSpend(0.8); err != nil {
		t.Fatalf("CanSpend(0.8) on fresh accountant: %v", err)
	}
	if err := a.CanSpend(0); err == nil {
		t.Fatal("CanSpend(0) accepted")
	}
	if err := a.Spend("histogram", 0.8); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	// The advisory check agrees with the authoritative gate.
	if err := a.CanSpend(0.3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("CanSpend over budget: err = %v, want ErrBudgetExceeded", err)
	}
	if err := a.CanSpend(0.2); err != nil {
		t.Fatalf("CanSpend of exact remainder: %v", err)
	}
	// CanSpend never charges.
	if got := a.Spent(); got != 0.8 {
		t.Fatalf("CanSpend charged the accountant: spent %v", got)
	}
}

func TestSpendValidation(t *testing.T) {
	a, err := NewAccountant(1)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	for _, bad := range []float64{0, -0.1} {
		if err := a.Spend("bad", bad); err == nil {
			t.Errorf("epsilon %v accepted", bad)
		}
	}
}

func TestParallelComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	// Theorem 4.2: the group costs its max, not its sum.
	if err := a.SpendParallel("per-state histograms", []float64{0.3, 0.5, 0.2}); err != nil {
		t.Fatalf("SpendParallel: %v", err)
	}
	if got := a.Spent(); got != 0.5 {
		t.Fatalf("Spent = %v, want 0.5", got)
	}
	if err := a.SpendParallel("empty", nil); err == nil {
		t.Error("empty group accepted")
	}
	if err := a.SpendParallel("bad", []float64{0.1, -1}); err == nil {
		t.Error("invalid group epsilon accepted")
	}
}

func TestAccountantConcurrentSpend(t *testing.T) {
	a, err := NewAccountant(100)
	if err != nil {
		t.Fatalf("NewAccountant: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Spend("p", 1)
		}()
	}
	wg.Wait()
	if got := a.Spent(); got != 50 {
		t.Fatalf("concurrent Spent = %v, want 50", got)
	}
}

// The Section 4.1 closing example: G has two disconnected components S and
// T\S; the count constraints qS and qT\S have no critical pairs, so
// parallel composition is justified. A constraint cutting across a
// component has critical pairs and is rejected.
func TestVerifyParallelGroups(t *testing.T) {
	d := domain.MustLine("v", 8)
	part, err := domain.NewUniformGrid(d, []int{4}) // blocks {0..3}, {4..7}
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	g := secgraph.NewPartition(part)
	qS := constraints.CountQuery{Name: "count(v<4)", Pred: func(p domain.Point) bool { return p < 4 }}
	qT := constraints.CountQuery{Name: "count(v>=4)", Pred: func(p domain.Point) bool { return p >= 4 }}
	groups := []Group{
		{Label: "S", Queries: []constraints.CountQuery{qS}},
		{Label: "T\\S", Queries: []constraints.CountQuery{qT}},
	}
	if err := VerifyParallelGroups(g, groups); err != nil {
		t.Fatalf("component-aligned constraints rejected: %v", err)
	}
	// A constraint splitting a component has critical pairs within it.
	qBad := constraints.CountQuery{Name: "count(v<2)", Pred: func(p domain.Point) bool { return p < 2 }}
	err = VerifyParallelGroups(g, []Group{{Label: "bad", Queries: []constraints.CountQuery{qBad}}})
	if err == nil {
		t.Fatal("component-splitting constraint accepted")
	}
	if err := VerifyParallelGroups(g, nil); err == nil {
		t.Error("empty groups accepted")
	}
}

func TestCriticalPairsDirect(t *testing.T) {
	d := domain.MustLine("v", 6)
	g := secgraph.MustDistanceThreshold(d, 1)
	q := constraints.CountQuery{Name: "v<3", Pred: func(p domain.Point) bool { return p < 3 }}
	crit, err := constraints.CriticalPairs(q, g)
	if err != nil {
		t.Fatalf("CriticalPairs: %v", err)
	}
	// Only the boundary edge (2,3) lifts/lowers the predicate.
	if len(crit) != 1 || crit[0] != [2]domain.Point{2, 3} {
		t.Fatalf("critical pairs = %v, want [(2,3)]", crit)
	}
}

func TestAccountantStateRestoreRoundTrip(t *testing.T) {
	a, _ := NewAccountant(2.0)
	a.Spend("h1", 0.5)
	a.Spend("h2", 0.25)
	st := a.State()

	b, _ := NewAccountant(2.0)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	if b.Spent() != a.Spent() {
		t.Fatalf("restored spent %v != %v", b.Spent(), a.Spent())
	}
	rels := b.Releases()
	if len(rels) != 2 || rels[0].Label != "h1" || rels[1].Epsilon != 0.25 {
		t.Fatalf("restored ledger %+v", rels)
	}
	// The restored accountant enforces the same remaining budget.
	if err := b.Spend("big", 1.5); err == nil {
		t.Fatal("restored accountant allowed overspend")
	}
	if err := b.Spend("fits", 1.25); err != nil {
		t.Fatalf("restored accountant refused a fitting charge: %v", err)
	}
}

func TestAccountantRestoreValidation(t *testing.T) {
	a, _ := NewAccountant(1.0)
	if err := a.Restore(AccountantState{Budget: 2.0, Spent: 0}); err == nil {
		t.Fatal("budget mismatch accepted")
	}
	if err := a.Restore(AccountantState{Budget: 1.0, Spent: 1.5}); err == nil {
		t.Fatal("overspent state accepted")
	}
	if err := a.Restore(AccountantState{Budget: 1.0, Spent: -0.1}); err == nil {
		t.Fatal("negative spend accepted")
	}
	a.Spend("x", 0.5)
	if err := a.Restore(AccountantState{Budget: 1.0, Spent: 0.25}); err == nil {
		t.Fatal("non-monotone restore accepted: spend would shrink")
	}
	if err := a.Restore(AccountantState{Budget: 1.0, Spent: 0.75}); err != nil {
		t.Fatalf("monotone restore refused: %v", err)
	}
}
