package constraints

import (
	"fmt"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/secgraph"
)

// chainConstraints builds the Section 3.2 auxiliary knowledge: the k-1
// overlapping pair sums c(r_i) + c(r_{i+1}) = a_i.
func chainConstraints(d *domain.Domain, ds *domain.Dataset) (*Set, error) {
	k := int(d.Size())
	queries := make([]CountQuery, 0, k-1)
	for i := 0; i < k-1; i++ {
		lo := domain.Point(i)
		queries = append(queries, CountQuery{
			Name: fmt.Sprintf("c(r%d)+c(r%d)", i, i+1),
			Pred: func(p domain.Point) bool { return p == lo || p == lo+1 },
		})
	}
	return FromDataset(queries, ds)
}

// reconstruct runs the paper's averaging attack on a noisy histogram: for
// target cell 0, each noisy count c̃(r_j) yields an independent estimator
// via the telescoping chain c(r_0) = a_0 - a_1 + ... ± c̃(r_j); the
// adversary averages all k of them.
func reconstruct(noisy []float64, answers []float64) float64 {
	k := len(noisy)
	var sum float64
	for j := 0; j < k; j++ {
		// prefix = Σ_{i<j} (-1)^i a_i; estimator = prefix + (-1)^j c̃(r_j).
		est := 0.0
		sign := 1.0
		for i := 0; i < j; i++ {
			est += sign * answers[i]
			sign = -sign
		}
		est += sign * noisy[j]
		sum += est
	}
	return sum / float64(k)
}

// The Section 3.2 "no free lunch" attack: differentially private counts
// plus publicly known chain constraints reconstruct every count with
// variance 2/(kε²) — vanishing as the domain grows. Calibrating to the
// Blowfish constrained policy (Corollary 8.3, since chain constraints are
// NOT sparse) makes the same attack useless: the averaged estimator's
// error grows with k instead of shrinking.
func TestSection32ReconstructionAttack(t *testing.T) {
	const (
		eps  = 1.0
		reps = 3000
	)
	attackVariance := func(k int, scale float64, seed int64) float64 {
		d := domain.MustLine("r", k)
		ds := domain.NewDataset(d)
		// counts c(r_i) = 5 + i.
		for i := 0; i < k; i++ {
			for c := 0; c < 5+i; c++ {
				ds.MustAdd(domain.Point(i))
			}
		}
		truth, err := ds.Histogram()
		if err != nil {
			t.Fatalf("Histogram: %v", err)
		}
		set, err := chainConstraints(d, ds)
		if err != nil {
			t.Fatalf("chainConstraints: %v", err)
		}
		answers := set.Answers()
		src := noise.NewSource(seed)
		var sq float64
		for r := 0; r < reps; r++ {
			noisy := make([]float64, k)
			for i := range noisy {
				noisy[i] = truth[i] + src.Laplace(scale)
			}
			rec := reconstruct(noisy, answers)
			diff := rec - truth[0]
			sq += diff * diff
		}
		return sq / reps
	}

	// 1. The chain constraints are NOT sparse w.r.t. the complete graph
	// (a change can lift two overlapping pair-sums), so Blowfish falls back
	// to the coarse Corollary 8.3 bound 2|Q| = 2(k-1).
	d8 := domain.MustLine("r", 8)
	ref := domain.NewDataset(d8)
	ref.MustAdd(0)
	set8, err := chainConstraints(d8, ref)
	if err != nil {
		t.Fatalf("chainConstraints: %v", err)
	}
	sparse, err := set8.IsSparse(secgraph.NewComplete(d8))
	if err != nil {
		t.Fatalf("IsSparse: %v", err)
	}
	if sparse {
		t.Fatal("overlapping chain constraints reported sparse")
	}
	sens, wasSparse, err := HistogramSensitivity(set8, secgraph.NewComplete(d8))
	if err != nil {
		t.Fatalf("HistogramSensitivity: %v", err)
	}
	if wasSparse || sens != 2*7 {
		t.Fatalf("constrained sensitivity = %v (sparse %v), want coarse bound 14", sens, wasSparse)
	}

	// 2. Against DP calibration (scale 2/ε) the attack improves with k:
	// reconstruction variance ≈ 8/(kε²).
	dp4 := attackVariance(4, 2/eps, 11)
	dp16 := attackVariance(16, 2/eps, 12)
	if dp16 > dp4*0.6 {
		t.Fatalf("attack did not improve with k against DP: var(k=4)=%v, var(k=16)=%v", dp4, dp16)
	}
	// Within 2x of the paper's predicted 8/(kε²).
	predicted16 := 8.0 / (16 * eps * eps)
	if dp16 < predicted16/2 || dp16 > predicted16*2 {
		t.Fatalf("DP reconstruction variance %v far from predicted %v", dp16, predicted16)
	}

	// 3. Against the Blowfish constrained calibration (scale 2(k-1)/ε) the
	// attack's error GROWS with k — the policy defends exactly the leak the
	// constraints enabled.
	bf4 := attackVariance(4, 2*3/eps, 13)
	bf16 := attackVariance(16, 2*15/eps, 14)
	if bf16 < bf4 {
		t.Fatalf("Blowfish reconstruction error shrank with k: var(k=4)=%v, var(k=16)=%v", bf4, bf16)
	}
	if bf16 < 100*dp16 {
		t.Fatalf("Blowfish calibration did not defeat the attack: %v vs DP %v", bf16, dp16)
	}
}
