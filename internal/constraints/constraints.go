// Package constraints implements Blowfish policies with publicly known
// deterministic constraints (Section 8 of the paper): count query
// constraints, the lift/lower analysis and sparsity condition, policy
// graphs with their α/ξ statistics, the resulting histogram sensitivity
// bounds (Theorem 8.2, Corollary 8.3), and the closed forms for the
// practical scenarios — marginals with full-domain secrets (Theorem 8.4),
// disjoint marginals with attribute secrets (Theorem 8.5), and disjoint
// range constraints with distance-threshold secrets (Theorem 8.6).
package constraints

import (
	"errors"
	"fmt"
	"strings"

	"blowfish/internal/domain"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// CountQuery is a count query q_φ: it counts the tuples whose value
// satisfies a predicate over the domain (Section 8.1).
type CountQuery struct {
	// Name identifies the query in diagnostics, e.g. "A1=a1 ∧ A2=b2".
	Name string
	// Pred is the predicate φ over domain values.
	Pred func(domain.Point) bool
}

// Count evaluates q_φ(D). The zero-copy tuple scan is validated against the
// dataset's generation counter: a mutation landing mid-scan (a Remove can
// shrink the slice under the iterator, an Add can reallocate it) would
// otherwise count torn state. On a generation change the scan retries, and
// after a few lost races it falls back to counting over a private snapshot,
// which cannot tear.
//
// The check is exact for same-goroutine mutation (a predicate or callback
// that mutates ds mid-scan) and best-effort for cross-goroutine mutation:
// Dataset is unsynchronized (plain gen and slice reads, no happens-before
// edge), so truly concurrent writers remain the caller's to exclude — the
// server does, by running every release under its per-dataset table lock.
func (q CountQuery) Count(ds *domain.Dataset) float64 {
	const maxRetries = 3
	for attempt := 0; attempt < maxRetries; attempt++ {
		gen := ds.Generation()
		pts := ds.PointsUnsafe()
		var n float64
		for _, p := range pts {
			if q.Pred(p) {
				n++
			}
		}
		if ds.Generation() == gen {
			return n
		}
	}
	var n float64
	for _, p := range ds.Points() {
		if q.Pred(p) {
			n++
		}
	}
	return n
}

// Lifts reports whether the value change x→y lifts q (φ(x)=false ∧
// φ(y)=true, Definition 8.1).
func (q CountQuery) Lifts(x, y domain.Point) bool { return !q.Pred(x) && q.Pred(y) }

// Lowers reports whether x→y lowers q (φ(x)=true ∧ φ(y)=false).
func (q CountQuery) Lowers(x, y domain.Point) bool { return q.Pred(x) && !q.Pred(y) }

// Set is the auxiliary knowledge Q: count queries together with their
// publicly known answers. It implements policy.ConstraintSet, so
// policy.NewConstrained(g, set) forms the full Blowfish policy (T, G, I_Q).
type Set struct {
	dom     *domain.Domain
	queries []CountQuery
	answers []float64
	name    string
}

var _ policy.ConstraintSet = (*Set)(nil)

// NewSet builds a constraint set with explicit answers.
func NewSet(dom *domain.Domain, queries []CountQuery, answers []float64) (*Set, error) {
	if dom == nil {
		return nil, errors.New("constraints: nil domain")
	}
	if len(queries) != len(answers) {
		return nil, fmt.Errorf("constraints: %d queries but %d answers", len(queries), len(answers))
	}
	for i, q := range queries {
		if q.Pred == nil {
			return nil, fmt.Errorf("constraints: query %d (%q) has nil predicate", i, q.Name)
		}
	}
	names := make([]string, len(queries))
	for i, q := range queries {
		names[i] = q.Name
	}
	return &Set{
		dom:     dom,
		queries: append([]CountQuery(nil), queries...),
		answers: append([]float64(nil), answers...),
		name:    fmt.Sprintf("IQ{%s}", strings.Join(names, ",")),
	}, nil
}

// FromDataset builds a constraint set whose answers are the given queries
// evaluated on ds — the "publicly released statistics" scenario.
func FromDataset(queries []CountQuery, ds *domain.Dataset) (*Set, error) {
	answers := make([]float64, len(queries))
	for i, q := range queries {
		if q.Pred == nil {
			return nil, fmt.Errorf("constraints: query %d (%q) has nil predicate", i, q.Name)
		}
		answers[i] = q.Count(ds)
	}
	return NewSet(ds.Domain(), queries, answers)
}

// Domain returns the domain the constraints are defined over.
func (s *Set) Domain() *domain.Domain { return s.dom }

// Queries returns the count queries; the slice must not be modified.
func (s *Set) Queries() []CountQuery { return s.queries }

// Answers returns the public answers; the slice must not be modified.
func (s *Set) Answers() []float64 { return s.answers }

// Len returns |Q|.
func (s *Set) Len() int { return len(s.queries) }

// Satisfied implements policy.ConstraintSet: D ∈ I_Q iff every query
// evaluates to its public answer.
func (s *Set) Satisfied(ds *domain.Dataset) bool {
	if !ds.Domain().Equal(s.dom) {
		return false
	}
	for i, q := range s.queries {
		if q.Count(ds) != s.answers[i] {
			return false
		}
	}
	return true
}

// Name implements policy.ConstraintSet.
func (s *Set) Name() string { return s.name }

// IsSparse checks Definition 8.2: Q is sparse w.r.t. G iff every secret
// pair (edge of G) lifts at most one query and lowers at most one query.
// Enumeration is over the edges of G, so the domain must admit edge
// enumeration (small domains or explicit graphs).
func (s *Set) IsSparse(g secgraph.Graph) (bool, error) {
	if !g.Domain().Equal(s.dom) {
		return false, errors.New("constraints: graph is over a different domain")
	}
	sparse := true
	err := secgraph.Edges(g, func(x, y domain.Point) bool {
		// Check both orientations: an edge is an unordered secret pair.
		if !s.sparseFor(x, y) || !s.sparseFor(y, x) {
			sparse = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return sparse, nil
}

// sparseFor checks the directed change x→y.
func (s *Set) sparseFor(x, y domain.Point) bool {
	lifts, lowers := 0, 0
	for _, q := range s.queries {
		if q.Lifts(x, y) {
			lifts++
		}
		if q.Lowers(x, y) {
			lowers++
		}
		if lifts > 1 || lowers > 1 {
			return false
		}
	}
	return true
}

// CriticalPairs returns the secret pairs (edges of G) critical to q in the
// sense of Theorem 4.3: the pairs that lift or lower q, i.e. those along
// which a single-tuple change can break a count constraint on q. Parallel
// composition over id-subsets is safe when every constraint assigned to a
// subset has no critical secret pairs outside it; with the paper's uniform
// id-symmetric secrets that reduces to crit(q) ∩ E(G) = ∅ (the
// disconnected-components example concluding Section 4.1).
func CriticalPairs(q CountQuery, g secgraph.Graph) ([][2]domain.Point, error) {
	if q.Pred == nil {
		return nil, errors.New("constraints: nil predicate")
	}
	var out [][2]domain.Point
	err := secgraph.Edges(g, func(x, y domain.Point) bool {
		if q.Lifts(x, y) || q.Lowers(x, y) {
			out = append(out, [2]domain.Point{x, y})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
