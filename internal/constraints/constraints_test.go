package constraints

import (
	"errors"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// paperDomain is the Example 8.1 domain: A1={a1,a2}, A2={b1,b2},
// A3={c1,c2,c3}.
func paperDomain(t *testing.T) *domain.Domain {
	t.Helper()
	return domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 2},
		domain.Attribute{Name: "A3", Size: 3},
	)
}

func TestCountQueryBasics(t *testing.T) {
	d := domain.MustLine("v", 6)
	q := CountQuery{Name: "v<3", Pred: func(p domain.Point) bool { return p < 3 }}
	ds := domain.NewDataset(d)
	for _, v := range []int{0, 1, 4, 5, 2} {
		ds.MustAdd(domain.Point(v))
	}
	if got, want := q.Count(ds), 3.0; got != want {
		t.Fatalf("Count = %v, want %v", got, want)
	}
	if !q.Lifts(4, 1) || q.Lifts(1, 4) {
		t.Fatal("Lifts wrong")
	}
	if !q.Lowers(1, 4) || q.Lowers(4, 1) {
		t.Fatal("Lowers wrong")
	}
	if q.Lifts(0, 1) || q.Lowers(0, 1) {
		t.Fatal("within-predicate change should neither lift nor lower")
	}
}

func TestSetValidationAndSatisfied(t *testing.T) {
	d := domain.MustLine("v", 4)
	q := CountQuery{Name: "v<2", Pred: func(p domain.Point) bool { return p < 2 }}
	if _, err := NewSet(d, []CountQuery{q}, nil); err == nil {
		t.Error("answer count mismatch accepted")
	}
	if _, err := NewSet(d, []CountQuery{{Name: "nil"}}, []float64{0}); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewSet(nil, nil, nil); err == nil {
		t.Error("nil domain accepted")
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	ds.MustAdd(3)
	s, err := FromDataset([]CountQuery{q}, ds)
	if err != nil {
		t.Fatalf("FromDataset: %v", err)
	}
	if s.Answers()[0] != 1 {
		t.Fatalf("answer = %v, want 1", s.Answers()[0])
	}
	if !s.Satisfied(ds) {
		t.Fatal("defining dataset not satisfied")
	}
	other := domain.NewDataset(d)
	other.MustAdd(0)
	other.MustAdd(1)
	if s.Satisfied(other) {
		t.Fatal("violating dataset satisfied")
	}
	foreign := domain.NewDataset(domain.MustLine("w", 4))
	foreign.MustAdd(0)
	if s.Satisfied(foreign) {
		t.Fatal("foreign-domain dataset satisfied")
	}
}

// Example 8.1: the marginal [A1, A2] is sparse w.r.t. the full-domain
// secret graph.
func TestExample81Sparse(t *testing.T) {
	d := paperDomain(t)
	m, err := NewMarginal(d, []int{0, 1})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(d.MustEncode(0, 0, 0))
	set, err := m.Set(ds)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	sparse, err := set.IsSparse(secgraph.NewComplete(d))
	if err != nil {
		t.Fatalf("IsSparse: %v", err)
	}
	if !sparse {
		t.Fatal("Example 8.1 marginal not sparse")
	}
}

// Example 8.2 / 8.3: the policy graph of the [A1,A2] marginal under
// full-domain secrets is the complete digraph on 4 queries plus (v+,v−):
// α = 4, ξ = 1, S(h,P) = 8 = 2·size(C).
func TestExample82PolicyGraph(t *testing.T) {
	d := paperDomain(t)
	m, err := NewMarginal(d, []int{0, 1})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(d.MustEncode(0, 0, 0))
	set, err := m.Set(ds)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.NewComplete(d)
	pg, err := BuildPolicyGraph(set, g)
	if err != nil {
		t.Fatalf("BuildPolicyGraph: %v", err)
	}
	if pg.NumQueries() != 4 {
		t.Fatalf("queries = %d, want 4", pg.NumQueries())
	}
	// Every ordered query pair is an edge; no v+/v− edges except (v+,v−).
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && !pg.HasEdge(i, j) {
				t.Fatalf("missing query edge (%d,%d)", i, j)
			}
		}
		if pg.HasEdge(pg.VPlus(), i) {
			t.Fatalf("unexpected edge v+→q%d", i)
		}
		if pg.HasEdge(i, pg.VMinus()) {
			t.Fatalf("unexpected edge q%d→v−", i)
		}
	}
	if !pg.HasEdge(pg.VPlus(), pg.VMinus()) {
		t.Fatal("missing (v+,v−) edge")
	}
	if got, want := pg.Alpha(), 4; got != want {
		t.Fatalf("α = %d, want %d", got, want)
	}
	if got, want := pg.Xi(), 1; got != want {
		t.Fatalf("ξ = %d, want %d", got, want)
	}
	if got, want := pg.SensitivityBound(), 8.0; got != want {
		t.Fatalf("S bound = %v, want %v", got, want)
	}
	// Theorem 8.4 closed form agrees.
	if got := m.FullDomainSensitivity(); got != 8 {
		t.Fatalf("Theorem 8.4 sensitivity = %v, want 8", got)
	}
}

// Theorem 8.4 against the exact Definition 4.1 oracle on a small instance:
// domain 2×2, marginal [A1], full-domain secrets, n=2.
func TestTheorem84MatchesOracle(t *testing.T) {
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 2},
	)
	m, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(d.MustEncode(0, 0))
	ref.MustAdd(d.MustEncode(1, 0))
	set, err := m.Set(ref) // A1 marginal = (1, 1)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.NewComplete(d)
	pol := policy.NewConstrained(g, set)
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	want := m.FullDomainSensitivity() // 2·size(C) = 4
	if got := o.Sensitivity(hist); got != want {
		t.Fatalf("oracle S(h,P) = %v, Theorem 8.4 says %v", got, want)
	}
	pg, err := BuildPolicyGraph(set, g)
	if err != nil {
		t.Fatalf("BuildPolicyGraph: %v", err)
	}
	if got := pg.SensitivityBound(); got != want {
		t.Fatalf("policy graph bound = %v, want %v", got, want)
	}
}

// Theorem 8.5 against the oracle: domain 2×2×2, disjoint marginals [A1] and
// [A2], attribute secrets, n=2.
func TestTheorem85MatchesOracle(t *testing.T) {
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 2},
		domain.Attribute{Name: "A3", Size: 2},
	)
	m1, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	m2, err := NewMarginal(d, []int{1})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	want, err := DisjointMarginalsAttributeSensitivity([]*Marginal{m1, m2})
	if err != nil {
		t.Fatalf("DisjointMarginalsAttributeSensitivity: %v", err)
	}
	if want != 4 { // 2·max(2,2)
		t.Fatalf("Theorem 8.5 sensitivity = %v, want 4", want)
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(d.MustEncode(0, 0, 0))
	ref.MustAdd(d.MustEncode(1, 1, 0))
	set, err := UnionSet([]*Marginal{m1, m2}, ref)
	if err != nil {
		t.Fatalf("UnionSet: %v", err)
	}
	g := secgraph.NewAttribute(d)
	sparse, err := set.IsSparse(g)
	if err != nil {
		t.Fatalf("IsSparse: %v", err)
	}
	if !sparse {
		t.Fatal("disjoint marginals not sparse w.r.t. G^attr")
	}
	pg, err := BuildPolicyGraph(set, g)
	if err != nil {
		t.Fatalf("BuildPolicyGraph: %v", err)
	}
	if got := pg.SensitivityBound(); got != want {
		t.Fatalf("policy graph bound = %v, want %v", got, want)
	}
	o, err := policy.NewEdgeMoveOracle(policy.NewConstrained(g, set), 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	if got := o.Sensitivity(hist); got != want {
		t.Fatalf("oracle S(h,P) = %v, Theorem 8.5 says %v", got, want)
	}
}

// Overlapping marginals break sparsity under full-domain secrets; the
// coarse Corollary 8.3 bound takes over.
func TestNonSparseFallsBackToCoarseBound(t *testing.T) {
	d := paperDomain(t)
	m1, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	m2, err := NewMarginal(d, []int{0, 1}) // shares A1 with m1
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(d.MustEncode(0, 0, 0))
	set, err := UnionSet([]*Marginal{m1, m2}, ds)
	if err != nil {
		t.Fatalf("UnionSet: %v", err)
	}
	g := secgraph.NewComplete(d)
	sparse, err := set.IsSparse(g)
	if err != nil {
		t.Fatalf("IsSparse: %v", err)
	}
	if sparse {
		t.Fatal("overlapping marginals reported sparse")
	}
	if _, err := BuildPolicyGraph(set, g); !errors.Is(err, ErrNotSparse) {
		t.Fatalf("BuildPolicyGraph error = %v, want ErrNotSparse", err)
	}
	sens, wasSparse, err := HistogramSensitivity(set, g)
	if err != nil {
		t.Fatalf("HistogramSensitivity: %v", err)
	}
	if wasSparse {
		t.Fatal("HistogramSensitivity reported sparse")
	}
	if want := set.CoarseSensitivityBound(); sens != want {
		t.Fatalf("fallback sensitivity = %v, want %v", sens, want)
	}
	if set.CoarseSensitivityBound() != 2*float64(set.Len()) {
		t.Fatalf("coarse bound = %v", set.CoarseSensitivityBound())
	}
	// DisjointMarginalsAttributeSensitivity rejects the overlap.
	if _, err := DisjointMarginalsAttributeSensitivity([]*Marginal{m1, m2}); err == nil {
		t.Error("overlapping marginals accepted by Theorem 8.5 helper")
	}
}

func TestMarginalValidation(t *testing.T) {
	d := paperDomain(t)
	if _, err := NewMarginal(d, nil); err == nil {
		t.Error("empty marginal accepted")
	}
	if _, err := NewMarginal(d, []int{0, 1, 2}); err == nil {
		t.Error("full marginal accepted (must be strict subset)")
	}
	if _, err := NewMarginal(d, []int{0, 0}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewMarginal(d, []int{7}); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	m, err := NewMarginal(d, []int{1, 2})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	if m.Size() != 6 {
		t.Fatalf("Size = %d, want 6", m.Size())
	}
	if len(m.Queries()) != 6 {
		t.Fatalf("Queries = %d, want 6", len(m.Queries()))
	}
	// Marginal queries partition the domain: each point satisfies exactly
	// one cell predicate.
	if err := d.Points(func(p domain.Point) bool {
		hits := 0
		for _, q := range m.Queries() {
			if q.Pred(p) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("point %d satisfies %d marginal cells", p, hits)
		}
		return true
	}); err != nil {
		t.Fatalf("Points: %v", err)
	}
}

func TestSetAccessorsAndCriticalPairs(t *testing.T) {
	d := domain.MustLine("v", 6)
	q := CountQuery{Name: "v<3", Pred: func(p domain.Point) bool { return p < 3 }}
	ds := domain.NewDataset(d)
	ds.MustAdd(1)
	set, err := FromDataset([]CountQuery{q}, ds)
	if err != nil {
		t.Fatalf("FromDataset: %v", err)
	}
	if set.Domain() != d {
		t.Fatal("Domain accessor wrong")
	}
	if set.Name() != "IQ{v<3}" {
		t.Fatalf("Name = %q", set.Name())
	}
	if set.Len() != 1 || len(set.Queries()) != 1 {
		t.Fatal("query accessors wrong")
	}
	// Critical pairs under the line graph: only the boundary edge (2,3).
	crit, err := CriticalPairs(q, secgraph.MustDistanceThreshold(d, 1))
	if err != nil {
		t.Fatalf("CriticalPairs: %v", err)
	}
	if len(crit) != 1 || crit[0] != [2]domain.Point{2, 3} {
		t.Fatalf("critical pairs = %v", crit)
	}
	if _, err := CriticalPairs(CountQuery{Name: "nil"}, secgraph.NewComplete(d)); err == nil {
		t.Error("nil predicate accepted")
	}
	// Marginal accessor.
	md := domain.MustNew(domain.Attribute{Name: "a", Size: 2}, domain.Attribute{Name: "b", Size: 2})
	m, err := NewMarginal(md, []int{1})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	if attrs := m.Attrs(); len(attrs) != 1 || attrs[0] != 1 {
		t.Fatalf("Attrs = %v", attrs)
	}
	// Marginal.Set rejects foreign datasets.
	foreign := domain.NewDataset(d)
	foreign.MustAdd(0)
	if _, err := m.Set(foreign); err == nil {
		t.Error("foreign dataset accepted by Marginal.Set")
	}
	// UnionSet rejects foreign datasets and empty input.
	if _, err := UnionSet([]*Marginal{m}, foreign); err == nil {
		t.Error("foreign dataset accepted by UnionSet")
	}
	if _, err := UnionSet(nil, foreign); err == nil {
		t.Error("empty UnionSet accepted")
	}
}

func TestRectangleSetForeignDataset(t *testing.T) {
	d := domain.MustGrid(5, 5)
	rc, err := NewRectangleConstraints(d, []Rect{{Lo: []int{0, 0}, Hi: []int{1, 1}}}, 1)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	foreign := domain.NewDataset(domain.MustLine("v", 4))
	foreign.MustAdd(0)
	if _, err := rc.Set(foreign); err == nil {
		t.Error("foreign dataset accepted by RectangleConstraints.Set")
	}
}

// TestCountSurvivesMidScanMutation forces the dataset's generation to
// change on every zero-copy scan (the predicate itself mutates the
// dataset): Count must neither loop forever nor read torn state — after the
// retry budget it counts over a private snapshot and terminates.
func TestCountSurvivesMidScanMutation(t *testing.T) {
	d := domain.MustLine("v", 8)
	ds := domain.NewDataset(d)
	for i := 0; i < 4; i++ {
		ds.MustAdd(domain.Point(i))
	}
	evil := CountQuery{Name: "mutates", Pred: func(p domain.Point) bool {
		ds.MustAdd(0) // advance the generation mid-scan
		return true
	}}
	got := evil.Count(ds)
	// Every scan sees at least the four original tuples; the exact value
	// depends on how many retries the growth forced, but it must cover the
	// snapshot it settled on.
	if got < 4 {
		t.Fatalf("Count = %v, want >= 4", got)
	}
	// A well-behaved query still counts exactly after the churn.
	all := CountQuery{Name: "all", Pred: func(domain.Point) bool { return true }}
	if n := all.Count(ds); n != float64(ds.Len()) {
		t.Fatalf("Count = %v, want %d", n, ds.Len())
	}
}
