package constraints

import (
	"errors"
	"fmt"
	"strings"

	"blowfish/internal/domain"
)

// Marginal identifies a marginal (cuboid) [C] ⊆ {A1,...,Ak} by attribute
// indexes (Definition 8.4).
type Marginal struct {
	dom   *domain.Domain
	attrs []int
}

// NewMarginal validates and constructs a marginal over the given attribute
// indexes. The paper's theorems require [C] ⊊ A (a strict subset); the full
// marginal is rejected.
func NewMarginal(d *domain.Domain, attrs []int) (*Marginal, error) {
	if len(attrs) == 0 {
		return nil, errors.New("constraints: marginal over no attributes")
	}
	if len(attrs) >= d.NumAttrs() {
		return nil, errors.New("constraints: marginal must be over a strict subset of attributes")
	}
	seen := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= d.NumAttrs() {
			return nil, fmt.Errorf("constraints: attribute index %d out of range [0,%d)", a, d.NumAttrs())
		}
		if seen[a] {
			return nil, fmt.Errorf("constraints: duplicate attribute index %d", a)
		}
		seen[a] = true
	}
	return &Marginal{dom: d, attrs: append([]int(nil), attrs...)}, nil
}

// Attrs returns the attribute indexes [C].
func (m *Marginal) Attrs() []int { return append([]int(nil), m.attrs...) }

// Size returns size(C) = Π |Ai| over the marginal's attributes: the number
// of cells (count queries) in the marginal.
func (m *Marginal) Size() int {
	size := 1
	for _, a := range m.attrs {
		size *= m.dom.Attr(a).Size
	}
	return size
}

// Queries expands the marginal into its count queries C^q: one conjunctive
// equality predicate per cell, enumerated in row-major order of the
// marginal attributes.
func (m *Marginal) Queries() []CountQuery {
	out := make([]CountQuery, 0, m.Size())
	vals := make([]int, len(m.attrs))
	var build func(i int)
	build = func(i int) {
		if i == len(m.attrs) {
			fixed := append([]int(nil), vals...)
			attrs := append([]int(nil), m.attrs...)
			var parts []string
			for j, a := range attrs {
				parts = append(parts, fmt.Sprintf("%s=%d", m.dom.Attr(a).Name, fixed[j]))
			}
			d := m.dom
			out = append(out, CountQuery{
				Name: strings.Join(parts, "∧"),
				Pred: func(p domain.Point) bool {
					for j, a := range attrs {
						if d.Value(p, a) != fixed[j] {
							return false
						}
					}
					return true
				},
			})
			return
		}
		for v := 0; v < m.dom.Attr(m.attrs[i]).Size; v++ {
			vals[i] = v
			build(i + 1)
		}
	}
	build(0)
	return out
}

// Set materializes the marginal constraint I_Q(C) with answers taken from
// ds.
func (m *Marginal) Set(ds *domain.Dataset) (*Set, error) {
	if !ds.Domain().Equal(m.dom) {
		return nil, errors.New("constraints: dataset is over a different domain")
	}
	return FromDataset(m.Queries(), ds)
}

// FullDomainSensitivity returns Theorem 8.4: for a policy with full-domain
// secrets and one known marginal C with [C] ⊊ A, S(h, P) = 2·size(C).
func (m *Marginal) FullDomainSensitivity() float64 {
	return 2 * float64(m.Size())
}

// DisjointMarginalsAttributeSensitivity returns Theorem 8.5: for attribute
// secrets G^attr and known pairwise-disjoint marginals C1..Cp (each a
// strict subset of attributes), S(h, P) = 2·max_i size(Ci). It validates
// disjointness.
func DisjointMarginalsAttributeSensitivity(marginals []*Marginal) (float64, error) {
	if len(marginals) == 0 {
		return 0, errors.New("constraints: no marginals")
	}
	d := marginals[0].dom
	used := make(map[int]bool)
	best := 0
	for _, m := range marginals {
		if !m.dom.Equal(d) {
			return 0, errors.New("constraints: marginals over different domains")
		}
		for _, a := range m.attrs {
			if used[a] {
				return 0, fmt.Errorf("constraints: attribute %d appears in two marginals", a)
			}
			used[a] = true
		}
		if s := m.Size(); s > best {
			best = s
		}
	}
	return 2 * float64(best), nil
}

// UnionSet materializes the union constraint set Q = C1^q ∪ ... ∪ Cp^q with
// answers from ds.
func UnionSet(marginals []*Marginal, ds *domain.Dataset) (*Set, error) {
	if len(marginals) == 0 {
		return nil, errors.New("constraints: no marginals")
	}
	var queries []CountQuery
	for _, m := range marginals {
		if !ds.Domain().Equal(m.dom) {
			return nil, errors.New("constraints: dataset is over a different domain")
		}
		queries = append(queries, m.Queries()...)
	}
	return FromDataset(queries, ds)
}
