package constraints

import (
	"errors"

	"blowfish/internal/domain"
	"blowfish/internal/graph"
	"blowfish/internal/secgraph"
)

// PolicyGraph is the directed graph G_P of Definition 8.3: one vertex per
// count query plus the special sources/sinks v+ and v−, with an edge
// (q, q') whenever some secret pair lowers q and lifts q'. Its longest
// simple cycle α(G_P) and longest simple v+→v− path ξ(G_P) bound the
// histogram sensitivity (Theorem 8.2).
type PolicyGraph struct {
	set *Set
	dir *graph.Directed
	// p is the number of count queries; vertex p is v+, vertex p+1 is v−.
	p int
}

// VPlus returns the index of the v+ vertex.
func (pg *PolicyGraph) VPlus() int { return pg.p }

// VMinus returns the index of the v− vertex.
func (pg *PolicyGraph) VMinus() int { return pg.p + 1 }

// NumQueries returns |Q|.
func (pg *PolicyGraph) NumQueries() int { return pg.p }

// HasEdge reports whether the directed edge (u, v) exists; query vertices
// are indexed by their position in the Set.
func (pg *PolicyGraph) HasEdge(u, v int) bool { return pg.dir.HasEdge(u, v) }

// BuildPolicyGraph constructs G_P for a sparse constraint set. It returns
// an error if Q is not sparse w.r.t. G (the construction is only defined
// for sparse knowledge) or if G's edges cannot be enumerated.
func BuildPolicyGraph(s *Set, g secgraph.Graph) (*PolicyGraph, error) {
	sparse, err := s.IsSparse(g)
	if err != nil {
		return nil, err
	}
	if !sparse {
		return nil, ErrNotSparse
	}
	p := len(s.queries)
	pg := &PolicyGraph{set: s, dir: graph.NewDirected(p + 2), p: p}
	// iv) the (v+, v−) edge is always present.
	if err := pg.dir.AddEdge(pg.VPlus(), pg.VMinus()); err != nil {
		return nil, err
	}
	addFor := func(x, y domain.Point) error {
		// Sparsity guarantees at most one lifted and one lowered query.
		lift, lower := -1, -1
		for qi, q := range s.queries {
			if q.Lifts(x, y) {
				lift = qi
			}
			if q.Lowers(x, y) {
				lower = qi
			}
		}
		switch {
		case lift >= 0 && lower >= 0:
			if lift != lower {
				return pg.dir.AddEdge(lower, lift)
			}
			// A pair lifting and lowering the same query is impossible for a
			// single predicate; defensive no-op.
			return nil
		case lift >= 0:
			return pg.dir.AddEdge(pg.VPlus(), lift)
		case lower >= 0:
			return pg.dir.AddEdge(lower, pg.VMinus())
		}
		return nil
	}
	var addErr error
	err = secgraph.Edges(g, func(x, y domain.Point) bool {
		if addErr = addFor(x, y); addErr != nil {
			return false
		}
		if addErr = addFor(y, x); addErr != nil {
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if addErr != nil {
		return nil, addErr
	}
	return pg, nil
}

// Alpha returns α(G_P): the length of the longest simple directed cycle,
// or 0 if acyclic. Exponential-time exact search (Theorem 8.1 makes this
// unavoidable in general); intended for the small query sets that arise in
// practice.
func (pg *PolicyGraph) Alpha() int {
	// v+ has no incoming edges and v− no outgoing ones, so cycles live
	// entirely among query vertices; the search handles that implicitly.
	return pg.dir.LongestSimpleCycle()
}

// Xi returns ξ(G_P): the length of the longest simple v+→v− path. The
// (v+,v−) edge guarantees ξ ≥ 1.
func (pg *PolicyGraph) Xi() int {
	return pg.dir.LongestSimplePath(pg.VPlus(), pg.VMinus())
}

// SensitivityBound returns the Theorem 8.2 bound on the complete histogram
// sensitivity: S(h, P) ≤ 2·max{α(G_P), ξ(G_P)}. Under the theorem's
// tightness condition the bound is exact; the practical scenarios of
// Section 8.2 (marginals, disjoint ranges) all satisfy it.
func (pg *PolicyGraph) SensitivityBound() float64 {
	a, x := pg.Alpha(), pg.Xi()
	m := a
	if x > m {
		m = x
	}
	return 2 * float64(m)
}

// CoarseSensitivityBound returns the Corollary 8.3 bound, computable
// without any graph search: S(h, P) ≤ 2·max{|Q|, 1}.
func (s *Set) CoarseSensitivityBound() float64 {
	q := len(s.queries)
	if q < 1 {
		q = 1
	}
	return 2 * float64(q)
}

// ErrNotSparse is returned when a policy-graph construction is requested
// for auxiliary knowledge that is not sparse w.r.t. the secret graph.
var ErrNotSparse = errors.New("constraints: auxiliary knowledge is not sparse w.r.t. the secret graph")

// HistogramSensitivity returns the best available bound on S(h, P) for the
// policy (T, G, I_Q): the policy-graph bound when Q is sparse w.r.t. G,
// otherwise the coarse Corollary 8.3 bound with sparse=false. Computing the
// exact sensitivity is NP-hard in general (Theorem 8.1).
func HistogramSensitivity(s *Set, g secgraph.Graph) (sens float64, sparse bool, err error) {
	pg, err := BuildPolicyGraph(s, g)
	if err == nil {
		return pg.SensitivityBound(), true, nil
	}
	if !errors.Is(err, ErrNotSparse) {
		return 0, false, err
	}
	return s.CoarseSensitivityBound(), false, nil
}
