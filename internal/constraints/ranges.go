package constraints

import (
	"errors"
	"fmt"

	"blowfish/internal/domain"
	"blowfish/internal/graph"
)

// Rect is an axis-aligned rectangle R = [l1,u1] × ... × [lk,uk] over a grid
// domain, with inclusive per-attribute bounds (Section 8.2.3). A range
// count query q_R counts the tuples falling inside R.
type Rect struct {
	Lo, Hi []int
}

// NewRect validates a rectangle against a domain.
func NewRect(d *domain.Domain, lo, hi []int) (Rect, error) {
	if len(lo) != d.NumAttrs() || len(hi) != d.NumAttrs() {
		return Rect{}, fmt.Errorf("constraints: rectangle dimension %d/%d, want %d", len(lo), len(hi), d.NumAttrs())
	}
	for i := range lo {
		if lo[i] < 0 || hi[i] >= d.Attr(i).Size || lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("constraints: invalid bounds [%d,%d] for attribute %q", lo[i], hi[i], d.Attr(i).Name)
		}
	}
	return Rect{Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...)}, nil
}

// IsPoint reports whether the rectangle is a point query (li = ui for all i).
func (r Rect) IsPoint() bool {
	for i := range r.Lo {
		if r.Lo[i] != r.Hi[i] {
			return false
		}
	}
	return true
}

// Query converts the rectangle into a count query over d.
func (r Rect) Query(d *domain.Domain) CountQuery {
	lo := append([]int(nil), r.Lo...)
	hi := append([]int(nil), r.Hi...)
	return CountQuery{
		Name: fmt.Sprintf("rect%v-%v", lo, hi),
		Pred: func(p domain.Point) bool {
			for i := range lo {
				v := d.Value(p, i)
				if v < lo[i] || v > hi[i] {
					return false
				}
			}
			return true
		},
	}
}

// Distance returns d(Ri, Rj) = min_{x∈Ri, y∈Rj} L1(x, y): the sum over
// attributes of the gaps between the intervals (0 when they overlap on
// every attribute).
func (r Rect) Distance(o Rect) float64 {
	var sum int
	for i := range r.Lo {
		switch {
		case r.Hi[i] < o.Lo[i]:
			sum += o.Lo[i] - r.Hi[i]
		case o.Hi[i] < r.Lo[i]:
			sum += r.Lo[i] - o.Hi[i]
		}
	}
	return float64(sum)
}

// disjoint reports whether two rectangles share no point.
func (r Rect) disjoint(o Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < o.Lo[i] || o.Hi[i] < r.Lo[i] {
			return true
		}
	}
	return false
}

// RectangleConstraints analyses a set of pairwise-disjoint range count
// constraints under distance-threshold secrets S^{d,θ} (Theorem 8.6).
type RectangleConstraints struct {
	dom   *domain.Domain
	rects []Rect
	theta float64
}

// NewRectangleConstraints validates the rectangles (pairwise disjoint, as
// the theorem requires) against the domain.
func NewRectangleConstraints(d *domain.Domain, rects []Rect, theta float64) (*RectangleConstraints, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("constraints: invalid theta %v", theta)
	}
	if len(rects) == 0 {
		return nil, errors.New("constraints: no rectangles")
	}
	for i := range rects {
		if _, err := NewRect(d, rects[i].Lo, rects[i].Hi); err != nil {
			return nil, fmt.Errorf("constraints: rectangle %d: %w", i, err)
		}
		for j := i + 1; j < len(rects); j++ {
			if !rects[i].disjoint(rects[j]) {
				return nil, fmt.Errorf("constraints: rectangles %d and %d overlap", i, j)
			}
		}
	}
	return &RectangleConstraints{dom: d, rects: append([]Rect(nil), rects...), theta: theta}, nil
}

// RectGraph builds G_R(Q): one vertex per rectangle, an edge (Ri, Rj)
// whenever d(Ri, Rj) ≤ θ.
func (rc *RectangleConstraints) RectGraph() *graph.Undirected {
	g := graph.NewUndirected(len(rc.rects))
	for i := range rc.rects {
		for j := i + 1; j < len(rc.rects); j++ {
			if rc.rects[i].Distance(rc.rects[j]) <= rc.theta {
				// AddEdge cannot fail for validated indexes.
				if err := g.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// MaxComp returns maxcomp(Q): the size of the largest connected component
// of the rectangle graph.
func (rc *RectangleConstraints) MaxComp() int { return rc.RectGraph().MaxComponentSize() }

// HasPointQuery reports whether any constraint is a point query; the
// Theorem 8.6 equality requires none.
func (rc *RectangleConstraints) HasPointQuery() bool {
	for _, r := range rc.rects {
		if r.IsPoint() {
			return true
		}
	}
	return false
}

// Sensitivity returns the Theorem 8.6 histogram sensitivity
// 2·(maxcomp(Q)+1); it is exact when no constraint is a point query and an
// upper bound otherwise (exact reports which).
func (rc *RectangleConstraints) Sensitivity() (sens float64, exact bool) {
	return 2 * float64(rc.MaxComp()+1), !rc.HasPointQuery()
}

// Set materializes the range constraints with answers from ds.
func (rc *RectangleConstraints) Set(ds *domain.Dataset) (*Set, error) {
	if !ds.Domain().Equal(rc.dom) {
		return nil, errors.New("constraints: dataset is over a different domain")
	}
	queries := make([]CountQuery, len(rc.rects))
	for i, r := range rc.rects {
		queries[i] = r.Query(rc.dom)
	}
	return FromDataset(queries, ds)
}
