package constraints

import (
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

func TestRectValidation(t *testing.T) {
	d := domain.MustGrid(8, 8)
	if _, err := NewRect(d, []int{0}, []int{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := NewRect(d, []int{3, 0}, []int{1, 1}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewRect(d, []int{0, 0}, []int{8, 1}); err == nil {
		t.Error("out-of-range bound accepted")
	}
	r, err := NewRect(d, []int{2, 2}, []int{2, 2})
	if err != nil {
		t.Fatalf("NewRect: %v", err)
	}
	if !r.IsPoint() {
		t.Error("point rect not detected")
	}
	r2, err := NewRect(d, []int{0, 0}, []int{1, 3})
	if err != nil {
		t.Fatalf("NewRect: %v", err)
	}
	if r2.IsPoint() {
		t.Error("box reported as point")
	}
}

func TestRectDistance(t *testing.T) {
	cases := []struct {
		a, b Rect
		want float64
	}{
		{Rect{[]int{0, 0}, []int{1, 1}}, Rect{[]int{3, 0}, []int{4, 1}}, 2}, // gap in x only
		{Rect{[]int{0, 0}, []int{1, 1}}, Rect{[]int{3, 4}, []int{4, 5}}, 5}, // gaps in both
		{Rect{[]int{0, 0}, []int{3, 3}}, Rect{[]int{2, 2}, []int{5, 5}}, 0}, // overlap
		{Rect{[]int{0, 0}, []int{1, 1}}, Rect{[]int{2, 0}, []int{3, 1}}, 1}, // adjacent
	}
	for i, c := range cases {
		if got := c.a.Distance(c.b); got != c.want {
			t.Errorf("case %d: Distance = %v, want %v", i, got, c.want)
		}
		if got := c.b.Distance(c.a); got != c.want {
			t.Errorf("case %d: Distance not symmetric", i)
		}
	}
}

func TestRectangleConstraintsValidation(t *testing.T) {
	d := domain.MustGrid(10, 10)
	r1 := Rect{[]int{0, 0}, []int{2, 2}}
	r2 := Rect{[]int{1, 1}, []int{4, 4}} // overlaps r1
	if _, err := NewRectangleConstraints(d, []Rect{r1, r2}, 1); err == nil {
		t.Error("overlapping rectangles accepted")
	}
	if _, err := NewRectangleConstraints(d, nil, 1); err == nil {
		t.Error("empty rectangle set accepted")
	}
	if _, err := NewRectangleConstraints(d, []Rect{r1}, 0); err == nil {
		t.Error("zero theta accepted")
	}
}

func TestTheorem86ComponentsAndSensitivity(t *testing.T) {
	d := domain.MustGrid(20, 20)
	// Three rectangles: A and B within distance θ, C far away.
	a := Rect{[]int{0, 0}, []int{2, 2}}
	b := Rect{[]int{4, 0}, []int{6, 2}}     // d(A,B) = 1
	c := Rect{[]int{15, 15}, []int{17, 17}} // far from both
	rc, err := NewRectangleConstraints(d, []Rect{a, b, c}, 2)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	g := rc.RectGraph()
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("rect graph edges wrong")
	}
	if got, want := rc.MaxComp(), 2; got != want {
		t.Fatalf("maxcomp = %d, want %d", got, want)
	}
	sens, exact := rc.Sensitivity()
	if sens != 6 { // 2·(2+1)
		t.Fatalf("sensitivity = %v, want 6", sens)
	}
	if !exact {
		t.Fatal("no point queries: sensitivity should be exact")
	}
	// With a point query the value becomes an upper bound.
	pt := Rect{[]int{10, 10}, []int{10, 10}}
	rc2, err := NewRectangleConstraints(d, []Rect{a, pt}, 2)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	if _, exact := rc2.Sensitivity(); exact {
		t.Fatal("point query: sensitivity should not be exact")
	}
}

// Theorem 8.6 against the Definition 4.1 oracle on a line domain:
// disconnected ranges give S = 2·(1+1) = 4.
func TestTheorem86MatchesOracleDisconnected(t *testing.T) {
	d := domain.MustLine("v", 8)
	r1 := Rect{[]int{1}, []int{2}}
	r2 := Rect{[]int{5}, []int{6}}
	rc, err := NewRectangleConstraints(d, []Rect{r1, r2}, 1)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	want, exact := rc.Sensitivity()
	if want != 4 || !exact {
		t.Fatalf("Theorem 8.6 sensitivity = %v (exact %v), want 4, true", want, exact)
	}
	// Reference dataset: one tuple in each range, one outside.
	ref := domain.NewDataset(d)
	ref.MustAdd(2)
	ref.MustAdd(5)
	ref.MustAdd(0)
	set, err := rc.Set(ref)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.MustDistanceThreshold(d, 1)
	sparse, err := set.IsSparse(g)
	if err != nil {
		t.Fatalf("IsSparse: %v", err)
	}
	if !sparse {
		t.Fatal("disjoint ranges not sparse w.r.t. line graph")
	}
	o, err := policy.NewEdgeMoveOracle(policy.NewConstrained(g, set), 3)
	if err != nil {
		t.Fatalf("NewEdgeMoveOracle: %v", err)
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	if got := o.Sensitivity(hist); got != want {
		t.Fatalf("edge-move oracle S(h,P) = %v, Theorem 8.6 says %v", got, want)
	}
}

// Fidelity note (see DESIGN.md): the literal Definition 4.1 admits neighbor
// pairs whose constraint-repairing moves run along non-secret pairs, and on
// this instance such a pair pushes the exact sensitivity to 6, beyond the
// Theorem 8.6 value of 4. The witness is D1 = {0,1,5} vs D2 = {2,6,4}:
// only the 5→4 change is a secret pair (θ=1); the 0→2 and 1→6 "teleports"
// restore the range counts.
func TestLiteralDefinitionExceedsTheorem86(t *testing.T) {
	d := domain.MustLine("v", 8)
	r1 := Rect{[]int{1}, []int{2}}
	r2 := Rect{[]int{5}, []int{6}}
	rc, err := NewRectangleConstraints(d, []Rect{r1, r2}, 1)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	bound, _ := rc.Sensitivity() // 4
	ref := domain.NewDataset(d)
	ref.MustAdd(2)
	ref.MustAdd(5)
	ref.MustAdd(0)
	set, err := rc.Set(ref)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.MustDistanceThreshold(d, 1)
	o, err := policy.NewOracle(policy.NewConstrained(g, set), 3)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	got := o.Sensitivity(hist)
	if got != 6 {
		t.Fatalf("literal oracle S(h,P) = %v, expected the documented value 6", got)
	}
	if got <= bound {
		t.Fatalf("expected the literal semantics (%v) to exceed the theorem bound (%v) on this instance", got, bound)
	}
	// The specific witness pair is a literal-semantics neighbor.
	d1, err := domain.FromPoints(d, []domain.Point{0, 1, 5})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	d2, err := domain.FromPoints(d, []domain.Point{2, 6, 4})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if !o.IsNeighbor(d1, d2) {
		t.Fatal("documented witness pair is not a literal neighbor")
	}
	edge, err := policy.NewEdgeMoveOracle(policy.NewConstrained(g, set), 3)
	if err != nil {
		t.Fatalf("NewEdgeMoveOracle: %v", err)
	}
	if edge.IsNeighbor(d1, d2) {
		t.Fatal("witness pair must be excluded under edge-move semantics")
	}
}

// Connected ranges (θ spans the gap): maxcomp = 2, S = 6, realized by a
// chain of three coordinated tuple moves.
func TestTheorem86MatchesOracleConnected(t *testing.T) {
	d := domain.MustLine("v", 8)
	r1 := Rect{[]int{1}, []int{2}}
	r2 := Rect{[]int{4}, []int{5}}
	rc, err := NewRectangleConstraints(d, []Rect{r1, r2}, 2)
	if err != nil {
		t.Fatalf("NewRectangleConstraints: %v", err)
	}
	want, exact := rc.Sensitivity()
	if want != 6 || !exact {
		t.Fatalf("Theorem 8.6 sensitivity = %v (exact %v), want 6, true", want, exact)
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(2)
	ref.MustAdd(5)
	ref.MustAdd(0)
	set, err := rc.Set(ref)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.MustDistanceThreshold(d, 2)
	o, err := policy.NewEdgeMoveOracle(policy.NewConstrained(g, set), 3)
	if err != nil {
		t.Fatalf("NewEdgeMoveOracle: %v", err)
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	if got := o.Sensitivity(hist); got != want {
		t.Fatalf("edge-move oracle S(h,P) = %v, Theorem 8.6 says %v", got, want)
	}
}
