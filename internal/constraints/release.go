package constraints

import (
	"blowfish/internal/domain"
	"blowfish/internal/infer"
	"blowfish/internal/mechanism"
	"blowfish/internal/noise"
	"blowfish/internal/secgraph"
)

// ReleaseHistogram releases the complete histogram of ds under the
// constrained policy (T, G, I_Q), calibrating Laplace noise to the policy
// graph bound of Theorem 8.2 (or the coarse Corollary 8.3 bound when Q is
// not sparse w.r.t. G). The returned sensitivity is the one used.
func ReleaseHistogram(s *Set, g secgraph.Graph, ds *domain.Dataset, eps float64, src *noise.Source) (released []float64, sens float64, err error) {
	sens, _, err = HistogramSensitivity(s, g)
	if err != nil {
		return nil, 0, err
	}
	truth, err := ds.Histogram()
	if err != nil {
		return nil, 0, err
	}
	m, err := mechanism.NewLaplace(eps, sens, src)
	if err != nil {
		return nil, 0, err
	}
	return m.Release(truth), sens, nil
}

// ConsistentWithConstraints post-processes a released histogram so that
// every constraint query evaluates exactly to its public answer, via least
// squares projection. Because the true histogram satisfies the constraints,
// projection can only reduce the L2 error — this is the constrained
// analogue of the Hay-style inference used elsewhere, and costs no budget.
func ConsistentWithConstraints(s *Set, released []float64) ([]float64, error) {
	rows := make([][]float64, s.Len())
	for qi, q := range s.queries {
		row := make([]float64, len(released))
		if err := s.dom.Points(func(p domain.Point) bool {
			if q.Pred(p) {
				row[p] = 1
			}
			return true
		}); err != nil {
			return nil, err
		}
		rows[qi] = row
	}
	return infer.ProjectLinear(released, rows, s.answers)
}
