package constraints

import (
	"math"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/secgraph"
)

func TestReleaseHistogramUnderConstraints(t *testing.T) {
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 3},
	)
	ds := domain.NewDataset(d)
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for r := 0; r < (a+1)*(b+1); r++ {
				ds.MustAdd(d.MustEncode(a, b))
			}
		}
	}
	m, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	set, err := m.Set(ds)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.NewComplete(d)
	rel, sens, err := ReleaseHistogram(set, g, ds, 1.0, noise.NewSource(3))
	if err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	if want := m.FullDomainSensitivity(); sens != want {
		t.Fatalf("sensitivity = %v, want %v", sens, want)
	}
	if len(rel) != int(d.Size()) {
		t.Fatalf("release length = %d, want %d", len(rel), d.Size())
	}
}

func TestConsistentWithConstraints(t *testing.T) {
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 3},
	)
	ds := domain.NewDataset(d)
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for r := 0; r < 3+2*a+b; r++ {
				ds.MustAdd(d.MustEncode(a, b))
			}
		}
	}
	m, err := NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	set, err := m.Set(ds)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	truth, err := ds.Histogram()
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	g := secgraph.NewComplete(d)
	src := noise.NewSource(7)
	const reps = 300
	var rawErr, consErr float64
	for r := 0; r < reps; r++ {
		rel, _, err := ReleaseHistogram(set, g, ds, 0.5, src)
		if err != nil {
			t.Fatalf("ReleaseHistogram: %v", err)
		}
		cons, err := ConsistentWithConstraints(set, rel)
		if err != nil {
			t.Fatalf("ConsistentWithConstraints: %v", err)
		}
		// Constraints hold exactly after projection.
		for qi, q := range set.Queries() {
			var got float64
			if err := d.Points(func(p domain.Point) bool {
				if q.Pred(p) {
					got += cons[p]
				}
				return true
			}); err != nil {
				t.Fatalf("Points: %v", err)
			}
			if math.Abs(got-set.Answers()[qi]) > 1e-6 {
				t.Fatalf("constraint %q violated after projection: %v vs %v", q.Name, got, set.Answers()[qi])
			}
		}
		for i := range truth {
			rawErr += (rel[i] - truth[i]) * (rel[i] - truth[i])
			consErr += (cons[i] - truth[i]) * (cons[i] - truth[i])
		}
	}
	if consErr > rawErr {
		t.Fatalf("projection increased error: %v > %v", consErr/reps, rawErr/reps)
	}
}
