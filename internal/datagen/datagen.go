// Package datagen generates the synthetic stand-ins for the paper's
// evaluation datasets. The module is fully offline, so each real dataset is
// replaced by a seeded generator that preserves the statistical properties
// the corresponding experiment exercises; DESIGN.md documents each
// substitution.
//
//   - Twitter   — 193,563 geo-points on the 400×300 western-USA grid:
//     metro-area Gaussian hotspots over a uniform background
//     (Figures 1a, 1f, 2c).
//   - Skin      — 245,057 RGB rows in [0,255]³: a tight skin-tone cluster
//     plus a broad non-skin cluster (Figures 1b, 1d, 1e).
//   - AdultCapitalLoss — 48,842 rows on an ordinal domain of 4357: ~95%
//     zeros with spikes around 1500–2500, the sparse regime of Figure 2b.
//   - SyntheticClusters — the paper's synthetic set: n points from (0,1)^d
//     around k random centers with Gaussian σ=0.2, discretized (Figure 1c).
package datagen

import (
	"fmt"
	"math"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
)

// TwitterN is the tweet count of the paper's twitter dataset.
const TwitterN = 193563

// SkinN is the row count of the UCI skin segmentation dataset.
const SkinN = 245057

// AdultN is the row count of the UCI adult dataset.
const AdultN = 48842

// AdultCapitalLossDomain is the capital-loss domain size used in Figure 2b.
const AdultCapitalLossDomain = 4357

// hotspot is a Gaussian population center on the twitter grid.
type hotspot struct {
	x, y   float64 // grid coordinates (0..399, 0..299)
	sigma  float64
	weight float64
}

// Western-USA metro areas mapped onto the 400×300 grid of 0.05° cells
// spanning 125W-110W × 30N-50N (x grows eastward, y grows northward).
var twitterHotspots = []hotspot{
	{x: 130, y: 60, sigma: 6, weight: 0.24}, // Los Angeles
	{x: 145, y: 45, sigma: 4, weight: 0.08}, // San Diego
	{x: 55, y: 115, sigma: 5, weight: 0.16}, // San Francisco Bay
	{x: 75, y: 105, sigma: 4, weight: 0.05}, // Sacramento
	{x: 370, y: 45, sigma: 5, weight: 0.09}, // Phoenix
	{x: 290, y: 75, sigma: 4, weight: 0.07}, // Las Vegas
	{x: 55, y: 265, sigma: 4, weight: 0.08}, // Portland
	{x: 60, y: 290, sigma: 5, weight: 0.10}, // Seattle
}

const twitterBackground = 0.13 // uniform fraction

// Twitter generates n points on the 400×300 location grid.
func Twitter(n int, src *noise.Source) (*domain.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: non-positive n %d", n)
	}
	d, err := domain.Grid(400, 300)
	if err != nil {
		return nil, err
	}
	ds := domain.NewDataset(d)
	for i := 0; i < n; i++ {
		var x, y int
		if src.Uniform() < twitterBackground {
			x = src.Intn(400)
			y = src.Intn(300)
		} else {
			h := pickHotspot(src)
			x = clampInt(int(h.x+src.Gaussian(h.sigma)+0.5), 0, 399)
			y = clampInt(int(h.y+src.Gaussian(h.sigma)+0.5), 0, 299)
		}
		p, err := d.Encode(x, y)
		if err != nil {
			return nil, err
		}
		if err := ds.Add(p); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

func pickHotspot(src *noise.Source) hotspot {
	u := src.Uniform()
	total := 0.0
	for _, h := range twitterHotspots {
		total += h.weight
	}
	u *= total
	for _, h := range twitterHotspots {
		u -= h.weight
		if u <= 0 {
			return h
		}
	}
	return twitterHotspots[len(twitterHotspots)-1]
}

// Skin generates n rows over the B×G×R domain [0,255]³: 21% skin-tone
// pixels in a tight cluster (R > G > B, as in face imagery) and 79%
// non-skin pixels in a broad cluster, matching the class balance and the
// clustered structure of the UCI dataset.
func Skin(n int, src *noise.Source) (*domain.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: non-positive n %d", n)
	}
	d, err := domain.New(
		domain.Attribute{Name: "B", Size: 256},
		domain.Attribute{Name: "G", Size: 256},
		domain.Attribute{Name: "R", Size: 256},
	)
	if err != nil {
		return nil, err
	}
	ds := domain.NewDataset(d)
	for i := 0; i < n; i++ {
		var b, g, r int
		if src.Uniform() < 0.21 {
			// Skin tones.
			b = clampInt(int(120+src.Gaussian(25)), 0, 255)
			g = clampInt(int(150+src.Gaussian(25)), 0, 255)
			r = clampInt(int(200+src.Gaussian(22)), 0, 255)
		} else {
			// Non-skin: broad background.
			b = clampInt(int(110+src.Gaussian(60)), 0, 255)
			g = clampInt(int(110+src.Gaussian(60)), 0, 255)
			r = clampInt(int(100+src.Gaussian(60)), 0, 255)
		}
		p, err := d.Encode(b, g, r)
		if err != nil {
			return nil, err
		}
		if err := ds.Add(p); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Subsample returns a uniform sample of approximately frac·n tuples (the
// skin10 / skin01 datasets of Figures 1b and 1d).
func Subsample(ds *domain.Dataset, frac float64, src *noise.Source) (*domain.Dataset, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("datagen: invalid sample fraction %v", frac)
	}
	target := int(float64(ds.Len())*frac + 0.5)
	if target < 1 {
		target = 1
	}
	perm := src.Perm(ds.Len())
	return ds.Sample(perm[:target])
}

// adultSpike is one of the capital-loss spike values observed in Census
// data (clustered between ~1400 and ~2600).
type adultSpike struct {
	value  int
	weight float64
}

var adultSpikes = []adultSpike{
	{1485, 0.06}, {1504, 0.03}, {1564, 0.03}, {1590, 0.08}, {1602, 0.11},
	{1628, 0.06}, {1668, 0.03}, {1672, 0.09}, {1719, 0.07}, {1740, 0.06},
	{1755, 0.03}, {1762, 0.03}, {1825, 0.03}, {1848, 0.05}, {1876, 0.03},
	{1887, 0.09}, {1902, 0.12}, {1977, 0.05}, {2001, 0.03}, {2042, 0.01},
	{2051, 0.01}, {2129, 0.01}, {2179, 0.01}, {2205, 0.01}, {2258, 0.01},
	{2282, 0.01}, {2339, 0.01}, {2377, 0.01}, {2415, 0.01}, {2457, 0.01},
	{2547, 0.005}, {2559, 0.005}, {2603, 0.005}, {2754, 0.003}, {3004, 0.002},
	{3683, 0.001}, {3770, 0.001}, {3900, 0.001}, {4356, 0.002},
}

// AdultCapitalLoss generates n rows over the ordinal capital-loss domain of
// size 4357: 95.3% zeros and the rest drawn from the spike distribution,
// reproducing the extreme sparsity (few distinct cumulative counts) that
// Figure 2b exploits.
func AdultCapitalLoss(n int, src *noise.Source) (*domain.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: non-positive n %d", n)
	}
	d, err := domain.Line("capital-loss", AdultCapitalLossDomain)
	if err != nil {
		return nil, err
	}
	totalW := 0.0
	for _, s := range adultSpikes {
		totalW += s.weight
	}
	ds := domain.NewDataset(d)
	for i := 0; i < n; i++ {
		v := 0
		if src.Uniform() >= 0.953 {
			u := src.Uniform() * totalW
			for _, s := range adultSpikes {
				u -= s.weight
				if u <= 0 {
					v = s.value
					break
				}
			}
			// Small jitter around the spike keeps distinct values plausible
			// without destroying sparsity.
			if src.Uniform() < 0.2 {
				v = clampInt(v+src.Intn(7)-3, 0, AdultCapitalLossDomain-1)
			}
		}
		if err := ds.Add(domain.Point(v)); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// SyntheticClusters generates the paper's synthetic k-means dataset: n
// points from (0,1)^dims around k uniformly random centers with Gaussian
// noise σ in every direction, discretized onto a grid of the given
// resolution per dimension (coordinates are grid indexes; one grid unit is
// 1/resolution in original units).
func SyntheticClusters(n, dims, k int, sigma float64, resolution int, src *noise.Source) (*domain.Dataset, error) {
	if n <= 0 || dims <= 0 || k <= 0 || resolution <= 1 {
		return nil, fmt.Errorf("datagen: invalid synthetic parameters n=%d dims=%d k=%d resolution=%d", n, dims, k, resolution)
	}
	if sigma < 0 || math.IsNaN(sigma) {
		return nil, fmt.Errorf("datagen: invalid sigma %v", sigma)
	}
	attrs := make([]domain.Attribute, dims)
	for i := range attrs {
		attrs[i] = domain.Attribute{Name: fmt.Sprintf("x%d", i), Size: resolution}
	}
	d, err := domain.New(attrs...)
	if err != nil {
		return nil, err
	}
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for j := range centers[c] {
			centers[c][j] = src.Uniform()
		}
	}
	ds := domain.NewDataset(d)
	vals := make([]int, dims)
	for i := 0; i < n; i++ {
		c := centers[src.Intn(k)]
		for j := 0; j < dims; j++ {
			v := c[j] + src.Gaussian(sigma)
			vals[j] = clampInt(int(v*float64(resolution)), 0, resolution-1)
		}
		p, err := d.Encode(vals...)
		if err != nil {
			return nil, err
		}
		if err := ds.Add(p); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
