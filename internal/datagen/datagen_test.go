package datagen

import (
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
)

func TestTwitterShape(t *testing.T) {
	ds, err := Twitter(20000, noise.NewSource(1))
	if err != nil {
		t.Fatalf("Twitter: %v", err)
	}
	if ds.Len() != 20000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	d := ds.Domain()
	if d.NumAttrs() != 2 || d.Attr(0).Size != 400 || d.Attr(1).Size != 300 {
		t.Fatalf("domain = %v", d)
	}
	// Hotspot structure: the most popular 1% of grid cells should hold far
	// more than 1% of the points (clustered, not uniform).
	h, err := ds.PartitionHistogram(mustGrid(t, d, []int{20, 20}))
	if err != nil {
		t.Fatalf("PartitionHistogram: %v", err)
	}
	top, total := topShare(h, len(h)/100+1)
	if top/total < 0.15 {
		t.Errorf("top-1%% block share = %v, want clustered (>0.15)", top/total)
	}
	// Determinism.
	ds2, err := Twitter(20000, noise.NewSource(1))
	if err != nil {
		t.Fatalf("Twitter: %v", err)
	}
	for i := 0; i < ds.Len(); i++ {
		if ds.At(i) != ds2.At(i) {
			t.Fatal("Twitter not deterministic for fixed seed")
		}
	}
}

func mustGrid(t *testing.T, d *domain.Domain, widths []int) domain.Partition {
	t.Helper()
	g, err := domain.NewUniformGrid(d, widths)
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	return g
}

func topShare(h []float64, k int) (top, total float64) {
	for _, v := range h {
		total += v
	}
	for i := 0; i < k; i++ {
		best := -1
		for j, v := range h {
			if best == -1 || v > h[best] {
				best = j
			}
			_ = v
		}
		top += h[best]
		h[best] = -1
	}
	return top, total
}

func TestSkinShape(t *testing.T) {
	ds, err := Skin(30000, noise.NewSource(2))
	if err != nil {
		t.Fatalf("Skin: %v", err)
	}
	if ds.Len() != 30000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	d := ds.Domain()
	if d.NumAttrs() != 3 || d.Size() != 256*256*256 {
		t.Fatalf("domain = %v", d)
	}
	// Class structure: mean R of the top-R quartile should exceed mean B
	// substantially (skin cluster has R > B).
	vecs := ds.Vectors()
	var rSum, bSum float64
	for _, v := range vecs {
		bSum += v[0]
		rSum += v[2]
	}
	if rSum <= bSum {
		t.Errorf("mean R %v not above mean B %v", rSum/30000, bSum/30000)
	}
}

func TestSubsample(t *testing.T) {
	ds, err := Skin(10000, noise.NewSource(3))
	if err != nil {
		t.Fatalf("Skin: %v", err)
	}
	sub, err := Subsample(ds, 0.1, noise.NewSource(4))
	if err != nil {
		t.Fatalf("Subsample: %v", err)
	}
	if sub.Len() != 1000 {
		t.Fatalf("10%% of 10000 = %d, want 1000", sub.Len())
	}
	if _, err := Subsample(ds, 0, noise.NewSource(1)); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := Subsample(ds, 1.5, noise.NewSource(1)); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestAdultCapitalLossSparsity(t *testing.T) {
	ds, err := AdultCapitalLoss(AdultN, noise.NewSource(5))
	if err != nil {
		t.Fatalf("AdultCapitalLoss: %v", err)
	}
	if ds.Len() != AdultN {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.Domain().Size() != AdultCapitalLossDomain {
		t.Fatalf("domain size = %d", ds.Domain().Size())
	}
	h, err := ds.Histogram()
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	zeroFrac := h[0] / float64(ds.Len())
	if zeroFrac < 0.94 || zeroFrac > 0.97 {
		t.Errorf("zero fraction = %v, want ~0.953", zeroFrac)
	}
	// Sparsity: distinct values << |T| (the p << |T| regime).
	distinct := ds.DistinctCount()
	if distinct > 400 {
		t.Errorf("distinct values = %d, want sparse (<400)", distinct)
	}
	// Spikes concentrated in [1400, 2700).
	var spikeMass, nonzero float64
	for v, c := range h {
		if v == 0 {
			continue
		}
		nonzero += c
		if v >= 1400 && v < 2700 {
			spikeMass += c
		}
	}
	if spikeMass/nonzero < 0.9 {
		t.Errorf("spike mass fraction = %v, want > 0.9", spikeMass/nonzero)
	}
}

func TestSyntheticClusters(t *testing.T) {
	ds, err := SyntheticClusters(1000, 4, 4, 0.2, 100, noise.NewSource(6))
	if err != nil {
		t.Fatalf("SyntheticClusters: %v", err)
	}
	if ds.Len() != 1000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	d := ds.Domain()
	if d.NumAttrs() != 4 || d.Attr(0).Size != 100 {
		t.Fatalf("domain = %v", d)
	}
	if _, err := SyntheticClusters(0, 4, 4, 0.2, 100, noise.NewSource(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SyntheticClusters(10, 4, 4, -1, 100, noise.NewSource(1)); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := SyntheticClusters(10, 4, 4, 0.2, 1, noise.NewSource(1)); err == nil {
		t.Error("resolution 1 accepted")
	}
}

func TestGeneratorsRejectNonPositiveN(t *testing.T) {
	src := noise.NewSource(1)
	if _, err := Twitter(0, src); err == nil {
		t.Error("Twitter n=0 accepted")
	}
	if _, err := Skin(-5, src); err == nil {
		t.Error("Skin n<0 accepted")
	}
	if _, err := AdultCapitalLoss(0, src); err == nil {
		t.Error("AdultCapitalLoss n=0 accepted")
	}
}
