package domain

import "testing"

// TestPointsReturnsACopy pins the accessor-leak fix: mutating the slice
// returned by Points must not alter the dataset (which would bypass domain
// validation).
func TestPointsReturnsACopy(t *testing.T) {
	d := MustLine("v", 8)
	ds := NewDataset(d)
	ds.MustAdd(3)
	ds.MustAdd(5)
	pts := ds.Points()
	pts[0] = Point(999) // out of domain; must not reach the dataset
	if got := ds.At(0); got != 3 {
		t.Fatalf("Points leaked internal storage: At(0) = %d after external write", got)
	}
	// The zero-copy variant aliases internal storage by contract.
	raw := ds.PointsUnsafe()
	if len(raw) != 2 || raw[0] != 3 || raw[1] != 5 {
		t.Fatalf("PointsUnsafe = %v", raw)
	}
}

// TestRemoveSwapSemantics pins Remove's O(1) contract: the last tuple takes
// the removed slot's identifier.
func TestRemoveSwapSemantics(t *testing.T) {
	d := MustLine("v", 8)
	ds := NewDataset(d)
	for _, p := range []Point{0, 1, 2, 3} {
		ds.MustAdd(p)
	}
	if err := ds.Remove(1); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ds.Len())
	}
	if got := ds.At(1); got != 3 {
		t.Fatalf("At(1) = %d, want the previously-last tuple 3", got)
	}
	if err := ds.Remove(5); err == nil {
		t.Fatal("out-of-range Remove accepted")
	}
	for ds.Len() > 0 {
		if err := ds.Remove(ds.Len() - 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Remove(0); err == nil {
		t.Fatal("Remove on empty dataset accepted")
	}
}

// TestGenerationAdvancesOnEveryMutation pins the staleness-detection hook
// derived caches rely on.
func TestGenerationAdvancesOnEveryMutation(t *testing.T) {
	d := MustLine("v", 8)
	ds := NewDataset(d)
	g0 := ds.Generation()
	ds.MustAdd(1)
	g1 := ds.Generation()
	if g1 == g0 {
		t.Fatal("Add did not advance the generation")
	}
	if err := ds.Set(0, 2); err != nil {
		t.Fatal(err)
	}
	g2 := ds.Generation()
	if g2 == g1 {
		t.Fatal("Set did not advance the generation")
	}
	if err := ds.Remove(0); err != nil {
		t.Fatal(err)
	}
	if ds.Generation() == g2 {
		t.Fatal("Remove did not advance the generation")
	}
	// Failed mutations leave the generation alone.
	before := ds.Generation()
	if err := ds.Add(Point(99)); err == nil {
		t.Fatal("out-of-domain Add accepted")
	}
	if ds.Generation() != before {
		t.Fatal("failed Add advanced the generation")
	}
}
