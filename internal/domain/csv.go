package domain

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the dataset: a header row of attribute names followed
// by one row of attribute values per tuple, in id order. The format round
// trips through ReadCSV and is the interchange path for loading real data
// into the library.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	d := ds.dom
	header := make([]string, d.NumAttrs())
	for i := range header {
		header[i] = d.Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("domain: writing CSV header: %w", err)
	}
	row := make([]string, d.NumAttrs())
	buf := make([]int, d.NumAttrs())
	for _, p := range ds.pts {
		buf = d.Decode(p, buf)
		for i, v := range buf {
			row[i] = strconv.Itoa(v)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("domain: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset over d from CSV: a header row whose column names
// must match d's attribute names in order, then one integer row per tuple.
// Values are validated against the attribute ranges.
func ReadCSV(d *Domain, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = d.NumAttrs()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("domain: reading CSV header: %w", err)
	}
	for i, name := range header {
		if name != d.Attr(i).Name {
			return nil, fmt.Errorf("domain: CSV column %d is %q, want %q", i, name, d.Attr(i).Name)
		}
	}
	ds := NewDataset(d)
	vals := make([]int, d.NumAttrs())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return ds, nil
		}
		if err != nil {
			return nil, fmt.Errorf("domain: reading CSV line %d: %w", line, err)
		}
		for i, field := range rec {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("domain: CSV line %d column %q: %w", line, d.Attr(i).Name, err)
			}
			vals[i] = v
		}
		p, err := d.Encode(vals...)
		if err != nil {
			return nil, fmt.Errorf("domain: CSV line %d: %w", line, err)
		}
		if err := ds.Add(p); err != nil {
			return nil, fmt.Errorf("domain: CSV line %d: %w", line, err)
		}
	}
}
