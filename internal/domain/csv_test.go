package domain

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := MustNew(Attribute{"age", 100}, Attribute{"income", 5})
	ds := NewDataset(d)
	src := []struct{ age, income int }{
		{25, 2}, {67, 4}, {0, 0}, {99, 1}, {25, 2},
	}
	for _, r := range src {
		ds.MustAdd(d.MustEncode(r.age, r.income))
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "age,income\n") {
		t.Fatalf("missing header: %q", out)
	}
	back, err := ReadCSV(d, strings.NewReader(out))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		if back.At(i) != ds.At(i) {
			t.Fatalf("tuple %d changed: %d vs %d", i, back.At(i), ds.At(i))
		}
	}
}

func TestCSVEmptyDataset(t *testing.T) {
	d := MustLine("v", 4)
	var buf bytes.Buffer
	if err := NewDataset(d).WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(d, &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty round trip produced %d tuples", back.Len())
	}
}

func TestReadCSVValidation(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 3})
	cases := []struct {
		name string
		csv  string
	}{
		{"wrong header name", "a,c\n1,1\n"},
		{"wrong column count", "a\n1\n"},
		{"non-integer value", "a,b\n1,x\n"},
		{"out of range value", "a,b\n1,7\n"},
		{"negative value", "a,b\n-1,0\n"},
		{"ragged row", "a,b\n1,2\n3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(d, strings.NewReader(c.csv)); err == nil {
				t.Fatalf("ReadCSV accepted %q", c.csv)
			}
		})
	}
}
