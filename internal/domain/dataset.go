package domain

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDomainMismatch is returned when a dataset (or partition) is defined
// over a different domain than the policy it is used with. It lives here so
// every layer — mechanisms, the release engine, the public facade — reports
// the one sentinel callers can match with errors.Is.
var ErrDomainMismatch = errors.New("blowfish: dataset domain differs from the policy's")

// Dataset is an ordered collection of tuples drawn from a single domain.
// The index of a tuple is its individual's identifier (t.id in the paper):
// Blowfish neighbors are obtained by changing the value of one identified
// tuple, never by insertion or deletion (the cardinality n is public,
// Section 2).
//
// A Dataset is not safe for concurrent mutation. Every mutation advances a
// generation counter so derived caches (engine.DatasetIndex) can detect
// staleness and rebuild instead of serving stale counts.
type Dataset struct {
	dom *Domain
	pts []Point
	gen uint64
}

// NewDataset creates an empty dataset over d.
func NewDataset(d *Domain) *Dataset {
	return &Dataset{dom: d}
}

// FromPoints creates a dataset from existing points, validating each.
func FromPoints(d *Domain, pts []Point) (*Dataset, error) {
	ds := &Dataset{dom: d, pts: make([]Point, 0, len(pts))}
	for i, p := range pts {
		if !d.Contains(p) {
			return nil, fmt.Errorf("domain: tuple %d: %w", i, ErrPointOutOfRange)
		}
		ds.pts = append(ds.pts, p)
	}
	return ds, nil
}

// Domain returns the dataset's domain.
func (ds *Dataset) Domain() *Domain { return ds.dom }

// Len returns the number of tuples n.
func (ds *Dataset) Len() int { return len(ds.pts) }

// Generation returns the mutation counter: it advances on every Add, Set
// and Remove, letting caches detect that their derived state is stale.
func (ds *Dataset) Generation() uint64 { return ds.gen }

// Add appends a tuple, assigning it the next identifier.
func (ds *Dataset) Add(p Point) error {
	if !ds.dom.Contains(p) {
		return ErrPointOutOfRange
	}
	ds.pts = append(ds.pts, p)
	ds.gen++
	return nil
}

// MustAdd is Add but panics on error.
func (ds *Dataset) MustAdd(p Point) {
	if err := ds.Add(p); err != nil {
		panic(err)
	}
}

// At returns the value of tuple i.
func (ds *Dataset) At(i int) Point { return ds.pts[i] }

// Set replaces the value of tuple i, producing the "change one tuple"
// transition that defines neighboring databases.
func (ds *Dataset) Set(i int, p Point) error {
	if i < 0 || i >= len(ds.pts) {
		return fmt.Errorf("domain: tuple index %d out of range [0,%d)", i, len(ds.pts))
	}
	if !ds.dom.Contains(p) {
		return ErrPointOutOfRange
	}
	ds.pts[i] = p
	ds.gen++
	return nil
}

// Remove deletes tuple i in O(1) by moving the last tuple into its slot:
// the removed individual's identifier is recycled to the previously-last
// individual. Workloads that rely on stable identifiers (parallel
// composition subsets) must not interleave Remove with id-based grouping.
func (ds *Dataset) Remove(i int) error {
	if i < 0 || i >= len(ds.pts) {
		return fmt.Errorf("domain: tuple index %d out of range [0,%d)", i, len(ds.pts))
	}
	last := len(ds.pts) - 1
	ds.pts[i] = ds.pts[last]
	ds.pts = ds.pts[:last]
	ds.gen++
	return nil
}

// Clone returns a deep copy sharing the domain.
func (ds *Dataset) Clone() *Dataset {
	return &Dataset{dom: ds.dom, pts: append([]Point(nil), ds.pts...)}
}

// Points returns a copy of the tuple slice: mutating the result never
// bypasses domain validation. Hot paths that only read may use PointsUnsafe
// to avoid the allocation.
func (ds *Dataset) Points() []Point { return append([]Point(nil), ds.pts...) }

// PointsUnsafe returns the dataset's internal tuple slice without copying.
// The caller must treat it as read-only — writing through it bypasses
// domain validation and the generation counter — and must not retain it
// across mutations (Add may reallocate, Remove shrinks it).
func (ds *Dataset) PointsUnsafe() []Point { return ds.pts }

// Subset returns the dataset restricted to the given tuple ids (D ∩ S in the
// parallel composition theorems). Ids must be valid and are not required to
// be sorted.
func (ds *Dataset) Subset(ids []int) (*Dataset, error) {
	out := &Dataset{dom: ds.dom, pts: make([]Point, 0, len(ids))}
	for _, id := range ids {
		if id < 0 || id >= len(ds.pts) {
			return nil, fmt.Errorf("domain: tuple id %d out of range [0,%d)", id, len(ds.pts))
		}
		out.pts = append(out.pts, ds.pts[id])
	}
	return out, nil
}

// Sample returns a new dataset with the tuples at the given indexes; it is
// the subsampling primitive behind skin10/skin01.
func (ds *Dataset) Sample(idx []int) (*Dataset, error) { return ds.Subset(idx) }

// Histogram counts occurrences of every domain value: the complete
// histogram query h(D) of Section 2. Only available for materializable
// domains.
func (ds *Dataset) Histogram() ([]float64, error) {
	if ds.dom.Size() > MaxMaterializedSize {
		return nil, ErrDomainTooLarge
	}
	h := make([]float64, ds.dom.Size())
	for _, p := range ds.pts {
		h[p]++
	}
	return h, nil
}

// PartitionHistogram counts tuples per partition block: the histogram query
// h_P of Section 2.
func (ds *Dataset) PartitionHistogram(part Partition) ([]float64, error) {
	if !ds.dom.Equal(part.Domain()) {
		return nil, errors.New("domain: partition is over a different domain")
	}
	h := make([]float64, part.NumBlocks())
	for _, p := range ds.pts {
		h[part.Block(p)]++
	}
	return h, nil
}

// AttrHistogram counts tuples per value of a single attribute (a 1-dim
// marginal), e.g. the twitter latitude projection of Figure 2(c).
func (ds *Dataset) AttrHistogram(attr int) ([]float64, error) {
	if attr < 0 || attr >= ds.dom.NumAttrs() {
		return nil, fmt.Errorf("domain: attribute index %d out of range", attr)
	}
	h := make([]float64, ds.dom.Attr(attr).Size)
	for _, p := range ds.pts {
		h[ds.dom.Value(p, attr)]++
	}
	return h, nil
}

// Project returns a new one-dimensional dataset holding the values of a
// single attribute of every tuple.
func (ds *Dataset) Project(attr int) (*Dataset, error) {
	if attr < 0 || attr >= ds.dom.NumAttrs() {
		return nil, fmt.Errorf("domain: attribute index %d out of range", attr)
	}
	a := ds.dom.Attr(attr)
	ld, err := Line(a.Name, a.Size)
	if err != nil {
		return nil, err
	}
	out := &Dataset{dom: ld, pts: make([]Point, len(ds.pts))}
	for i, p := range ds.pts {
		out.pts[i] = Point(ds.dom.Value(p, attr))
	}
	return out, nil
}

// Vectors decodes every tuple into a float64 coordinate vector (attribute
// indexes as coordinates). This is the representation consumed by k-means.
func (ds *Dataset) Vectors() [][]float64 {
	m := ds.dom.NumAttrs()
	flat := make([]float64, len(ds.pts)*m)
	out := make([][]float64, len(ds.pts))
	buf := make([]int, m)
	for i, p := range ds.pts {
		buf = ds.dom.Decode(p, buf)
		row := flat[i*m : (i+1)*m : (i+1)*m]
		for j, v := range buf {
			row[j] = float64(v)
		}
		out[i] = row
	}
	return out
}

// DistinctCount returns the number of distinct values present in the
// dataset; together with Len it characterizes sparsity (the p << |T| regime
// where the ordered mechanism's constrained inference shines, Sec. 7.1).
func (ds *Dataset) DistinctCount() int {
	if len(ds.pts) == 0 {
		return 0
	}
	sorted := append([]Point(nil), ds.pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			n++
		}
	}
	return n
}

// CumulativeHistogram returns the cumulative counts S_T(D) of Definition
// 7.1 over a one-dimensional ordered domain: out[i] = #tuples with value
// <= i.
func (ds *Dataset) CumulativeHistogram() ([]float64, error) {
	if ds.dom.NumAttrs() != 1 {
		return nil, errors.New("domain: cumulative histogram requires a one-dimensional ordered domain")
	}
	h, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(h); i++ {
		h[i] += h[i-1]
	}
	return h, nil
}

// RangeCount returns the number of tuples with value in [lo, hi] over a
// one-dimensional domain (the range query q[x_lo, x_hi] of Definition 7.2).
func (ds *Dataset) RangeCount(lo, hi Point) (float64, error) {
	if ds.dom.NumAttrs() != 1 {
		return 0, errors.New("domain: range count requires a one-dimensional ordered domain")
	}
	if lo > hi || !ds.dom.Contains(lo) || !ds.dom.Contains(hi) {
		return 0, fmt.Errorf("domain: invalid range [%d,%d]", lo, hi)
	}
	var n float64
	for _, p := range ds.pts {
		if p >= lo && p <= hi {
			n++
		}
	}
	return n, nil
}
