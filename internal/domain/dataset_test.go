package domain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	d := MustLine("v", 6)
	ds := NewDataset(d)
	for _, v := range []int{0, 0, 1, 3, 3, 3, 5} {
		ds.MustAdd(Point(v))
	}
	return ds
}

func TestDatasetBasics(t *testing.T) {
	ds := smallDataset(t)
	if got, want := ds.Len(), 7; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := ds.At(3), Point(3); got != want {
		t.Fatalf("At(3) = %d, want %d", got, want)
	}
	if err := ds.Add(Point(99)); err == nil {
		t.Error("Add out-of-range point succeeded")
	}
	if err := ds.Set(0, Point(2)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if got := ds.At(0); got != Point(2) {
		t.Fatalf("after Set, At(0) = %d, want 2", got)
	}
	if err := ds.Set(-1, Point(0)); err == nil {
		t.Error("Set with negative index succeeded")
	}
	if err := ds.Set(0, Point(-1)); err == nil {
		t.Error("Set with invalid point succeeded")
	}
}

func TestFromPointsValidates(t *testing.T) {
	d := MustLine("v", 4)
	if _, err := FromPoints(d, []Point{0, 1, 7}); err == nil {
		t.Fatal("FromPoints with invalid point succeeded")
	}
	ds, err := FromPoints(d, []Point{0, 3, 3})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ds.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	ds := smallDataset(t)
	cl := ds.Clone()
	if err := cl.Set(0, Point(5)); err != nil {
		t.Fatalf("Set on clone: %v", err)
	}
	if ds.At(0) == Point(5) {
		t.Fatal("mutating clone changed original")
	}
}

func TestHistogram(t *testing.T) {
	ds := smallDataset(t)
	h, err := ds.Histogram()
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	want := []float64{2, 1, 0, 3, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("Histogram len = %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestCumulativeHistogram(t *testing.T) {
	ds := smallDataset(t)
	s, err := ds.CumulativeHistogram()
	if err != nil {
		t.Fatalf("CumulativeHistogram: %v", err)
	}
	want := []float64{2, 3, 3, 6, 6, 7}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("cumulative[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	// Last cumulative count must equal n.
	if s[len(s)-1] != float64(ds.Len()) {
		t.Fatalf("last cumulative = %v, want %d", s[len(s)-1], ds.Len())
	}

	// Cumulative histogram rejects multi-dimensional domains.
	g := MustGrid(3, 3)
	gds := NewDataset(g)
	gds.MustAdd(g.MustEncode(1, 1))
	if _, err := gds.CumulativeHistogram(); err == nil {
		t.Fatal("CumulativeHistogram on 2-D domain succeeded")
	}
}

func TestRangeCountAgainstCumulative(t *testing.T) {
	d := MustLine("v", 50)
	rng := rand.New(rand.NewSource(7))
	ds := NewDataset(d)
	for i := 0; i < 500; i++ {
		ds.MustAdd(Point(rng.Int63n(d.Size())))
	}
	s, err := ds.CumulativeHistogram()
	if err != nil {
		t.Fatalf("CumulativeHistogram: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := Point(rng.Int63n(d.Size()))
		hi := Point(rng.Int63n(d.Size()))
		if lo > hi {
			lo, hi = hi, lo
		}
		got, err := ds.RangeCount(lo, hi)
		if err != nil {
			t.Fatalf("RangeCount: %v", err)
		}
		want := s[hi]
		if lo > 0 {
			want -= s[lo-1]
		}
		if got != want {
			t.Fatalf("RangeCount(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
	if _, err := ds.RangeCount(5, 2); err == nil {
		t.Error("RangeCount with inverted range succeeded")
	}
}

func TestPartitionHistogram(t *testing.T) {
	d := MustGrid(6, 4)
	ds := NewDataset(d)
	// One tuple in each domain cell.
	if err := d.Points(func(p Point) bool { ds.MustAdd(p); return true }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	grid, err := NewUniformGrid(d, []int{3, 2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if got, want := grid.NumBlocks(), 4; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	h, err := ds.PartitionHistogram(grid)
	if err != nil {
		t.Fatalf("PartitionHistogram: %v", err)
	}
	for i, c := range h {
		if c != 6 { // 3x2 cells
			t.Fatalf("block %d count = %v, want 6", i, c)
		}
	}
	other := MustGrid(5, 5)
	op, err := NewUniformGrid(other, []int{1, 1})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if _, err := ds.PartitionHistogram(op); err == nil {
		t.Error("PartitionHistogram with foreign partition succeeded")
	}
}

func TestAttrHistogramAndProject(t *testing.T) {
	d := MustGrid(4, 3)
	ds := NewDataset(d)
	ds.MustAdd(d.MustEncode(0, 0))
	ds.MustAdd(d.MustEncode(0, 2))
	ds.MustAdd(d.MustEncode(3, 1))
	h, err := ds.AttrHistogram(0)
	if err != nil {
		t.Fatalf("AttrHistogram: %v", err)
	}
	if h[0] != 2 || h[3] != 1 || h[1] != 0 {
		t.Fatalf("AttrHistogram(0) = %v", h)
	}
	proj, err := ds.Project(1)
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if proj.Domain().NumAttrs() != 1 || proj.Domain().Size() != 3 {
		t.Fatalf("projected domain = %v", proj.Domain())
	}
	ph, err := proj.Histogram()
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if ph[0] != 1 || ph[1] != 1 || ph[2] != 1 {
		t.Fatalf("projected histogram = %v", ph)
	}
	if _, err := ds.AttrHistogram(5); err == nil {
		t.Error("AttrHistogram with bad index succeeded")
	}
	if _, err := ds.Project(-1); err == nil {
		t.Error("Project with bad index succeeded")
	}
}

func TestSubset(t *testing.T) {
	ds := smallDataset(t)
	sub, err := ds.Subset([]int{0, 2, 4})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.Len() != 3 || sub.At(0) != ds.At(0) || sub.At(1) != ds.At(2) || sub.At(2) != ds.At(4) {
		t.Fatalf("Subset contents wrong: %v", sub.Points())
	}
	if _, err := ds.Subset([]int{99}); err == nil {
		t.Error("Subset with bad id succeeded")
	}
}

func TestVectors(t *testing.T) {
	d := MustGrid(4, 3)
	ds := NewDataset(d)
	ds.MustAdd(d.MustEncode(2, 1))
	ds.MustAdd(d.MustEncode(0, 2))
	vs := ds.Vectors()
	if len(vs) != 2 {
		t.Fatalf("Vectors len = %d, want 2", len(vs))
	}
	if vs[0][0] != 2 || vs[0][1] != 1 || vs[1][0] != 0 || vs[1][1] != 2 {
		t.Fatalf("Vectors = %v", vs)
	}
}

func TestDistinctCount(t *testing.T) {
	ds := smallDataset(t)
	if got, want := ds.DistinctCount(), 4; got != want {
		t.Fatalf("DistinctCount = %d, want %d", got, want)
	}
	empty := NewDataset(MustLine("v", 3))
	if got := empty.DistinctCount(); got != 0 {
		t.Fatalf("DistinctCount on empty = %d, want 0", got)
	}
}

// Property: histogram sums to n and cumulative histogram is monotone with
// last element n, for random datasets.
func TestHistogramInvariantsQuick(t *testing.T) {
	d := MustLine("v", 20)
	f := func(raw []uint8) bool {
		ds := NewDataset(d)
		for _, r := range raw {
			ds.MustAdd(Point(int64(r) % d.Size()))
		}
		h, err := ds.Histogram()
		if err != nil {
			return false
		}
		var sum float64
		for _, c := range h {
			if c < 0 {
				return false
			}
			sum += c
		}
		if sum != float64(ds.Len()) {
			return false
		}
		s, err := ds.CumulativeHistogram()
		if err != nil {
			return false
		}
		prev := 0.0
		for _, c := range s {
			if c < prev {
				return false
			}
			prev = c
		}
		return s[len(s)-1] == float64(ds.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
