// Package domain models the discrete multi-dimensional data domains that
// Blowfish policies are defined over.
//
// A domain T = A1 x A2 x ... x Am is the cross product of m categorical
// attributes (Section 2 of the paper). Values in the domain are represented
// compactly as Point indexes in [0, Size()) using mixed-radix encoding, so
// very large domains (e.g. the 256^3 RGB domain of the skin-segmentation
// experiments) never need to be materialized.
package domain

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Point is the dense index of a domain value. Points are only meaningful
// relative to the Domain that produced them.
type Point int64

// Attribute is one categorical dimension of a domain. Values of the
// attribute are the integers 0..Size-1; for ordinal attributes the integer
// order is the attribute order (used by L1 distances and ordered-domain
// mechanisms).
type Attribute struct {
	// Name identifies the attribute in diagnostics and query predicates.
	Name string
	// Size is the number of distinct attribute values; must be >= 1.
	Size int
}

// Domain is an immutable cross product of attributes.
//
// The zero value is not usable; construct domains with New, Line or Grid.
type Domain struct {
	attrs []Attribute
	// stride[i] is the multiplier of attribute i in the mixed-radix
	// encoding; attribute 0 is the most significant.
	stride []int64
	size   int64
}

// MaxMaterializedSize bounds the domain sizes for which the library will
// allocate per-value structures (full histograms, explicit graphs). Larger
// domains remain usable through implicit representations.
const MaxMaterializedSize = 1 << 26

var (
	// ErrDomainTooLarge is returned by operations that would materialize a
	// per-value structure over a domain larger than MaxMaterializedSize.
	ErrDomainTooLarge = errors.New("domain: domain too large to materialize")
	// ErrPointOutOfRange is returned when a Point does not belong to the
	// domain it is used with.
	ErrPointOutOfRange = errors.New("domain: point out of range")
)

// New constructs a domain from the given attributes. It returns an error if
// no attributes are supplied, an attribute has a non-positive size, names
// collide, or the total size overflows int64.
func New(attrs ...Attribute) (*Domain, error) {
	if len(attrs) == 0 {
		return nil, errors.New("domain: need at least one attribute")
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Size <= 0 {
			return nil, fmt.Errorf("domain: attribute %q has non-positive size %d", a.Name, a.Size)
		}
		if a.Name == "" {
			return nil, errors.New("domain: attribute with empty name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("domain: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	d := &Domain{
		attrs:  append([]Attribute(nil), attrs...),
		stride: make([]int64, len(attrs)),
	}
	size := int64(1)
	for i := len(attrs) - 1; i >= 0; i-- {
		d.stride[i] = size
		s := int64(attrs[i].Size)
		if size > math.MaxInt64/s {
			return nil, fmt.Errorf("domain: size overflow at attribute %q", attrs[i].Name)
		}
		size *= s
	}
	d.size = size
	return d, nil
}

// MustNew is New but panics on error. Intended for statically known domains
// in tests and examples.
func MustNew(attrs ...Attribute) *Domain {
	d, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Line constructs a one-dimensional totally ordered domain of the given
// size, as used by the cumulative histogram and range query workloads.
func Line(name string, size int) (*Domain, error) {
	return New(Attribute{Name: name, Size: size})
}

// MustLine is Line but panics on error.
func MustLine(name string, size int) *Domain {
	d, err := Line(name, size)
	if err != nil {
		panic(err)
	}
	return d
}

// Grid constructs a two-dimensional domain of the given width and height,
// e.g. the 400x300 location grid of the twitter experiments. Attribute 0 is
// "x" (width), attribute 1 is "y" (height).
func Grid(width, height int) (*Domain, error) {
	return New(Attribute{Name: "x", Size: width}, Attribute{Name: "y", Size: height})
}

// MustGrid is Grid but panics on error.
func MustGrid(width, height int) *Domain {
	d, err := Grid(width, height)
	if err != nil {
		panic(err)
	}
	return d
}

// Size returns the number of values in the domain, |T|.
func (d *Domain) Size() int64 { return d.size }

// NumAttrs returns the number of attributes m.
func (d *Domain) NumAttrs() int { return len(d.attrs) }

// Attr returns the i-th attribute.
func (d *Domain) Attr(i int) Attribute { return d.attrs[i] }

// Attrs returns a copy of the attribute list.
func (d *Domain) Attrs() []Attribute { return append([]Attribute(nil), d.attrs...) }

// AttrIndex returns the index of the attribute with the given name, or -1.
func (d *Domain) AttrIndex(name string) int {
	for i, a := range d.attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Contains reports whether p is a valid point of the domain.
func (d *Domain) Contains(p Point) bool { return p >= 0 && int64(p) < d.size }

// Encode maps per-attribute values to a Point. It returns an error if the
// number of values or any value is out of range.
func (d *Domain) Encode(vals ...int) (Point, error) {
	if len(vals) != len(d.attrs) {
		return 0, fmt.Errorf("domain: Encode got %d values for %d attributes", len(vals), len(d.attrs))
	}
	var p int64
	for i, v := range vals {
		if v < 0 || v >= d.attrs[i].Size {
			return 0, fmt.Errorf("domain: attribute %q value %d out of range [0,%d)", d.attrs[i].Name, v, d.attrs[i].Size)
		}
		p += int64(v) * d.stride[i]
	}
	return Point(p), nil
}

// MustEncode is Encode but panics on error.
func (d *Domain) MustEncode(vals ...int) Point {
	p, err := d.Encode(vals...)
	if err != nil {
		panic(err)
	}
	return p
}

// Decode expands a Point into per-attribute values. If dst has capacity it
// is reused, otherwise a new slice is allocated. Decode panics if p is not
// in the domain; use Contains to validate untrusted points.
func (d *Domain) Decode(p Point, dst []int) []int {
	if !d.Contains(p) {
		panic(fmt.Sprintf("domain: Decode of out-of-range point %d (size %d)", p, d.size))
	}
	if cap(dst) < len(d.attrs) {
		dst = make([]int, len(d.attrs))
	}
	dst = dst[:len(d.attrs)]
	rem := int64(p)
	for i := range d.attrs {
		dst[i] = int(rem / d.stride[i])
		rem %= d.stride[i]
	}
	return dst
}

// Value returns the value of attribute i at point p without decoding the
// full tuple.
func (d *Domain) Value(p Point, i int) int {
	if !d.Contains(p) {
		panic(fmt.Sprintf("domain: Value of out-of-range point %d (size %d)", p, d.size))
	}
	return int(int64(p) / d.stride[i] % int64(d.attrs[i].Size))
}

// With returns the point obtained from p by setting attribute i to v.
func (d *Domain) With(p Point, i, v int) (Point, error) {
	if !d.Contains(p) {
		return 0, ErrPointOutOfRange
	}
	if v < 0 || v >= d.attrs[i].Size {
		return 0, fmt.Errorf("domain: attribute %q value %d out of range [0,%d)", d.attrs[i].Name, v, d.attrs[i].Size)
	}
	old := int64(p) / d.stride[i] % int64(d.attrs[i].Size)
	return p + Point((int64(v)-old)*d.stride[i]), nil
}

// L1 returns the Manhattan distance between two points: the sum over
// attributes of absolute index differences. This is the metric d(.,.) used
// by the distance-threshold secret specification S^{d,θ}.
func (d *Domain) L1(p, q Point) float64 {
	var sum int64
	pp, qq := int64(p), int64(q)
	for i := range d.attrs {
		s := int64(d.attrs[i].Size)
		pv := pp / d.stride[i] % s
		qv := qq / d.stride[i] % s
		if pv > qv {
			sum += pv - qv
		} else {
			sum += qv - pv
		}
	}
	return float64(sum)
}

// LInf returns the Chebyshev distance between two points.
func (d *Domain) LInf(p, q Point) float64 {
	var best int64
	pp, qq := int64(p), int64(q)
	for i := range d.attrs {
		s := int64(d.attrs[i].Size)
		pv := pp / d.stride[i] % s
		qv := qq / d.stride[i] % s
		diff := pv - qv
		if diff < 0 {
			diff = -diff
		}
		if diff > best {
			best = diff
		}
	}
	return float64(best)
}

// HammingAttrs returns the number of attributes on which p and q differ —
// the hop distance of the attribute secret graph G^attr.
func (d *Domain) HammingAttrs(p, q Point) int {
	n := 0
	pp, qq := int64(p), int64(q)
	for i := range d.attrs {
		s := int64(d.attrs[i].Size)
		if pp/d.stride[i]%s != qq/d.stride[i]%s {
			n++
		}
	}
	return n
}

// Diameter returns the largest L1 distance between any two domain points:
// d(T) = sum_i (|Ai| - 1). Used by the k-means qsum sensitivity (Sec. 6).
func (d *Domain) Diameter() float64 {
	var sum int64
	for _, a := range d.attrs {
		sum += int64(a.Size - 1)
	}
	return float64(sum)
}

// MaxAttrRange returns max_i (|Ai| - 1), the largest single-attribute
// distance; the qsum sensitivity under G^attr is 2*MaxAttrRange (Lemma 6.1).
func (d *Domain) MaxAttrRange() float64 {
	best := 0
	for _, a := range d.attrs {
		if a.Size-1 > best {
			best = a.Size - 1
		}
	}
	return float64(best)
}

// Points iterates all domain values in index order, calling fn for each.
// It returns ErrDomainTooLarge for domains above MaxMaterializedSize.
// Iteration stops early if fn returns false.
func (d *Domain) Points(fn func(Point) bool) error {
	if d.size > MaxMaterializedSize {
		return ErrDomainTooLarge
	}
	for p := int64(0); p < d.size; p++ {
		if !fn(Point(p)) {
			return nil
		}
	}
	return nil
}

// String renders the domain shape, e.g. "x[400] x y[300] (|T|=120000)".
func (d *Domain) String() string {
	var b strings.Builder
	for i, a := range d.attrs {
		if i > 0 {
			b.WriteString(" x ")
		}
		fmt.Fprintf(&b, "%s[%d]", a.Name, a.Size)
	}
	fmt.Fprintf(&b, " (|T|=%d)", d.size)
	return b.String()
}

// Equal reports whether two domains have identical attribute lists.
func (d *Domain) Equal(o *Domain) bool {
	if d == o {
		return true
	}
	if o == nil || len(d.attrs) != len(o.attrs) {
		return false
	}
	for i := range d.attrs {
		if d.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}
