package domain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"empty", nil},
		{"zero size", []Attribute{{Name: "a", Size: 0}}},
		{"negative size", []Attribute{{Name: "a", Size: -3}}},
		{"empty name", []Attribute{{Name: "", Size: 2}}},
		{"duplicate names", []Attribute{{Name: "a", Size: 2}, {Name: "a", Size: 3}}},
		{"overflow", []Attribute{{Name: "a", Size: 1 << 31}, {Name: "b", Size: 1 << 31}, {Name: "c", Size: 4}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.attrs...); err == nil {
				t.Fatalf("New(%v) succeeded, want error", c.attrs)
			}
		})
	}
}

func TestSizeAndStride(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 4}, Attribute{"c", 5})
	if got, want := d.Size(), int64(60); got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	if got, want := d.NumAttrs(), 3; got != want {
		t.Fatalf("NumAttrs() = %d, want %d", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 4}, Attribute{"c", 5})
	buf := make([]int, 3)
	seen := make(map[Point]bool)
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 5; c++ {
				p, err := d.Encode(a, b, c)
				if err != nil {
					t.Fatalf("Encode(%d,%d,%d): %v", a, b, c, err)
				}
				if seen[p] {
					t.Fatalf("Encode(%d,%d,%d) collides at %d", a, b, c, p)
				}
				seen[p] = true
				buf = d.Decode(p, buf)
				if buf[0] != a || buf[1] != b || buf[2] != c {
					t.Fatalf("Decode(%d) = %v, want [%d %d %d]", p, buf, a, b, c)
				}
				for i, want := range []int{a, b, c} {
					if got := d.Value(p, i); got != want {
						t.Fatalf("Value(%d, %d) = %d, want %d", p, i, got, want)
					}
				}
			}
		}
	}
	if len(seen) != 60 {
		t.Fatalf("encoded %d distinct points, want 60", len(seen))
	}
}

func TestEncodeErrors(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 4})
	if _, err := d.Encode(1); err == nil {
		t.Error("Encode with too few values succeeded")
	}
	if _, err := d.Encode(1, 2, 3); err == nil {
		t.Error("Encode with too many values succeeded")
	}
	if _, err := d.Encode(3, 0); err == nil {
		t.Error("Encode with out-of-range value succeeded")
	}
	if _, err := d.Encode(0, -1); err == nil {
		t.Error("Encode with negative value succeeded")
	}
}

func TestWith(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 4})
	p := d.MustEncode(1, 2)
	q, err := d.With(p, 0, 2)
	if err != nil {
		t.Fatalf("With: %v", err)
	}
	if got, want := q, d.MustEncode(2, 2); got != want {
		t.Fatalf("With changed to %d, want %d", got, want)
	}
	q, err = d.With(p, 1, 0)
	if err != nil {
		t.Fatalf("With: %v", err)
	}
	if got, want := q, d.MustEncode(1, 0); got != want {
		t.Fatalf("With changed to %d, want %d", got, want)
	}
	if _, err := d.With(p, 1, 9); err == nil {
		t.Error("With out-of-range value succeeded")
	}
}

func TestL1Properties(t *testing.T) {
	d := MustNew(Attribute{"a", 5}, Attribute{"b", 7})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := Point(rng.Int63n(d.Size()))
		q := Point(rng.Int63n(d.Size()))
		r := Point(rng.Int63n(d.Size()))
		dpq, dqp := d.L1(p, q), d.L1(q, p)
		if dpq != dqp {
			t.Fatalf("L1 not symmetric: %v vs %v", dpq, dqp)
		}
		if (dpq == 0) != (p == q) {
			t.Fatalf("L1(%d,%d)=%v violates identity", p, q, dpq)
		}
		if d.L1(p, r) > dpq+d.L1(q, r) {
			t.Fatalf("triangle inequality violated at %d,%d,%d", p, q, r)
		}
		if dpq > d.Diameter() {
			t.Fatalf("L1(%d,%d)=%v exceeds diameter %v", p, q, dpq, d.Diameter())
		}
		if d.LInf(p, q) > dpq {
			t.Fatalf("LInf exceeds L1 at %d,%d", p, q)
		}
	}
}

func TestL1KnownValues(t *testing.T) {
	d := MustGrid(10, 10)
	p := d.MustEncode(2, 3)
	q := d.MustEncode(7, 1)
	if got, want := d.L1(p, q), 7.0; got != want {
		t.Fatalf("L1 = %v, want %v", got, want)
	}
	if got, want := d.LInf(p, q), 5.0; got != want {
		t.Fatalf("LInf = %v, want %v", got, want)
	}
	if got, want := d.HammingAttrs(p, q), 2; got != want {
		t.Fatalf("HammingAttrs = %d, want %d", got, want)
	}
	if got, want := d.HammingAttrs(p, d.MustEncode(2, 9)), 1; got != want {
		t.Fatalf("HammingAttrs same-x = %d, want %d", got, want)
	}
}

func TestDiameter(t *testing.T) {
	d := MustNew(Attribute{"a", 3}, Attribute{"b", 4}, Attribute{"c", 5})
	if got, want := d.Diameter(), 9.0; got != want {
		t.Fatalf("Diameter = %v, want %v", got, want)
	}
	if got, want := d.MaxAttrRange(), 4.0; got != want {
		t.Fatalf("MaxAttrRange = %v, want %v", got, want)
	}
}

func TestPointsIteration(t *testing.T) {
	d := MustNew(Attribute{"a", 4}, Attribute{"b", 3})
	var got []Point
	if err := d.Points(func(p Point) bool { got = append(got, p); return true }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	if len(got) != 12 {
		t.Fatalf("iterated %d points, want 12", len(got))
	}
	for i, p := range got {
		if int64(p) != int64(i) {
			t.Fatalf("point %d = %d, want %d", i, p, i)
		}
	}
	// Early stop.
	n := 0
	if err := d.Points(func(Point) bool { n++; return n < 5 }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	if n != 5 {
		t.Fatalf("early stop iterated %d, want 5", n)
	}
}

func TestAttrIndex(t *testing.T) {
	d := MustNew(Attribute{"lat", 400}, Attribute{"lon", 300})
	if got := d.AttrIndex("lon"); got != 1 {
		t.Fatalf("AttrIndex(lon) = %d, want 1", got)
	}
	if got := d.AttrIndex("missing"); got != -1 {
		t.Fatalf("AttrIndex(missing) = %d, want -1", got)
	}
}

func TestDomainString(t *testing.T) {
	d := MustGrid(400, 300)
	if got, want := d.String(), "x[400] x y[300] (|T|=120000)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := MustGrid(4, 3)
	b := MustGrid(4, 3)
	c := MustGrid(3, 4)
	if !a.Equal(b) {
		t.Error("identical domains not Equal")
	}
	if a.Equal(c) {
		t.Error("different domains Equal")
	}
	if a.Equal(nil) {
		t.Error("nil domain Equal")
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	d := MustLine("v", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Decode of invalid point did not panic")
		}
	}()
	d.Decode(Point(99), nil)
}

// Property: Encode/Decode round-trips for arbitrary valid tuples, and With
// changes exactly one attribute.
func TestEncodeDecodeQuick(t *testing.T) {
	d := MustNew(Attribute{"a", 7}, Attribute{"b", 3}, Attribute{"c", 5})
	f := func(ra, rb, rc uint8, attr uint8, nv uint8) bool {
		a, b, c := int(ra)%7, int(rb)%3, int(rc)%5
		p, err := d.Encode(a, b, c)
		if err != nil {
			return false
		}
		vals := d.Decode(p, nil)
		if vals[0] != a || vals[1] != b || vals[2] != c {
			return false
		}
		i := int(attr) % 3
		sizes := []int{7, 3, 5}
		v := int(nv) % sizes[i]
		q, err := d.With(p, i, v)
		if err != nil {
			return false
		}
		w := d.Decode(q, nil)
		for j := 0; j < 3; j++ {
			want := vals[j]
			if j == i {
				want = v
			}
			if w[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
