package domain

import (
	"errors"
	"fmt"
)

// Partition divides a domain into disjoint blocks covering every value. It
// is the P = {P1,...,Pp} object behind the partitioned secret specification
// S^P (Eq. 6) and behind coarse histogram queries h_P.
type Partition interface {
	// Domain returns the partitioned domain.
	Domain() *Domain
	// NumBlocks returns the number of blocks p.
	NumBlocks() int
	// Block returns the block index in [0, NumBlocks()) containing p.
	Block(p Point) int
	// BlockDiameter returns the largest L1 distance between two points in
	// any single block: max_j d(Pj). It bounds the k-means qsum sensitivity
	// under S^P (Lemma 6.1). Implementations may return an upper bound when
	// the exact diameter is expensive; the built-in partitions are exact.
	BlockDiameter() float64
}

// UniformGrid partitions a domain by dividing each attribute's range into
// equal-width cells (the last cell absorbs the remainder). It reproduces the
// "uniformly divided 300x400 grid" partitions of Figure 1(f).
type UniformGrid struct {
	dom *Domain
	// width[i] is the cell width along attribute i.
	width []int
	// cells[i] is the number of cells along attribute i.
	cells []int
	total int
}

var _ Partition = (*UniformGrid)(nil)

// NewUniformGrid builds a uniform grid partition with the given per-attribute
// cell widths. A width of w along an attribute of size s yields ceil(s/w)
// cells.
func NewUniformGrid(d *Domain, widths []int) (*UniformGrid, error) {
	if len(widths) != d.NumAttrs() {
		return nil, fmt.Errorf("domain: NewUniformGrid got %d widths for %d attributes", len(widths), d.NumAttrs())
	}
	g := &UniformGrid{dom: d, width: append([]int(nil), widths...), cells: make([]int, len(widths)), total: 1}
	for i, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("domain: non-positive cell width %d for attribute %q", w, d.Attr(i).Name)
		}
		n := (d.Attr(i).Size + w - 1) / w
		g.cells[i] = n
		g.total *= n
	}
	return g, nil
}

// NewUniformGridByCount builds a uniform grid with approximately the given
// total number of blocks, preserving the domain's aspect ratio: the number
// of cells along attribute i is round(size_i * f) for the scale factor
// f = (blocks/|T|)^(1/m). Requesting blocks = |T| yields the finest grid
// (every value its own block, diameter 0). Used to reproduce the
// partition|10, partition|100, ... series of Figure 1(f).
func NewUniformGridByCount(d *Domain, blocks int) (*UniformGrid, error) {
	if blocks <= 0 {
		return nil, errors.New("domain: non-positive block count")
	}
	m := d.NumAttrs()
	f := root(float64(blocks)/float64(d.Size()), m)
	widths := make([]int, m)
	for i := 0; i < m; i++ {
		size := d.Attr(i).Size
		cells := int(float64(size)*f + 0.5)
		if cells < 1 {
			cells = 1
		}
		if cells > size {
			cells = size
		}
		widths[i] = (size + cells - 1) / cells
	}
	return NewUniformGrid(d, widths)
}

// root computes x^(1/n) for x in (0, 1] via Newton iteration; partition
// scale factors never exceed 1.
func root(x float64, n int) float64 {
	if n == 1 || x == 0 {
		return x
	}
	guess := 1.0
	for i := 0; i < 128; i++ {
		p := 1.0
		for j := 0; j < n-1; j++ {
			p *= guess
		}
		next := ((float64(n)-1)*guess + x/p) / float64(n)
		if diff := next - guess; diff < 1e-13 && diff > -1e-13 {
			return next
		}
		guess = next
	}
	return guess
}

// Domain implements Partition.
func (g *UniformGrid) Domain() *Domain { return g.dom }

// NumBlocks implements Partition.
func (g *UniformGrid) NumBlocks() int { return g.total }

// Cells returns the number of cells along attribute i.
func (g *UniformGrid) Cells(i int) int { return g.cells[i] }

// Width returns the cell width along attribute i.
func (g *UniformGrid) Width(i int) int { return g.width[i] }

// Block implements Partition.
func (g *UniformGrid) Block(p Point) int {
	block := 0
	for i := 0; i < g.dom.NumAttrs(); i++ {
		c := g.dom.Value(p, i) / g.width[i]
		block = block*g.cells[i] + c
	}
	return block
}

// BlockDiameter implements Partition. For a uniform grid every block is a
// box of per-attribute extent min(width, size) so the diameter is the sum
// of (extent-1) over attributes.
func (g *UniformGrid) BlockDiameter() float64 {
	var sum int
	for i := 0; i < g.dom.NumAttrs(); i++ {
		ext := g.width[i]
		if s := g.dom.Attr(i).Size; ext > s {
			ext = s
		}
		sum += ext - 1
	}
	return float64(sum)
}

// ByBlockFunc is a partition defined by an arbitrary block function. The
// block diameter is computed eagerly for small domains and must be supplied
// for large ones.
type ByBlockFunc struct {
	dom      *Domain
	blocks   int
	fn       func(Point) int
	diameter float64
}

var _ Partition = (*ByBlockFunc)(nil)

// NewByBlockFunc wraps fn as a Partition. For domains within
// MaxMaterializedSize the constructor validates that fn maps every point
// into [0, blocks) and computes the exact block diameter; for larger domains
// the caller must pass a correct diameter upper bound.
func NewByBlockFunc(d *Domain, blocks int, fn func(Point) int, diameterHint float64) (*ByBlockFunc, error) {
	if blocks <= 0 {
		return nil, errors.New("domain: non-positive block count")
	}
	b := &ByBlockFunc{dom: d, blocks: blocks, fn: fn, diameter: diameterHint}
	if d.Size() <= MaxMaterializedSize {
		// Exact diameter by per-block extent tracking (per-attribute
		// bounding boxes bound the L1 diameter of a block from above, and
		// for boxes the bound is tight).
		mins := make([][]int, blocks)
		maxs := make([][]int, blocks)
		m := d.NumAttrs()
		err := d.Points(func(p Point) bool {
			blk := fn(p)
			if blk < 0 || blk >= blocks {
				b.blocks = -1 // signal error
				return false
			}
			if mins[blk] == nil {
				mins[blk] = make([]int, m)
				maxs[blk] = make([]int, m)
				for i := 0; i < m; i++ {
					v := d.Value(p, i)
					mins[blk][i], maxs[blk][i] = v, v
				}
				return true
			}
			for i := 0; i < m; i++ {
				v := d.Value(p, i)
				if v < mins[blk][i] {
					mins[blk][i] = v
				}
				if v > maxs[blk][i] {
					maxs[blk][i] = v
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if b.blocks == -1 {
			return nil, fmt.Errorf("domain: block function out of range [0,%d)", blocks)
		}
		best := 0.0
		for blk := 0; blk < blocks; blk++ {
			if mins[blk] == nil {
				continue
			}
			ext := 0
			for i := 0; i < m; i++ {
				ext += maxs[blk][i] - mins[blk][i]
			}
			if float64(ext) > best {
				best = float64(ext)
			}
		}
		b.diameter = best
	}
	return b, nil
}

// Domain implements Partition.
func (b *ByBlockFunc) Domain() *Domain { return b.dom }

// NumBlocks implements Partition.
func (b *ByBlockFunc) NumBlocks() int { return b.blocks }

// Block implements Partition.
func (b *ByBlockFunc) Block(p Point) int { return b.fn(p) }

// BlockDiameter implements Partition.
func (b *ByBlockFunc) BlockDiameter() float64 { return b.diameter }

// Identity returns the finest partition: every domain value is its own
// block. Under S^P with this partition nothing is secret and histograms can
// be released exactly (sensitivity 0).
func Identity(d *Domain) (Partition, error) {
	if d.Size() > MaxMaterializedSize {
		return nil, ErrDomainTooLarge
	}
	return &identityPartition{d}, nil
}

type identityPartition struct{ dom *Domain }

func (ip *identityPartition) Domain() *Domain        { return ip.dom }
func (ip *identityPartition) NumBlocks() int         { return int(ip.dom.Size()) }
func (ip *identityPartition) Block(p Point) int      { return int(p) }
func (ip *identityPartition) BlockDiameter() float64 { return 0 }
