package domain

import (
	"math/rand"
	"testing"
)

func TestUniformGridBlocks(t *testing.T) {
	d := MustGrid(6, 4)
	g, err := NewUniformGrid(d, []int{2, 2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if got, want := g.NumBlocks(), 6; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	if got, want := g.Cells(0), 3; got != want {
		t.Fatalf("Cells(0) = %d, want %d", got, want)
	}
	// Every point must land in a valid block; points in the same 2x2 cell
	// share a block.
	if err := d.Points(func(p Point) bool {
		b := g.Block(p)
		if b < 0 || b >= g.NumBlocks() {
			t.Fatalf("Block(%d) = %d out of range", p, b)
		}
		return true
	}); err != nil {
		t.Fatalf("Points: %v", err)
	}
	a := d.MustEncode(0, 0)
	b := d.MustEncode(1, 1)
	c := d.MustEncode(2, 0)
	if g.Block(a) != g.Block(b) {
		t.Error("points in same cell got different blocks")
	}
	if g.Block(a) == g.Block(c) {
		t.Error("points in different cells got same block")
	}
}

func TestUniformGridRemainderCells(t *testing.T) {
	d := MustLine("v", 10)
	g, err := NewUniformGrid(d, []int{4})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// ceil(10/4) = 3 cells: [0..3], [4..7], [8..9].
	if got, want := g.NumBlocks(), 3; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	if g.Block(Point(3)) != 0 || g.Block(Point(4)) != 1 || g.Block(Point(9)) != 2 {
		t.Fatalf("unexpected block assignment: %d %d %d",
			g.Block(Point(3)), g.Block(Point(4)), g.Block(Point(9)))
	}
}

func TestUniformGridErrors(t *testing.T) {
	d := MustGrid(4, 4)
	if _, err := NewUniformGrid(d, []int{2}); err == nil {
		t.Error("wrong width count succeeded")
	}
	if _, err := NewUniformGrid(d, []int{0, 2}); err == nil {
		t.Error("zero width succeeded")
	}
}

func TestUniformGridByCount(t *testing.T) {
	d := MustGrid(400, 300)
	for _, blocks := range []int{10, 100, 1000, 10000, 120000} {
		g, err := NewUniformGridByCount(d, blocks)
		if err != nil {
			t.Fatalf("NewUniformGridByCount(%d): %v", blocks, err)
		}
		got := g.NumBlocks()
		// The construction rounds to a per-attribute cell count, so allow a
		// factor-4 slack around the request.
		if got < blocks/4 || got > blocks*4 {
			t.Errorf("NewUniformGridByCount(%d) produced %d blocks", blocks, got)
		}
	}
	// At the finest request every cell should be its own block, giving
	// diameter 0 (the partition|120000 exact-clustering case of Fig 1f).
	g, err := NewUniformGridByCount(d, 120000)
	if err != nil {
		t.Fatalf("NewUniformGridByCount: %v", err)
	}
	if g.BlockDiameter() != 0 {
		t.Errorf("finest grid BlockDiameter = %v, want 0", g.BlockDiameter())
	}
	if _, err := NewUniformGridByCount(d, 0); err == nil {
		t.Error("zero block count succeeded")
	}
}

func TestBlockDiameter(t *testing.T) {
	d := MustGrid(6, 4)
	g, err := NewUniformGrid(d, []int{3, 2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// Cells are 3x2 boxes: diameter (3-1)+(2-1) = 3.
	if got, want := g.BlockDiameter(), 3.0; got != want {
		t.Fatalf("BlockDiameter = %v, want %v", got, want)
	}
	wide, err := NewUniformGrid(d, []int{100, 100})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// One block covering everything: diameter = domain diameter.
	if got, want := wide.BlockDiameter(), d.Diameter(); got != want {
		t.Fatalf("BlockDiameter = %v, want %v", got, want)
	}
}

func TestByBlockFunc(t *testing.T) {
	d := MustLine("v", 10)
	even := func(p Point) int { return int(p) % 2 }
	b, err := NewByBlockFunc(d, 2, even, 0)
	if err != nil {
		t.Fatalf("NewByBlockFunc: %v", err)
	}
	if b.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", b.NumBlocks())
	}
	if b.Block(Point(4)) != 0 || b.Block(Point(5)) != 1 {
		t.Fatal("block function not applied")
	}
	// Even values span 0..8: bounding-box diameter 8.
	if got, want := b.BlockDiameter(), 8.0; got != want {
		t.Fatalf("BlockDiameter = %v, want %v", got, want)
	}
	if _, err := NewByBlockFunc(d, 1, even, 0); err == nil {
		t.Error("out-of-range block function succeeded")
	}
	if _, err := NewByBlockFunc(d, 0, even, 0); err == nil {
		t.Error("zero blocks succeeded")
	}
}

func TestIdentityPartition(t *testing.T) {
	d := MustLine("v", 8)
	ip, err := Identity(d)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	if ip.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d, want 8", ip.NumBlocks())
	}
	if ip.BlockDiameter() != 0 {
		t.Fatalf("BlockDiameter = %v, want 0", ip.BlockDiameter())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		p := Point(rng.Int63n(d.Size()))
		if ip.Block(p) != int(p) {
			t.Fatalf("Block(%d) = %d", p, ip.Block(p))
		}
	}
}

func TestPartitionBlocksAreExhaustive(t *testing.T) {
	d := MustGrid(9, 7)
	g, err := NewUniformGrid(d, []int{4, 3})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	counts := make([]int, g.NumBlocks())
	if err := d.Points(func(p Point) bool { counts[g.Block(p)]++; return true }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	total := 0
	for b, c := range counts {
		if c == 0 {
			t.Errorf("block %d is empty", b)
		}
		total += c
	}
	if int64(total) != d.Size() {
		t.Fatalf("blocks cover %d points, want %d", total, d.Size())
	}
}
