package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"blowfish/internal/composition"
	"blowfish/internal/domain"
	"blowfish/internal/kmeans"
	"blowfish/internal/mechanism"
	"blowfish/internal/noise"
	"blowfish/internal/ordered"
)

// noiseShard is one independently seeded noise stream with its own lock, so
// concurrent releases draw noise in parallel instead of serializing on a
// single source mutex.
type noiseShard struct {
	mu  sync.Mutex
	src *noise.Source
}

// Engine serves releases from a compiled Plan: truth vectors come from
// DatasetIndexes, noise from a shard pool, and every charge goes through
// one atomic Accountant, so parallel releases from many goroutines never
// overspend and never contend on a single noise stream.
//
// Releases are computed first and charged second, exactly like Session: a
// failed charge discards the computed values unpublished.
type Engine struct {
	plan    *Plan
	acct    *composition.Accountant
	shards  []*noiseShard
	ctr     atomic.Uint64
	metrics atomic.Pointer[Metrics]
}

// New creates an engine over a compiled plan. src seeds the shard pool:
// with shards <= 1 the engine draws directly from src and its noise stream
// is bit-for-bit the legacy single-source stream; with shards = n the pool
// holds src plus n−1 Split substreams and releases rotate across them.
func New(plan *Plan, acct *composition.Accountant, src *noise.Source, shards int) (*Engine, error) {
	if plan == nil {
		return nil, errors.New("engine: nil plan")
	}
	if acct == nil {
		return nil, errors.New("engine: nil accountant")
	}
	if src == nil {
		return nil, errors.New("engine: nil noise source")
	}
	if shards < 1 {
		shards = 1
	}
	e := &Engine{plan: plan, acct: acct, shards: make([]*noiseShard, shards)}
	e.shards[0] = &noiseShard{src: src}
	for i := 1; i < shards; i++ {
		e.shards[i] = &noiseShard{src: src.Split(fmt.Sprintf("engine-shard-%d", i))}
	}
	return e, nil
}

// Plan returns the compiled policy plan.
func (e *Engine) Plan() *Plan { return e.plan }

// Accountant returns the budget ledger shared by every release.
func (e *Engine) Accountant() *composition.Accountant { return e.acct }

// Shards returns the size of the noise pool.
func (e *Engine) Shards() int { return len(e.shards) }

// Index returns the shared dataset index for ds (see Plan.Index).
func (e *Engine) Index(ds *domain.Dataset) (*DatasetIndex, error) { return e.plan.Index(ds) }

// NoiseState is a serializable snapshot of the engine's noise pool: the
// rotation counter plus every shard's marshaled generator state. Restoring
// it resumes each noise stream bit-for-bit where the snapshot left off, so
// a recovered server's future releases draw exactly the noise the pre-crash
// server would have drawn.
type NoiseState struct {
	Ctr    uint64   `json:"ctr"`
	Shards [][]byte `json:"shards"`
}

// ExportNoise captures the noise pool's state. Each shard is locked for the
// marshal, so the capture of one shard is atomic against concurrent draws;
// callers that need the pool as a whole to be quiescent (checkpointing)
// must serialize releases externally.
func (e *Engine) ExportNoise() (NoiseState, error) {
	st := NoiseState{Ctr: e.ctr.Load(), Shards: make([][]byte, len(e.shards))}
	for i, sh := range e.shards {
		sh.mu.Lock()
		b, err := sh.src.MarshalBinary()
		sh.mu.Unlock()
		if err != nil {
			return NoiseState{}, fmt.Errorf("engine: marshaling noise shard %d: %w", i, err)
		}
		st.Shards[i] = b
	}
	return st, nil
}

// RestoreNoise overwrites the noise pool with a state captured by
// ExportNoise. The shard count must match the engine's.
func (e *Engine) RestoreNoise(st NoiseState) error {
	if len(st.Shards) != len(e.shards) {
		return fmt.Errorf("engine: restoring %d noise shards onto an engine with %d", len(st.Shards), len(e.shards))
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		err := sh.src.UnmarshalBinary(st.Shards[i])
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("engine: restoring noise shard %d: %w", i, err)
		}
	}
	e.ctr.Store(st.Ctr)
	return nil
}

// noiseShard picks the next shard of the pool round-robin, so concurrent
// releases spread across independent streams. Callers lock the shard's
// mutex around their draws inline — a closure-based wrapper here would cost
// an allocation on every release of the hot paths.
func (e *Engine) noiseShard() *noiseShard {
	if m := e.metrics.Load(); m != nil && m.NoiseDraws != nil {
		m.NoiseDraws.Inc()
	}
	return e.shards[e.ctr.Add(1)%uint64(len(e.shards))]
}

// checkIndex guards against an index compiled for a different plan, whose
// block counts would belong to another partition.
func (e *Engine) checkIndex(idx *DatasetIndex) error {
	if idx == nil {
		return errors.New("engine: nil dataset index")
	}
	if idx.plan != e.plan {
		return errors.New("engine: dataset index belongs to a different plan")
	}
	return nil
}

// precheck cheaply refuses a charge that cannot possibly fit the remaining
// budget before any noise is computed. Invalid epsilons pass through so the
// mechanism's own validation reports them.
func (e *Engine) precheck(eps float64) error {
	if !(eps > 0) {
		return nil
	}
	return e.acct.CanSpend(eps)
}

// ReleaseHistogram releases the complete histogram with the plan's cached
// sensitivity, charging eps.
func (e *Engine) ReleaseHistogram(idx *DatasetIndex, eps float64) ([]float64, error) {
	if err := e.checkIndex(idx); err != nil {
		return nil, err
	}
	if err := e.precheck(eps); err != nil {
		return nil, err
	}
	mt, start := e.releaseStart()
	sens, err := e.plan.HistogramSensitivity()
	if err != nil {
		return nil, err
	}
	truth, err := idx.Histogram()
	if err != nil {
		return nil, err
	}
	sh := e.noiseShard()
	sh.mu.Lock()
	m, err := mechanism.NewLaplace(eps, sens, sh.src)
	if err == nil {
		m.ReleaseInPlace(truth)
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := e.acct.Spend("histogram", eps); err != nil {
		return nil, err // release discarded unpublished
	}
	if mt != nil {
		mt.Histogram.observe(start)
	}
	return truth, nil
}

// ReleasePartitionHistogram releases the block histogram of part (nil means
// the plan's registered partition), charging eps only when the release is
// actually noisy: a zero-sensitivity release is exact and free. The
// registered partition reads the incrementally maintained block counts; any
// other partition falls back to a tuple scan.
func (e *Engine) ReleasePartitionHistogram(idx *DatasetIndex, part domain.Partition, eps float64) ([]float64, error) {
	if err := e.checkIndex(idx); err != nil {
		return nil, err
	}
	mt, start := e.releaseStart()
	registered := part == nil
	if registered {
		part = e.plan.part
	}
	sens, err := e.plan.PartitionSensitivity(part)
	if err != nil {
		return nil, err
	}
	if sens > 0 {
		if err := e.precheck(eps); err != nil {
			return nil, err
		}
	}
	var truth []float64
	if registered || e.plan.isRegistered(part) {
		truth, err = idx.BlockCounts()
	} else {
		truth, err = idx.PartitionHistogram(part)
	}
	if err != nil {
		return nil, err
	}
	if sens == 0 {
		// No secret pair crosses blocks: exact, free, no noise drawn.
		if mt != nil {
			mt.Partition.observe(start)
		}
		return truth, nil
	}
	sh := e.noiseShard()
	sh.mu.Lock()
	m, err := mechanism.NewLaplace(eps, sens, sh.src)
	if err == nil {
		m.ReleaseInPlace(truth)
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := e.acct.Spend(fmt.Sprintf("partition-histogram|%d", part.NumBlocks()), eps); err != nil {
		return nil, err
	}
	if mt != nil {
		mt.Partition.observe(start)
	}
	return truth, nil
}

// ReleaseCumulative runs the Ordered Mechanism from the index's maintained
// cumulative counts, charging eps. It returns the raw noisy counts and the
// constrained-inference estimate.
func (e *Engine) ReleaseCumulative(idx *DatasetIndex, eps float64) (raw, inferred []float64, err error) {
	if err := e.checkIndex(idx); err != nil {
		return nil, nil, err
	}
	if err := e.precheck(eps); err != nil {
		return nil, nil, err
	}
	m, start := e.releaseStart()
	sens, err := e.plan.CumulativeSensitivity()
	if err != nil {
		return nil, nil, err
	}
	// The cumulative prefix array is pure staging — ReleaseCumulative reads
	// it into a fresh noisy vector — so it comes from the plan's arena.
	buf := e.plan.getVec()
	cum, n, err := idx.CumulativeAppend((*buf)[:0])
	if err != nil {
		e.plan.putVec(buf)
		return nil, nil, err
	}
	sh := e.noiseShard()
	sh.mu.Lock()
	raw, err = ordered.ReleaseCumulative(cum, sens, eps, sh.src)
	sh.mu.Unlock()
	*buf = cum
	e.plan.putVec(buf)
	if err != nil {
		return nil, nil, err
	}
	inferred = ordered.InferCumulative(raw, float64(n))
	if err := e.acct.Spend("cumulative-histogram", eps); err != nil {
		return nil, nil, err
	}
	if m != nil {
		m.Cumulative.observe(start)
	}
	return raw, inferred, nil
}

// NewRangeRelease publishes the Ordered Hierarchical structure over the
// plan's cached tree layout, charging eps.
func (e *Engine) NewRangeRelease(idx *DatasetIndex, fanout int, eps float64) (*ordered.OHRelease, error) {
	if err := e.checkIndex(idx); err != nil {
		return nil, err
	}
	if err := e.precheck(eps); err != nil {
		return nil, err
	}
	m, start := e.releaseStart()
	oh, err := e.plan.OHFor(fanout)
	if err != nil {
		return nil, err
	}
	// The histogram is pure staging for the OH release — the released
	// structure carves its own storage — so it comes from the plan's arena.
	buf := e.plan.getVec()
	counts, err := idx.HistogramAppend((*buf)[:0])
	if err != nil {
		e.plan.putVec(buf)
		return nil, err
	}
	sh := e.noiseShard()
	sh.mu.Lock()
	rel, err := oh.Release(counts, eps, sh.src)
	sh.mu.Unlock()
	*buf = counts
	e.plan.putVec(buf)
	if err != nil {
		return nil, err
	}
	if err := e.acct.Spend("range-releaser", eps); err != nil {
		return nil, err
	}
	if m != nil {
		m.Range.observe(start)
	}
	return rel, nil
}

// KMeansBox returns the clamping box the domain dictates for private
// k-means centroids: [0, |A_i|-1] per attribute. It is the single home of
// the derivation — the engine and the legacy facade both call it, so the
// two paths can never drift.
func KMeansBox(d *domain.Domain) (lo, hi []float64) {
	lo = make([]float64, d.NumAttrs())
	hi = make([]float64, d.NumAttrs())
	for i := 0; i < d.NumAttrs(); i++ {
		hi[i] = float64(d.Attr(i).Size - 1)
	}
	return lo, hi
}

// PrivateKMeans runs SuLQ k-means with the plan's cached sensitivities and
// the index's cached coordinate vectors, charging eps.
func (e *Engine) PrivateKMeans(idx *DatasetIndex, k, iterations int, eps float64) (kmeans.Result, error) {
	if err := e.checkIndex(idx); err != nil {
		return kmeans.Result{}, err
	}
	if err := e.precheck(eps); err != nil {
		return kmeans.Result{}, err
	}
	m, start := e.releaseStart()
	sizeSens, sumSens, err := e.plan.KMeansSensitivities()
	if err != nil {
		return kmeans.Result{}, err
	}
	lo, hi := KMeansBox(e.plan.dom)
	cfg := kmeans.PrivateConfig{
		Config:          kmeans.Config{K: k, Iterations: iterations, Lo: lo, Hi: hi},
		Epsilon:         eps,
		SizeSensitivity: sizeSens,
		SumSensitivity:  sumSens,
	}
	vecs := idx.Vectors()
	sh := e.noiseShard()
	sh.mu.Lock()
	res, err := kmeans.PrivateLloyd(vecs, cfg, sh.src)
	sh.mu.Unlock()
	if err != nil {
		return kmeans.Result{}, err
	}
	if err := e.acct.Spend(fmt.Sprintf("kmeans|k=%d", k), eps); err != nil {
		return kmeans.Result{}, err
	}
	if m != nil {
		m.KMeans.observe(start)
	}
	return res, nil
}
