package engine

import (
	"errors"
	"math"
	"sync"
	"testing"

	"blowfish/internal/composition"
	"blowfish/internal/constraints"
	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// TestCompileCachesSensitivities asserts the plan's cached values agree
// with the policy's analytic helpers for every graph kind the server
// supports.
func TestCompileCachesSensitivities(t *testing.T) {
	line := domain.MustLine("v", 32)
	grid := domain.MustGrid(8, 6)
	part, err := domain.NewUniformGrid(grid, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := secgraph.NewDistanceThreshold(line, 5)
	if err != nil {
		t.Fatal(err)
	}
	linf, err := secgraph.NewLInfThreshold(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	lineG, err := secgraph.NewLine(line)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []struct {
		name string
		g    secgraph.Graph
	}{
		{"full", secgraph.NewComplete(line)},
		{"attr", secgraph.NewAttribute(grid)},
		{"partition", secgraph.NewPartition(part)},
		{"l1", l1},
		{"linf", linf},
		{"line", lineG},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			pol := policy.New(tc.g)
			plan, err := Compile(pol)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			wantHist, wantHistErr := pol.HistogramSensitivity()
			gotHist, gotHistErr := plan.HistogramSensitivity()
			if gotHist != wantHist || (gotHistErr == nil) != (wantHistErr == nil) {
				t.Errorf("HistogramSensitivity = (%v, %v), want (%v, %v)", gotHist, gotHistErr, wantHist, wantHistErr)
			}
			wantCum, wantCumErr := pol.CumulativeHistogramSensitivity()
			gotCum, gotCumErr := plan.CumulativeSensitivity()
			if gotCum != wantCum || (gotCumErr == nil) != (wantCumErr == nil) {
				t.Errorf("CumulativeSensitivity = (%v, %v), want (%v, %v)", gotCum, gotCumErr, wantCum, wantCumErr)
			}
			wantSum, wantSumErr := pol.SumSensitivity()
			gotSize, gotSum, gotKmErr := plan.KMeansSensitivities()
			if wantSumErr == nil && (gotSum != wantSum || gotSize != wantHist || gotKmErr != nil) {
				t.Errorf("KMeansSensitivities = (%v, %v, %v), want (%v, %v, nil)", gotSize, gotSum, gotKmErr, wantHist, wantSum)
			}
		})
	}
}

// TestCompileRejectsConstrained pins the engine's scope: constrained
// policies stay on the legacy path.
func TestCompileRejectsConstrained(t *testing.T) {
	d := domain.MustLine("v", 8)
	set, err := constraints.NewSet(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.NewConstrained(secgraph.NewComplete(d), set)
	if _, err := Compile(pol); !errors.Is(err, ErrConstrained) {
		t.Fatalf("Compile(constrained) = %v, want ErrConstrained", err)
	}
	if _, err := Compile(nil); err == nil {
		t.Fatal("Compile(nil) accepted")
	}
}

// TestPlanPartitionSensitivityCaching asserts both the registered and
// foreign partition sensitivities agree with the policy computation.
func TestPlanPartitionSensitivityCaching(t *testing.T) {
	d := domain.MustLine("v", 8)
	fine, err := domain.NewUniformGrid(d, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := domain.NewUniformGrid(d, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.New(secgraph.NewPartition(fine))
	plan, err := Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partition() != domain.Partition(fine) {
		t.Fatal("registered partition not captured")
	}
	for _, part := range []domain.Partition{fine, coarse} {
		want, err := pol.PartitionHistogramSensitivity(part)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // second call hits the cache
			got, err := plan.PartitionSensitivity(part)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("PartitionSensitivity = %v, want %v", got, want)
			}
		}
	}
}

// valuePartition is a Partition with an uncomparable (slice-bearing) value
// dynamic type: using it as a map key or comparing two of them would panic,
// which the plan's caches must never do.
type valuePartition struct {
	dom    *domain.Domain
	widths []int // uncomparable field
}

func (v valuePartition) Domain() *domain.Domain { return v.dom }
func (v valuePartition) NumBlocks() int         { return 2 }
func (v valuePartition) Block(p domain.Point) int {
	if int(p) < v.widths[0] {
		return 0
	}
	return 1
}
func (v valuePartition) BlockDiameter() float64 { return float64(v.widths[0]) }

// TestPartitionSensitivityUncomparablePartition asserts partitions whose
// dynamic type is not comparable skip the cache instead of panicking.
func TestPartitionSensitivityUncomparablePartition(t *testing.T) {
	d := domain.MustLine("v", 8)
	pol := policy.New(secgraph.NewComplete(d))
	plan, err := Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	part := valuePartition{dom: d, widths: []int{4}}
	want, err := pol.PartitionHistogramSensitivity(part)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // twice: neither call may touch the cache
		got, err := plan.PartitionSensitivity(part)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("PartitionSensitivity = %v, want %v", got, want)
		}
	}
	// The full release path must work (and not panic) too.
	acct, err := composition.NewAccountant(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, acct, noise.NewSource(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(1)
	ds.MustAdd(6)
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := eng.ReleasePartitionHistogram(idx, part, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 2 {
		t.Fatalf("release length %d, want 2", len(rel))
	}
}

// TestPlanOHCaching asserts the tree layout is built once per fanout and
// invalid fanouts error without being cached.
func TestPlanOHCaching(t *testing.T) {
	d := domain.MustLine("v", 64)
	g, err := secgraph.NewDistanceThreshold(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.OHFor(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.OHFor(16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("OHFor rebuilt the cached layout")
	}
	if a.Theta() != 8 || a.Size() != 64 {
		t.Errorf("layout theta=%d size=%d, want 8, 64", a.Theta(), a.Size())
	}
	if _, err := plan.OHFor(1); err == nil {
		t.Error("invalid fanout accepted")
	}
	// Multi-attribute domains have no range release.
	grid, err := Compile(policy.New(secgraph.NewComplete(domain.MustGrid(4, 4))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grid.OHFor(16); err == nil {
		t.Error("range release over a 2-D domain accepted")
	}
}

// TestEngineParallelReleasesNeverOverspend hammers a sharded engine from
// many goroutines: the accountant's invariants must hold, and every
// successful release must be fully formed.
func TestEngineParallelReleasesNeverOverspend(t *testing.T) {
	d := domain.MustLine("v", 128)
	g, err := secgraph.NewDistanceThreshold(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	ds := domain.NewDataset(d)
	for i := 0; i < 512; i++ {
		ds.MustAdd(domain.Point(i % 128))
	}
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	const (
		budget     = 1.0
		eps        = 0.02 // exactly 50 releases fit
		goroutines = 16
		perG       = 8
	)
	acct, err := composition.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, acct, noise.NewSource(7), 8)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", eng.Shards())
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	successes, refused := 0, 0
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var err error
				switch (gi + i) % 3 {
				case 0:
					var rel []float64
					rel, err = eng.ReleaseHistogram(idx, eps)
					if err == nil && len(rel) != 128 {
						t.Errorf("histogram length %d", len(rel))
					}
				case 1:
					_, _, err = eng.ReleaseCumulative(idx, eps)
				default:
					_, err = eng.NewRangeRelease(idx, 16, eps)
				}
				mu.Lock()
				switch {
				case err == nil:
					successes++
				case errors.Is(err, composition.ErrBudgetExceeded):
					refused++
				default:
					t.Errorf("unexpected release error: %v", err)
				}
				mu.Unlock()
			}
		}(gi)
	}
	wg.Wait()
	if acct.Spent() > budget+1e-9 {
		t.Fatalf("accountant overspent: %v > %v", acct.Spent(), budget)
	}
	if want := int(math.Round(budget / eps)); successes != want {
		t.Fatalf("successes = %d, want %d", successes, want)
	}
	if successes+refused != goroutines*perG {
		t.Fatalf("accounted %d attempts, want %d", successes+refused, goroutines*perG)
	}
	if got := len(acct.Releases()); got != successes {
		t.Fatalf("release log has %d entries, want %d", got, successes)
	}
}

// TestEngineSingleShardUsesCallerSource pins the determinism contract:
// with one shard the engine draws straight from the provided source, so
// two engines over the same seed produce identical releases.
func TestEngineSingleShardUsesCallerSource(t *testing.T) {
	d := domain.MustLine("v", 32)
	g, err := secgraph.NewDistanceThreshold(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	ds := domain.NewDataset(d)
	for i := 0; i < 64; i++ {
		ds.MustAdd(domain.Point(i % 32))
	}
	release := func() []float64 {
		acct, err := composition.NewAccountant(1)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(plan, acct, noise.NewSource(42), 1)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := plan.Index(ds)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := eng.ReleaseHistogram(idx, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	a, b := release(), release()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed releases differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineNoiseExportRestore(t *testing.T) {
	pol := policy.New(secgraph.NewComplete(domain.MustLine("v", 32)))
	plan, err := Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Engine {
		acct, _ := composition.NewAccountant(100)
		e, err := New(plan, acct, noise.NewSource(7), 4)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	ds := domain.NewDataset(pol.Domain())
	for i := 0; i < 50; i++ {
		ds.MustAdd(domain.Point(i % int(pol.Domain().Size())))
	}
	idxA, _ := a.Index(ds)
	// Advance a's noise pool, then export/restore into b.
	for i := 0; i < 5; i++ {
		if _, err := a.ReleaseHistogram(idxA, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.ExportNoise()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreNoise(st); err != nil {
		t.Fatal(err)
	}
	idxB, _ := b.Index(ds)
	for i := 0; i < 8; i++ {
		ra, err := a.ReleaseHistogram(idxA, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.ReleaseHistogram(idxB, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("release %d diverged at bin %d: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
	// Shard-count mismatch is refused.
	acct, _ := composition.NewAccountant(1)
	c, _ := New(plan, acct, noise.NewSource(1), 2)
	if err := c.RestoreNoise(st); err == nil {
		t.Fatal("restore accepted a mismatched shard count")
	}
}
