package engine

import (
	"errors"
	"fmt"
	"sync"

	"blowfish/internal/domain"
)

// DatasetIndex materializes the count vectors a plan's releases read — the
// flat histogram, the per-block counts of the registered partition, and the
// cumulative counts — and maintains them incrementally as tuples are added,
// changed or removed, so a release costs O(|T|) snapshotting instead of an
// O(n) rescan of the tuples.
//
// Mutations must go through the index (Add, Set, Remove) to stay
// incremental; direct mutations of the underlying Dataset are detected via
// its generation counter and trigger a full O(n) rebuild on the next read,
// so results are never stale either way. A DatasetIndex is safe for
// concurrent use, but the index's lock only covers its own caches — the
// Dataset underneath is unsynchronized. While any operation is in flight,
// the Dataset must not be mutated through any other path: not directly,
// and not through a different plan's index over the same Dataset (quiesce
// mutations externally when several plans index one dataset). This is the
// same contract the legacy release path had, which scanned the tuples with
// no lock at all.
type DatasetIndex struct {
	plan *Plan
	ds   *domain.Dataset

	mu    sync.RWMutex
	built bool
	gen   uint64 // dataset generation the caches reflect
	// hist is the flat histogram h(D); nil over non-materializable domains.
	hist []float64
	// blocks is the histogram over the registered partition's blocks; nil
	// when the plan has no partition.
	blocks []float64
	// cum is the cumulative histogram S_T(D) over one-dimensional domains;
	// cumOK marks it valid (it is rebuilt lazily and adjusted in place).
	cum   []float64
	cumOK bool
	// vecs caches the k-means coordinate vectors; invalidated on mutation.
	vecs [][]float64
}

func newDatasetIndex(p *Plan, ds *domain.Dataset) *DatasetIndex {
	return &DatasetIndex{plan: p, ds: ds}
}

// Dataset returns the indexed dataset.
func (x *DatasetIndex) Dataset() *domain.Dataset { return x.ds }

// Len returns the number of tuples n.
func (x *DatasetIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.ds.Len()
}

// materializable reports whether per-value vectors exist for the domain.
func (x *DatasetIndex) materializable() bool {
	return x.ds.Domain().Size() <= domain.MaxMaterializedSize
}

// fresh reports whether the caches reflect the dataset, under either lock.
func (x *DatasetIndex) fresh() bool {
	return x.built && x.gen == x.ds.Generation()
}

// rebuildLocked recomputes every maintained vector from the tuples: the
// O(n) path taken once at first use or after a direct dataset mutation.
func (x *DatasetIndex) rebuildLocked() {
	d := x.ds.Domain()
	pts := x.ds.PointsUnsafe()
	if x.materializable() {
		if x.hist == nil || len(x.hist) != int(d.Size()) {
			x.hist = make([]float64, d.Size())
		} else {
			clear(x.hist)
		}
		for _, p := range pts {
			x.hist[p]++
		}
	}
	if x.plan.part != nil {
		if x.blocks == nil {
			x.blocks = make([]float64, x.plan.part.NumBlocks())
		} else {
			clear(x.blocks)
		}
		for _, p := range pts {
			x.blocks[x.plan.blockIndex(p)]++
		}
	}
	x.cumOK = false
	x.vecs = nil
	x.built = true
	x.gen = x.ds.Generation()
}

// ensureLocked rebuilds under the write lock when the caches are stale.
func (x *DatasetIndex) ensureLocked() {
	if !x.fresh() {
		x.rebuildLocked()
	}
}

// Add appends a tuple and maintains every count vector in O(1) (plus the
// cumulative suffix when materialized).
func (x *DatasetIndex) Add(p domain.Point) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	if err := x.ds.Add(p); err != nil {
		return err
	}
	x.applyInsertLocked(p)
	x.gen = x.ds.Generation()
	return nil
}

// Set replaces the value of tuple i, maintaining the counts incrementally.
func (x *DatasetIndex) Set(i int, p domain.Point) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	if i < 0 || i >= x.ds.Len() {
		// Delegate for the canonical error text.
		return x.ds.Set(i, p)
	}
	old := x.ds.At(i)
	if err := x.ds.Set(i, p); err != nil {
		return err
	}
	x.applyRemoveLocked(old)
	x.applyInsertLocked(p)
	x.gen = x.ds.Generation()
	return nil
}

// Remove deletes tuple i (Dataset.Remove swap semantics), maintaining the
// counts incrementally.
func (x *DatasetIndex) Remove(i int) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	if i < 0 || i >= x.ds.Len() {
		// Delegate for the canonical error text.
		return x.ds.Remove(i)
	}
	old := x.ds.At(i)
	if err := x.ds.Remove(i); err != nil {
		return err
	}
	x.applyRemoveLocked(old)
	x.gen = x.ds.Generation()
	return nil
}

// MutOp selects the kind of a batched Mutation.
type MutOp uint8

const (
	// MutAdd appends a tuple with value P.
	MutAdd MutOp = iota
	// MutSet replaces the value of tuple Index with P.
	MutSet
	// MutRemove deletes tuple Index (Dataset.Remove swap semantics).
	MutRemove
)

// Mutation is one element of an ApplyBatch call.
type Mutation struct {
	Op    MutOp
	Index int
	P     domain.Point
}

// ApplyBatch applies a sequence of mutations under a single lock
// acquisition, maintaining every count vector incrementally — the
// lock-amortized ingestion path used by internal/stream, where taking the
// index lock per tuple would dominate sustained event throughput.
//
// Mutations apply in order. On the first failing mutation (an out-of-range
// index or point) ApplyBatch stops and returns the number applied so far
// together with the error; the prior mutations remain applied and the
// caches stay consistent with the dataset.
func (x *DatasetIndex) ApplyBatch(muts []Mutation) (applied int, err error) {
	if len(muts) == 0 {
		return 0, nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	defer func() { x.gen = x.ds.Generation() }()
	for i, m := range muts {
		switch m.Op {
		case MutAdd:
			if err := x.ds.Add(m.P); err != nil {
				return i, err
			}
			x.applyInsertLocked(m.P)
		case MutSet:
			if m.Index < 0 || m.Index >= x.ds.Len() {
				return i, x.ds.Set(m.Index, m.P)
			}
			old := x.ds.At(m.Index)
			if err := x.ds.Set(m.Index, m.P); err != nil {
				return i, err
			}
			x.applyRemoveLocked(old)
			x.applyInsertLocked(m.P)
		case MutRemove:
			if m.Index < 0 || m.Index >= x.ds.Len() {
				return i, x.ds.Remove(m.Index)
			}
			old := x.ds.At(m.Index)
			if err := x.ds.Remove(m.Index); err != nil {
				return i, err
			}
			x.applyRemoveLocked(old)
		default:
			return i, fmt.Errorf("engine: unknown mutation op %d", m.Op)
		}
	}
	return len(muts), nil
}

func (x *DatasetIndex) applyInsertLocked(p domain.Point) {
	if x.hist != nil {
		x.hist[p]++
	}
	if x.blocks != nil {
		x.blocks[x.plan.blockIndex(p)]++
	}
	if x.cumOK {
		for j := int(p); j < len(x.cum); j++ {
			x.cum[j]++
		}
	}
	x.vecs = nil
}

func (x *DatasetIndex) applyRemoveLocked(p domain.Point) {
	if x.hist != nil {
		x.hist[p]--
	}
	if x.blocks != nil {
		x.blocks[x.plan.blockIndex(p)]--
	}
	if x.cumOK {
		for j := int(p); j < len(x.cum); j++ {
			x.cum[j]--
		}
	}
	x.vecs = nil
}

// Histogram returns a private copy of the flat histogram h(D). The copy is
// the caller's to noise in place.
func (x *DatasetIndex) Histogram() ([]float64, error) {
	return x.HistogramAppend(nil)
}

// HistogramAppend appends the flat histogram h(D) to dst and returns the
// extended slice — the recycling variant of Histogram for callers feeding a
// release from a pooled scratch vector (pass dst[:0] to reuse its capacity).
func (x *DatasetIndex) HistogramAppend(dst []float64) ([]float64, error) {
	if !x.materializable() {
		return nil, domain.ErrDomainTooLarge
	}
	x.mu.RLock()
	if x.fresh() {
		out := append(dst, x.hist...)
		x.mu.RUnlock()
		return out, nil
	}
	x.mu.RUnlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	return append(dst, x.hist...), nil
}

// CumulativeHistogram returns a private copy of the cumulative counts
// S_T(D) over a one-dimensional ordered domain. The vector is materialized
// from the histogram on first use and then adjusted in place by Add, Set
// and Remove.
func (x *DatasetIndex) CumulativeHistogram() ([]float64, error) {
	cum, _, err := x.CumulativeSnapshot()
	return cum, err
}

// CumulativeSnapshot returns the cumulative counts together with the
// cardinality n they sum to, taken under a single lock acquisition so a
// concurrent mutation can never make the pair inconsistent (the Ordered
// Mechanism clamps its inference into [0, n]).
func (x *DatasetIndex) CumulativeSnapshot() ([]float64, int, error) {
	return x.CumulativeAppend(nil)
}

// CumulativeAppend is CumulativeSnapshot appending into dst — the recycling
// variant for callers feeding a release from a pooled scratch vector (pass
// dst[:0] to reuse its capacity).
func (x *DatasetIndex) CumulativeAppend(dst []float64) ([]float64, int, error) {
	if x.ds.Domain().NumAttrs() != 1 {
		return nil, 0, errors.New("domain: cumulative histogram requires a one-dimensional ordered domain")
	}
	if !x.materializable() {
		return nil, 0, domain.ErrDomainTooLarge
	}
	x.mu.RLock()
	if x.fresh() && x.cumOK {
		out := append(dst, x.cum...)
		n := x.ds.Len()
		x.mu.RUnlock()
		return out, n, nil
	}
	x.mu.RUnlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	if !x.cumOK {
		if x.cum == nil || len(x.cum) != len(x.hist) {
			x.cum = make([]float64, len(x.hist))
		}
		run := 0.0
		for i, c := range x.hist {
			run += c
			x.cum[i] = run
		}
		x.cumOK = true
	}
	return append(dst, x.cum...), x.ds.Len(), nil
}

// BlockCounts returns a private copy of the histogram over the registered
// partition's blocks.
func (x *DatasetIndex) BlockCounts() ([]float64, error) {
	if x.plan.part == nil {
		return nil, errors.New("engine: plan has no registered partition")
	}
	x.mu.RLock()
	if x.fresh() {
		out := append([]float64(nil), x.blocks...)
		x.mu.RUnlock()
		return out, nil
	}
	x.mu.RUnlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	return append([]float64(nil), x.blocks...), nil
}

// PartitionHistogram answers the block histogram for an arbitrary partition
// by scanning the tuples — the fallback for partitions other than the
// plan's registered one.
func (x *DatasetIndex) PartitionHistogram(part domain.Partition) ([]float64, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.ds.PartitionHistogram(part)
}

// Vectors returns the dataset decoded as k-means coordinate vectors, cached
// until the next mutation. Callers must treat the rows as read-only (the
// k-means implementations do).
func (x *DatasetIndex) Vectors() [][]float64 {
	x.mu.RLock()
	if x.fresh() && x.vecs != nil {
		v := x.vecs
		x.mu.RUnlock()
		return v
	}
	x.mu.RUnlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ensureLocked()
	if x.vecs == nil {
		x.vecs = x.ds.Vectors()
	}
	return x.vecs
}
