package engine

import (
	"math"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// gridPlan compiles a partitioned-secrets policy over a small grid, giving
// the index a registered partition to maintain block counts for.
func gridPlan(t *testing.T) (*Plan, *domain.Domain, domain.Partition) {
	t.Helper()
	d, err := domain.Grid(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	part, err := domain.NewUniformGrid(d, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(policy.New(secgraph.NewPartition(part)))
	if err != nil {
		t.Fatal(err)
	}
	return plan, d, part
}

// linePlan compiles a distance-threshold policy over a line domain, giving
// the index a cumulative histogram to maintain.
func linePlan(t *testing.T, size int) (*Plan, *domain.Domain) {
	t.Helper()
	d, err := domain.Line("v", size)
	if err != nil {
		t.Fatal(err)
	}
	g, err := secgraph.NewDistanceThreshold(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	return plan, d
}

// checkAgainstRebuild compares every maintained vector of idx with a
// from-scratch recomputation on the underlying dataset.
func checkAgainstRebuild(t *testing.T, idx *DatasetIndex, part domain.Partition, step int) {
	t.Helper()
	ds := idx.Dataset()
	wantHist, err := ds.Histogram()
	if err != nil {
		t.Fatalf("step %d: Histogram rebuild: %v", step, err)
	}
	gotHist, err := idx.Histogram()
	if err != nil {
		t.Fatalf("step %d: idx.Histogram: %v", step, err)
	}
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("step %d: hist[%d] = %v, want %v", step, i, gotHist[i], wantHist[i])
		}
	}
	if idx.Len() != ds.Len() {
		t.Fatalf("step %d: Len = %d, want %d", step, idx.Len(), ds.Len())
	}
	if part != nil {
		wantBlocks, err := ds.PartitionHistogram(part)
		if err != nil {
			t.Fatalf("step %d: PartitionHistogram rebuild: %v", step, err)
		}
		gotBlocks, err := idx.BlockCounts()
		if err != nil {
			t.Fatalf("step %d: idx.BlockCounts: %v", step, err)
		}
		for i := range wantBlocks {
			if gotBlocks[i] != wantBlocks[i] {
				t.Fatalf("step %d: blocks[%d] = %v, want %v", step, i, gotBlocks[i], wantBlocks[i])
			}
		}
	}
	if ds.Domain().NumAttrs() == 1 {
		wantCum, err := ds.CumulativeHistogram()
		if err != nil {
			t.Fatalf("step %d: CumulativeHistogram rebuild: %v", step, err)
		}
		gotCum, err := idx.CumulativeHistogram()
		if err != nil {
			t.Fatalf("step %d: idx.CumulativeHistogram: %v", step, err)
		}
		for i := range wantCum {
			if gotCum[i] != wantCum[i] {
				t.Fatalf("step %d: cum[%d] = %v, want %v", step, i, gotCum[i], wantCum[i])
			}
		}
	}
}

// TestDatasetIndexInterleavedOps drives a seeded random interleaving of
// Add/Set/Remove through the index and cross-checks every maintained vector
// against a from-scratch rebuild — the property the incremental updates
// must preserve.
func TestDatasetIndexInterleavedOps(t *testing.T) {
	cases := []struct {
		name string
		mk   func(t *testing.T) (*Plan, *domain.Domain, domain.Partition)
	}{
		{"grid-partition", func(t *testing.T) (*Plan, *domain.Domain, domain.Partition) {
			return gridPlan(t)
		}},
		{"line-cumulative", func(t *testing.T) (*Plan, *domain.Domain, domain.Partition) {
			plan, d := linePlan(t, 37)
			return plan, d, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, d, part := tc.mk(t)
			ds := domain.NewDataset(d)
			idx, err := plan.Index(ds)
			if err != nil {
				t.Fatal(err)
			}
			rng := noise.NewSource(99)
			randPoint := func() domain.Point { return domain.Point(rng.Int63n(d.Size())) }
			for step := 0; step < 600; step++ {
				switch op := rng.Intn(4); {
				case op == 0 && ds.Len() > 0: // Set
					if err := idx.Set(rng.Intn(ds.Len()), randPoint()); err != nil {
						t.Fatalf("step %d: Set: %v", step, err)
					}
				case op == 1 && ds.Len() > 0: // Remove (swap semantics)
					if err := idx.Remove(rng.Intn(ds.Len())); err != nil {
						t.Fatalf("step %d: Remove: %v", step, err)
					}
				default: // Add
					if err := idx.Add(randPoint()); err != nil {
						t.Fatalf("step %d: Add: %v", step, err)
					}
				}
				// Check at uneven strides so the cumulative cache is
				// exercised both freshly materialized and adjusted in place.
				if step%7 == 0 || step%3 == 0 {
					checkAgainstRebuild(t, idx, part, step)
				}
			}
			checkAgainstRebuild(t, idx, part, -1)
		})
	}
}

// TestDatasetIndexApplyBatch drives seeded random mutation batches through
// ApplyBatch and cross-checks every maintained vector against a rebuild —
// the same property the per-call mutators satisfy, amortized under one lock.
func TestDatasetIndexApplyBatch(t *testing.T) {
	plan, d, part := gridPlan(t)
	ds := domain.NewDataset(d)
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewSource(7)
	randPoint := func() domain.Point { return domain.Point(rng.Int63n(d.Size())) }
	n := 0 // track length ourselves to build valid batches
	for round := 0; round < 40; round++ {
		batch := make([]Mutation, 0, 32)
		for len(batch) < cap(batch) {
			switch op := rng.Intn(4); {
			case op == 0 && n > 0:
				batch = append(batch, Mutation{Op: MutSet, Index: rng.Intn(n), P: randPoint()})
			case op == 1 && n > 0:
				batch = append(batch, Mutation{Op: MutRemove, Index: rng.Intn(n)})
				n--
			default:
				batch = append(batch, Mutation{Op: MutAdd, P: randPoint()})
				n++
			}
		}
		applied, err := idx.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("round %d: ApplyBatch: %v", round, err)
		}
		if applied != len(batch) {
			t.Fatalf("round %d: applied = %d, want %d", round, applied, len(batch))
		}
		checkAgainstRebuild(t, idx, part, round)
	}
}

// TestDatasetIndexApplyBatchPartialFailure asserts a failing mutation stops
// the batch, reports its position, and leaves the caches consistent with
// the prefix that did apply.
func TestDatasetIndexApplyBatchPartialFailure(t *testing.T) {
	plan, d := linePlan(t, 8)
	ds := domain.NewDataset(d)
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Mutation{
		{Op: MutAdd, P: 1},
		{Op: MutAdd, P: 2},
		{Op: MutSet, Index: 9, P: 3}, // out of range
		{Op: MutAdd, P: 4},
	}
	applied, err := idx.ApplyBatch(batch)
	if err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if ds.Len() != 2 {
		t.Fatalf("dataset len = %d, want 2", ds.Len())
	}
	checkAgainstRebuild(t, idx, nil, 0)
}

// TestDatasetIndexDetectsDirectMutation mutates the dataset behind the
// index's back and asserts the generation counter forces a rebuild instead
// of serving stale counts.
func TestDatasetIndexDetectsDirectMutation(t *testing.T) {
	plan, d := linePlan(t, 16)
	ds := domain.NewDataset(d)
	for i := 0; i < 8; i++ {
		ds.MustAdd(domain.Point(i))
	}
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Histogram(); err != nil { // prime the caches
		t.Fatal(err)
	}
	// Bypass the index: direct Add, Set and Remove on the dataset.
	ds.MustAdd(domain.Point(3))
	if err := ds.Set(0, domain.Point(15)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Remove(1); err != nil {
		t.Fatal(err)
	}
	checkAgainstRebuild(t, idx, nil, 0)
}

// TestDatasetIndexInvalidOps asserts invalid mutations error without
// corrupting the maintained counts.
func TestDatasetIndexInvalidOps(t *testing.T) {
	plan, d := linePlan(t, 8)
	ds := domain.NewDataset(d)
	ds.MustAdd(2)
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(domain.Point(99)); err == nil {
		t.Error("out-of-domain Add accepted")
	}
	if err := idx.Set(5, 1); err == nil {
		t.Error("out-of-range Set accepted")
	}
	if err := idx.Set(0, domain.Point(-1)); err == nil {
		t.Error("out-of-domain Set accepted")
	}
	if err := idx.Remove(7); err == nil {
		t.Error("out-of-range Remove accepted")
	}
	checkAgainstRebuild(t, idx, nil, 0)
}

// TestPlanIndexSharingAndForget pins the index cache contract: one index
// per dataset, domain mismatches rejected, Forget drops the entry.
func TestPlanIndexSharingAndForget(t *testing.T) {
	plan, d := linePlan(t, 8)
	ds := domain.NewDataset(d)
	a, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Index did not share the cached index")
	}
	plan.Forget(ds)
	c, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("Forget did not drop the cached index")
	}
	other := domain.MustLine("w", 9)
	if _, err := plan.Index(domain.NewDataset(other)); err == nil {
		t.Error("foreign-domain dataset accepted")
	}
}

// TestVectorsCacheInvalidation asserts the k-means vector cache tracks
// mutations.
func TestVectorsCacheInvalidation(t *testing.T) {
	plan, _, _ := gridPlan(t)
	ds := domain.NewDataset(plan.Domain())
	ds.MustAdd(plan.Domain().MustEncode(1, 2))
	idx, err := plan.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	v1 := idx.Vectors()
	if len(v1) != 1 || v1[0][0] != 1 || v1[0][1] != 2 {
		t.Fatalf("Vectors = %v", v1)
	}
	if idx.Vectors()[0][0] != 1 {
		t.Fatal("cached vectors wrong")
	}
	if err := idx.Set(0, plan.Domain().MustEncode(5, 7)); err != nil {
		t.Fatal(err)
	}
	v2 := idx.Vectors()
	if v2[0][0] != 5 || v2[0][1] != 7 {
		t.Fatalf("Vectors after Set = %v", v2)
	}
	if math.IsNaN(v2[0][0]) {
		t.Fatal("unreachable")
	}
}
