package engine

import (
	"time"

	"blowfish/internal/metrics"
)

// ReleaseMetrics instruments one release kind: wall-clock latency of the
// successful release (truth read + noise + charge) and a completion
// count. Either field may be nil; observe skips what is absent.
type ReleaseMetrics struct {
	Latency *metrics.Histogram
	Count   *metrics.Counter
}

func (r *ReleaseMetrics) observe(start time.Time) {
	if r.Latency != nil {
		r.Latency.ObserveSince(start)
	}
	if r.Count != nil {
		r.Count.Inc()
	}
}

// Metrics holds the engine's pre-resolved instruments, one ReleaseMetrics
// per release kind plus noise-pool draw stats. The server resolves
// labeled children (per policy, per kind) once at session construction
// and hands the engine bare pointers, so the hot path never touches a
// label map — the engine's release paths stay within their alloc pins.
type Metrics struct {
	Histogram  ReleaseMetrics
	Partition  ReleaseMetrics
	Cumulative ReleaseMetrics
	Range      ReleaseMetrics
	KMeans     ReleaseMetrics
	// NoiseDraws counts shard acquisitions (== noisy releases started).
	NoiseDraws *metrics.Counter
}

// SetMetrics installs the engine's instruments. Pass nil to disable. The
// pointer is stored atomically, so installation may happen after the
// engine is already serving (recovery wires metrics onto rebuilt
// engines); the Metrics struct itself must not be mutated once installed.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics.Store(m) }

// releaseStart samples the clock only when instrumentation is installed,
// so uninstrumented engines pay a single atomic load per release.
func (e *Engine) releaseStart() (*Metrics, time.Time) {
	m := e.metrics.Load()
	if m == nil {
		return nil, time.Time{}
	}
	return m, time.Now()
}
