// Package engine is the compiled release engine: it turns a (policy,
// dataset) pair into reusable artifacts so the hot release path never
// recomputes what the policy structure already determines.
//
// The paper's central observation (Eq. 9, Lemma 6.1) is that the secret
// graph G fixes every query sensitivity once per policy, not once per
// query; "Design of Policy-Aware Differentially Private Algorithms" (Haney
// et al.) treats that compilation as a reusable artifact. The engine makes
// the same move operationally, in three layers:
//
//   - Plan compiles a policy once: histogram, cumulative, partition and
//     k-means sensitivities, the partition block index, and the Ordered
//     Hierarchical tree layout are cached at compile time, so no release
//     ever calls a *Sensitivity() method or rebuilds a tree.
//   - DatasetIndex materializes the flat histogram, per-block counts and
//     cumulative counts of a dataset and maintains them incrementally under
//     Add/Set/Remove, replacing the O(n) tuple rescan per release with
//     O(1)–O(|T|) cache maintenance.
//   - Engine serves releases from the compiled forms with a pool of Split
//     noise sources, so parallel releases draw noise concurrently instead
//     of serializing on one source mutex; budget charges remain atomic
//     through the shared composition.Accountant.
//
// With a single noise shard the engine consumes exactly the same noise
// stream as the legacy release functions, so engine releases are
// bit-for-bit identical to the pre-engine path given the same seed (the
// equivalence tests at the repository root pin this for every policy kind
// the server supports).
package engine

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"

	"blowfish/internal/domain"
	"blowfish/internal/ordered"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// maxBlockTableSize caps the size of the point→block lookup table a Plan
// materializes for its registered partition. Above this the engine falls
// back to Partition.Block arithmetic, which is only a few divisions.
const maxBlockTableSize = 1 << 22

// maxDistTableVertices caps the all-pairs hop-distance table compiled for
// explicit secret graphs: the flat table holds |T|² int32 entries (16 MiB
// at the cap). Larger explicit graphs skip the table and fall back to the
// graph's own memoized per-source BFS, which is still never re-run per
// release — only the all-at-once precomputation is skipped.
const maxDistTableVertices = 2048

// Cache bounds: both plan-level caches are keyed by caller-supplied
// pointers, so without a cap a caller minting fresh partitions per call —
// or a dataset deletion racing an in-flight release that re-creates a
// just-Forgotten index — would grow them for the plan's lifetime. When
// full, an arbitrary entry is evicted; evicted state is rebuilt on next
// use, so the caps only bound memory, never change results.
const (
	maxCachedIndexes     = 1024
	maxCachedForeignSens = 256
)

// evictOne removes an arbitrary entry from a full cache map.
func evictOne[K comparable, V any](m map[K]V) {
	for k := range m {
		delete(m, k)
		return
	}
}

// ErrConstrained is returned by Compile for constrained policies: their
// releases go through the policy-graph machinery in package constraints,
// which the engine does not accelerate. Callers fall back to the legacy
// path.
var ErrConstrained = errors.New("engine: constrained policies are served by the legacy release path")

// Plan is a compiled policy: every sensitivity and layout the release
// mechanisms need, computed once. Plans are immutable after Compile apart
// from internal caches and are safe for concurrent use by any number of
// engines.
type Plan struct {
	pol *policy.Policy
	dom *domain.Domain

	histSens float64
	histErr  error

	cumSens float64
	cumErr  error

	sumSens float64 // k-means qsum sensitivity (Lemma 6.1)
	kmErr   error

	// part is the policy's own partition (for partitioned secret graphs);
	// partSens is S(h_B, P) for it. blockOf is the point→block table,
	// built lazily on first dataset indexing (blockOnce) so registering a
	// partition policy that never serves a release costs no table memory.
	part      domain.Partition
	partSens  float64
	blockOnce sync.Once
	blockOf   []int32

	// theta is the Ordered Hierarchical block width the policy's graph
	// dictates; rangeErr records why range releases are unavailable.
	theta    int
	rangeErr error

	// maxEdge is the graph's largest edge length, compiled once: it drives
	// the linear-query sensitivity (Section 5) without re-walking the graph
	// per call.
	maxEdge float64

	// explicit holds the compiled artifacts of an explicit (adjacency-list)
	// secret graph: the all-pairs BFS distance table, the connected-
	// component index, and edge statistics. Nil for implicit graph kinds.
	explicit *explicitPlan

	// mu guards the caches below. Read paths (every release) take the read
	// lock; expensive construction (OH tree builds) happens outside the
	// lock entirely so a first-use build never stalls concurrent releases.
	mu sync.RWMutex
	// oh caches the Ordered Hierarchical layout per fanout: tree
	// construction is the dominant cost of the legacy range-release path.
	oh map[int]*ordered.OH
	// foreignPartSens caches S(h_B, P) for partitions other than the
	// policy's own (Session.ReleasePartitionHistogram accepts any).
	foreignPartSens map[domain.Partition]float64
	// indexes caches one DatasetIndex per dataset so every session over
	// this plan shares the incremental counts. Entries live until Forget.
	indexes map[*domain.Dataset]*DatasetIndex

	// vecs is the plan's buffer arena: it pools the O(|T|) scratch vectors
	// a release stages its truth in (range-release histogram counts,
	// cumulative prefix arrays) and hands back before returning. Only
	// buffers that never escape a release go through the arena — vectors
	// the caller keeps are carved fresh — so reuse can never alias a
	// published release.
	vecs sync.Pool
}

// Compile builds the plan for an unconstrained policy. Sensitivities that
// do not apply to the policy's domain (cumulative counts over
// multi-attribute domains, range releases for unsupported graphs) record
// their error and surface it at release time, mirroring the legacy path.
func Compile(pol *policy.Policy) (*Plan, error) {
	if pol == nil {
		return nil, errors.New("engine: nil policy")
	}
	if !pol.Unconstrained() {
		return nil, ErrConstrained
	}
	p := &Plan{
		pol:             pol,
		dom:             pol.Domain(),
		oh:              make(map[int]*ordered.OH),
		foreignPartSens: make(map[domain.Partition]float64),
		indexes:         make(map[*domain.Dataset]*DatasetIndex),
	}
	p.vecs.New = func() any { return new([]float64) }
	p.histSens, p.histErr = pol.HistogramSensitivity()
	p.cumSens, p.cumErr = pol.CumulativeHistogramSensitivity()
	p.sumSens, p.kmErr = pol.SumSensitivity()
	p.maxEdge = pol.Graph().MaxEdgeDistance()
	p.compilePartition()
	p.compileRange()
	p.compileExplicit()
	return p, nil
}

// explicitPlan is the compiled form of an explicit secret graph.
type explicitPlan struct {
	n     int
	edges int
	// dist is the flat all-pairs hop-distance table, row-major: dist[x*n+y]
	// is d_G(x, y), -1 where disconnected. Nil when n exceeds
	// maxDistTableVertices; HopDistance then falls back to the graph's
	// memoized BFS.
	dist []int32
	// comp labels each vertex with its connected-component id; numComp
	// counts components. Two vertices have finite hop distance iff their
	// labels agree, so component checks never touch the distance table.
	comp    []int32
	numComp int
}

// compileExplicit precomputes the distance and component indexes for
// explicit secret graphs, so no release — and no diagnostic endpoint —
// ever re-runs BFS on the hot path.
func (p *Plan) compileExplicit() {
	g, ok := p.pol.Graph().(*secgraph.Explicit)
	if !ok {
		return
	}
	n := int(p.dom.Size())
	labels, sizes := g.ComponentLabels()
	ep := &explicitPlan{n: n, edges: g.NumEdges(), comp: make([]int32, n), numComp: len(sizes)}
	for i, l := range labels {
		ep.comp[i] = int32(l)
	}
	if n <= maxDistTableVertices {
		// ComputeDistances bypasses the graph's BFS memo: the flat table is
		// the only copy the plan keeps, rather than doubling every row into
		// the memo map for the policy's lifetime.
		ep.dist = make([]int32, n*n)
		for x := 0; x < n; x++ {
			copy(ep.dist[x*n:(x+1)*n], g.ComputeDistances(x))
		}
	}
	p.explicit = ep
}

// compilePartition precomputes the sensitivity for the policy's own
// partition, when the secret graph is partitioned.
func (p *Plan) compilePartition() {
	g, ok := p.pol.Graph().(*secgraph.PartitionGraph)
	if !ok {
		return
	}
	p.part = g.Partition()
	sens, err := p.pol.PartitionHistogramSensitivity(p.part)
	if err != nil {
		p.part = nil
		return
	}
	p.partSens = sens
}

// blockTable returns the point→block lookup table for the registered
// partition, building it once on first use (nil for large domains, where
// Partition.Block arithmetic is used instead).
func (p *Plan) blockTable() []int32 {
	p.blockOnce.Do(func() {
		if p.part == nil || p.dom.Size() > maxBlockTableSize {
			return
		}
		table := make([]int32, p.dom.Size())
		for i := range table {
			table[i] = int32(p.part.Block(domain.Point(i)))
		}
		p.blockOf = table
	})
	return p.blockOf
}

// RangeTheta derives the Ordered Hierarchical block width θ that a
// policy's graph dictates for range releases. It is the single home of the
// graph-kind switch (and its error texts, which are part of the facade's
// documented behavior): both plan compilation and the legacy
// NewRangeReleaser call it, so the two paths can never drift.
func RangeTheta(pol *policy.Policy) (int, error) {
	if pol.Domain().NumAttrs() != 1 {
		return 0, errors.New("blowfish: range release requires a one-dimensional ordered domain")
	}
	size := int(pol.Domain().Size())
	switch g := pol.Graph().(type) {
	case *secgraph.DistanceThreshold:
		theta := int(math.Floor(g.Theta()))
		if theta < 1 {
			theta = 1
		}
		return theta, nil
	case *secgraph.Complete:
		return size, nil
	case *secgraph.Explicit:
		// An explicit graph's edges all span at most its longest edge L, so
		// the graph is a subgraph of S^{d,ceil(L)} — it declares no secret
		// pair that threshold graph does not. Calibrating the Ordered
		// Hierarchical release for θ = ceil(L) therefore protects every
		// explicit secret pair (a subgraph only removes constraints, never
		// adds them); for sparser graphs the noise is conservative, exactly
		// as S^{d,θ} is conservative for its own non-edges within θ.
		theta := int(math.Ceil(g.MaxEdgeDistance()))
		if theta < 1 {
			theta = 1 // edgeless graphs: any positive block width works
		}
		if theta > size {
			theta = size
		}
		return theta, nil
	default:
		return 0, fmt.Errorf("blowfish: range release requires a distance-threshold, full-domain or explicit policy, got %s", g.Name())
	}
}

// compileRange caches the RangeTheta derivation for the plan.
func (p *Plan) compileRange() {
	p.theta, p.rangeErr = RangeTheta(p.pol)
}

// Policy returns the compiled policy.
func (p *Plan) Policy() *policy.Policy { return p.pol }

// Domain returns the policy's domain T.
func (p *Plan) Domain() *domain.Domain { return p.dom }

// HistogramSensitivity returns the cached S(h, P).
func (p *Plan) HistogramSensitivity() (float64, error) { return p.histSens, p.histErr }

// CumulativeSensitivity returns the cached S(S_T, P).
func (p *Plan) CumulativeSensitivity() (float64, error) { return p.cumSens, p.cumErr }

// KMeansSensitivities returns the cached (qsize, qsum) sensitivities of
// private k-means (Lemma 6.1).
func (p *Plan) KMeansSensitivities() (sizeSens, sumSens float64, err error) {
	if p.kmErr != nil {
		return 0, 0, p.kmErr
	}
	if p.histErr != nil {
		return 0, 0, p.histErr
	}
	return p.histSens, p.sumSens, nil
}

// LinearSensitivity returns S(f_w, P) for the weighted per-individual sum
// over a one-dimensional domain, from the compiled max edge length:
// max_i |w_i| · L (Section 5's linear sum query), with no graph walk per
// call.
func (p *Plan) LinearSensitivity(w []float64) (float64, error) {
	if p.dom.NumAttrs() != 1 {
		return 0, errors.New("engine: linear query requires a one-dimensional domain")
	}
	maxW := 0.0
	for _, wi := range w {
		if a := math.Abs(wi); a > maxW {
			maxW = a
		}
	}
	return maxW * p.maxEdge, nil
}

// MaxEdgeDistance returns the compiled largest edge length of the policy's
// graph.
func (p *Plan) MaxEdgeDistance() float64 { return p.maxEdge }

// ExplicitStats reports the compiled edge and connected-component counts of
// an explicit secret graph; ok is false for implicit graph kinds.
func (p *Plan) ExplicitStats() (edges, components int, ok bool) {
	if p.explicit == nil {
		return 0, 0, false
	}
	return p.explicit.edges, p.explicit.numComp, true
}

// HopDistance returns d_G(x, y) for the policy's graph. Explicit graphs
// answer from the compiled all-pairs table (O(1), no BFS); implicit kinds
// delegate to their analytic formulas.
func (p *Plan) HopDistance(x, y domain.Point) float64 {
	if !p.dom.Contains(x) || !p.dom.Contains(y) {
		return math.Inf(1)
	}
	if ep := p.explicit; ep != nil {
		if x == y {
			return 0
		}
		// Cross-component pairs answer from the component index alone.
		if ep.comp[x] != ep.comp[y] {
			return math.Inf(1)
		}
		if ep.dist != nil {
			return float64(ep.dist[int(x)*ep.n+int(y)])
		}
	}
	return p.pol.Graph().HopDistance(x, y)
}

// SameComponent reports whether x and y are connected in an explicit
// secret graph (ok=false for implicit kinds, where connectivity follows
// from the analytic hop distance instead).
func (p *Plan) SameComponent(x, y domain.Point) (connected, ok bool) {
	if p.explicit == nil || !p.dom.Contains(x) || !p.dom.Contains(y) {
		return false, false
	}
	return p.explicit.comp[x] == p.explicit.comp[y], true
}

// Partition returns the policy's own partition, or nil when the secret
// graph is not partitioned.
func (p *Plan) Partition() domain.Partition { return p.part }

// PartitionSensitivity returns S(h_B, P) for part, cached: the policy's own
// partition hits the compile-time value, any other partition is computed
// once and memoized (the computation scans the domain for refinement).
// Partitions of uncomparable dynamic type cannot be map keys and skip the
// cache — they recompute per call, as the legacy path always did.
func (p *Plan) PartitionSensitivity(part domain.Partition) (float64, error) {
	if part == nil {
		return 0, errors.New("engine: nil partition")
	}
	if p.isRegistered(part) {
		return p.partSens, nil
	}
	cacheable := reflect.TypeOf(part).Comparable()
	if cacheable {
		p.mu.RLock()
		sens, ok := p.foreignPartSens[part]
		p.mu.RUnlock()
		if ok {
			return sens, nil
		}
	}
	sens, err := p.pol.PartitionHistogramSensitivity(part)
	if err != nil {
		return 0, err
	}
	if cacheable {
		p.mu.Lock()
		if len(p.foreignPartSens) >= maxCachedForeignSens {
			evictOne(p.foreignPartSens)
		}
		p.foreignPartSens[part] = sens
		p.mu.Unlock()
	}
	return sens, nil
}

// blockIndex returns the block of pt under the registered partition via the
// compiled table when available.
func (p *Plan) blockIndex(pt domain.Point) int {
	if table := p.blockTable(); table != nil {
		return int(table[pt])
	}
	return p.part.Block(pt)
}

// isRegistered reports whether part is the plan's own partition. Interface
// equality panics when both sides hold the same uncomparable dynamic type,
// so the comparison is guarded: uncomparable partitions are simply never
// treated as registered (they take the slower generic path).
func (p *Plan) isRegistered(part domain.Partition) bool {
	if p.part == nil || part == nil {
		return false
	}
	if !reflect.TypeOf(part).Comparable() {
		return false
	}
	return part == p.part
}

// OHFor returns the Ordered Hierarchical layout for the given fanout,
// building it on first use and serving the cached trees afterwards. The
// layout is immutable and shared safely across concurrent releases. The
// O(|T|) tree build runs outside the plan lock so a first-use build never
// stalls concurrent releases; two racing first uses may both build, and
// the loser's tree is discarded.
func (p *Plan) OHFor(fanout int) (*ordered.OH, error) {
	if p.rangeErr != nil {
		return nil, p.rangeErr
	}
	p.mu.RLock()
	oh, ok := p.oh[fanout]
	p.mu.RUnlock()
	if ok {
		return oh, nil
	}
	built, err := ordered.NewOH(int(p.dom.Size()), p.theta, fanout)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if oh, ok := p.oh[fanout]; ok {
		return oh, nil
	}
	p.oh[fanout] = built
	return built, nil
}

// Index returns the shared DatasetIndex for ds, building it on first use.
// It fails with domain.ErrDomainMismatch when ds lives over a different
// domain than the policy. The index is cached for the plan's lifetime;
// Forget releases it.
func (p *Plan) Index(ds *domain.Dataset) (*DatasetIndex, error) {
	if ds == nil {
		return nil, errors.New("engine: nil dataset")
	}
	if !p.dom.Equal(ds.Domain()) {
		return nil, domain.ErrDomainMismatch
	}
	p.mu.RLock()
	idx, ok := p.indexes[ds]
	p.mu.RUnlock()
	if ok {
		return idx, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.indexes[ds]; ok {
		return idx, nil
	}
	if len(p.indexes) >= maxCachedIndexes {
		evictOne(p.indexes)
	}
	idx = newDatasetIndex(p, ds)
	p.indexes[ds] = idx
	return idx, nil
}

// Forget drops the cached index for ds, releasing its memory. Servers call
// it when a dataset is deleted.
func (p *Plan) Forget(ds *domain.Dataset) {
	p.mu.Lock()
	delete(p.indexes, ds)
	p.mu.Unlock()
}

// getVec leases a scratch vector from the plan's buffer arena. The lease is
// a pointer so returning it to the pool stays allocation-free; callers
// append into (*v)[:0], store the grown slice back through the pointer, and
// putVec it before returning.
func (p *Plan) getVec() *[]float64 { return p.vecs.Get().(*[]float64) }

// putVec returns a leased scratch vector to the arena. The buffer must not
// be referenced by anything that outlives the release that leased it.
func (p *Plan) putVec(v *[]float64) { p.vecs.Put(v) }
