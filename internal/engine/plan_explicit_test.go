package engine

import (
	"math"
	"math/rand/v2"
	"testing"

	"blowfish/internal/composition"
	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// randomExplicit builds a random explicit graph over a line domain of the
// given size: each vertex pair is an edge with probability p.
func randomExplicit(t testing.TB, rng *rand.Rand, size int, p float64) (*domain.Domain, *secgraph.Explicit) {
	t.Helper()
	d, err := domain.Line("v", size)
	if err != nil {
		t.Fatal(err)
	}
	g, err := secgraph.NewExplicit(d, "random")
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < size; x++ {
		for y := x + 1; y < size; y++ {
			if rng.Float64() < p {
				if err := g.AddEdge(domain.Point(x), domain.Point(y)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return d, g
}

// TestExplicitPlanSensitivitiesMatchOracle is the tentpole property test:
// on random explicit graphs, every sensitivity the plan compiles must equal
// the exhaustive Definition 4.1 oracle's answer. The oracle enumerates
// neighboring databases directly, so agreement here means the compiled
// fast path calibrates exactly the noise the definition demands.
func TestExplicitPlanSensitivitiesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 25; trial++ {
		size := 4 + rng.IntN(5)                 // |T| in [4, 8]
		p := []float64{0, 0.2, 0.5, 1}[trial%4] // include edgeless and complete
		_, g := randomExplicit(t, rng, size, p)
		pol := policy.New(g)
		plan, err := Compile(pol)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := policy.NewOracle(pol, 2)
		if err != nil {
			t.Fatal(err)
		}

		histogram := func(ds *domain.Dataset) []float64 {
			h, err := ds.Histogram()
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
		wantHist := oracle.Sensitivity(histogram)
		gotHist, err := plan.HistogramSensitivity()
		if err != nil {
			t.Fatal(err)
		}
		if gotHist != wantHist {
			t.Fatalf("trial %d (|T|=%d, m=%d): histogram sensitivity %v, oracle %v",
				trial, size, g.NumEdges(), gotHist, wantHist)
		}

		cumulative := func(ds *domain.Dataset) []float64 {
			c, err := ds.CumulativeHistogram()
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		wantCum := oracle.Sensitivity(cumulative)
		gotCum, err := plan.CumulativeSensitivity()
		if err != nil {
			t.Fatal(err)
		}
		if gotCum != wantCum {
			t.Fatalf("trial %d (|T|=%d, m=%d): cumulative sensitivity %v, oracle %v",
				trial, size, g.NumEdges(), gotCum, wantCum)
		}

		// Linear query with random weights: S = max|w| · maxEdge.
		w := make([]float64, 2)
		for i := range w {
			w[i] = rng.Float64()*4 - 2
		}
		linear := func(ds *domain.Dataset) []float64 {
			var sum float64
			for i := 0; i < ds.Len(); i++ {
				sum += w[i] * float64(ds.At(i))
			}
			return []float64{sum}
		}
		wantLin := oracle.Sensitivity(linear)
		gotLin, err := plan.LinearSensitivity(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotLin-wantLin) > 1e-9 {
			t.Fatalf("trial %d: linear sensitivity %v, oracle %v (w=%v)", trial, gotLin, wantLin, w)
		}
	}
}

// TestExplicitPlanDistanceTable pins the compiled all-pairs table and the
// component index against fresh BFS on random graphs.
func TestExplicitPlanDistanceTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 10; trial++ {
		size := 8 + rng.IntN(25)
		_, g := randomExplicit(t, rng, size, 0.08)
		plan, err := Compile(policy.New(g))
		if err != nil {
			t.Fatal(err)
		}
		edges, comps, ok := plan.ExplicitStats()
		if !ok {
			t.Fatal("ExplicitStats not ok for an explicit graph")
		}
		if edges != g.NumEdges() || comps != g.Components() {
			t.Fatalf("stats (%d, %d), want (%d, %d)", edges, comps, g.NumEdges(), g.Components())
		}
		for x := 0; x < size; x++ {
			for y := 0; y < size; y++ {
				px, py := domain.Point(x), domain.Point(y)
				want := g.HopDistance(px, py)
				got := plan.HopDistance(px, py)
				if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
					t.Fatalf("HopDistance(%d,%d) = %v, want %v", x, y, got, want)
				}
				conn, ok := plan.SameComponent(px, py)
				if !ok {
					t.Fatal("SameComponent not ok for an explicit graph")
				}
				if conn != !math.IsInf(want, 1) {
					t.Fatalf("SameComponent(%d,%d) = %v, but hop distance is %v", x, y, conn, want)
				}
			}
		}
	}
}

// TestExplicitRangeThetaIsSubgraphSafe pins the range-release calibration:
// θ is ceil of the longest edge, so the explicit graph is a subgraph of
// S^{d,θ} — every secret pair's hop distance under the threshold graph is
// no larger than the budget split assumes.
func TestExplicitRangeThetaIsSubgraphSafe(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 2))
	for trial := 0; trial < 10; trial++ {
		d, g := randomExplicit(t, rng, 12+rng.IntN(20), 0.1)
		pol := policy.New(g)
		theta, err := RangeTheta(pol)
		if err != nil {
			t.Fatal(err)
		}
		if theta < 1 || int64(theta) > d.Size() {
			t.Fatalf("theta = %d out of range", theta)
		}
		err = secgraph.Edges(g, func(x, y domain.Point) bool {
			if d.L1(x, y) > float64(theta) {
				t.Fatalf("edge (%d,%d) spans %v > θ=%d: not a subgraph of the threshold graph",
					x, y, d.L1(x, y), theta)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestExplicitPlanServesReleases smoke-tests the four release kinds end to
// end through an engine over an explicit-graph plan.
func TestExplicitPlanServesReleases(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	d, g := randomExplicit(t, rng, 32, 0.15)
	plan, err := Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	acct, err := composition.NewAccountant(100)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, acct, noise.NewSource(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := domain.NewDataset(d)
	for i := 0; i < 100; i++ {
		ds.MustAdd(domain.Point(i % 32))
	}
	idx, err := eng.Index(ds)
	if err != nil {
		t.Fatal(err)
	}
	if h, err := eng.ReleaseHistogram(idx, 0.5); err != nil || len(h) != 32 {
		t.Fatalf("histogram: %v (len %d)", err, len(h))
	}
	if raw, inf, err := eng.ReleaseCumulative(idx, 0.5); err != nil || len(raw) != 32 || len(inf) != 32 {
		t.Fatalf("cumulative: %v", err)
	}
	rel, err := eng.NewRangeRelease(idx, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Range(3, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PrivateKMeans(idx, 2, 3, 0.5); err != nil {
		t.Fatal(err)
	}
}
