package experiments

import (
	"fmt"

	"blowfish/internal/datagen"
	"blowfish/internal/hierarchy"
	"blowfish/internal/noise"
	"blowfish/internal/ordered"
	"blowfish/internal/wavelet"
)

// AblSplit is an ablation of the Ordered Hierarchical budget split (not a
// paper figure): range query MSE under the Eq. (15) optimal split versus
// naive alternatives, on the adult capital-loss workload at θ=100.
func AblSplit(scale Scale, seed int64) (*Figure, error) {
	ds, err := datagen.AdultCapitalLoss(scale.AdultN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	counts, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	size := len(counts)
	oh, err := ordered.NewOH(size, 100, 16)
	if err != nil {
		return nil, err
	}
	cum := cumulate(counts)
	los, his, truth := randomRanges(cum, scale.RangeQueries, seed+1)

	fig := &Figure{
		ID:     "abl-split",
		Title:  "Ablation: OH budget split (θ=100, adult capital-loss)",
		XLabel: "epsilon",
		YLabel: "range query MSE",
		X:      scale.Epsilons,
	}
	type split struct {
		name string
		frac float64 // ε_S fraction; -1 means Eq. (15)
	}
	for _, sp := range []split{{"optimal-eq15", -1}, {"half-half", 0.5}, {"s-heavy", 0.9}, {"h-heavy", 0.1}} {
		series := Series{Name: sp.name}
		for ei, eps := range scale.Epsilons {
			epsS, epsH := oh.OptimalSplit(eps)
			if sp.frac >= 0 {
				epsS = sp.frac * eps
				epsH = eps - epsS
			}
			src := noise.NewSource(seed + 100*int64(ei) + 7)
			var sq float64
			for r := 0; r < scale.Reps; r++ {
				rel, err := oh.ReleaseWithSplit(counts, epsS, epsH, src)
				if err != nil {
					return nil, err
				}
				for qi := range los {
					got, err := rel.Range(los[qi], his[qi])
					if err != nil {
						return nil, err
					}
					diff := got - truth[qi]
					sq += diff * diff
				}
			}
			series.Y = append(series.Y, sq/float64(scale.Reps*len(los)))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblBaselines compares the differential-privacy range-query baselines —
// flat Laplace histogram, hierarchical (Hay [9]), Privelet wavelet ([19]) —
// with the Blowfish ordered mechanism (θ=1) on the twitter latitude
// workload. Not a paper figure; it substantiates the Section 7 claim that
// the ordered mechanism beats the entire DP family.
func AblBaselines(scale Scale, seed int64) (*Figure, error) {
	tw, err := datagen.Twitter(scale.TwitterN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	ds, err := tw.Project(0)
	if err != nil {
		return nil, err
	}
	counts, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	size := len(counts)
	cum := cumulate(counts)
	los, his, truth := randomRanges(cum, scale.RangeQueries, seed+1)

	tree, err := hierarchy.New(size, 16)
	if err != nil {
		return nil, err
	}
	wave, err := wavelet.New(size)
	if err != nil {
		return nil, err
	}
	ord, err := ordered.NewOH(size, 1, 16)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "abl-baselines",
		Title:  "Ablation: DP baselines vs Blowfish ordered mechanism (twitter latitude)",
		XLabel: "epsilon",
		YLabel: "range query MSE",
		X:      scale.Epsilons,
	}
	type system struct {
		name   string
		answer func(eps float64, src *noise.Source) (func(lo, hi int) (float64, error), error)
	}
	systems := []system{
		{"flat-laplace", func(eps float64, src *noise.Source) (func(int, int) (float64, error), error) {
			noisy := make([]float64, size)
			for i := range counts {
				noisy[i] = counts[i] + src.Laplace(2/eps)
			}
			return func(lo, hi int) (float64, error) {
				var s float64
				for i := lo; i <= hi; i++ {
					s += noisy[i]
				}
				return s, nil
			}, nil
		}},
		{"hierarchical", func(eps float64, src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := tree.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return func(lo, hi int) (float64, error) {
				v, _, err := rel.RangeQuery(lo, hi)
				return v, err
			}, nil
		}},
		{"wavelet-privelet", func(eps float64, src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := wave.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return rel.RangeQuery, nil
		}},
		{"blowfish-ordered", func(eps float64, src *noise.Source) (func(int, int) (float64, error), error) {
			rel, err := ord.Release(counts, eps, src)
			if err != nil {
				return nil, err
			}
			return rel.Range, nil
		}},
	}
	for si, sys := range systems {
		series := Series{Name: sys.name}
		for ei, eps := range scale.Epsilons {
			src := noise.NewSource(seed + 1000*int64(si) + int64(ei) + 3)
			var sq float64
			for r := 0; r < scale.Reps; r++ {
				answer, err := sys.answer(eps, src)
				if err != nil {
					return nil, fmt.Errorf("abl-baselines: %s: %w", sys.name, err)
				}
				for qi := range los {
					got, err := answer(los[qi], his[qi])
					if err != nil {
						return nil, err
					}
					diff := got - truth[qi]
					sq += diff * diff
				}
			}
			series.Y = append(series.Y, sq/float64(scale.Reps*len(los)))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// cumulate returns prefix sums.
func cumulate(counts []float64) []float64 {
	out := make([]float64, len(counts))
	run := 0.0
	for i, c := range counts {
		run += c
		out[i] = run
	}
	return out
}

// randomRanges returns a fixed random range workload and its true answers.
func randomRanges(cum []float64, n int, seed int64) (los, his []int, truth []float64) {
	src := noise.NewSource(seed)
	size := len(cum)
	los = make([]int, n)
	his = make([]int, n)
	truth = make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := src.Intn(size), src.Intn(size)
		if a > b {
			a, b = b, a
		}
		los[i], his[i] = a, b
		truth[i] = cum[b]
		if a > 0 {
			truth[i] -= cum[a-1]
		}
	}
	return los, his, truth
}
