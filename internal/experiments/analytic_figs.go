package experiments

import (
	"fmt"

	"blowfish/internal/constraints"
	"blowfish/internal/datagen"
	"blowfish/internal/domain"
	"blowfish/internal/ordered"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// Sec5 reproduces the Section 5 / Lemma 6.1 sensitivity "table": the
// policy-specific global sensitivities of the standard queries on the
// experiment domains, under every secret graph family.
func Sec5(scale Scale, seed int64) (*Figure, error) {
	fig := &Figure{
		ID:    "sec5",
		Title: "Policy-specific global sensitivities (Section 5, Lemma 6.1)",
	}
	twitter := domain.MustGrid(400, 300)
	skin := domain.MustNew(
		domain.Attribute{Name: "B", Size: 256},
		domain.Attribute{Name: "G", Size: 256},
		domain.Attribute{Name: "R", Size: 256},
	)
	adult := domain.MustLine("capital-loss", datagen.AdultCapitalLossDomain)
	addRow := func(domName string, d *domain.Domain, g secgraph.Graph) error {
		p := policy.New(g)
		hist, err := p.HistogramSensitivity()
		if err != nil {
			return err
		}
		sum, err := p.SumSensitivity()
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-8s %-16s S(h)=%g S(qsum)=%g", domName, g.Name(), hist, sum)
		if d.NumAttrs() == 1 {
			cum, err := p.CumulativeHistogramSensitivity()
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" S(S_T)=%g", cum)
		}
		fig.Notes = append(fig.Notes, row)
		return nil
	}
	for _, item := range []struct {
		name string
		d    *domain.Domain
	}{{"twitter", twitter}, {"skin", skin}, {"adult", adult}} {
		if err := addRow(item.name, item.d, secgraph.NewComplete(item.d)); err != nil {
			return nil, err
		}
		if err := addRow(item.name, item.d, secgraph.NewAttribute(item.d)); err != nil {
			return nil, err
		}
		if err := addRow(item.name, item.d, secgraph.MustDistanceThreshold(item.d, 100)); err != nil {
			return nil, err
		}
	}
	// Partition sensitivity: the finest partition releases exactly.
	part, err := domain.NewUniformGridByCount(twitter, 120000)
	if err != nil {
		return nil, err
	}
	p := policy.New(secgraph.NewPartition(part))
	sum, err := p.SumSensitivity()
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("%-8s %-16s S(qsum)=%g (exact clustering possible)", "twitter", "partition|120000", sum))
	return fig, nil
}

// Sec7 reproduces the Theorem 7.1/7.2 error-model sweep: the Eq. (14/15)
// expected range query error of the Ordered Hierarchical mechanism as θ
// grows from 1 (pure ordered, error 4/ε² independent of |T|) to |T| (pure
// hierarchical, error O(log³|T|/ε²)), showing where the hybrid's S-chain
// stops paying for itself.
func Sec7(scale Scale, seed int64) (*Figure, error) {
	const (
		size   = 4357
		fanout = 16
		eps    = 1.0
	)
	thetas := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4357}
	fig := &Figure{
		ID:     "sec7",
		Title:  "Ordered Hierarchical error model (Eq. 14/15), |T|=4357, f=16, ε=1",
		XLabel: "theta",
		YLabel: "expected range query error",
	}
	var xs, model []float64
	for _, th := range thetas {
		oh, err := ordered.NewOH(size, th, fanout)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(th))
		model = append(model, oh.MinimalExpectedRangeError(eps))
	}
	fig.X = xs
	fig.Series = []Series{{Name: "model E*[q]", Y: model}}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("theta=1 bound (Thm 7.1): %g", ordered.OrderedRangeErrorBound(eps)),
	)
	return fig, nil
}

// Sec8 reproduces the Section 8 sensitivity results: Example 8.3 and the
// closed forms of Theorems 8.4-8.6 on concrete constraint sets, each
// cross-checked against the policy-graph search where feasible.
func Sec8(scale Scale, seed int64) (*Figure, error) {
	fig := &Figure{
		ID:    "sec8",
		Title: "Histogram sensitivity under count constraints (Section 8)",
	}
	// Example 8.3: 2×2×3 domain, marginal [A1,A2], full-domain secrets.
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 2},
		domain.Attribute{Name: "A3", Size: 3},
	)
	m, err := constraints.NewMarginal(d, []int{0, 1})
	if err != nil {
		return nil, err
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(d.MustEncode(0, 0, 0))
	set, err := m.Set(ref)
	if err != nil {
		return nil, err
	}
	pg, err := constraints.BuildPolicyGraph(set, secgraph.NewComplete(d))
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"Example 8.3: marginal [A1,A2] on 2x2x3, full-domain secrets: α=%d ξ=%d S(h,P)=%g (Thm 8.4: %g)",
		pg.Alpha(), pg.Xi(), pg.SensitivityBound(), m.FullDomainSensitivity()))

	// Theorem 8.5: disjoint marginals under attribute secrets.
	d3 := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 4},
		domain.Attribute{Name: "A3", Size: 3},
	)
	m1, err := constraints.NewMarginal(d3, []int{0})
	if err != nil {
		return nil, err
	}
	m2, err := constraints.NewMarginal(d3, []int{1})
	if err != nil {
		return nil, err
	}
	s85, err := constraints.DisjointMarginalsAttributeSensitivity([]*constraints.Marginal{m1, m2})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"Theorem 8.5: disjoint marginals [A1],[A2] (sizes 2,4) under G^attr: S(h,P)=%g", s85))

	// Theorem 8.6: disjoint rectangles on a grid under distance-threshold
	// secrets.
	grid := domain.MustGrid(40, 40)
	rects := []constraints.Rect{
		{Lo: []int{0, 0}, Hi: []int{4, 4}},
		{Lo: []int{8, 0}, Hi: []int{12, 4}},    // within θ=4 of the first
		{Lo: []int{30, 30}, Hi: []int{34, 34}}, // far
	}
	rc, err := constraints.NewRectangleConstraints(grid, rects, 4)
	if err != nil {
		return nil, err
	}
	sens, exact := rc.Sensitivity()
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"Theorem 8.6: 3 disjoint ranges on 40x40 grid, θ=4: maxcomp=%d S(h,P)=%g exact=%v",
		rc.MaxComp(), sens, exact))
	return fig, nil
}
