// Package experiments reproduces every figure of the paper's evaluation:
// the k-means error ratios of Figure 1 (a-f), the range-query errors of
// Figure 2 (b, c) with the structural Figure 2(a), and the analytic
// sensitivity "tables" of Sections 5, 7 and 8. Each harness returns a
// Figure of named series that prints the same rows the paper plots;
// EXPERIMENTS.md records paper-vs-measured shape for each.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one line of a figure: y-values over the common x-axis.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a reproduced plot: an x-axis and one series per curve.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Notes carries free-form structural output (e.g. Figure 2(a)'s tree
	// shape) printed after the table.
	Notes []string
}

// Print renders the figure as an aligned table, one row per x-value and
// one column per series — the same rows/series the paper plots.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.X) > 0 {
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Name)
		}
		fmt.Fprintln(w, strings.Join(header, "\t"))
		for i, x := range f.X {
			row := []string{fmt.Sprintf("%g", x)}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, fmt.Sprintf("%.6g", s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			fmt.Fprintln(w, strings.Join(row, "\t"))
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintln(w, n)
	}
}

// Scale controls experiment cost. The paper's settings (PaperScale) need
// minutes to hours; QuickScale keeps unit tests fast; DefaultScale is the
// benchmark/CLI default that preserves every qualitative shape.
type Scale struct {
	// Name labels the scale in output.
	Name string
	// Reps is the number of repetitions per configuration (paper: 50).
	Reps int
	// Epsilons is the ε sweep (paper: 0.1..1.0 step 0.1).
	Epsilons []float64
	// TwitterN, SkinN, AdultN are dataset sizes.
	TwitterN, SkinN, AdultN int
	// SynthN is the synthetic dataset size (paper: 1000).
	SynthN int
	// RangeQueries is the number of random range queries (paper: 10000).
	RangeQueries int
	// KMeansIters is the number of Lloyd iterations (paper: 10).
	KMeansIters int
	// K is the number of clusters (paper: 4).
	K int
}

// QuickScale is small enough for unit tests (~seconds overall).
var QuickScale = Scale{
	Name:         "quick",
	Reps:         3,
	Epsilons:     []float64{0.1, 0.5, 1.0},
	TwitterN:     8000,
	SkinN:        12000,
	AdultN:       8000,
	SynthN:       1000,
	RangeQueries: 400,
	KMeansIters:  5,
	K:            4,
}

// DefaultScale preserves the paper's qualitative shapes at benchmark cost.
var DefaultScale = Scale{
	Name:         "default",
	Reps:         10,
	Epsilons:     []float64{0.1, 0.3, 0.5, 0.7, 1.0},
	TwitterN:     50000,
	SkinN:        60000,
	AdultN:       48842,
	SynthN:       1000,
	RangeQueries: 2000,
	KMeansIters:  10,
	K:            4,
}

// PaperScale matches the paper's parameters (50 reps, full datasets,
// ε ∈ 0.1..1.0, 10000 range queries). Expect long runtimes.
var PaperScale = Scale{
	Name:         "paper",
	Reps:         50,
	Epsilons:     []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	TwitterN:     193563,
	SkinN:        245057,
	AdultN:       48842,
	SynthN:       1000,
	RangeQueries: 10000,
	KMeansIters:  10,
	K:            4,
}

// Runner is a figure harness.
type Runner func(scale Scale, seed int64) (*Figure, error)

// Registry maps figure ids to their harnesses.
var Registry = map[string]Runner{
	"abl-baselines": AblBaselines,
	"abl-split":     AblSplit,
	"fig1a":         Fig1a,
	"fig1b":         Fig1b,
	"fig1c":         Fig1c,
	"fig1d":         Fig1d,
	"fig1e":         Fig1e,
	"fig1f":         Fig1f,
	"fig2a":         Fig2a,
	"fig2b":         Fig2b,
	"fig2c":         Fig2c,
	"sec5":          Sec5,
	"sec7":          Sec7,
	"sec8":          Sec8,
}

// IDs returns the registered figure ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// KMPerCellX is the east-west extent of one twitter grid cell: the paper's
// bounding box spans ~2222 km over 400 cells.
const KMPerCellX = 2222.0 / 400.0

// KMToCells converts a distance threshold in kilometres to grid cells.
func KMToCells(km float64) float64 {
	c := km / KMPerCellX
	if c < 1 {
		return 1
	}
	return c
}
