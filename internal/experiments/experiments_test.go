package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast while preserving the comparisons.
var tinyScale = Scale{
	Name:         "tiny",
	Reps:         2,
	Epsilons:     []float64{0.1, 1.0},
	TwitterN:     3000,
	SkinN:        6000,
	AdultN:       4000,
	SynthN:       500,
	RangeQueries: 200,
	KMeansIters:  4,
	K:            4,
}

func mean(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-baselines", "abl-split", "fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f", "fig2a", "fig2b", "fig2c", "sec5", "sec7", "sec8"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d figures, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	fig, err := Fig1a(tinyScale, 1)
	if err != nil {
		t.Fatalf("Fig1a: %v", err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(fig.Series))
	}
	if fig.Series[0].Name != "laplace" {
		t.Fatalf("first series = %q", fig.Series[0].Name)
	}
	// Shape: every Blowfish policy has a lower mean error ratio than the
	// Laplace baseline, and ratios are >= ~1 (private no better than exact).
	lap := mean(fig.Series[0].Y)
	for _, s := range fig.Series[1:] {
		if m := mean(s.Y); m > lap {
			t.Errorf("%s mean ratio %v above laplace %v", s.Name, m, lap)
		}
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0.9 {
				t.Errorf("%s ratio[%d] = %v < 0.9 (private beating exact implausibly)", s.Name, i, y)
			}
		}
	}
}

func TestFig1bShape(t *testing.T) {
	fig, err := Fig1b(tinyScale, 2)
	if err != nil {
		t.Fatalf("Fig1b: %v", err)
	}
	lap := mean(fig.Series[0].Y)
	for _, s := range fig.Series[1:] {
		if m := mean(s.Y); m > lap {
			t.Errorf("%s mean ratio %v above laplace %v", s.Name, m, lap)
		}
	}
}

func TestFig1cShape(t *testing.T) {
	fig, err := Fig1c(tinyScale, 3)
	if err != nil {
		t.Fatalf("Fig1c: %v", err)
	}
	lap := mean(fig.Series[0].Y)
	for _, s := range fig.Series[1:] {
		if m := mean(s.Y); m > lap*1.05 {
			t.Errorf("%s mean ratio %v above laplace %v", s.Name, m, lap)
		}
	}
}

func TestFig1dShape(t *testing.T) {
	fig, err := Fig1d(tinyScale, 4)
	if err != nil {
		t.Fatalf("Fig1d: %v", err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	// Laplace/Blowfish ratio should be >= 1 everywhere (Blowfish better).
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0.8 {
				t.Errorf("%s ratio[%d] = %v < 0.8", s.Name, i, y)
			}
		}
	}
	// The improvement shrinks with dataset size: 1% sample ratio above
	// full-data ratio on average (the Fig 1d observation).
	if mean(fig.Series[0].Y) < mean(fig.Series[2].Y) {
		t.Errorf("1%% sample ratio %v below full ratio %v", mean(fig.Series[0].Y), mean(fig.Series[2].Y))
	}
}

func TestFig1eShape(t *testing.T) {
	fig, err := Fig1e(tinyScale, 5)
	if err != nil {
		t.Fatalf("Fig1e: %v", err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	// Per dataset: attribute policy no worse than laplace.
	for i := 0; i < 6; i += 2 {
		lap, attr := mean(fig.Series[i].Y), mean(fig.Series[i+1].Y)
		if attr > lap*1.05 {
			t.Errorf("%s: attribute %v above laplace %v", fig.Series[i].Name, attr, lap)
		}
	}
}

func TestFig1fShape(t *testing.T) {
	fig, err := Fig1f(tinyScale, 6)
	if err != nil {
		t.Fatalf("Fig1f: %v", err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	lap := mean(fig.Series[0].Y)
	finest := fig.Series[len(fig.Series)-1]
	if finest.Name != "partition|120000" {
		t.Fatalf("last series = %q", finest.Name)
	}
	// The finest partition has sensitivity 0: exact clustering, ratio ~1.
	for i, y := range finest.Y {
		if y > 1.2 {
			t.Errorf("partition|120000 ratio[%d] = %v, want ~1 (exact)", i, y)
		}
	}
	for _, s := range fig.Series[1:] {
		if m := mean(s.Y); m > lap*1.05 {
			t.Errorf("%s mean ratio %v above laplace %v", s.Name, m, lap)
		}
	}
}

func TestFig2aStructure(t *testing.T) {
	fig, err := Fig2a(tinyScale, 7)
	if err != nil {
		t.Fatalf("Fig2a: %v", err)
	}
	joined := strings.Join(fig.Notes, "\n")
	for _, want := range []string{"S-nodes k = ceil(|T|/θ) = 4", "height h = ceil(log_f θ) = 2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	fig, err := Fig2b(tinyScale, 8)
	if err != nil {
		t.Fatalf("Fig2b: %v", err)
	}
	if len(fig.Series) != 7 {
		t.Fatalf("series = %d, want 7", len(fig.Series))
	}
	// Shape: the θ values whose H-subtrees are shallower than the full
	// domain's (θ ≤ 100 at fanout 16) sit strictly below the θ=full
	// baseline, and error keeps decreasing from there; θ=1000/500 share the
	// full domain's discrete tree height, so they bunch with the baseline
	// (as the top curves do in the paper's log-scale plot).
	full := mean(fig.Series[0].Y)
	for _, s := range fig.Series[1:3] { // theta=1000, theta=500
		if cur := mean(s.Y); cur > full*3 {
			t.Errorf("%s error %v implausibly above θ=full %v", s.Name, cur, full)
		}
	}
	prev := full
	for _, s := range fig.Series[3:] { // theta=100, 50, 10, 1
		cur := mean(s.Y)
		if cur > prev*1.25 { // slack for noise at tiny scale
			t.Errorf("%s error %v above previous θ's %v", s.Name, cur, prev)
		}
		prev = cur
	}
	// Orders of magnitude between full and θ=1.
	one := mean(fig.Series[len(fig.Series)-1].Y)
	if full < 20*one {
		t.Errorf("θ=full error %v not orders of magnitude above θ=1 %v", full, one)
	}
	// Error decreases with epsilon within each series.
	for _, s := range fig.Series {
		if s.Y[0] < s.Y[len(s.Y)-1] {
			t.Errorf("%s: error grew with epsilon: %v", s.Name, s.Y)
		}
	}
}

func TestFig2cShape(t *testing.T) {
	fig, err := Fig2c(tinyScale, 9)
	if err != nil {
		t.Fatalf("Fig2c: %v", err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	full := mean(fig.Series[0].Y)
	last := mean(fig.Series[len(fig.Series)-1].Y) // 5km ≈ ordered mechanism
	if full < 10*last {
		t.Errorf("θ=full error %v not well above θ=5km %v", full, last)
	}
}

func TestSec5Table(t *testing.T) {
	fig, err := Sec5(tinyScale, 10)
	if err != nil {
		t.Fatalf("Sec5: %v", err)
	}
	joined := strings.Join(fig.Notes, "\n")
	// Spot-check the diameters: twitter d(T)=698 ⇒ S(qsum)=1396 under full.
	if !strings.Contains(joined, "S(qsum)=1396") {
		t.Errorf("missing twitter full-domain qsum sensitivity:\n%s", joined)
	}
	// Skin attr: 2·255 = 510.
	if !strings.Contains(joined, "S(qsum)=510") {
		t.Errorf("missing skin attribute qsum sensitivity:\n%s", joined)
	}
	// Finest partition: qsum sensitivity 0.
	if !strings.Contains(joined, "S(qsum)=0") {
		t.Errorf("missing partition zero sensitivity:\n%s", joined)
	}
}

func TestSec7Model(t *testing.T) {
	fig, err := Sec7(tinyScale, 11)
	if err != nil {
		t.Fatalf("Sec7: %v", err)
	}
	y := fig.Series[0].Y
	// θ=1 model error is c1 = 4(|T|-1)/(|T|+1), just under the Theorem 7.1
	// bound of 4/ε².
	if y[0] > 4 || y[0] < 3.9 {
		t.Errorf("θ=1 model error = %v, want ≈4 (and ≤ 4)", y[0])
	}
	// Model error grows toward θ=|T|.
	if y[len(y)-1] < 10*y[0] {
		t.Errorf("θ=|T| model %v not well above θ=1 model %v", y[len(y)-1], y[0])
	}
}

func TestSec8Table(t *testing.T) {
	fig, err := Sec8(tinyScale, 12)
	if err != nil {
		t.Fatalf("Sec8: %v", err)
	}
	joined := strings.Join(fig.Notes, "\n")
	for _, want := range []string{
		"α=4 ξ=1 S(h,P)=8 (Thm 8.4: 8)",
		"S(h,P)=8",           // Thm 8.5: 2·max(2,4)
		"maxcomp=2 S(h,P)=6", // Thm 8.6
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestFigurePrint(t *testing.T) {
	fig := &Figure{
		ID:     "test",
		Title:  "t",
		XLabel: "x",
		X:      []float64{0.1, 0.5},
		Series: []Series{{Name: "a", Y: []float64{1, 2}}, {Name: "b", Y: []float64{3}}},
		Notes:  []string{"note-line"},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== test: t ==", "x\ta\tb", "0.1\t1\t3", "0.5\t2\t-", "note-line"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestKMToCells(t *testing.T) {
	if got := KMToCells(2222); got < 399 || got > 401 {
		t.Errorf("KMToCells(2222) = %v, want ~400", got)
	}
	if got := KMToCells(1); got != 1 {
		t.Errorf("KMToCells(1) = %v, want clamp to 1", got)
	}
}

func TestAblSplitShape(t *testing.T) {
	fig, err := AblSplit(tinyScale, 13)
	if err != nil {
		t.Fatalf("AblSplit: %v", err)
	}
	if len(fig.Series) != 4 || fig.Series[0].Name != "optimal-eq15" {
		t.Fatalf("series = %v", fig.Series)
	}
	// The Eq. (15) split is never much worse than any alternative.
	opt := mean(fig.Series[0].Y)
	for _, s := range fig.Series[1:] {
		if opt > mean(s.Y)*1.35 {
			t.Errorf("optimal split MSE %v above %s MSE %v", opt, s.Name, mean(s.Y))
		}
	}
}

func TestAblBaselinesShape(t *testing.T) {
	fig, err := AblBaselines(tinyScale, 14)
	if err != nil {
		t.Fatalf("AblBaselines: %v", err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	// The Blowfish ordered mechanism beats every DP baseline by a wide
	// margin.
	ordMSE := mean(fig.Series[3].Y)
	for _, s := range fig.Series[:3] {
		if mean(s.Y) < 5*ordMSE {
			t.Errorf("%s MSE %v not well above ordered mechanism %v", s.Name, mean(s.Y), ordMSE)
		}
	}
}
