package experiments

import (
	"fmt"
	"sort"

	"blowfish/internal/datagen"
	"blowfish/internal/domain"
	"blowfish/internal/kmeans"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// kmPolicy names one privacy configuration of the k-means comparison: the
// qsum sensitivity is the only thing that differs between the Laplace
// (differential privacy) baseline and each Blowfish policy (Lemma 6.1).
type kmPolicy struct {
	name     string
	sumSens  float64
	sizeSens float64
}

// laplacePolicy is the differential-privacy baseline: S(qsum) = 2·d(T).
func laplacePolicy(d *domain.Domain) kmPolicy {
	return mustPolicy("laplace", policy.Differential(d))
}

// mustPolicy derives both k-means sensitivities from an unconstrained
// policy: S(qsum) per Lemma 6.1 and S(qsize) = the histogram sensitivity
// (2, or 0 for edgeless graphs such as the finest partition).
func mustPolicy(name string, p *policy.Policy) kmPolicy {
	sum, err := p.SumSensitivity()
	if err != nil {
		panic(err) // unconstrained policy: cannot fail
	}
	size, err := p.HistogramSensitivity()
	if err != nil {
		panic(err)
	}
	return kmPolicy{name: name, sumSens: sum, sizeSens: size}
}

// thetaPolicy is the Blowfish distance-threshold policy G^{d,θ}.
func thetaPolicy(d *domain.Domain, label string, theta float64) kmPolicy {
	return mustPolicy(label, policy.New(secgraph.MustDistanceThreshold(d, theta)))
}

// attrPolicy is the Blowfish attribute policy G^attr.
func attrPolicy(d *domain.Domain, label string) kmPolicy {
	return mustPolicy(label, policy.New(secgraph.NewAttribute(d)))
}

// partitionPolicy is the Blowfish partitioned policy G^P.
func partitionPolicy(part domain.Partition, label string) kmPolicy {
	return mustPolicy(label, policy.New(secgraph.NewPartition(part)))
}

// kmeansErrorRatios runs the Figure 1 protocol on one dataset: for every ε
// and policy, the ratio mean(private objective)/mean(non-private objective)
// across reps, with private and non-private runs sharing initialization
// seeds so the comparison isolates noise scale.
func kmeansErrorRatios(id, title string, ds *domain.Dataset, policies []kmPolicy, scale Scale, seed int64) (*Figure, error) {
	vecs := ds.Vectors()
	d := ds.Domain()
	lo := make([]float64, d.NumAttrs())
	hi := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumAttrs(); i++ {
		hi[i] = float64(d.Attr(i).Size - 1)
	}
	cfg := kmeans.Config{K: scale.K, Iterations: scale.KMeansIters, Lo: lo, Hi: hi}

	// Non-private baseline objective per rep (shared across policies).
	baseline := make([]float64, scale.Reps)
	for r := 0; r < scale.Reps; r++ {
		res, err := kmeans.Lloyd(vecs, cfg, noise.NewSource(seed+int64(r)))
		if err != nil {
			return nil, fmt.Errorf("%s: baseline: %w", id, err)
		}
		baseline[r] = res.Objective
	}
	var baseMean float64
	for _, b := range baseline {
		baseMean += b
	}
	baseMean /= float64(scale.Reps)

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "epsilon",
		YLabel: "Objective(private)/Objective(non-private)",
		X:      scale.Epsilons,
	}
	for _, pol := range policies {
		series := Series{Name: pol.name}
		var lastRatios []float64
		for ei, eps := range scale.Epsilons {
			var total float64
			var ratios []float64
			for r := 0; r < scale.Reps; r++ {
				res, err := kmeans.PrivateLloyd(vecs, kmeans.PrivateConfig{
					Config:          cfg,
					Epsilon:         eps,
					SizeSensitivity: pol.sizeSens,
					SumSensitivity:  pol.sumSens,
				}, noise.NewSource(seed+int64(r)))
				if err != nil {
					return nil, fmt.Errorf("%s: %s: %w", id, pol.name, err)
				}
				total += res.Objective
				ratios = append(ratios, res.Objective/baseline[r])
			}
			series.Y = append(series.Y, total/float64(scale.Reps)/baseMean)
			if ei == len(scale.Epsilons)-1 {
				lastRatios = ratios
			}
		}
		fig.Series = append(fig.Series, series)
		// The paper plots mean with lower/upper quartiles over the reps;
		// report the spread at the largest ε as a note.
		q1, q3 := quartiles(lastRatios)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: per-rep ratio quartiles at ε=%g: q1=%.4g q3=%.4g (%d reps)",
			pol.name, scale.Epsilons[len(scale.Epsilons)-1], q1, q3, scale.Reps))
	}
	return fig, nil
}

// quartiles returns the lower and upper quartiles of xs (by sorted rank).
func quartiles(xs []float64) (q1, q3 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q1 = sorted[len(sorted)/4]
	q3 = sorted[(3*len(sorted))/4]
	return q1, q3
}

// Fig1a reproduces Figure 1(a): twitter k-means error vs ε under the
// Laplace mechanism and G^{L1,θ} for θ ∈ {2000, 1000, 500, 100} km.
func Fig1a(scale Scale, seed int64) (*Figure, error) {
	ds, err := datagen.Twitter(scale.TwitterN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	d := ds.Domain()
	policies := []kmPolicy{laplacePolicy(d)}
	for _, km := range []float64{2000, 1000, 500, 100} {
		policies = append(policies, thetaPolicy(d, fmt.Sprintf("blowfish|%gkm", km), KMToCells(km)))
	}
	return kmeansErrorRatios("fig1a", "Twitter: k-means error vs epsilon (G^{L1,θ})", ds, policies, scale, seed+1)
}

// Fig1b reproduces Figure 1(b): skin01 k-means error under G^{L1,θ} for
// θ ∈ {256, 128, 64, 32}.
func Fig1b(scale Scale, seed int64) (*Figure, error) {
	full, err := datagen.Skin(scale.SkinN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	ds, err := datagen.Subsample(full, 0.01, noise.NewSource(seed+1))
	if err != nil {
		return nil, err
	}
	d := ds.Domain()
	policies := []kmPolicy{laplacePolicy(d)}
	for _, th := range []float64{256, 128, 64, 32} {
		policies = append(policies, thetaPolicy(d, fmt.Sprintf("blowfish|%g", th), th))
	}
	return kmeansErrorRatios("fig1b", "Skin01: k-means error vs epsilon (G^{L1,θ})", ds, policies, scale, seed+2)
}

// Fig1c reproduces Figure 1(c): synthetic (0,1)^4, n=1000, k=4 under
// G^{L1,θ} for θ ∈ {1.0, 0.5, 0.25, 0.1} (in original units; one grid unit
// is 1/resolution).
func Fig1c(scale Scale, seed int64) (*Figure, error) {
	const resolution = 100
	ds, err := datagen.SyntheticClusters(scale.SynthN, 4, scale.K, 0.2, resolution, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	d := ds.Domain()
	policies := []kmPolicy{laplacePolicy(d)}
	for _, th := range []float64{1.0, 0.5, 0.25, 0.1} {
		policies = append(policies, thetaPolicy(d, fmt.Sprintf("blowfish|%g", th), th*resolution))
	}
	return kmeansErrorRatios("fig1c", "Synthetic n=1000, k=4: error vs epsilon (G^{L1,θ})", ds, policies, scale, seed+3)
}

// Fig1d reproduces Figure 1(d): the ratio
// Objective(Laplace)/Objective(Blowfish θ=128) on skin at 1%, 10% and full
// size, for ε ∈ {0.1, 0.5, 1}.
func Fig1d(scale Scale, seed int64) (*Figure, error) {
	full, err := datagen.Skin(scale.SkinN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	samples := []struct {
		name string
		frac float64
	}{
		{"1%sample", 0.01},
		{"10%sample", 0.10},
		{"full", 1.0},
	}
	eps := []float64{0.1, 0.5, 1.0}
	fig := &Figure{
		ID:     "fig1d",
		Title:  "Skin: Objective(Laplace)/Objective(Blowfish|128) vs epsilon",
		XLabel: "epsilon",
		YLabel: "objective ratio",
		X:      eps,
	}
	for si, smp := range samples {
		ds := full
		if smp.frac < 1 {
			ds, err = datagen.Subsample(full, smp.frac, noise.NewSource(seed+int64(si)+1))
			if err != nil {
				return nil, err
			}
		}
		d := ds.Domain()
		lap := laplacePolicy(d)
		bf := thetaPolicy(d, "blowfish|128", 128)
		sub := scale
		sub.Epsilons = eps
		ratios, err := kmeansObjectives(ds, []kmPolicy{lap, bf}, sub, seed+100*int64(si))
		if err != nil {
			return nil, err
		}
		series := Series{Name: smp.name}
		for i := range eps {
			series.Y = append(series.Y, ratios[0][i]/ratios[1][i])
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// kmeansObjectives returns mean private objectives per policy per epsilon.
func kmeansObjectives(ds *domain.Dataset, policies []kmPolicy, scale Scale, seed int64) ([][]float64, error) {
	vecs := ds.Vectors()
	d := ds.Domain()
	lo := make([]float64, d.NumAttrs())
	hi := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumAttrs(); i++ {
		hi[i] = float64(d.Attr(i).Size - 1)
	}
	cfg := kmeans.Config{K: scale.K, Iterations: scale.KMeansIters, Lo: lo, Hi: hi}
	out := make([][]float64, len(policies))
	for pi, pol := range policies {
		for _, eps := range scale.Epsilons {
			var total float64
			for r := 0; r < scale.Reps; r++ {
				res, err := kmeans.PrivateLloyd(vecs, kmeans.PrivateConfig{
					Config:          cfg,
					Epsilon:         eps,
					SizeSensitivity: pol.sizeSens,
					SumSensitivity:  pol.sumSens,
				}, noise.NewSource(seed+int64(r)))
				if err != nil {
					return nil, err
				}
				total += res.Objective
			}
			out[pi] = append(out[pi], total/float64(scale.Reps))
		}
	}
	return out, nil
}

// Fig1e reproduces Figure 1(e): k-means error under G^attr vs Laplace on
// all three datasets.
func Fig1e(scale Scale, seed int64) (*Figure, error) {
	tw, err := datagen.Twitter(scale.TwitterN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	skinFull, err := datagen.Skin(scale.SkinN, noise.NewSource(seed+1))
	if err != nil {
		return nil, err
	}
	skin01, err := datagen.Subsample(skinFull, 0.01, noise.NewSource(seed+2))
	if err != nil {
		return nil, err
	}
	synth, err := datagen.SyntheticClusters(scale.SynthN, 4, scale.K, 0.2, 100, noise.NewSource(seed+3))
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig1e",
		Title:  "Attribute policy G^attr: error vs epsilon, all datasets",
		XLabel: "epsilon",
		YLabel: "Objective(private)/Objective(non-private)",
		X:      scale.Epsilons,
	}
	datasets := []struct {
		name string
		ds   *domain.Dataset
	}{
		{"twitter", tw},
		{"skin01", skin01},
		{"synth", synth},
	}
	for di, item := range datasets {
		d := item.ds.Domain()
		sub, err := kmeansErrorRatios("", "", item.ds,
			[]kmPolicy{laplacePolicy(d), attrPolicy(d, "attribute")}, scale, seed+10*int64(di)+4)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series,
			Series{Name: item.name + ": laplace", Y: sub.Series[0].Y},
			Series{Name: item.name + ": attribute", Y: sub.Series[1].Y},
		)
	}
	return fig, nil
}

// Fig1f reproduces Figure 1(f): twitter k-means under partitioned secrets
// G^P with uniform partitions of ~{10, 100, 1000, 10000, 120000} blocks.
func Fig1f(scale Scale, seed int64) (*Figure, error) {
	ds, err := datagen.Twitter(scale.TwitterN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	d := ds.Domain()
	policies := []kmPolicy{laplacePolicy(d)}
	for _, blocks := range []int{10, 100, 1000, 10000, 120000} {
		part, err := domain.NewUniformGridByCount(d, blocks)
		if err != nil {
			return nil, err
		}
		policies = append(policies, partitionPolicy(part, fmt.Sprintf("partition|%d", blocks)))
	}
	return kmeansErrorRatios("fig1f", "Twitter: k-means error vs epsilon (G^P)", ds, policies, scale, seed+5)
}
