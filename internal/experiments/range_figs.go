package experiments

import (
	"fmt"

	"blowfish/internal/datagen"
	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/ordered"
)

// rangeFigure runs the Figure 2 protocol on a one-dimensional dataset: for
// every ε and every θ, release the Ordered Hierarchical structure and
// measure the mean squared error of a fixed set of random range queries
// (θ = |T| is the hierarchical/differential-privacy baseline, θ = 1 the
// pure ordered mechanism).
func rangeFigure(id, title string, ds *domain.Dataset, thetas []int, labels []string, fanout int, scale Scale, seed int64) (*Figure, error) {
	counts, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	size := len(counts)
	// Fixed random query workload shared by every configuration.
	qsrc := noise.NewSource(seed)
	los := make([]int, scale.RangeQueries)
	his := make([]int, scale.RangeQueries)
	truth := make([]float64, scale.RangeQueries)
	cum := make([]float64, size)
	run := 0.0
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	for qi := 0; qi < scale.RangeQueries; qi++ {
		a := qsrc.Intn(size)
		b := qsrc.Intn(size)
		if a > b {
			a, b = b, a
		}
		los[qi], his[qi] = a, b
		truth[qi] = cum[b]
		if a > 0 {
			truth[qi] -= cum[a-1]
		}
	}

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "epsilon",
		YLabel: "range query MSE",
		X:      scale.Epsilons,
	}
	for ti, theta := range thetas {
		oh, err := ordered.NewOH(size, theta, fanout)
		if err != nil {
			return nil, fmt.Errorf("%s: θ=%d: %w", id, theta, err)
		}
		series := Series{Name: labels[ti]}
		for ei, eps := range scale.Epsilons {
			src := noise.NewSource(seed + 1000*int64(ti) + int64(ei) + 1)
			var sq float64
			for r := 0; r < scale.Reps; r++ {
				rel, err := oh.Release(counts, eps, src)
				if err != nil {
					return nil, fmt.Errorf("%s: θ=%d release: %w", id, theta, err)
				}
				for qi := 0; qi < scale.RangeQueries; qi++ {
					got, err := rel.Range(los[qi], his[qi])
					if err != nil {
						return nil, err
					}
					diff := got - truth[qi]
					sq += diff * diff
				}
			}
			series.Y = append(series.Y, sq/float64(scale.Reps*scale.RangeQueries))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig2a reproduces Figure 2(a) structurally: the Ordered Hierarchical tree
// for θ=4 — S-node chain with per-block H-subtrees — reported as shape
// statistics instead of a drawing.
func Fig2a(scale Scale, seed int64) (*Figure, error) {
	const (
		size   = 16
		theta  = 4
		fanout = 2
	)
	oh, err := ordered.NewOH(size, theta, fanout)
	if err != nil {
		return nil, err
	}
	epsS, epsH := oh.OptimalSplit(1.0)
	fig := &Figure{
		ID:    "fig2a",
		Title: "Ordered Hierarchical structure, θ=4 (shape statistics)",
		Notes: []string{
			fmt.Sprintf("|T|=%d θ=%d fanout=%d", oh.Size(), oh.Theta(), oh.Fanout()),
			fmt.Sprintf("S-nodes k = ceil(|T|/θ) = %d", oh.NumSNodes()),
			fmt.Sprintf("H-subtree height h = ceil(log_f θ) = %d", oh.Height()),
			fmt.Sprintf("optimal budget split at ε=1: εS=%.4f εH=%.4f", epsS, epsH),
		},
	}
	return fig, nil
}

// Fig2b reproduces Figure 2(b): range query error on the adult capital-loss
// attribute (|T| = 4357, fanout 16) for θ ∈ {full, 1000, 500, 100, 50, 10, 1}.
func Fig2b(scale Scale, seed int64) (*Figure, error) {
	ds, err := datagen.AdultCapitalLoss(scale.AdultN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	size := int(ds.Domain().Size())
	thetas := []int{size, 1000, 500, 100, 50, 10, 1}
	labels := []string{"theta=full domain", "theta=1000", "theta=500", "theta=100", "theta=50", "theta=10", "theta=1"}
	return rangeFigure("fig2b", "Adult capital-loss: range query error vs epsilon", ds, thetas, labels, 16, scale, seed+1)
}

// Fig2c reproduces Figure 2(c): range query error on the twitter latitude
// projection (|T| = 400) for θ ∈ {full, 500km, 50km, 5km}.
func Fig2c(scale Scale, seed int64) (*Figure, error) {
	tw, err := datagen.Twitter(scale.TwitterN, noise.NewSource(seed))
	if err != nil {
		return nil, err
	}
	ds, err := tw.Project(0) // the 400-cell axis: ~2222 km of latitude
	if err != nil {
		return nil, err
	}
	size := int(ds.Domain().Size())
	kmThetas := []float64{500, 50, 5}
	thetas := []int{size}
	labels := []string{"theta=full domain"}
	for _, km := range kmThetas {
		cells := int(KMToCells(km))
		if cells < 1 {
			cells = 1
		}
		thetas = append(thetas, cells)
		labels = append(labels, fmt.Sprintf("theta=%gkm", km))
	}
	return rangeFigure("fig2c", "Twitter latitude: range query error vs epsilon", ds, thetas, labels, 16, scale, seed+1)
}
