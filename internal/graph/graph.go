// Package graph provides the small-graph algorithms used by the Blowfish
// constraint machinery of Section 8: directed policy graphs, exact longest
// simple cycle α(G_P), exact longest simple s-t path ξ(G_P), and undirected
// connected components (Theorem 8.6).
//
// Computing α and ξ is NP-hard in general — the paper proves the underlying
// sensitivity problem is NP-hard (Theorem 8.1) — so the exact searches here
// are exponential with pruning and intended for the small policy graphs
// (|Q| up to ~20) that arise from real constraint sets. The practical
// scenarios of Section 8.2 bypass the search entirely via closed forms.
package graph

import "fmt"

// Directed is a simple directed graph on vertices 0..N-1 without parallel
// edges. Self-loops are rejected: policy graphs never contain them (a secret
// pair cannot lift and lower the same count query).
type Directed struct {
	n   int
	adj [][]int
	has map[[2]int]bool
}

// NewDirected creates a directed graph with n vertices and no edges.
func NewDirected(n int) *Directed {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Directed{n: n, adj: make([][]int, n), has: make(map[[2]int]bool)}
}

// N returns the number of vertices.
func (g *Directed) N() int { return g.n }

// M returns the number of edges.
func (g *Directed) M() int { return len(g.has) }

// AddEdge inserts the edge u->v if absent. It returns an error for invalid
// endpoints or self-loops.
func (g *Directed) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.has[[2]int{u, v}] {
		return nil
	}
	g.has[[2]int{u, v}] = true
	g.adj[u] = append(g.adj[u], v)
	return nil
}

// HasEdge reports whether u->v is present.
func (g *Directed) HasEdge(u, v int) bool { return g.has[[2]int{u, v}] }

// Succ returns the successor list of u. The returned slice must not be
// modified.
func (g *Directed) Succ(u int) []int { return g.adj[u] }

// LongestSimpleCycle returns α(G): the number of edges in the longest
// simple (vertex-disjoint) directed cycle, or 0 if the graph is acyclic.
func (g *Directed) LongestSimpleCycle() int {
	best := 0
	visited := make([]bool, g.n)
	// A simple cycle is counted once by rooting it at its minimum vertex:
	// the DFS from root r only visits vertices >= r.
	var dfs func(root, u, depth int)
	dfs = func(root, u, depth int) {
		// Upper bound: the current path has depth edges; a completing cycle
		// can add at most one edge per unvisited vertex >= root plus the
		// closing edge back to root.
		if depth+countUnvisitedAtLeast(visited, root)+1 <= best {
			return
		}
		for _, v := range g.adj[u] {
			if v == root {
				if depth+1 > best {
					best = depth + 1
				}
				continue
			}
			if v < root || visited[v] {
				continue
			}
			visited[v] = true
			dfs(root, v, depth+1)
			visited[v] = false
		}
	}
	for r := 0; r < g.n; r++ {
		visited[r] = true
		dfs(r, r, 0)
		visited[r] = false
	}
	return best
}

// LongestSimplePath returns ξ(G; s, t): the number of edges in the longest
// simple directed path from s to t, or -1 if t is unreachable from s.
func (g *Directed) LongestSimplePath(s, t int) int {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return -1
	}
	if s == t {
		return 0
	}
	best := -1
	visited := make([]bool, g.n)
	visited[s] = true
	var dfs func(u, depth int)
	dfs = func(u, depth int) {
		if depth+countUnvisitedAtLeast(visited, 0)+1 <= best {
			return
		}
		for _, v := range g.adj[u] {
			if v == t {
				if depth+1 > best {
					best = depth + 1
				}
				continue
			}
			if visited[v] {
				continue
			}
			visited[v] = true
			dfs(v, depth+1)
			visited[v] = false
		}
	}
	dfs(s, 0)
	return best
}

func countUnvisitedAtLeast(visited []bool, lo int) int {
	n := 0
	for v := lo; v < len(visited); v++ {
		if !visited[v] {
			n++
		}
	}
	return n
}

// HasCycle reports whether the graph contains any directed cycle, using an
// iterative three-color DFS (no recursion depth limits on large graphs).
func (g *Directed) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.n)
	type frame struct {
		u, i int
	}
	for s := 0; s < g.n; s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{s, 0}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(g.adj[f.u]) {
				v := g.adj[f.u][f.i]
				f.i++
				switch color[v] {
				case gray:
					return true
				case white:
					color[v] = gray
					stack = append(stack, frame{v, 0})
				}
				continue
			}
			color[f.u] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// Undirected is a simple undirected graph on vertices 0..N-1.
type Undirected struct {
	n   int
	adj [][]int
	has map[[2]int]bool
}

// NewUndirected creates an undirected graph with n vertices and no edges.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Undirected{n: n, adj: make([][]int, n), has: make(map[[2]int]bool)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// M returns the number of edges.
func (g *Undirected) M() int { return len(g.has) }

// AddEdge inserts the undirected edge {u,v} if absent.
func (g *Undirected) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	if g.has[[2]int{u, v}] {
		return nil
	}
	g.has[[2]int{u, v}] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u,v} is present.
func (g *Undirected) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return g.has[[2]int{u, v}]
}

// Neighbors returns the adjacency list of u; the slice must not be modified.
func (g *Undirected) Neighbors(u int) []int { return g.adj[u] }

// Components labels each vertex with a component id in [0, #components) and
// returns the labels and the size of each component. Isolated vertices form
// singleton components.
func (g *Undirected) Components() (labels []int, sizes []int) {
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	for s := 0; s < g.n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := len(sizes)
		labels[s] = id
		size := 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if labels[v] == -1 {
					labels[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// MaxComponentSize returns the number of vertices in the largest connected
// component, or 0 for an empty graph. This is maxcomp(Q) in Theorem 8.6.
func (g *Undirected) MaxComponentSize() int {
	_, sizes := g.Components()
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// BFSDistances returns hop distances from s to every vertex (-1 where
// unreachable).
func (g *Undirected) BFSDistances(s int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if s < 0 || s >= g.n {
		return dist
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
