package graph

import (
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
}

func TestDirectedBasics(t *testing.T) {
	g := NewDirected(4)
	mustAdd(t, g.AddEdge(0, 1))
	mustAdd(t, g.AddEdge(1, 2))
	mustAdd(t, g.AddEdge(0, 1)) // duplicate: no-op
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestLongestSimpleCycle(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"empty", 3, nil, 0},
		{"dag", 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, 0},
		{"two-cycle", 2, [][2]int{{0, 1}, {1, 0}}, 2},
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}, 3},
		{"triangle plus chord 2cycle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 0}}, 3},
		{"two disjoint cycles", 7, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 2}}, 5},
		{"complete K4 both directions", 4, [][2]int{
			{0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0},
			{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2}}, 4},
		{"figure8 shares vertex", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewDirected(c.n)
			for _, e := range c.edges {
				mustAdd(t, g.AddEdge(e[0], e[1]))
			}
			if got := g.LongestSimpleCycle(); got != c.want {
				t.Fatalf("LongestSimpleCycle = %d, want %d", got, c.want)
			}
		})
	}
}

func TestLongestSimplePath(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		s, tv int
		want  int
	}{
		{"unreachable", 3, [][2]int{{0, 1}}, 0, 2, -1},
		{"direct", 2, [][2]int{{0, 1}}, 0, 1, 1},
		{"longer detour wins", 4, [][2]int{{0, 3}, {0, 1}, {1, 2}, {2, 3}}, 0, 3, 3},
		{"s equals t", 3, [][2]int{{0, 1}}, 1, 1, 0},
		{"diamond", 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {0, 5}}, 0, 5, 4},
		{"cycle does not help simple path", 4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}}, 0, 3, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewDirected(c.n)
			for _, e := range c.edges {
				mustAdd(t, g.AddEdge(e[0], e[1]))
			}
			if got := g.LongestSimplePath(c.s, c.tv); got != c.want {
				t.Fatalf("LongestSimplePath(%d,%d) = %d, want %d", c.s, c.tv, got, c.want)
			}
		})
	}
}

// Brute-force reference: enumerate all simple cycles/paths by unpruned DFS.
func bruteCycle(g *Directed) int {
	best := 0
	n := g.N()
	visited := make([]bool, n)
	var dfs func(root, u, depth int)
	dfs = func(root, u, depth int) {
		for _, v := range g.Succ(u) {
			if v == root && depth+1 > best {
				best = depth + 1
			}
			if v <= root || visited[v] {
				continue
			}
			visited[v] = true
			dfs(root, v, depth+1)
			visited[v] = false
		}
	}
	for r := 0; r < n; r++ {
		visited[r] = true
		dfs(r, r, 0)
		visited[r] = false
	}
	return best
}

func brutePath(g *Directed, s, t int) int {
	if s == t {
		return 0
	}
	best := -1
	visited := make([]bool, g.N())
	visited[s] = true
	var dfs func(u, depth int)
	dfs = func(u, depth int) {
		for _, v := range g.Succ(u) {
			if v == t {
				if depth+1 > best {
					best = depth + 1
				}
				continue
			}
			if visited[v] {
				continue
			}
			visited[v] = true
			dfs(v, depth+1)
			visited[v] = false
		}
	}
	dfs(s, 0)
	return best
}

func TestCycleAndPathAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		g := NewDirected(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.35 {
					mustAdd(t, g.AddEdge(u, v))
				}
			}
		}
		if got, want := g.LongestSimpleCycle(), bruteCycle(g); got != want {
			t.Fatalf("trial %d: LongestSimpleCycle = %d, want %d", trial, got, want)
		}
		s, tv := rng.Intn(n), rng.Intn(n)
		if got, want := g.LongestSimplePath(s, tv), brutePath(g, s, tv); got != want {
			t.Fatalf("trial %d: LongestSimplePath(%d,%d) = %d, want %d", trial, s, tv, got, want)
		}
	}
}

func TestHasCycle(t *testing.T) {
	g := NewDirected(4)
	mustAdd(t, g.AddEdge(0, 1))
	mustAdd(t, g.AddEdge(1, 2))
	mustAdd(t, g.AddEdge(2, 3))
	if g.HasCycle() {
		t.Fatal("DAG reported cyclic")
	}
	mustAdd(t, g.AddEdge(3, 1))
	if !g.HasCycle() {
		t.Fatal("cyclic graph reported acyclic")
	}
}

func TestHasCycleConsistentWithLongestCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		g := NewDirected(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.25 {
					mustAdd(t, g.AddEdge(u, v))
				}
			}
		}
		if got, want := g.HasCycle(), g.LongestSimpleCycle() > 0; got != want {
			t.Fatalf("trial %d: HasCycle = %v but LongestSimpleCycle = %d", trial, got, g.LongestSimpleCycle())
		}
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := NewUndirected(7)
	mustAdd(t, g.AddEdge(0, 1))
	mustAdd(t, g.AddEdge(1, 2))
	mustAdd(t, g.AddEdge(3, 4))
	// 5 and 6 isolated.
	labels, sizes := g.Components()
	if len(sizes) != 4 {
		t.Fatalf("components = %d, want 4 (sizes %v)", len(sizes), sizes)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("chain 0-1-2 split across components")
	}
	if labels[3] != labels[4] {
		t.Fatal("edge 3-4 split across components")
	}
	if labels[5] == labels[6] {
		t.Fatal("isolated vertices merged")
	}
	if g.MaxComponentSize() != 3 {
		t.Fatalf("MaxComponentSize = %d, want 3", g.MaxComponentSize())
	}
}

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(3)
	mustAdd(t, g.AddEdge(0, 1))
	mustAdd(t, g.AddEdge(1, 0)) // duplicate in reverse: no-op
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestBFSDistances(t *testing.T) {
	g := NewUndirected(6)
	mustAdd(t, g.AddEdge(0, 1))
	mustAdd(t, g.AddEdge(1, 2))
	mustAdd(t, g.AddEdge(2, 3))
	mustAdd(t, g.AddEdge(0, 4))
	dist := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 1, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestEmptyGraphs(t *testing.T) {
	d := NewDirected(0)
	if d.LongestSimpleCycle() != 0 {
		t.Error("empty directed graph has a cycle")
	}
	u := NewUndirected(0)
	if u.MaxComponentSize() != 0 {
		t.Error("empty undirected graph has a component")
	}
}
