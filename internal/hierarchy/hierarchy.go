// Package hierarchy implements the fan-out-f hierarchical histogram tree of
// Hay et al. [9] — the best known differentially private strategy for range
// queries and the baseline the ordered mechanisms of Section 7 are compared
// against.
//
// A tree over an ordered domain [0, size) stores interval counts: the root
// covers everything, each node splits its interval into at most `fanout`
// children, leaves are unit intervals. Releasing all node counts with
// uniform per-level budget ε/h and noise Lap(2h/ε) answers any range query
// from O(f·log|T|) noisy nodes. The same structure, re-noised with
// policy-scaled budgets, forms the H-subtrees of the Ordered Hierarchical
// mechanism.
package hierarchy

import (
	"fmt"
	"math"
	"sync"

	"blowfish/internal/infer"
	"blowfish/internal/noise"
)

// Node is one interval of the tree, covering [Lo, Hi).
type Node struct {
	Lo, Hi   int
	Parent   int // -1 for the root
	Children []int
	Level    int // root is level 0
}

// Tree is an immutable interval tree over [0, size).
type Tree struct {
	size   int
	fanout int
	nodes  []Node
	// leafOf[i] is the node index of the unit leaf [i, i+1).
	leafOf []int
	levels int // total levels including the root
}

// New builds a tree over [0, size) with the given fanout (≥ 2).
func New(size, fanout int) (*Tree, error) {
	if size <= 0 {
		return nil, fmt.Errorf("hierarchy: non-positive size %d", size)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout %d < 2", fanout)
	}
	t := &Tree{size: size, fanout: fanout, leafOf: make([]int, size)}
	t.build(0, size, -1, 0)
	for idx, n := range t.nodes {
		if n.Hi-n.Lo == 1 {
			t.leafOf[n.Lo] = idx
		}
		if n.Level+1 > t.levels {
			t.levels = n.Level + 1
		}
	}
	return t, nil
}

// build appends the node covering [lo, hi) and recursively its children,
// returning the node's index.
func (t *Tree) build(lo, hi, parent, level int) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, Node{Lo: lo, Hi: hi, Parent: parent, Level: level})
	width := hi - lo
	if width == 1 {
		return idx
	}
	// Split into fanout intervals of width ceil(width/fanout).
	step := (width + t.fanout - 1) / t.fanout
	var children []int
	for s := lo; s < hi; s += step {
		e := s + step
		if e > hi {
			e = hi
		}
		children = append(children, t.build(s, e, idx, level+1))
	}
	t.nodes[idx].Children = children
	return idx
}

// Size returns the domain size the tree covers.
func (t *Tree) Size() int { return t.size }

// Fanout returns the tree fanout.
func (t *Tree) Fanout() int { return t.fanout }

// NodeCount returns the number of nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Node returns node idx.
func (t *Tree) Node(idx int) Node { return t.nodes[idx] }

// Levels returns the total number of levels including the root.
func (t *Tree) Levels() int { return t.levels }

// Height returns h = levels below the root = ceil(log_f size); the paper's
// h in the noise scale 2h/ε.
func (t *Tree) Height() int { return t.levels - 1 }

// Eval computes the true total of every node from unit counts.
func (t *Tree) Eval(counts []float64) ([]float64, error) {
	out := make([]float64, len(t.nodes))
	if err := t.EvalInto(counts, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalInto computes the true total of every node into out, which must have
// length NodeCount — the allocation-free core of Eval for callers recycling
// scratch. out need not be zeroed; every entry is overwritten, and the
// child sums accumulate in the same order Eval's did.
func (t *Tree) EvalInto(counts, out []float64) error {
	if len(counts) != t.size {
		return fmt.Errorf("hierarchy: %d counts for size %d", len(counts), t.size)
	}
	if len(out) != len(t.nodes) {
		return fmt.Errorf("hierarchy: %d eval slots for %d nodes", len(out), len(t.nodes))
	}
	// Nodes were appended in DFS pre-order, so children follow parents;
	// accumulate in reverse.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if len(n.Children) == 0 {
			out[i] = counts[n.Lo]
			continue
		}
		sum := 0.0
		for _, c := range n.Children {
			sum += out[c]
		}
		out[i] = sum
	}
	return nil
}

// Decompose returns the minimal set of node indexes whose intervals
// partition [lo, hi] (inclusive bounds, matching range query q[x_lo, x_hi]).
func (t *Tree) Decompose(lo, hi int) ([]int, error) {
	if lo < 0 || hi >= t.size || lo > hi {
		return nil, fmt.Errorf("hierarchy: invalid range [%d,%d] over size %d", lo, hi, t.size)
	}
	var out []int
	t.decompose(0, lo, hi+1, &out)
	return out, nil
}

func (t *Tree) decompose(idx, lo, hi int, out *[]int) {
	n := t.nodes[idx]
	if n.Lo >= hi || n.Hi <= lo {
		return
	}
	if lo <= n.Lo && n.Hi <= hi {
		*out = append(*out, idx)
		return
	}
	for _, c := range n.Children {
		t.decompose(c, lo, hi, out)
	}
}

// Released holds noisy node values and their variances.
type Released struct {
	tree     *Tree
	values   []float64
	variance []float64
}

// Release releases every node count with the paper's uniform budgeting:
// each of the h non-root levels receives ε/h and each node Laplace noise of
// scale 2h/ε (per-level histograms have sensitivity 2). The root — the
// public dataset cardinality n — is released exactly. A size-1 tree is
// exact: under the indistinguishability model a tuple change never alters
// the total.
func (t *Tree) Release(counts []float64, eps float64, src *noise.Source) (*Released, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("hierarchy: invalid epsilon %v", eps)
	}
	truth, err := t.Eval(counts)
	if err != nil {
		return nil, err
	}
	h := t.Height()
	scale := 0.0
	if h > 0 {
		scale = 2 * float64(h) / eps
	}
	return t.ReleaseWithScale(counts, scale, truth, src)
}

// ReleaseWithScale noises every non-root node with Laplace noise of the
// given scale; the root stays exact (the public dataset cardinality).
// truth may be nil, in which case it is computed from counts.
func (t *Tree) ReleaseWithScale(counts []float64, scale float64, truth []float64, src *noise.Source) (*Released, error) {
	return t.release(counts, scale, truth, src, false)
}

// ReleaseInterior is ReleaseWithScale for subtrees whose total is NOT
// public — the H-subtrees of the Ordered Hierarchical mechanism, whose
// block totals are covered by the S-node chain instead. The root carries no
// observation: its reported value is the sum of its released children
// (nothing exact leaks) and its variance is infinite, so consistency
// inference treats it as unknown.
func (t *Tree) ReleaseInterior(counts []float64, scale float64, truth []float64, src *noise.Source) (*Released, error) {
	return t.release(counts, scale, truth, src, true)
}

// ReleaseInteriorInto is ReleaseInterior writing into caller-provided
// storage: values and variance must have length NodeCount and back the
// returned Released, so callers batching many subtree releases (the Ordered
// Hierarchical mechanism releases one per θ-block) can carve all of them
// from one slab. It allocates nothing — the node truths are evaluated
// directly into values and noised in place — and consumes exactly the noise
// draws ReleaseInterior would, in the same order.
func (t *Tree) ReleaseInteriorInto(values, variance, counts []float64, scale float64, src *noise.Source) (Released, error) {
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Released{}, fmt.Errorf("hierarchy: invalid noise scale %v", scale)
	}
	if len(values) != len(t.nodes) || len(variance) != len(t.nodes) {
		return Released{}, fmt.Errorf("hierarchy: %d value and %d variance slots for %d nodes", len(values), len(variance), len(t.nodes))
	}
	if err := t.EvalInto(counts, values); err != nil {
		return Released{}, err
	}
	for i := 1; i < len(t.nodes); i++ {
		values[i] += src.Laplace(scale)
		variance[i] = 2 * scale * scale
	}
	if len(t.nodes) > 1 {
		var sum float64
		for _, c := range t.nodes[0].Children {
			sum += values[c]
		}
		values[0] = sum
		variance[0] = math.Inf(1)
	} else {
		// Single-node tree with a non-public total: the only honest release
		// is a noisy one.
		values[0] += src.Laplace(scale)
		variance[0] = 2 * scale * scale
	}
	return Released{tree: t, values: values, variance: variance}, nil
}

func (t *Tree) release(counts []float64, scale float64, truth []float64, src *noise.Source, interiorRoot bool) (*Released, error) {
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("hierarchy: invalid noise scale %v", scale)
	}
	if truth == nil {
		var err error
		truth, err = t.Eval(counts)
		if err != nil {
			return nil, err
		}
	}
	r := &Released{
		tree:     t,
		values:   make([]float64, len(t.nodes)),
		variance: make([]float64, len(t.nodes)),
	}
	for i := range t.nodes {
		if i == 0 {
			continue // root handled below
		}
		r.values[i] = truth[i] + src.Laplace(scale)
		r.variance[i] = 2 * scale * scale
	}
	if interiorRoot && len(t.nodes) > 1 {
		var sum float64
		for _, c := range t.nodes[0].Children {
			sum += r.values[c]
		}
		r.values[0] = sum
		r.variance[0] = math.Inf(1)
	} else if interiorRoot {
		// Single-node tree with a non-public total: the only honest release
		// is a noisy one.
		r.values[0] = truth[0] + src.Laplace(scale)
		r.variance[0] = 2 * scale * scale
	} else {
		r.values[0] = truth[0] // public total, exact
	}
	return r, nil
}

// Tree returns the underlying tree.
func (r *Released) Tree() *Tree { return r.tree }

// Value returns the released value of node idx.
func (r *Released) Value(idx int) float64 { return r.values[idx] }

// Variance returns the noise variance of node idx.
func (r *Released) Variance(idx int) float64 { return r.variance[idx] }

// decomposeScratch pools the node-index buffers RangeQuery decomposes
// into: the decomposition is consumed before the call returns, so the
// O(f·log|T|) interval buffer never needs to outlive it.
var decomposeScratch = sync.Pool{New: func() any { return new([]int) }}

// RangeQuery answers q[lo, hi] (inclusive) by summing the greedy node
// decomposition; the second return value is the answer's noise variance.
func (r *Released) RangeQuery(lo, hi int) (float64, float64, error) {
	if lo < 0 || hi >= r.tree.size || lo > hi {
		return 0, 0, fmt.Errorf("hierarchy: invalid range [%d,%d] over size %d", lo, hi, r.tree.size)
	}
	scratch := decomposeScratch.Get().(*[]int)
	idxs := (*scratch)[:0]
	r.tree.decompose(0, lo, hi+1, &idxs)
	var sum, v float64
	for _, idx := range idxs {
		sum += r.values[idx]
		v += r.variance[idx]
	}
	*scratch = idxs
	decomposeScratch.Put(scratch)
	return sum, v, nil
}

// Consistent applies the Hay et al. least-squares consistency step,
// returning a new Released whose node values satisfy every parent-children
// sum exactly. The root is pinned (variance 0). Range queries on the
// consistent release are answered identically by any decomposition; the
// reported variances are the pre-inference ones (upper bounds).
func (r *Released) Consistent() (*Released, error) {
	spec := infer.TreeSpec{
		Parent:   make([]int, len(r.tree.nodes)),
		Variance: append([]float64(nil), r.variance...),
	}
	for i, n := range r.tree.nodes {
		spec.Parent[i] = n.Parent
	}
	vals, err := infer.TreeConsistency(spec, r.values)
	if err != nil {
		return nil, err
	}
	return &Released{tree: r.tree, values: vals, variance: append([]float64(nil), r.variance...)}, nil
}

// Leaves returns the released unit counts in domain order.
func (r *Released) Leaves() []float64 {
	out := make([]float64, r.tree.size)
	for i := 0; i < r.tree.size; i++ {
		out[i] = r.values[r.tree.leafOf[i]]
	}
	return out
}

// ExpectedRangeVariance returns the expected noise variance of a uniformly
// random range query under the raw (pre-consistency) release with per-node
// noise scale 2h/ε: at most 2(f-1)·h nodes contribute, each with variance
// 2(2h/ε)² — the log³|T|/ε² error of the hierarchical baseline.
func (t *Tree) ExpectedRangeVariance(eps float64) float64 {
	h := float64(t.Height())
	if h == 0 {
		return 0
	}
	scale := 2 * h / eps
	nodes := 2 * float64(t.fanout-1) * h
	return nodes * 2 * scale * scale
}
