package hierarchy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blowfish/internal/noise"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(8, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestTreeShape(t *testing.T) {
	tr, err := New(16, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 1 root + 4 + 16 leaves = 21 nodes, 3 levels, height 2.
	if got, want := tr.NodeCount(), 21; got != want {
		t.Fatalf("NodeCount = %d, want %d", got, want)
	}
	if got, want := tr.Levels(), 3; got != want {
		t.Fatalf("Levels = %d, want %d", got, want)
	}
	if got, want := tr.Height(), 2; got != want {
		t.Fatalf("Height = %d, want %d", got, want)
	}
	root := tr.Node(0)
	if root.Lo != 0 || root.Hi != 16 || root.Parent != -1 {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 4 {
		t.Fatalf("root children = %d, want 4", len(root.Children))
	}
}

func TestTreeShapeIrregular(t *testing.T) {
	// Size 10, fanout 4: root splits into ceil(10/4)=3-wide intervals:
	// [0,3) [3,6) [6,9) [9,10).
	tr, err := New(10, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	root := tr.Node(0)
	if len(root.Children) != 4 {
		t.Fatalf("root children = %d, want 4", len(root.Children))
	}
	widths := []int{3, 3, 3, 1}
	for i, c := range root.Children {
		n := tr.Node(c)
		if n.Hi-n.Lo != widths[i] {
			t.Fatalf("child %d covers [%d,%d), want width %d", i, n.Lo, n.Hi, widths[i])
		}
	}
	// Every position has a unit leaf.
	for i := 0; i < 10; i++ {
		leaf := tr.Node(tr.leafOf[i])
		if leaf.Lo != i || leaf.Hi != i+1 {
			t.Fatalf("leafOf[%d] covers [%d,%d)", i, leaf.Lo, leaf.Hi)
		}
	}
}

func TestTreeParentChildStructure(t *testing.T) {
	tr, err := New(27, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for idx := 0; idx < tr.NodeCount(); idx++ {
		n := tr.Node(idx)
		if len(n.Children) == 0 {
			if n.Hi-n.Lo != 1 {
				t.Fatalf("leaf %d covers [%d,%d)", idx, n.Lo, n.Hi)
			}
			continue
		}
		// Children partition the parent interval.
		pos := n.Lo
		for _, c := range n.Children {
			cn := tr.Node(c)
			if cn.Lo != pos {
				t.Fatalf("node %d children leave a gap at %d", idx, pos)
			}
			if cn.Parent != idx {
				t.Fatalf("child %d has parent %d, want %d", c, cn.Parent, idx)
			}
			if cn.Level != n.Level+1 {
				t.Fatalf("child %d level %d, parent level %d", c, cn.Level, n.Level)
			}
			pos = cn.Hi
		}
		if pos != n.Hi {
			t.Fatalf("node %d children end at %d, want %d", idx, pos, n.Hi)
		}
	}
}

func TestEval(t *testing.T) {
	tr, err := New(8, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	totals, err := tr.Eval(counts)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if totals[0] != 36 {
		t.Fatalf("root total = %v, want 36", totals[0])
	}
	for idx := 0; idx < tr.NodeCount(); idx++ {
		n := tr.Node(idx)
		var want float64
		for i := n.Lo; i < n.Hi; i++ {
			want += counts[i]
		}
		if totals[idx] != want {
			t.Fatalf("node %d total = %v, want %v", idx, totals[idx], want)
		}
	}
	if _, err := tr.Eval([]float64{1}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDecompose(t *testing.T) {
	tr, err := New(16, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	counts := make([]float64, 16)
	for i := range counts {
		counts[i] = float64(rng.Intn(10))
	}
	totals, err := tr.Eval(counts)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	for lo := 0; lo < 16; lo++ {
		for hi := lo; hi < 16; hi++ {
			idxs, err := tr.Decompose(lo, hi)
			if err != nil {
				t.Fatalf("Decompose(%d,%d): %v", lo, hi, err)
			}
			var got, want float64
			for _, idx := range idxs {
				got += totals[idx]
			}
			for i := lo; i <= hi; i++ {
				want += counts[i]
			}
			if got != want {
				t.Fatalf("Decompose(%d,%d) sums to %v, want %v", lo, hi, got, want)
			}
			// Minimality: a full-domain query must use few nodes, and no
			// decomposition may exceed 2(f-1)·h nodes.
			if maxNodes := 2 * (tr.Fanout() - 1) * tr.Height(); len(idxs) > maxNodes {
				t.Fatalf("Decompose(%d,%d) used %d nodes, bound %d", lo, hi, len(idxs), maxNodes)
			}
		}
	}
	if idxs, err := tr.Decompose(0, 15); err != nil || len(idxs) != 1 || idxs[0] != 0 {
		t.Fatalf("full-range decomposition = %v (err %v), want [0]", idxs, err)
	}
	if _, err := tr.Decompose(5, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := tr.Decompose(-1, 3); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := tr.Decompose(0, 16); err == nil {
		t.Error("hi out of range accepted")
	}
}

func TestReleaseExactnessAndNoise(t *testing.T) {
	tr, err := New(16, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]float64, 16)
	for i := range counts {
		counts[i] = float64(i)
	}
	rel, err := tr.Release(counts, 1.0, noise.NewSource(7))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Root is the public total: exact.
	if rel.Value(0) != 120 {
		t.Fatalf("root = %v, want exact 120", rel.Value(0))
	}
	if rel.Variance(0) != 0 {
		t.Fatalf("root variance = %v, want 0", rel.Variance(0))
	}
	// Non-root nodes are noisy with variance 2·(2h/ε)² = 2·16 = 32.
	if got, want := rel.Variance(1), 32.0; got != want {
		t.Fatalf("node variance = %v, want %v", got, want)
	}
	if _, err := tr.Release(counts, 0, noise.NewSource(1)); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := tr.ReleaseWithScale(counts, -1, nil, noise.NewSource(1)); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestRangeQueryUnbiased(t *testing.T) {
	tr, err := New(64, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]float64, 64)
	rng := rand.New(rand.NewSource(11))
	for i := range counts {
		counts[i] = float64(rng.Intn(20))
	}
	var want float64
	for i := 5; i <= 40; i++ {
		want += counts[i]
	}
	src := noise.NewSource(13)
	const reps = 5000
	var sum, sumSq float64
	var predictedVar float64
	for r := 0; r < reps; r++ {
		rel, err := tr.Release(counts, 1.0, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		got, v, err := rel.RangeQuery(5, 40)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		predictedVar = v
		sum += got
		sumSq += got * got
	}
	mean := sum / reps
	if math.Abs(mean-want) > 3*math.Sqrt(predictedVar/reps)+1e-9 {
		t.Fatalf("range query biased: mean %v, want %v", mean, want)
	}
	empVar := sumSq/reps - mean*mean
	if math.Abs(empVar-predictedVar)/predictedVar > 0.15 {
		t.Fatalf("empirical variance %v, predicted %v", empVar, predictedVar)
	}
}

func TestConsistentReleaseIsConsistent(t *testing.T) {
	tr, err := New(16, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]float64, 16)
	for i := range counts {
		counts[i] = float64(i % 5)
	}
	rel, err := tr.Release(counts, 0.5, noise.NewSource(17))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	cons, err := rel.Consistent()
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	for idx := 0; idx < tr.NodeCount(); idx++ {
		n := tr.Node(idx)
		if len(n.Children) == 0 {
			continue
		}
		var sum float64
		for _, c := range n.Children {
			sum += cons.Value(c)
		}
		if math.Abs(sum-cons.Value(idx)) > 1e-9 {
			t.Fatalf("node %d inconsistent after inference: %v vs %v", idx, cons.Value(idx), sum)
		}
	}
	// Root still pinned to the exact public total Σ (i%5) = 30.
	if math.Abs(cons.Value(0)-30) > 1e-9 {
		t.Fatalf("consistent root = %v, want 30", cons.Value(0))
	}
	// Leaves sum to n as well.
	var leafSum float64
	for _, v := range cons.Leaves() {
		leafSum += v
	}
	if math.Abs(leafSum-30) > 1e-9 {
		t.Fatalf("leaves sum to %v, want 30", leafSum)
	}
}

func TestConsistencyReducesRangeError(t *testing.T) {
	// Over many repetitions, consistent range answers should have no larger
	// MSE than raw greedy answers (they are the least squares estimates).
	tr, err := New(64, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]float64, 64)
	rng := rand.New(rand.NewSource(19))
	for i := range counts {
		counts[i] = float64(rng.Intn(30))
	}
	var truth float64
	for i := 10; i <= 52; i++ {
		truth += counts[i]
	}
	src := noise.NewSource(23)
	const reps = 2000
	var rawErr, consErr float64
	for r := 0; r < reps; r++ {
		rel, err := tr.Release(counts, 0.5, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		raw, _, err := rel.RangeQuery(10, 52)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		cons, err := rel.Consistent()
		if err != nil {
			t.Fatalf("Consistent: %v", err)
		}
		cq, _, err := cons.RangeQuery(10, 52)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		rawErr += (raw - truth) * (raw - truth)
		consErr += (cq - truth) * (cq - truth)
	}
	if consErr > rawErr*1.02 {
		t.Fatalf("consistency increased error: %v > %v", consErr/reps, rawErr/reps)
	}
}

func TestSizeOneTree(t *testing.T) {
	tr, err := New(1, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tr.Height() != 0 || tr.NodeCount() != 1 {
		t.Fatalf("size-1 tree: height %d, nodes %d", tr.Height(), tr.NodeCount())
	}
	rel, err := tr.Release([]float64{5}, 1.0, noise.NewSource(1))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Single node = public total: exact.
	if rel.Value(0) != 5 {
		t.Fatalf("value = %v, want 5", rel.Value(0))
	}
	got, _, err := rel.RangeQuery(0, 0)
	if err != nil || got != 5 {
		t.Fatalf("RangeQuery = %v (err %v), want 5", got, err)
	}
}

func TestExpectedRangeVariance(t *testing.T) {
	tr, err := New(4096, 16)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// h = 3, scale = 6/ε, nodes ≤ 2·15·3 = 90, variance = 90·2·36/ε².
	if got, want := tr.ExpectedRangeVariance(1.0), 90*2*36.0; got != want {
		t.Fatalf("ExpectedRangeVariance = %v, want %v", got, want)
	}
}

func TestReleaseInteriorRootUnobserved(t *testing.T) {
	tr, err := New(16, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]float64, 16)
	for i := range counts {
		counts[i] = 100
	}
	rel, err := tr.ReleaseInterior(counts, 0.001, nil, noise.NewSource(1))
	if err != nil {
		t.Fatalf("ReleaseInterior: %v", err)
	}
	// The root must NOT be the exact total (1600): it is the sum of its
	// noisy children, and its variance is infinite.
	if rel.Value(0) == 1600 {
		t.Fatal("interior root leaked the exact total")
	}
	if !math.IsInf(rel.Variance(0), 1) {
		t.Fatalf("interior root variance = %v, want +Inf", rel.Variance(0))
	}
	// Root value equals the sum of its children's released values.
	var sum float64
	for _, c := range tr.Node(0).Children {
		sum += rel.Value(c)
	}
	if math.Abs(sum-rel.Value(0)) > 1e-9 {
		t.Fatalf("interior root %v != children sum %v", rel.Value(0), sum)
	}
	// Consistency still works, treating the root as unknown.
	cons, err := rel.Consistent()
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	var childSum float64
	for _, c := range tr.Node(0).Children {
		childSum += cons.Value(c)
	}
	if math.Abs(cons.Value(0)-childSum) > 1e-9 {
		t.Fatalf("consistent interior root %v != children sum %v", cons.Value(0), childSum)
	}
}

func TestReleaseInteriorSingleNode(t *testing.T) {
	tr, err := New(1, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rel, err := tr.ReleaseInterior([]float64{50}, 3, nil, noise.NewSource(2))
	if err != nil {
		t.Fatalf("ReleaseInterior: %v", err)
	}
	// A single-node interior tree must be noised, never exact.
	if rel.Value(0) == 50 {
		t.Fatal("single-node interior tree released exactly")
	}
	if rel.Variance(0) != 2*3*3 {
		t.Fatalf("variance = %v, want 18", rel.Variance(0))
	}
}

// Property: for random tree shapes and ranges, Decompose always partitions
// the requested range exactly.
func TestDecomposeQuick(t *testing.T) {
	f := func(rawSize, rawFanout uint8, rawLo, rawHi uint16) bool {
		size := 1 + int(rawSize)%200
		fanout := 2 + int(rawFanout)%15
		tr, err := New(size, fanout)
		if err != nil {
			return false
		}
		lo := int(rawLo) % size
		hi := int(rawHi) % size
		if lo > hi {
			lo, hi = hi, lo
		}
		idxs, err := tr.Decompose(lo, hi)
		if err != nil {
			return false
		}
		// Collect covered positions; they must be exactly [lo, hi] with no
		// overlaps.
		covered := make(map[int]int)
		for _, idx := range idxs {
			n := tr.Node(idx)
			for i := n.Lo; i < n.Hi; i++ {
				covered[i]++
			}
		}
		for i := lo; i <= hi; i++ {
			if covered[i] != 1 {
				return false
			}
		}
		return len(covered) == hi-lo+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
