// Strict allocation pins live apart from the correctness tests because the
// race detector deliberately makes sync.Pool drop items at random (to shake
// out reuse races), which turns exact AllocsPerRun counts into noise.
//go:build !race

package hierarchy

import (
	"testing"

	"blowfish/internal/noise"
)

// TestRangeQueryAllocFree pins the pooled decompose scratch: once the pool
// is warm, answering a range query over a released tree is allocation-free.
func TestRangeQueryAllocFree(t *testing.T) {
	tr, err := New(1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 1024)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	rel, err := tr.Release(counts, 1.0, noise.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rel.RangeQuery(3, 900); err != nil { // warm the pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := rel.RangeQuery(3, 900); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("RangeQuery allocates %v per call, want 0", avg)
	}
	if _, _, err := rel.RangeQuery(5, 2000); err == nil {
		t.Error("out-of-range query accepted")
	}
}
