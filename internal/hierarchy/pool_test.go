package hierarchy

import (
	"math/rand"
	"testing"

	"blowfish/internal/noise"
)

// TestReleaseInteriorIntoMatchesReleaseInterior pins the zero-alloc slab
// variant to the allocating path bit for bit: identical seeds must yield
// identical node values and variances, or the Ordered Hierarchical noise
// stream (and with it crash-recovery determinism) has silently shifted.
func TestReleaseInteriorIntoMatchesReleaseInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct {
		size, fanout int
		scale        float64
	}{
		{1, 2, 0.5},  // single-node tree: the noisy-root special case
		{7, 2, 1.25}, // ragged binary tree
		{16, 4, 0.1},
		{100, 3, 2.0},
		{64, 2, 0}, // zero scale: exact values
	} {
		tr, err := New(shape.size, shape.fanout)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, shape.size)
		for i := range counts {
			counts[i] = float64(rng.Intn(50))
		}
		want, err := tr.ReleaseInterior(counts, shape.scale, nil, noise.NewSource(41))
		if err != nil {
			t.Fatalf("ReleaseInterior(%+v): %v", shape, err)
		}
		n := tr.NodeCount()
		values := make([]float64, n)
		variance := make([]float64, n)
		got, err := tr.ReleaseInteriorInto(values, variance, counts, shape.scale, noise.NewSource(41))
		if err != nil {
			t.Fatalf("ReleaseInteriorInto(%+v): %v", shape, err)
		}
		for i := 0; i < n; i++ {
			if got.Value(i) != want.Value(i) {
				t.Fatalf("%+v node %d value = %v, want %v", shape, i, got.Value(i), want.Value(i))
			}
			if got.Variance(i) != want.Variance(i) && !(isInf(got.Variance(i)) && isInf(want.Variance(i))) {
				t.Fatalf("%+v node %d variance = %v, want %v", shape, i, got.Variance(i), want.Variance(i))
			}
		}
		// The release must be backed by the caller's storage, not a copy.
		if &got.values[0] != &values[0] || &got.variance[0] != &variance[0] {
			t.Fatalf("%+v: released vectors do not alias the provided slabs", shape)
		}
	}
}

func isInf(v float64) bool { return v > 1e308 }

func TestReleaseInteriorIntoValidation(t *testing.T) {
	tr, err := New(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.NodeCount()
	good := make([]float64, n)
	src := noise.NewSource(1)
	if _, err := tr.ReleaseInteriorInto(good, good, make([]float64, 8), -1, src); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := tr.ReleaseInteriorInto(make([]float64, n-1), good, make([]float64, 8), 1, src); err == nil {
		t.Error("short values slab accepted")
	}
	if _, err := tr.ReleaseInteriorInto(good, make([]float64, n+1), make([]float64, 8), 1, src); err == nil {
		t.Error("long variance slab accepted")
	}
	if _, err := tr.ReleaseInteriorInto(good, good, make([]float64, 7), 1, src); err == nil {
		t.Error("mis-sized counts accepted")
	}
}

// TestEvalIntoMatchesEval pins the in-place evaluation to Eval, including
// over dirty scratch that must be fully overwritten.
func TestEvalIntoMatchesEval(t *testing.T) {
	tr, err := New(37, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]float64, 37)
	for i := range counts {
		counts[i] = float64(rng.Intn(20))
	}
	want, err := tr.Eval(counts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, tr.NodeCount())
	for i := range got {
		got[i] = -1e9 // dirty scratch
	}
	if err := tr.EvalInto(counts, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := tr.EvalInto(counts, make([]float64, 3)); err == nil {
		t.Error("mis-sized eval scratch accepted")
	}
	if err := tr.EvalInto(make([]float64, 5), got); err == nil {
		t.Error("mis-sized counts accepted")
	}
}
