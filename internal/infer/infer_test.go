package infer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIsotonicRegressionKnown(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"empty", nil, nil},
		{"single", []float64{3}, []float64{3}},
		{"already monotone", []float64{1, 2, 2, 5}, []float64{1, 2, 2, 5}},
		{"single violation pools", []float64{1, 3, 2, 5}, []float64{1, 2.5, 2.5, 5}},
		{"decreasing pools to mean", []float64{3, 2, 1}, []float64{2, 2, 2}},
		{"cascade", []float64{4, 1, 1}, []float64{2, 2, 2}},
		{"two blocks", []float64{2, 1, 4, 3}, []float64{1.5, 1.5, 3.5, 3.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := IsotonicRegression(c.in)
			if len(got) != len(c.want) {
				t.Fatalf("len = %d, want %d", len(got), len(c.want))
			}
			for i := range c.want {
				if !almostEqual(got[i], c.want[i], 1e-12) {
					t.Fatalf("out[%d] = %v, want %v (full %v)", i, got[i], c.want[i], got)
				}
			}
		})
	}
}

// Properties of the L2 projection onto the monotone cone: output is
// monotone, idempotent, preserves totals of pooled blocks, and for any
// monotone w, ||y - iso(y)|| <= ||y - w|| (projection optimality spot-check
// against random monotone candidates).
func TestIsotonicRegressionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 10
		}
		out := IsotonicRegression(y)
		for i := 1; i < n; i++ {
			if out[i] < out[i-1]-1e-9 {
				t.Fatalf("output not monotone at %d: %v", i, out)
			}
		}
		again := IsotonicRegression(out)
		for i := range out {
			if !almostEqual(out[i], again[i], 1e-9) {
				t.Fatal("isotonic regression not idempotent")
			}
		}
		// Sum preservation (projection onto monotone cone preserves total).
		var sy, so float64
		for i := range y {
			sy += y[i]
			so += out[i]
		}
		if !almostEqual(sy, so, 1e-6*(1+math.Abs(sy))) {
			t.Fatalf("sum not preserved: %v vs %v", sy, so)
		}
		// Optimality against random monotone candidates.
		dOut := dist2(y, out)
		for c := 0; c < 10; c++ {
			w := make([]float64, n)
			w[0] = rng.NormFloat64() * 10
			for i := 1; i < n; i++ {
				w[i] = w[i-1] + math.Abs(rng.NormFloat64())
			}
			if dw := dist2(y, w); dw < dOut-1e-9 {
				t.Fatalf("candidate closer than projection: %v < %v", dw, dOut)
			}
		}
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestMonotoneCumulative(t *testing.T) {
	noisy := []float64{-2, 1, 0.5, 7, 6, 12}
	out := MonotoneCumulative(noisy, 10)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("not monotone: %v", out)
		}
	}
	if out[0] < 0 {
		t.Fatalf("negative cumulative count: %v", out)
	}
	if out[len(out)-1] > 10 {
		t.Fatalf("cumulative count exceeds n: %v", out)
	}
	// n < 0 skips the upper clamp.
	out = MonotoneCumulative([]float64{5, 20}, -1)
	if out[1] != 20 {
		t.Fatalf("upper clamp applied when disabled: %v", out)
	}
}

// directTreeLS computes the constrained weighted least squares solution by
// parametrizing node values with leaf variables and solving the normal
// equations by Gaussian elimination — an independent oracle for
// TreeConsistency.
func directTreeLS(spec TreeSpec, z []float64) []float64 {
	n := len(z)
	children := make([][]int, n)
	var roots []int
	for v, p := range spec.Parent {
		if p == -1 {
			roots = append(roots, v)
		} else {
			children[p] = append(children[p], v)
		}
	}
	var leaves []int
	for v := 0; v < n; v++ {
		if len(children[v]) == 0 {
			leaves = append(leaves, v)
		}
	}
	leafIdx := make(map[int]int, len(leaves))
	for i, v := range leaves {
		leafIdx[v] = i
	}
	// coef[v] = row of leaf coefficients such that value(v) = coef·leafvals.
	coef := make([][]float64, n)
	var fill func(v int)
	fill = func(v int) {
		coef[v] = make([]float64, len(leaves))
		if len(children[v]) == 0 {
			coef[v][leafIdx[v]] = 1
			return
		}
		for _, c := range children[v] {
			fill(c)
			for j := range coef[v] {
				coef[v][j] += coef[c][j]
			}
		}
	}
	for _, r := range roots {
		fill(r)
	}
	// Normal equations: (Σ_v w_v coef_v coef_vᵀ) β = Σ_v w_v z_v coef_v,
	// with w_v = 1/variance (treat exact nodes as very high weight).
	k := len(leaves)
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k+1)
	}
	for v := 0; v < n; v++ {
		w := 1e12
		if spec.Variance[v] > 0 {
			w = 1 / spec.Variance[v]
		}
		for i := 0; i < k; i++ {
			if coef[v][i] == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				a[i][j] += w * coef[v][i] * coef[v][j]
			}
			a[i][k] += w * coef[v][i] * z[v]
		}
	}
	// Gaussian elimination.
	for col := 0; col < k; col++ {
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for j := col; j <= k; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	beta := make([]float64, k)
	for i := 0; i < k; i++ {
		beta[i] = a[i][k] / a[i][i]
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			out[v] += coef[v][j] * beta[j]
		}
	}
	return out
}

func TestTreeConsistencyUniformBinary(t *testing.T) {
	// Root 0 with children 1, 2; all variance 1.
	spec := TreeSpec{Parent: []int{-1, 0, 0}, Variance: []float64{1, 1, 1}}
	z := []float64{10, 3, 4} // root observation larger than children sum
	h, err := TreeConsistency(spec, z)
	if err != nil {
		t.Fatalf("TreeConsistency: %v", err)
	}
	// Classical solution: t = (z_r - z_a - z_b)/3 = 1 added to each child,
	// root = children sum: h = [9, 4, 5].
	want := []float64{9, 4, 5}
	for i := range want {
		if !almostEqual(h[i], want[i], 1e-9) {
			t.Fatalf("h[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestTreeConsistencyMatchesDirectLS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := []struct {
		name   string
		parent []int
	}{
		{"binary depth2", []int{-1, 0, 0, 1, 1, 2, 2}},
		{"ternary depth1", []int{-1, 0, 0, 0}},
		{"irregular", []int{-1, 0, 0, 1, 1, 1, 2}},
		{"chain", []int{-1, 0, 1}},
		{"forest", []int{-1, 0, 0, -1, 3, 3}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			n := len(shape.parent)
			for trial := 0; trial < 20; trial++ {
				spec := TreeSpec{Parent: shape.parent, Variance: make([]float64, n)}
				z := make([]float64, n)
				for i := range z {
					z[i] = rng.NormFloat64() * 5
					spec.Variance[i] = 0.5 + rng.Float64()*3
				}
				got, err := TreeConsistency(spec, z)
				if err != nil {
					t.Fatalf("TreeConsistency: %v", err)
				}
				want := directTreeLS(spec, z)
				for i := range want {
					if !almostEqual(got[i], want[i], 1e-6) {
						t.Fatalf("trial %d node %d: two-pass %v, direct LS %v", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestTreeConsistencyIsConsistent(t *testing.T) {
	// After inference every parent must equal the sum of its children.
	parent := []int{-1, 0, 0, 1, 1, 2, 2}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		spec := TreeSpec{Parent: parent, Variance: make([]float64, len(parent))}
		z := make([]float64, len(parent))
		for i := range z {
			z[i] = rng.NormFloat64() * 10
			spec.Variance[i] = 1 + rng.Float64()
		}
		h, err := TreeConsistency(spec, z)
		if err != nil {
			t.Fatalf("TreeConsistency: %v", err)
		}
		if !almostEqual(h[0], h[1]+h[2], 1e-9) || !almostEqual(h[1], h[3]+h[4], 1e-9) || !almostEqual(h[2], h[5]+h[6], 1e-9) {
			t.Fatalf("inconsistent estimates: %v", h)
		}
	}
}

func TestTreeConsistencyExactNode(t *testing.T) {
	// Root has variance 0 (publicly known total): estimate must pin it.
	spec := TreeSpec{Parent: []int{-1, 0, 0}, Variance: []float64{0, 1, 1}}
	z := []float64{100, 45, 52}
	h, err := TreeConsistency(spec, z)
	if err != nil {
		t.Fatalf("TreeConsistency: %v", err)
	}
	if h[0] != 100 {
		t.Fatalf("exact root moved: %v", h[0])
	}
	if !almostEqual(h[1]+h[2], 100, 1e-9) {
		t.Fatalf("children do not sum to exact root: %v", h)
	}
	// Residual 3 split evenly (equal variances): 46.5, 53.5.
	if !almostEqual(h[1], 46.5, 1e-9) || !almostEqual(h[2], 53.5, 1e-9) {
		t.Fatalf("residual split wrong: %v", h)
	}
}

func TestTreeConsistencyErrors(t *testing.T) {
	if _, err := TreeConsistency(TreeSpec{Parent: []int{0}, Variance: []float64{1}}, []float64{1}); err == nil {
		t.Error("self-parent accepted")
	}
	if _, err := TreeConsistency(TreeSpec{Parent: []int{1, 0}, Variance: []float64{1, 1}}, []float64{1, 2}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := TreeConsistency(TreeSpec{Parent: []int{-1}, Variance: []float64{-1}}, []float64{1}); err == nil {
		t.Error("negative variance accepted")
	}
	if _, err := TreeConsistency(TreeSpec{Parent: []int{-1, 9}, Variance: []float64{1, 1}}, []float64{1, 2}); err == nil {
		t.Error("invalid parent accepted")
	}
	if _, err := TreeConsistency(TreeSpec{Parent: []int{-1}, Variance: []float64{1, 2}}, []float64{1}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestProjectLinear(t *testing.T) {
	// Project onto {x0 + x1 = 10}.
	y := []float64{3, 4}
	x, err := ProjectLinear(y, [][]float64{{1, 1}}, []float64{10})
	if err != nil {
		t.Fatalf("ProjectLinear: %v", err)
	}
	if !almostEqual(x[0]+x[1], 10, 1e-9) {
		t.Fatalf("constraint violated: %v", x)
	}
	// Symmetric residual split: x = [4.5, 5.5].
	if !almostEqual(x[0], 4.5, 1e-9) || !almostEqual(x[1], 5.5, 1e-9) {
		t.Fatalf("projection = %v, want [4.5 5.5]", x)
	}
	// No constraints: identity.
	x, err = ProjectLinear(y, nil, nil)
	if err != nil {
		t.Fatalf("ProjectLinear: %v", err)
	}
	if x[0] != 3 || x[1] != 4 {
		t.Fatalf("empty projection changed input: %v", x)
	}
}

func TestProjectLinearProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		k := 1 + rng.Intn(2)
		b := make([][]float64, k)
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.NormFloat64() * 5
		}
		c := make([]float64, k)
		for r := range b {
			b[r] = make([]float64, n)
			for j := range b[r] {
				if rng.Float64() < 0.5 {
					b[r][j] = 1
				}
			}
			for j := range b[r] {
				c[r] += b[r][j] * truth[j]
			}
		}
		noisy := make([]float64, n)
		for i := range noisy {
			noisy[i] = truth[i] + rng.NormFloat64()
		}
		x, err := ProjectLinear(noisy, b, c)
		if err != nil {
			t.Fatalf("ProjectLinear: %v", err)
		}
		// Constraints hold.
		for r := 0; r < k; r++ {
			var got float64
			for j := 0; j < n; j++ {
				got += b[r][j] * x[j]
			}
			if !almostEqual(got, c[r], 1e-6) {
				t.Fatalf("constraint %d: %v != %v", r, got, c[r])
			}
		}
		// Projection moves no farther from the truth (truth satisfies the
		// constraints).
		if dist2(truth, x) > dist2(truth, noisy)+1e-6 {
			t.Fatalf("projection increased error: %v > %v", dist2(truth, x), dist2(truth, noisy))
		}
		// Idempotent.
		x2, err := ProjectLinear(x, b, c)
		if err != nil {
			t.Fatalf("ProjectLinear: %v", err)
		}
		for i := range x {
			if !almostEqual(x[i], x2[i], 1e-6) {
				t.Fatal("projection not idempotent")
			}
		}
	}
}

func TestProjectLinearRedundantConstraints(t *testing.T) {
	// Duplicate rows are consistent but dependent; projection must succeed.
	y := []float64{1, 2, 3}
	b := [][]float64{{1, 1, 0}, {1, 1, 0}}
	c := []float64{5, 5}
	x, err := ProjectLinear(y, b, c)
	if err != nil {
		t.Fatalf("ProjectLinear with redundant constraints: %v", err)
	}
	if !almostEqual(x[0]+x[1], 5, 1e-9) {
		t.Fatalf("constraint violated: %v", x)
	}
}

func TestProjectLinearShapeErrors(t *testing.T) {
	if _, err := ProjectLinear([]float64{1}, [][]float64{{1, 1}}, []float64{1}); err == nil {
		t.Error("column mismatch accepted")
	}
	if _, err := ProjectLinear([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestIsotonicQuick(t *testing.T) {
	f := func(raw []int8) bool {
		y := make([]float64, len(raw))
		for i, r := range raw {
			y[i] = float64(r)
		}
		out := IsotonicRegression(y)
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1]-1e-9 {
				return false
			}
		}
		return len(out) == len(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeConsistencyUnobservedRoot(t *testing.T) {
	// Root unobserved (+Inf variance): estimate must come entirely from the
	// children, and remain consistent.
	spec := TreeSpec{Parent: []int{-1, 0, 0}, Variance: []float64{math.Inf(1), 1, 2}}
	z := []float64{999999, 10, 20} // root z must be ignored
	h, err := TreeConsistency(spec, z)
	if err != nil {
		t.Fatalf("TreeConsistency: %v", err)
	}
	if !almostEqual(h[0], 30, 1e-9) {
		t.Fatalf("unobserved root estimate = %v, want children sum 30", h[0])
	}
	if !almostEqual(h[1], 10, 1e-9) || !almostEqual(h[2], 20, 1e-9) {
		t.Fatalf("children moved without information: %v", h)
	}
	// Unobserved leaves are rejected.
	bad := TreeSpec{Parent: []int{-1, 0}, Variance: []float64{1, math.Inf(1)}}
	if _, err := TreeConsistency(bad, []float64{1, 2}); err == nil {
		t.Fatal("unobserved leaf accepted")
	}
	// NaN variance rejected.
	nan := TreeSpec{Parent: []int{-1}, Variance: []float64{math.NaN()}}
	if _, err := TreeConsistency(nan, []float64{1}); err == nil {
		t.Fatal("NaN variance accepted")
	}
}

func TestTreeConsistencyUnobservedMidLevel(t *testing.T) {
	// A mid-level unobserved node inside a deeper tree: node 1 is
	// unobserved, its children 3,4 and sibling 2 are observed, root 0
	// observed. Consistency must hold and the root must still pool
	// information across branches.
	spec := TreeSpec{
		Parent:   []int{-1, 0, 0, 1, 1},
		Variance: []float64{1, math.Inf(1), 1, 1, 1},
	}
	z := []float64{100, 0, 40, 25, 30}
	h, err := TreeConsistency(spec, z)
	if err != nil {
		t.Fatalf("TreeConsistency: %v", err)
	}
	if !almostEqual(h[0], h[1]+h[2], 1e-9) {
		t.Fatalf("root inconsistent: %v", h)
	}
	if !almostEqual(h[1], h[3]+h[4], 1e-9) {
		t.Fatalf("unobserved node inconsistent: %v", h)
	}
}
