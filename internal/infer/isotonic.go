// Package infer implements the constrained-inference post-processing steps
// that boost mechanism accuracy without touching the privacy budget:
// isotonic regression for noisy cumulative histograms (Section 7.1, after
// Hay et al. [9]), weighted least-squares consistency on hierarchical trees,
// and least-squares projection onto known linear count constraints.
//
// Post-processing never degrades privacy: each function is a deterministic
// map of already-released values.
package infer

// IsotonicRegression returns the L2 projection of y onto the cone of
// non-decreasing sequences, computed with the pool-adjacent-violators
// algorithm in O(n).
//
// This is the constrained inference step of the ordered mechanism: noisy
// cumulative counts s̃ must be non-decreasing, and projecting them onto that
// constraint reduces the error from O(|T|/ε²) to O(p·log³|T|/ε²) where p is
// the number of distinct cumulative counts (sparse data ⇒ small p).
func IsotonicRegression(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Blocks of pooled values: each block stores its mean and weight.
	means := make([]float64, 0, n)
	weights := make([]int, 0, n)
	for _, v := range y {
		means = append(means, v)
		weights = append(weights, 1)
		// Pool while the last two blocks violate monotonicity.
		for len(means) >= 2 && means[len(means)-2] > means[len(means)-1] {
			m2, w2 := means[len(means)-1], weights[len(weights)-1]
			m1, w1 := means[len(means)-2], weights[len(weights)-2]
			means = means[:len(means)-1]
			weights = weights[:len(weights)-1]
			w := w1 + w2
			means[len(means)-1] = (m1*float64(w1) + m2*float64(w2)) / float64(w)
			weights[len(weights)-1] = w
		}
	}
	i := 0
	for b := range means {
		for k := 0; k < weights[b]; k++ {
			out[i] = means[b]
			i++
		}
	}
	return out
}

// MonotoneCumulative post-processes a noisy cumulative histogram: it
// applies isotonic regression, clamps the sequence into [0, n] (both the
// positivity constraint s1 ≥ 0 of Section 7.1 and the public cardinality
// upper bound), and returns the result. Pass n < 0 to skip the upper clamp.
func MonotoneCumulative(noisy []float64, n float64) []float64 {
	out := IsotonicRegression(noisy)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
		if n >= 0 && out[i] > n {
			out[i] = n
		}
	}
	return out
}
