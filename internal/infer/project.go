package infer

import (
	"errors"
	"fmt"
	"math"
)

// ProjectLinear returns the L2 projection of y onto the affine subspace
// {x : Bx = c}: the closest vector to y that satisfies every linear
// constraint exactly. B is row-major with len(c) rows and len(y) columns.
//
// Blowfish policies with count constraints publish the constraint answers,
// so a released histogram can be post-processed to agree with them exactly;
// this both removes the systematic inconsistency an analyst would see and
// reduces error (projection never increases L2 distance to the truth,
// because the truth itself satisfies the constraints).
func ProjectLinear(y []float64, b [][]float64, c []float64) ([]float64, error) {
	k := len(b)
	if k != len(c) {
		return nil, fmt.Errorf("infer: %d constraint rows but %d answers", k, len(c))
	}
	n := len(y)
	for i, row := range b {
		if len(row) != n {
			return nil, fmt.Errorf("infer: constraint row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if k == 0 {
		return append([]float64(nil), y...), nil
	}
	// Solve (B Bᵀ) λ = B y − c, then x = y − Bᵀ λ.
	gram := make([][]float64, k)
	for i := range gram {
		gram[i] = make([]float64, k)
		for j := 0; j <= i; j++ {
			var dot float64
			for t := 0; t < n; t++ {
				dot += b[i][t] * b[j][t]
			}
			gram[i][j] = dot
			gram[j][i] = dot
		}
	}
	rhs := make([]float64, k)
	for i := 0; i < k; i++ {
		var dot float64
		for t := 0; t < n; t++ {
			dot += b[i][t] * y[t]
		}
		rhs[i] = dot - c[i]
	}
	lambda, err := solveSymmetric(gram, rhs)
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), y...)
	for i := 0; i < k; i++ {
		if lambda[i] == 0 {
			continue
		}
		for t := 0; t < n; t++ {
			x[t] -= b[i][t] * lambda[i]
		}
	}
	return x, nil
}

// solveSymmetric solves Ax = b for a symmetric positive semi-definite A by
// Gaussian elimination with partial pivoting. Redundant (linearly
// dependent) constraints yield near-zero pivots and are dropped by setting
// the corresponding multiplier to zero, which keeps projections onto
// consistent but redundant constraint sets well-defined.
func solveSymmetric(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	m := make([][]float64, k)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	const tol = 1e-9
	perm := make([]int, 0, k)
	for col := 0; col < k; col++ {
		// Partial pivot.
		pivot, best := -1, tol
		for r := len(perm); r < k; r++ {
			if v := math.Abs(m[r][col]); v > best {
				pivot, best = r, v
			}
		}
		if pivot == -1 {
			continue // dependent column
		}
		r := len(perm)
		m[r], m[pivot] = m[pivot], m[r]
		perm = append(perm, col)
		pv := m[r][col]
		for i := 0; i < k; i++ {
			if i == r || m[i][col] == 0 {
				continue
			}
			f := m[i][col] / pv
			for j := col; j <= k; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
	}
	x := make([]float64, k)
	for r, col := range perm {
		if m[r][col] == 0 {
			return nil, errors.New("infer: singular constraint system")
		}
		x[col] = m[r][k] / m[r][col]
	}
	return x, nil
}
