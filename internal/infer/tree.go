package infer

import (
	"errors"
	"fmt"
	"math"
)

// TreeSpec describes a consistency tree: node v's true value equals the sum
// of its children's true values, and every node carries an independent noisy
// observation with a known variance. Parent[v] is -1 for the root; children
// are derived. Multiple roots (a forest) are allowed.
type TreeSpec struct {
	// Parent[v] is the parent index of node v, or -1 for roots.
	Parent []int
	// Variance[v] is the noise variance of node v's observation. A variance
	// of 0 marks an exactly known node (e.g. an unnoised public total); the
	// estimator then pins that node's value. A variance of +Inf marks an
	// unobserved internal node (e.g. a subtree total that was never
	// released): its estimate comes entirely from its children, and its z
	// value is ignored. Unobserved leaves are rejected — they carry no
	// information at all.
	Variance []float64
}

// TreeConsistency computes the generalized-least-squares estimate of all
// node values given noisy observations z and the summation constraints of
// the tree, via the two-pass algorithm of Hay et al. [9] extended to
// per-node variances and irregular fanouts:
//
//  1. bottom-up, each node combines its own observation with the sum of its
//     children's estimates by inverse-variance weighting;
//  2. top-down, each node's final value distributes the residual between a
//     parent's final value and its children's combined estimates in
//     proportion to the children's variances.
//
// The result is consistent (parents equal the sum of children) and for
// trees with independent noise it is the minimum-variance unbiased linear
// estimator. Leaves of the returned slice can be summed to answer any range
// consistently.
func TreeConsistency(spec TreeSpec, z []float64) ([]float64, error) {
	n := len(z)
	if len(spec.Parent) != n || len(spec.Variance) != n {
		return nil, fmt.Errorf("infer: spec size mismatch: parent %d, variance %d, z %d", len(spec.Parent), len(spec.Variance), n)
	}
	children := make([][]int, n)
	roots := make([]int, 0, 1)
	for v, p := range spec.Parent {
		switch {
		case p == -1:
			roots = append(roots, v)
		case p < 0 || p >= n:
			return nil, fmt.Errorf("infer: node %d has invalid parent %d", v, p)
		case p == v:
			return nil, fmt.Errorf("infer: node %d is its own parent", v)
		default:
			children[p] = append(children[p], v)
		}
	}
	if len(roots) == 0 {
		return nil, errors.New("infer: no root node")
	}
	for v, va := range spec.Variance {
		if va < 0 || (va != va) { // negative or NaN
			return nil, fmt.Errorf("infer: node %d has invalid variance %v", v, va)
		}
		if math.IsInf(va, 1) && len(children[v]) == 0 {
			return nil, fmt.Errorf("infer: leaf %d is unobserved (infinite variance)", v)
		}
	}
	order, err := topoOrder(spec.Parent, children, roots)
	if err != nil {
		return nil, err
	}

	// Pass 1 (bottom-up): y[v] is the best estimate of node v using only its
	// subtree; varY[v] its variance. Inverse-variance weighting of the own
	// observation z[v] (variance σ²) against the children-sum estimate
	// (variance Σ varY[c]).
	y := make([]float64, n)
	varY := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if len(children[v]) == 0 {
			y[v] = z[v]
			varY[v] = spec.Variance[v]
			continue
		}
		var childSum, childVar float64
		for _, c := range children[v] {
			childSum += y[c]
			childVar += varY[c]
		}
		own := spec.Variance[v]
		switch {
		case own == 0:
			// Exact observation pins the node (exact children are expected
			// to be consistent with it).
			y[v] = z[v]
			varY[v] = 0
		case childVar == 0:
			y[v] = childSum
			varY[v] = 0
		case math.IsInf(own, 1):
			// Unobserved node: the children's sum is all we know.
			y[v] = childSum
			varY[v] = childVar
		default:
			w := childVar / (own + childVar) // weight on own observation
			y[v] = w*z[v] + (1-w)*childSum
			varY[v] = own * childVar / (own + childVar)
		}
	}

	// Pass 2 (top-down): h[root] = y[root]; children split the residual
	// h[v] - Σ y[c] in proportion to their subtree variances.
	h := make([]float64, n)
	for _, v := range order {
		if spec.Parent[v] == -1 {
			h[v] = y[v]
		}
		if len(children[v]) == 0 {
			continue
		}
		var childSum, childVar float64
		for _, c := range children[v] {
			childSum += y[c]
			childVar += varY[c]
		}
		resid := h[v] - childSum
		if childVar == 0 {
			// Children are exact: they cannot absorb residual. (resid must
			// be 0 for consistent exact inputs; distribute equally if not.)
			for _, c := range children[v] {
				h[c] = y[c] + resid/float64(len(children[v]))
			}
			continue
		}
		for _, c := range children[v] {
			h[c] = y[c] + resid*(varY[c]/childVar)
		}
	}
	return h, nil
}

// topoOrder returns nodes in root-first order and verifies the parent
// structure is acyclic.
func topoOrder(parent []int, children [][]int, roots []int) ([]int, error) {
	n := len(parent)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			return nil, fmt.Errorf("infer: node %d reached twice; parent links form a cycle or a DAG", v)
		}
		seen[v] = true
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	if len(order) != n {
		return nil, errors.New("infer: parent links contain a cycle")
	}
	return order, nil
}
