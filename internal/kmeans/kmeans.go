// Package kmeans implements Lloyd's k-means clustering and the SuLQ-style
// private variant of Blum et al. [2] that Section 6 builds on.
//
// Each private iteration answers two queries — per-cluster sizes (qsize,
// sensitivity 2) and per-cluster coordinate sums (qsum, policy-specific
// sensitivity per Lemma 6.1) — with Laplace noise. One implementation serves
// every privacy mode: ε-differential privacy and each Blowfish policy differ
// only in the sensitivities supplied, exactly mirroring the paper's Figure 1
// comparisons.
package kmeans

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/noise"
)

// Result holds the clustering output.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Objective is the k-means objective (Eq. 10) of the final centroids on
	// the true data.
	Objective float64
}

// Config parameterizes a clustering run.
type Config struct {
	// K is the number of clusters (>= 1).
	K int
	// Iterations is the fixed number of Lloyd iterations (the paper uses 10).
	Iterations int
	// Lo and Hi bound each coordinate (inclusive); noisy centroids are
	// clamped into the box. Required for private runs; optional (nil) for
	// non-private runs.
	Lo, Hi []float64
}

// PrivateConfig extends Config with the privacy calibration.
type PrivateConfig struct {
	Config
	// Epsilon is the total privacy budget across all iterations.
	Epsilon float64
	// SizeSensitivity is S(qsize, P); 2 under every policy in the paper.
	SizeSensitivity float64
	// SumSensitivity is S(qsum, P): 2·d(T) for differential privacy, the
	// Lemma 6.1 values for Blowfish policies (policy.SumSensitivity).
	SumSensitivity float64
}

func (c Config) validate(dims int) error {
	if c.K < 1 {
		return fmt.Errorf("kmeans: k = %d < 1", c.K)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("kmeans: iterations = %d < 1", c.Iterations)
	}
	if (c.Lo == nil) != (c.Hi == nil) {
		return errors.New("kmeans: Lo and Hi must both be set or both nil")
	}
	if c.Lo != nil && (len(c.Lo) != dims || len(c.Hi) != dims) {
		return fmt.Errorf("kmeans: bounds dimension %d/%d, want %d", len(c.Lo), len(c.Hi), dims)
	}
	return nil
}

// Lloyd runs non-private k-means with random-point initialization drawn
// from src. The number of points must be at least K.
func Lloyd(points [][]float64, cfg Config, src *noise.Source) (Result, error) {
	return run(points, cfg, 0, 0, src)
}

// PrivateLloyd runs SuLQ k-means: every iteration spends ε/Iterations,
// split evenly between the size and sum queries. It requires coordinate
// bounds for clamping noisy centroids.
func PrivateLloyd(points [][]float64, cfg PrivateConfig, src *noise.Source) (Result, error) {
	if cfg.Epsilon <= 0 || math.IsNaN(cfg.Epsilon) || math.IsInf(cfg.Epsilon, 0) {
		return Result{}, fmt.Errorf("kmeans: invalid epsilon %v", cfg.Epsilon)
	}
	if cfg.SizeSensitivity < 0 || cfg.SumSensitivity < 0 {
		return Result{}, errors.New("kmeans: negative sensitivity")
	}
	if cfg.Lo == nil {
		return Result{}, errors.New("kmeans: private runs require coordinate bounds")
	}
	epsIter := cfg.Epsilon / float64(cfg.Iterations)
	sizeScale := 0.0
	sumScale := 0.0
	if cfg.SizeSensitivity > 0 {
		sizeScale = cfg.SizeSensitivity / (epsIter / 2)
	}
	if cfg.SumSensitivity > 0 {
		sumScale = cfg.SumSensitivity / (epsIter / 2)
	}
	return run(points, cfg.Config, sizeScale, sumScale, src)
}

// run is the shared Lloyd loop; sizeScale/sumScale of 0 mean exact queries.
func run(points [][]float64, cfg Config, sizeScale, sumScale float64, src *noise.Source) (Result, error) {
	n := len(points)
	if n == 0 {
		return Result{}, errors.New("kmeans: empty dataset")
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return Result{}, fmt.Errorf("kmeans: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	if err := cfg.validate(dims); err != nil {
		return Result{}, err
	}
	if n < cfg.K {
		return Result{}, fmt.Errorf("kmeans: %d points for k = %d", n, cfg.K)
	}
	if src == nil {
		return Result{}, errors.New("kmeans: nil noise source")
	}

	// Initialize centroids at k distinct random data points.
	centroids := make([][]float64, cfg.K)
	perm := src.Perm(n)
	for i := 0; i < cfg.K; i++ {
		centroids[i] = append([]float64(nil), points[perm[i]]...)
	}

	assign := make([]int, n)
	counts := make([]float64, cfg.K)
	sums := make([][]float64, cfg.K)
	for i := range sums {
		sums[i] = make([]float64, dims)
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Assignment step.
		for i, p := range points {
			assign[i] = nearest(p, centroids)
		}
		// Aggregate qsize and qsum.
		for c := range counts {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		// Noisy update.
		for c := 0; c < cfg.K; c++ {
			cnt := counts[c] + src.Laplace(sizeScale)
			if cnt < 1 {
				// Degenerate cluster: keep the previous centroid, as SuLQ
				// implementations do when the noisy count collapses.
				continue
			}
			for d := 0; d < dims; d++ {
				v := (sums[c][d] + src.Laplace(sumScale)) / cnt
				if cfg.Lo != nil {
					if v < cfg.Lo[d] {
						v = cfg.Lo[d]
					}
					if v > cfg.Hi[d] {
						v = cfg.Hi[d]
					}
				}
				centroids[c][d] = v
			}
		}
	}
	return Result{Centroids: centroids, Objective: Objective(points, centroids)}, nil
}

// nearest returns the index of the centroid closest to p in L2.
func nearest(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range centroids {
		var d float64
		for j, v := range p {
			diff := v - ctr[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Objective evaluates the k-means objective (Eq. 10): the sum of squared L2
// distances from each point to its nearest centroid.
func Objective(points [][]float64, centroids [][]float64) float64 {
	var total float64
	for _, p := range points {
		c := nearest(p, centroids)
		for j, v := range p {
			diff := v - centroids[c][j]
			total += diff * diff
		}
	}
	return total
}

// Bounds computes per-dimension [min, max] over the points — the clamping
// box for private runs when the domain bounds are not known a priori.
func Bounds(points [][]float64) (lo, hi []float64, err error) {
	if len(points) == 0 {
		return nil, nil, errors.New("kmeans: empty dataset")
	}
	dims := len(points[0])
	lo = append([]float64(nil), points[0]...)
	hi = append([]float64(nil), points[0]...)
	for _, p := range points {
		if len(p) != dims {
			return nil, nil, errors.New("kmeans: inconsistent dimensions")
		}
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return lo, hi, nil
}
