package kmeans

import (
	"math"
	"testing"

	"blowfish/internal/noise"
)

// twoClusters returns well-separated clusters around (0,0) and (100,100).
func twoClusters(src *noise.Source, perCluster int) [][]float64 {
	var pts [][]float64
	for i := 0; i < perCluster; i++ {
		pts = append(pts, []float64{src.Gaussian(1), src.Gaussian(1)})
		pts = append(pts, []float64{100 + src.Gaussian(1), 100 + src.Gaussian(1)})
	}
	return pts
}

func TestLloydSeparatesClusters(t *testing.T) {
	src := noise.NewSource(3)
	pts := twoClusters(src, 100)
	res, err := Lloyd(pts, Config{K: 2, Iterations: 10}, src)
	if err != nil {
		t.Fatalf("Lloyd: %v", err)
	}
	// Both cluster centers recovered (order free).
	var nearOrigin, nearHundred bool
	for _, c := range res.Centroids {
		if math.Abs(c[0]) < 5 && math.Abs(c[1]) < 5 {
			nearOrigin = true
		}
		if math.Abs(c[0]-100) < 5 && math.Abs(c[1]-100) < 5 {
			nearHundred = true
		}
	}
	if !nearOrigin || !nearHundred {
		t.Fatalf("centroids %v do not match clusters", res.Centroids)
	}
	// Objective ≈ per-point variance: 200 points × E||g||² ≈ 200·2.
	if res.Objective > 800 {
		t.Fatalf("objective %v too large for clean clusters", res.Objective)
	}
}

func TestLloydValidation(t *testing.T) {
	src := noise.NewSource(1)
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := Lloyd(pts, Config{K: 0, Iterations: 5}, src); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Lloyd(pts, Config{K: 2, Iterations: 0}, src); err == nil {
		t.Error("iterations=0 accepted")
	}
	if _, err := Lloyd(pts, Config{K: 5, Iterations: 5}, src); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := Lloyd(nil, Config{K: 1, Iterations: 1}, src); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Lloyd([][]float64{{1}, {1, 2}}, Config{K: 1, Iterations: 1}, src); err == nil {
		t.Error("ragged points accepted")
	}
	if _, err := Lloyd(pts, Config{K: 1, Iterations: 1, Lo: []float64{0}}, src); err == nil {
		t.Error("Lo without Hi accepted")
	}
	if _, err := Lloyd(pts, Config{K: 1, Iterations: 1}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestPrivateLloydValidation(t *testing.T) {
	src := noise.NewSource(1)
	pts := twoClusters(src, 10)
	base := PrivateConfig{
		Config:          Config{K: 2, Iterations: 5, Lo: []float64{-10, -10}, Hi: []float64{110, 110}},
		Epsilon:         1,
		SizeSensitivity: 2,
		SumSensitivity:  4,
	}
	bad := base
	bad.Epsilon = 0
	if _, err := PrivateLloyd(pts, bad, src); err == nil {
		t.Error("zero epsilon accepted")
	}
	bad = base
	bad.SumSensitivity = -1
	if _, err := PrivateLloyd(pts, bad, src); err == nil {
		t.Error("negative sensitivity accepted")
	}
	bad = base
	bad.Lo, bad.Hi = nil, nil
	if _, err := PrivateLloyd(pts, bad, src); err == nil {
		t.Error("missing bounds accepted")
	}
}

func TestPrivateLloydZeroSensitivityMatchesExact(t *testing.T) {
	// With zero sensitivities (e.g. the partition|finest policy of Fig 1f)
	// the private run must equal the non-private run seed-for-seed.
	pts := twoClusters(noise.NewSource(5), 50)
	cfg := Config{K: 2, Iterations: 8, Lo: []float64{-1000, -1000}, Hi: []float64{1000, 1000}}
	exact, err := Lloyd(pts, cfg, noise.NewSource(42))
	if err != nil {
		t.Fatalf("Lloyd: %v", err)
	}
	private, err := PrivateLloyd(pts, PrivateConfig{Config: cfg, Epsilon: 0.1}, noise.NewSource(42))
	if err != nil {
		t.Fatalf("PrivateLloyd: %v", err)
	}
	if math.Abs(exact.Objective-private.Objective) > 1e-9 {
		t.Fatalf("zero-sensitivity private objective %v != exact %v", private.Objective, exact.Objective)
	}
}

func TestPrivateNoiseDegradesWithLowerEpsilonAndHigherSensitivity(t *testing.T) {
	src := noise.NewSource(9)
	pts := twoClusters(src, 200)
	cfg := Config{K: 2, Iterations: 10, Lo: []float64{-20, -20}, Hi: []float64{120, 120}}
	objective := func(eps, sumSens float64, seed int64) float64 {
		var total float64
		const reps = 30
		for r := int64(0); r < reps; r++ {
			res, err := PrivateLloyd(pts, PrivateConfig{
				Config: cfg, Epsilon: eps, SizeSensitivity: 2, SumSensitivity: sumSens,
			}, noise.NewSource(seed+r))
			if err != nil {
				t.Fatalf("PrivateLloyd: %v", err)
			}
			total += res.Objective
		}
		return total / reps
	}
	// Blowfish-style small sum sensitivity should beat DP-style large one.
	small := objective(0.5, 4, 100)   // e.g. θ=2 policy: 2θ = 4
	large := objective(0.5, 480, 200) // DP: 2·d(T) with diameter 240
	if small >= large {
		t.Fatalf("low-sensitivity objective %v not better than high-sensitivity %v", small, large)
	}
}

func TestCentroidsStayInBounds(t *testing.T) {
	src := noise.NewSource(11)
	pts := twoClusters(src, 50)
	lo := []float64{-5, -5}
	hi := []float64{105, 105}
	res, err := PrivateLloyd(pts, PrivateConfig{
		Config:          Config{K: 3, Iterations: 10, Lo: lo, Hi: hi},
		Epsilon:         0.05, // large noise
		SizeSensitivity: 2,
		SumSensitivity:  400,
	}, src)
	if err != nil {
		t.Fatalf("PrivateLloyd: %v", err)
	}
	for _, c := range res.Centroids {
		for d := range c {
			if c[d] < lo[d] || c[d] > hi[d] {
				t.Fatalf("centroid %v escaped bounds", c)
			}
		}
	}
}

func TestObjective(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {10, 0}}
	cents := [][]float64{{1, 0}, {10, 0}}
	// Points 0,1 to centroid (1,0): 1+1; point 2 to (10,0): 0.
	if got, want := Objective(pts, cents), 2.0; got != want {
		t.Fatalf("Objective = %v, want %v", got, want)
	}
}

func TestBounds(t *testing.T) {
	pts := [][]float64{{1, 5}, {-3, 2}, {4, 4}}
	lo, hi, err := Bounds(pts)
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	if lo[0] != -3 || lo[1] != 2 || hi[0] != 4 || hi[1] != 5 {
		t.Fatalf("Bounds = %v %v", lo, hi)
	}
	if _, _, err := Bounds(nil); err == nil {
		t.Error("empty Bounds accepted")
	}
	if _, _, err := Bounds([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged Bounds accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	pts := twoClusters(noise.NewSource(13), 40)
	cfg := PrivateConfig{
		Config:          Config{K: 2, Iterations: 5, Lo: []float64{-10, -10}, Hi: []float64{110, 110}},
		Epsilon:         1,
		SizeSensitivity: 2,
		SumSensitivity:  10,
	}
	a, err := PrivateLloyd(pts, cfg, noise.NewSource(77))
	if err != nil {
		t.Fatalf("PrivateLloyd: %v", err)
	}
	b, err := PrivateLloyd(pts, cfg, noise.NewSource(77))
	if err != nil {
		t.Fatalf("PrivateLloyd: %v", err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("same seed, different objectives: %v vs %v", a.Objective, b.Objective)
	}
}
