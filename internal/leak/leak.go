// Package leak is a goroutine-leak watchdog for tests and for
// Server.Close: it snapshots the goroutines owned by this module before a
// test body runs and fails the test if any survive the cleanup phase.
//
// The approach is the snapshot-diff pattern: parse runtime.Stack(all)
// into per-goroutine records, keep only goroutines whose stack mentions a
// blowfish package frame (runtime helpers, testing harness goroutines and
// net/http transport keep-alives belong to their own lifecycles and are
// not ours to assert on), and compare before/after. Shutdown is
// asynchronous — a Stop()ed ticker goroutine may need a scheduler pass to
// exit — so the check retries with backoff until a deadline before
// declaring a leak.
package leak

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// modulePrefix identifies frames owned by this module. Function names in
// runtime.Stack output are fully qualified ("blowfish/internal/stream.(*Stream).run"),
// and the facade package itself shows up as "blowfish.".
const modulePrefix = "blowfish"

// Goroutine is one parsed goroutine record from a runtime.Stack dump.
type Goroutine struct {
	ID    int64
	State string // e.g. "running", "chan receive", "select"
	Stack string // full record, including the header line
}

// ownedByModule reports whether the goroutine has any blowfish frame —
// function name "blowfish.Foo" or "blowfish/internal/...".
func ownedByModule(stack string) bool {
	for _, line := range strings.Split(stack, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, modulePrefix+".") || strings.HasPrefix(line, modulePrefix+"/") {
			return true
		}
	}
	return false
}

// Snapshot returns the module-owned goroutines currently alive, keyed by
// goroutine ID. The caller's own goroutine is included if it has a
// blowfish frame; Check diffs against a baseline so that is harmless.
func Snapshot() map[int64]Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[int64]Goroutine)
	for _, rec := range strings.Split(string(buf), "\n\n") {
		g, ok := parseGoroutine(rec)
		if !ok || !ownedByModule(g.Stack) {
			continue
		}
		out[g.ID] = g
	}
	return out
}

// parseGoroutine parses one "goroutine N [state]:" record.
func parseGoroutine(rec string) (Goroutine, bool) {
	rec = strings.TrimSpace(rec)
	if !strings.HasPrefix(rec, "goroutine ") {
		return Goroutine{}, false
	}
	header, _, _ := strings.Cut(rec, "\n")
	rest := strings.TrimPrefix(header, "goroutine ")
	idStr, state, ok := strings.Cut(rest, " ")
	if !ok {
		return Goroutine{}, false
	}
	var id int64
	if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil {
		return Goroutine{}, false
	}
	state = strings.TrimSuffix(strings.TrimPrefix(state, "["), "]:")
	return Goroutine{ID: id, State: state, Stack: rec}, true
}

// Leaked diffs the current module-owned goroutines against a baseline
// snapshot and returns the survivors that are not in the baseline.
func Leaked(baseline map[int64]Goroutine) []Goroutine {
	var out []Goroutine
	for id, g := range Snapshot() {
		if _, ok := baseline[id]; !ok {
			out = append(out, g)
		}
	}
	return out
}

// Await polls until no goroutines beyond the baseline remain or the
// deadline passes, returning the final survivor list (nil when clean).
// Polling, not a single sleep: most shutdowns finish in microseconds and
// the fast path should not stall the suite.
func Await(baseline map[int64]Goroutine, deadline time.Duration) []Goroutine {
	delay := 100 * time.Microsecond
	start := time.Now()
	for {
		left := Leaked(baseline)
		if len(left) == 0 {
			return nil
		}
		if time.Since(start) > deadline {
			return left
		}
		time.Sleep(delay)
		if delay < 50*time.Millisecond {
			delay *= 2
		}
	}
}

// testingT is the slice of *testing.T the watchdog needs; an interface so
// the package stays importable from non-test code (Server.Close uses
// Snapshot/Await directly).
type testingT interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check arms the watchdog for a test: it snapshots now and registers a
// cleanup that fails the test if module-owned goroutines born during the
// test are still running ~2s after it finished. Call it first in the
// test, before the code under test spawns anything:
//
//	func TestHammer(t *testing.T) {
//		defer leak.Check(t)()
//		...
//	}
//
// or leak.Check(t) alone, which registers via t.Cleanup. The returned
// func runs the check immediately (useful before a test's own final
// asserts); the cleanup pass is idempotent afterwards.
func Check(t testingT) func() {
	t.Helper()
	baseline := Snapshot()
	done := false
	verify := func() {
		if done {
			return
		}
		done = true
		if left := Await(baseline, 2*time.Second); len(left) > 0 {
			var b strings.Builder
			for _, g := range left {
				fmt.Fprintf(&b, "\n\ngoroutine %d [%s]:\n%s", g.ID, g.State, g.Stack)
			}
			t.Errorf("leak: %d module-owned goroutine(s) still alive after test:%s", len(left), b.String())
		}
	}
	t.Cleanup(verify)
	return verify
}
