package leak

import (
	"strings"
	"testing"
	"time"
)

// spin parks a goroutine with a blowfish frame on its stack (this test
// package is blowfish/internal/leak, so any function here qualifies).
func spin(quit chan struct{}) {
	<-quit
}

func TestSnapshotSeesOwnGoroutines(t *testing.T) {
	base := Snapshot()
	quit := make(chan struct{})
	go spin(quit)
	// The goroutine may not be scheduled yet; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(Leaked(base)) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Snapshot never observed the spawned module goroutine")
		}
		time.Sleep(time.Millisecond)
	}
	close(quit)
	if left := Await(base, 2*time.Second); len(left) != 0 {
		t.Fatalf("goroutine still reported leaked after exit: %+v", left)
	}
}

func TestParseGoroutine(t *testing.T) {
	rec := "goroutine 42 [chan receive]:\nblowfish/internal/stream.(*Stream).run(0xc000010000)\n\t/src/stream.go:100 +0x20"
	g, ok := parseGoroutine(rec)
	if !ok {
		t.Fatal("parseGoroutine rejected a valid record")
	}
	if g.ID != 42 || g.State != "chan receive" {
		t.Fatalf("parsed %+v", g)
	}
	if !ownedByModule(g.Stack) {
		t.Fatal("blowfish frame not recognized as module-owned")
	}
	if _, ok := parseGoroutine("not a goroutine record"); ok {
		t.Fatal("parseGoroutine accepted garbage")
	}
	httpRec := "goroutine 7 [IO wait]:\nnet/http.(*persistConn).readLoop(0xc0001a2000)\n\t/usr/lib/go/src/net/http/transport.go:2218 +0x4a"
	if g, ok := parseGoroutine(httpRec); !ok {
		t.Fatal("parseGoroutine rejected the http record")
	} else if ownedByModule(g.Stack) {
		t.Fatal("net/http goroutine misclassified as module-owned")
	}
}

// fakeT captures Errorf calls so the failure path is testable without
// failing this test.
type fakeT struct {
	cleanups []func()
	errors   []string
}

func (f *fakeT) Helper()           {}
func (f *fakeT) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeT) Errorf(format string, args ...any) {
	f.errors = append(f.errors, format)
}

func TestCheckReportsLeak(t *testing.T) {
	ft := &fakeT{}
	verify := Check(ft)
	quit := make(chan struct{})
	go spin(quit)
	// Let the goroutine get on the stack dump before verifying.
	for i := 0; i < 2000 && len(Leaked(Snapshot())) == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Shorten the wait by closing quit *after* verify observes the leak is
	// not instantaneous — instead run verify with the goroutine parked; it
	// waits its 2s grace then reports.
	verify()
	close(quit)
	if len(ft.errors) != 1 || !strings.Contains(ft.errors[0], "goroutine") {
		t.Fatalf("Check did not report the leak: %v", ft.errors)
	}
	// The registered cleanup must be idempotent after the direct call.
	for _, fn := range ft.cleanups {
		fn()
	}
	if len(ft.errors) != 1 {
		t.Fatalf("cleanup re-reported: %v", ft.errors)
	}
}

func TestCheckCleanPass(t *testing.T) {
	ft := &fakeT{}
	Check(ft)
	quit := make(chan struct{})
	go spin(quit)
	close(quit)
	for _, fn := range ft.cleanups {
		fn()
	}
	if len(ft.errors) != 0 {
		t.Fatalf("clean run reported a leak: %v", ft.errors)
	}
}
