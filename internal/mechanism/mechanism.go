// Package mechanism implements the noise-adding release mechanisms that
// Blowfish policies calibrate: the Laplace mechanism of Definition 2.3 /
// Theorem 5.1 and a geometric (discrete Laplace) variant, together with the
// error metrics used throughout the evaluation (Definition 2.4).
package mechanism

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
)

// Laplace is the Laplace mechanism: it privately releases a vector-valued
// query with noise scale sensitivity/ε per coordinate. With the
// policy-specific sensitivity S(f, P) it satisfies (ε, P)-Blowfish privacy
// (Theorem 5.1); with the global sensitivity it is the classical
// ε-differentially-private mechanism.
type Laplace struct {
	eps   float64
	sens  float64
	scale float64
	src   *noise.Source
}

// NewLaplace constructs a Laplace mechanism for the given privacy budget
// and sensitivity. A sensitivity of zero yields the exact (noiseless)
// release that Blowfish permits for queries no secret pair can influence.
func NewLaplace(eps, sensitivity float64, src *noise.Source) (*Laplace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("mechanism: invalid epsilon %v", eps)
	}
	if sensitivity < 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("mechanism: invalid sensitivity %v", sensitivity)
	}
	if src == nil {
		return nil, errors.New("mechanism: nil noise source")
	}
	return &Laplace{eps: eps, sens: sensitivity, scale: sensitivity / eps, src: src}, nil
}

// Epsilon returns the privacy budget ε.
func (m *Laplace) Epsilon() float64 { return m.eps }

// Sensitivity returns the calibrated sensitivity.
func (m *Laplace) Sensitivity() float64 { return m.sens }

// Scale returns the per-coordinate noise scale b = sensitivity/ε.
func (m *Laplace) Scale() float64 { return m.scale }

// Release returns truth + Lap(scale)^d, leaving truth unmodified.
func (m *Laplace) Release(truth []float64) []float64 {
	out := make([]float64, len(truth))
	for i, v := range truth {
		out[i] = v + m.src.Laplace(m.scale)
	}
	return out
}

// ReleaseInPlace adds Lap(scale) to every coordinate of v and returns v.
// Callers that already own a private copy of the truth (the release engine
// noises histogram snapshots) use it to skip Release's defensive copy; the
// noise stream consumed is identical to Release's.
func (m *Laplace) ReleaseInPlace(v []float64) []float64 {
	for i := range v {
		v[i] += m.src.Laplace(m.scale)
	}
	return v
}

// ReleaseScalar releases a single number.
func (m *Laplace) ReleaseScalar(truth float64) float64 {
	return truth + m.src.Laplace(m.scale)
}

// ExpectedMSE returns the expected mean squared error of a d-dimensional
// release: d · 2b² (each Laplace coordinate has variance 2b²).
func (m *Laplace) ExpectedMSE(d int) float64 {
	return float64(d) * 2 * m.scale * m.scale
}

// Geometric is the discrete counterpart of Laplace: it perturbs integer
// counts with two-sided geometric noise of the same scale, keeping releases
// integral. Useful when consumers require integer counts.
type Geometric struct {
	eps   float64
	sens  float64
	scale float64
	src   *noise.Source
}

// NewGeometric constructs a geometric mechanism.
func NewGeometric(eps, sensitivity float64, src *noise.Source) (*Geometric, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("mechanism: invalid epsilon %v", eps)
	}
	if sensitivity < 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("mechanism: invalid sensitivity %v", sensitivity)
	}
	if src == nil {
		return nil, errors.New("mechanism: nil noise source")
	}
	return &Geometric{eps: eps, sens: sensitivity, scale: sensitivity / eps, src: src}, nil
}

// Release perturbs each integer count with two-sided geometric noise.
func (m *Geometric) Release(truth []int64) []int64 {
	out := make([]int64, len(truth))
	for i, v := range truth {
		out[i] = v + m.src.TwoSidedGeometric(m.scale)
	}
	return out
}

// ReleaseHistogram releases the complete histogram h(D) under the policy:
// noise is calibrated to the policy-specific sensitivity (2, or 0 for
// edgeless secret graphs). Only unconstrained policies are accepted here;
// constrained histogram release lives in package constraints.
func ReleaseHistogram(p *policy.Policy, ds *domain.Dataset, eps float64, src *noise.Source) ([]float64, error) {
	sens, err := p.HistogramSensitivity()
	if err != nil {
		return nil, err
	}
	truth, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	m, err := NewLaplace(eps, sens, src)
	if err != nil {
		return nil, err
	}
	return m.Release(truth), nil
}

// ReleasePartitionHistogram releases the histogram over the blocks of part
// with policy-calibrated noise; when every secret pair stays within a block
// the release is exact (sensitivity 0), the coarse-grid case of Section 5.
func ReleasePartitionHistogram(p *policy.Policy, ds *domain.Dataset, part domain.Partition, eps float64, src *noise.Source) ([]float64, error) {
	sens, err := p.PartitionHistogramSensitivity(part)
	if err != nil {
		return nil, err
	}
	return ReleasePartitionHistogramWithSens(ds, part, sens, eps, src)
}

// ReleasePartitionHistogramWithSens is ReleasePartitionHistogram with the
// policy sensitivity already computed by the caller — for callers that need
// the sensitivity anyway (e.g. to decide whether the release is free) and
// must not pay the graph scan twice.
func ReleasePartitionHistogramWithSens(ds *domain.Dataset, part domain.Partition, sens, eps float64, src *noise.Source) ([]float64, error) {
	truth, err := ds.PartitionHistogram(part)
	if err != nil {
		return nil, err
	}
	if sens == 0 {
		// No secret pair crosses blocks: the release is exact and free, so
		// any epsilon (including 0) is acceptable and no noise is drawn.
		return truth, nil
	}
	m, err := NewLaplace(eps, sens, src)
	if err != nil {
		return nil, err
	}
	return m.Release(truth), nil
}

// MSE returns the mean squared error between a true and a released vector
// (Definition 2.4 averaged over coordinates).
func MSE(truth, released []float64) float64 {
	if len(truth) != len(released) {
		panic(fmt.Sprintf("mechanism: MSE dimension mismatch %d vs %d", len(truth), len(released)))
	}
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		d := truth[i] - released[i]
		sum += d * d
	}
	return sum / float64(len(truth))
}

// TotalSquaredError returns the summed squared error E_M(D) of Definition
// 2.4 (no averaging).
func TotalSquaredError(truth, released []float64) float64 {
	return MSE(truth, released) * float64(len(truth))
}

// MeanAbsoluteError returns the mean L1 error per coordinate.
func MeanAbsoluteError(truth, released []float64) float64 {
	if len(truth) != len(released) {
		panic(fmt.Sprintf("mechanism: MAE dimension mismatch %d vs %d", len(truth), len(released)))
	}
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		sum += math.Abs(truth[i] - released[i])
	}
	return sum / float64(len(truth))
}
