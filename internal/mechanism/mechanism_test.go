package mechanism

import (
	"math"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

func TestNewLaplaceValidation(t *testing.T) {
	src := noise.NewSource(1)
	cases := []struct {
		name string
		eps  float64
		sens float64
		src  *noise.Source
	}{
		{"zero eps", 0, 1, src},
		{"negative eps", -1, 1, src},
		{"nan eps", math.NaN(), 1, src},
		{"inf eps", math.Inf(1), 1, src},
		{"negative sens", 1, -2, src},
		{"nan sens", 1, math.NaN(), src},
		{"nil source", 1, 1, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewLaplace(c.eps, c.sens, c.src); err == nil {
				t.Fatal("invalid mechanism accepted")
			}
		})
	}
	m, err := NewLaplace(0.5, 2, src)
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	if m.Scale() != 4 {
		t.Fatalf("Scale = %v, want 4", m.Scale())
	}
	if m.Epsilon() != 0.5 || m.Sensitivity() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestLaplaceZeroSensitivityIsExact(t *testing.T) {
	m, err := NewLaplace(1, 0, noise.NewSource(2))
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	truth := []float64{1, 2, 3}
	got := m.Release(truth)
	for i := range truth {
		if got[i] != truth[i] {
			t.Fatalf("zero-sensitivity release perturbed: %v", got)
		}
	}
}

func TestLaplaceReleaseDoesNotMutateInput(t *testing.T) {
	m, err := NewLaplace(1, 1, noise.NewSource(3))
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	truth := []float64{5, 5}
	_ = m.Release(truth)
	if truth[0] != 5 || truth[1] != 5 {
		t.Fatal("Release mutated its input")
	}
}

func TestLaplaceEmpiricalMSE(t *testing.T) {
	const (
		eps  = 0.5
		sens = 2.0
		dims = 8
		reps = 20000
	)
	m, err := NewLaplace(eps, sens, noise.NewSource(7))
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	truth := make([]float64, dims)
	var total float64
	for r := 0; r < reps; r++ {
		rel := m.Release(truth)
		total += TotalSquaredError(truth, rel)
	}
	got := total / reps
	want := m.ExpectedMSE(dims) // 8 · 2·(4)² = 256
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical total squared error = %v, want ~%v", got, want)
	}
	if want != 256 {
		t.Fatalf("ExpectedMSE = %v, want 256", want)
	}
}

func TestGeometricRelease(t *testing.T) {
	m, err := NewGeometric(0.5, 2, noise.NewSource(9))
	if err != nil {
		t.Fatalf("NewGeometric: %v", err)
	}
	truth := []int64{10, 20, 30}
	got := m.Release(truth)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	changed := false
	for i := range got {
		if got[i] != truth[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("geometric release added no noise at eps=0.5 (astronomically unlikely)")
	}
	if _, err := NewGeometric(-1, 1, noise.NewSource(1)); err == nil {
		t.Error("invalid epsilon accepted")
	}
	if _, err := NewGeometric(1, 1, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestReleaseHistogram(t *testing.T) {
	d := domain.MustLine("v", 6)
	ds := domain.NewDataset(d)
	for _, v := range []int{0, 0, 3, 5} {
		ds.MustAdd(domain.Point(v))
	}
	p := policy.Differential(d)
	rel, err := ReleaseHistogram(p, ds, 1.0, noise.NewSource(11))
	if err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	if len(rel) != 6 {
		t.Fatalf("len = %d, want 6", len(rel))
	}
	truth, err := ds.Histogram()
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if MSE(truth, rel) == 0 {
		t.Error("DP histogram release added no noise")
	}
	// Identity-partition policy: sensitivity 0 ⇒ exact release.
	ident, err := domain.Identity(d)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	exactP := policy.New(secgraph.NewPartition(ident))
	rel, err = ReleaseHistogram(exactP, ds, 1.0, noise.NewSource(12))
	if err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	if MSE(truth, rel) != 0 {
		t.Error("zero-sensitivity histogram release was noisy")
	}
}

func TestReleasePartitionHistogram(t *testing.T) {
	d := domain.MustLine("v", 8)
	ds := domain.NewDataset(d)
	for v := 0; v < 8; v++ {
		ds.MustAdd(domain.Point(v))
	}
	fine, err := domain.NewUniformGrid(d, []int{2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	coarse, err := domain.NewUniformGrid(d, []int{4})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// Policy partitioned by fine: the coarse histogram is exact.
	p := policy.New(secgraph.NewPartition(fine))
	rel, err := ReleasePartitionHistogram(p, ds, coarse, 1.0, noise.NewSource(13))
	if err != nil {
		t.Fatalf("ReleasePartitionHistogram: %v", err)
	}
	truth, err := ds.PartitionHistogram(coarse)
	if err != nil {
		t.Fatalf("PartitionHistogram: %v", err)
	}
	if MSE(truth, rel) != 0 {
		t.Error("refined-partition release was noisy")
	}
	// Differential privacy: noisy.
	rel, err = ReleasePartitionHistogram(policy.Differential(d), ds, coarse, 1.0, noise.NewSource(14))
	if err != nil {
		t.Fatalf("ReleasePartitionHistogram: %v", err)
	}
	if MSE(truth, rel) == 0 {
		t.Error("DP partition release added no noise")
	}
}

func TestErrorMetrics(t *testing.T) {
	truth := []float64{1, 2, 3}
	rel := []float64{2, 2, 5}
	if got, want := MSE(truth, rel), (1.0+0+4)/3; got != want {
		t.Fatalf("MSE = %v, want %v", got, want)
	}
	if got, want := TotalSquaredError(truth, rel), 5.0; got != want {
		t.Fatalf("TotalSquaredError = %v, want %v", got, want)
	}
	if got, want := MeanAbsoluteError(truth, rel), (1.0+0+2)/3; got != want {
		t.Fatalf("MeanAbsoluteError = %v, want %v", got, want)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty MSE not 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MSE dimension mismatch did not panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

// Statistical privacy smoke test: for the histogram query on neighboring
// datasets, the probability of landing in a fixed output region differs by
// at most e^ε (with sampling slack). This exercises the full release path.
func TestLaplaceReleaseIndistinguishability(t *testing.T) {
	const (
		eps  = 1.0
		reps = 200000
	)
	d := domain.MustLine("v", 3)
	ds1 := domain.NewDataset(d)
	ds1.MustAdd(0)
	ds2 := domain.NewDataset(d)
	ds2.MustAdd(1) // neighbor: one tuple changed 0 -> 1
	p := policy.Differential(d)
	src := noise.NewSource(17)
	// Region: released count of value 0 exceeds 0.5.
	count1, count2 := 0, 0
	for r := 0; r < reps; r++ {
		rel1, err := ReleaseHistogram(p, ds1, eps, src)
		if err != nil {
			t.Fatalf("ReleaseHistogram: %v", err)
		}
		if rel1[0] > 0.5 {
			count1++
		}
		rel2, err := ReleaseHistogram(p, ds2, eps, src)
		if err != nil {
			t.Fatalf("ReleaseHistogram: %v", err)
		}
		if rel2[0] > 0.5 {
			count2++
		}
	}
	p1 := float64(count1) / reps
	p2 := float64(count2) / reps
	ratio := p1 / p2
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > math.Exp(eps)*1.1 {
		t.Fatalf("probability ratio %v exceeds e^ε = %v", ratio, math.Exp(eps))
	}
}

func TestReleaseScalar(t *testing.T) {
	m, err := NewLaplace(1, 2, noise.NewSource(31))
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	const reps = 20000
	var sum float64
	for i := 0; i < reps; i++ {
		sum += m.ReleaseScalar(10)
	}
	if mean := sum / reps; math.Abs(mean-10) > 0.1 {
		t.Fatalf("ReleaseScalar mean = %v, want ~10", mean)
	}
	// Zero sensitivity: exact.
	exact, err := NewLaplace(1, 0, noise.NewSource(1))
	if err != nil {
		t.Fatalf("NewLaplace: %v", err)
	}
	if got := exact.ReleaseScalar(7); got != 7 {
		t.Fatalf("zero-sensitivity scalar = %v", got)
	}
}

func TestReleaseHistogramErrors(t *testing.T) {
	d := domain.MustLine("v", 4)
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	// Constrained policy routed to the wrong helper errors cleanly.
	type fakeConstraint struct{ policy.ConstraintSet }
	p := policy.NewConstrained(secgraph.NewComplete(d), fakeConstraint{})
	if _, err := ReleaseHistogram(p, ds, 1, noise.NewSource(1)); err == nil {
		t.Error("constrained policy accepted by unconstrained release")
	}
	// Invalid epsilon propagates.
	if _, err := ReleaseHistogram(policy.Differential(d), ds, -1, noise.NewSource(1)); err == nil {
		t.Error("negative epsilon accepted")
	}
	// Partition release with foreign partition errors.
	other, err := domain.NewUniformGrid(domain.MustLine("w", 6), []int{2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if _, err := ReleasePartitionHistogram(policy.Differential(d), ds, other, 1, noise.NewSource(1)); err == nil {
		t.Error("foreign partition accepted")
	}
}
