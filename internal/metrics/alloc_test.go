//go:build !race

package metrics

import (
	"testing"
	"time"
)

// The ISSUE pins instrumentation primitives at zero allocations per
// operation: they sit inside release and ingest hot paths whose own
// alloc budgets (engine_alloc_test.go) leave no headroom for telemetry.
// AllocsPerRun is meaningless under -race, hence the build tag — the
// same convention as the engine pins.

func TestCounterIncAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blowfish_pin_total", "")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %v/op, pinned at 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(3) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %v/op, pinned at 0", allocs)
	}
}

func TestGaugeAllocFree(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("blowfish_pin_depth", "")
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(9); g.Add(-1) }); allocs != 0 {
		t.Fatalf("Gauge mutation allocates %v/op, pinned at 0", allocs)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("blowfish_pin_seconds", "", nil)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, pinned at 0", allocs)
	}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); allocs != 0 {
		t.Fatalf("Histogram.ObserveSince allocates %v/op, pinned at 0", allocs)
	}
}

// A resolved vec child is indistinguishable from an unlabeled metric on
// the hot path: the map lookup happened once, at wiring time.
func TestResolvedVecChildAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("blowfish_pin_vec_total", "", "route").With("/v1/x")
	h := r.HistogramVec("blowfish_pin_vec_seconds", "", nil, "kind").With("range")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(); h.Observe(0.001) }); allocs != 0 {
		t.Fatalf("resolved vec children allocate %v/op, pinned at 0", allocs)
	}
}
