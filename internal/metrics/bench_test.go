package metrics

import (
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("blowfish_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("blowfish_benchp_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("blowfish_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("blowfish_benchs_seconds", "", nil)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkVecWith(b *testing.B) {
	cv := NewRegistry().CounterVec("blowfish_bench_vec_total", "", "route", "status")
	cv.With("/v1/datasets/{id}/events", "200")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.With("/v1/datasets/{id}/events", "200").Inc()
	}
}

func BenchmarkExpose(b *testing.B) {
	r := NewRegistry()
	hv := r.HistogramVec("blowfish_bench_lat_seconds", "latency", nil, "kind")
	for _, k := range []string{"histogram", "cumulative", "range", "kmeans"} {
		h := hv.With(k)
		for i := 0; i < 100; i++ {
			h.Observe(float64(i) * 1e-4)
		}
	}
	cv := r.CounterVec("blowfish_bench_req_total", "requests", "route", "status")
	for _, route := range []string{"/a", "/b", "/c"} {
		cv.With(route, "200").Add(10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Expose()
	}
}
