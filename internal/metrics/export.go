package metrics

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// textContentType is the Prometheus text exposition content type.
const textContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format. Output is deterministic: families
// sort by name, children by label key, collector samples by
// registration then emission order — so tests can assert on substrings
// and diffs between scrapes are meaningful.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", textContentType)
		var b strings.Builder
		r.writeText(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// Expose renders the full exposition as a string (test/debug helper;
// the HTTP path uses Handler).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.writeText(&b)
	return b.String()
}

func (r *Registry) writeText(b *strings.Builder) {
	for _, f := range r.sortedFamilies() {
		writeHeader(b, f.name, f.help, f.kind)
		switch {
		case f.counter != nil:
			writeSample(b, f.name, nil, float64(f.counter.Value()))
		case f.gauge != nil:
			writeSample(b, f.name, nil, float64(f.gauge.Value()))
		case f.hist != nil:
			writeHistogram(b, f.name, nil, f.hist)
		case f.counterVec != nil:
			for _, c := range f.counterVec.v.children() {
				writeSample(b, f.name, c.labels, float64(c.m.Value()))
			}
		case f.gaugeVec != nil:
			for _, c := range f.gaugeVec.v.children() {
				writeSample(b, f.name, c.labels, float64(c.m.Value()))
			}
		case f.histVec != nil:
			for _, c := range f.histVec.v.children() {
				writeHistogram(b, f.name, c.labels, c.m)
			}
		}
	}
	r.writeCollected(b)
}

// writeCollected runs the collectors and renders their samples grouped
// by family name, emitting each family's HELP/TYPE header once. Within
// a name, samples keep emission order (collectors emit related series
// together); families are sorted by name for determinism.
func (r *Registry) writeCollected(b *strings.Builder) {
	type fam struct {
		help    string
		kind    Kind
		samples []Sample
	}
	byName := make(map[string]*fam)
	var names []string
	for _, c := range r.snapshotCollectors() {
		c(func(s Sample) {
			f, ok := byName[s.Name]
			if !ok {
				f = &fam{help: s.Help, kind: s.Kind}
				byName[s.Name] = f
				names = append(names, s.Name)
			}
			f.samples = append(f.samples, s)
		})
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		writeHeader(b, name, f.help, f.kind)
		for _, s := range f.samples {
			writeSample(b, name, s.Labels, s.Value)
		}
	}
}

func writeHeader(b *strings.Builder, name, help string, kind Kind) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(kind.String())
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	cum, sum, count := h.snapshot()
	for i, c := range cum {
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSampleLE(b, name+"_bucket", labels, le, float64(c))
	}
	writeSample(b, name+"_sum", labels, sum)
	writeSample(b, name+"_count", labels, float64(count))
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	writeSampleLE(b, name, labels, "", v)
}

// writeSampleLE renders one sample line; le, when non-empty, is appended
// as the trailing bucket label.
func writeSampleLE(b *strings.Builder, name string, labels []Label, le string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders values the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
