package metrics

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// textContentType is the Prometheus text exposition content type.
const textContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format. Output is deterministic: families
// sort by name, children by label key, collector samples by
// registration then emission order — so tests can assert on substrings
// and diffs between scrapes are meaningful.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", textContentType)
		var b strings.Builder
		r.writeText(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// MergedHandler serves several registries as one exposition, in argument
// order. A family registered in more than one registry (every shard of a
// sharded server builds the same families) gets its HELP/TYPE header from
// the first registry that renders it; later registries contribute samples
// only, which their const labels keep distinct. With a single registry it
// renders exactly what that registry's own Handler would.
func MergedHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", textContentType)
		var b strings.Builder
		seen := make(map[string]bool)
		for _, r := range regs {
			r.writeTextSeen(&b, seen)
		}
		_, _ = w.Write([]byte(b.String()))
	})
}

// Expose renders the full exposition as a string (test/debug helper;
// the HTTP path uses Handler).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.writeText(&b)
	return b.String()
}

func (r *Registry) writeText(b *strings.Builder) {
	r.writeTextSeen(b, nil)
}

// writeTextSeen renders the registry; seen, when non-nil, records family
// names whose HELP/TYPE headers were already written (the merged
// exposition path) so they render once across registries.
func (r *Registry) writeTextSeen(b *strings.Builder, seen map[string]bool) {
	cl := r.snapshotConstLabels()
	for _, f := range r.sortedFamilies() {
		writeHeader(b, f.name, f.help, f.kind, seen)
		switch {
		case f.counter != nil:
			writeSample(b, f.name, cl, float64(f.counter.Value()))
		case f.gauge != nil:
			writeSample(b, f.name, cl, float64(f.gauge.Value()))
		case f.hist != nil:
			writeHistogram(b, f.name, cl, f.hist)
		case f.counterVec != nil:
			for _, c := range f.counterVec.v.children() {
				writeSample(b, f.name, withConst(cl, c.labels), float64(c.m.Value()))
			}
		case f.gaugeVec != nil:
			for _, c := range f.gaugeVec.v.children() {
				writeSample(b, f.name, withConst(cl, c.labels), float64(c.m.Value()))
			}
		case f.histVec != nil:
			for _, c := range f.histVec.v.children() {
				writeHistogram(b, f.name, withConst(cl, c.labels), c.m)
			}
		}
	}
	r.writeCollected(b, cl, seen)
}

// writeCollected runs the collectors and renders their samples grouped
// by family name, emitting each family's HELP/TYPE header once. Within
// a name, samples keep emission order (collectors emit related series
// together); families are sorted by name for determinism.
func (r *Registry) writeCollected(b *strings.Builder, cl []Label, seen map[string]bool) {
	type fam struct {
		help    string
		kind    Kind
		samples []Sample
	}
	byName := make(map[string]*fam)
	var names []string
	for _, c := range r.snapshotCollectors() {
		c(func(s Sample) {
			f, ok := byName[s.Name]
			if !ok {
				f = &fam{help: s.Help, kind: s.Kind}
				byName[s.Name] = f
				names = append(names, s.Name)
			}
			f.samples = append(f.samples, s)
		})
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		writeHeader(b, name, f.help, f.kind, seen)
		for _, s := range f.samples {
			writeSample(b, name, withConst(cl, s.Labels), s.Value)
		}
	}
}

// withConst prepends the registry's const labels to a sample's own. With
// no const labels it returns the sample's labels untouched (no copy).
func withConst(cl, labels []Label) []Label {
	if len(cl) == 0 {
		return labels
	}
	out := make([]Label, 0, len(cl)+len(labels))
	out = append(out, cl...)
	return append(out, labels...)
}

func writeHeader(b *strings.Builder, name, help string, kind Kind, seen map[string]bool) {
	if seen != nil {
		if seen[name] {
			return
		}
		seen[name] = true
	}
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(kind.String())
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	cum, sum, count := h.snapshot()
	for i, c := range cum {
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSampleLE(b, name+"_bucket", labels, le, float64(c))
	}
	writeSample(b, name+"_sum", labels, sum)
	writeSample(b, name+"_count", labels, float64(count))
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	writeSampleLE(b, name, labels, "", v)
}

// writeSampleLE renders one sample line; le, when non-empty, is appended
// as the trailing bucket label.
func writeSampleLE(b *strings.Builder, name string, labels []Label, le string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders values the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
