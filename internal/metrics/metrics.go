// Package metrics is the zero-dependency observability core of the
// Blowfish server: atomic counters, gauges and fixed-bucket histograms
// collected into a Registry that renders the Prometheus text exposition
// format (version 0.0.4) on GET /metrics.
//
// The package exists because instrumentation sits inside the release and
// ingest hot paths, where the engine's allocation budget is pinned to a
// handful of allocations per release (engine_alloc_test.go). Every
// mutation method here — Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe — is a few atomic operations and zero allocations,
// verified by alloc_test.go. Label resolution (the only allocating step)
// happens once at registration time: callers resolve a Vec's child with
// With and cache the returned pointer next to the code path it counts, so
// a request never touches a map.
//
// Expensive or high-cardinality series (per-session budget gauges, queue
// depths, epoch lag) are not maintained in the hot path at all: they are
// computed at scrape time by collector functions registered with
// RegisterCollector, which read the server's registries under their own
// locks and emit samples directly into the exposition.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is NOT
// usable on its own — obtain counters from a Registry so they render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 value (queue depths, live-object counts).
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary cumulative histogram in the Prometheus
// sense: counts per upper bound, plus a running sum and total count.
// Observe is lock-free — one bucket scan plus three atomic updates — and
// allocation-free, so it can sit inside the engine's release path without
// disturbing the alloc pins.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// DefLatencyBuckets spans 50µs to 10s exponentially — wide enough for
// both an in-memory histogram release (~tens of µs) and an
// fsync-per-append WAL batch (~ms) on one scale.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency instrumentation: start := time.Now(); defer h.ObserveSince(start).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// snapshot copies the cumulative bucket counts (le ordering, +Inf last),
// the sum and the count, for the exporter.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.sum.load(), h.count.Load()
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the owning bucket, the standard Prometheus histogram_quantile
// estimate. Diagnostic quality only; the stress harness records exact
// sample percentiles instead.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, count := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	rank := q * float64(count)
	lower := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			if math.IsInf(upper, 1) {
				return lower
			}
			var below uint64
			if i > 0 {
				below = cum[i-1]
			}
			in := float64(c - below)
			if in == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(below))/in
		}
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// atomicFloat is a float64 accumulated with a compare-and-swap loop over
// its bit pattern — the standard lock-free float add.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Label is one name/value pair of a sample emitted by a collector.
type Label struct {
	Name  string
	Value string
}

// labeled pairs a rendered label-set key with a metric child inside a Vec.
type labeled[M any] struct {
	labels []Label
	m      *M
}

// vec is the shared child registry behind CounterVec, GaugeVec and
// HistogramVec: children keyed by the rendered label values, created on
// first With. With allocates (key construction, map insert) — resolve
// children once and cache the pointer; never call With per operation on a
// hot path.
type vec[M any] struct {
	mu     sync.RWMutex
	names  []string
	byKey  map[string]*labeled[M]
	mk     func() *M
	sealed func() // invalidates the registry's sorted cache
}

func (v *vec[M]) with(values ...string) *M {
	if len(values) != len(v.names) {
		panic("metrics: label value count does not match the vec's label names")
	}
	key := joinKey(values)
	v.mu.RLock()
	c, ok := v.byKey[key]
	v.mu.RUnlock()
	if ok {
		return c.m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.byKey[key]; ok {
		return c.m
	}
	labels := make([]Label, len(values))
	for i, val := range values {
		labels[i] = Label{Name: v.names[i], Value: val}
	}
	c = &labeled[M]{labels: labels, m: v.mk()}
	v.byKey[key] = c
	if v.sealed != nil {
		v.sealed()
	}
	return c.m
}

// children returns the label/metric pairs sorted by key, for the exporter.
func (v *vec[M]) children() []*labeled[M] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.byKey))
	for k := range v.byKey {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]*labeled[M], len(keys))
	for i, k := range keys {
		out[i] = v.byKey[k]
	}
	return out
}

// joinKey renders label values into one map key. 0x1f (unit separator)
// cannot collide with realistic label values (resource ids, route
// patterns, status codes).
func joinKey(values []string) string {
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ v vec[Counter] }

// With resolves (creating on first use) the child for the label values,
// in the order the label names were declared. Cache the result; With
// allocates.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ v vec[Gauge] }

// With resolves the child gauge for the label values. Cache the result.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values...) }

// HistogramVec is a histogram family partitioned by labels; every child
// shares the family's bucket boundaries.
type HistogramVec struct{ v vec[Histogram] }

// With resolves the child histogram for the label values. Cache the result.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values...) }
