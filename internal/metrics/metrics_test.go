package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blowfish_test_total", "a counter")
	g := r.Gauge("blowfish_test_depth", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("blowfish_test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	cum, _, _ := h.snapshot()
	// le=0.1 is inclusive: 0.05 and 0.1 land in the first bucket.
	want := []uint64{2, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("blowfish_test_q_seconds", "latency", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // uniform over buckets 1..4
	}
	if q := h.Quantile(0.5); q < 1.5 || q > 2.5 {
		t.Fatalf("p50 = %g, want ~2", q)
	}
	empty := newHistogram(nil)
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %g, want NaN", q)
	}
}

func TestVecChildrenAndIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("blowfish_test_requests_total", "by route", "route", "status")
	a := cv.With("/v1/x", "200")
	b := cv.With("/v1/x", "200")
	if a != b {
		t.Fatal("With returned distinct children for identical label values")
	}
	cv.With("/v1/y", "429").Add(2)
	a.Inc()
	out := r.Expose()
	for _, want := range []string{
		`blowfish_test_requests_total{route="/v1/x",status="200"} 1`,
		`blowfish_test_requests_total{route="/v1/y",status="429"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("blowfish_test_v_total", "v", "a")
	mustPanic(t, "wrong label count", func() { cv.With("x", "y") })
	mustPanic(t, "duplicate registration", func() { r.Counter("blowfish_test_v_total", "dup") })
	mustPanic(t, "invalid name", func() { r.Counter("1bad", "") })
	mustPanic(t, "no labels", func() { r.CounterVec("blowfish_test_nolabel", "") })
	mustPanic(t, "repeated label", func() { r.CounterVec("blowfish_test_rep", "", "a", "a") })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blowfish_b_total", "second family")
	r.Gauge("blowfish_a_depth", "first family").Set(3)
	h := r.Histogram("blowfish_c_seconds", "hist", []float64{0.5, 5})
	c.Add(2)
	h.Observe(0.25)
	h.Observe(7)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != textContentType {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	out := string(buf[:n])

	want := strings.Join([]string{
		"# HELP blowfish_a_depth first family",
		"# TYPE blowfish_a_depth gauge",
		"blowfish_a_depth 3",
		"# HELP blowfish_b_total second family",
		"# TYPE blowfish_b_total counter",
		"blowfish_b_total 2",
		"# HELP blowfish_c_seconds hist",
		"# TYPE blowfish_c_seconds histogram",
		`blowfish_c_seconds_bucket{le="0.5"} 1`,
		`blowfish_c_seconds_bucket{le="5"} 1`,
		`blowfish_c_seconds_bucket{le="+Inf"} 2`,
		"blowfish_c_seconds_sum 7.25",
		"blowfish_c_seconds_count 2",
		"",
	}, "\n")
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{
			Name: "blowfish_session_budget_spent", Help: "spent", Kind: KindGauge,
			Labels: []Label{{Name: "session", Value: "s1"}}, Value: 0.25,
		})
		emit(Sample{
			Name: "blowfish_session_budget_spent", Kind: KindGauge,
			Labels: []Label{{Name: "session", Value: "s2"}}, Value: 0.5,
		})
	})
	out := r.Expose()
	for _, want := range []string{
		"# TYPE blowfish_session_budget_spent gauge",
		`blowfish_session_budget_spent{session="s1"} 0.25`,
		`blowfish_session_budget_spent{session="s2"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE blowfish_session_budget_spent") != 1 {
		t.Fatalf("collector family header emitted more than once:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("blowfish_esc_total", "", "v").With("a\"b\\c\nd").Inc()
	out := r.Expose()
	if !strings.Contains(out, `blowfish_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("blowfish_since_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("ObserveSince recorded count=%d sum=%g", h.Count(), h.Sum())
	}
}

// TestConcurrentMutation hammers every primitive from many goroutines;
// run under -race this is the data-race proof, and the totals prove no
// lost updates.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blowfish_cc_total", "")
	g := r.Gauge("blowfish_cc_depth", "")
	h := r.Histogram("blowfish_cc_seconds", "", nil)
	cv := r.CounterVec("blowfish_cc_vec_total", "", "w")

	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("shared")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				child.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes must not race with mutation
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Expose()
			}
		}
	}()
	wg.Wait()
	close(done)

	const want = workers * per
	if c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("gauge = %d, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
	if got, wantSum := h.Sum(), 0.001*want; math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
	if cv.With("shared").Value() != want {
		t.Fatalf("vec child = %d, want %d", cv.With("shared").Value(), want)
	}
}
