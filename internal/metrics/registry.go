package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Kind distinguishes the exposition TYPE of a family.
type Kind int

// Family kinds, matching the Prometheus text-format TYPE keywords.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindUntyped
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one named metric family: either a single unlabeled metric, a
// vec of labeled children, or (for collector-backed families) nothing but
// a name and help — samples arrive at scrape time.
type family struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// Sample is one exposition line emitted by a Collector at scrape time:
// family metadata plus a value under an optional label set. Histogram
// collectors are not supported — maintain real Histograms instead.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	Value  float64
}

// Collector produces samples on demand, at scrape time. Collectors are
// how derived, high-churn series (per-session budget gauges, queue
// depth, epoch lag) stay off the hot path entirely: the producing
// subsystem is read under its own locks only when /metrics is scraped.
// Emit may be called concurrently with the subsystem's normal operation;
// the collector must do its own locking.
type Collector func(emit func(Sample))

// Registry owns a namespace of metric families and renders them in the
// Prometheus text exposition format. It is not global: each Server
// builds its own Registry so tests and multi-server processes never
// share state. All methods are safe for concurrent use.
//
// Registration panics on a name collision or malformed name — metric
// registration happens at construction time, so a collision is a
// programming error on par with a duplicate flag name.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	order      []string // sorted family names, rebuilt when dirty
	dirty      bool
	collectors []Collector
	// constLabels are prepended to every sample (registered families and
	// collector output alike) at scrape time. A sharded deployment stamps
	// each shard's registry with shard="<i>" so the merged exposition keeps
	// per-shard series distinct; an empty set renders nothing, keeping the
	// single-registry exposition byte-identical.
	constLabels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", f.name))
	}
	r.families[f.name] = f
	r.dirty = true
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers and returns a new unlabeled histogram. A nil or
// empty bounds slice selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// CounterVec registers a counter family partitioned by labelNames.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	checkLabelNames(name, labelNames)
	cv := &CounterVec{}
	cv.v.names = append([]string(nil), labelNames...)
	cv.v.byKey = make(map[string]*labeled[Counter])
	cv.v.mk = func() *Counter { return &Counter{} }
	r.register(&family{name: name, help: help, kind: KindCounter, counterVec: cv})
	return cv
}

// GaugeVec registers a gauge family partitioned by labelNames.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	checkLabelNames(name, labelNames)
	gv := &GaugeVec{}
	gv.v.names = append([]string(nil), labelNames...)
	gv.v.byKey = make(map[string]*labeled[Gauge])
	gv.v.mk = func() *Gauge { return &Gauge{} }
	r.register(&family{name: name, help: help, kind: KindGauge, gaugeVec: gv})
	return gv
}

// HistogramVec registers a histogram family partitioned by labelNames.
// A nil or empty bounds slice selects DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	checkLabelNames(name, labelNames)
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	hv := &HistogramVec{}
	hv.v.names = append([]string(nil), labelNames...)
	hv.v.byKey = make(map[string]*labeled[Histogram])
	hv.v.mk = func() *Histogram { return newHistogram(b) }
	r.register(&family{name: name, help: help, kind: KindHistogram, histVec: hv})
	return hv
}

// SetConstLabels fixes labels onto every sample this registry renders,
// ahead of the sample's own labels. Call once at construction, before the
// first scrape; label names must be valid and must not collide with any
// family's own label names (the renderer does not dedupe).
func (r *Registry) SetConstLabels(ls ...Label) {
	for _, l := range ls {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid const label name %q", l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.constLabels = append([]Label(nil), ls...)
}

func (r *Registry) snapshotConstLabels() []Label {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.constLabels
}

// RegisterCollector adds a scrape-time sample producer. Collectors run
// in registration order on every scrape, after the registered families.
// Sample names from collectors are NOT checked against registered
// families — a collector owns its names; keep them disjoint.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// sortedFamilies returns the families in name order, rebuilding the
// cached order only after a registration.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		r.order = r.order[:0]
		for name := range r.families {
			r.order = append(r.order, name)
		}
		sort.Strings(r.order)
		r.dirty = false
	}
	out := make([]*family, len(r.order))
	for i, name := range r.order {
		out[i] = r.families[name]
	}
	return out
}

func (r *Registry) snapshotCollectors() []Collector {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Collector(nil), r.collectors...)
}

func checkLabelNames(metric string, names []string) {
	if len(names) == 0 {
		panic(fmt.Sprintf("metrics: vec %q declared with no label names", metric))
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if !validName(n) {
			panic(fmt.Sprintf("metrics: vec %q has invalid label name %q", metric, n))
		}
		if seen[n] {
			panic(fmt.Sprintf("metrics: vec %q repeats label name %q", metric, n))
		}
		seen[n] = true
	}
}

// validName enforces the Prometheus metric/label name charset
// [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for recording rules).
func validName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortStrings is a tiny indirection so metrics.go needs no sort import
// of its own.
func sortStrings(s []string) { sort.Strings(s) }
