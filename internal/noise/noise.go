// Package noise provides the random noise primitives that Blowfish and
// differential privacy mechanisms are calibrated with: Laplace, two-sided
// geometric, and Gaussian samplers over deterministically seeded streams.
//
// All experiment code seeds Sources explicitly so every figure regenerates
// identically run-to-run; Split derives independent named substreams so
// adding a mechanism to an experiment never perturbs the draws of another.
//
// Sources are backed by a PCG generator whose full state marshals to a few
// bytes (MarshalBinary / UnmarshalBinary), so a durable server can
// checkpoint the exact position of every noise stream and resume it after a
// crash — a restored stream continues bit-for-bit where the pre-crash
// stream left off.
package noise

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// pcgStream is the fixed PCG stream-selector constant every Source uses;
// seeds alone distinguish streams (Split mixes the label into the seed).
const pcgStream = 0x9e3779b97f4a7c15

// Source is a deterministic stream of random variates. It is not safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	pcg *rand.PCG
	rng *rand.Rand
}

// NewSource creates a Source seeded with the given value.
func NewSource(seed int64) *Source {
	pcg := rand.NewPCG(uint64(seed), pcgStream)
	return &Source{pcg: pcg, rng: rand.New(pcg)}
}

// MarshalBinary captures the full generator state: a Source restored with
// UnmarshalBinary continues the exact same variate stream. It implements
// encoding.BinaryMarshaler.
func (s *Source) MarshalBinary() ([]byte, error) {
	return s.pcg.MarshalBinary()
}

// UnmarshalBinary restores generator state captured by MarshalBinary. It
// implements encoding.BinaryUnmarshaler.
func (s *Source) UnmarshalBinary(data []byte) error {
	if s.pcg == nil {
		s.pcg = rand.NewPCG(0, pcgStream)
		s.rng = rand.New(s.pcg)
	}
	return s.pcg.UnmarshalBinary(data)
}

// Split derives an independently seeded Source labeled by name. Splitting
// the same parent seed with the same label always yields the same stream.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	// Mix in a draw from the parent so repeated Split calls with the same
	// label yield distinct streams.
	fmt.Fprintf(h, "%s|%d", label, s.rng.Int64())
	return NewSource(int64(h.Sum64()))
}

// Uniform returns a variate uniform on [0, 1).
func (s *Source) Uniform() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand.
func (s *Source) Intn(n int) int { return s.rng.IntN(n) }

// Int63n returns a uniform int64 in [0, n).
func (s *Source) Int63n(n int64) int64 { return s.rng.Int64N(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Laplace returns a variate from the Laplace distribution with mean 0 and
// the given scale b (density ∝ exp(-|x|/b), variance 2b²). The Laplace
// mechanism of Definition 2.3 and Theorem 5.1 draws noise with
// b = sensitivity/ε. A scale of 0 returns exactly 0 (the noiseless release
// that Blowfish permits when a policy drives sensitivity to zero); negative
// scales panic.
func (s *Source) Laplace(scale float64) float64 {
	if scale < 0 || math.IsNaN(scale) {
		panic(fmt.Sprintf("noise: invalid Laplace scale %v", scale))
	}
	if scale == 0 {
		return 0
	}
	u := s.rng.Float64()
	for u == 0 { // open the interval at 0 to keep log finite
		u = s.rng.Float64()
	}
	if u < 0.5 {
		return scale * math.Log(2*u)
	}
	return -scale * math.Log(2*(1-u))
}

// LaplaceVec fills dst with independent Laplace(scale) variates and returns
// it; it allocates when dst is nil.
func (s *Source) LaplaceVec(dst []float64, scale float64) []float64 {
	for i := range dst {
		dst[i] = s.Laplace(scale)
	}
	return dst
}

// TwoSidedGeometric returns an integer variate Z with
// P[Z = z] = (1-α)/(1+α) · α^|z| for α = exp(-1/scale), the discrete
// analogue of Laplace(scale). It is exact (difference of two geometric
// variates) and is the noise behind the geometric mechanism. A scale of 0
// returns 0.
func (s *Source) TwoSidedGeometric(scale float64) int64 {
	if scale < 0 || math.IsNaN(scale) {
		panic(fmt.Sprintf("noise: invalid geometric scale %v", scale))
	}
	if scale == 0 {
		return 0
	}
	alpha := math.Exp(-1 / scale)
	return s.geometric(alpha) - s.geometric(alpha)
}

// geometric samples G on {0,1,2,...} with P[G=k] = (1-α)α^k via inversion.
func (s *Source) geometric(alpha float64) int64 {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	// P[G >= k] = α^k, so G = floor(log(u)/log(α)).
	return int64(math.Floor(math.Log(u) / math.Log(alpha)))
}

// Gaussian returns a variate from N(0, sigma²).
func (s *Source) Gaussian(sigma float64) float64 {
	if sigma < 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("noise: invalid Gaussian sigma %v", sigma))
	}
	return s.rng.NormFloat64() * sigma
}
