package noise

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Laplace(1.5), b.Laplace(1.5); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
	c := NewSource(8)
	same := true
	a2 := NewSource(7)
	for i := 0; i < 10; i++ {
		if a2.Laplace(1) != c.Laplace(1) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	// Same parent seed + same label => same stream.
	s1 := NewSource(3).Split("kmeans")
	s2 := NewSource(3).Split("kmeans")
	for i := 0; i < 50; i++ {
		if s1.Uniform() != s2.Uniform() {
			t.Fatal("Split not deterministic")
		}
	}
	// Different labels => different streams.
	a := NewSource(3).Split("x")
	b := NewSource(3).Split("y")
	diff := false
	for i := 0; i < 20; i++ {
		if a.Uniform() != b.Uniform() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different labels produced identical streams")
	}
	// Repeated splits with the same label from one parent differ.
	parent := NewSource(3)
	c := parent.Split("z")
	d := parent.Split("z")
	diff = false
	for i := 0; i < 20; i++ {
		if c.Uniform() != d.Uniform() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("sequential same-label splits produced identical streams")
	}
}

func TestLaplaceMoments(t *testing.T) {
	const (
		n     = 200000
		scale = 2.0
	)
	s := NewSource(11)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Laplace(scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * scale * scale // Var = 2b²
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestLaplaceSymmetryAndTails(t *testing.T) {
	s := NewSource(13)
	const n = 100000
	pos := 0
	big := 0
	for i := 0; i < n; i++ {
		x := s.Laplace(1)
		if x > 0 {
			pos++
		}
		if math.Abs(x) > 3 { // P(|X|>3) = e^-3 ≈ 0.0498
			big++
		}
	}
	if frac := float64(pos) / n; frac < 0.48 || frac > 0.52 {
		t.Errorf("positive fraction = %v, want ~0.5", frac)
	}
	if frac := float64(big) / n; frac < 0.04 || frac > 0.06 {
		t.Errorf("tail fraction = %v, want ~0.0498", frac)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 10; i++ {
		if got := s.Laplace(0); got != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", got)
		}
	}
}

func TestLaplaceInvalidScalePanics(t *testing.T) {
	s := NewSource(1)
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Laplace(%v) did not panic", bad)
				}
			}()
			s.Laplace(bad)
		}()
	}
}

func TestLaplaceVec(t *testing.T) {
	s := NewSource(5)
	v := s.LaplaceVec(make([]float64, 16), 1)
	if len(v) != 16 {
		t.Fatalf("len = %d, want 16", len(v))
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("LaplaceVec produced all zeros")
	}
}

func TestTwoSidedGeometricMoments(t *testing.T) {
	const (
		n     = 200000
		scale = 3.0
	)
	s := NewSource(17)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		z := float64(s.TwoSidedGeometric(scale))
		sum += z
		sumSq += z * z
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("geometric mean = %v, want ~0", mean)
	}
	// Var = 2α/(1-α)² for α = e^{-1/scale}.
	alpha := math.Exp(-1 / scale)
	want := 2 * alpha / ((1 - alpha) * (1 - alpha))
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("geometric variance = %v, want ~%v", variance, want)
	}
}

func TestTwoSidedGeometricZeroScale(t *testing.T) {
	s := NewSource(1)
	if got := s.TwoSidedGeometric(0); got != 0 {
		t.Fatalf("TwoSidedGeometric(0) = %v, want 0", got)
	}
}

func TestGaussianMoments(t *testing.T) {
	const (
		n     = 200000
		sigma = 1.7
	)
	s := NewSource(19)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Gaussian(sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	want := sigma * sigma
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Gaussian variance = %v, want ~%v", variance, want)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(23)
	for i := 0; i < 10000; i++ {
		u := s.Uniform()
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
}

// The Laplace mechanism's privacy proof needs the density ratio between
// shifted distributions bounded by exp(shift/scale). Empirically check the
// histogram ratio of two shifted samples stays within the bound (allowing
// sampling slack); this is a sanity check of sampler correctness, not a
// privacy proof.
func TestLaplaceDensityRatio(t *testing.T) {
	const (
		n     = 400000
		scale = 1.0
		shift = 1.0
	)
	s := NewSource(29)
	bins := 21
	lo, hi := -5.0, 5.0
	width := (hi - lo) / float64(bins)
	h0 := make([]float64, bins)
	h1 := make([]float64, bins)
	for i := 0; i < n; i++ {
		x := s.Laplace(scale)
		if x >= lo && x < hi {
			h0[int((x-lo)/width)]++
		}
		y := s.Laplace(scale) + shift
		if y >= lo && y < hi {
			h1[int((y-lo)/width)]++
		}
	}
	bound := math.Exp(shift/scale) * 1.35 // generous sampling slack
	for b := 0; b < bins; b++ {
		if h0[b] < 500 || h1[b] < 500 {
			continue // too few samples for a stable ratio
		}
		ratio := h0[b] / h1[b]
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > bound {
			t.Errorf("bin %d: density ratio %v exceeds bound %v", b, ratio, bound)
		}
	}
}

func TestConvenienceWrappers(t *testing.T) {
	s := NewSource(41)
	for i := 0; i < 100; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := s.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	perm := s.Perm(10)
	seen := make(map[int]bool)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[v] = true
	}
	vals := []int{1, 2, 3, 4, 5}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", vals)
	}
}

func TestGaussianInvalidSigmaPanics(t *testing.T) {
	s := NewSource(1)
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gaussian(%v) did not panic", bad)
				}
			}()
			s.Gaussian(bad)
		}()
	}
	if s.Gaussian(0) != 0 {
		t.Error("Gaussian(0) not exactly 0")
	}
}

func TestTwoSidedGeometricInvalidScalePanics(t *testing.T) {
	s := NewSource(1)
	defer func() {
		if recover() == nil {
			t.Error("TwoSidedGeometric(-1) did not panic")
		}
	}()
	s.TwoSidedGeometric(-1)
}

func TestMarshalBinaryResumesStream(t *testing.T) {
	s := NewSource(42)
	// Advance through a mixed draw history so the marshaled state is not a
	// fresh seed.
	for i := 0; i < 100; i++ {
		s.Laplace(1.5)
		s.Gaussian(2)
		s.TwoSidedGeometric(3)
		s.Intn(10)
	}
	state, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Source
	if err := r.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := s.Laplace(0.7), r.Laplace(0.7); a != b {
			t.Fatalf("draw %d: restored stream diverged: %v vs %v", i, a, b)
		}
		if a, b := s.Gaussian(1), r.Gaussian(1); a != b {
			t.Fatalf("draw %d: restored Gaussian diverged: %v vs %v", i, a, b)
		}
	}
}

func TestUnmarshalBinaryRejectsGarbage(t *testing.T) {
	var r Source
	if err := r.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("UnmarshalBinary accepted garbage")
	}
}
