package ordered

import (
	"blowfish/internal/infer"
)

// InferCumulative post-processes the released structure into a consistent
// cumulative histogram estimate, extending the Section 7.1 constrained
// inference to the hybrid structure:
//
//  1. Hay-style least-squares consistency inside every H-subtree (parents
//     equal children sums; free accuracy from redundant node observations);
//  2. extraction of the full cumulative vector C(0..|T|-1);
//  3. isotonic regression onto the non-decreasing cone, clamped into [0, n]
//     (n is the public cardinality; pass n < 0 to skip the upper clamp).
//
// Post-processing costs no privacy budget. The returned vector answers any
// range query via RangeFromCumulative.
func (r *OHRelease) InferCumulative(n float64) ([]float64, error) {
	// Per-block consistency. Block trees are small (θ wide), so this is
	// O(|T|) overall. Single-node blocks carry no release (their positions
	// are answered by S-node prefixes) and are skipped.
	consistent := make([]*blockView, len(r.blocks))
	for i, rel := range r.blocks {
		if rel == nil {
			continue
		}
		cons, err := rel.Consistent()
		if err != nil {
			return nil, err
		}
		consistent[i] = &blockView{rel: cons}
	}
	out := make([]float64, r.oh.size)
	for j := 0; j < r.oh.size; j++ {
		block := j / r.oh.theta
		offsetHi := j - block*r.oh.theta
		full := offsetHi == r.oh.blocks[block].Size()-1
		if full {
			out[j] = r.sPrefix[block]
			continue
		}
		var base float64
		if block > 0 {
			base = r.sPrefix[block-1]
		}
		inBlock, err := consistent[block].rangeQuery(0, offsetHi)
		if err != nil {
			return nil, err
		}
		out[j] = base + inBlock
	}
	return infer.MonotoneCumulative(out, n), nil
}

// blockView wraps a consistent released block tree.
type blockView struct {
	rel interface {
		RangeQuery(lo, hi int) (float64, float64, error)
	}
}

func (b *blockView) rangeQuery(lo, hi int) (float64, error) {
	v, _, err := b.rel.RangeQuery(lo, hi)
	return v, err
}
