package ordered

import (
	"math"
	"math/rand"
	"testing"

	"blowfish/internal/noise"
)

func TestInferCumulativeInvariants(t *testing.T) {
	const size = 200
	rng := rand.New(rand.NewSource(3))
	counts := make([]float64, size)
	var n float64
	for i := range counts {
		if rng.Float64() < 0.1 { // sparse
			counts[i] = float64(rng.Intn(40))
		}
		n += counts[i]
	}
	for _, theta := range []int{1, 7, 16, 200} {
		o, err := NewOH(size, theta, 4)
		if err != nil {
			t.Fatalf("NewOH(θ=%d): %v", theta, err)
		}
		rel, err := o.Release(counts, 0.5, noise.NewSource(int64(theta)))
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		inf, err := rel.InferCumulative(n)
		if err != nil {
			t.Fatalf("InferCumulative(θ=%d): %v", theta, err)
		}
		if len(inf) != size {
			t.Fatalf("len = %d, want %d", len(inf), size)
		}
		for i := 1; i < size; i++ {
			if inf[i] < inf[i-1] {
				t.Fatalf("θ=%d: inferred cumulative not monotone at %d", theta, i)
			}
		}
		if inf[0] < 0 || inf[size-1] > n {
			t.Fatalf("θ=%d: inferred cumulative out of [0,n]: %v, %v", theta, inf[0], inf[size-1])
		}
	}
}

// Constrained inference must not hurt: over repetitions, range queries
// answered from the inferred cumulative histogram have at most the raw
// greedy error (post-processing optimality on sparse data).
func TestInferCumulativeReducesError(t *testing.T) {
	const (
		size = 512
		eps  = 0.3
		reps = 40
	)
	rng := rand.New(rand.NewSource(11))
	counts := make([]float64, size)
	var n float64
	for i := range counts {
		if rng.Float64() < 0.05 { // very sparse, like capital-loss
			counts[i] = float64(rng.Intn(100))
		}
		n += counts[i]
	}
	cum := make([]float64, size)
	run := 0.0
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	o, err := NewOH(size, 16, 4)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	src := noise.NewSource(13)
	qrng := rand.New(rand.NewSource(17))
	var rawErr, infErr float64
	for r := 0; r < reps; r++ {
		rel, err := o.Release(counts, eps, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		inf, err := rel.InferCumulative(n)
		if err != nil {
			t.Fatalf("InferCumulative: %v", err)
		}
		for q := 0; q < 60; q++ {
			lo := qrng.Intn(size)
			hi := lo + qrng.Intn(size-lo)
			truth := cum[hi]
			if lo > 0 {
				truth -= cum[lo-1]
			}
			raw, err := rel.Range(lo, hi)
			if err != nil {
				t.Fatalf("Range: %v", err)
			}
			infAns, err := RangeFromCumulative(inf, lo, hi)
			if err != nil {
				t.Fatalf("RangeFromCumulative: %v", err)
			}
			rawErr += (raw - truth) * (raw - truth)
			infErr += (infAns - truth) * (infAns - truth)
		}
	}
	if infErr > rawErr*1.02 {
		t.Fatalf("inference increased error: %v > %v", infErr, rawErr)
	}
	// On sparse data the reduction should be substantial.
	if infErr > rawErr*0.9 {
		t.Logf("warning: inference saved only %.1f%% on sparse data", 100*(1-infErr/rawErr))
	}
}

// The inferred estimate must not leak exact block totals: with a tiny ε the
// inferred cumulative histogram should be far from the truth (an exact leak
// would reproduce block totals perfectly).
func TestInferCumulativeDoesNotLeakBlockTotals(t *testing.T) {
	const (
		size  = 64
		theta = 8
	)
	counts := make([]float64, size)
	for i := range counts {
		counts[i] = 100 // big uniform counts: leaks would be obvious
	}
	o, err := NewOH(size, theta, 2)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	rel, err := o.Release(counts, 0.001, noise.NewSource(5))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	inf, err := rel.InferCumulative(-1) // no clamp: leaks would survive
	if err != nil {
		t.Fatalf("InferCumulative: %v", err)
	}
	// Check the block-total differences: if block roots leaked exactly, the
	// inferred cumulative at block boundaries would match truth closely.
	exactBoundaries := 0
	for b := 1; b*theta-1 < size; b++ {
		j := b*theta - 1
		truth := 100.0 * float64(j+1)
		if math.Abs(inf[j]-truth) < 1 {
			exactBoundaries++
		}
	}
	if exactBoundaries > 1 { // one coincidence allowed
		t.Fatalf("%d block boundaries match truth at ε=0.001: block totals leaked", exactBoundaries)
	}
}
