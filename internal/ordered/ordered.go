// Package ordered implements the paper's novel release strategies for
// cumulative histograms and range queries under distance-threshold Blowfish
// policies:
//
//   - the Ordered Mechanism (Section 7.1): under the line graph G^{d,1} the
//     cumulative histogram has sensitivity 1, so every cumulative count is
//     released with Lap(1/ε) and boosted by isotonic constrained inference;
//     any range query then costs ≤ 4/ε² — independent of |T| and below the
//     SVD lower bound for differentially private strategies;
//
//   - the Ordered Hierarchical Mechanism (Section 7.2): for G^{d,θ} a hybrid
//     of S-nodes (prefix counts at stride θ, sensitivity 1) and H-subtrees
//     (fan-out-f trees inside each θ-block, sensitivity 2h), with the privacy
//     budget split ε = ε_S + ε_H optimized per Eq. (15). θ = 1 degenerates to
//     the pure ordered mechanism, θ = |T| to the hierarchical mechanism.
package ordered

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/hierarchy"
	"blowfish/internal/infer"
	"blowfish/internal/noise"
)

// ReleaseCumulative perturbs each cumulative count with Laplace noise of
// scale sensitivity/ε — the Ordered Mechanism's release step. Under the
// line-graph policy the sensitivity is 1; under G^{d,θ} it is θ
// (policy.CumulativeHistogramSensitivity).
func ReleaseCumulative(cumulative []float64, sensitivity, eps float64, src *noise.Source) ([]float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("ordered: invalid epsilon %v", eps)
	}
	if sensitivity < 0 || math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("ordered: invalid sensitivity %v", sensitivity)
	}
	scale := sensitivity / eps
	out := make([]float64, len(cumulative))
	for i, v := range cumulative {
		out[i] = v + src.Laplace(scale)
	}
	return out, nil
}

// InferCumulative applies the constrained inference of Section 7.1: the
// released cumulative counts are projected onto the non-decreasing cone
// (Hay-style consistency) and clamped into [0, n]; n is the public dataset
// cardinality. This never uses the privacy budget and reduces the error to
// O(p·log³|T|/ε²) for data with p distinct cumulative counts.
func InferCumulative(noisy []float64, n float64) []float64 {
	return infer.MonotoneCumulative(noisy, n)
}

// RangeFromCumulative answers q[lo, hi] (inclusive, 0-indexed) from a
// cumulative histogram: C(hi) − C(lo−1).
func RangeFromCumulative(cumulative []float64, lo, hi int) (float64, error) {
	if lo < 0 || hi >= len(cumulative) || lo > hi {
		return 0, fmt.Errorf("ordered: invalid range [%d,%d] over size %d", lo, hi, len(cumulative))
	}
	v := cumulative[hi]
	if lo > 0 {
		v -= cumulative[lo-1]
	}
	return v, nil
}

// OrderedRangeErrorBound returns the Theorem 7.1 bound on the expected
// squared error of a single range query under the pure ordered mechanism:
// 4/ε² (two cumulative counts, each with variance 2/ε²).
func OrderedRangeErrorBound(eps float64) float64 { return 4 / (eps * eps) }

// OH is the Ordered Hierarchical structure for a policy (T, G^{d,θ}, I_n)
// over a one-dimensional ordered domain of the given size (Figure 2(a)).
type OH struct {
	size   int
	theta  int
	fanout int
	k      int // number of S-nodes = ceil(size/θ)
	// blocks[i] is the H-subtree over block i (width ≤ θ); blocks[i] covers
	// positions [i·θ, min((i+1)·θ, size)).
	blocks []*hierarchy.Tree
	height int // h = ceil(log_f θ), height of the H-subtrees
	// releasedBlocks counts the blocks wider than one position (only those
	// carry an H-subtree release) and releasedNodes their total node count;
	// both are fixed by the layout, so ReleaseWithSplit can size the single
	// slab that backs a whole release up front.
	releasedBlocks int
	releasedNodes  int
}

// NewOH builds the structure. theta is clamped meaningfully: θ = 1 is the
// pure ordered mechanism; θ ≥ size gives a single block — the hierarchical
// mechanism.
func NewOH(size, theta, fanout int) (*OH, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ordered: non-positive size %d", size)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("ordered: non-positive theta %d", theta)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("ordered: fanout %d < 2", fanout)
	}
	if theta > size {
		theta = size
	}
	o := &OH{size: size, theta: theta, fanout: fanout, k: (size + theta - 1) / theta}
	for lo := 0; lo < size; lo += theta {
		hi := lo + theta
		if hi > size {
			hi = size
		}
		t, err := hierarchy.New(hi-lo, fanout)
		if err != nil {
			return nil, err
		}
		o.blocks = append(o.blocks, t)
		if h := t.Height(); h > o.height {
			o.height = h
		}
		if t.Size() > 1 {
			o.releasedBlocks++
			o.releasedNodes += t.NodeCount()
		}
	}
	return o, nil
}

// Size returns |T|.
func (o *OH) Size() int { return o.size }

// Theta returns the (possibly clamped) block width θ.
func (o *OH) Theta() int { return o.theta }

// Fanout returns the H-subtree fanout f.
func (o *OH) Fanout() int { return o.fanout }

// NumSNodes returns k = ceil(|T|/θ).
func (o *OH) NumSNodes() int { return o.k }

// Height returns h = ceil(log_f θ), the H-subtree height.
func (o *OH) Height() int { return o.height }

// ErrorCoefficients returns the constants of Eq. (14):
// E[q] = c1/ε_S² + c2/ε_H², with
// c1 = 4(|T|−θ)/(|T|+1) and c2 = 8(f−1)·log_f³θ·|T|/(|T|+1).
func (o *OH) ErrorCoefficients() (c1, c2 float64) {
	T := float64(o.size)
	th := float64(o.theta)
	f := float64(o.fanout)
	c1 = 4 * (T - th) / (T + 1)
	logf := math.Log(th) / math.Log(f)
	c2 = 8 * (f - 1) * logf * logf * logf * T / (T + 1)
	return c1, c2
}

// OptimalSplit returns the budget split (ε_S, ε_H) minimizing Eq. (14) per
// Eq. (15): ε_S* = ε·c1^{1/3}/(c1^{1/3}+c2^{1/3}). θ = |T| gives (0, ε)
// (pure hierarchical); θ = 1 gives (ε, 0) (pure ordered).
func (o *OH) OptimalSplit(eps float64) (epsS, epsH float64) {
	c1, c2 := o.ErrorCoefficients()
	a := math.Cbrt(c1)
	b := math.Cbrt(c2)
	switch {
	case a+b == 0:
		// Degenerate single-value domain: no noise needed anywhere.
		return eps, 0
	case b == 0: // θ = 1: pure ordered mechanism
		return eps, 0
	case a == 0: // θ = |T|: pure hierarchical mechanism
		return 0, eps
	}
	epsS = eps * a / (a + b)
	return epsS, eps - epsS
}

// ExpectedRangeError evaluates the Eq. (14) error model at a given split;
// terms with zero budget and zero coefficient contribute nothing.
func (o *OH) ExpectedRangeError(epsS, epsH float64) float64 {
	c1, c2 := o.ErrorCoefficients()
	var e float64
	switch {
	case c1 == 0:
	case epsS <= 0:
		return math.Inf(1)
	default:
		e += c1 / (epsS * epsS)
	}
	switch {
	case c2 == 0:
	case epsH <= 0:
		return math.Inf(1)
	default:
		e += c2 / (epsH * epsH)
	}
	return e
}

// MinimalExpectedRangeError evaluates Eq. (15): the model error at the
// optimal split, (c1^{1/3}+c2^{1/3})³/ε².
func (o *OH) MinimalExpectedRangeError(eps float64) float64 {
	c1, c2 := o.ErrorCoefficients()
	s := math.Cbrt(c1) + math.Cbrt(c2)
	return s * s * s / (eps * eps)
}

// OHRelease holds the released Ordered Hierarchical structure.
type OHRelease struct {
	oh *OH
	// sPrefix[i] is the released prefix count s_{i+1} = q[x_0, x_{(i+1)θ-1}]
	// for i = 0..k-1; sPrefix[k-1] covers the whole domain. Entry 0 is not
	// directly noised (s_1 is the root of H_1); it is reconstructed from
	// block 1's released root.
	sPrefix []float64
	// blocks[i] is the released H-subtree of block i.
	blocks []*hierarchy.Released
}

// Release publishes the structure with the optimal budget split.
func (o *OH) Release(counts []float64, eps float64, src *noise.Source) (*OHRelease, error) {
	epsS, epsH := o.OptimalSplit(eps)
	return o.ReleaseWithSplit(counts, epsS, epsH, src)
}

// ReleaseWithSplit publishes the structure with an explicit split
// (ε_S, ε_H), for budget ablations. Per Section 7.2: s_i (i ≥ 2) receives
// Lap(1/ε_S); H-nodes in blocks i ≥ 2 receive Lap(2h/ε_H); H_1 — whose root
// is s_1 — receives Lap(2h/(ε_S+ε_H)).
func (o *OH) ReleaseWithSplit(counts []float64, epsS, epsH float64, src *noise.Source) (*OHRelease, error) {
	if len(counts) != o.size {
		return nil, fmt.Errorf("ordered: %d counts for size %d", len(counts), o.size)
	}
	if epsS < 0 || epsH < 0 || epsS+epsH <= 0 {
		return nil, fmt.Errorf("ordered: invalid budget split (%v, %v)", epsS, epsH)
	}
	// The whole release escapes to the caller as one unit, so its storage is
	// carved from one slab: k S-node prefixes, then per released block a
	// values and a variance vector. A fixed handful of allocations (slab,
	// Released headers, block pointers) replaces the four-per-block of the
	// naive path, and the block truths are evaluated straight into the slab
	// — no per-block Eval scratch at all.
	slab := make([]float64, o.k+2*o.releasedNodes)
	relSlab := make([]hierarchy.Released, o.releasedBlocks)
	r := &OHRelease{oh: o, sPrefix: slab[:o.k:o.k], blocks: make([]*hierarchy.Released, 0, len(o.blocks))}
	off := o.k

	// H-subtrees. Block 0 uses the combined budget. Single-node trees
	// (θ=1, or a width-1 last block) are never queried — their positions
	// are covered by S-node prefixes — so nothing is released for them.
	h := float64(o.height)
	released := 0
	for i, tree := range o.blocks {
		if tree.Size() == 1 {
			r.blocks = append(r.blocks, nil)
			continue
		}
		lo := i * o.theta
		blockCounts := counts[lo : lo+tree.Size()]
		budget := epsH
		if i == 0 {
			budget = epsS + epsH
		}
		scale := 0.0
		if h > 0 {
			if budget <= 0 {
				return nil, errors.New("ordered: H-subtrees need positive budget when θ > 1")
			}
			scale = 2 * h / budget
		}
		n := tree.NodeCount()
		values := slab[off : off+n : off+n]
		variance := slab[off+n : off+2*n : off+2*n]
		off += 2 * n
		rel, err := tree.ReleaseInteriorInto(values, variance, blockCounts, scale, src)
		if err != nil {
			return nil, err
		}
		relSlab[released] = rel
		r.blocks = append(r.blocks, &relSlab[released])
		released++
	}

	// The released H-subtree roots are exact block totals in
	// hierarchy.ReleaseWithScale (public-cardinality convention); under the
	// OH privacy argument block totals are NOT public, so noise them here
	// explicitly — block 0's root with the combined budget, others unused
	// (prefixes use S-nodes).
	// Block 0 root = s_1.
	block0Total := 0.0
	for i := 0; i < o.blocks[0].Size(); i++ {
		block0Total += counts[i]
	}
	s1Scale := 0.0
	if o.theta > 1 {
		s1Scale = 2 * math.Max(h, 1) / (epsS + epsH)
	} else {
		if epsS <= 0 {
			return nil, errors.New("ordered: θ=1 requires positive ε_S")
		}
		s1Scale = 1 / epsS
	}
	r.sPrefix[0] = block0Total + src.Laplace(s1Scale)

	// Remaining S-nodes: true prefixes + Lap(1/ε_S).
	if o.k > 1 {
		if epsS <= 0 {
			return nil, errors.New("ordered: multiple S-nodes require positive ε_S")
		}
		prefix := block0Total
		for i := 1; i < o.k; i++ {
			lo := i * o.theta
			for j := lo; j < lo+o.blocks[i].Size(); j++ {
				prefix += counts[j]
			}
			r.sPrefix[i] = prefix + src.Laplace(1/epsS)
		}
	}
	return r, nil
}

// Cumulative estimates C(j): the count of values ≤ j (0-indexed). C(-1)=0.
// Per Section 7.2, C(j) = s_l + q[lθ, j] with the in-block part answered by
// the H-subtree greedy decomposition.
func (r *OHRelease) Cumulative(j int) (float64, error) {
	if j == -1 {
		return 0, nil
	}
	if j < 0 || j >= r.oh.size {
		return 0, fmt.Errorf("ordered: cumulative index %d out of range [0,%d)", j, r.oh.size)
	}
	block := j / r.oh.theta
	offsetHi := j - block*r.oh.theta // in-block inclusive upper bound
	full := offsetHi == r.oh.blocks[block].Size()-1
	if full {
		// C(j) is exactly the S-node prefix s_{block+1}.
		return r.sPrefix[block], nil
	}
	var base float64
	if block > 0 {
		base = r.sPrefix[block-1]
	}
	// inBlock covers a strict sub-block range (the full-block case took the
	// S-node fast path above), so the greedy decomposition never touches
	// the unobserved block root and consists of noisy nodes only.
	inBlock, _, err := r.blocks[block].RangeQuery(0, offsetHi)
	if err != nil {
		return 0, err
	}
	return base + inBlock, nil
}

// Range answers q[lo, hi] (inclusive) as C(hi) − C(lo−1).
func (r *OHRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi >= r.oh.size || lo > hi {
		return 0, fmt.Errorf("ordered: invalid range [%d,%d] over size %d", lo, hi, r.oh.size)
	}
	chi, err := r.Cumulative(hi)
	if err != nil {
		return 0, err
	}
	clo, err := r.Cumulative(lo - 1)
	if err != nil {
		return 0, err
	}
	return chi - clo, nil
}

// CumulativeVector estimates the whole cumulative histogram.
func (r *OHRelease) CumulativeVector() ([]float64, error) {
	out := make([]float64, r.oh.size)
	for j := 0; j < r.oh.size; j++ {
		v, err := r.Cumulative(j)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}
