package ordered

import (
	"math"
	"math/rand"
	"testing"

	"blowfish/internal/noise"
)

func cumulativeOf(counts []float64) []float64 {
	out := make([]float64, len(counts))
	var run float64
	for i, c := range counts {
		run += c
		out[i] = run
	}
	return out
}

func TestReleaseCumulativeValidation(t *testing.T) {
	src := noise.NewSource(1)
	if _, err := ReleaseCumulative([]float64{1}, 1, 0, src); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := ReleaseCumulative([]float64{1}, -1, 1, src); err == nil {
		t.Error("negative sensitivity accepted")
	}
	out, err := ReleaseCumulative([]float64{1, 2, 3}, 0, 1, src)
	if err != nil {
		t.Fatalf("ReleaseCumulative: %v", err)
	}
	for i, v := range []float64{1, 2, 3} {
		if out[i] != v {
			t.Fatal("zero sensitivity release not exact")
		}
	}
}

func TestOrderedMechanismEndToEnd(t *testing.T) {
	// A sparse dataset: the inferred cumulative histogram should be monotone,
	// within [0, n], and close to the truth.
	counts := []float64{0, 0, 5, 0, 0, 0, 12, 0, 0, 3, 0, 0}
	cum := cumulativeOf(counts)
	n := cum[len(cum)-1]
	src := noise.NewSource(7)
	noisy, err := ReleaseCumulative(cum, 1, 1.0, src)
	if err != nil {
		t.Fatalf("ReleaseCumulative: %v", err)
	}
	inferred := InferCumulative(noisy, n)
	for i := 1; i < len(inferred); i++ {
		if inferred[i] < inferred[i-1] {
			t.Fatalf("inferred cumulative not monotone: %v", inferred)
		}
	}
	if inferred[0] < 0 || inferred[len(inferred)-1] > n {
		t.Fatalf("inferred cumulative out of [0,n]: %v", inferred)
	}
}

func TestOrderedRangeErrorTheorem71(t *testing.T) {
	// Theorem 7.1: expected squared error of a range query ≤ 4/ε², even
	// without constrained inference.
	const (
		eps  = 0.5
		reps = 30000
	)
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	cum := cumulativeOf(counts)
	src := noise.NewSource(11)
	truth := cum[7] - cum[2] // range [3,7]
	var sq float64
	for r := 0; r < reps; r++ {
		noisy, err := ReleaseCumulative(cum, 1, eps, src)
		if err != nil {
			t.Fatalf("ReleaseCumulative: %v", err)
		}
		got, err := RangeFromCumulative(noisy, 3, 7)
		if err != nil {
			t.Fatalf("RangeFromCumulative: %v", err)
		}
		sq += (got - truth) * (got - truth)
	}
	emp := sq / reps
	bound := OrderedRangeErrorBound(eps)
	if emp > bound*1.05 {
		t.Fatalf("empirical range error %v exceeds Theorem 7.1 bound %v", emp, bound)
	}
	// And it should be close to the bound (two independent Laplace terms).
	if emp < bound*0.8 {
		t.Fatalf("empirical range error %v implausibly below bound %v", emp, bound)
	}
}

func TestRangeFromCumulative(t *testing.T) {
	cum := []float64{1, 3, 6, 10}
	got, err := RangeFromCumulative(cum, 0, 3)
	if err != nil || got != 10 {
		t.Fatalf("full range = %v (err %v), want 10", got, err)
	}
	got, err = RangeFromCumulative(cum, 2, 2)
	if err != nil || got != 3 {
		t.Fatalf("point range = %v (err %v), want 3", got, err)
	}
	if _, err := RangeFromCumulative(cum, 3, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RangeFromCumulative(cum, 0, 9); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestNewOHValidation(t *testing.T) {
	if _, err := NewOH(0, 1, 2); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewOH(10, 0, 2); err == nil {
		t.Error("theta 0 accepted")
	}
	if _, err := NewOH(10, 2, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	// theta beyond size clamps.
	o, err := NewOH(10, 99, 2)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	if o.Theta() != 10 || o.NumSNodes() != 1 {
		t.Fatalf("clamped theta = %d, k = %d", o.Theta(), o.NumSNodes())
	}
}

func TestOHStructureFigure2a(t *testing.T) {
	// Figure 2(a): θ=4 over a domain of 16 with fanout 2: k = 4 S-nodes,
	// H-subtrees of height 2.
	o, err := NewOH(16, 4, 2)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	if o.NumSNodes() != 4 {
		t.Fatalf("k = %d, want 4", o.NumSNodes())
	}
	if o.Height() != 2 {
		t.Fatalf("height = %d, want 2", o.Height())
	}
}

func TestOHDegenerateSplits(t *testing.T) {
	// θ = |T|: all budget to H (hierarchical mechanism).
	o, err := NewOH(64, 64, 4)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	epsS, epsH := o.OptimalSplit(1.0)
	if epsS != 0 || epsH != 1.0 {
		t.Fatalf("θ=|T| split = (%v,%v), want (0,1)", epsS, epsH)
	}
	// θ = 1: all budget to S (ordered mechanism).
	o, err = NewOH(64, 1, 4)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	epsS, epsH = o.OptimalSplit(1.0)
	if epsS != 1.0 || epsH != 0 {
		t.Fatalf("θ=1 split = (%v,%v), want (1,0)", epsS, epsH)
	}
}

func TestOHErrorCoefficients(t *testing.T) {
	o, err := NewOH(4096, 256, 16)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	c1, c2 := o.ErrorCoefficients()
	wantC1 := 4 * float64(4096-256) / float64(4097)
	logf := math.Log(256) / math.Log(16) // = 2
	wantC2 := 8 * 15 * logf * logf * logf * 4096 / 4097
	if math.Abs(c1-wantC1) > 1e-9 || math.Abs(c2-wantC2) > 1e-9 {
		t.Fatalf("coefficients = (%v,%v), want (%v,%v)", c1, c2, wantC1, wantC2)
	}
	// Optimal split minimizes the model: perturb and compare.
	epsS, epsH := o.OptimalSplit(1.0)
	best := o.ExpectedRangeError(epsS, epsH)
	if math.Abs(best-o.MinimalExpectedRangeError(1.0)) > 1e-9 {
		t.Fatalf("model mismatch: %v vs %v", best, o.MinimalExpectedRangeError(1.0))
	}
	for _, d := range []float64{-0.05, 0.05, -0.2, 0.2} {
		s := epsS + d
		if s <= 0 || s >= 1 {
			continue
		}
		if o.ExpectedRangeError(s, 1-s) < best-1e-9 {
			t.Fatalf("split (%v) beats the optimal (%v)", s, epsS)
		}
	}
}

func TestOHReleaseUnbiasedRanges(t *testing.T) {
	const (
		size = 64
		eps  = 1.0
		reps = 4000
	)
	rng := rand.New(rand.NewSource(13))
	counts := make([]float64, size)
	for i := range counts {
		counts[i] = float64(rng.Intn(20))
	}
	for _, theta := range []int{1, 4, 16, 64} {
		o, err := NewOH(size, theta, 4)
		if err != nil {
			t.Fatalf("NewOH(θ=%d): %v", theta, err)
		}
		src := noise.NewSource(int64(17 + theta))
		lo, hi := 5, 49
		var truth float64
		for i := lo; i <= hi; i++ {
			truth += counts[i]
		}
		var sum float64
		for r := 0; r < reps; r++ {
			rel, err := o.Release(counts, eps, src)
			if err != nil {
				t.Fatalf("Release(θ=%d): %v", theta, err)
			}
			got, err := rel.Range(lo, hi)
			if err != nil {
				t.Fatalf("Range(θ=%d): %v", theta, err)
			}
			sum += got
		}
		mean := sum / reps
		if math.Abs(mean-truth) > 0.15*truth+5 {
			t.Fatalf("θ=%d: mean range answer %v, truth %v", theta, mean, truth)
		}
	}
}

func TestOHCumulativeMatchesTruthWithoutNoise(t *testing.T) {
	// With huge ε the release should reproduce all cumulative counts almost
	// exactly, for every θ and for irregular last blocks.
	const size = 37
	counts := make([]float64, size)
	for i := range counts {
		counts[i] = float64((i * 7) % 5)
	}
	cum := cumulativeOf(counts)
	for _, theta := range []int{1, 3, 5, 16, 37} {
		o, err := NewOH(size, theta, 4)
		if err != nil {
			t.Fatalf("NewOH(θ=%d): %v", theta, err)
		}
		rel, err := o.Release(counts, 1e9, noise.NewSource(int64(theta)))
		if err != nil {
			t.Fatalf("Release(θ=%d): %v", theta, err)
		}
		for j := -1; j < size; j++ {
			got, err := rel.Cumulative(j)
			if err != nil {
				t.Fatalf("Cumulative(%d): %v", j, err)
			}
			want := 0.0
			if j >= 0 {
				want = cum[j]
			}
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("θ=%d: C(%d) = %v, want %v", theta, j, got, want)
			}
		}
		vec, err := rel.CumulativeVector()
		if err != nil {
			t.Fatalf("CumulativeVector: %v", err)
		}
		if len(vec) != size {
			t.Fatalf("CumulativeVector len = %d", len(vec))
		}
	}
}

func TestOHRangeValidation(t *testing.T) {
	o, err := NewOH(16, 4, 2)
	if err != nil {
		t.Fatalf("NewOH: %v", err)
	}
	rel, err := o.Release(make([]float64, 16), 1, noise.NewSource(1))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := rel.Range(-1, 3); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := rel.Range(3, 16); err == nil {
		t.Error("hi out of range accepted")
	}
	if _, err := rel.Range(5, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := rel.Cumulative(99); err == nil {
		t.Error("cumulative index out of range accepted")
	}
	if _, err := o.Release(make([]float64, 3), 1, noise.NewSource(1)); err == nil {
		t.Error("count size mismatch accepted")
	}
	if _, err := o.ReleaseWithSplit(make([]float64, 16), -1, 2, noise.NewSource(1)); err == nil {
		t.Error("negative split accepted")
	}
}

// The headline claim of Section 7: smaller θ (stronger utility, weaker
// privacy within distance θ) means lower range query error, with orders of
// magnitude between θ=1 and θ=|T|.
func TestOHErrorDecreasesWithTheta(t *testing.T) {
	const (
		size = 1024
		eps  = 0.5
		reps = 60
	)
	rng := rand.New(rand.NewSource(29))
	counts := make([]float64, size)
	for i := range counts {
		counts[i] = float64(rng.Intn(50))
	}
	thetas := []int{1, 16, 256, 1024}
	var errs []float64
	for _, theta := range thetas {
		o, err := NewOH(size, theta, 16)
		if err != nil {
			t.Fatalf("NewOH: %v", err)
		}
		src := noise.NewSource(int64(31 + theta))
		var sq float64
		qrng := rand.New(rand.NewSource(37)) // same queries for every θ
		for r := 0; r < reps; r++ {
			rel, err := o.Release(counts, eps, src)
			if err != nil {
				t.Fatalf("Release: %v", err)
			}
			for q := 0; q < 50; q++ {
				lo := qrng.Intn(size)
				hi := lo + qrng.Intn(size-lo)
				var truth float64
				for i := lo; i <= hi; i++ {
					truth += counts[i]
				}
				got, err := rel.Range(lo, hi)
				if err != nil {
					t.Fatalf("Range: %v", err)
				}
				sq += (got - truth) * (got - truth)
			}
		}
		errs = append(errs, sq/float64(reps*50))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] < errs[i-1] {
			t.Fatalf("error not increasing in θ: θ=%d gives %v < θ=%d gives %v",
				thetas[i], errs[i], thetas[i-1], errs[i-1])
		}
	}
	if errs[len(errs)-1] < 50*errs[0] {
		t.Fatalf("θ=|T| error %v not orders of magnitude above θ=1 error %v", errs[len(errs)-1], errs[0])
	}
}
