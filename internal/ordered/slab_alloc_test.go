// Strict allocation pins live apart from the correctness tests because the
// race detector deliberately makes sync.Pool drop items at random (to shake
// out reuse races), which turns exact AllocsPerRun counts into noise.
//go:build !race

package ordered

import (
	"testing"

	"blowfish/internal/noise"
)

// TestReleaseWithSplitAllocs pins the slab design: one release costs a
// fixed handful of allocations however many θ-blocks the layout has.
func TestReleaseWithSplitAllocs(t *testing.T) {
	o, err := NewOH(4096, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4096)
	for i := range counts {
		counts[i] = float64(i % 11)
	}
	src := noise.NewSource(2)
	avg := testing.AllocsPerRun(50, func() {
		if _, err := o.ReleaseWithSplit(counts, 0.4, 0.6, src); err != nil {
			t.Fatal(err)
		}
	})
	// OHRelease header, float slab, Released slab, block-pointer slice.
	if avg > 4 {
		t.Fatalf("ReleaseWithSplit allocates %v per release over %d blocks, want <= 4", avg, o.NumSNodes())
	}
}
