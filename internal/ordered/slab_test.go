package ordered

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"blowfish/internal/noise"
)

// referenceReleaseWithSplit is the pre-slab implementation of
// ReleaseWithSplit, kept verbatim as a differential oracle: each H-subtree
// allocated its own release via ReleaseInterior. The slab-backed production
// path must consume exactly the same noise draws in the same order — the
// durable log replays releases by re-executing them, so any drift here
// would break crash-recovery determinism.
func referenceReleaseWithSplit(o *OH, counts []float64, epsS, epsH float64, src *noise.Source) (*OHRelease, error) {
	if len(counts) != o.size {
		return nil, errors.New("size mismatch")
	}
	r := &OHRelease{oh: o, sPrefix: make([]float64, o.k)}
	h := float64(o.height)
	for i, tree := range o.blocks {
		if tree.Size() == 1 {
			r.blocks = append(r.blocks, nil)
			continue
		}
		lo := i * o.theta
		blockCounts := counts[lo : lo+tree.Size()]
		budget := epsH
		if i == 0 {
			budget = epsS + epsH
		}
		scale := 0.0
		if h > 0 {
			if budget <= 0 {
				return nil, errors.New("ordered: H-subtrees need positive budget when θ > 1")
			}
			scale = 2 * h / budget
		}
		rel, err := tree.ReleaseInterior(blockCounts, scale, nil, src)
		if err != nil {
			return nil, err
		}
		r.blocks = append(r.blocks, rel)
	}
	block0Total := 0.0
	for i := 0; i < o.blocks[0].Size(); i++ {
		block0Total += counts[i]
	}
	s1Scale := 0.0
	if o.theta > 1 {
		s1Scale = 2 * math.Max(h, 1) / (epsS + epsH)
	} else {
		if epsS <= 0 {
			return nil, errors.New("ordered: θ=1 requires positive ε_S")
		}
		s1Scale = 1 / epsS
	}
	r.sPrefix[0] = block0Total + src.Laplace(s1Scale)
	if o.k > 1 {
		if epsS <= 0 {
			return nil, errors.New("ordered: multiple S-nodes require positive ε_S")
		}
		prefix := block0Total
		for i := 1; i < o.k; i++ {
			lo := i * o.theta
			for j := lo; j < lo+o.blocks[i].Size(); j++ {
				prefix += counts[j]
			}
			r.sPrefix[i] = prefix + src.Laplace(1/epsS)
		}
	}
	return r, nil
}

// TestReleaseWithSplitMatchesReference pins the slab-backed release to the
// blockwise reference bit for bit across the layout's corner shapes: pure
// ordered (θ=1), pure hierarchical (θ=|T|), ragged and width-1 last blocks,
// and both optimal and explicit budget splits.
func TestReleaseWithSplitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := []struct {
		size, theta, fanout int
	}{
		{64, 7, 2},
		{64, 1, 2},  // pure ordered: every block is a single node
		{64, 64, 4}, // pure hierarchical: one block
		{49, 8, 3},  // width-1 last block alongside full ones
		{50, 8, 2},  // ragged (width-2) last block
		{5, 2, 2},
	}
	for _, sh := range shapes {
		o, err := NewOH(sh.size, sh.theta, sh.fanout)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, sh.size)
		for i := range counts {
			counts[i] = float64(rng.Intn(30))
		}
		epsS, epsH := o.OptimalSplit(1.5)
		splits := [][2]float64{{epsS, epsH}, {0.9, 0.6}}
		if sh.theta == 1 {
			splits = [][2]float64{{epsS, epsH}, {1.5, 0}}
		}
		for _, split := range splits {
			got, err := o.ReleaseWithSplit(counts, split[0], split[1], noise.NewSource(77))
			if err != nil {
				t.Fatalf("%+v split %v: %v", sh, split, err)
			}
			want, err := referenceReleaseWithSplit(o, counts, split[0], split[1], noise.NewSource(77))
			if err != nil {
				t.Fatalf("%+v split %v reference: %v", sh, split, err)
			}
			for i := range want.sPrefix {
				if got.sPrefix[i] != want.sPrefix[i] {
					t.Fatalf("%+v split %v: sPrefix[%d] = %v, want %v", sh, split, i, got.sPrefix[i], want.sPrefix[i])
				}
			}
			if len(got.blocks) != len(want.blocks) {
				t.Fatalf("%+v: %d released blocks, want %d", sh, len(got.blocks), len(want.blocks))
			}
			for b := range want.blocks {
				if (got.blocks[b] == nil) != (want.blocks[b] == nil) {
					t.Fatalf("%+v block %d: nil mismatch", sh, b)
				}
				if want.blocks[b] == nil {
					continue
				}
				for n := 0; n < o.blocks[b].NodeCount(); n++ {
					if got.blocks[b].Value(n) != want.blocks[b].Value(n) {
						t.Fatalf("%+v block %d node %d value = %v, want %v", sh, b, n, got.blocks[b].Value(n), want.blocks[b].Value(n))
					}
					gv, wv := got.blocks[b].Variance(n), want.blocks[b].Variance(n)
					if gv != wv && !(math.IsInf(gv, 1) && math.IsInf(wv, 1)) {
						t.Fatalf("%+v block %d node %d variance = %v, want %v", sh, b, n, gv, wv)
					}
				}
			}
		}
	}
}

// TestReleasedBlockStorageIsolated guards the slab carving: writing one
// block's released values must never bleed into a neighbor's storage or
// the S-node prefixes.
func TestReleasedBlockStorageIsolated(t *testing.T) {
	o, err := NewOH(40, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 40)
	for i := range counts {
		counts[i] = 1
	}
	rel, err := o.Release(counts, 1.0, noise.NewSource(8))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), rel.sPrefix...)
	var blockVals [][]float64
	for _, b := range rel.blocks {
		if b == nil {
			blockVals = append(blockVals, nil)
			continue
		}
		vals := make([]float64, 0)
		for n := 0; n < b.Tree().NodeCount(); n++ {
			vals = append(vals, b.Value(n))
		}
		blockVals = append(blockVals, vals)
	}
	// hierarchy.Released.Consistent copies; mutating one block's released
	// view through the tree API is not possible, so instead re-release into
	// the same OH and confirm the first release's storage is untouched
	// (i.e. the slab is per release, not per layout).
	if _, err := o.Release(counts, 1.0, noise.NewSource(99)); err != nil {
		t.Fatal(err)
	}
	for i, v := range before {
		if rel.sPrefix[i] != v {
			t.Fatalf("sPrefix[%d] changed after a second release", i)
		}
	}
	for bi, b := range rel.blocks {
		if b == nil {
			continue
		}
		for n, v := range blockVals[bi] {
			if b.Value(n) != v {
				t.Fatalf("block %d node %d changed after a second release", bi, n)
			}
		}
	}
}
