package policy

import (
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/secgraph"
)

// Section 3.1: privacy-agnostic individuals have no discriminative pairs.
// Neighbors may only differ on participating ids, and with no participants
// every query has zero oracle sensitivity.
func TestParticipantRestriction(t *testing.T) {
	d := domain.MustLine("v", 3)
	base := Differential(d)
	if !base.Participates(0) || !base.AllParticipate() {
		t.Fatal("default policy restricts participants")
	}
	restricted := base.WithParticipants([]int{1})
	if restricted.Participates(0) || !restricted.Participates(1) {
		t.Fatal("participant restriction not applied")
	}
	if restricted.AllParticipate() {
		t.Fatal("restricted policy reports all participate")
	}
	// The base policy must be unaffected (copy semantics).
	if !base.Participates(0) {
		t.Fatal("WithParticipants mutated the receiver")
	}

	o, err := NewOracle(restricted, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	d1, err := domain.FromPoints(d, []domain.Point{0, 0})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	// Changing the participating tuple 1: neighbor.
	d2, err := domain.FromPoints(d, []domain.Point{0, 2})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if !o.IsNeighbor(d1, d2) {
		t.Fatal("participating change not a neighbor")
	}
	// Changing the agnostic tuple 0: not a neighbor.
	d3, err := domain.FromPoints(d, []domain.Point{2, 0})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, d3) {
		t.Fatal("privacy-agnostic change treated as a neighbor")
	}
	// Oracle sensitivity counts only participating changes.
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	if got := o.Sensitivity(hist); got != 2 {
		t.Fatalf("restricted sensitivity = %v, want 2", got)
	}
	// No participants at all: no neighbors, zero sensitivity.
	none, err := NewOracle(base.WithParticipants(nil), 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	if got := none.Sensitivity(hist); got != 0 {
		t.Fatalf("no-participant sensitivity = %v, want 0", got)
	}
	count := 0
	none.ForEachNeighborPair(func(_, _ *domain.Dataset) bool { count++; return true })
	if count != 0 {
		t.Fatalf("no-participant policy has %d neighbor pairs", count)
	}
}

// The ⊥ extension: presence itself becomes a secret. The oracle confirms
// that appearing/disappearing transitions are neighbors and that the
// histogram over the extended domain keeps sensitivity 2 while the
// cumulative histogram pays |T|.
func TestBottomExtensionSensitivities(t *testing.T) {
	base, err := secgraph.NewLine(domain.MustLine("v", 4))
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	b, err := secgraph.NewWithBottom(base)
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	p := New(b)
	ext := b.Domain()
	o, err := NewOracle(p, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	// Disappearance is a neighbor transition.
	d1, err := domain.FromPoints(ext, []domain.Point{2, 1})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	d2, err := domain.FromPoints(ext, []domain.Point{2, b.Bottom()})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if !o.IsNeighbor(d1, d2) {
		t.Fatal("disappearance x→⊥ not a neighbor")
	}
	hist := func(ds *domain.Dataset) []float64 {
		h, err := ds.Histogram()
		if err != nil {
			panic(err)
		}
		return h
	}
	if got := o.Sensitivity(hist); got != 2 {
		t.Fatalf("extended histogram sensitivity = %v, want 2", got)
	}
	// Analytic cumulative sensitivity: max(base edge 1, |T| = 4).
	cum, err := p.CumulativeHistogramSensitivity()
	if err != nil {
		t.Fatalf("CumulativeHistogramSensitivity: %v", err)
	}
	if cum != 4 {
		t.Fatalf("extended cumulative sensitivity = %v, want 4", cum)
	}
	cumQ := func(ds *domain.Dataset) []float64 {
		s, err := ds.CumulativeHistogram()
		if err != nil {
			panic(err)
		}
		return s
	}
	if got := o.Sensitivity(cumQ); got != cum {
		t.Fatalf("oracle cumulative sensitivity = %v, analytic %v", got, cum)
	}
}
