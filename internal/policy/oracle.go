package policy

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
)

// MaxOracleDatasets bounds |T|^n for the exhaustive oracle.
const MaxOracleDatasets = 1 << 18

// Oracle enumerates neighboring databases per Definition 4.1, including the
// minimality condition for constrained policies. It is exponential in the
// database size and exists as a test oracle: the analytic sensitivities and
// the Section 8 policy-graph bounds are all validated against it on small
// domains.
//
// Two neighbor semantics are supported (they coincide for unconstrained
// policies):
//
//   - literal (NewOracle): Definition 4.1 exactly as printed. Tuples may
//     additionally differ along non-secret pairs when those "repair" moves
//     are needed to stay inside I_Q; such moves contribute to Δ but not to
//     T(D1, D2).
//   - edge moves (NewEdgeMoveOracle): neighbors (and the D3 blockers of the
//     minimality condition) may only differ along discriminative pairs.
//     This is the semantics under which the paper's Theorem 8.2 step
//     ||h(D1)−h(D2)||₁ ≤ 2|T(D1, D2)| — and hence the closed forms of
//     Theorems 8.4-8.6 — are exact. The literal semantics can exceed those
//     bounds on instances where constraint-repairing non-secret moves
//     exist; see DESIGN.md ("fidelity notes").
type Oracle struct {
	p *Policy
	n int
	// edgeMoves selects the edge-move semantics described above.
	edgeMoves bool
	// valid lists every dataset of size n in I_Q, as flat value tuples.
	valid []*domain.Dataset
}

// NewEdgeMoveOracle builds an oracle over databases of exactly n tuples
// under the edge-move neighbor semantics.
func NewEdgeMoveOracle(p *Policy, n int) (*Oracle, error) {
	o, err := NewOracle(p, n)
	if err != nil {
		return nil, err
	}
	o.edgeMoves = true
	return o, nil
}

// NewOracle builds an oracle over databases of exactly n tuples under the
// literal Definition 4.1 semantics. It errors when |T|^n exceeds
// MaxOracleDatasets.
func NewOracle(p *Policy, n int) (*Oracle, error) {
	if n <= 0 {
		return nil, errors.New("policy: oracle requires n >= 1")
	}
	d := p.Domain()
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(d.Size())
		if total > MaxOracleDatasets {
			return nil, fmt.Errorf("policy: |T|^n = %v exceeds oracle limit %d", total, MaxOracleDatasets)
		}
	}
	o := &Oracle{p: p, n: n}
	err := ForEachDataset(d, n, func(ds *domain.Dataset) bool {
		if p.q == nil || p.q.Satisfied(ds) {
			o.valid = append(o.valid, ds.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

// ForEachDataset enumerates all |T|^n datasets of size n over d in
// lexicographic order, reusing a single Dataset buffer. fn must not retain
// the dataset; clone it if needed. Enumeration stops early when fn returns
// false.
func ForEachDataset(d *domain.Domain, n int, fn func(*domain.Dataset) bool) error {
	if n <= 0 {
		return errors.New("policy: dataset enumeration requires n >= 1")
	}
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(d.Size())
		if total > MaxOracleDatasets {
			return fmt.Errorf("policy: |T|^n = %v exceeds oracle limit %d", total, MaxOracleDatasets)
		}
	}
	pts := make([]domain.Point, n)
	ds, err := domain.FromPoints(d, pts)
	if err != nil {
		return err
	}
	for {
		if !fn(ds) {
			return nil
		}
		// Increment the mixed-radix counter.
		i := n - 1
		for ; i >= 0; i-- {
			v := ds.At(i) + 1
			if int64(v) < d.Size() {
				if err := ds.Set(i, v); err != nil {
					return err
				}
				break
			}
			if err := ds.Set(i, 0); err != nil {
				return err
			}
		}
		if i < 0 {
			return nil
		}
	}
}

// ValidDatasets returns the datasets of I_Q (all datasets when the policy
// is unconstrained). The returned slice and its elements must not be
// modified.
func (o *Oracle) ValidDatasets() []*domain.Dataset { return o.valid }

// discPair is one element of T(D1, D2): tuple id plus the (x, y) secret
// pair it realizes.
type discPair struct {
	id   int
	x, y domain.Point
}

// discSet computes T(D1, D2): the discriminative pairs realized between two
// equal-size datasets (Definition 4.1). Positions that differ on a
// non-secret pair — or belong to non-participating (privacy-agnostic)
// individuals — contribute to Δ but not to T.
func (o *Oracle) discSet(d1, d2 *domain.Dataset) []discPair {
	var out []discPair
	for i := 0; i < d1.Len(); i++ {
		x, y := d1.At(i), d2.At(i)
		if x != y && o.p.Participates(i) && o.p.g.Adjacent(x, y) {
			out = append(out, discPair{i, x, y})
		}
	}
	return out
}

// deltaIDs returns the tuple ids where d1 and d2 differ (the support of
// Δ(D1, D2)).
func deltaIDs(d1, d2 *domain.Dataset) []int {
	var out []int
	for i := 0; i < d1.Len(); i++ {
		if d1.At(i) != d2.At(i) {
			out = append(out, i)
		}
	}
	return out
}

// IsNeighbor reports whether (d1, d2) ∈ N(P) per Definition 4.1. For
// constrained policies the minimality conditions are checked by exhaustive
// search over the valid datasets of the same size.
func (o *Oracle) IsNeighbor(d1, d2 *domain.Dataset) bool {
	if d1.Len() != o.n || d2.Len() != o.n {
		return false
	}
	if o.p.q != nil && (!o.p.q.Satisfied(d1) || !o.p.q.Satisfied(d2)) {
		return false
	}
	t12 := o.discSet(d1, d2)
	if len(t12) == 0 {
		return false // condition 2
	}
	delta12 := deltaIDs(d1, d2)
	if o.edgeMoves && len(delta12) != len(t12) {
		return false // some tuple changed along a non-secret pair
	}
	if o.p.q == nil {
		// Unconstrained: minimality forces exactly one changed tuple, which
		// must be the single discriminative pair.
		return len(delta12) == 1
	}
	// Index T(D1,D2) by tuple id for subset tests: a pair (i, x, z) of
	// T(D1, D3) lies in T(D1, D2) iff z equals D2's value at i (x = D1's
	// value at i always holds).
	want := make(map[int]domain.Point, len(t12))
	for _, dp := range t12 {
		want[dp.id] = dp.y
	}
	delta12Set := make(map[int]bool, len(delta12))
	for _, id := range delta12 {
		delta12Set[id] = true
	}
	for _, d3 := range o.valid {
		t13 := o.discSet(d1, d3)
		if o.edgeMoves && len(deltaIDs(d1, d3)) != len(t13) {
			continue // blockers must also be reachable by edge moves only
		}
		// Condition 3(a): some valid D3 realizes a non-empty strict subset
		// of the discriminative pairs.
		if len(t13) > 0 && len(t13) < len(t12) && subsetOf(t13, want) {
			return false
		}
		// Condition 3(b): same discriminative pairs but strictly fewer
		// tuple changes.
		if len(t13) == len(t12) && subsetOf(t13, want) {
			d3ids := deltaIDs(d1, d3)
			if len(d3ids) < len(delta12) && idsSubset(d3ids, delta12Set) && valuesMatch(d3ids, d2, d3) {
				return false
			}
		}
	}
	return true
}

func subsetOf(t []discPair, want map[int]domain.Point) bool {
	for _, dp := range t {
		if y, ok := want[dp.id]; !ok || y != dp.y {
			return false
		}
	}
	return true
}

func idsSubset(ids []int, set map[int]bool) bool {
	for _, id := range ids {
		if !set[id] {
			return false
		}
	}
	return true
}

// valuesMatch reports whether d3 agrees with d2 on every id in ids; only
// then is Δ(D3, D1) a subset of Δ(D2, D1) as a set of (id, value) tuples.
func valuesMatch(ids []int, d2, d3 *domain.Dataset) bool {
	for _, id := range ids {
		if d3.At(id) != d2.At(id) {
			return false
		}
	}
	return true
}

// ForEachNeighborPair invokes fn on every unordered neighbor pair
// (D1, D2) ∈ N(P) with both datasets of size n. Enumeration stops early
// when fn returns false.
func (o *Oracle) ForEachNeighborPair(fn func(d1, d2 *domain.Dataset) bool) {
	if o.p.q == nil {
		// Unconstrained fast path: mutate one participating tuple along
		// each edge.
		for _, ds := range o.valid {
			for i := 0; i < o.n; i++ {
				if !o.p.Participates(i) {
					continue
				}
				x := ds.At(i)
				for y := int64(int64(x) + 1); y < o.p.Domain().Size(); y++ {
					py := domain.Point(y)
					if !o.p.g.Adjacent(x, py) {
						continue
					}
					d2 := ds.Clone()
					if err := d2.Set(i, py); err != nil {
						panic(err) // unreachable: py validated by Adjacent domain
					}
					if !fn(ds, d2) {
						return
					}
				}
			}
		}
		return
	}
	for a := 0; a < len(o.valid); a++ {
		for b := a + 1; b < len(o.valid); b++ {
			if o.IsNeighbor(o.valid[a], o.valid[b]) {
				if !fn(o.valid[a], o.valid[b]) {
					return
				}
			}
		}
	}
}

// Sensitivity returns S(f, P) restricted to databases of size n: the
// maximum L1 distance of f across neighbor pairs. It returns 0 when N(P)
// is empty.
func (o *Oracle) Sensitivity(f func(*domain.Dataset) []float64) float64 {
	best := 0.0
	o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		v1, v2 := f(d1), f(d2)
		if len(v1) != len(v2) {
			panic("policy: query returned inconsistent dimensions")
		}
		var l1 float64
		for i := range v1 {
			l1 += math.Abs(v1[i] - v2[i])
		}
		if l1 > best {
			best = l1
		}
		return true
	})
	return best
}

// MaxDiscPairs returns max |T(D1,D2)| over neighbor pairs — the quantity
// the tightness condition of Theorem 8.2 speaks about.
func (o *Oracle) MaxDiscPairs() int {
	best := 0
	o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		if n := len(o.discSet(d1, d2)); n > best {
			best = n
		}
		return true
	})
	return best
}
