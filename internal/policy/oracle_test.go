package policy

import (
	"math/rand"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/secgraph"
)

// Property test: for random explicit secret graphs, the oracle sensitivity
// of the standard queries matches the analytic formulas — S(h) = 2 iff the
// graph has an edge, S(S_T) = the longest edge, S(f_w) = max|w|·longest
// edge.
func TestRandomGraphSensitivitiesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		size := 3 + rng.Intn(4)
		d := domain.MustLine("v", size)
		g, err := secgraph.NewExplicit(d, "rand")
		if err != nil {
			t.Fatalf("NewExplicit: %v", err)
		}
		for x := 0; x < size; x++ {
			for y := x + 1; y < size; y++ {
				if rng.Float64() < 0.4 {
					if err := g.AddEdge(domain.Point(x), domain.Point(y)); err != nil {
						t.Fatalf("AddEdge: %v", err)
					}
				}
			}
		}
		p := New(g)
		o, err := NewOracle(p, 2)
		if err != nil {
			t.Fatalf("NewOracle: %v", err)
		}
		hist := func(ds *domain.Dataset) []float64 {
			h, err := ds.Histogram()
			if err != nil {
				panic(err)
			}
			return h
		}
		wantHist, err := p.HistogramSensitivity()
		if err != nil {
			t.Fatalf("HistogramSensitivity: %v", err)
		}
		if got := o.Sensitivity(hist); got != wantHist {
			t.Fatalf("trial %d: oracle S(h) = %v, analytic %v (edges %d)", trial, got, wantHist, g.NumEdges())
		}
		cum := func(ds *domain.Dataset) []float64 {
			s, err := ds.CumulativeHistogram()
			if err != nil {
				panic(err)
			}
			return s
		}
		wantCum, err := p.CumulativeHistogramSensitivity()
		if err != nil {
			t.Fatalf("CumulativeHistogramSensitivity: %v", err)
		}
		if got := o.Sensitivity(cum); got != wantCum {
			t.Fatalf("trial %d: oracle S(S_T) = %v, analytic %v", trial, got, wantCum)
		}
		weights := []float64{1 + rng.Float64()*2, -(1 + rng.Float64())}
		linear := func(ds *domain.Dataset) []float64 {
			var sum float64
			for i := 0; i < ds.Len(); i++ {
				sum += weights[i] * float64(ds.At(i))
			}
			return []float64{sum}
		}
		wantLin, err := p.LinearQuerySensitivity(weights)
		if err != nil {
			t.Fatalf("LinearQuerySensitivity: %v", err)
		}
		if got := o.Sensitivity(linear); got < wantLin-1e-9 || got > wantLin+1e-9 {
			t.Fatalf("trial %d: oracle S(f_w) = %v, analytic %v", trial, got, wantLin)
		}
	}
}

// MaxDiscPairs on unconstrained policies is always 1 (single-edge moves).
func TestMaxDiscPairsUnconstrained(t *testing.T) {
	d := domain.MustLine("v", 4)
	o, err := NewOracle(Differential(d), 3)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	if got := o.MaxDiscPairs(); got != 1 {
		t.Fatalf("MaxDiscPairs = %d, want 1", got)
	}
}

// Edge-move and literal semantics agree on unconstrained policies.
func TestOracleModesAgreeUnconstrained(t *testing.T) {
	d := domain.MustLine("v", 4)
	p := New(secgraph.MustDistanceThreshold(d, 2))
	lit, err := NewOracle(p, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	edge, err := NewEdgeMoveOracle(p, 2)
	if err != nil {
		t.Fatalf("NewEdgeMoveOracle: %v", err)
	}
	litPairs := make(map[[4]domain.Point]bool)
	lit.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		litPairs[[4]domain.Point{d1.At(0), d1.At(1), d2.At(0), d2.At(1)}] = true
		return true
	})
	edgeCount := 0
	edge.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		edgeCount++
		if !litPairs[[4]domain.Point{d1.At(0), d1.At(1), d2.At(0), d2.At(1)}] {
			t.Fatalf("edge-move pair %v/%v missing from literal enumeration", d1.Points(), d2.Points())
		}
		return true
	})
	if edgeCount != len(litPairs) {
		t.Fatalf("edge-move pairs %d != literal pairs %d", edgeCount, len(litPairs))
	}
}

// The oracle size guard rejects oversized instances.
func TestOracleSizeGuard(t *testing.T) {
	d := domain.MustLine("v", 100)
	if _, err := NewOracle(Differential(d), 5); err == nil {
		t.Fatal("oversized oracle accepted")
	}
	if _, err := NewOracle(Differential(d), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// lineRangeConstraint is a minimal in-package ConstraintSet: it pins the
// number of tuples with values in [lo, hi].
type lineRangeConstraint struct {
	lo, hi domain.Point
	want   float64
}

func (c lineRangeConstraint) Satisfied(ds *domain.Dataset) bool {
	var n float64
	for _, p := range ds.Points() {
		if p >= c.lo && p <= c.hi {
			n++
		}
	}
	return n == c.want
}

func (c lineRangeConstraint) Name() string { return "IQ(range)" }

// Condition 3(b) of Definition 4.1: a candidate pair with the same
// discriminative pairs as a valid alternative but strictly more tuple
// changes is NOT minimal, hence not a neighbor.
func TestCondition3bPrunesExtraChanges(t *testing.T) {
	d := domain.MustLine("v", 6)
	g := secgraph.MustDistanceThreshold(d, 1) // line graph
	q := lineRangeConstraint{lo: 0, hi: 1, want: 1}
	p := NewConstrained(g, q)
	o, err := NewOracle(p, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	d1, err := domain.FromPoints(d, []domain.Point{0, 3})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	// D2 changes tuple 0 along the edge (0,1) AND teleports tuple 1 from 3
	// to 5 (non-edge). The same secret pair is realizable by D3 = (1, 3)
	// without the teleport, so condition 3(b) must prune (D1, D2).
	d2, err := domain.FromPoints(d, []domain.Point{1, 5})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, d2) {
		t.Fatal("condition 3(b) failed to prune a pair with redundant non-secret changes")
	}
	// The minimal alternative IS a neighbor.
	d3, err := domain.FromPoints(d, []domain.Point{1, 3})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if !o.IsNeighbor(d1, d3) {
		t.Fatal("minimal single-edge change not a neighbor")
	}
	// Condition 1: pairs outside I_Q are never neighbors.
	bad, err := domain.FromPoints(d, []domain.Point{0, 1}) // range count 2 ≠ 1
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, bad) || o.IsNeighbor(bad, d1) {
		t.Fatal("pair violating I_Q accepted")
	}
	// ValidDatasets only contains I_Q members.
	for _, ds := range o.ValidDatasets() {
		if !q.Satisfied(ds) {
			t.Fatalf("invalid dataset %v in ValidDatasets", ds.Points())
		}
	}
	// Condition 3(a): a pair realizing a strict superset of another valid
	// pair's discriminative pairs is pruned. D1=(0,3) → D4=(1,4): both
	// tuples move along edges; tuple 0's move alone is valid (D3), so
	// T(D1,D3) ⊊ T(D1,D4) prunes D4.
	d4, err := domain.FromPoints(d, []domain.Point{1, 4})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, d4) {
		t.Fatal("condition 3(a) failed to prune a two-edge pair with a valid one-edge refinement")
	}
}

func TestPolicyConstructorsPanicOnNil(t *testing.T) {
	for _, fn := range []func(){
		func() { New(nil) },
		func() { NewConstrained(nil, trueConstraint{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("nil graph accepted")
				}
			}()
			fn()
		}()
	}
	d := domain.MustLine("v", 3)
	p := NewConstrained(secgraph.NewComplete(d), trueConstraint{})
	if p.Constraints() == nil {
		t.Fatal("Constraints() lost the set")
	}
}

// The default (edge-scanning) branch of PartitionHistogramSensitivity:
// explicit graphs are not special-cased.
func TestPartitionHistogramSensitivityExplicitGraph(t *testing.T) {
	d := domain.MustLine("v", 6)
	part, err := domain.NewUniformGrid(d, []int{3}) // blocks {0,1,2}, {3,4,5}
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// Within-block edges only: sensitivity 0.
	within, err := secgraph.NewExplicit(d, "within")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	if err := within.AddEdge(0, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := within.AddEdge(4, 5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	s, err := New(within).PartitionHistogramSensitivity(part)
	if err != nil {
		t.Fatalf("PartitionHistogramSensitivity: %v", err)
	}
	if s != 0 {
		t.Fatalf("within-block explicit sensitivity = %v, want 0", s)
	}
	// One crossing edge: sensitivity 2.
	crossing, err := secgraph.NewExplicit(d, "crossing")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	if err := crossing.AddEdge(2, 3); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	s, err = New(crossing).PartitionHistogramSensitivity(part)
	if err != nil {
		t.Fatalf("PartitionHistogramSensitivity: %v", err)
	}
	if s != 2 {
		t.Fatalf("crossing explicit sensitivity = %v, want 2", s)
	}
}
