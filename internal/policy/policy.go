// Package policy defines Blowfish privacy policies P = (T, G, I_Q) and the
// policy-specific global sensitivity S(f, P) that mechanisms calibrate
// noise with (Definitions 3.1, 4.1, 5.1 of the paper).
//
// The package provides
//
//   - the Policy type combining a discriminative secret graph with optional
//     publicly known constraints,
//   - analytic sensitivities for the workloads studied in Sections 5-7
//     (histograms, cumulative histograms, linear queries, k-means queries),
//   - an exact, exponential-time neighbor enumerator and sensitivity oracle
//     for small domains, used throughout the test suite to validate every
//     analytic formula against Definition 4.1 directly.
package policy

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
	"blowfish/internal/secgraph"
)

// ConstraintSet is the I_Q component of a policy: the set of databases
// consistent with publicly known deterministic constraints Q. The concrete
// constraint machinery (count queries, marginals, policy graphs) lives in
// package constraints; policy only needs membership tests.
type ConstraintSet interface {
	// Satisfied reports whether ds ∈ I_Q.
	Satisfied(ds *domain.Dataset) bool
	// Name describes the constraint set for diagnostics.
	Name() string
}

// Policy is a Blowfish privacy policy (T, G, I_Q). T is implied by G's
// domain. A nil constraint set denotes I_n: all databases of the public
// cardinality are possible.
type Policy struct {
	g secgraph.Graph
	q ConstraintSet
	// participants restricts secrets to a subset of tuple ids; nil means
	// every individual has secrets (the paper's default of uniform
	// discriminative pairs).
	participants map[int]bool
}

// New creates an unconstrained policy (T, G, I_n).
func New(g secgraph.Graph) *Policy {
	if g == nil {
		panic("policy: nil secret graph")
	}
	return &Policy{g: g}
}

// NewConstrained creates a policy (T, G, I_Q) with publicly known
// constraints.
func NewConstrained(g secgraph.Graph, q ConstraintSet) *Policy {
	if g == nil {
		panic("policy: nil secret graph")
	}
	return &Policy{g: g, q: q}
}

// Differential returns the policy equivalent to ε-differential privacy over
// d: full-domain secrets and no constraints (Section 4.2).
func Differential(d *domain.Domain) *Policy {
	return New(secgraph.NewComplete(d))
}

// Domain returns T.
func (p *Policy) Domain() *domain.Domain { return p.g.Domain() }

// Graph returns the discriminative secret graph G.
func (p *Policy) Graph() secgraph.Graph { return p.g }

// Constraints returns the constraint set, or nil when unconstrained.
func (p *Policy) Constraints() ConstraintSet { return p.q }

// Unconstrained reports whether I_Q = I_n.
func (p *Policy) Unconstrained() bool { return p.q == nil }

// Name renders a short description such as "(T, L1|θ=100, In)".
func (p *Policy) Name() string {
	q := "In"
	if p.q != nil {
		q = p.q.Name()
	}
	return fmt.Sprintf("(T, %s, %s)", p.g.Name(), q)
}

// ErrConstrained is returned by the analytic sensitivity helpers, which
// apply only to unconstrained policies; constrained histogram sensitivity
// is provided by package constraints (Section 8).
var ErrConstrained = errors.New("policy: analytic sensitivity requires an unconstrained policy; see package constraints")

// HistogramSensitivity returns S(h, P) for the complete histogram query h
// under an unconstrained policy: 2 if G has any edge, else 0 (Section 5).
func (p *Policy) HistogramSensitivity() (float64, error) {
	if p.q != nil {
		return 0, ErrConstrained
	}
	has, err := secgraph.HasAnyEdge(p.g)
	if err != nil {
		return 0, err
	}
	if has {
		return 2, nil
	}
	return 0, nil
}

// PartitionHistogramSensitivity returns S(h_B, P) for the histogram over
// the blocks of part: 2 when some secret pair crosses two blocks, 0 when
// every edge of G stays within a block (then h_B is released exactly — the
// "coarse grid" release of Section 5).
func (p *Policy) PartitionHistogramSensitivity(part domain.Partition) (float64, error) {
	if p.q != nil {
		return 0, ErrConstrained
	}
	d := p.Domain()
	if !d.Equal(part.Domain()) {
		return 0, errors.New("policy: partition is over a different domain")
	}
	switch g := p.g.(type) {
	case *secgraph.PartitionGraph:
		// Sensitivity is 0 iff the policy partition refines part.
		refines, err := refinesPartition(g.Partition(), part)
		if err != nil {
			return 0, err
		}
		if refines {
			return 0, nil
		}
		return 2, nil
	case *secgraph.Complete, *secgraph.AttributeGraph, *secgraph.DistanceThreshold:
		// These graphs connect the whole lattice (when they have any edge at
		// all), so some edge crosses blocks iff at least two blocks are
		// occupied.
		has, err := secgraph.HasAnyEdge(p.g)
		if err != nil {
			return 0, err
		}
		if !has {
			return 0, nil
		}
		multi, err := multipleOccupiedBlocks(part)
		if err != nil {
			return 0, err
		}
		if multi {
			return 2, nil
		}
		return 0, nil
	default:
		crosses := false
		err := secgraph.Edges(p.g, func(x, y domain.Point) bool {
			if part.Block(x) != part.Block(y) {
				crosses = true
				return false
			}
			return true
		})
		if err != nil {
			return 0, err
		}
		if crosses {
			return 2, nil
		}
		return 0, nil
	}
}

// refinesPartition reports whether every block of fine lies inside a single
// block of coarse.
func refinesPartition(fine, coarse domain.Partition) (bool, error) {
	d := fine.Domain()
	if d.Size() > domain.MaxMaterializedSize {
		return false, domain.ErrDomainTooLarge
	}
	blockOf := make(map[int]int, fine.NumBlocks())
	ok := true
	err := d.Points(func(p domain.Point) bool {
		fb, cb := fine.Block(p), coarse.Block(p)
		if prev, seen := blockOf[fb]; seen {
			if prev != cb {
				ok = false
				return false
			}
		} else {
			blockOf[fb] = cb
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

// multipleOccupiedBlocks reports whether at least two blocks of part contain
// domain values.
func multipleOccupiedBlocks(part domain.Partition) (bool, error) {
	if part.NumBlocks() < 2 {
		return false, nil
	}
	d := part.Domain()
	if d.Size() > domain.MaxMaterializedSize {
		// Partitions over non-materializable domains with >= 2 blocks are
		// produced only by the grid constructors, whose blocks are all
		// non-empty.
		return true, nil
	}
	first := -1
	multi := false
	err := d.Points(func(p domain.Point) bool {
		b := part.Block(p)
		if first == -1 {
			first = b
			return true
		}
		if b != first {
			multi = true
			return false
		}
		return true
	})
	return multi, err
}

// SumSensitivity returns S(qsum, P): the policy-specific sensitivity of the
// per-cluster coordinate-sum query used by private k-means. By Lemma 6.1 a
// tuple change along an edge (x, y) alters two cluster sums by at most
// L1(x,y) each, so S = 2·MaxEdgeDistance (2·d(T) under differential
// privacy).
func (p *Policy) SumSensitivity() (float64, error) {
	if p.q != nil {
		return 0, ErrConstrained
	}
	return 2 * p.g.MaxEdgeDistance(), nil
}

// CumulativeHistogramSensitivity returns S(S_T, P) for the cumulative
// histogram over a one-dimensional ordered domain: a change from x to y
// shifts the |x−y| prefix counts between them by one, so S equals the
// largest edge length — θ for G^{d,θ} (Section 7.2), |T|−1 for the complete
// graph.
func (p *Policy) CumulativeHistogramSensitivity() (float64, error) {
	if p.q != nil {
		return 0, ErrConstrained
	}
	if p.Domain().NumAttrs() != 1 {
		return 0, errors.New("policy: cumulative histogram requires a one-dimensional ordered domain")
	}
	return p.g.MaxEdgeDistance(), nil
}

// LinearQuerySensitivity returns S(f_w, P) for the weighted per-individual
// sum f_w(D) = Σ_i w_i·value(t_i) over a one-dimensional domain:
// max_i |w_i| times the largest edge length (Section 5's linear sum query
// example).
func (p *Policy) LinearQuerySensitivity(w []float64) (float64, error) {
	if p.q != nil {
		return 0, ErrConstrained
	}
	if p.Domain().NumAttrs() != 1 {
		return 0, errors.New("policy: linear query requires a one-dimensional domain")
	}
	maxW := 0.0
	for _, wi := range w {
		if a := math.Abs(wi); a > maxW {
			maxW = a
		}
	}
	return maxW * p.g.MaxEdgeDistance(), nil
}

// WithParticipants returns a copy of the policy whose secrets pertain only
// to the given tuple ids. Section 3.1 models privacy-agnostic individuals —
// people who do not mind their value being disclosed — by removing every
// discriminative pair that involves them; this constructor is that
// specification. Ids absent from the list have no secrets: no neighbor pair
// differs on them, and mechanisms may release their contribution exactly.
//
// A nil participant list (the default policy) means every individual
// participates. Sensitivities computed by the analytic helpers are
// unchanged as long as at least one individual participates; with an empty
// participant set every query has sensitivity 0.
func (p *Policy) WithParticipants(ids []int) *Policy {
	cp := *p
	cp.participants = make(map[int]bool, len(ids))
	for _, id := range ids {
		cp.participants[id] = true
	}
	return &cp
}

// Participates reports whether tuple id carries secrets under this policy.
func (p *Policy) Participates(id int) bool {
	if p.participants == nil {
		return true
	}
	return p.participants[id]
}

// AllParticipate reports whether the policy restricts secrets to a subset
// of individuals.
func (p *Policy) AllParticipate() bool { return p.participants == nil }
