package policy

import (
	"math"
	"testing"

	"blowfish/internal/domain"
	"blowfish/internal/secgraph"
)

func TestPolicyBasics(t *testing.T) {
	d := domain.MustLine("v", 5)
	p := Differential(d)
	if !p.Unconstrained() {
		t.Fatal("Differential policy reports constrained")
	}
	if p.Domain() != d {
		t.Fatal("Domain not propagated")
	}
	if got, want := p.Name(), "(T, full, In)"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	g := secgraph.MustDistanceThreshold(d, 2)
	p2 := New(g)
	if p2.Graph() != g {
		t.Fatal("Graph not propagated")
	}
}

type trueConstraint struct{}

func (trueConstraint) Satisfied(*domain.Dataset) bool { return true }
func (trueConstraint) Name() string                   { return "IQ(true)" }

func TestConstrainedPolicy(t *testing.T) {
	d := domain.MustLine("v", 4)
	p := NewConstrained(secgraph.NewComplete(d), trueConstraint{})
	if p.Unconstrained() {
		t.Fatal("constrained policy reports unconstrained")
	}
	if got, want := p.Name(), "(T, full, IQ(true))"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	if _, err := p.HistogramSensitivity(); err != ErrConstrained {
		t.Fatalf("HistogramSensitivity on constrained policy: err = %v, want ErrConstrained", err)
	}
	if _, err := p.SumSensitivity(); err != ErrConstrained {
		t.Fatalf("SumSensitivity err = %v, want ErrConstrained", err)
	}
}

func TestHistogramSensitivityAnalytic(t *testing.T) {
	d := domain.MustLine("v", 6)
	ident, err := domain.Identity(d)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	cases := []struct {
		g    secgraph.Graph
		want float64
	}{
		{secgraph.NewComplete(d), 2},
		{secgraph.NewAttribute(d), 2},
		{secgraph.MustDistanceThreshold(d, 2), 2},
		{secgraph.NewPartition(ident), 0}, // edgeless
	}
	for _, c := range cases {
		got, err := New(c.g).HistogramSensitivity()
		if err != nil {
			t.Fatalf("HistogramSensitivity(%s): %v", c.g.Name(), err)
		}
		if got != c.want {
			t.Errorf("HistogramSensitivity(%s) = %v, want %v", c.g.Name(), got, c.want)
		}
	}
}

// histogramQuery adapts Dataset.Histogram to the oracle's query signature.
func histogramQuery(ds *domain.Dataset) []float64 {
	h, err := ds.Histogram()
	if err != nil {
		panic(err)
	}
	return h
}

func cumulativeQuery(ds *domain.Dataset) []float64 {
	s, err := ds.CumulativeHistogram()
	if err != nil {
		panic(err)
	}
	return s
}

func TestHistogramSensitivityMatchesOracle(t *testing.T) {
	d := domain.MustLine("v", 5)
	part, err := domain.NewUniformGrid(d, []int{2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	graphs := []secgraph.Graph{
		secgraph.NewComplete(d),
		secgraph.MustDistanceThreshold(d, 1),
		secgraph.MustDistanceThreshold(d, 3),
		secgraph.NewPartition(part),
	}
	for _, g := range graphs {
		p := New(g)
		want, err := p.HistogramSensitivity()
		if err != nil {
			t.Fatalf("HistogramSensitivity(%s): %v", g.Name(), err)
		}
		o, err := NewOracle(p, 3)
		if err != nil {
			t.Fatalf("NewOracle: %v", err)
		}
		if got := o.Sensitivity(histogramQuery); got != want {
			t.Errorf("%s: oracle S(h,P) = %v, analytic = %v", g.Name(), got, want)
		}
	}
}

func TestCumulativeSensitivityMatchesOracle(t *testing.T) {
	d := domain.MustLine("v", 6)
	graphs := []secgraph.Graph{
		secgraph.NewComplete(d),              // |T|-1 = 5
		secgraph.MustDistanceThreshold(d, 1), // line graph: 1
		secgraph.MustDistanceThreshold(d, 2), // 2
		secgraph.MustDistanceThreshold(d, 4), // 4
	}
	for _, g := range graphs {
		p := New(g)
		want, err := p.CumulativeHistogramSensitivity()
		if err != nil {
			t.Fatalf("CumulativeHistogramSensitivity(%s): %v", g.Name(), err)
		}
		o, err := NewOracle(p, 3)
		if err != nil {
			t.Fatalf("NewOracle: %v", err)
		}
		if got := o.Sensitivity(cumulativeQuery); got != want {
			t.Errorf("%s: oracle S(S_T,P) = %v, analytic = %v", g.Name(), got, want)
		}
	}
	// Known values from the paper.
	p := New(secgraph.NewComplete(d))
	s, err := p.CumulativeHistogramSensitivity()
	if err != nil || s != 5 {
		t.Errorf("complete cumulative sensitivity = %v (err %v), want |T|-1 = 5", s, err)
	}
	line, err := secgraph.NewLine(d)
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	s, err = New(line).CumulativeHistogramSensitivity()
	if err != nil || s != 1 {
		t.Errorf("line cumulative sensitivity = %v (err %v), want 1", s, err)
	}
	// Multi-dimensional domains are rejected.
	if _, err := New(secgraph.NewComplete(domain.MustGrid(3, 3))).CumulativeHistogramSensitivity(); err == nil {
		t.Error("cumulative sensitivity accepted a 2-D domain")
	}
}

func TestSumSensitivityLemma61(t *testing.T) {
	// Lemma 6.1: S(qsum, P) = 2·d(T) under G^full, 2·max|A| under G^attr,
	// 2θ under G^{L1,θ}, 2·max_j d(Pj) under G^P.
	d := domain.MustNew(
		domain.Attribute{Name: "a", Size: 4},
		domain.Attribute{Name: "b", Size: 7},
	)
	part, err := domain.NewUniformGrid(d, []int{2, 3})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	cases := []struct {
		g    secgraph.Graph
		want float64
	}{
		{secgraph.NewComplete(d), 2 * 9},              // 2·d(T) = 2·(3+6)
		{secgraph.NewAttribute(d), 2 * 6},             // 2·max(3,6)
		{secgraph.MustDistanceThreshold(d, 2), 2 * 2}, // 2θ
		{secgraph.NewPartition(part), 2 * 3},          // blocks are 2x3 boxes: d = 1+2
	}
	for _, c := range cases {
		got, err := New(c.g).SumSensitivity()
		if err != nil {
			t.Fatalf("SumSensitivity(%s): %v", c.g.Name(), err)
		}
		if got != c.want {
			t.Errorf("SumSensitivity(%s) = %v, want %v", c.g.Name(), got, c.want)
		}
	}
}

func TestLinearQuerySensitivity(t *testing.T) {
	d := domain.MustLine("salary", 11) // values 0..10
	w := []float64{0.5, -2, 1}
	// G^full: (b-a)·max|w| = 10·2 = 20 (Section 5's example).
	got, err := New(secgraph.NewComplete(d)).LinearQuerySensitivity(w)
	if err != nil {
		t.Fatalf("LinearQuerySensitivity: %v", err)
	}
	if got != 20 {
		t.Errorf("full-domain linear sensitivity = %v, want 20", got)
	}
	// G^{d,θ}: θ·max|w| = 3·2 = 6.
	got, err = New(secgraph.MustDistanceThreshold(d, 3)).LinearQuerySensitivity(w)
	if err != nil {
		t.Fatalf("LinearQuerySensitivity: %v", err)
	}
	if got != 6 {
		t.Errorf("θ=3 linear sensitivity = %v, want 6", got)
	}
	// Oracle cross-check with per-id weights.
	p := New(secgraph.MustDistanceThreshold(domain.MustLine("v", 5), 2))
	o, err := NewOracle(p, 3)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	weights := []float64{1, -0.5, 2}
	linear := func(ds *domain.Dataset) []float64 {
		var sum float64
		for i := 0; i < ds.Len(); i++ {
			sum += weights[i] * float64(ds.At(i))
		}
		return []float64{sum}
	}
	want, err := p.LinearQuerySensitivity(weights)
	if err != nil {
		t.Fatalf("LinearQuerySensitivity: %v", err)
	}
	if got := o.Sensitivity(linear); got != want {
		t.Errorf("oracle linear sensitivity = %v, analytic = %v", got, want)
	}
}

func TestPartitionHistogramSensitivity(t *testing.T) {
	d := domain.MustLine("v", 8)
	fine, err := domain.NewUniformGrid(d, []int{2}) // 4 blocks
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	coarse, err := domain.NewUniformGrid(d, []int{4}) // 2 blocks
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// Policy partition = fine; histogram over coarse: fine refines coarse,
	// so the coarse histogram has sensitivity 0 (exact release).
	pFine := New(secgraph.NewPartition(fine))
	s, err := pFine.PartitionHistogramSensitivity(coarse)
	if err != nil {
		t.Fatalf("PartitionHistogramSensitivity: %v", err)
	}
	if s != 0 {
		t.Errorf("refining partition sensitivity = %v, want 0", s)
	}
	// Policy partition = coarse; histogram over fine: secret pairs cross
	// fine blocks, sensitivity 2.
	pCoarse := New(secgraph.NewPartition(coarse))
	s, err = pCoarse.PartitionHistogramSensitivity(fine)
	if err != nil {
		t.Fatalf("PartitionHistogramSensitivity: %v", err)
	}
	if s != 2 {
		t.Errorf("crossing partition sensitivity = %v, want 2", s)
	}
	// Complete graph: 2 as soon as the histogram has >= 2 occupied blocks.
	s, err = Differential(d).PartitionHistogramSensitivity(coarse)
	if err != nil {
		t.Fatalf("PartitionHistogramSensitivity: %v", err)
	}
	if s != 2 {
		t.Errorf("complete-graph partition sensitivity = %v, want 2", s)
	}
	// Oracle cross-checks.
	for name, pol := range map[string]*Policy{"fine": pFine, "coarse": pCoarse} {
		for partName, part := range map[string]domain.Partition{"fine": fine, "coarse": coarse} {
			want, err := pol.PartitionHistogramSensitivity(part)
			if err != nil {
				t.Fatalf("PartitionHistogramSensitivity: %v", err)
			}
			o, err := NewOracle(pol, 2)
			if err != nil {
				t.Fatalf("NewOracle: %v", err)
			}
			q := func(ds *domain.Dataset) []float64 {
				h, err := ds.PartitionHistogram(part)
				if err != nil {
					panic(err)
				}
				return h
			}
			if got := o.Sensitivity(q); got != want {
				t.Errorf("policy %s over partition %s: oracle = %v, analytic = %v", name, partName, got, want)
			}
		}
	}
	// Mismatched domain.
	other, err := domain.NewUniformGrid(domain.MustLine("w", 9), []int{3})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if _, err := pFine.PartitionHistogramSensitivity(other); err == nil {
		t.Error("foreign-domain partition accepted")
	}
}

func TestForEachDataset(t *testing.T) {
	d := domain.MustLine("v", 3)
	count := 0
	err := ForEachDataset(d, 2, func(ds *domain.Dataset) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatalf("ForEachDataset: %v", err)
	}
	if count != 9 {
		t.Fatalf("enumerated %d datasets, want 9", count)
	}
	// Early stop.
	count = 0
	if err := ForEachDataset(d, 2, func(*domain.Dataset) bool { count++; return count < 4 }); err != nil {
		t.Fatalf("ForEachDataset: %v", err)
	}
	if count != 4 {
		t.Fatalf("early stop enumerated %d, want 4", count)
	}
	// Size limit.
	big := domain.MustLine("v", 1000)
	if err := ForEachDataset(big, 4, func(*domain.Dataset) bool { return true }); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
	if err := ForEachDataset(d, 0, func(*domain.Dataset) bool { return true }); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestUnconstrainedNeighbors(t *testing.T) {
	d := domain.MustLine("v", 4)
	p := New(secgraph.MustDistanceThreshold(d, 1)) // line graph
	o, err := NewOracle(p, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	d1, err := domain.FromPoints(d, []domain.Point{0, 2})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	// Neighbor: change tuple 1 from 2 to 3 (adjacent on the line).
	d2, err := domain.FromPoints(d, []domain.Point{0, 3})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if !o.IsNeighbor(d1, d2) {
		t.Error("adjacent single-tuple change not a neighbor")
	}
	// Not a neighbor: value jump of 2 on the line graph.
	d3, err := domain.FromPoints(d, []domain.Point{0, 0})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, d3) {
		t.Error("non-adjacent change reported as neighbor")
	}
	// Not a neighbor: two tuples changed.
	d4, err := domain.FromPoints(d, []domain.Point{1, 3})
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	if o.IsNeighbor(d1, d4) {
		t.Error("two-tuple change reported as neighbor")
	}
	// Identical datasets are not neighbors.
	if o.IsNeighbor(d1, d1) {
		t.Error("dataset is its own neighbor")
	}
}

func TestNeighborPairCountComplete(t *testing.T) {
	// Complete graph over |T|=3, n=2: neighbors = pairs differing in exactly
	// one tuple = #datasets × tuples × (|T|-1) / 2 = 9·2·2/2 = 18.
	d := domain.MustLine("v", 3)
	o, err := NewOracle(Differential(d), 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	count := 0
	o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool { count++; return true })
	if count != 18 {
		t.Fatalf("neighbor pairs = %d, want 18", count)
	}
}

func TestEq9HopDistanceScaling(t *testing.T) {
	// Eq. (9): for unconstrained policies an adversary distinguishes x from
	// y with effective budget ε·d_G(x, y). Verify the hop distances that
	// drive it: under G^{d,θ} a pair at L1 distance L has hop distance
	// ceil(L/θ); under G^P cross-partition pairs are unprotected (+Inf).
	d := domain.MustLine("v", 100)
	g := secgraph.MustDistanceThreshold(d, 10)
	if got, want := g.HopDistance(0, 95), 10.0; got != want {
		t.Errorf("hop distance = %v, want %v", got, want)
	}
	part, err := domain.NewUniformGrid(d, []int{50})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	pg := secgraph.NewPartition(part)
	if !math.IsInf(pg.HopDistance(0, 99), 1) {
		t.Error("cross-partition hop distance should be +Inf")
	}
}
