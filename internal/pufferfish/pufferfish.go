// Package pufferfish provides computational verification of the semantic
// guarantees of Section 4.2: Theorem 4.4 states that an unconstrained
// Blowfish policy (T, G, I_n) is exactly the Pufferfish instantiation whose
// adversaries hold arbitrary product (tuple-independent) priors and whose
// secret pairs are the edges of G.
//
// The package computes, exactly and by exhaustive enumeration over tiny
// domains, the posterior-odds ratio
//
//	P[M(D) = w | s_x^i, prior] / P[M(D) = w | s_y^i, prior]
//
// for discrete mechanisms with per-dataset output distributions in closed
// form (the geometric histogram mechanism). The test suite uses it to check
// both directions: correctly calibrated Blowfish mechanisms satisfy the
// Pufferfish bound for every sampled prior and output, and under-calibrated
// ones violate it. It also verifies the Kifer–Lin privacy axioms
// (transformation invariance and convexity) on the same mechanisms.
//
// Everything here is exponential in the database size; it is a verification
// harness, not a production mechanism.
package pufferfish

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// DiscreteMechanism is a mechanism whose exact output probability at any
// integer vector is computable — the requirement for exact semantic
// verification.
type DiscreteMechanism interface {
	// Domain returns the data domain.
	Domain() *domain.Domain
	// Prob returns P[M(D) = w] exactly.
	Prob(ds *domain.Dataset, w []int64) (float64, error)
}

// GeometricHistogram is the primary discrete mechanism for exact semantics
// checks: it releases the complete histogram with independent two-sided
// geometric noise of parameter α = exp(-1/scale) per cell, where
// scale = sensitivity/ε. Its output probability at any integer vector is a
// closed-form product.
type GeometricHistogram struct {
	dom   *domain.Domain
	scale float64
	alpha float64
}

var _ DiscreteMechanism = (*GeometricHistogram)(nil)

// NewGeometricHistogram creates the mechanism with noise scale
// sensitivity/eps.
func NewGeometricHistogram(d *domain.Domain, sensitivity, eps float64) (*GeometricHistogram, error) {
	if d.Size() > 64 {
		return nil, errors.New("pufferfish: domain too large for exact verification")
	}
	if sensitivity <= 0 || eps <= 0 {
		return nil, fmt.Errorf("pufferfish: invalid calibration sensitivity=%v eps=%v", sensitivity, eps)
	}
	scale := sensitivity / eps
	return &GeometricHistogram{dom: d, scale: scale, alpha: math.Exp(-1 / scale)}, nil
}

// pmf returns P[Z = z] for the two-sided geometric noise variable.
func (m *GeometricHistogram) pmf(z int64) float64 {
	a := m.alpha
	if z < 0 {
		z = -z
	}
	return (1 - a) / (1 + a) * math.Pow(a, float64(z))
}

// tail returns P[Z >= k].
func (m *GeometricHistogram) tail(k int64) float64 {
	a := m.alpha
	if k >= 1 {
		return math.Pow(a, float64(k)) / (1 + a)
	}
	return 1 - math.Pow(a, float64(1-k))/(1+a)
}

// Domain implements DiscreteMechanism.
func (m *GeometricHistogram) Domain() *domain.Domain { return m.dom }

// Prob returns P[M(D) = w] exactly.
func (m *GeometricHistogram) Prob(ds *domain.Dataset, w []int64) (float64, error) {
	h, err := ds.Histogram()
	if err != nil {
		return 0, err
	}
	if len(w) != len(h) {
		return 0, fmt.Errorf("pufferfish: output length %d, want %d", len(w), len(h))
	}
	p := 1.0
	for i := range h {
		p *= m.pmf(w[i] - int64(h[i]))
	}
	return p, nil
}

// ThresholdProb returns P[M(D)[cell] > c] exactly — the post-processed
// (binary) mechanism used by the transformation-invariance axiom check.
func (m *GeometricHistogram) ThresholdProb(ds *domain.Dataset, cell int, c int64) (float64, error) {
	h, err := ds.Histogram()
	if err != nil {
		return 0, err
	}
	if cell < 0 || cell >= len(h) {
		return 0, fmt.Errorf("pufferfish: cell %d out of range", cell)
	}
	return m.tail(c + 1 - int64(h[cell])), nil
}

// Sample draws one output.
func (m *GeometricHistogram) Sample(ds *domain.Dataset, src *noise.Source) ([]int64, error) {
	h, err := ds.Histogram()
	if err != nil {
		return nil, err
	}
	w := make([]int64, len(h))
	for i := range h {
		w[i] = int64(h[i]) + src.TwoSidedGeometric(m.scale)
	}
	return w, nil
}

// Prior is a product (tuple-independent) adversary belief: Prior[i][x] is
// the probability that tuple i takes value x. Rows must sum to 1.
type Prior [][]float64

// UniformPrior returns the uniform product prior over n tuples.
func UniformPrior(d *domain.Domain, n int) Prior {
	pr := make(Prior, n)
	for i := range pr {
		pr[i] = make([]float64, d.Size())
		for x := range pr[i] {
			pr[i][x] = 1 / float64(d.Size())
		}
	}
	return pr
}

// RandomPrior returns a random product prior (Dirichlet-ish via normalized
// exponentials), representing an arbitrary tuple-independent adversary.
func RandomPrior(d *domain.Domain, n int, src *noise.Source) Prior {
	pr := make(Prior, n)
	for i := range pr {
		pr[i] = make([]float64, d.Size())
		var sum float64
		for x := range pr[i] {
			v := -math.Log(1 - src.Uniform())
			pr[i][x] = v
			sum += v
		}
		for x := range pr[i] {
			pr[i][x] /= sum
		}
	}
	return pr
}

func (pr Prior) validate(d *domain.Domain) error {
	for i, row := range pr {
		if int64(len(row)) != d.Size() {
			return fmt.Errorf("pufferfish: prior row %d has %d entries, want %d", i, len(row), d.Size())
		}
		var sum float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("pufferfish: negative prior probability in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("pufferfish: prior row %d sums to %v", i, sum)
		}
	}
	return nil
}

// prob returns the prior probability of a complete dataset.
func (pr Prior) prob(ds *domain.Dataset) float64 {
	p := 1.0
	for i := 0; i < ds.Len(); i++ {
		p *= pr[i][ds.At(i)]
	}
	return p
}

// OutputProbGiven computes P[M(D) = w | t_i = x, prior, D ∈ I_Q] exactly:
// the mixture of the mechanism's output probability over all datasets with
// tuple i fixed to x, weighted by the (constraint-conditioned) prior. It
// returns an error when the conditioning event has zero probability.
func OutputProbGiven(m DiscreteMechanism, p *policy.Policy, pr Prior, i int, x domain.Point, w []int64) (float64, error) {
	d := m.Domain()
	if err := pr.validate(d); err != nil {
		return 0, err
	}
	n := len(pr)
	if i < 0 || i >= n {
		return 0, fmt.Errorf("pufferfish: tuple index %d out of range", i)
	}
	var num, denom float64
	q := p.Constraints()
	err := policy.ForEachDataset(d, n, func(ds *domain.Dataset) bool {
		if ds.At(i) != x {
			return true
		}
		if q != nil && !q.Satisfied(ds) {
			return true
		}
		pp := pr.prob(ds)
		if pp == 0 {
			return true
		}
		mp, perr := m.Prob(ds, w)
		if perr != nil {
			return false
		}
		num += pp * mp
		denom += pp
		return true
	})
	if err != nil {
		return 0, err
	}
	if denom == 0 {
		return 0, fmt.Errorf("pufferfish: conditioning event t_%d=%v has zero prior probability", i, x)
	}
	return num / denom, nil
}

// LossAt returns the Pufferfish privacy loss realized at output w against
// the given prior: the maximum |log P[M=w|s_x^i] − log P[M=w|s_y^i]| over
// all discriminative pairs (edges of the policy's graph) and tuple ids.
// Pairs whose conditioning events have zero prior probability are skipped
// (they carry no adversarial belief to protect).
func LossAt(m DiscreteMechanism, p *policy.Policy, pr Prior, w []int64) (float64, error) {
	g := p.Graph()
	maxLoss := 0.0
	n := len(pr)
	var visitErr error
	err := secgraph.Edges(g, func(x, y domain.Point) bool {
		for i := 0; i < n; i++ {
			if pr[i][x] == 0 || pr[i][y] == 0 {
				continue
			}
			px, err := OutputProbGiven(m, p, pr, i, x, w)
			if err != nil {
				continue // zero-probability conditioning under constraints
			}
			py, err := OutputProbGiven(m, p, pr, i, y, w)
			if err != nil {
				continue
			}
			if px == 0 || py == 0 {
				visitErr = errors.New("pufferfish: zero output probability (underflow)")
				return false
			}
			if l := math.Abs(math.Log(px) - math.Log(py)); l > maxLoss {
				maxLoss = l
			}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if visitErr != nil {
		return 0, visitErr
	}
	return maxLoss, nil
}

// BlowfishLossAt returns the Blowfish privacy loss realized at output w:
// the maximum |log P[M(D1)=w] − log P[M(D2)=w]| over neighbor pairs
// enumerated by the exact Definition 4.1 oracle.
func BlowfishLossAt(m DiscreteMechanism, o *policy.Oracle, w []int64) (float64, error) {
	maxLoss := 0.0
	var visitErr error
	o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		p1, err := m.Prob(d1, w)
		if err != nil {
			visitErr = err
			return false
		}
		p2, err := m.Prob(d2, w)
		if err != nil {
			visitErr = err
			return false
		}
		if p1 == 0 || p2 == 0 {
			visitErr = errors.New("pufferfish: zero output probability (underflow)")
			return false
		}
		if l := math.Abs(math.Log(p1) - math.Log(p2)); l > maxLoss {
			maxLoss = l
		}
		return true
	})
	return maxLoss, visitErr
}

// PairLossAt evaluates the posterior-odds loss at output w for an arbitrary
// (not necessarily adjacent) value pair (x, y) of tuple i. Used to verify
// the Eq. (9) protection gradient: pairs at hop distance k in G are
// protected with budget at most k·ε.
func PairLossAt(m DiscreteMechanism, p *policy.Policy, pr Prior, i int, x, y domain.Point, w []int64) (float64, error) {
	px, err := OutputProbGiven(m, p, pr, i, x, w)
	if err != nil {
		return 0, err
	}
	py, err := OutputProbGiven(m, p, pr, i, y, w)
	if err != nil {
		return 0, err
	}
	if px == 0 || py == 0 {
		return 0, errors.New("pufferfish: zero output probability (underflow)")
	}
	return math.Abs(math.Log(px) - math.Log(py)), nil
}

// MixtureProb returns p·P[M1(D)=w] + (1−p)·P[M2(D)=w]: the output
// probability of the convex combination of two mechanisms, for the
// convexity-axiom check of Kifer and Lin.
func MixtureProb(m1, m2 DiscreteMechanism, p float64, ds *domain.Dataset, w []int64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("pufferfish: invalid mixture weight %v", p)
	}
	p1, err := m1.Prob(ds, w)
	if err != nil {
		return 0, err
	}
	p2, err := m2.Prob(ds, w)
	if err != nil {
		return 0, err
	}
	return p*p1 + (1-p)*p2, nil
}

// GeometricCumulative releases the cumulative histogram S_T(D) of a
// one-dimensional ordered domain with independent two-sided geometric noise
// per prefix count — the discrete analogue of the Ordered Mechanism
// (Section 7.1). Its policy-specific sensitivity is 1 under the line graph
// and |x−y| for a change along (x, y), which makes the Eq. (9) protection
// gradient observable.
type GeometricCumulative struct {
	dom   *domain.Domain
	scale float64
	alpha float64
}

var _ DiscreteMechanism = (*GeometricCumulative)(nil)

// NewGeometricCumulative creates the mechanism with noise scale
// sensitivity/eps.
func NewGeometricCumulative(d *domain.Domain, sensitivity, eps float64) (*GeometricCumulative, error) {
	if d.NumAttrs() != 1 {
		return nil, errors.New("pufferfish: cumulative mechanism requires a one-dimensional domain")
	}
	if d.Size() > 64 {
		return nil, errors.New("pufferfish: domain too large for exact verification")
	}
	if sensitivity <= 0 || eps <= 0 {
		return nil, fmt.Errorf("pufferfish: invalid calibration sensitivity=%v eps=%v", sensitivity, eps)
	}
	scale := sensitivity / eps
	return &GeometricCumulative{dom: d, scale: scale, alpha: math.Exp(-1 / scale)}, nil
}

// Domain implements DiscreteMechanism.
func (m *GeometricCumulative) Domain() *domain.Domain { return m.dom }

// Prob implements DiscreteMechanism.
func (m *GeometricCumulative) Prob(ds *domain.Dataset, w []int64) (float64, error) {
	cum, err := ds.CumulativeHistogram()
	if err != nil {
		return 0, err
	}
	if len(w) != len(cum) {
		return 0, fmt.Errorf("pufferfish: output length %d, want %d", len(w), len(cum))
	}
	g := &GeometricHistogram{dom: m.dom, scale: m.scale, alpha: m.alpha}
	p := 1.0
	for i := range cum {
		p *= g.pmf(w[i] - int64(cum[i]))
	}
	return p, nil
}

// Sample draws one output.
func (m *GeometricCumulative) Sample(ds *domain.Dataset, src *noise.Source) ([]int64, error) {
	cum, err := ds.CumulativeHistogram()
	if err != nil {
		return nil, err
	}
	w := make([]int64, len(cum))
	for i := range cum {
		w[i] = int64(cum[i]) + src.TwoSidedGeometric(m.scale)
	}
	return w, nil
}
