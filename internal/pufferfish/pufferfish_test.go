package pufferfish

import (
	"math"
	"testing"

	"blowfish/internal/constraints"
	"blowfish/internal/domain"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

const tol = 1e-9

// sampleOutputs draws outputs from the prior-weighted mechanism mixture so
// loss checks cover the outputs that actually occur.
func sampleOutputs(t *testing.T, m *GeometricHistogram, d *domain.Domain, pr Prior, src *noise.Source, count int) [][]int64 {
	t.Helper()
	var out [][]int64
	for s := 0; s < count; s++ {
		ds := domain.NewDataset(d)
		for i := range pr {
			u := src.Uniform()
			x := 0
			for ; x < len(pr[i])-1; x++ {
				u -= pr[i][x]
				if u <= 0 {
					break
				}
			}
			ds.MustAdd(domain.Point(x))
		}
		w, err := m.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		out = append(out, w)
	}
	return out
}

// Theorem 4.4, forward direction: a geometric histogram mechanism
// calibrated to the Blowfish sensitivity satisfies the Pufferfish bound for
// every product prior — the posterior odds of any secret pair move by at
// most e^ε.
func TestTheorem44CalibratedMechanismSatisfiesPufferfish(t *testing.T) {
	const (
		eps = 0.7
		n   = 2
	)
	d := domain.MustLine("v", 3)
	for _, g := range []secgraph.Graph{
		secgraph.NewComplete(d),
		secgraph.MustDistanceThreshold(d, 1), // line graph
	} {
		pol := policy.New(g)
		sens, err := pol.HistogramSensitivity()
		if err != nil {
			t.Fatalf("HistogramSensitivity: %v", err)
		}
		m, err := NewGeometricHistogram(d, sens, eps)
		if err != nil {
			t.Fatalf("NewGeometricHistogram: %v", err)
		}
		src := noise.NewSource(1)
		priors := []Prior{UniformPrior(d, n)}
		for p := 0; p < 4; p++ {
			priors = append(priors, RandomPrior(d, n, src))
		}
		for pi, pr := range priors {
			for _, w := range sampleOutputs(t, m, d, pr, src, 12) {
				loss, err := LossAt(m, pol, pr, w)
				if err != nil {
					t.Fatalf("LossAt: %v", err)
				}
				if loss > eps+tol {
					t.Fatalf("%s prior %d: Pufferfish loss %v exceeds ε=%v at output %v",
						g.Name(), pi, loss, eps, w)
				}
			}
		}
	}
}

// Converse: an under-calibrated mechanism (noise for sensitivity 1 where
// the policy demands 2) violates the Pufferfish bound at some prior and
// output — the semantics detect the bug.
func TestUnderCalibratedMechanismViolatesPufferfish(t *testing.T) {
	const eps = 0.7
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m, err := NewGeometricHistogram(d, 1, eps) // too little noise
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	// Adversarial prior: tuple 0 is either value 0 or value 1; tuple 1
	// known to be value 2.
	pr := Prior{
		{0.5, 0.5, 0},
		{0, 0, 1},
	}
	// Adversarial output: the exact histogram of the dataset (0, 2).
	w := []int64{1, 0, 1}
	loss, err := LossAt(m, pol, pr, w)
	if err != nil {
		t.Fatalf("LossAt: %v", err)
	}
	if loss <= eps+tol {
		t.Fatalf("under-calibrated mechanism not detected: loss %v <= ε %v", loss, eps)
	}
	// Expected loss: the pair (0,1) changes two cells, each contributing
	// ε/sens = ε, totaling 2ε.
	if math.Abs(loss-2*eps) > 1e-6 {
		t.Fatalf("loss = %v, want 2ε = %v", loss, 2*eps)
	}
}

// Eq. (9): under the line-graph policy, the Ordered-Mechanism-style
// cumulative release (sensitivity 1) protects values at hop distance k with
// budget k·ε — adjacent values are ε-indistinguishable, distant values leak
// proportionally more but never unboundedly. (The complete histogram shows
// no gradient: its sensitivity is 2 under every graph.)
func TestEq9ProtectionGradient(t *testing.T) {
	const eps = 0.5
	d := domain.MustLine("v", 4)
	g := secgraph.MustDistanceThreshold(d, 1)
	pol := policy.New(g)
	sens, err := pol.CumulativeHistogramSensitivity() // 1 on the line graph
	if err != nil {
		t.Fatalf("CumulativeHistogramSensitivity: %v", err)
	}
	m, err := NewGeometricCumulative(d, sens, eps)
	if err != nil {
		t.Fatalf("NewGeometricCumulative: %v", err)
	}
	// Adversary: tuple 0 unknown, tuple 1 known.
	pr := Prior{
		{0.25, 0.25, 0.25, 0.25},
		{1, 0, 0, 0},
	}
	// Adversarial outputs distinguishing low from high values, plus samples.
	ds := domain.NewDataset(d)
	ds.MustAdd(1)
	ds.MustAdd(0)
	src := noise.NewSource(3)
	outputs := [][]int64{
		{2, 2, 2, 2}, // consistent with tuple-0 = 0
		{1, 1, 1, 2}, // consistent with tuple-0 = 3
		{1, 2, 2, 2},
	}
	for s := 0; s < 40; s++ {
		w, err := m.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		outputs = append(outputs, w)
	}
	worstAdj, worstHop2, worstHop3 := 0.0, 0.0, 0.0
	for _, w := range outputs {
		adj, err := PairLossAt(m, pol, pr, 0, 0, 1, w)
		if err != nil {
			t.Fatalf("PairLossAt: %v", err)
		}
		hop2, err := PairLossAt(m, pol, pr, 0, 0, 2, w)
		if err != nil {
			t.Fatalf("PairLossAt: %v", err)
		}
		hop3, err := PairLossAt(m, pol, pr, 0, 0, 3, w)
		if err != nil {
			t.Fatalf("PairLossAt: %v", err)
		}
		if adj > eps+tol {
			t.Fatalf("adjacent pair loss %v exceeds ε", adj)
		}
		if hop2 > 2*eps+tol {
			t.Fatalf("hop-2 pair loss %v exceeds 2ε", hop2)
		}
		if hop3 > 3*eps+tol {
			t.Fatalf("hop-3 pair loss %v exceeds 3ε", hop3)
		}
		worstAdj = math.Max(worstAdj, adj)
		worstHop2 = math.Max(worstHop2, hop2)
		worstHop3 = math.Max(worstHop3, hop3)
	}
	// The gradient is real: distant pairs leak more than adjacent ones.
	if worstHop2 <= worstAdj+tol {
		t.Fatalf("no protection gradient: hop-2 worst %v <= adjacent worst %v", worstHop2, worstAdj)
	}
	if worstHop3 <= worstHop2+tol {
		t.Fatalf("no protection gradient: hop-3 worst %v <= hop-2 worst %v", worstHop3, worstHop2)
	}
	// And the line-graph promise holds at the boundary: adjacent pairs use
	// the full ε somewhere.
	if worstAdj < eps*0.9 {
		t.Fatalf("adjacent worst %v far below ε=%v", worstAdj, eps)
	}
}

// Blowfish loss over exact Definition 4.1 neighbors is bounded by ε for the
// calibrated mechanism, and the bound is essentially attained.
func TestBlowfishLossCalibration(t *testing.T) {
	const eps = 0.8
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m, err := NewGeometricHistogram(d, 2, eps)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	worst := 0.0
	src := noise.NewSource(5)
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	ds.MustAdd(1)
	for s := 0; s < 40; s++ {
		w, err := m.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		loss, err := BlowfishLossAt(m, o, w)
		if err != nil {
			t.Fatalf("BlowfishLossAt: %v", err)
		}
		if loss > eps+tol {
			t.Fatalf("Blowfish loss %v exceeds ε=%v", loss, eps)
		}
		worst = math.Max(worst, loss)
	}
	if worst < eps*0.95 {
		t.Fatalf("worst observed loss %v far below ε=%v: calibration is loose", worst, eps)
	}
}

// Kifer–Lin axiom 1 (transformation invariance): thresholding the released
// counts — arbitrary post-processing — cannot increase the privacy loss.
func TestAxiomTransformationInvariance(t *testing.T) {
	const eps = 0.6
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m, err := NewGeometricHistogram(d, 2, eps)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
		for cell := 0; int64(cell) < d.Size(); cell++ {
			for c := int64(-2); c <= 3; c++ {
				p1, err := m.ThresholdProb(d1, cell, c)
				if err != nil {
					t.Fatalf("ThresholdProb: %v", err)
				}
				p2, err := m.ThresholdProb(d2, cell, c)
				if err != nil {
					t.Fatalf("ThresholdProb: %v", err)
				}
				// Check both the event and its complement.
				for _, pair := range [][2]float64{{p1, p2}, {1 - p1, 1 - p2}} {
					if pair[0] == 0 && pair[1] == 0 {
						continue
					}
					ratio := pair[0] / pair[1]
					if ratio < 1 {
						ratio = 1 / ratio
					}
					if math.Log(ratio) > eps+1e-6 {
						t.Fatalf("post-processed loss %v exceeds ε=%v (cell %d, c %d)",
							math.Log(ratio), eps, cell, c)
					}
				}
			}
		}
		return true
	})
}

// Kifer–Lin axiom 2 (convexity): a coin-flip choice between two
// (ε, P)-private mechanisms is (ε, P)-private.
func TestAxiomConvexity(t *testing.T) {
	const eps = 0.6
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m1, err := NewGeometricHistogram(d, 2, eps)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	m2, err := NewGeometricHistogram(d, 2, eps/2) // more noise: also ε-private
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	src := noise.NewSource(7)
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	ds.MustAdd(2)
	for s := 0; s < 25; s++ {
		w, err := m1.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		violated := false
		o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
			p1, err := MixtureProb(m1, m2, 0.4, d1, w)
			if err != nil {
				t.Fatalf("MixtureProb: %v", err)
			}
			p2, err := MixtureProb(m1, m2, 0.4, d2, w)
			if err != nil {
				t.Fatalf("MixtureProb: %v", err)
			}
			ratio := p1 / p2
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if math.Log(ratio) > eps+1e-6 {
				violated = true
				return false
			}
			return true
		})
		if violated {
			t.Fatalf("mixture mechanism violates ε at output %v", w)
		}
	}
}

// Theorem 4.5 direction: with public constraints, the mechanism calibrated
// to the constrained policy-graph sensitivity keeps posterior odds bounded
// for constraint-conditioned product priors on this instance. (The paper
// proves Pufferfish ⟹ Blowfish under constraints and conjectures the
// converse; this is evidence on a concrete instance, not a proof.)
func TestTheorem45ConstrainedInstance(t *testing.T) {
	const eps = 0.9
	d := domain.MustNew(
		domain.Attribute{Name: "A1", Size: 2},
		domain.Attribute{Name: "A2", Size: 2},
	)
	m, err := constraints.NewMarginal(d, []int{0})
	if err != nil {
		t.Fatalf("NewMarginal: %v", err)
	}
	ref := domain.NewDataset(d)
	ref.MustAdd(d.MustEncode(0, 0))
	ref.MustAdd(d.MustEncode(1, 0))
	set, err := m.Set(ref)
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	g := secgraph.NewComplete(d)
	pol := policy.NewConstrained(g, set)
	sens := m.FullDomainSensitivity() // 4
	mech, err := NewGeometricHistogram(d, sens, eps)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	src := noise.NewSource(11)
	priors := []Prior{UniformPrior(d, 2)}
	for p := 0; p < 3; p++ {
		priors = append(priors, RandomPrior(d, 2, src))
	}
	for pi, pr := range priors {
		for s := 0; s < 8; s++ {
			w, err := mech.Sample(ref, src)
			if err != nil {
				t.Fatalf("Sample: %v", err)
			}
			loss, err := LossAt(mech, pol, pr, w)
			if err != nil {
				t.Fatalf("LossAt: %v", err)
			}
			if loss > eps+tol {
				t.Fatalf("prior %d: constrained Pufferfish loss %v exceeds ε=%v at %v", pi, loss, eps, w)
			}
		}
	}
}

func TestGeometricHistogramValidation(t *testing.T) {
	d := domain.MustLine("v", 3)
	if _, err := NewGeometricHistogram(d, 0, 1); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := NewGeometricHistogram(d, 2, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewGeometricHistogram(domain.MustLine("v", 1000), 2, 1); err == nil {
		t.Error("oversized domain accepted")
	}
	m, err := NewGeometricHistogram(d, 2, 1)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	if _, err := m.Prob(ds, []int64{1}); err == nil {
		t.Error("wrong output length accepted")
	}
	// pmf sums to ~1 over a wide window.
	var sum float64
	for z := int64(-200); z <= 200; z++ {
		sum += m.pmf(z)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
	// tail consistent with pmf.
	var tailSum float64
	for z := int64(3); z <= 300; z++ {
		tailSum += m.pmf(z)
	}
	if math.Abs(m.tail(3)-tailSum) > 1e-9 {
		t.Fatalf("tail(3) = %v, pmf sum = %v", m.tail(3), tailSum)
	}
}

func TestPriorValidation(t *testing.T) {
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m, err := NewGeometricHistogram(d, 2, 1)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	bad := Prior{{0.5, 0.5}} // wrong width
	if _, err := OutputProbGiven(m, pol, bad, 0, 0, []int64{0, 0, 0}); err == nil {
		t.Error("wrong-width prior accepted")
	}
	bad = Prior{{0.7, 0.7, 0.1}} // does not sum to 1
	if _, err := OutputProbGiven(m, pol, bad, 0, 0, []int64{0, 0, 0}); err == nil {
		t.Error("non-normalized prior accepted")
	}
	ok := Prior{{0, 1, 0}}
	if _, err := OutputProbGiven(m, pol, ok, 0, 0, []int64{0, 0, 0}); err == nil {
		t.Error("zero-probability conditioning accepted")
	}
}

// Theorem 4.1 (sequential composition), verified on exact output
// distributions: releasing M1(D) and M2(D) together has Blowfish loss at
// most ε1 + ε2, and the bound is essentially attained.
func TestTheorem41SequentialComposition(t *testing.T) {
	const (
		eps1 = 0.4
		eps2 = 0.3
	)
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m1, err := NewGeometricHistogram(d, 2, eps1)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	m2, err := NewGeometricCumulative(d, 2, eps2) // cumulative sens = |T|-1 = 2 under full graph
	if err != nil {
		t.Fatalf("NewGeometricCumulative: %v", err)
	}
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(0)
	ds.MustAdd(2)
	src := noise.NewSource(13)
	worst := 0.0
	for s := 0; s < 30; s++ {
		w1, err := m1.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		w2, err := m2.Sample(ds, src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		// Joint loss over neighbor pairs: independent mechanisms multiply.
		var visit func(d1, d2 *domain.Dataset) bool
		maxJoint := 0.0
		visit = func(d1, d2 *domain.Dataset) bool {
			p11, err := m1.Prob(d1, w1)
			if err != nil {
				t.Fatalf("Prob: %v", err)
			}
			p12, err := m2.Prob(d1, w2)
			if err != nil {
				t.Fatalf("Prob: %v", err)
			}
			p21, err := m1.Prob(d2, w1)
			if err != nil {
				t.Fatalf("Prob: %v", err)
			}
			p22, err := m2.Prob(d2, w2)
			if err != nil {
				t.Fatalf("Prob: %v", err)
			}
			loss := math.Abs(math.Log(p11*p12) - math.Log(p21*p22))
			if loss > maxJoint {
				maxJoint = loss
			}
			return true
		}
		o.ForEachNeighborPair(visit)
		if maxJoint > eps1+eps2+tol {
			t.Fatalf("joint loss %v exceeds ε1+ε2 = %v", maxJoint, eps1+eps2)
		}
		worst = math.Max(worst, maxJoint)
	}
	if worst < (eps1+eps2)*0.6 {
		t.Logf("note: worst joint loss %v well below budget %v (sampled outputs only)", worst, eps1+eps2)
	}
}

// Theorem 4.2 (parallel composition with the cardinality constraint):
// mechanisms over disjoint id-subsets jointly cost max(ε_i), verified on
// exact output distributions. M1 releases the histogram of tuple 0's
// sub-dataset, M2 of tuple 1's; a neighbor pair changes only one tuple, so
// only one sub-release differs.
func TestTheorem42ParallelComposition(t *testing.T) {
	const (
		eps1 = 0.5
		eps2 = 0.3
	)
	d := domain.MustLine("v", 3)
	pol := policy.Differential(d)
	m1, err := NewGeometricHistogram(d, 2, eps1)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	m2, err := NewGeometricHistogram(d, 2, eps2)
	if err != nil {
		t.Fatalf("NewGeometricHistogram: %v", err)
	}
	o, err := policy.NewOracle(pol, 2)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	sub := func(ds *domain.Dataset, id int) *domain.Dataset {
		s, err := ds.Subset([]int{id})
		if err != nil {
			t.Fatalf("Subset: %v", err)
		}
		return s
	}
	ds := domain.NewDataset(d)
	ds.MustAdd(1)
	ds.MustAdd(2)
	src := noise.NewSource(17)
	budget := math.Max(eps1, eps2)
	for s := 0; s < 30; s++ {
		w1, err := m1.Sample(sub(ds, 0), src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		w2, err := m2.Sample(sub(ds, 1), src)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		maxJoint := 0.0
		o.ForEachNeighborPair(func(d1, d2 *domain.Dataset) bool {
			j1 := func(dd *domain.Dataset) float64 {
				p1, err := m1.Prob(sub(dd, 0), w1)
				if err != nil {
					t.Fatalf("Prob: %v", err)
				}
				p2, err := m2.Prob(sub(dd, 1), w2)
				if err != nil {
					t.Fatalf("Prob: %v", err)
				}
				return p1 * p2
			}
			loss := math.Abs(math.Log(j1(d1)) - math.Log(j1(d2)))
			if loss > maxJoint {
				maxJoint = loss
			}
			return true
		})
		if maxJoint > budget+tol {
			t.Fatalf("parallel joint loss %v exceeds max(ε1,ε2) = %v", maxJoint, budget)
		}
	}
}
