package secgraph

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
)

// BottomGraph implements the unknown-cardinality extension sketched at the
// end of Section 3.1: a distinguished value ⊥ ("the individual is not in
// the dataset") is appended to a one-dimensional ordered domain, and the
// secrets s_⊥^i = "individual i is absent" join the policy by connecting ⊥
// to every real value. Mechanisms over the extended domain then protect
// presence itself, not just values: a tuple moving from x to ⊥ is an
// ordinary neighbor transition.
//
// The extended domain has size |T|+1 with ⊥ at index |T|. Histogram
// releases over it carry the usual sensitivity 2; cumulative releases pay
// max(base, |T|) because an appearance/disappearance shifts up to |T|
// prefix counts — the quantitative price of hiding membership.
type BottomGraph struct {
	base Graph
	ext  *domain.Domain
}

// NewWithBottom wraps a base graph over a one-dimensional ordered domain.
func NewWithBottom(base Graph) (*BottomGraph, error) {
	d := base.Domain()
	if d.NumAttrs() != 1 {
		return nil, errors.New("secgraph: the ⊥ extension requires a one-dimensional ordered domain")
	}
	if d.Size() >= math.MaxInt32 {
		return nil, errors.New("secgraph: domain too large to extend")
	}
	ext, err := domain.Line(d.Attr(0).Name+"+bottom", int(d.Size())+1)
	if err != nil {
		return nil, err
	}
	return &BottomGraph{base: base, ext: ext}, nil
}

// Bottom returns the ⊥ point of the extended domain.
func (b *BottomGraph) Bottom() domain.Point { return domain.Point(b.ext.Size() - 1) }

// Base returns the wrapped graph.
func (b *BottomGraph) Base() Graph { return b.base }

// Domain implements Graph: the extended domain including ⊥.
func (b *BottomGraph) Domain() *domain.Domain { return b.ext }

// Name implements Graph.
func (b *BottomGraph) Name() string { return b.base.Name() + "+⊥" }

// Adjacent implements Graph: ⊥ is adjacent to every real value; real pairs
// follow the base graph.
func (b *BottomGraph) Adjacent(x, y domain.Point) bool {
	if x == y || !b.ext.Contains(x) || !b.ext.Contains(y) {
		return false
	}
	bot := b.Bottom()
	if x == bot || y == bot {
		return true
	}
	return b.base.Adjacent(x, y)
}

// HopDistance implements Graph: ⊥ is one hop from everything, so any two
// real values are at most two hops apart (through disappearing and
// reappearing), and closer if the base graph says so.
func (b *BottomGraph) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	bot := b.Bottom()
	if x == bot || y == bot {
		return 1
	}
	if d := b.base.HopDistance(x, y); d < 2 {
		return d
	}
	return 2
}

// MaxEdgeDistance implements Graph. In extended-domain coordinates the edge
// (0, ⊥) has length |T|, which is exactly the cumulative-histogram price of
// protecting presence; the base edges keep their lengths.
func (b *BottomGraph) MaxEdgeDistance() float64 {
	base := b.base.MaxEdgeDistance()
	if bot := float64(b.ext.Size() - 1); bot > base {
		return bot
	}
	return base
}

// LInfThreshold is the distance-threshold specification S^{d,θ} under the
// L∞ (Chebyshev) metric: two values are secrets when every attribute
// differs by at most θ. On location grids this protects square
// neighborhoods where the L1 variant protects diamonds; the paper's metric
// d is pluggable ("there is an inherent distance metric d associated with
// the points in the domain"), and this is the second natural instance.
type LInfThreshold struct {
	dom   *domain.Domain
	theta float64
}

// NewLInfThreshold returns the L∞ threshold graph with θ > 0.
func NewLInfThreshold(d *domain.Domain, theta float64) (*LInfThreshold, error) {
	if theta <= 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("secgraph: invalid distance threshold %v", theta)
	}
	return &LInfThreshold{dom: d, theta: theta}, nil
}

// Theta returns the threshold θ.
func (g *LInfThreshold) Theta() float64 { return g.theta }

// Domain implements Graph.
func (g *LInfThreshold) Domain() *domain.Domain { return g.dom }

// Name implements Graph.
func (g *LInfThreshold) Name() string { return fmt.Sprintf("Linf|θ=%g", g.theta) }

// Adjacent implements Graph.
func (g *LInfThreshold) Adjacent(x, y domain.Point) bool {
	return x != y && g.dom.LInf(x, y) <= g.theta
}

// HopDistance implements Graph: every step may move all attributes by up to
// θ simultaneously, so the hop distance is ceil(L∞(x,y)/θ).
func (g *LInfThreshold) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	return math.Ceil(g.dom.LInf(x, y) / g.theta)
}

// MaxEdgeDistance implements Graph: an edge may move every attribute by up
// to floor(θ), so the largest L1 span is Σ_i min(floor(θ), |Ai|−1).
func (g *LInfThreshold) MaxEdgeDistance() float64 {
	if g.dom.Size() < 2 {
		return 0
	}
	step := math.Floor(g.theta)
	var sum float64
	for i := 0; i < g.dom.NumAttrs(); i++ {
		r := float64(g.dom.Attr(i).Size - 1)
		if r > step {
			r = step
		}
		sum += r
	}
	return sum
}
