package secgraph

import (
	"math"
	"testing"

	"blowfish/internal/domain"
)

func TestBottomGraphBasics(t *testing.T) {
	d := domain.MustLine("v", 5)
	base := MustDistanceThreshold(d, 1)
	b, err := NewWithBottom(base)
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	if got, want := b.Domain().Size(), int64(6); got != want {
		t.Fatalf("extended size = %d, want %d", got, want)
	}
	bot := b.Bottom()
	if bot != domain.Point(5) {
		t.Fatalf("Bottom = %d, want 5", bot)
	}
	// ⊥ adjacent to every real value.
	for x := domain.Point(0); x < 5; x++ {
		if !b.Adjacent(x, bot) || !b.Adjacent(bot, x) {
			t.Fatalf("⊥ not adjacent to %d", x)
		}
	}
	if b.Adjacent(bot, bot) {
		t.Fatal("⊥ self-loop")
	}
	// Real pairs follow the base line graph.
	if !b.Adjacent(2, 3) || b.Adjacent(1, 3) {
		t.Fatal("base adjacency not preserved")
	}
	if b.Name() != "L1|θ=1+⊥" {
		t.Fatalf("Name = %q", b.Name())
	}
	// Multi-dimensional base rejected.
	if _, err := NewWithBottom(NewComplete(domain.MustGrid(3, 3))); err == nil {
		t.Error("2-D base accepted")
	}
}

func TestBottomGraphHopDistance(t *testing.T) {
	d := domain.MustLine("v", 6)
	base := MustDistanceThreshold(d, 1)
	b, err := NewWithBottom(base)
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	bot := b.Bottom()
	if got := b.HopDistance(2, bot); got != 1 {
		t.Fatalf("hop(2,⊥) = %v, want 1", got)
	}
	// Distant real values short-circuit through ⊥: min(base 5, 2) = 2.
	if got := b.HopDistance(0, 5); got != 2 {
		t.Fatalf("hop(0,5) = %v, want 2 via ⊥", got)
	}
	// Adjacent real values stay at 1.
	if got := b.HopDistance(3, 4); got != 1 {
		t.Fatalf("hop(3,4) = %v, want 1", got)
	}
	// Cross-check against BFS on the materialized extension.
	e, err := Materialize(b)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	n := b.Domain().Size()
	for x := int64(0); x < n; x++ {
		for y := int64(0); y < n; y++ {
			got := b.HopDistance(domain.Point(x), domain.Point(y))
			want := e.HopDistance(domain.Point(x), domain.Point(y))
			if got != want {
				t.Fatalf("hop(%d,%d) = %v, BFS says %v", x, y, got, want)
			}
		}
	}
}

func TestBottomGraphMaxEdgeDistance(t *testing.T) {
	d := domain.MustLine("v", 5)
	b, err := NewWithBottom(MustDistanceThreshold(d, 2))
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	// Edge (0, ⊥) spans the whole extended line: |T| = 5.
	if got := b.MaxEdgeDistance(); got != 5 {
		t.Fatalf("MaxEdgeDistance = %v, want 5", got)
	}
	// And it matches the brute-force maximum over edges.
	best := 0.0
	if err := Edges(b, func(x, y domain.Point) bool {
		if dist := b.Domain().L1(x, y); dist > best {
			best = dist
		}
		return true
	}); err != nil {
		t.Fatalf("Edges: %v", err)
	}
	if b.MaxEdgeDistance() != best {
		t.Fatalf("MaxEdgeDistance = %v, brute force %v", b.MaxEdgeDistance(), best)
	}
}

func TestLInfThresholdBasics(t *testing.T) {
	d := domain.MustGrid(10, 10)
	g, err := NewLInfThreshold(d, 2)
	if err != nil {
		t.Fatalf("NewLInfThreshold: %v", err)
	}
	a := d.MustEncode(0, 0)
	diag := d.MustEncode(2, 2) // LInf = 2: adjacent (L1 = 4 would not be under L1|θ=2)
	far := d.MustEncode(3, 0)  // LInf = 3: not adjacent
	if !g.Adjacent(a, diag) {
		t.Fatal("diagonal within θ not adjacent")
	}
	if g.Adjacent(a, far) {
		t.Fatal("value beyond θ adjacent")
	}
	// Hop distance = ceil(LInf/θ).
	corner := d.MustEncode(9, 9)
	if got, want := g.HopDistance(a, corner), 5.0; got != want {
		t.Fatalf("hop = %v, want %v", got, want)
	}
	if _, err := NewLInfThreshold(d, 0); err == nil {
		t.Error("θ=0 accepted")
	}
	if _, err := NewLInfThreshold(d, math.NaN()); err == nil {
		t.Error("NaN θ accepted")
	}
}

func TestLInfThresholdHopMatchesBFS(t *testing.T) {
	d := domain.MustGrid(5, 4)
	g, err := NewLInfThreshold(d, 2)
	if err != nil {
		t.Fatalf("NewLInfThreshold: %v", err)
	}
	e, err := Materialize(g)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	n := d.Size()
	for x := int64(0); x < n; x++ {
		for y := int64(0); y < n; y++ {
			got := g.HopDistance(domain.Point(x), domain.Point(y))
			want := e.HopDistance(domain.Point(x), domain.Point(y))
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("hop(%d,%d) = %v, BFS says %v", x, y, got, want)
			}
		}
	}
}

func TestLInfThresholdMaxEdgeMatchesBruteForce(t *testing.T) {
	for _, theta := range []float64{1, 2, 3.5, 100} {
		d := domain.MustGrid(6, 4)
		g, err := NewLInfThreshold(d, theta)
		if err != nil {
			t.Fatalf("NewLInfThreshold: %v", err)
		}
		best := 0.0
		if err := Edges(g, func(x, y domain.Point) bool {
			if dist := d.L1(x, y); dist > best {
				best = dist
			}
			return true
		}); err != nil {
			t.Fatalf("Edges: %v", err)
		}
		if got := g.MaxEdgeDistance(); got != best {
			t.Fatalf("θ=%v: MaxEdgeDistance = %v, brute force %v", theta, got, best)
		}
	}
}

// L∞ vs L1 at the same θ: the L∞ ball strictly contains the L1 ball in 2-D,
// so the L∞ policy has more secrets (weaker utility, stronger privacy).
func TestLInfContainsL1Ball(t *testing.T) {
	d := domain.MustGrid(8, 8)
	l1 := MustDistanceThreshold(d, 2)
	linf, err := NewLInfThreshold(d, 2)
	if err != nil {
		t.Fatalf("NewLInfThreshold: %v", err)
	}
	n := d.Size()
	extra := 0
	for x := int64(0); x < n; x++ {
		for y := x + 1; y < n; y++ {
			px, py := domain.Point(x), domain.Point(y)
			if l1.Adjacent(px, py) && !linf.Adjacent(px, py) {
				t.Fatalf("L1 edge (%d,%d) missing from L∞ graph", x, y)
			}
			if linf.Adjacent(px, py) && !l1.Adjacent(px, py) {
				extra++
			}
		}
	}
	if extra == 0 {
		t.Fatal("L∞ graph adds no edges over L1 at θ=2 in 2-D")
	}
}
