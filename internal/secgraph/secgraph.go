// Package secgraph implements discriminative secret graphs — the G in a
// Blowfish policy P = (T, G, I_Q).
//
// The vertices of G are the domain values; an edge (x, y) means an adversary
// must not be able to distinguish whether an individual's tuple is x or y
// (Section 3.1). The package provides the paper's standard specifications:
//
//   - Complete            — full-domain secrets S^full (differential privacy)
//   - AttributeGraph      — per-attribute secrets S^attr
//   - PartitionGraph      — partitioned secrets S^P
//   - DistanceThreshold   — metric secrets S^{d,θ} under L1 (line graph at θ=1
//     on one-dimensional domains)
//   - Explicit            — arbitrary adjacency lists for small domains
//
// Graphs over huge domains (e.g. 256³) are represented implicitly: adjacency
// and hop distance are O(m) per query and nothing per-value is materialized.
package secgraph

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"blowfish/internal/domain"
	"blowfish/internal/graph"
)

// Graph is a discriminative secret graph over a domain.
type Graph interface {
	// Domain returns the vertex domain T.
	Domain() *domain.Domain
	// Name identifies the specification, e.g. "full", "attr", "L1,θ=100".
	Name() string
	// Adjacent reports whether (x, y) is a discriminative pair. It is
	// symmetric and false for x == y.
	Adjacent(x, y domain.Point) bool
	// HopDistance returns d_G(x, y): the number of edges on a shortest
	// x-y path, 0 for x == y, and +Inf when x and y are disconnected.
	// Unconstrained Blowfish mechanisms distinguish x from y with budget at
	// most ε·d_G(x,y) (Eq. 9), so hop distance quantifies the protection
	// gradient of a policy.
	HopDistance(x, y domain.Point) float64
	// MaxEdgeDistance returns the largest L1 distance between the endpoints
	// of any edge, or 0 for an edgeless graph. Lemma 6.1 makes this the
	// half-sensitivity of the k-means qsum query; on one-dimensional ordered
	// domains it is also the sensitivity of the cumulative histogram.
	MaxEdgeDistance() float64
}

// Complete is the full-domain specification S^full (Eq. 4): every pair of
// distinct values is a secret pair, recovering differential privacy
// (Section 4.2).
type Complete struct {
	dom *domain.Domain
}

// NewComplete returns the complete graph over d.
func NewComplete(d *domain.Domain) *Complete { return &Complete{dom: d} }

// Domain implements Graph.
func (c *Complete) Domain() *domain.Domain { return c.dom }

// Name implements Graph.
func (c *Complete) Name() string { return "full" }

// Adjacent implements Graph.
func (c *Complete) Adjacent(x, y domain.Point) bool { return x != y }

// HopDistance implements Graph.
func (c *Complete) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	return 1
}

// MaxEdgeDistance implements Graph: the domain diameter d(T).
func (c *Complete) MaxEdgeDistance() float64 {
	if c.dom.Size() < 2 {
		return 0
	}
	return c.dom.Diameter()
}

// AttributeGraph is the per-attribute specification S^attr (Eq. 5): two
// values are adjacent when they differ in exactly one attribute, so an
// adversary cannot pin down any single attribute of an individual although
// combinations degrade gracefully with hop distance (= number of differing
// attributes).
type AttributeGraph struct {
	dom *domain.Domain
}

// NewAttribute returns the attribute graph over d.
func NewAttribute(d *domain.Domain) *AttributeGraph { return &AttributeGraph{dom: d} }

// Domain implements Graph.
func (a *AttributeGraph) Domain() *domain.Domain { return a.dom }

// Name implements Graph.
func (a *AttributeGraph) Name() string { return "attr" }

// Adjacent implements Graph.
func (a *AttributeGraph) Adjacent(x, y domain.Point) bool {
	return x != y && a.dom.HammingAttrs(x, y) == 1
}

// HopDistance implements Graph: the number of differing attributes.
func (a *AttributeGraph) HopDistance(x, y domain.Point) float64 {
	return float64(a.dom.HammingAttrs(x, y))
}

// MaxEdgeDistance implements Graph: max_A (|A|-1), the largest change a
// single attribute flip can make.
func (a *AttributeGraph) MaxEdgeDistance() float64 {
	// An edge exists only if some attribute has size >= 2.
	best := 0.0
	for i := 0; i < a.dom.NumAttrs(); i++ {
		if r := float64(a.dom.Attr(i).Size - 1); r > best {
			best = r
		}
	}
	return best
}

// PartitionGraph is the partitioned specification S^P (Eq. 6): each block of
// the partition induces a complete subgraph and there are no edges across
// blocks, so an adversary may learn an individual's block but nothing finer.
type PartitionGraph struct {
	part domain.Partition
}

// NewPartition returns the partition graph for part.
func NewPartition(part domain.Partition) *PartitionGraph { return &PartitionGraph{part: part} }

// Partition returns the underlying partition.
func (p *PartitionGraph) Partition() domain.Partition { return p.part }

// Domain implements Graph.
func (p *PartitionGraph) Domain() *domain.Domain { return p.part.Domain() }

// Name implements Graph.
func (p *PartitionGraph) Name() string {
	return fmt.Sprintf("partition|%d", p.part.NumBlocks())
}

// Adjacent implements Graph.
func (p *PartitionGraph) Adjacent(x, y domain.Point) bool {
	return x != y && p.part.Block(x) == p.part.Block(y)
}

// HopDistance implements Graph: 1 within a block, +Inf across blocks —
// values in different partitions may be fully distinguished (Section 4).
func (p *PartitionGraph) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	if p.part.Block(x) == p.part.Block(y) {
		return 1
	}
	return math.Inf(1)
}

// MaxEdgeDistance implements Graph: the largest block diameter max_j d(Pj).
func (p *PartitionGraph) MaxEdgeDistance() float64 { return p.part.BlockDiameter() }

// DistanceThreshold is the metric specification S^{d,θ} (Eq. 7) under the
// L1 (Manhattan) metric on attribute indexes: values at distance at most θ
// are adjacent. Pairs farther apart are protected with budget degrading as
// ε·ceil(d/θ) (Eq. 9). On a one-dimensional domain with θ = 1 this is the
// line graph of the ordered mechanism (Section 7.1).
type DistanceThreshold struct {
	dom   *domain.Domain
	theta float64
}

// NewDistanceThreshold returns the L1 threshold graph with the given θ > 0.
func NewDistanceThreshold(d *domain.Domain, theta float64) (*DistanceThreshold, error) {
	if theta <= 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("secgraph: invalid distance threshold %v", theta)
	}
	return &DistanceThreshold{dom: d, theta: theta}, nil
}

// MustDistanceThreshold is NewDistanceThreshold but panics on error.
func MustDistanceThreshold(d *domain.Domain, theta float64) *DistanceThreshold {
	g, err := NewDistanceThreshold(d, theta)
	if err != nil {
		panic(err)
	}
	return g
}

// NewLine returns the line graph G^{d,1} over a one-dimensional ordered
// domain: adjacent domain values form the only secret pairs (Section 7.1).
func NewLine(d *domain.Domain) (*DistanceThreshold, error) {
	if d.NumAttrs() != 1 {
		return nil, errors.New("secgraph: line graph requires a one-dimensional domain")
	}
	return NewDistanceThreshold(d, 1)
}

// Theta returns the distance threshold θ.
func (g *DistanceThreshold) Theta() float64 { return g.theta }

// Domain implements Graph.
func (g *DistanceThreshold) Domain() *domain.Domain { return g.dom }

// Name implements Graph.
func (g *DistanceThreshold) Name() string { return fmt.Sprintf("L1|θ=%g", g.theta) }

// Adjacent implements Graph.
func (g *DistanceThreshold) Adjacent(x, y domain.Point) bool {
	return x != y && g.dom.L1(x, y) <= g.theta
}

// HopDistance implements Graph. Because the L1 lattice admits monotone
// stepwise paths, the hop distance is exactly ceil(d(x,y)/θ).
func (g *DistanceThreshold) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	return math.Ceil(g.dom.L1(x, y) / g.theta)
}

// MaxEdgeDistance implements Graph: min(θ, d(T)) — θ itself unless the
// domain is smaller than the threshold.
func (g *DistanceThreshold) MaxEdgeDistance() float64 {
	if g.dom.Size() < 2 {
		return 0
	}
	if d := g.dom.Diameter(); d < g.theta {
		return d
	}
	// θ may be fractional; the largest realizable edge length is the
	// largest integer L1 distance not exceeding θ.
	return math.Floor(g.theta)
}

// maxMemoBytes caps the total memory the per-source BFS memo of one
// Explicit graph may hold (each entry is |T| int32s, so the source cap is
// maxMemoBytes / 4|T| — a byte bound, not a count bound, so huge domains
// cannot accumulate gigabytes of slices). Beyond the cap an arbitrary
// entry is evicted; eviction only costs a recomputation, never changes
// results.
const maxMemoBytes = 64 << 20

// Explicit is an arbitrary secret graph given by adjacency lists. It
// materializes per-vertex state and is restricted to small domains; it backs
// unit tests, the constraint machinery, and custom policies.
type Explicit struct {
	dom  *domain.Domain
	und  *graph.Undirected
	name string
	// maxEdge caches MaxEdgeDistance.
	maxEdge float64

	// mu guards dist, the memoized per-source hop-distance slices. Without
	// the memo every HopDistance call runs a fresh single-source BFS, which
	// turns all-pairs sensitivity loops into O(V²·(V+E)); with it each
	// source pays BFS once until AddEdge invalidates the cache.
	mu   sync.RWMutex
	dist map[int][]int32
}

// NewExplicit creates an empty explicit graph over d.
func NewExplicit(d *domain.Domain, name string) (*Explicit, error) {
	if d.Size() > domain.MaxMaterializedSize {
		return nil, domain.ErrDomainTooLarge
	}
	if name == "" {
		name = "explicit"
	}
	return &Explicit{dom: d, und: graph.NewUndirected(int(d.Size())), name: name}, nil
}

// AddEdge inserts the secret pair {x, y}. It invalidates any memoized hop
// distances: graphs are normally built fully before first use, so the
// invalidation is free on the common path.
func (e *Explicit) AddEdge(x, y domain.Point) error {
	if !e.dom.Contains(x) || !e.dom.Contains(y) {
		return domain.ErrPointOutOfRange
	}
	if err := e.und.AddEdge(int(x), int(y)); err != nil {
		return fmt.Errorf("secgraph: %w", err)
	}
	if d := e.dom.L1(x, y); d > e.maxEdge {
		e.maxEdge = d
	}
	e.mu.Lock()
	e.dist = nil
	e.mu.Unlock()
	return nil
}

// MaxMaterializeVertices caps the domain size Materialize accepts. The
// binding cost of materialization is the |T|² pair scan, so the cap is the
// square root of EdgeLimit — the same bound Edges applies to implicit
// graphs, and far tighter than NewExplicit's domain.MaxMaterializedSize
// guard, which only bounds per-vertex state.
const MaxMaterializeVertices = 1 << 12 // MaxMaterializeVertices² == EdgeLimit

// Materialize copies any Graph into an Explicit graph by enumerating all
// vertex pairs; it fails for domains above MaxMaterializeVertices, whose
// |T|² pair scan would exceed EdgeLimit.
func Materialize(g Graph) (*Explicit, error) {
	d := g.Domain()
	if d.Size() > MaxMaterializeVertices {
		return nil, fmt.Errorf("secgraph: refusing to materialize %d vertices (%d² pairs exceed the %d pair-scan limit)",
			d.Size(), d.Size(), int64(EdgeLimit))
	}
	e, err := NewExplicit(d, g.Name())
	if err != nil {
		return nil, err
	}
	n := d.Size()
	for x := int64(0); x < n; x++ {
		for y := x + 1; y < n; y++ {
			if g.Adjacent(domain.Point(x), domain.Point(y)) {
				if err := e.AddEdge(domain.Point(x), domain.Point(y)); err != nil {
					return nil, err
				}
			}
		}
	}
	return e, nil
}

// Domain implements Graph.
func (e *Explicit) Domain() *domain.Domain { return e.dom }

// Name implements Graph.
func (e *Explicit) Name() string { return e.name }

// Adjacent implements Graph.
func (e *Explicit) Adjacent(x, y domain.Point) bool {
	if !e.dom.Contains(x) || !e.dom.Contains(y) {
		return false
	}
	return e.und.HasEdge(int(x), int(y))
}

// HopDistance implements Graph via BFS, memoizing one distance slice per
// source so all-pairs loops pay O(V·(V+E)) instead of O(V²·(V+E)).
func (e *Explicit) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	if !e.dom.Contains(x) || !e.dom.Contains(y) {
		return math.Inf(1)
	}
	dist := e.DistancesFrom(x)
	if d := dist[int(y)]; d >= 0 {
		return float64(d)
	}
	return math.Inf(1)
}

// DistancesFrom returns the hop distances from x to every vertex (-1 where
// unreachable), serving the memoized slice when one exists. The returned
// slice is shared and must not be modified.
func (e *Explicit) DistancesFrom(x domain.Point) []int32 {
	s := int(x)
	e.mu.RLock()
	dist, ok := e.dist[s]
	e.mu.RUnlock()
	if ok {
		return dist
	}
	dist = e.ComputeDistances(s)
	maxSources := maxMemoBytes / (4 * len(dist))
	if maxSources < 1 {
		maxSources = 1
	}
	e.mu.Lock()
	if e.dist == nil {
		e.dist = make(map[int][]int32)
	}
	if cached, ok := e.dist[s]; ok {
		dist = cached // a racing computation won; share its slice
	} else {
		if len(e.dist) >= maxSources {
			for k := range e.dist {
				delete(e.dist, k)
				break
			}
		}
		e.dist[s] = dist
	}
	e.mu.Unlock()
	return dist
}

// ComputeDistances runs one single-source BFS and returns a fresh distance
// slice, bypassing (and never feeding) the memo — bulk precomputations
// that keep their own table use it so the memo does not retain a second
// copy of every slice.
func (e *Explicit) ComputeDistances(s int) []int32 {
	raw := e.und.BFSDistances(s)
	dist := make([]int32, len(raw))
	for i, d := range raw {
		dist[i] = int32(d)
	}
	return dist
}

// MaxEdgeDistance implements Graph.
func (e *Explicit) MaxEdgeDistance() float64 { return e.maxEdge }

// NumEdges returns the number of secret pairs.
func (e *Explicit) NumEdges() int { return e.und.M() }

// Neighbors returns the adjacency list of x; the slice must not be
// modified.
func (e *Explicit) Neighbors(x domain.Point) []int { return e.und.Neighbors(int(x)) }

// Components returns the number of connected components (isolated vertices
// included); PartitionGraph-like structure emerges when > 1.
func (e *Explicit) Components() int {
	_, sizes := e.und.Components()
	return len(sizes)
}

// ComponentLabels labels every vertex with its connected-component id in
// [0, #components) and returns the per-component sizes alongside.
func (e *Explicit) ComponentLabels() (labels []int, sizes []int) {
	return e.und.Components()
}

// EdgeLimit bounds how many vertex pairs Edges will scan for implicit
// graphs: |T|² must not exceed it.
const EdgeLimit = 1 << 24

// Edges enumerates the edges (x, y), x < y, of any Graph, calling fn for
// each; enumeration stops early when fn returns false. For Explicit graphs
// it walks adjacency lists; for implicit graphs it scans all vertex pairs
// and therefore requires |T|² <= EdgeLimit.
func Edges(g Graph, fn func(x, y domain.Point) bool) error {
	if e, ok := g.(*Explicit); ok {
		n := e.dom.Size()
		for x := int64(0); x < n; x++ {
			for _, y := range e.und.Neighbors(int(x)) {
				if int64(y) > x {
					if !fn(domain.Point(x), domain.Point(y)) {
						return nil
					}
				}
			}
		}
		return nil
	}
	d := g.Domain()
	if d.Size()*d.Size() > EdgeLimit {
		return fmt.Errorf("secgraph: domain %v too large for edge enumeration: %w", d, domain.ErrDomainTooLarge)
	}
	n := d.Size()
	for x := int64(0); x < n; x++ {
		for y := x + 1; y < n; y++ {
			if g.Adjacent(domain.Point(x), domain.Point(y)) {
				if !fn(domain.Point(x), domain.Point(y)) {
					return nil
				}
			}
		}
	}
	return nil
}

// HasAnyEdge reports whether g has at least one edge; the complete
// histogram sensitivity is 0 for edgeless graphs and 2 otherwise
// (footnote 4 / Section 5).
func HasAnyEdge(g Graph) (bool, error) {
	switch t := g.(type) {
	case *Explicit:
		return t.NumEdges() > 0, nil
	case *Complete:
		return t.dom.Size() >= 2, nil
	case *AttributeGraph:
		for i := 0; i < t.dom.NumAttrs(); i++ {
			if t.dom.Attr(i).Size >= 2 {
				return true, nil
			}
		}
		return false, nil
	case *DistanceThreshold:
		return t.dom.Size() >= 2 && t.theta >= 1, nil
	case *Product:
		// A factor edge (x_i, y_i) lifts to a product edge with every
		// choice of the remaining attributes, so the product has an edge
		// iff some factor does.
		for _, f := range t.factors {
			has, err := HasAnyEdge(f)
			if err != nil {
				return false, err
			}
			if has {
				return true, nil
			}
		}
		return false, nil
	case *PartitionGraph:
		// An edge exists iff some block holds two values. With fewer blocks
		// than values this is forced by pigeonhole; otherwise a positive
		// block diameter witnesses a two-point block and a zero diameter
		// means every block is a singleton. (A conservative upper-bound
		// diameter can only err toward reporting an edge.)
		if int64(t.part.NumBlocks()) < t.Domain().Size() {
			return true, nil
		}
		return t.part.BlockDiameter() > 0, nil
	}
	found := false
	err := Edges(g, func(x, y domain.Point) bool {
		found = true
		return false
	})
	return found, err
}
