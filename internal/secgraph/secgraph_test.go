package secgraph

import (
	"math"
	"testing"

	"blowfish/internal/domain"
)

// allGraphs returns one instance of every implicit specification over a
// small 2-D domain, for cross-checking generic properties.
func allGraphs(t *testing.T) []Graph {
	t.Helper()
	d := domain.MustGrid(5, 4)
	part, err := domain.NewUniformGrid(d, []int{2, 2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	dt, err := NewDistanceThreshold(d, 2)
	if err != nil {
		t.Fatalf("NewDistanceThreshold: %v", err)
	}
	return []Graph{
		NewComplete(d),
		NewAttribute(d),
		NewPartition(part),
		dt,
	}
}

func TestAdjacencyProperties(t *testing.T) {
	for _, g := range allGraphs(t) {
		t.Run(g.Name(), func(t *testing.T) {
			d := g.Domain()
			n := d.Size()
			for x := int64(0); x < n; x++ {
				px := domain.Point(x)
				if g.Adjacent(px, px) {
					t.Fatalf("self-loop at %d", x)
				}
				for y := x + 1; y < n; y++ {
					py := domain.Point(y)
					if g.Adjacent(px, py) != g.Adjacent(py, px) {
						t.Fatalf("asymmetric adjacency at (%d,%d)", x, y)
					}
				}
			}
		})
	}
}

func TestHopDistanceMatchesBFSOnMaterialized(t *testing.T) {
	for _, g := range allGraphs(t) {
		t.Run(g.Name(), func(t *testing.T) {
			e, err := Materialize(g)
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			d := g.Domain()
			n := d.Size()
			for x := int64(0); x < n; x++ {
				for y := int64(0); y < n; y++ {
					px, py := domain.Point(x), domain.Point(y)
					got := g.HopDistance(px, py)
					want := e.HopDistance(px, py)
					if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
						t.Fatalf("HopDistance(%d,%d) = %v, BFS says %v", x, y, got, want)
					}
				}
			}
		})
	}
}

func TestMaxEdgeDistanceMatchesBruteForce(t *testing.T) {
	for _, g := range allGraphs(t) {
		t.Run(g.Name(), func(t *testing.T) {
			d := g.Domain()
			best := 0.0
			if err := Edges(g, func(x, y domain.Point) bool {
				if dist := d.L1(x, y); dist > best {
					best = dist
				}
				return true
			}); err != nil {
				t.Fatalf("Edges: %v", err)
			}
			if got := g.MaxEdgeDistance(); got != best {
				t.Fatalf("MaxEdgeDistance = %v, brute force says %v", got, best)
			}
		})
	}
}

func TestCompleteGraph(t *testing.T) {
	d := domain.MustLine("v", 10)
	g := NewComplete(d)
	if !g.Adjacent(0, 9) || g.Adjacent(3, 3) {
		t.Fatal("complete adjacency wrong")
	}
	if got, want := g.HopDistance(0, 9), 1.0; got != want {
		t.Fatalf("HopDistance = %v, want %v", got, want)
	}
	if got, want := g.MaxEdgeDistance(), 9.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	single := NewComplete(domain.MustLine("v", 1))
	if single.MaxEdgeDistance() != 0 {
		t.Fatal("singleton domain should have no edges")
	}
}

func TestAttributeGraph(t *testing.T) {
	d := domain.MustNew(domain.Attribute{Name: "a", Size: 4}, domain.Attribute{Name: "b", Size: 6})
	g := NewAttribute(d)
	x := d.MustEncode(1, 2)
	sameA := d.MustEncode(1, 5)
	diffBoth := d.MustEncode(2, 3)
	if !g.Adjacent(x, sameA) {
		t.Fatal("one-attribute change not adjacent")
	}
	if g.Adjacent(x, diffBoth) {
		t.Fatal("two-attribute change adjacent")
	}
	if got, want := g.HopDistance(x, diffBoth), 2.0; got != want {
		t.Fatalf("HopDistance = %v, want %v", got, want)
	}
	if got, want := g.MaxEdgeDistance(), 5.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
}

func TestPartitionGraph(t *testing.T) {
	d := domain.MustLine("v", 8)
	part, err := domain.NewUniformGrid(d, []int{4})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	g := NewPartition(part)
	if !g.Adjacent(0, 3) {
		t.Fatal("same-block pair not adjacent")
	}
	if g.Adjacent(3, 4) {
		t.Fatal("cross-block pair adjacent")
	}
	if !math.IsInf(g.HopDistance(0, 7), 1) {
		t.Fatal("cross-block hop distance should be +Inf")
	}
	if got, want := g.MaxEdgeDistance(), 3.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	if g.Name() != "partition|2" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestDistanceThreshold(t *testing.T) {
	d := domain.MustGrid(10, 10)
	g := MustDistanceThreshold(d, 3)
	a := d.MustEncode(0, 0)
	b := d.MustEncode(1, 2) // L1 = 3
	c := d.MustEncode(2, 2) // L1 = 4
	if !g.Adjacent(a, b) {
		t.Fatal("pair at distance θ not adjacent")
	}
	if g.Adjacent(a, c) {
		t.Fatal("pair beyond θ adjacent")
	}
	// Hop distance = ceil(L1/θ).
	far := d.MustEncode(9, 9) // L1 = 18, ceil(18/3) = 6
	if got, want := g.HopDistance(a, far), 6.0; got != want {
		t.Fatalf("HopDistance = %v, want %v", got, want)
	}
	if got, want := g.MaxEdgeDistance(), 3.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	if _, err := NewDistanceThreshold(d, 0); err == nil {
		t.Error("θ=0 accepted")
	}
	if _, err := NewDistanceThreshold(d, math.Inf(1)); err == nil {
		t.Error("θ=Inf accepted")
	}
}

func TestDistanceThresholdHugeThetaClampsToDiameter(t *testing.T) {
	d := domain.MustLine("v", 5)
	g := MustDistanceThreshold(d, 100)
	if got, want := g.MaxEdgeDistance(), 4.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	// With θ >= diameter the graph is complete.
	if !g.Adjacent(0, 4) {
		t.Fatal("θ >= diameter should connect extremes")
	}
}

func TestLineGraph(t *testing.T) {
	d := domain.MustLine("v", 6)
	g, err := NewLine(d)
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	if !g.Adjacent(2, 3) || g.Adjacent(2, 4) {
		t.Fatal("line adjacency wrong")
	}
	if got, want := g.HopDistance(0, 5), 5.0; got != want {
		t.Fatalf("HopDistance = %v, want %v", got, want)
	}
	if got, want := g.MaxEdgeDistance(), 1.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	if _, err := NewLine(domain.MustGrid(3, 3)); err == nil {
		t.Error("NewLine accepted 2-D domain")
	}
}

func TestExplicitGraph(t *testing.T) {
	d := domain.MustLine("v", 5)
	e, err := NewExplicit(d, "test")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	if err := e.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := e.AddEdge(1, 3); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := e.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := e.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if !e.Adjacent(1, 0) {
		t.Fatal("explicit adjacency not symmetric")
	}
	if got, want := e.HopDistance(0, 3), 2.0; got != want {
		t.Fatalf("HopDistance = %v, want %v", got, want)
	}
	if !math.IsInf(e.HopDistance(0, 4), 1) {
		t.Fatal("disconnected pair should be +Inf")
	}
	if got, want := e.MaxEdgeDistance(), 2.0; got != want {
		t.Fatalf("MaxEdgeDistance = %v, want %v", got, want)
	}
	if got, want := e.NumEdges(), 2; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	// Components: {0,1,3} connected, {2} and {4} isolated.
	if got, want := e.Components(), 3; got != want {
		t.Fatalf("Components = %d, want %d", got, want)
	}
}

func TestEdgesEnumerationCounts(t *testing.T) {
	d := domain.MustLine("v", 7)
	line, err := NewLine(d)
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	n := 0
	if err := Edges(line, func(x, y domain.Point) bool {
		if y != x+1 {
			t.Fatalf("unexpected line edge (%d,%d)", x, y)
		}
		n++
		return true
	}); err != nil {
		t.Fatalf("Edges: %v", err)
	}
	if n != 6 {
		t.Fatalf("line graph has %d edges, want 6", n)
	}
	full := NewComplete(d)
	n = 0
	if err := Edges(full, func(x, y domain.Point) bool { n++; return true }); err != nil {
		t.Fatalf("Edges: %v", err)
	}
	if n != 21 { // 7 choose 2
		t.Fatalf("complete graph has %d edges, want 21", n)
	}
	// Early stop.
	n = 0
	if err := Edges(full, func(x, y domain.Point) bool { n++; return n < 3 }); err != nil {
		t.Fatalf("Edges: %v", err)
	}
	if n != 3 {
		t.Fatalf("early stop enumerated %d, want 3", n)
	}
}

func TestHasAnyEdge(t *testing.T) {
	d := domain.MustLine("v", 4)
	cases := []struct {
		g    Graph
		want bool
	}{
		{NewComplete(d), true},
		{NewComplete(domain.MustLine("v", 1)), false},
		{NewAttribute(d), true},
		{NewAttribute(domain.MustNew(domain.Attribute{Name: "a", Size: 1})), false},
		{MustDistanceThreshold(d, 1), true},
	}
	for _, c := range cases {
		got, err := HasAnyEdge(c.g)
		if err != nil {
			t.Fatalf("HasAnyEdge(%s): %v", c.g.Name(), err)
		}
		if got != c.want {
			t.Errorf("HasAnyEdge(%s) = %v, want %v", c.g.Name(), got, c.want)
		}
	}
	// Identity partition: every block is a singleton, no edges.
	ident, err := domain.Identity(d)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	got, err := HasAnyEdge(NewPartition(ident))
	if err != nil {
		t.Fatalf("HasAnyEdge: %v", err)
	}
	if got {
		t.Error("identity partition graph reported an edge")
	}
	// Empty explicit graph.
	e, err := NewExplicit(d, "")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	got, err = HasAnyEdge(e)
	if err != nil {
		t.Fatalf("HasAnyEdge: %v", err)
	}
	if got {
		t.Error("empty explicit graph reported an edge")
	}
}

func TestMaterializePreservesAdjacency(t *testing.T) {
	d := domain.MustGrid(4, 3)
	g := MustDistanceThreshold(d, 2)
	e, err := Materialize(g)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	for x := int64(0); x < d.Size(); x++ {
		for y := int64(0); y < d.Size(); y++ {
			px, py := domain.Point(x), domain.Point(y)
			if g.Adjacent(px, py) != e.Adjacent(px, py) {
				t.Fatalf("adjacency mismatch at (%d,%d)", x, y)
			}
		}
	}
	if e.Name() != g.Name() {
		t.Fatalf("Name not preserved: %q vs %q", e.Name(), g.Name())
	}
}

func TestAccessors(t *testing.T) {
	d := domain.MustLine("v", 6)
	dt := MustDistanceThreshold(d, 2)
	if dt.Theta() != 2 {
		t.Fatalf("Theta = %v", dt.Theta())
	}
	part, err := domain.NewUniformGrid(d, []int{3})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	pg := NewPartition(part)
	if pg.Partition() != part {
		t.Fatal("Partition accessor wrong")
	}
	e, err := NewExplicit(d, "x")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	if e.Domain() != d {
		t.Fatal("Explicit Domain accessor wrong")
	}
	if e.Adjacent(domain.Point(99), 0) {
		t.Fatal("out-of-range point adjacent")
	}
	b, err := NewWithBottom(dt)
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	if b.Base() != Graph(dt) {
		t.Fatal("Base accessor wrong")
	}
	li, err := NewLInfThreshold(d, 3)
	if err != nil {
		t.Fatalf("NewLInfThreshold: %v", err)
	}
	if li.Theta() != 3 {
		t.Fatalf("LInf Theta = %v", li.Theta())
	}
}

func TestEdgesExplicitFastPathEarlyStop(t *testing.T) {
	d := domain.MustLine("v", 5)
	e, err := NewExplicit(d, "x")
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := e.AddEdge(domain.Point(i), domain.Point(i+1)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	n := 0
	if err := Edges(e, func(x, y domain.Point) bool { n++; return n < 2 }); err != nil {
		t.Fatalf("Edges: %v", err)
	}
	if n != 2 {
		t.Fatalf("early stop enumerated %d, want 2", n)
	}
	// Huge implicit domains are rejected by Edges.
	huge := NewComplete(domain.MustGrid(10000, 10000))
	if err := Edges(huge, func(x, y domain.Point) bool { return true }); err == nil {
		t.Fatal("oversized edge enumeration accepted")
	}
}

func TestHasAnyEdgeMoreBranches(t *testing.T) {
	// Distance threshold below 1 on an integer lattice: no edges.
	d := domain.MustLine("v", 5)
	frac := MustDistanceThreshold(d, 0.5)
	has, err := HasAnyEdge(frac)
	if err != nil {
		t.Fatalf("HasAnyEdge: %v", err)
	}
	if has {
		t.Fatal("θ=0.5 lattice graph reported an edge")
	}
	// Partition with fewer blocks than values: pigeonhole forces an edge.
	part, err := domain.NewUniformGrid(d, []int{2})
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	has, err = HasAnyEdge(NewPartition(part))
	if err != nil {
		t.Fatalf("HasAnyEdge: %v", err)
	}
	if !has {
		t.Fatal("coarse partition graph reported no edges")
	}
	// Bottom graph always has edges (⊥ to everything) — via the generic
	// scan branch.
	b, err := NewWithBottom(MustDistanceThreshold(d, 1))
	if err != nil {
		t.Fatalf("NewWithBottom: %v", err)
	}
	has, err = HasAnyEdge(b)
	if err != nil {
		t.Fatalf("HasAnyEdge: %v", err)
	}
	if !has {
		t.Fatal("bottom graph reported no edges")
	}
}
