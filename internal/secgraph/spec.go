package secgraph

// Serializable secret-graph specifications. A Spec is the declarative,
// JSON-encodable form of a policy's G: the paper's built-in specifications
// by name, arbitrary edge lists, and composition operators (union and
// intersection of specs, per-attribute product graphs). The HTTP server
// journals Specs verbatim in its write-ahead log and snapshots, and the
// recovery path rebuilds the identical graph from the declaration — so a
// Spec must deterministically produce the same graph on every Build.

import (
	"errors"
	"fmt"
	"math"

	"blowfish/internal/domain"
)

// Spec limits: hostile or runaway declarations are refused before any
// per-vertex state is allocated.
const (
	// MaxSpecEdges caps the number of edges an explicit or composed graph
	// may declare or accumulate.
	MaxSpecEdges = 1 << 22
	// MaxSpecVertices caps the domain size of an explicit or composed
	// (materialized) graph. NewExplicit's own domain.MaxMaterializedSize
	// guard (1<<26) bounds what the library can hold, but explicit
	// construction allocates per-vertex adjacency and component state —
	// this tighter cap keeps a small hostile request (the server builds
	// specs from unauthenticated policy uploads) from allocating gigabytes.
	MaxSpecVertices = 1 << 20
	// maxSpecDepth caps composition nesting.
	maxSpecDepth = 8
	// maxSpecOperands caps the operand list of one union/intersect node.
	maxSpecOperands = 16
)

// Spec is a serializable secret-graph specification over a domain declared
// elsewhere. Kinds:
//
//	full      — S^full, the complete graph (ε-differential privacy)
//	attr      — S^attr, per-attribute secrets
//	line      — G^{d,1}, the line graph over a 1-D ordered domain
//	l1        — S^{d,θ} under the L1 metric; requires Theta
//	linf      — S^{d,θ} under the L∞ metric; requires Theta
//	partition — S^P over a uniform grid partition; requires Blocks or Widths
//	explicit  — arbitrary adjacency given by Edges (pairs of value tuples)
//	compose   — Op ("union", "intersect" or "product") over Graphs
//
// Union and intersection materialize their operands into an explicit graph
// (vertex-pair scans are capped by EdgeLimit and the edge count by
// MaxSpecEdges), so hop distances on the composed graph are exact BFS
// distances. A product composes one 1-D spec per attribute into an implicit
// Cartesian-product graph that works over domains far too large to
// materialize.
type Spec struct {
	Kind string `json:"kind"`
	// Name optionally labels the built graph (diagnostics, Policy.Name).
	Name string `json:"name,omitempty"`
	// Theta is the distance threshold for kinds l1 and linf.
	Theta float64 `json:"theta,omitempty"`
	// Blocks is the approximate block count for kind partition.
	Blocks int `json:"blocks,omitempty"`
	// Widths gives explicit per-attribute cell widths for kind partition;
	// it takes precedence over Blocks.
	Widths []int `json:"widths,omitempty"`
	// Edges lists the secret pairs of kind explicit. Each edge is a pair of
	// value tuples, one int per domain attribute — the same row encoding
	// dataset uploads use.
	Edges [][2][]int `json:"edges,omitempty"`
	// Op selects the composition operator for kind compose: "union",
	// "intersect" or "product".
	Op string `json:"op,omitempty"`
	// Graphs holds the operands of kind compose. For union/intersect each
	// operand is a spec over the same domain; for product there is exactly
	// one operand per attribute, built over that attribute's 1-D subdomain.
	Graphs []Spec `json:"graphs,omitempty"`
}

// Validate checks the spec against d without building per-vertex state
// beyond what construction itself requires. It is Build with the result
// discarded.
func (s Spec) Validate(d *domain.Domain) error {
	_, _, err := s.Build(d)
	return err
}

// Build constructs the secret graph s declares over d. For kind partition
// the underlying partition is returned alongside (nil otherwise).
func (s Spec) Build(d *domain.Domain) (Graph, domain.Partition, error) {
	if d == nil {
		return nil, nil, errors.New("secgraph: spec requires a domain")
	}
	return s.build(d, 0)
}

func (s Spec) build(d *domain.Domain, depth int) (Graph, domain.Partition, error) {
	if depth > maxSpecDepth {
		return nil, nil, fmt.Errorf("secgraph: spec nesting exceeds depth %d", maxSpecDepth)
	}
	switch s.Kind {
	case "full":
		return NewComplete(d), nil, nil
	case "attr":
		return NewAttribute(d), nil, nil
	case "line":
		g, err := NewLine(d)
		return g, nil, err
	case "l1":
		g, err := NewDistanceThreshold(d, s.Theta)
		return g, nil, err
	case "linf":
		g, err := NewLInfThreshold(d, s.Theta)
		return g, nil, err
	case "partition":
		var part domain.Partition
		var err error
		switch {
		case len(s.Widths) > 0:
			part, err = domain.NewUniformGrid(d, s.Widths)
		case s.Blocks > 0:
			part, err = domain.NewUniformGridByCount(d, s.Blocks)
		default:
			err = errors.New("secgraph: partition spec needs blocks or widths")
		}
		if err != nil {
			return nil, nil, err
		}
		return NewPartition(part), part, nil
	case "explicit":
		g, err := s.buildExplicit(d)
		return g, nil, err
	case "compose":
		g, err := s.buildCompose(d, depth)
		return g, nil, err
	case "":
		return nil, nil, errors.New("secgraph: spec is missing a kind")
	default:
		return nil, nil, fmt.Errorf("secgraph: unknown spec kind %q (want full, attr, line, l1, linf, partition, explicit or compose)", s.Kind)
	}
}

// buildExplicit lowers an edge list into an Explicit graph, encoding each
// value tuple through the domain so malformed rows fail with the offending
// edge index.
func (s Spec) buildExplicit(d *domain.Domain) (*Explicit, error) {
	if len(s.Edges) == 0 {
		return nil, errors.New("secgraph: explicit spec needs at least one edge")
	}
	if len(s.Edges) > MaxSpecEdges {
		return nil, fmt.Errorf("secgraph: explicit spec declares %d edges (limit %d)", len(s.Edges), MaxSpecEdges)
	}
	if err := checkSpecVertices(d); err != nil {
		return nil, err
	}
	e, err := NewExplicit(d, s.Name)
	if err != nil {
		return nil, err
	}
	for i, edge := range s.Edges {
		x, err := d.Encode(edge[0]...)
		if err != nil {
			return nil, fmt.Errorf("secgraph: edge %d endpoint 0: %w", i, err)
		}
		y, err := d.Encode(edge[1]...)
		if err != nil {
			return nil, fmt.Errorf("secgraph: edge %d endpoint 1: %w", i, err)
		}
		if x == y {
			return nil, fmt.Errorf("secgraph: edge %d is a self-loop (a value cannot be a secret pair with itself)", i)
		}
		if err := e.AddEdge(x, y); err != nil {
			return nil, fmt.Errorf("secgraph: edge %d: %w", i, err)
		}
	}
	return e, nil
}

// buildCompose dispatches the composition operators.
func (s Spec) buildCompose(d *domain.Domain, depth int) (Graph, error) {
	if len(s.Graphs) == 0 {
		return nil, errors.New("secgraph: compose spec needs operand graphs")
	}
	switch s.Op {
	case "union", "intersect":
		if len(s.Graphs) > maxSpecOperands {
			return nil, fmt.Errorf("secgraph: compose spec has %d operands (limit %d)", len(s.Graphs), maxSpecOperands)
		}
		ops := make([]Graph, len(s.Graphs))
		for i, sub := range s.Graphs {
			g, _, err := sub.build(d, depth+1)
			if err != nil {
				return nil, fmt.Errorf("secgraph: compose operand %d: %w", i, err)
			}
			ops[i] = g
		}
		if s.Op == "union" {
			return Union(d, s.Name, ops...)
		}
		return Intersect(d, s.Name, ops...)
	case "product":
		if len(s.Graphs) != d.NumAttrs() {
			return nil, fmt.Errorf("secgraph: product spec has %d factor graphs for %d attributes", len(s.Graphs), d.NumAttrs())
		}
		factors := make([]Graph, len(s.Graphs))
		for i, sub := range s.Graphs {
			attr := d.Attr(i)
			sub1d, err := domain.Line(attr.Name, attr.Size)
			if err != nil {
				return nil, fmt.Errorf("secgraph: product factor %d: %w", i, err)
			}
			g, _, err := sub.build(sub1d, depth+1)
			if err != nil {
				return nil, fmt.Errorf("secgraph: product factor %d: %w", i, err)
			}
			factors[i] = g
		}
		return NewProduct(d, s.Name, factors)
	case "":
		return nil, errors.New("secgraph: compose spec is missing an op (union, intersect or product)")
	default:
		return nil, fmt.Errorf("secgraph: unknown compose op %q (want union, intersect or product)", s.Op)
	}
}

// checkSpecVertices refuses per-vertex allocation over oversized domains.
func checkSpecVertices(d *domain.Domain) error {
	if d.Size() > MaxSpecVertices {
		return fmt.Errorf("secgraph: domain of %d values exceeds the %d-vertex limit for explicit graphs", d.Size(), int64(MaxSpecVertices))
	}
	return nil
}

// addCapped inserts an edge into e, enforcing the composed-edge budget.
func addCapped(e *Explicit, x, y domain.Point) error {
	if e.NumEdges() >= MaxSpecEdges {
		return fmt.Errorf("secgraph: composed graph exceeds %d edges", MaxSpecEdges)
	}
	return e.AddEdge(x, y)
}

// Union materializes the edge union of the operand graphs into an Explicit
// graph over d. Every operand must live over d; implicit operands are
// enumerated through Edges and therefore require |T|² <= EdgeLimit.
func Union(d *domain.Domain, name string, ops ...Graph) (*Explicit, error) {
	if len(ops) == 0 {
		return nil, errors.New("secgraph: union of zero graphs")
	}
	if err := checkSpecVertices(d); err != nil {
		return nil, err
	}
	if name == "" {
		name = fmt.Sprintf("union|%d", len(ops))
	}
	e, err := NewExplicit(d, name)
	if err != nil {
		return nil, err
	}
	for i, g := range ops {
		if !d.Equal(g.Domain()) {
			return nil, fmt.Errorf("secgraph: union operand %d is over a different domain", i)
		}
		var addErr error
		err := Edges(g, func(x, y domain.Point) bool {
			addErr = addCapped(e, x, y)
			return addErr == nil
		})
		if err != nil {
			return nil, fmt.Errorf("secgraph: union operand %d: %w", i, err)
		}
		if addErr != nil {
			return nil, addErr
		}
	}
	return e, nil
}

// Intersect materializes the edge intersection of the operand graphs into
// an Explicit graph over d: a pair is a secret iff every operand declares
// it. The first operand drives the enumeration, so leading with an explicit
// graph avoids the |T|² scan entirely.
func Intersect(d *domain.Domain, name string, ops ...Graph) (*Explicit, error) {
	if len(ops) == 0 {
		return nil, errors.New("secgraph: intersection of zero graphs")
	}
	if err := checkSpecVertices(d); err != nil {
		return nil, err
	}
	if name == "" {
		name = fmt.Sprintf("intersect|%d", len(ops))
	}
	for i, g := range ops {
		if !d.Equal(g.Domain()) {
			return nil, fmt.Errorf("secgraph: intersect operand %d is over a different domain", i)
		}
	}
	e, err := NewExplicit(d, name)
	if err != nil {
		return nil, err
	}
	var addErr error
	err = Edges(ops[0], func(x, y domain.Point) bool {
		for _, g := range ops[1:] {
			if !g.Adjacent(x, y) {
				return true
			}
		}
		addErr = addCapped(e, x, y)
		return addErr == nil
	})
	if err != nil {
		return nil, fmt.Errorf("secgraph: intersect operand 0: %w", err)
	}
	if addErr != nil {
		return nil, addErr
	}
	return e, nil
}

// Product is the Cartesian (box) product of per-attribute secret graphs:
// two values are adjacent when they differ in exactly one attribute and
// that attribute's factor graph declares the projected pair a secret. It
// generalizes S^attr (the product of complete factors) and the grid
// neighborhood graphs, stays implicit — nothing per-vertex is materialized,
// so it works over huge domains — and its hop distance is the exact sum of
// per-factor hop distances (the standard Cartesian-product metric).
type Product struct {
	dom     *domain.Domain
	factors []Graph
	name    string
	maxEdge float64
}

// NewProduct composes one factor graph per attribute of d. factors[i] must
// live over a one-dimensional domain of attribute i's size.
func NewProduct(d *domain.Domain, name string, factors []Graph) (*Product, error) {
	if len(factors) != d.NumAttrs() {
		return nil, fmt.Errorf("secgraph: product needs %d factors, got %d", d.NumAttrs(), len(factors))
	}
	maxEdge := 0.0
	for i, f := range factors {
		fd := f.Domain()
		if fd.NumAttrs() != 1 || fd.Size() != int64(d.Attr(i).Size) {
			return nil, fmt.Errorf("secgraph: product factor %d must be over a 1-D domain of size %d", i, d.Attr(i).Size)
		}
		// An edge changes one attribute; its L1 length in the product
		// domain equals its length in the factor domain.
		if m := f.MaxEdgeDistance(); m > maxEdge {
			maxEdge = m
		}
	}
	if name == "" {
		name = fmt.Sprintf("product|%d", len(factors))
	}
	return &Product{dom: d, factors: factors, name: name, maxEdge: maxEdge}, nil
}

// Factor returns the i-th per-attribute graph.
func (p *Product) Factor(i int) Graph { return p.factors[i] }

// Domain implements Graph.
func (p *Product) Domain() *domain.Domain { return p.dom }

// Name implements Graph.
func (p *Product) Name() string { return p.name }

// Adjacent implements Graph: exactly one attribute differs, and the factor
// graph of that attribute declares the projected pair a secret.
func (p *Product) Adjacent(x, y domain.Point) bool {
	if x == y || !p.dom.Contains(x) || !p.dom.Contains(y) {
		return false
	}
	if p.dom.HammingAttrs(x, y) != 1 {
		return false
	}
	for i := range p.factors {
		xi, yi := p.dom.Value(x, i), p.dom.Value(y, i)
		if xi != yi {
			return p.factors[i].Adjacent(domain.Point(xi), domain.Point(yi))
		}
	}
	return false
}

// HopDistance implements Graph: in a Cartesian product, shortest paths
// change one attribute per step, so d(x, y) = Σ_i d_i(x_i, y_i); any
// disconnected factor pair disconnects the product pair.
func (p *Product) HopDistance(x, y domain.Point) float64 {
	if x == y {
		return 0
	}
	if !p.dom.Contains(x) || !p.dom.Contains(y) {
		return math.Inf(1)
	}
	var sum float64
	for i, f := range p.factors {
		xi, yi := p.dom.Value(x, i), p.dom.Value(y, i)
		if xi == yi {
			continue
		}
		sum += f.HopDistance(domain.Point(xi), domain.Point(yi))
	}
	return sum
}

// MaxEdgeDistance implements Graph: the largest factor edge length.
func (p *Product) MaxEdgeDistance() float64 { return p.maxEdge }
