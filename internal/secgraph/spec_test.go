package secgraph

import (
	"encoding/json"
	"math"
	"testing"

	"blowfish/internal/domain"
)

func lineDom(t testing.TB, size int) *domain.Domain {
	t.Helper()
	d, err := domain.Line("v", size)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSpecBuildsBuiltinKinds(t *testing.T) {
	d := lineDom(t, 16)
	grid, err := domain.Grid(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec Spec
		dom  *domain.Domain
		name string
	}{
		{Spec{Kind: "full"}, d, "full"},
		{Spec{Kind: "attr"}, grid, "attr"},
		{Spec{Kind: "line"}, d, "L1|θ=1"},
		{Spec{Kind: "l1", Theta: 3}, d, "L1|θ=3"},
		{Spec{Kind: "linf", Theta: 2}, grid, "Linf|θ=2"},
	}
	for _, tc := range cases {
		g, part, err := tc.spec.Build(tc.dom)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Kind, err)
		}
		if part != nil {
			t.Fatalf("%s: unexpected partition", tc.spec.Kind)
		}
		if g.Name() != tc.name {
			t.Fatalf("%s: name %q, want %q", tc.spec.Kind, g.Name(), tc.name)
		}
	}
	g, part, err := (Spec{Kind: "partition", Blocks: 4}).Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if part == nil || g.(*PartitionGraph).Partition() != part {
		t.Fatal("partition spec did not return its partition")
	}
}

func TestSpecExplicitRoundTripsJSON(t *testing.T) {
	d := lineDom(t, 8)
	spec := Spec{
		Kind:  "explicit",
		Name:  "bands",
		Edges: [][2][]int{{{0}, {1}}, {{1}, {2}}, {{5}, {6}}},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	g, _, err := back.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	e := g.(*Explicit)
	if e.Name() != "bands" || e.NumEdges() != 3 {
		t.Fatalf("rebuilt graph = %s with %d edges", e.Name(), e.NumEdges())
	}
	if !e.Adjacent(0, 1) || !e.Adjacent(5, 6) || e.Adjacent(0, 2) {
		t.Fatal("rebuilt adjacency wrong")
	}
	// 0-1-2 is one component; hop distance follows the path.
	if got := e.HopDistance(0, 2); got != 2 {
		t.Fatalf("HopDistance(0,2) = %v, want 2", got)
	}
	if got := e.HopDistance(0, 5); !math.IsInf(got, 1) {
		t.Fatalf("HopDistance(0,5) = %v, want +Inf", got)
	}
	if got := e.Components(); got != 5 {
		t.Fatalf("components = %d, want 5 (0-1-2, 5-6, {3}, {4}, {7})", got)
	}
}

func TestSpecExplicitValidation(t *testing.T) {
	d := lineDom(t, 8)
	cases := []struct {
		name string
		spec Spec
	}{
		{"no edges", Spec{Kind: "explicit"}},
		{"self loop", Spec{Kind: "explicit", Edges: [][2][]int{{{3}, {3}}}}},
		{"out of range", Spec{Kind: "explicit", Edges: [][2][]int{{{0}, {99}}}}},
		{"wrong arity", Spec{Kind: "explicit", Edges: [][2][]int{{{0, 1}, {2, 3}}}}},
		{"unknown kind", Spec{Kind: "banana"}},
		{"missing kind", Spec{}},
		{"compose without op", Spec{Kind: "compose", Graphs: []Spec{{Kind: "full"}}}},
		{"compose without operands", Spec{Kind: "compose", Op: "union"}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(d); err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
	}
}

func TestSpecUnionIntersect(t *testing.T) {
	d := lineDom(t, 10)
	union := Spec{Kind: "compose", Op: "union", Graphs: []Spec{
		{Kind: "line"},
		{Kind: "explicit", Edges: [][2][]int{{{0}, {9}}}},
	}}
	g, _, err := union.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	e := g.(*Explicit)
	if !e.Adjacent(3, 4) || !e.Adjacent(0, 9) {
		t.Fatal("union lost an operand edge")
	}
	if e.NumEdges() != 10 {
		t.Fatalf("union edges = %d, want 10 (9 line + 1 wrap)", e.NumEdges())
	}
	// The wrap edge makes the graph a cycle: 0 and 9 are one hop apart.
	if got := e.HopDistance(0, 9); got != 1 {
		t.Fatalf("HopDistance(0,9) = %v, want 1", got)
	}

	inter := Spec{Kind: "compose", Op: "intersect", Graphs: []Spec{
		{Kind: "l1", Theta: 2},
		{Kind: "explicit", Edges: [][2][]int{{{0}, {1}}, {{0}, {5}}}},
	}}
	g, _, err = inter.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	e = g.(*Explicit)
	if e.NumEdges() != 1 || !e.Adjacent(0, 1) {
		t.Fatalf("intersect edges = %d, want only {0,1} (distance 5 exceeds θ=2)", e.NumEdges())
	}
}

func TestSpecProduct(t *testing.T) {
	grid, err := domain.Grid(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// x moves freely (full factor), y only between neighbors (line factor).
	spec := Spec{Kind: "compose", Op: "product", Graphs: []Spec{
		{Kind: "full"},
		{Kind: "line"},
	}}
	g, _, err := spec.Build(grid)
	if err != nil {
		t.Fatal(err)
	}
	p := g.(*Product)
	at := func(x, y int) domain.Point { return grid.MustEncode(x, y) }
	if !p.Adjacent(at(0, 0), at(4, 0)) {
		t.Fatal("full x-factor should connect any x at fixed y")
	}
	if !p.Adjacent(at(2, 1), at(2, 2)) || p.Adjacent(at(2, 0), at(2, 2)) {
		t.Fatal("line y-factor should connect only neighboring y")
	}
	if p.Adjacent(at(0, 0), at(1, 1)) {
		t.Fatal("product edges change exactly one attribute")
	}
	// Hop distance is the sum of factor distances: 1 (any x hop) + 3 (y 0→3).
	if got := p.HopDistance(at(0, 0), at(4, 3)); got != 4 {
		t.Fatalf("HopDistance = %v, want 4", got)
	}
	// Largest edge: the full x-factor spans 4; the line y-factor spans 1.
	if got := p.MaxEdgeDistance(); got != 4 {
		t.Fatalf("MaxEdgeDistance = %v, want 4", got)
	}
	has, err := HasAnyEdge(p)
	if err != nil || !has {
		t.Fatalf("HasAnyEdge = %v, %v", has, err)
	}
	// The materialized product must agree with the implicit one edge-for-edge.
	mat, err := Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < grid.Size(); x++ {
		for y := x + 1; y < grid.Size(); y++ {
			px, py := domain.Point(x), domain.Point(y)
			if mat.Adjacent(px, py) != p.Adjacent(px, py) {
				t.Fatalf("materialized product disagrees at (%d,%d)", x, y)
			}
		}
	}
}

func TestSpecProductMatchesAttributeGraph(t *testing.T) {
	grid, err := domain.Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: "compose", Op: "product", Graphs: []Spec{{Kind: "full"}, {Kind: "full"}}}
	g, _, err := spec.Build(grid)
	if err != nil {
		t.Fatal(err)
	}
	attr := NewAttribute(grid)
	for x := int64(0); x < grid.Size(); x++ {
		for y := int64(0); y < grid.Size(); y++ {
			px, py := domain.Point(x), domain.Point(y)
			if g.Adjacent(px, py) != attr.Adjacent(px, py) {
				t.Fatalf("product-of-full disagrees with S^attr at (%d,%d)", x, y)
			}
			if g.HopDistance(px, py) != attr.HopDistance(px, py) {
				t.Fatalf("product-of-full hop distance disagrees at (%d,%d)", x, y)
			}
		}
	}
	if g.MaxEdgeDistance() != attr.MaxEdgeDistance() {
		t.Fatal("product-of-full MaxEdgeDistance disagrees with S^attr")
	}
}

// TestSpecVertexCap pins the DoS guard: explicit and composed specs refuse
// per-vertex allocation over oversized domains before any state exists.
func TestSpecVertexCap(t *testing.T) {
	big, err := domain.Line("v", MaxSpecVertices+1)
	if err != nil {
		t.Fatal(err)
	}
	edge := [][2][]int{{{0}, {1}}}
	if err := (Spec{Kind: "explicit", Edges: edge}).Validate(big); err == nil {
		t.Fatal("explicit spec built over an oversized domain")
	}
	union := Spec{Kind: "compose", Op: "union", Graphs: []Spec{{Kind: "line"}}}
	if err := union.Validate(big); err == nil {
		t.Fatal("union spec built over an oversized domain")
	}
	if _, err := Intersect(big, "", NewComplete(big)); err == nil {
		t.Fatal("Intersect allocated over an oversized domain")
	}
}

func TestProductHopDistanceOutOfRange(t *testing.T) {
	grid, err := domain.Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := (Spec{Kind: "compose", Op: "product", Graphs: []Spec{{Kind: "full"}, {Kind: "line"}}}).Build(grid)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.HopDistance(domain.Point(grid.Size()), 0); !math.IsInf(got, 1) {
		t.Fatalf("HopDistance(out-of-range, 0) = %v, want +Inf (not a panic)", got)
	}
	if got := g.HopDistance(0, -1); !math.IsInf(got, 1) {
		t.Fatalf("HopDistance(0, -1) = %v, want +Inf", got)
	}
}

// TestMaterializeCapConsistent pins the satellite bugfix: the Materialize
// guard is the named MaxMaterializeVertices constant (whose square is
// EdgeLimit), not an ad-hoc literal disagreeing with NewExplicit.
func TestMaterializeCapConsistent(t *testing.T) {
	if MaxMaterializeVertices*MaxMaterializeVertices != EdgeLimit {
		t.Fatalf("MaxMaterializeVertices² = %d, want EdgeLimit %d",
			MaxMaterializeVertices*MaxMaterializeVertices, EdgeLimit)
	}
	big, err := domain.Line("v", MaxMaterializeVertices+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(NewComplete(big)); err == nil {
		t.Fatal("materialized past the cap")
	}
	ok, err := domain.Line("v", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(NewComplete(ok)); err != nil {
		t.Fatal(err)
	}
}

// TestExplicitHopDistanceMemoInvalidation pins the satellite bugfix: hop
// distances are memoized per source and invalidated by AddEdge.
func TestExplicitHopDistanceMemoInvalidation(t *testing.T) {
	d := lineDom(t, 6)
	e, err := NewExplicit(d, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.AddEdge(domain.Point(i), domain.Point(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.HopDistance(0, 4); got != 4 {
		t.Fatalf("HopDistance(0,4) = %v, want 4", got)
	}
	// The memo must not serve the stale path after a shortcut appears.
	if err := e.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if got := e.HopDistance(0, 4); got != 1 {
		t.Fatalf("HopDistance(0,4) after shortcut = %v, want 1 (stale memo?)", got)
	}
	if got := e.HopDistance(0, 3); got != 2 {
		t.Fatalf("HopDistance(0,3) = %v, want 2 via the shortcut", got)
	}
}

// ring builds a cycle over n vertices: every BFS touches the whole graph,
// the worst case for the un-memoized all-pairs loop.
func ring(tb testing.TB, n int) *Explicit {
	tb.Helper()
	d, err := domain.Line("v", n)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewExplicit(d, "ring")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := e.AddEdge(domain.Point(i), domain.Point((i+1)%n)); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

// BenchmarkExplicitAllPairsHopDistance measures the all-pairs sensitivity
// loop the memoization satellite targets: without the per-source memo every
// pair re-runs BFS (O(V²·(V+E))); with it each source pays BFS once.
func BenchmarkExplicitAllPairsHopDistance(b *testing.B) {
	const n = 256
	e := ring(b, n)
	b.ReportAllocs()
	for b.Loop() {
		var sum float64
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				sum += e.HopDistance(domain.Point(x), domain.Point(y))
			}
		}
		if sum == 0 {
			b.Fatal("ring distances summed to zero")
		}
	}
}

// BenchmarkExplicitAllPairsHopDistanceCold clears the memo every iteration:
// the pre-fix cost profile, kept as the comparison baseline.
func BenchmarkExplicitAllPairsHopDistanceCold(b *testing.B) {
	const n = 256
	e := ring(b, n)
	b.ReportAllocs()
	for b.Loop() {
		// Re-adding an existing edge is an adjacency no-op but drops the
		// memo, reproducing the un-memoized behavior per iteration... except
		// within the iteration the memo still helps. Truly cold behavior
		// needs one eviction per query:
		var sum float64
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if err := e.AddEdge(0, 1); err != nil { // memo invalidation
					b.Fatal(err)
				}
				sum += e.HopDistance(domain.Point(x), domain.Point(y))
			}
		}
		if sum == 0 {
			b.Fatal("ring distances summed to zero")
		}
	}
}
