// Package server is the HTTP front for a blowfish service: it decodes wire
// requests, delegates to a transport-agnostic Service (a single
// service.Core or the shard router), and encodes responses. All domain
// logic — registries, budget accounting, journaling, recovery — lives in
// internal/service; this package owns only routing, content negotiation,
// error-to-status mapping, and request metrics.
package server

import "blowfish/internal/service"

// The wire and configuration vocabulary is defined by internal/service and
// re-exported here so existing callers (cmd/blowfish-serve, the load
// harness, the test suite) keep compiling against server.* names.
type (
	// Config configures a server or service core.
	Config = service.Config
	// DurabilityConfig configures the WAL and snapshot cycle.
	DurabilityConfig = service.DurabilityConfig
	// CheckpointStats reports the outcome of a manual checkpoint.
	CheckpointStats = service.CheckpointStats

	// AttrSpec declares one attribute of a policy domain.
	AttrSpec = service.AttrSpec
	// GraphSpec declares a custom policy graph.
	GraphSpec = service.GraphSpec

	// CreatePolicyRequest is the body of POST /v1/policies.
	CreatePolicyRequest = service.CreatePolicyRequest
	// PolicyResponse describes a registered policy.
	PolicyResponse = service.PolicyResponse
	// CreateDatasetRequest is the body of POST /v1/datasets.
	CreateDatasetRequest = service.CreateDatasetRequest
	// DatasetResponse describes a registered dataset.
	DatasetResponse = service.DatasetResponse
	// EventWire is one event row on the wire.
	EventWire = service.EventWire
	// EventsRequest is the JSON-envelope body of POST /v1/datasets/{id}/events.
	EventsRequest = service.EventsRequest
	// EventsResponse acknowledges an ingest batch.
	EventsResponse = service.EventsResponse
	// CreateSessionRequest is the body of POST /v1/sessions.
	CreateSessionRequest = service.CreateSessionRequest
	// SessionResponse describes a query session.
	SessionResponse = service.SessionResponse
	// ReleaseRecord is one ledger line of a session's release log.
	ReleaseRecord = service.ReleaseRecord
	// HistogramRequest is the body of POST /v1/sessions/{id}/releases/histogram.
	HistogramRequest = service.HistogramRequest
	// HistogramResponse carries a noisy histogram release.
	HistogramResponse = service.HistogramResponse
	// CumulativeRequest is the body of POST /v1/sessions/{id}/releases/cumulative.
	CumulativeRequest = service.CumulativeRequest
	// CumulativeResponse carries a noisy cumulative-histogram release.
	CumulativeResponse = service.CumulativeResponse
	// RangeQuery is one [lo,hi] interval of a range release.
	RangeQuery = service.RangeQuery
	// RangeRequest is the body of POST /v1/sessions/{id}/releases/range.
	RangeRequest = service.RangeRequest
	// RangeResponse carries the answers of a range release.
	RangeResponse = service.RangeResponse
	// ListPoliciesResponse is the GET /v1/policies envelope.
	ListPoliciesResponse = service.ListPoliciesResponse
	// ListDatasetsResponse is the GET /v1/datasets envelope.
	ListDatasetsResponse = service.ListDatasetsResponse
	// ListSessionsResponse is the GET /v1/sessions envelope.
	ListSessionsResponse = service.ListSessionsResponse
	// ListStreamsResponse is the GET /v1/streams envelope.
	ListStreamsResponse = service.ListStreamsResponse
	// EpochSpec declares a stream's epoch schedule.
	EpochSpec = service.EpochSpec
	// WindowSpec declares a stream's sliding retention window.
	WindowSpec = service.WindowSpec
	// CreateStreamRequest is the body of POST /v1/streams.
	CreateStreamRequest = service.CreateStreamRequest
	// StreamResponse describes a continual-release stream.
	StreamResponse = service.StreamResponse
	// EpochReleaseWire is one epoch release on the wire.
	EpochReleaseWire = service.EpochReleaseWire
	// StreamReleasesResponse pages a stream's release log.
	StreamReleasesResponse = service.StreamReleasesResponse
)

// Error codes, mirrored from the service layer.
const (
	CodeBadRequest      = service.CodeBadRequest
	CodeUnknownPolicy   = service.CodeUnknownPolicy
	CodeUnknownDataset  = service.CodeUnknownDataset
	CodeUnknownSession  = service.CodeUnknownSession
	CodeUnknownStream   = service.CodeUnknownStream
	CodeDomainMismatch  = service.CodeDomainMismatch
	CodeBudgetExhausted = service.CodeBudgetExhausted
	CodePolicyInUse     = service.CodePolicyInUse
	CodeDatasetInUse    = service.CodeDatasetInUse
	CodeDurability      = service.CodeDurability
	CodeQueueFull       = service.CodeQueueFull
)
