package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchFixture stands up a server with one policy, dataset and an
// effectively unlimited session budget so release benches never exhaust.
func benchFixture(b *testing.B, graph GraphSpec) (*Server, string, string) {
	b.Helper()
	s := New(Config{Seed: 1})
	post := func(path string, body any) []byte {
		b.Helper()
		raw, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusCreated {
			b.Fatalf("POST %s: %d %s", path, w.Code, w.Body.String())
		}
		return w.Body.Bytes()
	}
	var pol PolicyResponse
	_ = json.Unmarshal(post("/v1/policies", CreatePolicyRequest{Domain: []AttrSpec{{Name: "v", Size: 1024}}, Graph: graph}), &pol)
	rows := make([][]int, 5000)
	for i := range rows {
		rows[i] = []int{i % 1024}
	}
	var ds DatasetResponse
	_ = json.Unmarshal(post("/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID, Rows: rows}), &ds)
	var sess SessionResponse
	_ = json.Unmarshal(post("/v1/sessions", CreateSessionRequest{PolicyID: pol.ID, Budget: 1e12}), &sess)
	return s, ds.ID, sess.ID
}

// release issues one in-process release request, failing the bench on a
// non-200.
func release(b *testing.B, s *Server, path string, body []byte) {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("release: %d %s", w.Code, w.Body.String())
	}
}

func BenchmarkServerHistogramRelease(b *testing.B) {
	s, dsID, sessID := benchFixture(b, GraphSpec{Kind: "l1", Theta: 16})
	body, _ := json.Marshal(HistogramRequest{DatasetID: dsID, Epsilon: 0.01})
	path := "/v1/sessions/" + sessID + "/releases/histogram"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release(b, s, path, body)
	}
}

func BenchmarkServerHistogramReleaseParallel(b *testing.B) {
	s, dsID, sessID := benchFixture(b, GraphSpec{Kind: "l1", Theta: 16})
	body, _ := json.Marshal(HistogramRequest{DatasetID: dsID, Epsilon: 0.01})
	path := "/v1/sessions/" + sessID + "/releases/histogram"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release(b, s, path, body)
		}
	})
}

func BenchmarkServerRangeRelease(b *testing.B) {
	s, dsID, sessID := benchFixture(b, GraphSpec{Kind: "l1", Theta: 16})
	body, _ := json.Marshal(RangeRequest{
		DatasetID: dsID, Epsilon: 0.01,
		Queries: []RangeQuery{{Lo: 0, Hi: 511}, {Lo: 100, Hi: 200}, {Lo: 900, Hi: 1023}},
	})
	path := "/v1/sessions/" + sessID + "/releases/range"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release(b, s, path, body)
	}
}

func BenchmarkServerRangeReleaseParallel(b *testing.B) {
	s, dsID, sessID := benchFixture(b, GraphSpec{Kind: "l1", Theta: 16})
	body, _ := json.Marshal(RangeRequest{
		DatasetID: dsID, Epsilon: 0.01,
		Queries: []RangeQuery{{Lo: 0, Hi: 511}, {Lo: 100, Hi: 200}, {Lo: 900, Hi: 1023}},
	})
	path := "/v1/sessions/" + sessID + "/releases/range"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release(b, s, path, body)
		}
	})
}

// BenchmarkServerParallelSessions measures the fully concurrent shape:
// every goroutine owns its own session, so noise generation proceeds in
// parallel instead of serializing on one session's source lock.
func BenchmarkServerParallelSessions(b *testing.B) {
	s, dsID, _ := benchFixture(b, GraphSpec{Kind: "l1", Theta: 16})
	body, _ := json.Marshal(HistogramRequest{DatasetID: dsID, Epsilon: 0.01})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		raw, _ := json.Marshal(CreateSessionRequest{PolicyID: "pol-1", Budget: 1e12})
		req := httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(raw))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusCreated {
			b.Fatalf("create session: %d %s", w.Code, w.Body.String())
		}
		var sess SessionResponse
		_ = json.Unmarshal(w.Body.Bytes(), &sess)
		path := "/v1/sessions/" + sess.ID + "/releases/histogram"
		for pb.Next() {
			release(b, s, path, body)
		}
	})
}
