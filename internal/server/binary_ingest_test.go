package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blowfish"
	"blowfish/internal/codec"
	"blowfish/internal/leak"
)

// doRaw issues one in-process request with an explicit body and content
// type — the binary-batch and NDJSON tests cannot use the JSON helper.
func doRaw(t testing.TB, s *Server, method, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestBinaryBatchIngest walks the binary columnar frame end to end: encode
// a batch, POST it with the negotiated content type, and verify the events
// landed exactly as their JSON-envelope equivalents would.
func TestBinaryBatchIngest(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	_, dsID := streamFixtureIDs(t, s)

	events := []blowfish.StreamEvent{
		{Op: "append", Row: []int{5}},
		{Op: "append", Row: []int{9}},
		{Op: "upsert", ID: 0, Row: []int{7}},
		{Op: "delete", ID: 1},
	}
	frame, err := codec.EncodeFrame(events, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events?wait=1", codec.ContentType, frame)
	if w.Code != http.StatusAccepted {
		t.Fatalf("binary events: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[EventsResponse](t, w)
	if resp.Accepted != 4 || resp.FirstSeq != 1 || resp.LastSeq != 4 || resp.ProcessedSeq != 4 {
		t.Fatalf("events response = %+v", resp)
	}
	ds := decode[DatasetResponse](t, do(t, s, "GET", "/v1/datasets/"+dsID, nil))
	if ds.Rows != 1 { // 2 appends, 1 overwrite, 1 delete
		t.Fatalf("rows = %d, want 1", ds.Rows)
	}

	// Two frames in one body concatenate.
	frame2, err := codec.EncodeFrame([]blowfish.StreamEvent{{Op: "append", Row: []int{3}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w = doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events?wait=1", codec.ContentType, append(append([]byte(nil), frame...), frame2...))
	if w.Code != http.StatusAccepted {
		t.Fatalf("two frames: status %d body %s", w.Code, w.Body.String())
	}
	if got := decode[EventsResponse](t, w); got.Accepted != 5 {
		t.Fatalf("two frames accepted = %d, want 5", got.Accepted)
	}

	// Corruption and shape errors are structured bad requests.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x40
	wantError(t, doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", codec.ContentType, bad),
		http.StatusBadRequest, CodeBadRequest)
	twoCol, err := codec.EncodeFrame([]blowfish.StreamEvent{{Op: "append", Row: []int{1, 2}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", codec.ContentType, twoCol),
		http.StatusBadRequest, CodeBadRequest)
	empty, err := codec.EncodeFrame(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", codec.ContentType, empty),
		http.StatusBadRequest, CodeBadRequest)

	// A domain-invalid value decodes fine but fails validation at submit.
	over, err := codec.EncodeFrame([]blowfish.StreamEvent{{Op: "append", Row: []int{64}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", codec.ContentType, over),
		http.StatusBadRequest, CodeBadRequest)
}

// backpressureServer builds a server whose ingest queue is tiny, so tests
// can fill it deterministically.
func backpressureServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := New(Config{Seed: 42, Ingest: blowfish.StreamIngestConfig{
		QueueDepth: 4,
		BatchSize:  4,
	}})
	t.Cleanup(s.Close)
	_, dsID := streamFixtureIDs(t, s)
	return s, dsID
}

// TestEventsBackpressure pins the regression contract of the bounded
// ingest queue: once the writer stalls and the queue fills, an events POST
// is rejected whole with the structured queue_full error and a Retry-After
// header — and every batch that was acked with 202 is applied, none
// dropped, once the writer resumes.
func TestEventsBackpressure(t *testing.T) {
	s, dsID := backpressureServer(t)

	tbl := s.Core().DatasetTable(dsID)

	// Wedge the single writer: applying a batch needs the table's write
	// lock, so a held read lock stalls it with the queue intact.
	tbl.RLock()
	wedged := true
	defer func() {
		if wedged {
			tbl.RUnlock()
		}
	}()

	accepted := 0
	var rejected *httptest.ResponseRecorder
	for i := 0; i < 100; i++ {
		w := doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", "application/x-ndjson",
			[]byte(`{"op":"append","row":[1]}`+"\n"+`{"op":"append","row":[2]}`+"\n"))
		if w.Code == http.StatusAccepted {
			accepted += 2
			continue
		}
		rejected = w
		break
	}
	if rejected == nil {
		t.Fatal("queue never filled")
	}
	wantError(t, rejected, http.StatusTooManyRequests, CodeQueueFull)
	if ra := rejected.Header().Get("Retry-After"); ra == "" {
		t.Fatal("queue_full response lacks Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", ra)
	}

	// The rejection enqueued nothing: resume the writer, flush via a
	// waiting post, and the dataset must hold exactly the acked events.
	tbl.RUnlock()
	wedged = false
	var w *httptest.ResponseRecorder
	for deadline := time.Now().Add(5 * time.Second); ; {
		w = doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events?wait=1", "application/x-ndjson",
			[]byte(`{"op":"append","row":[3]}`+"\n"))
		if w.Code != http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond) // queue still draining; honor the backoff
	}
	if w.Code != http.StatusAccepted {
		t.Fatalf("post-drain events: status %d body %s", w.Code, w.Body.String())
	}
	accepted++
	ds := decode[DatasetResponse](t, do(t, s, "GET", "/v1/datasets/"+dsID, nil))
	if ds.Rows != accepted {
		t.Fatalf("rows = %d, want %d (an acked event was dropped)", ds.Rows, accepted)
	}
}

// TestEventsBackpressureHammer drives the tiny queue from concurrent
// producers (run under -race in CI): each POST either acks whole or is
// rejected whole with queue_full, and the dataset ends with exactly the
// acked rows.
func TestEventsBackpressureHammer(t *testing.T) {
	leak.Check(t)
	s, dsID := backpressureServer(t)

	frame, err := codec.EncodeFrame([]blowfish.StreamEvent{
		{Op: "append", Row: []int{1}},
		{Op: "append", Row: []int{2}},
		{Op: "append", Row: []int{3}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}

	var accepted, rejectedCount atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				w := doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events", codec.ContentType, frame)
				switch w.Code {
				case http.StatusAccepted:
					accepted.Add(3)
				case http.StatusTooManyRequests:
					rejectedCount.Add(1)
					if w.Header().Get("Retry-After") == "" {
						t.Error("queue_full response lacks Retry-After")
						return
					}
					time.Sleep(100 * time.Microsecond)
				default:
					t.Errorf("events: status %d body %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Flush and count: rows must equal acked appends exactly.
	var w *httptest.ResponseRecorder
	for deadline := time.Now().Add(5 * time.Second); ; {
		w = doRaw(t, s, "POST", "/v1/datasets/"+dsID+"/events?wait=1", codec.ContentType, frame)
		if w.Code != http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if w.Code != http.StatusAccepted {
		t.Fatalf("flush post: status %d body %s", w.Code, w.Body.String())
	}
	accepted.Add(3)
	ds := decode[DatasetResponse](t, do(t, s, "GET", "/v1/datasets/"+dsID, nil))
	if int64(ds.Rows) != accepted.Load() {
		t.Fatalf("rows = %d, want %d acked appends (rejected batches: %d)",
			ds.Rows, accepted.Load(), rejectedCount.Load())
	}
	t.Logf("accepted %d events, rejected %d batches", accepted.Load(), rejectedCount.Load())
}
