package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"blowfish"
	"blowfish/internal/service"
)

// APIError is the structured error body: {"error": {"code", "message"}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

// httpStatus maps an error code to its response status. Every code in
// service.Codes has an explicit case (enforced by the errcode analyzer);
// the default covers uncoded fallback strings from writeError callers.
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownPolicy, CodeUnknownDataset, CodeUnknownSession, CodeUnknownStream:
		return http.StatusNotFound
	case CodeBudgetExhausted, CodePolicyInUse, CodeDatasetInUse:
		return http.StatusConflict
	case CodeDomainMismatch:
		return http.StatusUnprocessableEntity
	case CodeDurability:
		return http.StatusInternalServerError
	case CodeQueueFull:
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code, message string) {
	writeJSON(w, httpStatus(code), errorEnvelope{Error: APIError{Code: code, Message: message}})
}

// writeServiceError renders a service-layer failure. Coded errors carry
// their own status mapping; a queue_full rejection additionally gets a
// Retry-After hint (seconds, coarse — the queue drains in milliseconds
// under a healthy writer, so the minimum legal value 1 is the hint;
// clients treat it as "back off, then retry"). Uncoded errors fall back
// to the library mapping.
func writeServiceError(w http.ResponseWriter, err error) {
	var se *service.Error
	if errors.As(err, &se) {
		if se.Code == CodeQueueFull {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, se.Code, se.Message)
		return
	}
	writeLibError(w, err)
}

// writeLibError maps a blowfish library error onto the structured error
// vocabulary: budget exhaustion and domain mismatches get their dedicated
// codes, everything else is a bad request.
func writeLibError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, blowfish.ErrBudgetExceeded):
		writeError(w, CodeBudgetExhausted, err.Error())
	case errors.Is(err, blowfish.ErrDomainMismatch):
		writeError(w, CodeDomainMismatch, err.Error())
	default:
		writeError(w, CodeBadRequest, err.Error())
	}
}
