package server

// End-to-end coverage for custom secret graphs: the explicit and compose
// policy kinds through the HTTP API, their compiled-plan releases, the
// durable-recovery path, and the stream-exhaustion poll regression.

import (
	"net/http"
	"reflect"
	"testing"
)

// bandEdges is a small "salary bands" graph over v:64: values are secrets
// within three bands, with one bridge edge between adjacent bands.
func bandEdges() [][2][]int {
	var edges [][2][]int
	band := func(lo, hi int) {
		for x := lo; x <= hi; x++ {
			for y := x + 1; y <= hi; y++ {
				edges = append(edges, [2][]int{{x}, {y}})
			}
		}
	}
	band(0, 15)
	band(16, 39)
	band(40, 63)
	edges = append(edges, [2][]int{{15}, {16}}, [2][]int{{39}, {40}})
	return edges
}

func TestExplicitPolicyEndToEnd(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()

	w := do(t, s, "POST", "/v1/policies", CreatePolicyRequest{
		Domain: lineDomain,
		Graph:  GraphSpec{Kind: "explicit", Name: "bands", Edges: bandEdges()},
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("create explicit policy: %d %s", w.Code, w.Body.String())
	}
	pol := decode[PolicyResponse](t, w)
	if pol.Edges != len(bandEdges()) || pol.Components != 1 {
		t.Fatalf("policy stats = %d edges, %d components; want %d edges, 1 component",
			pol.Edges, pol.Components, len(bandEdges()))
	}
	if pol.HistogramSensitivity != 2 {
		t.Fatalf("histogram sensitivity = %v, want 2", pol.HistogramSensitivity)
	}

	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: pol.ID, Rows: lineRows(200, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: pol.ID, Budget: 10, Seed: i64(5)})

	hist := decode[HistogramResponse](t, do(t, s, "POST",
		"/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5}))
	if len(hist.Counts) != 64 {
		t.Fatalf("histogram length %d", len(hist.Counts))
	}
	cum := decode[CumulativeResponse](t, do(t, s, "POST",
		"/v1/sessions/"+sessID+"/releases/cumulative", CumulativeRequest{DatasetID: dsID, Epsilon: 0.5}))
	if len(cum.Inferred) != 64 {
		t.Fatalf("cumulative length %d", len(cum.Inferred))
	}
	rng := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/range", RangeRequest{
		DatasetID: dsID, Epsilon: 0.5, Queries: []RangeQuery{{Lo: 0, Hi: 30}, {Lo: 16, Hi: 39}},
	})
	if rng.Code != http.StatusOK {
		t.Fatalf("range release over explicit policy: %d %s", rng.Code, rng.Body.String())
	}
}

// TestExplicitPolicySeededDeterminism pins the compiled path's determinism:
// two servers given the same seeded requests over an explicit policy answer
// bit-for-bit identical releases.
func TestExplicitPolicySeededDeterminism(t *testing.T) {
	run := func() []float64 {
		s, _ := newTestServer(t)
		defer s.Close()
		polID := mustCreatePolicy(t, s, CreatePolicyRequest{
			Domain: lineDomain,
			Graph:  GraphSpec{Kind: "explicit", Edges: bandEdges()},
		})
		dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(100, 64)})
		sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 5, Seed: i64(99)})
		return decode[HistogramResponse](t, do(t, s, "POST",
			"/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.4})).Counts
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("seeded explicit-policy releases diverged across servers")
	}
}

func TestComposePolicyKinds(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()

	// Union: line graph plus a wrap-around edge.
	union := decode[PolicyResponse](t, do(t, s, "POST", "/v1/policies", CreatePolicyRequest{
		Domain: lineDomain,
		Graph: GraphSpec{Kind: "compose", Op: "union", Graphs: []GraphSpec{
			{Kind: "line"},
			{Kind: "explicit", Edges: [][2][]int{{{0}, {63}}}},
		}},
	}))
	if union.Edges != 64 || union.Components != 1 {
		t.Fatalf("union stats = %+v, want 64 edges, 1 component", union)
	}

	// Intersection: threshold θ=4 ∩ explicit pairs keeps only short pairs.
	inter := decode[PolicyResponse](t, do(t, s, "POST", "/v1/policies", CreatePolicyRequest{
		Domain: lineDomain,
		Graph: GraphSpec{Kind: "compose", Op: "intersect", Graphs: []GraphSpec{
			{Kind: "l1", Theta: 4},
			{Kind: "explicit", Edges: [][2][]int{{{0}, {2}}, {{0}, {40}}}},
		}},
	}))
	if inter.Edges != 1 {
		t.Fatalf("intersect edges = %d, want 1", inter.Edges)
	}

	// Product over a grid: free x moves, neighbor-only y moves. The product
	// stays implicit, so no edge stats are reported.
	grid := []AttrSpec{{Name: "x", Size: 20}, {Name: "y", Size: 12}}
	prod := decode[PolicyResponse](t, do(t, s, "POST", "/v1/policies", CreatePolicyRequest{
		Domain: grid,
		Graph: GraphSpec{Kind: "compose", Op: "product", Graphs: []GraphSpec{
			{Kind: "full"},
			{Kind: "line"},
		}},
	}))
	if prod.Edges != 0 || prod.Components != 0 {
		t.Fatalf("product should report no explicit stats, got %+v", prod)
	}
	if prod.HistogramSensitivity != 2 {
		t.Fatalf("product histogram sensitivity = %v, want 2", prod.HistogramSensitivity)
	}
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: prod.ID, Rows: [][]int{{1, 2}, {3, 4}, {19, 11}}})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: prod.ID, Budget: 2, Seed: i64(3)})
	hist := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram",
		HistogramRequest{DatasetID: dsID, Epsilon: 0.5})
	if hist.Code != http.StatusOK {
		t.Fatalf("histogram over product policy: %d %s", hist.Code, hist.Body.String())
	}
}

func TestExplicitPolicyValidation(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	cases := []struct {
		name  string
		graph GraphSpec
	}{
		{"no edges", GraphSpec{Kind: "explicit"}},
		{"self loop", GraphSpec{Kind: "explicit", Edges: [][2][]int{{{3}, {3}}}}},
		{"row out of range", GraphSpec{Kind: "explicit", Edges: [][2][]int{{{0}, {64}}}}},
		{"row arity", GraphSpec{Kind: "explicit", Edges: [][2][]int{{{0, 1}, {2, 3}}}}},
		{"compose bad op", GraphSpec{Kind: "compose", Op: "xor", Graphs: []GraphSpec{{Kind: "full"}}}},
		{"compose no operands", GraphSpec{Kind: "compose", Op: "union"}},
		{"product arity", GraphSpec{Kind: "compose", Op: "product", Graphs: []GraphSpec{{Kind: "full"}, {Kind: "full"}}}},
	}
	for _, tc := range cases {
		w := do(t, s, "POST", "/v1/policies", CreatePolicyRequest{Domain: lineDomain, Graph: tc.graph})
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
	}
}

// TestStreamExhaustedPlainPoll is the regression test for the satellite
// bugfix: an exhausted stream polled past its last release WITHOUT wait_ms
// must answer the terminal budget_exhausted error, not an empty 200
// forever (the terminal signal used to be reachable only through the
// long-poll branch).
func TestStreamExhaustedPlainPoll(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID:  polID,
		DatasetID: dsID,
		Budget:    0.2,
		Seed:      i64(21),
		Epoch:     EpochSpec{Epsilon: 0.1},
	})
	postEvents(t, s, dsID, appendEvents(1, 2, 3))
	for i := 0; i < 2; i++ {
		if w := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil); w.Code != http.StatusOK {
			t.Fatalf("close %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	// The third close is refused for budget, which flags the stream as
	// permanently exhausted.
	wantError(t, do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil), http.StatusConflict, CodeBudgetExhausted)
	st := decode[StreamResponse](t, do(t, s, "GET", "/v1/streams/"+stID, nil))
	if !st.Exhausted {
		t.Fatalf("stream not exhausted after spending the budget: %+v", st)
	}

	// Buffered releases still drain normally on a plain poll.
	w := do(t, s, "GET", "/v1/streams/"+stID+"/releases", nil)
	drained := decode[StreamReleasesResponse](t, w)
	if w.Code != http.StatusOK || len(drained.Releases) != 2 {
		t.Fatalf("drain poll = %d with %d releases, want 200 with 2", w.Code, len(drained.Releases))
	}

	// Past the last release, a plain poll gets the terminal signal.
	w = do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=2", nil)
	wantError(t, w, http.StatusConflict, CodeBudgetExhausted)

	// And it stays terminal on repeat polls.
	w = do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=2", nil)
	wantError(t, w, http.StatusConflict, CodeBudgetExhausted)
}

// TestRecoveryExplicitPolicy pins the durable path for custom graphs: an
// explicit-graph policy and its seeded session survive a crash-style
// restart (no final checkpoint) with registry stats intact, and the
// post-recovery release is bit-for-bit what a never-crashed server would
// have produced.
func TestRecoveryExplicitPolicy(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := GraphSpec{Kind: "explicit", Name: "bands", Edges: bandEdges()}
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: spec})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(150, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 5, Seed: i64(77)})
	pre := decode[HistogramResponse](t, do(t, s, "POST",
		"/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5}))
	abandon(s) // crash stand-in: WAL only, no snapshot

	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer abandon(r)
	pol := decode[PolicyResponse](t, do(t, r, "GET", "/v1/policies/"+polID, nil))
	if pol.Edges != len(bandEdges()) || pol.Components != 1 {
		t.Fatalf("recovered policy stats = %+v", pol)
	}
	sess := decode[SessionResponse](t, do(t, r, "GET", "/v1/sessions/"+sessID, nil))
	if sess.Spent != 0.5 {
		t.Fatalf("recovered session spent %v, want 0.5", sess.Spent)
	}
	post := decode[HistogramResponse](t, do(t, r, "POST",
		"/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5}))

	// Control: the same request sequence on one in-memory server.
	ctl, _ := newTestServer(t)
	defer ctl.Close()
	cPol := mustCreatePolicy(t, ctl, CreatePolicyRequest{Domain: lineDomain, Graph: spec})
	cDS := mustCreateDataset(t, ctl, CreateDatasetRequest{PolicyID: cPol, Rows: lineRows(150, 64)})
	cSess := mustCreateSession(t, ctl, CreateSessionRequest{PolicyID: cPol, Budget: 5, Seed: i64(77)})
	want1 := decode[HistogramResponse](t, do(t, ctl, "POST",
		"/v1/sessions/"+cSess+"/releases/histogram", HistogramRequest{DatasetID: cDS, Epsilon: 0.5}))
	want2 := decode[HistogramResponse](t, do(t, ctl, "POST",
		"/v1/sessions/"+cSess+"/releases/histogram", HistogramRequest{DatasetID: cDS, Epsilon: 0.5}))
	if !reflect.DeepEqual(pre.Counts, want1.Counts) {
		t.Fatal("pre-crash explicit release diverges from control")
	}
	if !reflect.DeepEqual(post.Counts, want2.Counts) {
		t.Fatal("post-recovery explicit release diverges from control (noise stream not restored bit-for-bit)")
	}
}
