package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"blowfish/internal/service"
)

// decodeJSON parses a request body into v, rejecting unknown fields so
// misspelled parameters fail loudly instead of silently defaulting.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, CodeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.svc.SessionCount(),
		"streams":  s.svc.StreamCount(),
	})
}

func (s *Server) handleCreatePolicy(w http.ResponseWriter, r *http.Request) {
	var req CreatePolicyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.CreatePolicy(req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	resp, err := s.svc.GetPolicy(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListPolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ListPolicies())
}

func (s *Server) handleDeletePolicy(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.DeletePolicy(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req CreateDatasetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.CreateDataset(req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	resp, err := s.svc.GetDataset(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ListDatasets())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.DeleteDataset(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.CreateSession(req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	resp, err := s.svc.GetSession(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ListSessions())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.DeleteSession(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	var req HistogramRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.Histogram(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCumulative(w http.ResponseWriter, r *http.Request) {
	var req CumulativeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.Cumulative(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.Range(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint triggers a manual checkpoint. An in-memory service has
// nothing to checkpoint; that stays a client error, not a durability one.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	stats, err := s.svc.Checkpoint()
	switch {
	case errors.Is(err, service.ErrNotDurable):
		writeError(w, CodeBadRequest, "server is not durable (no data directory configured)")
	case err != nil:
		writeError(w, CodeDurability, err.Error())
	default:
		writeJSON(w, http.StatusOK, stats)
	}
}
