package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"blowfish"
)

// decodeJSON parses a request body into v, rejecting unknown fields so
// misspelled parameters fail loudly instead of silently defaulting.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, CodeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.SessionCount(),
		"streams":  s.StreamCount(),
	})
}

func (s *Server) handleListPolicies(w http.ResponseWriter, r *http.Request) {
	entries := snapshotSorted(s, s.policies, func(e *policyEntry) string { return e.id })
	resp := ListPoliciesResponse{Policies: make([]PolicyResponse, len(entries))}
	for i, e := range entries {
		resp.Policies[i] = policyResponse(e)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	entries := snapshotSorted(s, s.datasets, func(e *datasetEntry) string { return e.id })
	resp := ListDatasetsResponse{Datasets: make([]DatasetResponse, len(entries))}
	for i, e := range entries {
		// Row counts read under the table lock: ingestion may be landing.
		e.tbl.RLock()
		rows := e.ds.Len()
		e.tbl.RUnlock()
		resp.Datasets[i] = DatasetResponse{ID: e.id, Rows: rows, Domain: e.attrs}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	entries := snapshotSorted(s, s.sessions, func(e *sessionEntry) string { return e.id })
	resp := ListSessionsResponse{Sessions: make([]SessionResponse, len(entries))}
	for i, e := range entries {
		resp.Sessions[i] = sessionResponse(e, false)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreatePolicy(w http.ResponseWriter, r *http.Request) {
	var req CreatePolicyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	e, err := buildPolicyEntry(req.Domain, req.Graph)
	if err != nil {
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	e.id = s.newID(0, "pol")
	if err := s.journal(recPolicyPut, walPolicyPut{ID: e.id, Domain: e.attrs, Graph: e.graph}); err != nil {
		s.mu.Unlock()
		writeError(w, CodeDurability, err.Error())
		return
	}
	s.policies[e.id] = e
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, policyResponse(e))
}

func policyResponse(e *policyEntry) PolicyResponse {
	return PolicyResponse{
		ID:                   e.id,
		Name:                 e.pol.Name(),
		Domain:               e.attrs,
		DomainSize:           e.pol.Domain().Size(),
		HistogramSensitivity: e.histSens,
		Edges:                e.edges,
		Components:           e.components,
	}
}

func (s *Server) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	e, ok := s.getPolicy(r.PathValue("id"))
	if !ok {
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, policyResponse(e))
}

// handleDeletePolicy unregisters a policy. Deletion is refused while any
// live session references it: a release against such a session would
// otherwise silently lose the policy's partition and fall back to a
// different mechanism.
func (s *Server) handleDeletePolicy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.policies[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", id))
		return
	}
	for _, sess := range s.sessions {
		if sess.policyID == id {
			s.mu.Unlock()
			writeError(w, CodePolicyInUse, fmt.Sprintf("policy %q has live sessions (e.g. %q); delete or expire them first", id, sess.id))
			return
		}
	}
	for _, st := range s.streams {
		if st.policyID == id {
			s.mu.Unlock()
			writeError(w, CodePolicyInUse, fmt.Sprintf("policy %q has live streams (e.g. %q); delete them first", id, st.id))
			return
		}
	}
	if err := s.journalDelete(nsPolicy, id); err != nil {
		s.mu.Unlock()
		writeError(w, CodeDurability, err.Error())
		return
	}
	delete(s.policies, id)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleDeleteDataset unregisters a dataset. In-flight releases holding the
// entry finish against their own reference; new requests see 404. Every
// compiled policy drops its cached index for the dataset so the count
// vectors are released with it.
func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	for _, st := range s.streams {
		if st.datasetID == id {
			s.mu.Unlock()
			writeError(w, CodeDatasetInUse, fmt.Sprintf("dataset %q has live streams (e.g. %q); delete them first", id, st.id))
			return
		}
	}
	e, ok := s.datasets[id]
	if ok {
		if err := s.journalDelete(nsDataset, id); err != nil {
			s.mu.Unlock()
			writeError(w, CodeDurability, err.Error())
			return
		}
	}
	delete(s.datasets, id)
	// Snapshot the compiled policies under the registry lock but run
	// Forget after releasing it: Forget takes each plan's own mutex, which
	// an in-flight release may hold for an expensive compile step (a
	// first-use tree build), and every handler needs s.mu.
	var cps []*blowfish.CompiledPolicy
	if ok {
		cps = make([]*blowfish.CompiledPolicy, 0, len(s.policies))
		for _, pe := range s.policies {
			//lint:allow detorder Forget only drops per-plan cached indexes; call order is unobservable (no output, no WAL record, no ledger change)
			cps = append(cps, pe.cp)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", id))
		return
	}
	// Stop the event-log writer (flushing its queue) before dropping the
	// count vectors, so no batch lands on a forgotten index.
	e.closeIngestor()
	for _, cp := range cps {
		cp.Forget(e.ds)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req CreateDatasetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var attrs []AttrSpec
	switch {
	case req.PolicyID != "" && len(req.Domain) > 0:
		writeError(w, CodeBadRequest, "give policy_id or domain, not both")
		return
	case req.PolicyID != "":
		pe, ok := s.getPolicy(req.PolicyID)
		if !ok {
			writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", req.PolicyID))
			return
		}
		attrs = pe.attrs
	case len(req.Domain) > 0:
		attrs = req.Domain
	default:
		writeError(w, CodeBadRequest, "dataset needs a policy_id or an inline domain")
		return
	}
	dom, err := buildDomain(attrs)
	if err != nil {
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	pts := make([]blowfish.Point, len(req.Rows))
	for i, row := range req.Rows {
		p, err := dom.Encode(row...)
		if err != nil {
			writeError(w, CodeBadRequest, fmt.Sprintf("row %d: %v", i, err))
			return
		}
		pts[i] = p
	}
	e, err := s.buildDatasetEntry(attrs, pts)
	if err != nil {
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, CodeBadRequest, "server is shutting down")
		return
	}
	e.id = s.newID(1, "ds")
	if err := s.journal(recDatasetPut, walDatasetPut{ID: e.id, Domain: e.attrs, Points: pts}); err != nil {
		s.mu.Unlock()
		writeError(w, CodeDurability, err.Error())
		return
	}
	if s.persist != nil {
		e.tbl.SetJournal(s.eventJournal(e.id))
	}
	s.datasets[e.id] = e
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, DatasetResponse{ID: e.id, Rows: e.ds.Len(), Domain: e.attrs})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	e, ok := s.getDataset(r.PathValue("id"))
	if !ok {
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", r.PathValue("id")))
		return
	}
	// Row counts read under the table lock: ingestion may be landing.
	e.tbl.RLock()
	rows := e.ds.Len()
	e.tbl.RUnlock()
	writeJSON(w, http.StatusOK, DatasetResponse{ID: e.id, Rows: rows, Domain: e.attrs})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	pe, ok := s.getPolicy(req.PolicyID)
	if !ok {
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", req.PolicyID))
		return
	}
	// Sessions run on the policy's compiled plan with one noise shard per
	// CPU, so parallel release requests draw noise concurrently. An
	// explicitly seeded session instead pins a single shard: its noise
	// stream must reproduce across hosts, so it cannot depend on core
	// count.
	seed, shards := s.resolveSeed(req.Seed)
	e, err := s.buildSessionEntry(pe, req.Budget, seed, shards)
	if err != nil {
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	// Re-check under the write lock that inserts the session: a concurrent
	// policy deletion in the lookup window must not leave a session
	// referencing an unregistered policy.
	if _, still := s.policies[pe.id]; !still {
		s.mu.Unlock()
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", req.PolicyID))
		return
	}
	e.id = s.newID(2, "sess")
	if err := s.journal(recSessionPut, walSessionPut{
		ID: e.id, PolicyID: pe.id, Budget: req.Budget,
		Seed: seed, Shards: shards, NextSeed: s.nextSeed.Load(),
	}); err != nil {
		s.mu.Unlock()
		writeError(w, CodeDurability, err.Error())
		return
	}
	s.sessions[e.id] = e
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionResponse(e, false))
}

func sessionResponse(e *sessionEntry, withLog bool) SessionResponse {
	acct := e.sess.Accountant()
	resp := SessionResponse{
		ID:        e.id,
		PolicyID:  e.policyID,
		Budget:    acct.Budget(),
		Spent:     acct.Spent(),
		Remaining: acct.Remaining(),
	}
	if withLog {
		for _, rel := range acct.Releases() {
			resp.Releases = append(resp.Releases, ReleaseRecord{Label: rel.Label, Epsilon: rel.Epsilon})
		}
	}
	return resp
}

// sessionFor resolves the {id} path segment, writing the structured
// unknown-session error on miss.
func (s *Server) sessionFor(w http.ResponseWriter, r *http.Request) (*sessionEntry, bool) {
	e, ok := s.getSession(r.PathValue("id"))
	if !ok {
		writeError(w, CodeUnknownSession, fmt.Sprintf("no session %q (expired or never created)", r.PathValue("id")))
		return nil, false
	}
	return e, true
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessionFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sessionResponse(e, true))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	if ok {
		if err := s.journalDelete(nsSession, id); err != nil {
			s.mu.Unlock()
			writeError(w, CodeDurability, err.Error())
			return
		}
	}
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, CodeUnknownSession, fmt.Sprintf("no session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// datasetFor resolves a dataset id from a release request body.
func (s *Server) datasetFor(w http.ResponseWriter, id string) (*datasetEntry, bool) {
	e, ok := s.getDataset(id)
	if !ok {
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", id))
		return nil, false
	}
	return e, true
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessionFor(w, r)
	if !ok {
		return
	}
	var req HistogramRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	de, ok := s.datasetFor(w, req.DatasetID)
	if !ok {
		return
	}
	// On the durable path the release and its WAL record form one critical
	// section (see sessionEntry.relMu).
	if unlock := s.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	var counts []float64
	var err error
	// The table read lock orders the release against streaming ingestion:
	// event batches and window expiry take the write side.
	de.tbl.RLock()
	if e.pol.part != nil {
		// Partition policies answer the block histogram h_P; when every
		// secret pair stays within a block the release is exact and free.
		counts, err = e.sess.ReleasePartitionHistogram(de.ds, e.pol.part, req.Epsilon)
	} else {
		counts, err = e.sess.ReleaseHistogram(de.ds, req.Epsilon)
	}
	de.tbl.RUnlock()
	if err != nil {
		writeLibError(w, err)
		return
	}
	if err := s.journalRelease(e, "histogram", req.DatasetID, req.Epsilon, 0); err != nil {
		writeError(w, CodeDurability, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, HistogramResponse{Counts: counts, Remaining: e.sess.Remaining()})
}

func (s *Server) handleCumulative(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessionFor(w, r)
	if !ok {
		return
	}
	var req CumulativeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	de, ok := s.datasetFor(w, req.DatasetID)
	if !ok {
		return
	}
	if unlock := s.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	de.tbl.RLock()
	rel, err := e.sess.ReleaseCumulativeHistogram(de.ds, req.Epsilon)
	de.tbl.RUnlock()
	if err != nil {
		writeLibError(w, err)
		return
	}
	if err := s.journalRelease(e, "cumulative", req.DatasetID, req.Epsilon, 0); err != nil {
		writeError(w, CodeDurability, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CumulativeResponse{
		Raw:       rel.Raw,
		Inferred:  rel.Inferred,
		Remaining: e.sess.Remaining(),
	})
}

const defaultFanout = 16

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	e, ok := s.sessionFor(w, r)
	if !ok {
		return
	}
	var req RangeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, CodeBadRequest, "range release needs at least one query")
		return
	}
	de, ok := s.datasetFor(w, req.DatasetID)
	if !ok {
		return
	}
	// Validate query bounds before building the releaser: a malformed
	// query must not cost budget.
	size := int(de.ds.Domain().Size())
	for i, q := range req.Queries {
		if q.Lo < 0 || q.Hi >= size || q.Lo > q.Hi {
			writeError(w, CodeBadRequest, fmt.Sprintf("query %d: invalid range [%d,%d] over domain size %d", i, q.Lo, q.Hi, size))
			return
		}
	}
	fanout := req.Fanout
	if fanout == 0 {
		fanout = defaultFanout
	}
	if unlock := s.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	// The released structure is a snapshot; only its construction needs to
	// be ordered against streaming ingestion.
	de.tbl.RLock()
	rel, err := e.sess.NewRangeReleaser(de.ds, fanout, req.Epsilon)
	de.tbl.RUnlock()
	if err != nil {
		writeLibError(w, err)
		return
	}
	if err := s.journalRelease(e, "range", req.DatasetID, req.Epsilon, fanout); err != nil {
		writeError(w, CodeDurability, err.Error())
		return
	}
	answers := make([]float64, len(req.Queries))
	for i, q := range req.Queries {
		answers[i], err = rel.Range(q.Lo, q.Hi)
		if err != nil {
			writeError(w, CodeBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, RangeResponse{Answers: answers, Remaining: e.sess.Remaining()})
}
