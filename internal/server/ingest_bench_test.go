package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blowfish"
	"blowfish/internal/codec"
)

// ingestBenchFixture stands up a server with an empty streamable dataset
// and returns the events path plus the 256-event batch in every encoding.
func ingestBenchFixture(b *testing.B) (s *Server, path string, ndjson, binary, envelope []byte) {
	b.Helper()
	s = New(Config{Seed: 1})
	b.Cleanup(s.Close)
	post := func(p string, body any) []byte {
		b.Helper()
		raw, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", p, bytes.NewReader(raw))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusCreated {
			b.Fatalf("POST %s: %d %s", p, w.Code, w.Body.String())
		}
		return w.Body.Bytes()
	}
	var pol PolicyResponse
	_ = json.Unmarshal(post("/v1/policies", CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 1024}},
		Graph:  GraphSpec{Kind: "l1", Theta: 16},
	}), &pol)
	// Preload the rows the benchmark batches upsert over, so the dataset
	// holds a constant 256 tuples however long the bench runs — appends
	// would grow it with b.N and make the apply side's cost depend on how
	// many batches the encoding under test managed to push.
	const batch = 256
	rows := make([][]int, batch)
	for i := range rows {
		rows[i] = []int{i % 1024}
	}
	var ds DatasetResponse
	_ = json.Unmarshal(post("/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID, Rows: rows}), &ds)
	path = "/v1/datasets/" + ds.ID + "/events"

	events := make([]blowfish.StreamEvent, batch)
	wires := make([]EventWire, batch)
	var nd bytes.Buffer
	for i := range events {
		v := (i + 1) % 1024
		events[i] = blowfish.StreamEvent{Op: "upsert", ID: i, Row: []int{v}}
		wires[i] = EventWire{Op: "upsert", ID: i, Row: []int{v}}
		fmt.Fprintf(&nd, `{"op":"upsert","id":%d,"row":[%d]}`+"\n", i, v)
	}
	bin, err := codec.EncodeFrame(events, 1)
	if err != nil {
		b.Fatal(err)
	}
	env, _ := json.Marshal(EventsRequest{Events: wires})
	return s, path, nd.Bytes(), bin, env
}

// postBatch submits one pre-encoded batch, backing off on queue_full (the
// bounded queue's backpressure is part of the measured pipeline; a client
// that hot-spins on 429 re-decodes the batch each try and starves the
// writer of the core, so the backoff mirrors what Retry-After asks for).
func postBatch(b *testing.B, s *Server, path, contentType string, body []byte) {
	for {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusAccepted:
			return
		case http.StatusTooManyRequests:
			time.Sleep(20 * time.Microsecond)
		default:
			b.Fatalf("events: %d %s", w.Code, w.Body.String())
		}
	}
}

// drain waits until the writer has applied everything submitted, so
// events/s reflects applied throughput, not just an overfilled queue.
func drain(b *testing.B, s *Server, path string) {
	postBatch(b, s, path+"?wait=1", "application/x-ndjson", []byte(`{"op":"append","row":[0]}`+"\n"))
}

// The ingest benchmarks push identical 256-append batches through each
// encoding of POST /v1/datasets/{id}/events; the events/s metric is what
// BENCH_ingest.json records and the ≥2x binary-over-NDJSON target compares.

func BenchmarkIngestNDJSON(b *testing.B) {
	s, path, nd, _, _ := ingestBenchFixture(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(nd)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, s, path, "application/x-ndjson", nd)
	}
	drain(b, s, path)
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkIngestBinary(b *testing.B) {
	s, path, _, bin, _ := ingestBenchFixture(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, s, path, codec.ContentType, bin)
	}
	drain(b, s, path)
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkIngestJSONEnvelope(b *testing.B) {
	s, path, _, _, env := ingestBenchFixture(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(env)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, s, path, "application/json", env)
	}
	drain(b, s, path)
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "events/s")
}
