package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"blowfish/internal/leak"
)

// metricsFixture drives one of everything through a durable server so the
// scrape has data in every family: a policy, a dataset with rows and
// ingested events, a session with histogram and range releases, and a
// stream with a closed epoch.
func metricsFixture(t *testing.T, s *Server) {
	t.Helper()
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: lineDomain,
		Graph:  GraphSpec{Kind: "line"},
	})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(128, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 10})
	if w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram",
		HistogramRequest{DatasetID: dsID, Epsilon: 0.5}); w.Code != http.StatusOK {
		t.Fatalf("histogram release: status %d body %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/range", RangeRequest{
		DatasetID: dsID, Epsilon: 0.5, Queries: []RangeQuery{{Lo: 0, Hi: 31}},
	}); w.Code != http.StatusOK {
		t.Fatalf("range release: status %d body %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{
		Events: []EventWire{{Op: "append", Row: []int{7}}, {Op: "append", Row: []int{9}}},
		Wait:   true,
	}); w.Code != http.StatusAccepted {
		t.Fatalf("events: status %d body %s", w.Code, w.Body.String())
	}
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 10,
		Epoch: EpochSpec{Epsilon: 0.01},
	})
	if w := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil); w.Code != http.StatusOK {
		t.Fatalf("epoch close: status %d body %s", w.Code, w.Body.String())
	}
}

// TestMetricsEndpoint scrapes GET /metrics after exercising every
// subsystem and asserts each metric family of the acceptance criteria is
// present in the Prometheus text exposition.
func TestMetricsEndpoint(t *testing.T) {
	leak.Check(t)
	s, err := Open(Config{Seed: 7, Durability: DurabilityConfig{Dir: t.TempDir(), Fsync: "always"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	metricsFixture(t, s)

	w := do(t, s, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus text 0.0.4", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		// HTTP middleware: per-route counters and latency histograms.
		`blowfish_http_requests_total{route="POST /v1/sessions/{id}/releases/histogram",status="200"} 1`,
		`blowfish_http_request_seconds_bucket{route="POST /v1/policies",le="+Inf"} 1`,
		// Engine: per-policy, per-kind release latency histograms + counts.
		`blowfish_release_seconds_bucket{policy="pol-1",kind="histogram",le="+Inf"} `,
		`blowfish_releases_total{policy="pol-1",kind="range"} 1`,
		"blowfish_noise_draws_total",
		// Composition: per-session budget spent/remaining gauges.
		`blowfish_session_budget_spent{session="sess-1",policy="pol-1"} 1`,
		`blowfish_session_budget_remaining{session="sess-1",policy="pol-1"} 9`,
		// Stream: ingest queue depth, epoch lag, waiters, epoch cursor.
		`blowfish_ingest_queue_depth{dataset="ds-1"} 0`,
		`blowfish_stream_epoch_lag_seconds{stream="stream-1"}`,
		`blowfish_stream_epoch{stream="stream-1"} 1`,
		`blowfish_stream_waiters{stream="stream-1"} 0`,
		// Ingest writer instruments.
		"blowfish_ingest_events_total 2",
		"blowfish_ingest_apply_seconds_count 1",
		// WAL: fsync latency histogram, segments, bytes.
		"blowfish_wal_fsync_seconds_count",
		"blowfish_wal_segments 1",
		"blowfish_wal_appends_total",
		// Exposition headers.
		"# TYPE blowfish_release_seconds histogram",
		"# TYPE blowfish_wal_fsync_seconds histogram",
		"# HELP blowfish_session_budget_spent",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestMetricsHTTPStatusLabels checks that error responses are counted
// under their status code (and the queue-full counter stays tied to 429s,
// covered by the backpressure tests).
func TestMetricsHTTPStatusLabels(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	if w := do(t, s, "GET", "/v1/sessions/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("expected 404, got %d", w.Code)
	}
	body := do(t, s, "GET", "/metrics", nil).Body.String()
	want := `blowfish_http_requests_total{route="GET /v1/sessions/{id}",status="404"} 1`
	if !strings.Contains(body, want) {
		t.Fatalf("scrape missing %q in:\n%s", want, body)
	}
}

// TestLongPollShutdownRace parks many long-poll release waiters against
// streams whose epochs are closing concurrently, then closes the server
// mid-flight: every waiter must return promptly — with a release, an empty
// clean close, or a late-arrival error — and no goroutine may outlive
// Close (the leak watchdog and the server's own drain accounting agree).
func TestLongPollShutdownRace(t *testing.T) {
	leak.Check(t)
	s, _ := newTestServer(t)
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1e9,
		Epoch: EpochSpec{Epsilon: 0.01},
	})

	const waiters = 24
	var wg sync.WaitGroup
	results := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each waiter long-polls with a deadline far beyond the test's
			// patience: only an epoch close or the shutdown can answer it.
			w := do(t, s, "GET", "/v1/streams/"+stID+"/releases?wait_ms=20000", nil)
			results <- w.Code
		}()
	}
	var closers sync.WaitGroup
	stop := make(chan struct{})
	closers.Add(1)
	go func() {
		defer closers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(10 * time.Millisecond) // let waiters park and epochs close
	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung with long-poll waiters parked")
	}
	close(stop)
	closers.Wait()

	waitersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitersDone)
	}()
	select {
	case <-waitersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll waiters still parked after Server.Close")
	}
	close(results)
	for code := range results {
		// 200 with or without releases is the clean outcome; a request that
		// lost the race with shutdown may see a structured error, but never
		// a hang (enforced above) and never a 5xx.
		if code >= 500 {
			t.Errorf("waiter got status %d", code)
		}
	}
	if n := s.CloseLeaked(); n != 0 {
		t.Errorf("Close abandoned %d goroutines at its drain deadline", n)
	}
}
