package server

// Crash-recovery tests. The deterministic contract under test: with
// fsync=always, every operation the server acknowledged survives kill -9 —
// budget spend is monotone (never lower than any acked charge), no acked
// ingest event is lost, and a seeded single-shard stream's post-recovery
// releases are bit-for-bit what a never-crashed server would have
// produced.
//
// TestCrashRecovery re-executes this test binary as a child process (see
// TestMain) running a real durable HTTP server, drives it over HTTP,
// SIGKILLs it mid-ingest, and recovers the data directory in-process.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"blowfish"

	"blowfish/internal/wal"
)

const crashChildEnv = "BLOWFISH_CRASH_CHILD_DIR"

// TestMain turns the test binary into a durable server when re-executed as
// the crash child: it serves until killed, never returning.
func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		runCrashChild(dir)
		return // unreachable: runCrashChild blocks until killed
	}
	os.Exit(m.Run())
}

// runCrashChild serves a durable server on a random port, writing the
// address to <dir>/../addr for the parent, with the WAL in <dir>.
func runCrashChild(dir string) {
	srv, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "always"}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	addrFile := filepath.Join(filepath.Dir(dir), "addr")
	if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	_ = http.Serve(ln, srv)
	select {} // hold until SIGKILL
}

// httpJSON posts (or gets) JSON against the child server.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func i64(v int64) *int64 { return &v }

// crashGraphSpec drives the kill -9 harness through the custom-graph path:
// a composed union of the line graph and an explicit wrap edge over v:16.
// The crash child registers it over HTTP and the control server replays
// it, so recovery must rebuild the identical compiled plan from the
// journaled spec for the bit-for-bit assertions below to hold.
var crashGraphSpec = GraphSpec{Kind: "compose", Op: "union", Graphs: []GraphSpec{
	{Kind: "line"},
	{Kind: "explicit", Edges: [][2][]int{{{0}, {15}}}},
}}

// abandon tears down a durable server the way a test stands in for a
// crash: background machinery stops, but no final checkpoint is taken and
// the registries are left as they are.
func abandon(s *Server) {
	s.Core().Abandon()
}

// appendRows submits one wait=true events batch of the given rows.
func appendRows(t *testing.T, s *Server, dsID string, rows [][]int) EventsResponse {
	t.Helper()
	evs := make([]EventWire, len(rows))
	for i, r := range rows {
		evs[i] = EventWire{Op: "append", Row: r}
	}
	w := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{Events: evs, Wait: true})
	if w.Code != http.StatusAccepted {
		t.Fatalf("events: %d %s", w.Code, w.Body.String())
	}
	return decode[EventsResponse](t, w)
}

// TestCrashRecovery is the kill -9 harness (the CI `recovery` job runs it
// with -race): a child process serves durably, the parent ingests acked
// batches and closes epochs, then SIGKILLs the child mid-ingest and
// recovers the directory in-process.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	root := t.TempDir()
	dir := filepath.Join(root, "data")

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	// Wait for the child to publish its address.
	addrFile := filepath.Join(root, "addr")
	var base string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("crash child never published an address")
	}

	// --- drive the child over HTTP -----------------------------------
	var pol PolicyResponse
	httpJSON(t, "POST", base+"/v1/policies", CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 16}},
		Graph:  crashGraphSpec,
	}, &pol)
	if pol.Edges != 16 || pol.Components != 1 {
		t.Fatalf("custom-graph policy = %+v, want 16 edges in 1 component (line + wrap)", pol)
	}

	var dsA, dsB DatasetResponse
	httpJSON(t, "POST", base+"/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID}, &dsA)
	httpJSON(t, "POST", base+"/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID}, &dsB)

	// Two seeded single-shard streams: A takes the mid-ingest kill, B is
	// quiesced before the kill and carries the bit-for-bit assertion.
	var stA, stB StreamResponse
	httpJSON(t, "POST", base+"/v1/streams", CreateStreamRequest{
		PolicyID: pol.ID, DatasetID: dsA.ID, Budget: 3.0, Seed: i64(7),
		Epoch: EpochSpec{Epsilon: 0.5},
	}, &stA)
	httpJSON(t, "POST", base+"/v1/streams", CreateStreamRequest{
		PolicyID: pol.ID, DatasetID: dsB.ID, Budget: 3.0, Seed: i64(11),
		Epoch: EpochSpec{Epsilon: 0.5},
	}, &stB)

	ingest := func(dsID string, vals []int) EventsResponse {
		evs := make([]EventWire, len(vals))
		for i, v := range vals {
			evs[i] = EventWire{Op: "append", Row: []int{v}}
		}
		var out EventsResponse
		code := httpJSON(t, "POST", base+"/v1/datasets/"+dsID+"/events",
			EventsRequest{Events: evs, Wait: true}, &out)
		if code != http.StatusAccepted {
			t.Fatalf("ingest on %s: status %d", dsID, code)
		}
		return out
	}
	valsA1 := []int{1, 2, 3, 4, 5, 5, 5}
	valsB1 := []int{8, 9, 9, 10}
	ingest(dsA.ID, valsA1)
	ackB := ingest(dsB.ID, valsB1)

	closeEpoch := func(stID string) EpochReleaseWire {
		var rel EpochReleaseWire
		code := httpJSON(t, "POST", base+"/v1/streams/"+stID+"/epochs", nil, &rel)
		if code != http.StatusOK {
			t.Fatalf("epoch close on %s: status %d", stID, code)
		}
		return rel
	}
	ackedA1 := closeEpoch(stA.ID)
	ackedA2 := closeEpoch(stA.ID)
	ackedB1 := closeEpoch(stB.ID)

	// --- kill -9 mid-ingest ------------------------------------------
	// Hammer unacked batches at dataset A and kill while they are in
	// flight: everything above is acked and must survive; the storm may
	// survive partially (durable-but-unacked), never torn.
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		cl := &http.Client{Timeout: 2 * time.Second}
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := make([]EventWire, 20)
			for i := range evs {
				evs[i] = EventWire{Op: "append", Row: []int{(n + i) % 16}}
			}
			n++
			b, _ := json.Marshal(EventsRequest{Events: evs})
			resp, err := cl.Post(base+"/v1/datasets/"+dsA.ID+"/events", "application/json", bytes.NewReader(b))
			if err != nil {
				return // child died mid-request: expected
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(60 * time.Millisecond) // let the storm land mid-flight
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	killed = true
	_, _ = cmd.Process.Wait()
	close(stop)
	<-stormDone

	// --- recover in-process ------------------------------------------
	rec, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "always"}})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer abandon(rec)

	// Budget spend is monotone: exactly the acked charges for both
	// streams (no close was in flight at the kill).
	entAst, entAsess := rec.Core().StreamHandles(stA.ID)
	entBst, entBsess := rec.Core().StreamHandles(stB.ID)
	if entAst == nil || entBst == nil {
		t.Fatalf("streams not recovered: %v", rec.Core().StreamIDs())
	}
	if got := entAsess.Accountant().Spent(); got != 1.0 {
		t.Fatalf("stream A spent = %v after recovery, want 1.0 (two acked 0.5 closes)", got)
	}
	if got := entBsess.Accountant().Spent(); got != 0.5 {
		t.Fatalf("stream B spent = %v after recovery, want 0.5", got)
	}

	// No acked ingest event is lost.
	if got := rec.Core().DatasetTable(dsB.ID).LastSeq(); got < ackB.LastSeq {
		t.Fatalf("dataset B recovered seq %d < acked %d", got, ackB.LastSeq)
	}
	if got := rec.Core().DatasetHandle(dsB.ID).Len(); got != len(valsB1) {
		t.Fatalf("dataset B recovered %d rows, want %d", got, len(valsB1))
	}
	if got := rec.Core().DatasetHandle(dsA.ID).Len(); got < len(valsA1) {
		t.Fatalf("dataset A recovered %d rows, want >= %d acked", got, len(valsA1))
	}

	// Acked pre-crash releases are in the recovered buffers bit-for-bit.
	for _, tc := range []struct {
		st    *blowfish.Stream
		want  []EpochReleaseWire
		label string
	}{
		{entAst, []EpochReleaseWire{ackedA1, ackedA2}, "A"},
		{entBst, []EpochReleaseWire{ackedB1}, "B"},
	} {
		got := tc.st.ExportState().Releases
		if len(got) != len(tc.want) {
			t.Fatalf("stream %s recovered %d releases, want %d", tc.label, len(got), len(tc.want))
		}
		for i, w := range tc.want {
			if got[i].Seq != w.Seq || got[i].Epoch != w.Epoch || !reflect.DeepEqual(got[i].Histogram, w.Histogram) {
				t.Fatalf("stream %s release %d diverges:\nrecovered %+v\nacked     %+v", tc.label, i, got[i], w)
			}
		}
	}

	// Bit-for-bit vs the no-crash run: replay the acked operation
	// sequence for stream B on an in-memory control server and compare
	// the post-recovery epoch close.
	ctl := New(Config{})
	polID := mustCreatePolicy(t, ctl, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 16}},
		Graph:  crashGraphSpec,
	})
	ctlDS := mustCreateDataset(t, ctl, CreateDatasetRequest{PolicyID: polID})
	w := do(t, ctl, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: ctlDS, Budget: 3.0, Seed: i64(11),
		Epoch: EpochSpec{Epsilon: 0.5},
	})
	ctlStream := decode[StreamResponse](t, w)
	rowsB := make([][]int, len(valsB1))
	for i, v := range valsB1 {
		rowsB[i] = []int{v}
	}
	appendRows(t, ctl, ctlDS, rowsB)
	ctlRel1 := decode[EpochReleaseWire](t, do(t, ctl, "POST", "/v1/streams/"+ctlStream.ID+"/epochs", nil))
	if !reflect.DeepEqual(ctlRel1.Histogram, ackedB1.Histogram) {
		t.Fatalf("control epoch 1 diverges from the acked pre-crash release:\n%v\n%v", ctlRel1.Histogram, ackedB1.Histogram)
	}
	ctlRel2 := decode[EpochReleaseWire](t, do(t, ctl, "POST", "/v1/streams/"+ctlStream.ID+"/epochs", nil))
	recRel2, err := entBst.CloseEpoch()
	if err != nil {
		t.Fatalf("post-recovery close: %v", err)
	}
	if !reflect.DeepEqual(recRel2.Histogram, ctlRel2.Histogram) {
		t.Fatalf("post-recovery release diverges from the no-crash run:\nrecovered %v\ncontrol   %v", recRel2.Histogram, ctlRel2.Histogram)
	}
	if recRel2.Seq != ctlRel2.Seq || recRel2.Epoch != ctlRel2.Epoch {
		t.Fatalf("post-recovery cursor diverges: %+v vs %+v", recRel2, ctlRel2)
	}
	ctl.Close()
}

// TestGracefulShutdownPreservesAckedEvents pins the Close ordering: the
// ingest queue is flushed (drained and journaled) before the final
// snapshot, so events acked only as "enqueued" (no wait) survive a
// graceful restart.
func TestGracefulShutdownPreservesAckedEvents(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
	if err != nil {
		t.Fatal(err)
	}
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 8}},
		Graph:  GraphSpec{Kind: "full"},
	})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID})
	// Submit without wait: the 202 acks enqueueing only.
	evs := make([]EventWire, 500)
	for i := range evs {
		evs[i] = EventWire{Op: "append", Row: []int{i % 8}}
	}
	w := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{Events: evs})
	if w.Code != http.StatusAccepted {
		t.Fatalf("events: %d %s", w.Code, w.Body.String())
	}
	ack := decode[EventsResponse](t, w)
	if ack.Accepted != 500 {
		t.Fatalf("accepted %d", ack.Accepted)
	}
	// Close immediately: the queue is most likely not yet applied. Close
	// must drain it before the final snapshot.
	s.Close()

	r, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(r)
	core := r.Core()
	if !core.HasDataset(dsID) {
		t.Fatal("dataset not recovered")
	}
	if got := core.DatasetHandle(dsID).Len(); got != 500 {
		t.Fatalf("recovered %d rows, want all 500 acked events", got)
	}
	if got := core.DatasetTable(dsID).LastSeq(); got != ack.LastSeq {
		t.Fatalf("recovered seq cursor %d, want %d", got, ack.LastSeq)
	}
	// A graceful shutdown checkpointed: recovery must not have needed a
	// WAL tail, and the next ingestor resumes numbering after the cursor.
	if got := core.IngestStartSeq(dsID); got != ack.LastSeq {
		t.Fatalf("recovered ingest StartSeq = %d, want %d", got, ack.LastSeq)
	}
}

// TestRecoveryPropertyInterleavings is the seeded property test: for
// random interleavings of ingest batches, ad-hoc releases, epoch closes
// and checkpoints, the recovered server is bit-for-bit the live server —
// index counts, accountant spend, stream cursors and buffers.
func TestRecoveryPropertyInterleavings(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 99))
			dir := t.TempDir()
			live, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
			if err != nil {
				t.Fatal(err)
			}
			polID := mustCreatePolicy(t, live, CreatePolicyRequest{
				Domain: []AttrSpec{{Name: "v", Size: 12}},
				Graph:  GraphSpec{Kind: "l1", Theta: 2},
			})
			dsID := mustCreateDataset(t, live, CreateDatasetRequest{
				PolicyID: polID, Rows: lineRows(30, 12),
			})
			sessID := mustCreateSession(t, live, CreateSessionRequest{
				PolicyID: polID, Budget: 1000, Seed: i64(int64(seed) * 17),
			})
			w := do(t, live, "POST", "/v1/streams", CreateStreamRequest{
				PolicyID: polID, DatasetID: dsID, Budget: 1000, Seed: i64(int64(seed) * 31),
				Epoch: EpochSpec{Epsilon: 0.25},
				Kinds: []string{"histogram", "cumulative"},
			})
			if w.Code != http.StatusCreated {
				t.Fatalf("stream: %d %s", w.Code, w.Body.String())
			}
			stID := decode[StreamResponse](t, w).ID

			for op := 0; op < 120; op++ {
				switch rng.IntN(10) {
				case 0, 1, 2, 3: // ingest batch (acked)
					n := 1 + rng.IntN(30)
					rows := make([][]int, n)
					for i := range rows {
						rows[i] = []int{rng.IntN(12)}
					}
					appendRows(t, live, dsID, rows)
				case 4, 5: // ad-hoc release
					kind := []string{"histogram", "cumulative", "range"}[rng.IntN(3)]
					var body any
					switch kind {
					case "range":
						body = RangeRequest{DatasetID: dsID, Epsilon: 0.1, Queries: []RangeQuery{{Lo: 0, Hi: 5}}}
					case "cumulative":
						body = CumulativeRequest{DatasetID: dsID, Epsilon: 0.1}
					default:
						body = HistogramRequest{DatasetID: dsID, Epsilon: 0.1}
					}
					w := do(t, live, "POST", "/v1/sessions/"+sessID+"/releases/"+kind, body)
					if w.Code != http.StatusOK {
						t.Fatalf("op %d %s release: %d %s", op, kind, w.Code, w.Body.String())
					}
				case 6, 7: // epoch close
					w := do(t, live, "POST", "/v1/streams/"+stID+"/epochs", nil)
					if w.Code != http.StatusOK {
						t.Fatalf("op %d epoch: %d %s", op, w.Code, w.Body.String())
					}
				case 8: // delete + recreate nothing: checkpoint instead
					if _, err := live.Checkpoint(); err != nil {
						t.Fatalf("op %d checkpoint: %v", op, err)
					}
				case 9: // direct library-path epoch close via admin checkpoint + release
					if _, err := live.Checkpoint(); err != nil {
						t.Fatalf("op %d checkpoint: %v", op, err)
					}
					w := do(t, live, "POST", "/v1/sessions/"+sessID+"/releases/histogram",
						HistogramRequest{DatasetID: dsID, Epsilon: 0.05})
					if w.Code != http.StatusOK {
						t.Fatalf("op %d release: %d %s", op, w.Code, w.Body.String())
					}
				}
			}
			// Quiesce ingestion so live state is fully applied, then
			// recover the directory while the live server still holds it
			// (read-only replay) and compare bit-for-bit.
			if ing := live.Core().StartedIngestor(dsID); ing != nil {
				if err := ing.Flush(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			rec, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer abandon(rec)

			// Datasets: identical tuples and cursors.
			lp, lst := live.Core().DatasetTable(dsID).Snapshot()
			rp, rst := rec.Core().DatasetTable(dsID).Snapshot()
			if !reflect.DeepEqual(lp, rp) {
				t.Fatalf("recovered points diverge (%d vs %d tuples)", len(rp), len(lp))
			}
			if lst.LastSeq != rst.LastSeq || lst.Applied != rst.Applied {
				t.Fatalf("recovered table state %+v, live %+v", rst, lst)
			}
			// Sessions: identical ledgers and noise positions.
			ls, err := live.Core().SessionHandle(sessID).ExportState()
			if err != nil {
				t.Fatal(err)
			}
			rs, err := rec.Core().SessionHandle(sessID).ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ls, rs) {
				t.Fatalf("recovered session state diverges:\nlive %+v\nrec  %+v", ls, rs)
			}
			// Streams: identical cursors, buffers, ledgers, noise.
			lst2, lsess2 := live.Core().StreamHandles(stID)
			rst2, rsess2 := rec.Core().StreamHandles(stID)
			lss := lst2.ExportState()
			rss := rst2.ExportState()
			if !reflect.DeepEqual(lss, rss) {
				t.Fatalf("recovered stream state diverges:\nlive %+v\nrec  %+v", lss, rss)
			}
			lsess, _ := lsess2.ExportState()
			rsess, _ := rsess2.ExportState()
			if !reflect.DeepEqual(lsess, rsess) {
				t.Fatalf("recovered stream session diverges")
			}
			abandon(live)
		})
	}
}

// TestRecoveryRoundTripRegistries pins registry-level recovery: creates,
// deletes and counters survive, and ids minted after recovery never
// collide with pre-crash ones.
func TestRecoveryRoundTripRegistries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
	if err != nil {
		t.Fatal(err)
	}
	p1 := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 8}}, Graph: GraphSpec{Kind: "full"},
	})
	p2 := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "x", Size: 4}, {Name: "y", Size: 4}},
		Graph:  GraphSpec{Kind: "partition", Blocks: 4},
	})
	d1 := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: p1, Rows: lineRows(10, 8)})
	sess := mustCreateSession(t, s, CreateSessionRequest{PolicyID: p2, Budget: 5})
	if w := do(t, s, "DELETE", "/v1/sessions/"+sess, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete session: %d", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/policies/"+p2, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete policy: %d", w.Code)
	}
	abandon(s)

	r, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(r)
	if !r.Core().HasPolicy(p1) {
		t.Fatalf("policy %s lost", p1)
	}
	if r.Core().HasPolicy(p2) {
		t.Fatalf("deleted policy %s resurrected", p2)
	}
	if r.Core().HasSession(sess) {
		t.Fatalf("deleted session %s resurrected", sess)
	}
	if !r.Core().HasDataset(d1) {
		t.Fatalf("dataset %s lost", d1)
	}
	// Fresh ids continue past the recovered counters.
	p3 := mustCreatePolicy(t, r, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 8}}, Graph: GraphSpec{Kind: "full"},
	})
	if p3 == p1 || p3 == p2 {
		t.Fatalf("recovered server reused id %s", p3)
	}
}

// BenchmarkRecovery measures cold-boot recovery: Open on a directory
// holding a snapshot plus a WAL tail of ingest batches and epoch closes
// (the numbers in BENCH_wal.json come from longer runs of this benchmark).
func BenchmarkRecovery(b *testing.B) {
	for _, tail := range []int{0, 20000} {
		b.Run(fmt.Sprintf("tailEvents=%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
			if err != nil {
				b.Fatal(err)
			}
			post := func(path string, body, out any) {
				buf, err := json.Marshal(body)
				if err != nil {
					b.Fatal(err)
				}
				req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code >= 300 {
					b.Fatalf("POST %s: %d %s", path, rec.Code, rec.Body.String())
				}
				if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
					b.Fatal(err)
				}
			}
			var pol PolicyResponse
			post("/v1/policies", CreatePolicyRequest{
				Domain: []AttrSpec{{Name: "v", Size: 64}}, Graph: GraphSpec{Kind: "full"},
			}, &pol)
			var ds DatasetResponse
			post("/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID, Rows: lineRows(50000, 64)}, &ds)
			var st StreamResponse
			post("/v1/streams", CreateStreamRequest{
				PolicyID: pol.ID, DatasetID: ds.ID, Budget: 10000, Seed: i64(3),
				Epoch: EpochSpec{Epsilon: 0.1},
			}, &st)
			// Snapshot covers the upload; the tail is ingest + closes.
			if _, err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for done := 0; done < tail; {
				n := 500
				if tail-done < n {
					n = tail - done
				}
				evs := make([]EventWire, n)
				for i := range evs {
					evs[i] = EventWire{Op: "append", Row: []int{(done + i) % 64}}
				}
				body, _ := json.Marshal(EventsRequest{Events: evs, Wait: true})
				req := httptest.NewRequest("POST", "/v1/datasets/"+ds.ID+"/events", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusAccepted {
					b.Fatalf("events: %d %s", rec.Code, rec.Body.String())
				}
				done += n
				if done%5000 == 0 {
					req := httptest.NewRequest("POST", "/v1/streams/"+st.ID+"/epochs", bytes.NewReader(nil))
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("epoch: %d %s", rec.Code, rec.Body.String())
					}
				}
			}
			abandon(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				abandon(r)
				b.StartTimer()
			}
		})
	}
}

// TestCheckpointEndpointAndAutoSnapshot covers the two snapshot triggers
// beyond graceful shutdown: POST /v1/admin/checkpoint and the
// SnapshotEvery record-count loop.
func TestCheckpointEndpointAndAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never", SnapshotEvery: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(s)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 8}}, Graph: GraphSpec{Kind: "full"},
	})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(5, 8)})

	w := do(t, s, "POST", "/v1/admin/checkpoint", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body.String())
	}
	stats := decode[CheckpointStats](t, w)
	if stats.LSN == 0 || stats.Bytes == 0 {
		t.Fatalf("checkpoint stats %+v", stats)
	}
	if _, err := os.Stat(stats.Path); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}

	// Push past SnapshotEvery and wait for the auto loop to advance the
	// snapshot boundary.
	for i := 0; i < 8; i++ {
		appendRows(t, s, dsID, [][]int{{i % 8}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lsn, _, err := walLatestSnapshotLSN(dir); err == nil && lsn > stats.LSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto checkpoint never advanced the snapshot boundary")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A non-durable server refuses the endpoint.
	mem := New(Config{})
	w = do(t, mem, "POST", "/v1/admin/checkpoint", nil)
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)
}

// walLatestSnapshotLSN reports the newest snapshot boundary in dir.
func walLatestSnapshotLSN(dir string) (uint64, []byte, error) {
	return wal.LatestSnapshot(dir)
}

// TestMultiGenerationRestarts is the server-level regression test for the
// post-checkpoint LSN-continuity bug: charges made *after* a clean
// restart (whose boot found only an empty, fully-checkpointed WAL) must
// survive the restart after that.
func TestMultiGenerationRestarts(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		s, err := Open(Config{Durability: DurabilityConfig{Dir: dir, Fsync: "never"}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Generation 1: create everything, charge one epoch, clean shutdown.
	s1 := open()
	polID := mustCreatePolicy(t, s1, CreatePolicyRequest{
		Domain: []AttrSpec{{Name: "v", Size: 8}}, Graph: GraphSpec{Kind: "full"},
	})
	dsID := mustCreateDataset(t, s1, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(5, 8)})
	w := do(t, s1, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1.0, Seed: i64(3),
		Epoch: EpochSpec{Epsilon: 0.25},
	})
	stID := decode[StreamResponse](t, w).ID
	if w := do(t, s1, "POST", "/v1/streams/"+stID+"/epochs", nil); w.Code != http.StatusOK {
		t.Fatalf("gen1 epoch: %d %s", w.Code, w.Body.String())
	}
	s1.Close() // final checkpoint retires the whole WAL

	// Generation 2: boot from the snapshot (empty WAL), charge two more
	// epochs, crash without a checkpoint.
	s2 := open()
	for i := 0; i < 2; i++ {
		if w := do(t, s2, "POST", "/v1/streams/"+stID+"/epochs", nil); w.Code != http.StatusOK {
			t.Fatalf("gen2 epoch %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	_, s2sess := s2.Core().StreamHandles(stID)
	if got := s2sess.Accountant().Spent(); got != 0.75 {
		t.Fatalf("gen2 spent = %v, want 0.75", got)
	}
	abandon(s2)

	// Generation 3: the gen2 charges were only in the WAL tail — they
	// must all be there.
	s3 := open()
	defer abandon(s3)
	s3st, s3sess := s3.Core().StreamHandles(stID)
	if got := s3sess.Accountant().Spent(); got != 0.75 {
		t.Fatalf("gen3 recovered spent = %v, want 0.75 (gen2 charges lost)", got)
	}
	if got := s3st.ExportState().Epoch; got != 3 {
		t.Fatalf("gen3 recovered epoch = %d, want 3", got)
	}
}
