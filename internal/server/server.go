package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"blowfish"
	"blowfish/internal/metrics"
	"blowfish/internal/service"
)

// Service is the transport-agnostic surface the HTTP front serves. A
// single service.Core implements it directly; the shard router
// (internal/shard) implements it by routing each call to the owning
// shard's core. The front never sees which one it is fronting.
type Service interface {
	Config() service.Config

	CreatePolicy(req CreatePolicyRequest) (PolicyResponse, error)
	GetPolicy(id string) (PolicyResponse, error)
	ListPolicies() ListPoliciesResponse
	DeletePolicy(id string) error

	CreateDataset(req CreateDatasetRequest) (DatasetResponse, error)
	GetDataset(id string) (DatasetResponse, error)
	ListDatasets() ListDatasetsResponse
	DeleteDataset(id string) error
	IngestEvents(ctx context.Context, datasetID string, events []blowfish.StreamEvent, wait bool) (EventsResponse, error)

	CreateSession(req CreateSessionRequest) (SessionResponse, error)
	GetSession(id string) (SessionResponse, error)
	ListSessions() ListSessionsResponse
	DeleteSession(id string) error

	Histogram(sessionID string, req HistogramRequest) (HistogramResponse, error)
	Cumulative(sessionID string, req CumulativeRequest) (CumulativeResponse, error)
	Range(sessionID string, req RangeRequest) (RangeResponse, error)

	CreateStream(req CreateStreamRequest) (StreamResponse, error)
	GetStream(id string) (StreamResponse, error)
	ListStreams() ListStreamsResponse
	DeleteStream(id string) error
	CloseEpoch(ctx context.Context, id string) (EpochReleaseWire, error)
	StreamReleases(ctx context.Context, id string, since uint64, wait time.Duration) (StreamReleasesResponse, error)

	Checkpoint() (CheckpointStats, error)
	ExpireSessions() int
	SessionCount() int
	StreamCount() int
	CloseLeaked() int
	Close()
	Registries() []*metrics.Registry
}

// A single core is a complete Service.
var _ Service = (*service.Core)(nil)

// Server is the HTTP front over a Service. Create with New, Open or
// NewWith; it implements http.Handler.
type Server struct {
	svc Service
	// core is non-nil when the front wraps exactly one service.Core (New
	// and Open); the white-box accessors the crash/recovery tests use go
	// through it. Router-backed fronts (NewWith) leave it nil.
	core *service.Core
	cfg  Config
	mux  *http.ServeMux

	httpRequests *metrics.CounterVec
	httpLatency  *metrics.HistogramVec
	// metricsHandler serves GET /metrics: the core's own registry for a
	// single-core front (byte-identical to the pre-split exposition), a
	// merged multi-registry exposition for a router front.
	metricsHandler http.Handler
}

// New creates an in-memory single-core server.
func New(cfg Config) *Server {
	return newFront(service.New(cfg))
}

// Open creates a single-core server, recovering durable state from
// cfg.Durability.Dir when one is configured.
func Open(cfg Config) (*Server, error) {
	core, err := service.Open(cfg)
	if err != nil {
		return nil, err
	}
	return newFront(core), nil
}

func newFront(core *service.Core) *Server {
	s := &Server{svc: core, core: core, cfg: core.Config()}
	// The request instruments live in the core's registry so the
	// single-core exposition stays one registry.
	s.httpRequests, s.httpLatency = core.HTTPMetrics()
	s.metricsHandler = core.Metrics().Handler()
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// NewWith fronts an arbitrary Service — in practice the shard router. The
// front owns its own request-metrics registry (requests span shards, so
// they belong to no single core) and serves /metrics as the merged
// exposition of that registry plus every core's.
func NewWith(svc Service) *Server {
	reg := metrics.NewRegistry()
	s := &Server{svc: svc, cfg: svc.Config()}
	s.httpRequests = reg.CounterVec("blowfish_http_requests_total",
		"HTTP requests by route pattern and status code.", "route", "status")
	s.httpLatency = reg.HistogramVec("blowfish_http_request_seconds",
		"HTTP request latency by route pattern.", nil, "route")
	regs := append([]*metrics.Registry{reg}, svc.Registries()...)
	s.metricsHandler = metrics.MergedHandler(regs...)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

func (s *Server) routes() {
	s.handle("GET /v1/healthz", s.handleHealth)
	s.handle("POST /v1/policies", s.handleCreatePolicy)
	s.handle("GET /v1/policies", s.handleListPolicies)
	s.handle("GET /v1/policies/{id}", s.handleGetPolicy)
	s.handle("DELETE /v1/policies/{id}", s.handleDeletePolicy)
	s.handle("POST /v1/datasets", s.handleCreateDataset)
	s.handle("GET /v1/datasets", s.handleListDatasets)
	s.handle("GET /v1/datasets/{id}", s.handleGetDataset)
	s.handle("DELETE /v1/datasets/{id}", s.handleDeleteDataset)
	s.handle("POST /v1/datasets/{id}/events", s.handleDatasetEvents)
	s.handle("POST /v1/sessions", s.handleCreateSession)
	s.handle("GET /v1/sessions", s.handleListSessions)
	s.handle("GET /v1/sessions/{id}", s.handleGetSession)
	s.handle("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.handle("POST /v1/sessions/{id}/releases/histogram", s.handleHistogram)
	s.handle("POST /v1/sessions/{id}/releases/cumulative", s.handleCumulative)
	s.handle("POST /v1/sessions/{id}/releases/range", s.handleRange)
	s.handle("POST /v1/streams", s.handleCreateStream)
	s.handle("GET /v1/streams", s.handleListStreams)
	s.handle("GET /v1/streams/{id}", s.handleGetStream)
	s.handle("DELETE /v1/streams/{id}", s.handleDeleteStream)
	s.handle("POST /v1/streams/{id}/epochs", s.handleCloseEpoch)
	s.handle("GET /v1/streams/{id}/releases", s.handleStreamReleases)
	s.handle("POST /v1/admin/checkpoint", s.handleCheckpoint)
	// The exposition itself is served unwrapped: a scrape should not
	// perturb the request counters it reads.
	s.mux.Handle("GET /metrics", s.metricsHandler)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// handle registers an instrumented route: latency histogram resolved once
// at registration, request counter labeled by pattern and status.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	lat := s.httpLatency.With(pattern)
	requests := s.httpRequests
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(&sw, r)
		lat.ObserveSince(start)
		requests.With(pattern, strconv.Itoa(sw.status)).Inc()
	})
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so long-poll responses keep
// streaming through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Core returns the single service core behind this front, or nil for a
// router-backed front. The crash/recovery tests and the load harness use
// it to reach the white-box accessors.
func (s *Server) Core() *service.Core { return s.core }

// Service returns the service this front serves.
func (s *Server) Service() Service { return s.svc }

// ExpireSessions drops sessions idle past the configured TTL and returns
// how many were removed. Call it periodically (cmd/blowfish-serve runs a
// sweeper goroutine); a zero TTL makes it a no-op.
func (s *Server) ExpireSessions() int { return s.svc.ExpireSessions() }

// SessionCount returns the number of live sessions (diagnostics).
func (s *Server) SessionCount() int { return s.svc.SessionCount() }

// StreamCount returns the number of live streams (diagnostics).
func (s *Server) StreamCount() int { return s.svc.StreamCount() }

// Close stops every background goroutine the service owns; see
// service.Core.Close for the drain-then-checkpoint contract.
func (s *Server) Close() { s.svc.Close() }

// CloseLeaked reports how many stream-ticker / ingest-writer goroutines
// the last Close abandoned at its drain deadline (0 after a clean close).
func (s *Server) CloseLeaked() int { return s.svc.CloseLeaked() }

// Checkpoint snapshots the registries; see service.Core.Checkpoint.
func (s *Server) Checkpoint() (CheckpointStats, error) { return s.svc.Checkpoint() }

// MetricsHandler returns the handler behind GET /metrics, for mounting
// the same exposition on an admin mux.
func (s *Server) MetricsHandler() http.Handler { return s.metricsHandler }
